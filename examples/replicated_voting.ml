(* Emulated hardware redundancy (§5.3): replicate the critical prefix of
   the call tree threefold and majority-vote the returns.  A processor
   failure is masked — the voter simply loses one replica and decides on
   the two identical survivors, without waiting for the slowest.

   Run with:  dune exec examples/replicated_voting.exe *)

module Cluster = Recflow_machine.Cluster
module Config = Recflow_machine.Config
module Counter = Recflow_stats.Counter
module Workload = Recflow_workload.Workload
open Recflow_lang

let run ~failures =
  let w = Workload.synthetic ~branching:3 ~depth:2 ~grain:300 in
  let config =
    {
      (Config.default ~nodes:9) with
      Config.recovery = Config.Replicate 3;
      replicate_depth = 3;
      inline_depth = 3;
      policy = Recflow_balance.Policy.Random;
    }
  in
  let cluster = Cluster.create config (Workload.program w) in
  List.iter (fun (t, p) -> Cluster.fail_at cluster ~time:t p) failures;
  Cluster.start cluster ~fname:w.Workload.entry ~args:(w.Workload.args Workload.Medium);
  let outcome = Cluster.run cluster in
  (cluster, outcome, Workload.expected w Workload.Medium)

let () =
  let _, clean, expected = run ~failures:[] in
  Format.printf "fault-free: answer %s at t=%d@."
    (match clean.Cluster.answer with Some v -> Value.to_string v | None -> "-")
    (Option.value ~default:0 clean.Cluster.answer_time);

  let cluster, faulty, _ = run ~failures:[ (500, 4) ] in
  (match faulty.Cluster.answer with
  | Some v ->
    Format.printf "with P4 failing at t=500: answer %s at t=%d (%s)@." (Value.to_string v)
      (Option.value ~default:0 faulty.Cluster.answer_time)
      (if Value.equal v expected then "correct, failure masked" else "WRONG")
  | None -> Format.printf "no answer@.");
  let c name = Counter.get (Cluster.counters cluster) name in
  Format.printf "@.replica activations: %d, re-issues needed: %d, inconclusive votes: %d@."
    (c "spawn.remote") (c "reissue.count") (c "vote.inconclusive");
  Format.printf
    "recovery delay vs fault-free: %+d ticks (checkpoint schemes pay this at fault time;@."
    (Option.value ~default:0 faulty.Cluster.answer_time
    - Option.value ~default:0 clean.Cluster.answer_time);
  Format.printf "replication paid ~3x up front instead — see experiment Q6)@."
