(* Quickstart: write an applicative program, run it on a simulated
   8-processor machine, and check the distributed answer against the
   sequential evaluator.

   Run with:  dune exec examples/quickstart.exe *)

module Cluster = Recflow_machine.Cluster
module Config = Recflow_machine.Config
open Recflow_lang

let source =
  {|
# Sum the leaves of a perfect binary tree: every call below becomes a
# task that the load balancer may place on any processor.
def tree_sum(depth, label) =
  if depth == 0 then label
  else tree_sum(depth - 1, 2 * label) + tree_sum(depth - 1, 2 * label + 1)
|}

let () =
  (* Static analysis first: types, lints and the spawn-shape bound.  A
     real run would refuse on errors (recflow --program does); here we
     just show the clean bill of health. *)
  let report = Recflow_analysis.Check.check_source ~entries:[ "tree_sum" ] source in
  (match Recflow_analysis.Check.(errors report, warnings report) with
  | [], [] ->
    let fanout =
      match (report.Recflow_analysis.Check.program, report.Recflow_analysis.Check.shape) with
      | Some p, Some shape -> Recflow_analysis.Shape.program_fanout_bound shape p
      | _ -> 0
    in
    Format.printf "static analysis: clean; fan-out bound %d@." fanout
  | _ ->
    print_endline (Recflow_analysis.Check.render_human report);
    exit 1);
  let program = Parser.parse_program_exn source in
  (* Ground truth from the sequential reference evaluator. *)
  let expected, reductions = Eval_serial.eval program "tree_sum" [ Value.Int 8; Value.Int 1 ] in
  Format.printf "serial answer: %s (%d reductions)@." (Value.to_string expected) reductions;

  (* The same program on a simulated 8-processor Rediflow-style machine
     with gradient load balancing and splice recovery armed (no failure
     is injected here, so recovery stays idle). *)
  let config = Config.default ~nodes:8 in
  let cluster = Cluster.create config program in
  Cluster.start cluster ~fname:"tree_sum" ~args:[ Value.Int 8; Value.Int 1 ];
  let outcome = Cluster.run cluster in

  (match outcome.Cluster.answer with
  | Some v ->
    Format.printf "distributed answer: %s at t=%d (%s)@." (Value.to_string v)
      (Option.value ~default:0 outcome.Cluster.answer_time)
      (if Value.equal v expected then "matches serial" else "MISMATCH!")
  | None -> Format.printf "no answer?!@.");
  Format.printf "events dispatched: %d@." outcome.Cluster.events;
  Format.printf "checkpoints stored: %d (covered: %d)@."
    (Recflow_stats.Counter.get (Cluster.counters cluster) "ckpt.recorded")
    (Recflow_stats.Counter.get (Cluster.counters cluster) "ckpt.covered")
