(* The paper's own worked example, executable: Figure 1's call tree on
   processors A-D, its checkpoint tables, B's failure, and the resulting
   fragments and re-issue sets; then Figure 2's grandparent pointers.

   Run with:  dune exec examples/paper_walkthrough.exe *)

let () =
  Format.printf "%a" Recflow_experiments.Report.pp (Recflow_experiments.Exp_fig1.run ());
  Format.printf "%a" Recflow_experiments.Report.pp (Recflow_experiments.Exp_fig2.run ())
