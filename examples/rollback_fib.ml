(* Rollback recovery (§3) in action: kill a processor mid-run and watch
   the peers re-issue exactly their topmost functional checkpoints.

   Run with:  dune exec examples/rollback_fib.exe *)

module Cluster = Recflow_machine.Cluster
module Config = Recflow_machine.Config
module Journal = Recflow_machine.Journal
module Workload = Recflow_workload.Workload
open Recflow_lang

let () =
  let w = Workload.fib in
  let config = { (Config.default ~nodes:8) with Config.recovery = Config.Rollback } in
  let cluster = Cluster.create config (Workload.program w) in
  Cluster.fail_at cluster ~time:500 2;
  Cluster.start cluster ~fname:w.Workload.entry ~args:(w.Workload.args Workload.Small);
  let outcome = Cluster.run cluster in

  let expected = Workload.expected w Workload.Small in
  (match outcome.Cluster.answer with
  | Some v ->
    Format.printf "fib answer after losing P2 at t=500: %s (%s)@." (Value.to_string v)
      (if Value.equal v expected then "correct" else "WRONG")
  | None -> Format.printf "no answer@.");

  (* The journal shows the §3.2 protocol: checkpointed tasks re-issued by
     the processors that held them, orphans aborted and garbage collected. *)
  let journal = Cluster.journal cluster in
  Format.printf "@.recovery events (first 12):@.";
  Journal.entries journal
  |> List.filter (fun (e : Journal.entry) ->
         match e.Journal.event with
         | Journal.Failure _ | Journal.Respawned _ | Journal.Aborted _
         | Journal.Orphan_dropped _ -> true
         | _ -> false)
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter (fun e -> Format.printf "  %a@." Journal.pp_entry e);

  let count pred = Journal.count journal pred in
  Format.printf "@.re-issued checkpoints: %d@."
    (count (function Journal.Respawned _ -> true | _ -> false));
  Format.printf "orphans aborted (garbage collection): %d@."
    (count (function Journal.Aborted _ -> true | _ -> false));
  Format.printf "orphan results dropped (no salvage under rollback): %d@."
    (count (function Journal.Orphan_dropped _ -> true | _ -> false))
