(* The §5.2 extension live: when a task's parent AND grandparent hosts die
   simultaneously, orphan salvage is stranded with grandparent-only links
   but resumes with great-grandparent links (ancestor_depth = 2).

   Run with:  dune exec examples/multifault_ancestors.exe *)

module Cluster = Recflow_machine.Cluster
module Config = Recflow_machine.Config
module Counter = Recflow_stats.Counter
module Workload = Recflow_workload.Workload
module Plan = Recflow_fault.Plan
module Stamp = Recflow_recovery.Stamp
open Recflow_lang

let w = Workload.synthetic ~branching:2 ~depth:8 ~grain:60

let size = Workload.Medium

let run ~ancestor_depth =
  let config =
    {
      (Config.default ~nodes:8) with
      Config.recovery = Config.Splice;
      ancestor_depth;
      inline_depth = 9;
      (* gradient placement co-locates lineages: chain failures are easy
         to find; slow detection makes the salvage race visible *)
      policy = Recflow_balance.Policy.Gradient { weight = 2 };
      detect_delay = 1500;
    }
  in
  (* probe fault-free to find a live task whose parent and grandparent sit
     on two distinct processors, then kill both at once *)
  let probe = Cluster.create config (Workload.program w) in
  Cluster.start probe ~fname:w.Workload.entry ~args:(w.Workload.args size);
  let po = Cluster.run probe in
  let t_fail = Option.value ~default:1000 po.Cluster.answer_time * 2 / 5 in
  match Plan.Pick.parent_grandparent_pair (Cluster.journal probe) ~time:t_fail with
  | None -> Format.printf "no chain pair found in the probe run@."; None
  | Some (ph, gh) ->
    let cluster = Cluster.create config (Workload.program w) in
    Cluster.fail_at cluster ~time:t_fail ph;
    Cluster.fail_at cluster ~time:t_fail gh;
    Cluster.start cluster ~fname:w.Workload.entry ~args:(w.Workload.args size);
    let o = Cluster.run ~drain:true cluster in
    let c name = Counter.get (Cluster.counters cluster) name in
    Format.printf
      "ancestor_depth=%d: killed P%d and P%d at t=%d -> answer %s, %d results stranded, %d \
       relayed, %d stashed at twins@."
      ancestor_depth ph gh t_fail
      (match o.Cluster.answer with
      | Some v ->
        if Value.equal v (Workload.expected w size) then Value.to_string v ^ " (correct)"
        else Value.to_string v ^ " (WRONG)"
      | None -> "lost")
      (c "relay.stranded") (c "relay.forwarded") (c "relay.stashed");
    Some (c "relay.stranded")

let () =
  Format.printf "Simultaneous parent+grandparent failure (§5.2):@.@.";
  let s1 = run ~ancestor_depth:1 in
  let s2 = run ~ancestor_depth:2 in
  match (s1, s2) with
  | Some a, Some b when b < a ->
    Format.printf
      "@.great-grandparent links rescued %d orphan results that grandparent-only links \
       stranded — the extension the paper sketches in §5.2.@."
      (a - b)
  | _ -> Format.printf "@.(placement did not produce a comparable pair this time)@."
