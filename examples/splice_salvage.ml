(* Splice recovery (§4) end to end: a processor dies, its orphaned
   children announce themselves, twins are regenerated from functional
   checkpoints, living orphans are inherited (not cloned), and their
   results are spliced back through grandparent relays.

   Run with:  dune exec examples/splice_salvage.exe *)

module Cluster = Recflow_machine.Cluster
module Config = Recflow_machine.Config
module Journal = Recflow_machine.Journal
module Counter = Recflow_stats.Counter
module Workload = Recflow_workload.Workload
open Recflow_lang

let () =
  let w = Workload.tree_sum in
  let config =
    {
      (Config.default ~nodes:8) with
      Config.recovery = Config.Splice;
      policy = Recflow_balance.Policy.Random;
      detect_delay = 600;
    }
  in
  let cluster = Cluster.create config (Workload.program w) in
  Cluster.fail_at cluster ~time:400 3;
  Cluster.start cluster ~fname:w.Workload.entry ~args:(w.Workload.args Workload.Small);
  let outcome = Cluster.run cluster in

  let expected = Workload.expected w Workload.Small in
  (match outcome.Cluster.answer with
  | Some v ->
    Format.printf "tree_sum after losing P3 at t=400: %s (%s)@." (Value.to_string v)
      (if Value.equal v expected then "correct" else "WRONG")
  | None -> Format.printf "no answer@.");

  let c name = Counter.get (Cluster.counters cluster) name in
  Format.printf "@.splice machinery:@.";
  Format.printf "  twins re-issued from checkpoints:   %d@." (c "reissue.count");
  Format.printf "  living orphans adopted (inherited): %d@." (c "spawn.inherited");
  Format.printf "  orphan results relayed:             %d@." (c "relay.forwarded");
  Format.printf "  results already there (no respawn): %d@." (c "spawn.skipped_preheld");
  Format.printf "  duplicates ignored:                 %d@." (c "dup.ignored");

  Format.printf "@.per-processor activity (X = failed):@.";
  print_string (Recflow_machine.Timeline.render (Cluster.journal cluster) ~nodes:8 ());

  Format.printf "@.inheritance events:@.";
  Journal.entries (Cluster.journal cluster)
  |> List.filter (fun (e : Journal.entry) ->
         match e.Journal.event with Journal.Inherited _ -> true | _ -> false)
  |> List.filteri (fun i _ -> i < 10)
  |> List.iter (fun e -> Format.printf "  %a@." Journal.pp_entry e)
