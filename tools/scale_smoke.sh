#!/bin/sh
# Scale smoke test: the arena/batching data plane at 1024 processors —
# golden journal digest (replayed on a pool domain too, so the rework
# cannot hide domain-local state) plus the QCheck property pinning the
# O(1) load counters to a brute-force recount.  Wraps the dune alias so
# CI and humans share one entry point:
#
#   tools/scale_smoke.sh            # == dune build @scale-smoke
#
# The same cases run inside `dune runtest`; this script exists for quick
# iteration on lib/machine/node.ml and lib/machine/cluster.ml.
set -eu
cd "$(dirname "$0")/.."
exec dune build @scale-smoke "$@"
