#!/bin/sh
# Static-analysis gate: run the recflow checker over every built-in
# workload (and the quickstart example's embedded program) with warnings
# promoted to errors.  Backed by the dune @lint alias so results are
# cached and the same gate runs inside `dune runtest`.
set -e
cd "$(dirname "$0")/.."
exec dune build @lint
