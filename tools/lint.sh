#!/bin/sh
# Static-analysis gate: run the recflow checker over every built-in
# workload (and the quickstart example's embedded program) with warnings
# promoted to errors.  This includes the RF3xx cost band — a workload
# with statically unbounded recursion depth (RF301), exponential task
# blow-up flagged inside a non-terminating cycle (RF302) or a spawn in a
# non-decreasing cycle (RF303) fails the gate.  Backed by the dune @lint
# alias so results are cached and the same gate runs inside
# `dune runtest`; the machine-readable twin is tools/check_smoke.sh.
set -e
cd "$(dirname "$0")/.."
exec dune build @lint
