#!/bin/sh
# Formatting gate: run `dune build @fmt` when ocamlformat is available.
# Build images without ocamlformat skip the check instead of failing, so
# this is safe to call unconditionally from CI or a pre-commit hook.
set -e
cd "$(dirname "$0")/.."
if ! command -v ocamlformat >/dev/null 2>&1; then
  echo "check-fmt: ocamlformat not installed, skipping"
  exit 0
fi
exec dune build @fmt
