#!/bin/sh
# Service-mode smoke test: one real --serve run with mid-stream failures
# and k=3 replication, its recflow.service/1 export, and the jobs-1 vs
# jobs-2 byte-identity gate for the X6 service experiment.  Backed by the
# dune @service-smoke alias so results are cached and the same gate runs
# inside `dune runtest`:
#
#   tools/service_smoke.sh        # == dune build @service-smoke
set -eu
cd "$(dirname "$0")/.."
exec dune build @service-smoke "$@"
