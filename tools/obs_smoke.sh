#!/bin/sh
# Observability smoke test: one real recflow run producing every export
# the CLI knows — streaming Chrome trace (--emit-trace), 1-in-2 sampled
# JSONL protocol trace (--trace-jsonl --trace-sample), metrics document
# (--metrics-json) and phase profile (--profile-json).  The files are
# then parsed back by test_obs's obs.smoke cases with the in-tree strict
# JSON codec, so `dune runtest` covers the same surface.  Wraps the dune
# alias so CI and humans share one entry point:
#
#   tools/obs_smoke.sh            # == dune build @obs-smoke
set -eu
cd "$(dirname "$0")/.."
exec dune build @obs-smoke "$@"
