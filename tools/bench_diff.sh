#!/bin/sh
# Cross-PR benchmark regression gate: compare the committed results of the
# last two PRs row by row.  Micro rows (fixed data structures) gate hard —
# any row more than 20% slower fails the script — while the experiment
# kernel rows are printed for information only, since their workloads
# legitimately grow as experiments are added.  Wraps the dune alias so CI
# and humans share one entry point:
#
#   tools/bench_diff.sh             # == dune build @bench-diff
#
# To compare other files or thresholds, call the harness directly:
#
#   dune exec bench/main.exe -- --diff OLD.json NEW.json --diff-threshold 10
#
# The loose multicore sanity check lives in the same binary
# (`dune exec bench/main.exe -- --scaling-check`); it skips, rather than
# fails, on single-core hosts where a warm 2-domain sweep cannot beat a
# sequential one.
set -eu
cd "$(dirname "$0")/.."
exec dune build @bench-diff "$@"
