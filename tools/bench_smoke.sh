#!/bin/sh
# Benchmark-harness smoke test: run the data-structure micro-benchmark
# group with a tiny sampling quota and validate that the emitted
# BENCH_<n>.json parses with the in-tree strict JSON parser (the same
# codec the observability exports use).  Wraps the dune alias so CI and
# humans share one entry point:
#
#   tools/bench_smoke.sh            # == dune build @bench-smoke
#
# A full benchmark run (all groups, real quota, BENCH_5.json in the
# current directory) is `dune exec bench/main.exe`.
set -eu
cd "$(dirname "$0")/.."
exec dune build @bench-smoke "$@"
