#!/bin/sh
# Analyzer smoke gate: emit the machine-readable --check-json report for
# every built-in workload via the real CLI, re-read each one with the
# in-tree strict JSON parser (test_analysis check.smoke), and exercise
# --explain for one code per diagnostic band.  Backed by the dune
# @check-smoke alias so results are cached and the same gate runs inside
# `dune runtest`.
set -e
cd "$(dirname "$0")/.."
exec dune build @check-smoke
