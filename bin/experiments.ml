(* Regenerate every reproduced figure/table of the paper.

   Usage:
     experiments            # run everything at full size
     experiments --quick    # smaller sweeps (used by CI-style checks)
     experiments F5 Q2      # only the named experiments
     experiments --list
     experiments --markdown out.md *)

module Registry = Recflow_experiments.Registry
module Report = Recflow_experiments.Report
module Harness = Recflow_experiments.Harness
module Cluster = Recflow_machine.Cluster
module Metrics = Recflow_obs.Metrics
module Pool = Recflow_parallel.Pool
module Profile = Recflow_obs_core.Profile
module Json = Recflow_obs_core.Json

module Collect = Recflow_obs_core.Collect
module Counter = Recflow_stats.Counter

(* Dump one metrics document per simulated run into [dir]; file names are
   ordinal so a whole experiment sweep becomes a browsable trajectory.
   The hook runs concurrently on pool domains (no obs lock any more): the
   ordinal is an atomic fetch-and-add, and the sweep-wide aggregation goes
   through a sharded {!Collect} — each domain writes its own shard
   lock-free, merged deterministically in slot order at the end. *)
let install_metrics_hook dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let n = Atomic.make 0 in
  let coll = Collect.create () in
  Harness.set_obs_hook
    (Some
       (fun info (r : Harness.run) ->
         let ordinal = Atomic.fetch_and_add n 1 + 1 in
         let path =
           Filename.concat dir
             (Printf.sprintf "run-%05d-%s-%s.json" ordinal info.Harness.workload_name
                info.Harness.size_name)
         in
         Metrics.write ~path
           (Metrics.run_json ~workload:info.Harness.workload_name ~size:info.Harness.size_name
              ~cluster:r.Harness.cluster ~outcome:r.Harness.outcome ());
         List.iter
           (fun (name, v) -> Collect.add coll name v)
           (Counter.to_alist (Cluster.counters r.Harness.cluster));
         Collect.record coll "run.sim_time" r.Harness.outcome.Cluster.sim_time;
         Collect.record coll "run.events" r.Harness.outcome.Cluster.events));
  (n, coll)

(* The cross-sweep aggregate: every counter summed over every run, plus
   per-run distribution percentiles — the document a trajectory-level
   dashboard reads instead of re-folding thousands of run files. *)
let write_sweep_aggregate dir n coll =
  let path = Filename.concat dir "sweep-aggregate.json" in
  Json.write_file ~path
    (Json.Obj
       [
         ("schema", Json.Str "recflow.sweep/1");
         ("runs", Json.Int (Atomic.get n));
         ( "counters",
           Json.Obj
             (List.map (fun (k, v) -> (k, Json.Int v)) (Counter.to_alist (Collect.counters coll)))
         );
         ( "distributions",
           Json.Obj
             (List.map (fun (k, h) -> (k, Metrics.hdr_json h)) (Collect.hdrs coll)) );
       ]);
  Format.printf "sweep aggregate written to %s@." path

let run_entries quick markdown entries =
  let reports =
    List.map
      (fun (e : Registry.entry) ->
        let t0 = Unix.gettimeofday () in
        let r = e.Registry.run ~quick () in
        let dt = Unix.gettimeofday () -. t0 in
        Format.printf "%a" Report.pp r;
        Format.printf "(%.1fs)@." dt;
        r)
      entries
  in
  (match markdown with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc "# Experiment results\n\n";
    List.iter (fun r -> output_string oc (Report.to_markdown r)) reports;
    close_out oc;
    Format.printf "@.markdown written to %s@." path);
  let failed = List.filter (fun r -> not (Report.all_checks_pass r)) reports in
  Format.printf "@.%d/%d experiments passed all checks@." (List.length reports - List.length failed)
    (List.length reports);
  if failed <> [] then begin
    List.iter (fun (r : Report.t) -> Format.printf "  FAILED: %s@." r.Report.id) failed;
    exit 1
  end

let main quick list_only markdown metrics_dir jobs profile ids =
  (match jobs with
  | Some j when j < 1 ->
    Format.eprintf "--jobs must be >= 1@.";
    exit 2
  | Some j -> Pool.set_default_jobs j
  | None -> ());
  (* Spawn + first-wakeup of the pool workers happens here, not inside the
     first experiment's timed section. *)
  Harness.warm_pool ();
  if profile then begin
    Profile.set_enabled true;
    Profile.reset ()
  end;
  let wall_t0 = Unix.gettimeofday () in
  let runs_dumped = Option.map install_metrics_hook metrics_dir in
  let finish code =
    (match (metrics_dir, runs_dumped) with
    | Some dir, Some (n, coll) ->
      Format.printf "%d run metrics documents written to %s/@." (Atomic.get n) dir;
      write_sweep_aggregate dir n coll
    | _ -> ());
    if profile then begin
      Format.printf "@.%a" Profile.pp_report ();
      match metrics_dir with
      | Some dir ->
        let path = Filename.concat dir "profile.json" in
        Json.write_file ~path
          (Profile.to_json
             ~wall_s:(Unix.gettimeofday () -. wall_t0)
             ~meta:[ ("tool", Json.Str "experiments") ]
             ());
        Format.printf "profile written to %s@." path
      | None -> ()
    end;
    code
  in
  if list_only then begin
    List.iter
      (fun (e : Registry.entry) -> Format.printf "%-4s %s@." e.Registry.id e.Registry.title)
      Registry.all;
    0
  end
  else begin
    let entries =
      match ids with
      | [] -> Registry.all
      | ids ->
        List.map
          (fun id ->
            match Registry.find id with
            | Some e -> e
            | None ->
              Format.eprintf "unknown experiment %S (try --list)@." id;
              exit 2)
          ids
    in
    run_entries quick markdown entries;
    finish 0
  end

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Run reduced-size sweeps (faster, same checks).")

let list_only = Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit.")

let markdown =
  Arg.(
    value
    & opt (some string) None
    & info [ "markdown" ] ~docv:"FILE" ~doc:"Also write the reports as markdown to $(docv).")

let metrics_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-dir" ] ~docv:"DIR"
        ~doc:
          "Write one JSON metrics document (config metadata, counters, recovery-episode spans) \
           per simulated run into $(docv), created if missing.")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Fan each experiment sweep out over $(docv) domains (default: the machine's \
           recommended domain count).  Reports are bit-identical at any $(docv); $(docv)=1 \
           runs strictly sequentially.")

let profile =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Time the engine/checkpoint/recovery phases across every run and print an ASCII \
           self-time report at the end (with $(b,--metrics-dir): also write profile.json).")

let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids to run.")

let cmd =
  let doc = "regenerate the figures and tables of Lin & Keller (ICPP 1986)" in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(const main $ quick $ list_only $ markdown $ metrics_dir $ jobs $ profile $ ids)

let () = exit (Cmd.eval' cmd)
