(* Regenerate every reproduced figure/table of the paper.

   Usage:
     experiments            # run everything at full size
     experiments --quick    # smaller sweeps (used by CI-style checks)
     experiments F5 Q2      # only the named experiments
     experiments --list
     experiments --markdown out.md *)

module Registry = Recflow_experiments.Registry
module Report = Recflow_experiments.Report

let run_entries quick markdown entries =
  let reports =
    List.map
      (fun (e : Registry.entry) ->
        let t0 = Sys.time () in
        let r = e.Registry.run ~quick () in
        let dt = Sys.time () -. t0 in
        Format.printf "%a" Report.pp r;
        Format.printf "(%.1fs)@." dt;
        r)
      entries
  in
  (match markdown with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc "# Experiment results\n\n";
    List.iter (fun r -> output_string oc (Report.to_markdown r)) reports;
    close_out oc;
    Format.printf "@.markdown written to %s@." path);
  let failed = List.filter (fun r -> not (Report.all_checks_pass r)) reports in
  Format.printf "@.%d/%d experiments passed all checks@." (List.length reports - List.length failed)
    (List.length reports);
  if failed <> [] then begin
    List.iter (fun (r : Report.t) -> Format.printf "  FAILED: %s@." r.Report.id) failed;
    exit 1
  end

let main quick list_only markdown ids =
  if list_only then begin
    List.iter
      (fun (e : Registry.entry) -> Format.printf "%-4s %s@." e.Registry.id e.Registry.title)
      Registry.all;
    0
  end
  else begin
    let entries =
      match ids with
      | [] -> Registry.all
      | ids ->
        List.map
          (fun id ->
            match Registry.find id with
            | Some e -> e
            | None ->
              Format.eprintf "unknown experiment %S (try --list)@." id;
              exit 2)
          ids
    in
    run_entries quick markdown entries;
    0
  end

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Run reduced-size sweeps (faster, same checks).")

let list_only = Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit.")

let markdown =
  Arg.(
    value
    & opt (some string) None
    & info [ "markdown" ] ~docv:"FILE" ~doc:"Also write the reports as markdown to $(docv).")

let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids to run.")

let cmd =
  let doc = "regenerate the figures and tables of Lin & Keller (ICPP 1986)" in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(const main $ quick $ list_only $ markdown $ ids)

let () = exit (Cmd.eval' cmd)
