(* recflow — run an applicative program on the simulated multiprocessor.

   Examples:
     recflow --workload fib --size medium --nodes 8
     recflow --workload tree_sum --recovery rollback --fail 3000@2 --journal
     recflow --program my.rf --entry main --arg 10 --arg 20 --topology mesh:4x4 \
             --policy random --recovery splice --fail 500@1 --fail 900@5 --trace *)

module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Journal = Recflow_machine.Journal
module Workload = Recflow_workload.Workload
module Value = Recflow_lang.Value
module Counter = Recflow_stats.Counter

let parse_failure s =
  match String.split_on_char '@' s with
  | [ time; proc ] -> (
    match (int_of_string_opt time, int_of_string_opt proc) with
    | Some t, Some p when t >= 0 && p >= 0 -> Ok (t, p)
    | _ -> Error (`Msg (Printf.sprintf "bad failure spec %S (want TIME@PROC)" s)))
  | _ -> Error (`Msg (Printf.sprintf "bad failure spec %S (want TIME@PROC)" s))

let size_of_string = function
  | "tiny" -> Ok Workload.Tiny
  | "small" -> Ok Workload.Small
  | "medium" -> Ok Workload.Medium
  | "large" -> Ok Workload.Large
  | s -> Error (Printf.sprintf "unknown size %S" s)

let recovery_of_string s =
  match String.split_on_char ':' s with
  | [ "none" ] -> Ok Config.No_recovery
  | [ "rollback" ] -> Ok Config.Rollback
  | [ "splice" ] -> Ok Config.Splice
  | [ "replicate"; k ] -> (
    match int_of_string_opt k with
    | Some k when k >= 1 -> Ok (Config.Replicate k)
    | _ -> Error (Printf.sprintf "bad replication factor in %S" s))
  | _ -> Error (Printf.sprintf "unknown recovery %S (none|rollback|splice|replicate:K)" s)

let main nodes topology policy recovery ckpt_keep_all ancestor_depth inline_depth seed
    detect_delay workload_name size_name program_file entry args failures show_journal
    show_trace show_stats show_timeline drain =
  let ( let* ) r f = match r with Ok v -> f v | Error msg -> (Format.eprintf "%s@." msg; 1) in
  let* topology =
    match topology with
    | Some t -> Recflow_net.Topology.of_string t
    | None -> Ok (Recflow_net.Topology.Full nodes)
  in
  let* policy = Recflow_balance.Policy.spec_of_string policy in
  let* recovery = recovery_of_string recovery in
  let* size = size_of_string size_name in
  let* program, entry, argv, expected =
    match (workload_name, program_file) with
    | Some name, None -> (
      match Workload.by_name name with
      | Some w ->
        Ok
          ( Workload.program w,
            w.Workload.entry,
            w.Workload.args size,
            Some (Workload.expected w size) )
      | None ->
        Error
          (Printf.sprintf "unknown workload %S (have: %s)" name
             (String.concat ", " (List.map (fun w -> w.Workload.name) Workload.all))))
    | None, Some path -> (
      match In_channel.with_open_text path In_channel.input_all with
      | source -> (
        match Recflow_lang.Parser.parse_program source with
        | Ok p -> Ok (p, entry, List.map (fun n -> Value.Int n) args, None)
        | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
      | exception Sys_error msg -> Error msg)
    | Some _, Some _ -> Error "give either --workload or --program, not both"
    | None, None -> Error "give --workload NAME or --program FILE (see --help)"
  in
  let cfg =
    {
      (Config.default ~nodes) with
      Config.topology;
      policy;
      recovery;
      ckpt_mode =
        (if ckpt_keep_all then Recflow_recovery.Ckpt_table.Keep_all
         else Recflow_recovery.Ckpt_table.Topmost);
      ancestor_depth;
      inline_depth = (match inline_depth with Some d -> d | None -> max_int);
      seed;
      detect_delay;
    }
  in
  let* () =
    match Config.validate cfg with
    | Ok () -> Ok ()
    | Error msg -> Error ("invalid configuration: " ^ msg)
  in
  let cluster = Cluster.create cfg program in
  List.iter (fun (t, p) -> Cluster.fail_at cluster ~time:t p) failures;
  Cluster.start cluster ~fname:entry ~args:argv;
  let outcome = Cluster.run ~drain cluster in
  (match outcome.Cluster.answer with
  | Some v ->
    Format.printf "answer: %s (at t=%s)@." (Value.to_string v)
      (match outcome.Cluster.answer_time with Some t -> string_of_int t | None -> "?");
    (match expected with
    | Some e when not (Value.equal e v) ->
      Format.printf "WARNING: differs from serial reference %s@." (Value.to_string e)
    | _ -> ())
  | None ->
    Format.printf "no answer (sim ended at t=%d%s)@." outcome.Cluster.sim_time
      (match outcome.Cluster.error with Some e -> "; program error: " ^ e | None -> ""));
  Format.printf "events: %d, simulated time: %d@." outcome.Cluster.events outcome.Cluster.sim_time;
  if show_stats then begin
    Format.printf "@.counters:@.";
    Counter.pp Format.std_formatter (Cluster.counters cluster);
    Format.printf "total work: %d ticks, wasted: %d ticks@." (Cluster.total_work cluster)
      (Cluster.total_waste cluster)
  end;
  if show_timeline then begin
    Format.printf "@.timeline:@.";
    print_string
      (Recflow_machine.Timeline.render (Cluster.journal cluster)
         ~nodes:(Recflow_net.Topology.size cfg.Config.topology) ())
  end;
  if show_journal then begin
    Format.printf "@.journal:@.";
    List.iter
      (fun e -> Format.printf "%a@." Journal.pp_entry e)
      (Journal.entries (Cluster.journal cluster))
  end;
  if show_trace then begin
    Format.printf "@.trace:@.";
    Recflow_sim.Trace.dump Format.std_formatter (Cluster.trace cluster)
  end;
  match outcome.Cluster.answer with Some _ -> 0 | None -> 1

open Cmdliner

let failure_conv = Arg.conv (parse_failure, fun ppf (t, p) -> Format.fprintf ppf "%d@@%d" t p)

let nodes = Arg.(value & opt int 8 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Processor count.")

let topology =
  Arg.(
    value
    & opt (some string) None
    & info [ "topology" ] ~docv:"SPEC" ~doc:"full:N, ring:N, mesh:RxC or cube:D (default full).")

let policy =
  Arg.(
    value & opt string "gradient"
    & info [ "policy" ] ~docv:"P" ~doc:"gradient[:W], random, round-robin, static, neighborhood[:R].")

let recovery =
  Arg.(
    value & opt string "splice"
    & info [ "recovery" ] ~docv:"R" ~doc:"none, rollback, splice or replicate:K.")

let ckpt_keep_all =
  Arg.(value & flag & info [ "keep-all-checkpoints" ] ~doc:"Disable topmost-only pruning (Q8).")

let ancestor_depth =
  Arg.(
    value & opt int 1
    & info [ "ancestor-depth" ] ~docv:"D"
        ~doc:"Ancestor links per packet: 1 = grandparent, 2 adds great-grandparent (§5.2).")

let inline_depth =
  Arg.(
    value
    & opt (some int) None
    & info [ "inline-depth" ] ~docv:"D" ~doc:"Evaluate calls at stamp depth >= D inline.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Deterministic RNG seed.")

let detect_delay =
  Arg.(value & opt int 200 & info [ "detect-delay" ] ~docv:"T" ~doc:"Failure detection latency.")

let workload =
  Arg.(
    value
    & opt (some string) None
    & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Built-in workload (fib, tree_sum, ...).")

let size = Arg.(value & opt string "small" & info [ "size" ] ~docv:"S" ~doc:"tiny|small|medium|large.")

let program_file =
  Arg.(value & opt (some file) None & info [ "program" ] ~docv:"FILE" ~doc:"Source file to run.")

let entry = Arg.(value & opt string "main" & info [ "entry" ] ~docv:"F" ~doc:"Entry function.")

let args =
  Arg.(value & opt_all int [] & info [ "arg" ] ~docv:"N" ~doc:"Integer argument (repeatable).")

let failures =
  Arg.(
    value
    & opt_all failure_conv []
    & info [ "fail" ] ~docv:"TIME@PROC" ~doc:"Fail-stop a processor (repeatable).")

let show_journal = Arg.(value & flag & info [ "journal" ] ~doc:"Dump the lifecycle journal.")

let show_trace = Arg.(value & flag & info [ "trace" ] ~doc:"Dump the protocol trace.")

let show_stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print counters and work totals.")

let show_timeline =
  Arg.(value & flag & info [ "timeline" ] ~doc:"Draw the per-processor activity timeline.")

let drain = Arg.(value & flag & info [ "drain" ] ~doc:"Keep simulating after the answer arrives.")

let cmd =
  let doc = "run applicative programs on a simulated fault-tolerant multiprocessor" in
  Cmd.v (Cmd.info "recflow" ~doc)
    Term.(
      const main $ nodes $ topology $ policy $ recovery $ ckpt_keep_all $ ancestor_depth
      $ inline_depth $ seed $ detect_delay $ workload $ size $ program_file $ entry $ args
      $ failures $ show_journal $ show_trace $ show_stats $ show_timeline $ drain)

let () = exit (Cmd.eval' cmd)
