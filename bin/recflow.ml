(* recflow — run an applicative program on the simulated multiprocessor.

   Examples:
     recflow --workload fib --size medium --nodes 8
     recflow --workload tree_sum --recovery rollback --fail 3000@2 --journal
     recflow --program my.rf --entry main --arg 10 --arg 20 --topology mesh:4x4 \
             --policy random --recovery splice --fail 500@1 --fail 900@5 --trace
     recflow --workload fib --size small --fail 500@1 \
             --emit-trace t.json --metrics-json m.json --trace-jsonl t.jsonl
     recflow --program my.rf --check            # static analysis only
     recflow --workload tak --check-json        # machine-readable report

   Every run is gated by the static checker: analysis errors (RF0xx/RF1xx)
   refuse to start the cluster (escape hatch: --no-check), warnings go to
   stderr. *)

module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Journal = Recflow_machine.Journal
module Workload = Recflow_workload.Workload
module Value = Recflow_lang.Value
module Counter = Recflow_stats.Counter
module Trace = Recflow_sim.Trace
module Sink = Recflow_obs_core.Sink
module Json = Recflow_obs_core.Json
module Profile = Recflow_obs_core.Profile
module Perfetto = Recflow_obs.Perfetto
module Episode = Recflow_obs.Episode
module Metrics = Recflow_obs.Metrics
module Check = Recflow_analysis.Check
module Diagnostic = Recflow_analysis.Diagnostic
module Shape = Recflow_analysis.Shape
module Cost = Recflow_analysis.Cost
module Service = Recflow_service.Service
module Hdr = Recflow_stats.Hdr

let parse_failure s =
  match String.split_on_char '@' s with
  | [ time; proc ] -> (
    match (int_of_string_opt time, int_of_string_opt proc) with
    | Some t, Some p when t >= 0 && p >= 0 -> Ok (t, p)
    | _ -> Error (`Msg (Printf.sprintf "bad failure spec %S (want TIME@PROC)" s)))
  | _ -> Error (`Msg (Printf.sprintf "bad failure spec %S (want TIME@PROC)" s))

let size_of_string = function
  | "tiny" -> Ok Workload.Tiny
  | "small" -> Ok Workload.Small
  | "medium" -> Ok Workload.Medium
  | "large" -> Ok Workload.Large
  | s -> Error (Printf.sprintf "unknown size %S" s)

let recovery_of_string s =
  match String.split_on_char ':' s with
  | [ "none" ] -> Ok Config.No_recovery
  | [ "rollback" ] -> Ok Config.Rollback
  | [ "splice" ] -> Ok Config.Splice
  | [ "replicate"; k ] -> (
    match int_of_string_opt k with
    | Some k when k >= 1 -> Ok (Config.Replicate k)
    | _ -> Error (Printf.sprintf "bad replication factor in %S" s))
  | _ -> Error (Printf.sprintf "unknown recovery %S (none|rollback|splice|replicate:K)" s)

(* --serve: a stream of independent requests into one persistent cluster
   instead of a single batch program.  Restricted to built-in workloads —
   the service layer checks every delivered answer against the serial
   reference, which only workloads carry. *)
let serve_main cfg ~workload_name ~size ~size_name ~requests ~arrival_mean ~service_replicas
    ~max_inflight ~shed_frac ~failures ~service_json =
  let ( let* ) r f = match r with Ok v -> f v | Error msg -> (Format.eprintf "%s@." msg; 1) in
  let* w =
    match Option.bind workload_name Workload.by_name with
    | Some w -> Ok w
    | None -> Error "--serve requires --workload (the per-request oracle needs the serial reference)"
  in
  let cfg =
    {
      cfg with
      Config.service =
        { Config.arrival_mean; replicas = service_replicas; max_inflight;
          shed_suspect_frac = shed_frac };
    }
  in
  let* () =
    match Config.validate cfg with
    | Ok () -> Ok ()
    | Error msg -> Error ("invalid configuration: " ^ msg)
  in
  let o = Service.run ~failures ~config:cfg ~workload:w ~size ~requests () in
  let c = o.Service.counts in
  Format.printf "offered %d: completed %d, masked %d, recovered %d, shed %d (overload %d, suspects %d)@."
    c.Service.offered c.Service.completed c.Service.masked c.Service.recovered (Service.shed c)
    c.Service.shed_overload c.Service.shed_suspects;
  let h = Cluster.latency o.Service.cluster "service.latency" in
  if Hdr.count h > 0 then
    Format.printf "latency: p50 %d, p99 %d, p999 %d (over %d finished)@." (Hdr.quantile h 50.0)
      (Hdr.quantile h 99.0) (Hdr.quantile h 99.9) (Hdr.count h);
  Format.printf "goodput: %.2f requests/kilotick over %d simulated ticks (%d events)@."
    o.Service.goodput o.Service.sim_time o.Service.events;
  Format.printf "all answers match the serial reference: %b@." o.Service.all_correct;
  (match Episode.analyze (Cluster.journal o.Service.cluster) with
  | [] -> ()
  | episodes ->
    Format.printf "@.recovery episodes:@.";
    List.iter (fun e -> Format.printf "  %a@." Episode.pp e) episodes);
  Option.iter
    (fun path ->
      Json.write_file ~path (Service.to_json ?workload:workload_name ~size:size_name o);
      Format.printf "service metrics written to %s@." path)
    service_json;
  if o.Service.all_correct then 0 else 1

(* --explain RF<code>: print the rule doc and exit without touching a
   program (the only recflow invocation that needs neither --workload nor
   --program). *)
let explain_main code =
  let code = String.uppercase_ascii (String.trim code) in
  match Diagnostic.of_code_string code with
  | Some c ->
    Format.printf "%s (%s)@.%s@." code
      (Diagnostic.severity_string (Diagnostic.severity_of_code c))
      (Diagnostic.explain c);
    0
  | None ->
    Format.eprintf "unknown rule code %S (known: %s)@." code
      (String.concat ", " (List.map Diagnostic.code_string Diagnostic.all_codes));
    1

let main nodes topology policy recovery ckpt_keep_all ancestor_depth inline_depth seed
    detect_delay workload_name size_name program_file entry args failures show_journal
    show_trace trace_limit show_stats show_timeline drain emit_trace metrics_json trace_jsonl
    trace_sample profile profile_json check_only check_json werror no_check serve requests
    arrival_mean service_replicas max_inflight shed_frac service_json explain_code loss_prior
    ckpt_cost =
  let ( let* ) r f = match r with Ok v -> f v | Error msg -> (Format.eprintf "%s@." msg; 1) in
  match explain_code with
  | Some code -> explain_main code
  | None ->
  let* topology =
    match topology with
    | Some t -> Recflow_net.Topology.of_string t
    | None -> Ok (Recflow_net.Topology.Full nodes)
  in
  let* recovery = recovery_of_string recovery in
  let* size = size_of_string size_name in
  let* source, entry, argv, expected =
    match (workload_name, program_file) with
    | Some name, None -> (
      match Workload.by_name name with
      | Some w ->
        Ok
          ( w.Workload.source,
            w.Workload.entry,
            w.Workload.args size,
            Some (fun () -> Workload.expected w size) )
      | None ->
        Error
          (Printf.sprintf "unknown workload %S (have: %s)" name
             (String.concat ", " (List.map (fun w -> w.Workload.name) Workload.all))))
    | None, Some path -> (
      match In_channel.with_open_text path In_channel.input_all with
      | source -> Ok (source, entry, List.map (fun n -> Value.Int n) args, None)
      | exception Sys_error msg -> Error msg)
    | Some _, Some _ -> Error "give either --workload or --program, not both"
    | None, None -> Error "give --workload NAME or --program FILE (see --help)"
  in
  (* Static analysis happens before anything touches the machine: --check
     stops here, a normal run refuses on errors unless --no-check. *)
  let report = Check.check_source ~entries:[ entry ] source in
  if check_only || check_json then begin
    if check_json then print_endline (Check.render_json report)
    else print_endline (Check.render_human report);
    if Check.ok ~werror report then 0 else 1
  end
  else
    let* () =
      match Check.errors report with
      | [] -> Ok ()
      | errs when not no_check ->
        List.iter (fun d -> Format.eprintf "%s@." (Diagnostic.to_string d)) errs;
        Error
          (Printf.sprintf "%s — refusing to run (use --no-check to override)"
             (Check.summary_line report))
      | _ -> Ok ()
    in
    List.iter
      (fun d -> Format.eprintf "%s@." (Diagnostic.to_string d))
      (Check.warnings report);
    let* () =
      match (werror, Check.warnings report) with
      | true, _ :: _ -> Error "warnings treated as errors (--werror)"
      | _ -> Ok ()
    in
    let* program =
      match report.Check.program with
      | Some p -> Ok p
      | None -> (
        (* only reachable with --no-check; structural validity is still
           required to run at all *)
        match Recflow_lang.Parser.parse_program source with
        | Ok p -> Ok p
        | Error msg -> Error msg)
    in
    let auto = policy = "auto" in
    let* policy =
      if auto || policy = "gradient:auto" then (
        match report.Check.shape with
        | Some shape ->
          let fanout =
            Shape.program_fanout_bound ~entries:report.Check.entries shape program
          in
          let weight = Recflow_balance.Policy.suggest_gradient_weight ~fanout in
          Format.eprintf "%s: static fan-out bound %d, using gradient:%d@."
            (if auto then "auto" else "gradient:auto")
            fanout weight;
          Ok (Recflow_balance.Policy.Gradient { weight })
        | None ->
          Error ((if auto then "auto" else "gradient:auto") ^ ": program did not analyse cleanly"))
      else Recflow_balance.Policy.spec_of_string policy
    in
    (* --policy auto also drives checkpoint admission: the static work and
       depth bounds of this entry call, times the operator's loss prior,
       decide how deep checkpoints still pay for their recording cost. *)
    let* ckpt_mode =
      if auto then begin
        if ckpt_keep_all then
          Error
            "--policy auto drives adaptive checkpoint admission and conflicts with \
             --keep-all-checkpoints"
        else
          match report.Check.cost with
          | None -> Error "auto: program did not analyse cleanly"
          | Some cost -> (
            let eb = Cost.entry_bounds cost ~entry ~args:argv in
            let work =
              match Cost.find cost entry with
              | Some fc -> fc.Cost.work_per_activation
              | None -> 1
            in
            (* spawns below --inline-depth are inlined and never reach the
               checkpoint table; the static call-depth bound also counts
               inlined frames, so cap it at the spawn horizon *)
            let depth_bound =
              match inline_depth with
              | Some i -> Option.map (fun d -> min d i) eb.Cost.depth
              | None -> eb.Cost.depth
            in
            match
              Recflow_balance.Policy.suggest_ckpt_admission ~work_per_activation:work
                ~fanout:eb.Cost.fanout ~depth_bound ~loss_rate:loss_prior ~ckpt_cost
            with
            | Some d ->
              Format.eprintf "auto: adaptive checkpoint admission to stamp depth %d@." d;
              Ok (Config.Adaptive { max_depth = d })
            | None ->
              Format.eprintf "auto: no admission cutoff, topmost checkpointing@.";
              Ok (Config.Fixed Recflow_recovery.Ckpt_table.Topmost))
      end
      else
        Ok
          (Config.Fixed
             (if ckpt_keep_all then Recflow_recovery.Ckpt_table.Keep_all
              else Recflow_recovery.Ckpt_table.Topmost))
    in
    let expected = Option.map (fun f -> f ()) expected in
  let cfg =
    {
      (Config.default ~nodes) with
      Config.topology;
      policy;
      recovery;
      ckpt_mode;
      ckpt_cost;
      loss_prior;
      ancestor_depth;
      inline_depth = (match inline_depth with Some d -> d | None -> max_int);
      seed;
      detect_delay;
    }
  in
  let* () =
    match Config.validate cfg with
    | Ok () -> Ok ()
    | Error msg -> Error ("invalid configuration: " ^ msg)
  in
  if serve then
    serve_main cfg ~workload_name ~size ~size_name ~requests ~arrival_mean ~service_replicas
      ~max_inflight ~shed_frac ~failures ~service_json
  else begin
  let nodes_n = Recflow_net.Topology.size cfg.Config.topology in
  let profiling = profile || profile_json <> None in
  if profiling then begin
    Profile.set_enabled true;
    Profile.reset ()
  end;
  let cluster = Cluster.create cfg program in
  (* stream the full protocol trace to disk while it happens — the ring
     only retains the newest [trace_capacity] records *)
  let jsonl_sink =
    Option.map
      (fun path ->
        let file_sink = Sink.file ~render:Trace.to_json_line path in
        let s =
          match trace_sample with
          | Some k when k > 1 -> Sink.sample ~every:k file_sink
          | _ -> file_sink
        in
        Trace.attach_sink (Cluster.trace cluster) s;
        s)
      trace_jsonl
  in
  (* the Chrome-trace export streams too: journal entries convert to trace
     events as they are recorded, so the exporter never holds the event
     list — only the currently-open slices *)
  let perfetto_stream =
    Option.map
      (fun path ->
        let oc = open_out path in
        output_string oc "[";
        let first = ref true in
        let base =
          Sink.of_fun
            ~flush:(fun () -> flush oc)
            (fun ev ->
              if !first then first := false else output_string oc ",\n";
              output_string oc (Json.to_string ev))
        in
        let stream = Perfetto.Stream.create ~nodes:nodes_n ~sink:base in
        Journal.attach_sink (Cluster.journal cluster) (Perfetto.Stream.entry_sink stream);
        (path, oc, base, stream))
      emit_trace
  in
  List.iter (fun (t, p) -> Cluster.fail_at cluster ~time:t p) failures;
  Cluster.start cluster ~fname:entry ~args:argv;
  let wall_t0 = Unix.gettimeofday () in
  let outcome = Cluster.run ~drain cluster in
  let wall_s = Unix.gettimeofday () -. wall_t0 in
  (match (jsonl_sink, trace_sample) with
  | Some s, Some k when k > 1 ->
    Format.printf "trace-jsonl: kept %d of %d records (1-in-%d sampling)@."
      (Sink.emitted s - Sink.dropped s)
      (Sink.emitted s) k
  | _ -> ());
  Option.iter Sink.close jsonl_sink;
  (match outcome.Cluster.answer with
  | Some v ->
    Format.printf "answer: %s (at t=%s)@." (Value.to_string v)
      (match outcome.Cluster.answer_time with Some t -> string_of_int t | None -> "?");
    (match expected with
    | Some e when not (Value.equal e v) ->
      Format.printf "WARNING: differs from serial reference %s@." (Value.to_string e)
    | _ -> ())
  | None ->
    Format.printf "no answer (sim ended at t=%d%s)@." outcome.Cluster.sim_time
      (match outcome.Cluster.error with Some e -> "; program error: " ^ e | None -> ""));
  Format.printf "events: %d, simulated time: %d@." outcome.Cluster.events outcome.Cluster.sim_time;
  if show_stats then begin
    Format.printf "@.counters:@.";
    Counter.pp Format.std_formatter (Cluster.counters cluster);
    Format.printf "total work: %d ticks, wasted: %d ticks@." (Cluster.total_work cluster)
      (Cluster.total_waste cluster);
    match Episode.analyze (Cluster.journal cluster) with
    | [] -> ()
    | episodes ->
      Format.printf "@.recovery episodes:@.";
      List.iter (fun e -> Format.printf "  %a@." Episode.pp e) episodes
  end;
  if show_timeline then begin
    Format.printf "@.timeline:@.";
    print_string
      (Recflow_machine.Timeline.render (Cluster.journal cluster)
         ~nodes:(Recflow_net.Topology.size cfg.Config.topology) ())
  end;
  if show_journal then begin
    Format.printf "@.journal:@.";
    List.iter
      (fun e -> Format.printf "%a@." Journal.pp_entry e)
      (Journal.entries (Cluster.journal cluster))
  end;
  if show_trace then begin
    Format.printf "@.trace:@.";
    Trace.dump ?limit:trace_limit Format.std_formatter (Cluster.trace cluster)
  end;
  Option.iter
    (fun (path, oc, base, stream) ->
      Perfetto.Stream.finish stream;
      (* the occupancy counter track is reconstructed from the retained
         journal and appended after the streamed events *)
      List.iter (Sink.emit base)
        (Perfetto.occupancy_events (Cluster.journal cluster) ~nodes:nodes_n ~buckets:96);
      output_string oc "]\n";
      close_out oc;
      Format.printf "perfetto trace written to %s (open in ui.perfetto.dev)@." path)
    perfetto_stream;
  Option.iter
    (fun path ->
      let doc =
        Metrics.run_json ?workload:workload_name
          ?size:(Option.map (fun _ -> size_name) workload_name)
          ?expected ~cluster ~outcome ()
      in
      Metrics.write ~path doc;
      Format.printf "metrics written to %s@." path)
    metrics_json;
  if profiling then begin
    if profile then Format.printf "@.%a" Profile.pp_report ();
    Option.iter
      (fun path ->
        let meta =
          [ ("tool", Json.Str "recflow"); ("seed", Json.Int cfg.Config.seed) ]
          @ match workload_name with Some w -> [ ("workload", Json.Str w) ] | None -> []
        in
        Json.write_file ~path (Profile.to_json ~wall_s ~meta ());
        Format.printf "profile written to %s@." path)
      profile_json
  end
  else ignore wall_s;
  match outcome.Cluster.answer with Some _ -> 0 | None -> 1
  end

open Cmdliner

let failure_conv = Arg.conv (parse_failure, fun ppf (t, p) -> Format.fprintf ppf "%d@@%d" t p)

let nodes = Arg.(value & opt int 8 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Processor count.")

let topology =
  Arg.(
    value
    & opt (some string) None
    & info [ "topology" ] ~docv:"SPEC" ~doc:"full:N, ring:N, mesh:RxC or cube:D (default full).")

let policy =
  Arg.(
    value & opt string "gradient"
    & info [ "policy" ] ~docv:"P"
        ~doc:
          "gradient[:W], gradient:auto (weight from the static fan-out bound), auto \
           (gradient:auto plus adaptive checkpoint admission from the static cost bounds), \
           random, round-robin, static, neighborhood[:R].")

let recovery =
  Arg.(
    value & opt string "splice"
    & info [ "recovery" ] ~docv:"R" ~doc:"none, rollback, splice or replicate:K.")

let ckpt_keep_all =
  Arg.(value & flag & info [ "keep-all-checkpoints" ] ~doc:"Disable topmost-only pruning (Q8).")

let explain_code =
  Arg.(
    value
    & opt (some string) None
    & info [ "explain" ] ~docv:"CODE"
        ~doc:"Print the one-paragraph rule doc for $(docv) (e.g. RF301) and exit.")

let loss_prior =
  Arg.(
    value & opt float 0.0
    & info [ "loss-prior" ] ~docv:"P"
        ~doc:
          "Prior probability in [0,1] that a spawned task is lost to a failure; with \
           $(b,--policy auto) it scales the expected recovery saving of each checkpoint.")

let ckpt_cost =
  Arg.(
    value & opt int 0
    & info [ "ckpt-cost" ] ~docv:"T"
        ~doc:
          "Ticks charged at spawn per checkpoint actually stored (default 0: recording is \
           free, as in the paper's base model).")

let ancestor_depth =
  Arg.(
    value & opt int 1
    & info [ "ancestor-depth" ] ~docv:"D"
        ~doc:"Ancestor links per packet: 1 = grandparent, 2 adds great-grandparent (§5.2).")

let inline_depth =
  Arg.(
    value
    & opt (some int) None
    & info [ "inline-depth" ] ~docv:"D" ~doc:"Evaluate calls at stamp depth >= D inline.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Deterministic RNG seed.")

let detect_delay =
  Arg.(value & opt int 200 & info [ "detect-delay" ] ~docv:"T" ~doc:"Failure detection latency.")

let workload =
  Arg.(
    value
    & opt (some string) None
    & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Built-in workload (fib, tree_sum, ...).")

let size = Arg.(value & opt string "small" & info [ "size" ] ~docv:"S" ~doc:"tiny|small|medium|large.")

let program_file =
  Arg.(value & opt (some file) None & info [ "program" ] ~docv:"FILE" ~doc:"Source file to run.")

let entry = Arg.(value & opt string "main" & info [ "entry" ] ~docv:"F" ~doc:"Entry function.")

let args =
  Arg.(value & opt_all int [] & info [ "arg" ] ~docv:"N" ~doc:"Integer argument (repeatable).")

let failures =
  Arg.(
    value
    & opt_all failure_conv []
    & info [ "fail" ] ~docv:"TIME@PROC" ~doc:"Fail-stop a processor (repeatable).")

let show_journal = Arg.(value & flag & info [ "journal" ] ~doc:"Dump the lifecycle journal.")

let show_trace = Arg.(value & flag & info [ "trace" ] ~doc:"Dump the protocol trace.")

let trace_limit =
  Arg.(
    value
    & opt (some int) None
    & info [ "trace-limit" ] ~docv:"N" ~doc:"With $(b,--trace): only the last $(docv) records.")

let show_stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print counters and work totals.")

let show_timeline =
  Arg.(value & flag & info [ "timeline" ] ~doc:"Draw the per-processor activity timeline.")

let drain = Arg.(value & flag & info [ "drain" ] ~doc:"Keep simulating after the answer arrives.")

let emit_trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-trace" ] ~docv:"FILE"
        ~doc:"Write a Chrome-trace-format $(docv) (view in ui.perfetto.dev).")

let metrics_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"FILE"
        ~doc:"Write run metadata, counters and recovery-episode metrics as JSON to $(docv).")

let trace_jsonl =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-jsonl" ] ~docv:"FILE"
        ~doc:
          "Stream every protocol trace record to $(docv) as JSON lines while the run executes \
           (unbounded, unlike the in-memory ring).")

let trace_sample =
  Arg.(
    value
    & opt (some int) None
    & info [ "trace-sample" ] ~docv:"N"
        ~doc:
          "With $(b,--trace-jsonl): write only every $(docv)-th record (deterministic 1-in-N \
           rate sampling); skipped records are counted, never silently lost.")

let profile =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Time the engine/checkpoint/recovery phases and print an ASCII self-time report \
           after the run.")

let profile_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-json" ] ~docv:"FILE"
        ~doc:"Write the phase profile as a recflow.profile/1 JSON document to $(docv).")

let check_only =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:"Run the static analyser and exit (0 clean, 1 findings); don't simulate.")

let check_json =
  Arg.(
    value & flag
    & info [ "check-json" ] ~doc:"Like $(b,--check) but print the report as one JSON object.")

let werror =
  Arg.(value & flag & info [ "werror" ] ~doc:"Treat analysis warnings as errors.")

let no_check =
  Arg.(
    value & flag
    & info [ "no-check" ]
        ~doc:"Skip the pre-run analysis gate (structural validity is still required).")

let serve =
  Arg.(
    value & flag
    & info [ "serve" ]
        ~doc:
          "Service mode: feed an open-loop stream of independent requests into one persistent \
           cluster instead of running a single batch program.  Requires $(b,--workload); \
           $(b,--fail) kills strike mid-stream.  Exits 0 iff every delivered answer matches \
           the serial reference.")

let requests =
  Arg.(
    value & opt int 100
    & info [ "requests" ] ~docv:"N" ~doc:"With $(b,--serve): number of requests to offer.")

let arrival_mean =
  Arg.(
    value & opt float 400.0
    & info [ "arrival-mean" ] ~docv:"T"
        ~doc:"With $(b,--serve): mean inter-arrival gap in ticks (Poisson arrivals).")

let service_replicas =
  Arg.(
    value & opt int 1
    & info [ "service-replicas" ] ~docv:"K"
        ~doc:
          "With $(b,--serve): dispatch each request as $(docv) replica roots on distinct \
           processors and take the first majority (§5.3 failure masking).")

let max_inflight =
  Arg.(
    value & opt int 64
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:"With $(b,--serve): shed arrivals while $(docv) requests are already in flight.")

let shed_frac =
  Arg.(
    value & opt float 1.0
    & info [ "shed-frac" ] ~docv:"F"
        ~doc:
          "With $(b,--serve): shed arrivals while the dead + suspected processor fraction \
           exceeds $(docv) (1.0 never sheds on suspicion).")

let service_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "service-json" ] ~docv:"FILE"
        ~doc:
          "With $(b,--serve): write traffic counts, latency percentiles and episode metrics \
           as a recflow.service/1 JSON document to $(docv).")

let cmd =
  let doc = "run applicative programs on a simulated fault-tolerant multiprocessor" in
  Cmd.v (Cmd.info "recflow" ~doc)
    Term.(
      const main $ nodes $ topology $ policy $ recovery $ ckpt_keep_all $ ancestor_depth
      $ inline_depth $ seed $ detect_delay $ workload $ size $ program_file $ entry $ args
      $ failures $ show_journal $ show_trace $ trace_limit $ show_stats $ show_timeline $ drain
      $ emit_trace $ metrics_json $ trace_jsonl $ trace_sample $ profile $ profile_json
      $ check_only $ check_json $ werror $ no_check $ serve $ requests $ arrival_mean
      $ service_replicas $ max_inflight $ shed_frac $ service_json $ explain_code $ loss_prior
      $ ckpt_cost)

let () = exit (Cmd.eval' cmd)
