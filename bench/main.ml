(* Bechamel benchmark harness.

   Two layers:
   1. micro-benchmarks of the hot data structures (level stamps, checkpoint
      tables, the event engine, RNG, the graph evaluator, the serial
      evaluator, the voter);
   2. one benchmark per reproduced figure/table (F1..Q8), each running a
      reduced instance of the corresponding experiment kernel — the
      wall-clock cost of regenerating that row of the paper.

   Plus hand-timed wall-clock sections (pool construction hoisted out of
   every timed window): the sequential-vs-parallel sweep with warm and
   cold rows, the observability A/B, and one simulation sharded across
   domains.  Maintenance modes: --check-json (schema validation),
   --diff OLD NEW (per-row regression gate), --scaling-check (loose
   multicore speedup assert, skipped on single-core hosts).

   After the Bechamel run the harness regenerates every experiment table in
   quick mode, so the benchmark log doubles as a reproduction record. *)

open Bechamel

module Stamp = Recflow_recovery.Stamp
module Ckpt_table = Recflow_recovery.Ckpt_table
module Packet = Recflow_recovery.Packet
module Vote = Recflow_recovery.Vote
module Value = Recflow_lang.Value
module Graph = Recflow_lang.Graph
module Inst = Recflow_lang.Instance
module Engine = Recflow_sim.Engine
module Rng = Recflow_sim.Rng
module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Workload = Recflow_workload.Workload
module Json = Recflow_obs_core.Json
module Service = Recflow_service.Service
module Hdr = Recflow_stats.Hdr

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks                                                    *)
(* ------------------------------------------------------------------ *)

let deep_stamp =
  let rec go s n = if n = 0 then s else go (Stamp.child s (n mod 3)) (n - 1) in
  go Stamp.root 12

let bench_stamp_ancestor =
  Test.make ~name:"stamp.is_ancestor depth-12"
    (Staged.stage (fun () ->
         ignore (Stamp.is_ancestor deep_stamp (Stamp.child deep_stamp 1))))

let bench_stamp_hash =
  Test.make ~name:"stamp.hash depth-12" (Staged.stage (fun () -> ignore (Stamp.hash deep_stamp)))

let mk_packet stamp =
  Packet.make ~stamp ~fname:"f" ~args:[| Value.Int 1 |]
    ~parent:{ Packet.task = 1; proc = 0; slot = 0 }
    ~grandparent:None ~ancestors:[]

let bench_ckpt_record =
  Test.make ~name:"ckpt_table 32x record+discharge"
    (Staged.stage (fun () ->
         let t = Ckpt_table.create () in
         for i = 0 to 31 do
           let stamp = Stamp.child (Stamp.child Stamp.root (i mod 4)) i in
           ignore (Ckpt_table.record t ~dest:(i mod 8) (mk_packet stamp))
         done;
         for i = 0 to 31 do
           let stamp = Stamp.child (Stamp.child Stamp.root (i mod 4)) i in
           ignore (Ckpt_table.discharge t ~dest:(i mod 8) stamp)
         done))

let bench_engine =
  Test.make ~name:"engine 1k schedule+dispatch"
    (Staged.stage (fun () ->
         let e = Engine.create () in
         for i = 1 to 1000 do
           Engine.schedule e ~delay:(i mod 17) i
         done;
         Engine.run e (fun _ _ -> ())))

let bench_rng =
  Test.make ~name:"rng 1k bounded ints"
    (Staged.stage
       (let t = Rng.create 1 in
        fun () ->
          for _ = 1 to 1000 do
            ignore (Rng.int t 1024)
          done))

let fib_program =
  Recflow_lang.Parser.parse_program_exn
    "def fib(n) = if n < 2 then n else fib(n - 1) + fib(n - 2)"

let fib_library = Graph.compile_program fib_program

let bench_serial_eval =
  Test.make ~name:"serial eval fib-15"
    (Staged.stage (fun () ->
         ignore (Recflow_lang.Eval_serial.eval fib_program "fib" [ Value.Int 15 ])))

let bench_graph_eval =
  Test.make ~name:"graph eval fib-12"
    (Staged.stage (fun () ->
         let rec run fname args =
           let inst = Inst.create (Graph.find_exn fib_library fname) args in
           let rec loop () =
             match Inst.step inst with
             | Inst.Work _ -> loop ()
             | Inst.Spawn { slot; fname; args } ->
               Inst.supply inst slot (run fname args);
               loop ()
             | Inst.Finished v -> v
             | Inst.Blocked | Inst.Failed _ -> assert false
           in
           loop ()
         in
         ignore (run "fib" [| Value.Int 12 |])))

let bench_vote =
  Test.make ~name:"vote 5-replica decision"
    (Staged.stage (fun () ->
         let v = Vote.create ~replicas:5 ~equal:Int.equal in
         ignore (Vote.add v 1);
         ignore (Vote.add v 1);
         ignore (Vote.add v 1)))

(* ------------------------------------------------------------------ *)
(* One kernel per reproduced figure/table                              *)
(* ------------------------------------------------------------------ *)

let run_cluster_full cfg w size failures =
  let c = Cluster.create cfg (Workload.program w) in
  Recflow_fault.Plan.apply c failures;
  Cluster.start c ~fname:w.Workload.entry ~args:(w.Workload.args size);
  let o = Cluster.run c in
  (c, o)

let run_cluster cfg w size failures = snd (run_cluster_full cfg w size failures)

let bench_fig1 =
  Test.make ~name:"F1+F2 figure-1 structural scenario"
    (Staged.stage (fun () -> ignore (Recflow_experiments.Exp_fig1.run ~quick:true ())))

let bench_fig3 =
  Test.make ~name:"F3 splice run w/ twin inheritance"
    (Staged.stage (fun () ->
         let cfg =
           { (Config.default ~nodes:8) with Config.recovery = Config.Splice;
             policy = Recflow_balance.Policy.Random }
         in
         ignore (run_cluster cfg Workload.tree_sum Workload.Small [ (400, 3) ])))

let case_family =
  {
    Workload.name = "bench_case_family";
    description = "";
    source =
      "def root_case(cw, dw) = pp(cw, dw) + 1\n\
       def pp(cw, dw) = dd(dw) + cc(cw)\n\
       def cc(cw) = spin(cw, 0)\n\
       def dd(dw) = spin(dw, 0)\n\
       def spin(k, acc) = if k == 0 then acc else spin(k - 1, acc + 1)";
    entry = "root_case";
    args = (fun _ -> [ Value.Int 400; Value.Int 3000 ]);
  }

let bench_fig5 =
  Test.make ~name:"F5 one case-analysis schedule"
    (Staged.stage (fun () ->
         let cfg =
           { (Config.default ~nodes:4) with Config.recovery = Config.Splice;
             policy = Recflow_balance.Policy.Random; inline_depth = 3; adoption_grace = 0 }
         in
         ignore (run_cluster cfg case_family Workload.Small [ (120, 2) ])))

let residue_chain =
  {
    Workload.name = "bench_residue";
    description = "";
    source =
      "def gg(w) = pp(w) + 1\n\
       def pp(w) = let r = cc(w) in r + (r - r)\n\
       def cc(w) = spin(w, 0)\n\
       def spin(k, acc) = if k == 0 then acc else spin(k - 1, acc + 1)";
    entry = "gg";
    args = (fun _ -> [ Value.Int 800 ]);
  }

let bench_fig6 =
  Test.make ~name:"F6 one spawn-state failure"
    (Staged.stage (fun () ->
         let cfg =
           { (Config.default ~nodes:4) with Config.recovery = Config.Splice; inline_depth = 3;
             policy = Recflow_balance.Policy.Random }
         in
         ignore (run_cluster cfg residue_chain Workload.Small [ (200, 1) ])))

let synthetic = Workload.synthetic ~branching:2 ~depth:8 ~grain:60

let quant_cfg recovery =
  { (Config.default ~nodes:8) with Config.recovery; inline_depth = 8;
    policy = Recflow_balance.Policy.Random }

let bench_q1 =
  Test.make ~name:"Q1 fault-free synthetic (ckpt armed)"
    (Staged.stage (fun () ->
         ignore (run_cluster (quant_cfg Config.Rollback) synthetic Workload.Small [])))

let bench_q2_rollback =
  Test.make ~name:"Q2+Q3 rollback of one failure"
    (Staged.stage (fun () ->
         ignore (run_cluster (quant_cfg Config.Rollback) synthetic Workload.Small [ (3000, 2) ])))

let bench_q2_splice =
  Test.make ~name:"Q2+Q3 splice of one failure"
    (Staged.stage (fun () ->
         ignore (run_cluster (quant_cfg Config.Splice) synthetic Workload.Small [ (3000, 2) ])))

let bench_q4 =
  Test.make ~name:"Q4 synthetic on 16 processors"
    (Staged.stage (fun () ->
         let cfg =
           { (quant_cfg Config.Splice) with Config.topology = Recflow_net.Topology.Full 16 }
         in
         ignore (run_cluster cfg synthetic Workload.Small [])))

let bench_q5 =
  Test.make ~name:"Q5 double failure, depth-2 links"
    (Staged.stage (fun () ->
         let cfg = { (quant_cfg Config.Splice) with Config.ancestor_depth = 2 } in
         ignore (run_cluster cfg synthetic Workload.Small [ (2000, 1); (2000, 2) ])))

let bench_q6 =
  Test.make ~name:"Q6 replicate k=3 masking a failure"
    (Staged.stage (fun () ->
         let w = Workload.synthetic ~branching:4 ~depth:2 ~grain:150 in
         let cfg =
           { (Config.default ~nodes:6) with Config.recovery = Config.Replicate 3;
             replicate_depth = 3; inline_depth = 3;
             policy = Recflow_balance.Policy.Random }
         in
         ignore (run_cluster cfg w Workload.Medium [ (600, 4) ])))

let bench_q7 =
  Test.make ~name:"Q7 static placement w/ failure"
    (Staged.stage (fun () ->
         let cfg =
           { (quant_cfg Config.Rollback) with
             Config.policy = Recflow_balance.Policy.Static_hash }
         in
         ignore (run_cluster cfg synthetic Workload.Small [ (3000, 2) ])))

let bench_q8 =
  Test.make ~name:"Q8 keep-all table w/ failure"
    (Staged.stage (fun () ->
         let cfg =
           { (quant_cfg Config.Rollback) with
             Config.ckpt_mode = Config.Fixed Recflow_recovery.Ckpt_table.Keep_all }
         in
         ignore (run_cluster cfg synthetic Workload.Small [ (3000, 2) ])))

let service_cfg k =
  { (Config.default ~nodes:8) with
    Config.recovery = Config.Splice; seed = 17;
    service =
      { Config.arrival_mean = 250.0; replicas = k; max_inflight = 64;
        shed_suspect_frac = 0.9 } }

let run_service ~k ~requests =
  Service.run ~failures:[ (3000, 0); (6000, 2) ] ~config:(service_cfg k)
    ~workload:Workload.fib ~size:Workload.Tiny ~requests ()

let bench_x6 =
  Test.make ~name:"X6 40-request stream, k=3, two kills"
    (Staged.stage (fun () -> ignore (run_service ~k:3 ~requests:40)))

let bench_x7 =
  Test.make ~name:"X7 adaptive admission (depth 3) w/ failure"
    (Staged.stage (fun () ->
         let cfg =
           { (quant_cfg Config.Rollback) with
             Config.ckpt_mode = Config.Adaptive { max_depth = 3 }; ckpt_cost = 8 }
         in
         ignore (run_cluster cfg synthetic Workload.Small [ (3000, 2) ])))

let bench_cost_pass =
  (* the static cost/depth analyzer itself: the full check pipeline over
     every named workload, the price `--policy auto` pays before a run *)
  Test.make ~name:"RF3xx cost pass over all workloads"
    (Staged.stage (fun () ->
         List.iter
           (fun (w : Workload.t) ->
             ignore
               (Recflow_analysis.Check.check_source ~entries:[ w.Workload.entry ]
                  w.Workload.source))
           Workload.all))

(* ------------------------------------------------------------------ *)
(* Sequential vs parallel sweep wall-clock                             *)
(* ------------------------------------------------------------------ *)

module Pool = Recflow_parallel.Pool
module Shardsim = Recflow_machine.Shardsim

(* A Q2-style sweep over the synthetic workload: one failure injected at a
   range of times under both recovery schemes — 16 independent simulations,
   the shape the experiments driver fans out under --jobs. *)
let sweep_points =
  List.concat_map
    (fun recovery -> List.init 8 (fun i -> (recovery, 1000 + (500 * i))))
    [ Config.Rollback; Config.Splice ]

let sweep_once pool =
  Pool.map pool
    (fun (recovery, t) ->
      let o = run_cluster (quant_cfg recovery) synthetic Workload.Small [ (t, 2) ] in
      (o.Cluster.sim_time, o.Cluster.events, o.Cluster.answer))
    sweep_points

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Warm measurement: the pool is constructed, its workers spawned and a
   full warmup sweep run *before* the timed window, which then takes the
   best of three repetitions.  The previous harness timed [Pool.create]
   and [shutdown] inside the window, so the "parallel sweep" rows of
   BENCH_5/BENCH_6 charged domain spawn + teardown (milliseconds) to a
   sub-second sweep and reported slowdowns that were mostly measurement. *)
let time_sweep_warm ~jobs =
  let pool = Pool.create ~jobs () in
  let outcomes = sweep_once pool in
  let best = ref infinity in
  for _ = 1 to 3 do
    let _, dt = timed (fun () -> sweep_once pool) in
    if dt < !best then best := dt
  done;
  Pool.shutdown pool;
  (outcomes, !best)

(* Cold measurement: spawn + sweep + join, all inside the window — the
   quantity the old harness accidentally measured, kept as an honest row
   of its own so the spawn overhead stays visible. *)
let time_sweep_cold ~jobs =
  snd
    (timed (fun () ->
         let pool = Pool.create ~jobs () in
         ignore (sweep_once pool);
         Pool.shutdown pool))

let report_sweep_scaling () =
  Format.printf "@.--- sequential vs parallel synthetic sweep (%d simulations) ---@."
    (List.length sweep_points);
  let recommended = Domain.recommended_domain_count () in
  let seq_outcomes, seq_t = time_sweep_warm ~jobs:1 in
  Format.printf "  jobs=1  warm %6.3f s@." seq_t;
  let two_outcomes, two_t = time_sweep_warm ~jobs:2 in
  Format.printf "  jobs=2  warm %6.3f s   speedup %.2fx@." two_t (seq_t /. two_t);
  let cold2_t = time_sweep_cold ~jobs:2 in
  Format.printf "  jobs=2  cold %6.3f s   (pool spawn+join inside the window)@." cold2_t;
  let rec_jobs = max 2 recommended in
  let rec_outcomes, rec_t =
    if rec_jobs = 2 then (two_outcomes, two_t) else time_sweep_warm ~jobs:rec_jobs
  in
  Format.printf "  jobs=%-2d warm %6.3f s   speedup %.2fx   results %s@." rec_jobs rec_t
    (seq_t /. rec_t)
    (if seq_outcomes = two_outcomes && seq_outcomes = rec_outcomes then "identical" else "DIFFER");
  if seq_outcomes <> two_outcomes || seq_outcomes <> rec_outcomes then
    failwith "parallel sweep diverged from sequential";
  let row name jobs ~warm wall =
    Json.Obj
      [
        ("name", Json.Str name);
        ("jobs", Json.Int jobs);
        ("warm", Json.Bool warm);
        ("wall_s", Json.Float wall);
        ("speedup_vs_jobs1_warm", Json.Float (seq_t /. wall));
      ]
  in
  Json.Obj
    [
      ("simulations", Json.Int (List.length sweep_points));
      ("recommended_domain_count", Json.Int recommended);
      ( "rows",
        Json.List
          ([
             row "jobs1_warm" 1 ~warm:true seq_t;
             row "jobs2_warm" 2 ~warm:true two_t;
             row "jobs2_cold" 2 ~warm:false cold2_t;
           ]
          @
          (* rec_jobs = 2 would duplicate the jobs2_warm row (and its name,
             which the --diff grouping keys on), so only emit it wider. *)
          if rec_jobs > 2 then
            [ row (Printf.sprintf "jobs%d_warm" rec_jobs) rec_jobs ~warm:true rec_t ]
          else []) );
      ("results_identical", Json.Bool true);
    ]

(* The loose scaling gate (tools/bench_diff.sh runs it next to the diff):
   a warm 2-domain sweep must actually beat the warm sequential one.  On a
   single-core host there is no parallelism to measure — two domains
   timeshare one core and the gate would only measure scheduler overhead —
   so it skips rather than asserts. *)
let scaling_check () =
  if Domain.recommended_domain_count () < 2 then begin
    Format.printf "scaling check: single-core host (recommended_domain_count=1), skipping@.";
    exit 0
  end;
  let _, seq_t = time_sweep_warm ~jobs:1 in
  let _, par_t = time_sweep_warm ~jobs:2 in
  let speedup = seq_t /. par_t in
  Format.printf "scaling check: jobs=1 warm %.3fs  jobs=2 warm %.3fs  speedup %.2fx@." seq_t par_t
    speedup;
  if speedup > 1.0 then exit 0
  else begin
    Format.eprintf "scaling check FAILED: warm jobs=2 sweep is not faster than jobs=1@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Sharded single run                                                  *)
(* ------------------------------------------------------------------ *)

(* One simulation sharded across domains (the tentpole of this PR's
   parallel work): serial vs a pinned 2-domain pool, warm on both sides,
   with the byte-identity of the journal digest asserted — a speedup that
   changed the simulation would be worthless. *)
let report_shard_run () =
  Format.printf "@.--- sharded single run (16 procs / 4 shards, serial vs 2 domains) ---@.";
  let p = { Shardsim.default_params with Shardsim.depth = 6; spin = 300 } in
  let expected = Shardsim.expected_answer p in
  ignore (Shardsim.run p);
  let serial, serial_t = timed (fun () -> Shardsim.run p) in
  let pool = Pool.create ~jobs:2 () in
  ignore (Shardsim.run ~pool p);
  let par, par_t = timed (fun () -> Shardsim.run ~pool p) in
  Pool.shutdown pool;
  let identical = String.equal serial.Shardsim.journal_digest par.Shardsim.journal_digest in
  Format.printf "  serial %6.1f ms   pool(2) %6.1f ms   speedup %.2fx   digests %s@."
    (serial_t *. 1e3) (par_t *. 1e3) (serial_t /. par_t)
    (if identical then "identical" else "DIFFER");
  if not identical then failwith "sharded run diverged under a pool";
  if serial.Shardsim.answer <> expected || par.Shardsim.answer <> expected then
    failwith "sharded run produced a wrong answer";
  Json.Obj
    [
      ("procs", Json.Int p.Shardsim.procs);
      ("shards", Json.Int p.Shardsim.shards);
      ("events", Json.Int serial.Shardsim.events);
      ("sim_time", Json.Int serial.Shardsim.sim_time);
      ("serial_wall_s", Json.Float serial_t);
      ("pool2_wall_s", Json.Float par_t);
      ("speedup", Json.Float (serial_t /. par_t));
      ("digest_match", Json.Bool identical);
    ]

(* ------------------------------------------------------------------ *)
(* Observability overhead A/B                                          *)
(* ------------------------------------------------------------------ *)

module Profile = Recflow_obs_core.Profile

(* Wall-clock the Q2-scale splice kernel with the profiling layer off vs
   on: same simulations, the only difference is whether the scoped timers
   in the engine/checkpoint/recovery paths are live.  The counters and
   latency histograms are unconditionally on in both runs — they are part
   of the product — so this isolates the *optional* obs cost. *)
let report_obs_overhead () =
  Format.printf "@.--- observability overhead (Q2-scale splice kernel) ---@.";
  (* The kernel is only a few milliseconds, so two back-to-back batches
     would measure scheduler noise as readily as profiling cost.
     Interleave off/on repetitions so every on rep has the off rep run
     immediately before it as its control, and take the *median of the
     paired deltas* (on_i - off_i): pairing cancels slow machine drift
     (both members see the same conditions) and the median discards the
     pairs where a preemption spike hit one member.  Per-side minima and
     medians are recorded alongside for the raw picture. *)
  let reps = 64 in
  let kernel () =
    ignore (run_cluster (quant_cfg Config.Splice) synthetic Workload.Small [ (3000, 2) ]);
    ignore (run_cluster (quant_cfg Config.Rollback) synthetic Workload.Small [ (3000, 2) ])
  in
  let timed () =
    let t0 = Unix.gettimeofday () in
    kernel ();
    Unix.gettimeofday () -. t0
  in
  let off = Array.make reps 0.0 and on_ = Array.make reps 0.0 in
  (* warmup both paths *)
  Profile.set_enabled false;
  kernel ();
  Profile.set_enabled true;
  Profile.reset ();
  kernel ();
  for i = 0 to reps - 1 do
    Profile.set_enabled false;
    off.(i) <- timed ();
    Profile.set_enabled true;
    on_.(i) <- timed ()
  done;
  Profile.set_enabled false;
  let median a =
    let s = Array.copy a in
    Array.sort compare s;
    if reps mod 2 = 1 then s.(reps / 2) else (s.((reps / 2) - 1) +. s.(reps / 2)) /. 2.0
  in
  let sum a = Array.fold_left ( +. ) 0.0 a in
  let min_of a = Array.fold_left min a.(0) a in
  let off_med = median off and on_med = median on_ in
  let off_min = min_of off and on_min = min_of on_ in
  let delta_med = median (Array.init reps (fun i -> on_.(i) -. off.(i))) in
  let overhead_pct = delta_med /. off_med *. 100.0 in
  Format.printf
    "  obs-off median %6.2f ms   paired-delta median %+.3f ms   overhead %+.1f%%   (mins %6.2f / %6.2f ms)@."
    (off_med *. 1e3) (delta_med *. 1e3) overhead_pct (off_min *. 1e3) (on_min *. 1e3);
  Json.Obj
    [
      ("kernel", Json.Str "Q2 splice+rollback, synthetic small, 1 failure");
      ("repetitions", Json.Int (2 * reps));
      ("interleaved", Json.Bool true);
      ("paired_delta_median_s", Json.Float delta_med);
      ("obs_off_min_s", Json.Float off_min);
      ("obs_on_min_s", Json.Float on_min);
      ("obs_off_median_s", Json.Float off_med);
      ("obs_on_median_s", Json.Float on_med);
      ("obs_off_wall_s", Json.Float (sum off));
      ("obs_on_wall_s", Json.Float (sum on_));
      ("overhead_pct", Json.Float overhead_pct);
    ]

(* Latency percentile block from one representative failure run, so the
   bench artefact carries the same percentile vocabulary as the metrics
   documents. *)
let report_latency_percentiles () =
  let c, _ = run_cluster_full (quant_cfg Config.Splice) synthetic Workload.Small [ (3000, 2) ] in
  Json.Obj
    (List.map
       (fun (name, h) -> (name, Recflow_obs.Metrics.hdr_json h))
       (Cluster.latency_hists c))

(* Service-mode wall-clock + quality row: one 80-request stream per
   replication degree through the same two-kill plan, reporting goodput
   and tail latency alongside the wall time.  These are the user-facing
   numbers of PR 8's service layer, so the bench artefact records them
   next to the per-figure kernels. *)
let report_service () =
  Format.printf "@.--- service mode (80-request stream, two kills, k=1 vs k=3) ---@.";
  let row k =
    let requests = 80 in
    ignore (run_service ~k ~requests);
    let o, wall = timed (fun () -> run_service ~k ~requests) in
    if not o.Service.all_correct then failwith "service bench stream returned a wrong answer";
    let h = Cluster.latency o.Service.cluster "service.latency" in
    let q p = if Hdr.count h = 0 then 0 else Hdr.quantile h p in
    let c = o.Service.counts in
    Format.printf
      "  k=%d  wall %6.1f ms   completed %2d  masked %2d  recovered %2d  shed %2d   p50 %5d  p99 %5d   goodput %.2f/kt@."
      k (wall *. 1e3) c.Service.completed c.Service.masked c.Service.recovered
      (Service.shed c) (q 50.0) (q 99.0) o.Service.goodput;
    Json.Obj
      [
        ("name", Json.Str (Printf.sprintf "service_k%d" k));
        ("replicas", Json.Int k);
        ("requests", Json.Int requests);
        ("wall_s", Json.Float wall);
        ("completed", Json.Int c.Service.completed);
        ("masked", Json.Int c.Service.masked);
        ("recovered", Json.Int c.Service.recovered);
        ("shed", Json.Int (Service.shed c));
        ("p50", Json.Int (q 50.0));
        ("p99", Json.Int (q 99.0));
        ("p999", Json.Int (q 99.9));
        ("goodput", Json.Float o.Service.goodput);
        ("all_correct", Json.Bool o.Service.all_correct);
      ]
  in
  Json.Obj [ ("rows", Json.List [ row 1; row 3 ]) ]

(* ------------------------------------------------------------------ *)
(* X8 scale kernels and the memory probe                               *)
(* ------------------------------------------------------------------ *)

(* Wrap a run with a Gc probe: peak heap words (sampled at every major
   slice — an upper bound on peak live words that avoids per-sample heap
   walks) and total allocated words.  Memory regressions — a reverted
   arena, a journal that retains again — show up here even when wall
   time hides them. *)
let mem_probe f =
  Gc.compact ();
  let peak = ref (Gc.quick_stat ()).Gc.heap_words in
  let alarm =
    Gc.create_alarm (fun () ->
        let h = (Gc.quick_stat ()).Gc.heap_words in
        if h > !peak then peak := h)
  in
  let a0 = Gc.allocated_bytes () in
  let r = f () in
  let allocated_words = int_of_float ((Gc.allocated_bytes () -. a0) /. 8.0) in
  Gc.delete_alarm alarm;
  let h = (Gc.quick_stat ()).Gc.heap_words in
  if h > !peak then peak := h;
  (r, !peak, allocated_words)

(* The X8 grid at full size, hand-timed: Bechamel would re-run the
   million-task row for its whole quota.  Fault-free, static placement,
   the scale machinery on (arena + batched delivery + non-retaining
   journal).  The row value entering the --diff gate is ns per engine
   event, which stays comparable if the grid ever grows. *)
let xscale_grid = [ (64, 14); (256, 17); (1024, 20) ]

let report_xscale () =
  Format.printf
    "@.--- X8 scale kernels (arena + batched delivery, hand-timed, full size) ---@.";
  let rows =
    List.map
      (fun (procs, depth) ->
        let grain = 20 in
        let w = Workload.synthetic ~branching:2 ~depth ~grain in
        let cfg =
          {
            (Config.default ~nodes:procs) with
            Config.policy = Recflow_balance.Policy.Static_hash;
            inline_depth = depth;
            batched_delivery = true;
            journal_retain = false;
          }
        in
        let ((c, o), wall), peak_heap_words, allocated_words =
          mem_probe (fun () -> timed (fun () -> run_cluster_full cfg w Workload.Medium []))
        in
        (* 2^depth leaves of [grain] each — checked in closed form; the
           serial evaluator has no fuel for the million-call tree. *)
        if o.Cluster.answer <> Some (Value.Int (grain * (1 lsl depth))) then
          failwith "xscale row returned a wrong answer";
        let tasks =
          1 + Recflow_stats.Counter.get (Cluster.counters c) "spawn.remote"
        in
        let ev_s = float_of_int o.Cluster.events /. wall in
        Format.printf
          "  p=%-5d d=%-2d tasks %8d  wall %6.2f s  events %9d  (%.0f ev/s)  peak heap %5.1f Mw@."
          procs depth tasks wall o.Cluster.events ev_s
          (float_of_int peak_heap_words /. 1e6);
        let name = Printf.sprintf "xscale/p%d_d%d" procs depth in
        let group_row = (name, Some (1e9 *. wall /. float_of_int o.Cluster.events)) in
        let detail =
          Json.Obj
            [
              ("name", Json.Str name);
              ("processors", Json.Int procs);
              ("depth", Json.Int depth);
              ("tasks", Json.Int tasks);
              ("events", Json.Int o.Cluster.events);
              ("makespan", Json.Int o.Cluster.sim_time);
              ("wall_s", Json.Float wall);
              ("events_per_s", Json.Float ev_s);
              ("peak_heap_words", Json.Int peak_heap_words);
              ("allocated_words", Json.Int allocated_words);
            ]
        in
        (group_row, detail))
      xscale_grid
  in
  (List.map fst rows, Json.Obj [ ("rows", Json.List (List.map snd rows)) ])

(* The standing memory row: the Q2 splice kernel under the probe, so the
   bench artefact tracks the footprint of the *default* (retaining,
   unbatched) configuration too, not just the scale path. *)
let report_mem () =
  let (_, _), peak_heap_words, allocated_words =
    mem_probe (fun () ->
        timed (fun () -> run_cluster (quant_cfg Config.Splice) synthetic Workload.Small [ (3000, 2) ]))
  in
  Format.printf "@.--- memory probe (Q2 splice kernel) ---@.";
  Format.printf "  peak heap %.1f Mw   allocated %.1f Mw@."
    (float_of_int peak_heap_words /. 1e6)
    (float_of_int allocated_words /. 1e6);
  Json.Obj
    [
      ("kernel", Json.Str "Q2 splice, synthetic small, 1 failure");
      ("peak_heap_words", Json.Int peak_heap_words);
      ("allocated_words", Json.Int allocated_words);
    ]

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let bench_schema = "recflow.bench/1"

let run_group ~quota name tests =
  let grouped = Test.make_grouped ~name (List.map (fun t -> t) tests) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second quota) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.sort (fun (a, _) (b, _) -> compare a b) rows
  |> List.map (fun (name, ols) ->
         let est =
           match Analyze.OLS.estimates ols with Some [ est ] -> Some est | _ -> None
         in
         (match est with
         | Some est -> Format.printf "  %-45s %14.1f ns/run@." name est
         | None -> Format.printf "  %-45s (no estimate)@." name);
         (name, est))

(* The gated micro rows include sub-100ns structures (stamp ops, the
   voter) that sit at the measurement noise floor of a virtualised host:
   a single OLS estimate of an *identical* binary can swing ±30–90%
   between recordings, which is exactly the phantom regression the diff
   gate exists to reject.  Interference (steal time, timer jitter, GC
   pacing) only ever adds time, so the per-row minimum across several
   independent estimates is the statistic closest to the code's true
   cost — record that. *)
let run_group_min ~quota ~trials name tests =
  let runs =
    List.init trials (fun i ->
        Format.printf "  [trial %d/%d]@." (i + 1) trials;
        run_group ~quota name tests)
  in
  match runs with
  | [] -> []
  | first :: rest ->
    Format.printf "  [min of %d trials]@." trials;
    List.map
      (fun (name, est) ->
        let best =
          List.fold_left
            (fun acc trial ->
              match List.assoc_opt name trial with
              | Some (Some e) -> (
                match acc with Some a -> Some (min a e) | None -> Some e)
              | _ -> acc)
            est rest
        in
        (match best with
        | Some e -> Format.printf "  %-45s %14.1f ns/run@." name e
        | None -> Format.printf "  %-45s (no estimate)@." name);
        (name, best))
      first

let json_of_rows rows =
  Json.List
    (List.map
       (fun (name, est) ->
         Json.Obj
           [
             ("name", Json.Str name);
             ("ns_per_run", match est with Some e -> Json.Float e | None -> Json.Null);
           ])
       rows)

(* Validate an emitted BENCH_<n>.json with the in-tree strict parser: the
   file must parse, carry the schema marker and at least one group with at
   least one named row.  [tools/bench_smoke.sh] drives this via the
   [@bench-smoke] alias. *)
let check_json path =
  let contents =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  match Json.parse contents with
  | Error e ->
    Format.eprintf "%s: JSON parse error: %s@." path e;
    exit 1
  | Ok doc ->
    let fail msg =
      Format.eprintf "%s: %s@." path msg;
      exit 1
    in
    (match Json.member "schema" doc with
    | Some (Json.Str s) when s = bench_schema -> ()
    | _ -> fail (Printf.sprintf "missing schema marker %S" bench_schema));
    (match Json.member "groups" doc with
    | Some (Json.List (_ :: _ as groups)) ->
      List.iter
        (fun g ->
          match Json.member "rows" g with
          | Some (Json.List (_ :: _ as rows)) ->
            List.iter
              (fun r ->
                match Json.member "name" r with
                | Some (Json.Str _) -> ()
                | _ -> fail "row without a name")
              rows
          | _ -> fail "group without rows")
        groups
    | _ -> fail "missing groups");
    Format.printf "%s: valid %s document@." path bench_schema

(* ------------------------------------------------------------------ *)
(* Cross-PR diff                                                       *)
(* ------------------------------------------------------------------ *)

let load_doc path =
  if not (Sys.file_exists path) then begin
    Format.eprintf "%s: no such file@." path;
    exit 1
  end;
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Json.parse s with
  | Ok doc -> doc
  | Error e ->
    Format.eprintf "%s: JSON parse error: %s@." path e;
    exit 1

let group_rows doc gname =
  match Json.member "groups" doc with
  | Some (Json.List groups) ->
    List.find_map
      (fun g ->
        match (Json.member "name" g, Json.member "rows" g) with
        | Some (Json.Str n), Some (Json.List rows) when String.equal n gname ->
          Some
            (List.filter_map
               (fun r ->
                 match (Json.member "name" r, Json.member "ns_per_run" r) with
                 | Some (Json.Str name), Some (Json.Float ns) -> Some (name, ns)
                 | Some (Json.Str name), Some (Json.Int ns) -> Some (name, float_of_int ns)
                 | _ -> None)
               rows)
        | _ -> None)
      groups
  | _ -> None

(* Per-row wall-clock delta between two emitted bench documents.  Only the
   [micro] group gates (exit 1 past [threshold] percent): the experiment
   kernels run whole simulations whose event counts legitimately change
   when an experiment grows, but the micro rows measure fixed data
   structures — a 20% swing there is a real regression (or a real win).

   The gate is *host-speed normalized*: trajectory points are recorded in
   different sessions, and the same binary re-measured on the same
   container has been observed ±30% across days (frequency scaling,
   noisy neighbours).  Such a shift moves every micro row by the same
   factor, while a real regression moves one structure against its
   peers — so each row's new/old ratio is divided by the *median* ratio
   of the group before the threshold applies.  Raw percentages are still
   printed; the NORM column is what gates. *)
let diff_json ~threshold old_path new_path =
  let old_doc = load_doc old_path and new_doc = load_doc new_path in
  let regressions = ref [] in
  let diff_group ~gate gname =
    match (group_rows old_doc gname, group_rows new_doc gname) with
    | None, _ | _, None -> Format.printf "group %-12s absent on one side, skipped@." gname
    | Some old_rows, Some new_rows ->
      let median_ratio =
        let ratios =
          List.filter_map
            (fun (name, nv) ->
              match List.assoc_opt name old_rows with
              | Some ov when ov > 0.0 -> Some (nv /. ov)
              | _ -> None)
            new_rows
          |> List.sort compare |> Array.of_list
        in
        let n = Array.length ratios in
        if n < 3 then 1.0
        else if n mod 2 = 1 then ratios.(n / 2)
        else (ratios.((n / 2) - 1) +. ratios.(n / 2)) /. 2.0
      in
      Format.printf "--- %s (%s -> %s)%s ---@." gname old_path new_path
        (if gate then
           Printf.sprintf "  [gate: +%.0f%% over the median host shift x%.2f]" threshold
             median_ratio
         else "  [informational]");
      List.iter
        (fun (name, nv) ->
          match List.assoc_opt name old_rows with
          | None -> Format.printf "  %-45s %14.1f ns/run   (new row)@." name nv
          | Some ov ->
            let pct = (nv -. ov) /. ov *. 100.0 in
            let norm = ((nv /. ov /. median_ratio) -. 1.0) *. 100.0 in
            let mark = if gate && norm > threshold then "  REGRESSION" else "" in
            if gate && norm > threshold then regressions := (gname, name, norm) :: !regressions;
            Format.printf "  %-45s %14.1f -> %12.1f ns/run  %+7.1f%%  (norm %+6.1f%%)%s@." name
              ov nv pct norm mark)
        new_rows;
      List.iter
        (fun (name, _) ->
          if not (List.mem_assoc name new_rows) then
            Format.printf "  %-45s (row disappeared)@." name)
        old_rows
  in
  diff_group ~gate:true "micro";
  diff_group ~gate:false "experiments";
  (* ns-per-event of the full-size X8 rows: host-normalized like micro,
     but informational until two trajectory points carry the group. *)
  diff_group ~gate:false "xscale";
  match !regressions with
  | [] ->
    Format.printf "@.no micro row regressed past +%.0f%% (host-normalized)@." threshold;
    exit 0
  | rs ->
    Format.eprintf "@.%d micro row(s) regressed past +%.0f%% (host-normalized):@."
      (List.length rs) threshold;
    (* row names already carry the group prefix ("micro/...") *)
    List.iter (fun (_, n, pct) -> Format.eprintf "  %s %+.1f%%@." n pct) rs;
    exit 1

let () =
  let json_path = ref "BENCH_10.json" in
  let quota = ref 0.25 in
  let micro_only = ref false in
  let obs_only = ref false in
  let check = ref None in
  let diff_old = ref "" in
  let diff_new = ref None in
  let diff_threshold = ref 20.0 in
  let scaling = ref false in
  let speclist =
    [
      ("--json", Arg.Set_string json_path, "FILE  write the machine-readable results (default BENCH_10.json)");
      ("--quota", Arg.Set_float quota, "SEC  per-benchmark sampling quota in seconds (default 0.25)");
      ("--micro-only", Arg.Set micro_only, "  run only the data-structure micro group (smoke mode)");
      ("--obs-only", Arg.Set obs_only, "  run only the observability-overhead A/B row and exit");
      ("--check-json", Arg.String (fun f -> check := Some f), "FILE  validate an emitted results file and exit");
      ( "--diff",
        Arg.Tuple [ Arg.Set_string diff_old; Arg.String (fun f -> diff_new := Some f) ],
        "OLD NEW  per-row delta of two results files; exit 1 on a micro regression" );
      ( "--diff-threshold",
        Arg.Set_float diff_threshold,
        "PCT  micro regression gate for --diff in percent (default 20)" );
      ("--scaling-check", Arg.Set scaling, "  assert warm jobs=2 sweep speedup > 1.0 (skips on single-core hosts)");
    ]
  in
  Arg.parse speclist
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "recflow benchmark harness";
  match !check with
  | Some path -> check_json path
  | None when !diff_new <> None ->
    diff_json ~threshold:!diff_threshold !diff_old (Option.get !diff_new)
  | None when !scaling -> scaling_check ()
  | None when !obs_only ->
    ignore (report_obs_overhead ());
    exit 0
  | None ->
    Format.printf "=== recflow benchmarks (Bechamel, monotonic clock) ===@.@.";
    Format.printf "--- data-structure micro-benchmarks ---@.";
    let micro_rows =
      run_group_min ~quota:!quota ~trials:3 "micro"
        [ bench_stamp_ancestor; bench_stamp_hash; bench_ckpt_record; bench_engine; bench_rng;
          bench_serial_eval; bench_graph_eval; bench_vote ]
    in
    let groups = ref [ ("micro", micro_rows) ] in
    let sweep = ref Json.Null in
    let shard_run = ref Json.Null in
    let obs_overhead = ref Json.Null in
    let latency = ref Json.Null in
    let service = ref Json.Null in
    let xscale = ref Json.Null in
    let mem = ref Json.Null in
    if not !micro_only then begin
      Format.printf "@.--- experiment kernels (one per reproduced figure/table) ---@.";
      let kernel_rows =
        run_group ~quota:!quota "experiments"
          [ bench_fig1; bench_fig3; bench_fig5; bench_fig6; bench_q1; bench_q2_rollback;
            bench_q2_splice; bench_q4; bench_q5; bench_q6; bench_q7; bench_q8; bench_x6;
            bench_x7; bench_cost_pass ]
      in
      groups := !groups @ [ ("experiments", kernel_rows) ];
      obs_overhead := report_obs_overhead ();
      latency := report_latency_percentiles ();
      service := report_service ();
      sweep := report_sweep_scaling ();
      shard_run := report_shard_run ();
      mem := report_mem ();
      let xscale_rows, xscale_detail = report_xscale () in
      groups := !groups @ [ ("xscale", xscale_rows) ];
      xscale := xscale_detail
    end;
    let doc =
      Json.Obj
        [
          ("schema", Json.Str bench_schema);
          ("pr", Json.Int 10);
          ("quota_s", Json.Float !quota);
          ( "groups",
            Json.List
              (List.map
                 (fun (name, rows) ->
                   Json.Obj [ ("name", Json.Str name); ("rows", json_of_rows rows) ])
                 !groups) );
          ("obs_overhead", !obs_overhead);
          ("latency_percentiles", !latency);
          ("service", !service);
          ("sweep", !sweep);
          ("shard_run", !shard_run);
          ("mem", !mem);
          ("xscale", !xscale);
        ]
    in
    Json.write_file ~path:!json_path doc;
    Format.printf "@.wrote %s@." !json_path;
    if !micro_only then exit 0;
    (* Regenerate the actual tables so the benchmark log carries the rows
       the paper reports. *)
    Format.printf "@.=== reproduced tables (quick mode) ===@.";
    let failed = ref 0 in
    List.iter
      (fun (e : Recflow_experiments.Registry.entry) ->
        let r = e.Recflow_experiments.Registry.run ~quick:true () in
        Format.printf "%a" Recflow_experiments.Report.pp r;
        if not (Recflow_experiments.Report.all_checks_pass r) then incr failed)
      Recflow_experiments.Registry.all;
    Format.printf "@.experiments with failing checks: %d@." !failed;
    exit (if !failed = 0 then 0 else 1)
