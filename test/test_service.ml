(* Service mode: multi-root clusters, the traffic/replication/shedding
   layer, and overlapping recovery episodes across concurrent requests. *)

module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Oracle = Recflow_machine.Oracle
module Journal = Recflow_machine.Journal
module Workload = Recflow_workload.Workload
module Plan = Recflow_fault.Plan
module Stamp = Recflow_recovery.Stamp
module Value = Recflow_lang.Value
module Service = Recflow_service.Service
module Episode = Recflow_obs.Episode
module Hdr = Recflow_stats.Hdr
module Json = Recflow_obs_core.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let value = Alcotest.testable Value.pp Value.equal

let svc_cfg ?(nodes = 8) ?(arrival_mean = 250.0) ?(replicas = 1) ?(max_inflight = 64)
    ?(shed_suspect_frac = 1.0) ?(seed = 11) () =
  let cfg = Config.default ~nodes in
  {
    cfg with
    Config.recovery = Config.Splice;
    seed;
    service = { Config.arrival_mean; replicas; max_inflight; shed_suspect_frac };
  }

let run ?(failures = []) ?(workload = Workload.fib) ?(size = Workload.Tiny) ?(requests = 20) cfg
    =
  Service.run ~failures ~config:cfg ~workload ~size ~requests ()

(* ---------------- multi-root cluster primitives ---------------- *)

let submit_requires_service () =
  let c = Cluster.create (svc_cfg ()) (Workload.program Workload.fib) in
  check "submit before begin_service" true
    (try
       ignore (Cluster.submit c ~fname:"fib" ~args:[ Value.Int 5 ] ());
       false
     with Invalid_argument _ -> true);
  Cluster.begin_service c;
  check "start after begin_service" true
    (try
       Cluster.start c ~fname:"fib" ~args:[ Value.Int 5 ];
       false
     with Invalid_argument _ -> true);
  check "begin_service twice" true
    (try
       Cluster.begin_service c;
       false
     with Invalid_argument _ -> true)

let concurrent_roots_isolated () =
  (* Two different programs in flight at once: answers must file under
     their own request, never leak across. *)
  let c = Cluster.create (svc_cfg ()) (Workload.program Workload.fib) in
  Cluster.begin_service c;
  let u0 = Cluster.submit c ~fname:"fib" ~args:[ Value.Int 5 ] () in
  let u1 = Cluster.submit c ~fname:"fib" ~args:[ Value.Int 8 ] () in
  Cluster.close_arrivals c;
  check_int "uids sequential" 0 u0;
  check_int "uids sequential 2" 1 u1;
  check "stamps disjoint" false
    (Stamp.related (Cluster.request_stamp c u0) (Cluster.request_stamp c u1));
  let _ = Cluster.run c in
  let oracle = Oracle.assert_ok c in
  check "oracle ok" true (Oracle.ok oracle);
  (match Cluster.request_answers c u0 with
  | [ v ] -> Alcotest.check value "fib 5" (Value.Int 5) v
  | l -> Alcotest.failf "request 0: %d answers" (List.length l));
  (match Cluster.request_answers c u1 with
  | [ v ] -> Alcotest.check value "fib 8" (Value.Int 21) v
  | l -> Alcotest.failf "request 1: %d answers" (List.length l));
  check_int "submitted" 2 (Cluster.submitted_requests c);
  check_int "nothing in flight" 0 (Cluster.in_flight c)

let per_request_oracle_catches_missing () =
  (* Under No_recovery the per-request completion check is undecidable
     (same rule as batch), so a lost request is not a violation — but the
     run must still report the request unanswered. *)
  let cfg = { (svc_cfg ~nodes:4 ()) with Config.recovery = Config.Rollback } in
  let c = Cluster.create cfg (Workload.program Workload.fib) in
  Cluster.fail_at c ~time:50 1;
  Cluster.begin_service c;
  let u0 = Cluster.submit c ~fname:"fib" ~args:[ Value.Int 8 ] () in
  Cluster.close_arrivals c;
  let _ = Cluster.run c in
  let oracle = Oracle.assert_ok c in
  check "oracle ok despite mid-run failure" true (Oracle.ok oracle);
  (match Cluster.request_answers c u0 with
  | v :: _ -> Alcotest.check value "recovered answer" (Value.Int 21) v
  | [] -> Alcotest.fail "request lost")

(* ---------------- service layer ---------------- *)

let clean_stream () =
  let o = run (svc_cfg ()) in
  let c = o.Service.counts in
  check_int "all offered" 20 c.Service.offered;
  check_int "all completed" 20 c.Service.completed;
  check_int "none masked" 0 c.Service.masked;
  check_int "none recovered" 0 c.Service.recovered;
  check_int "none shed" 0 (Service.shed c);
  check "all correct" true o.Service.all_correct;
  check "oracle ok" true (Oracle.ok o.Service.oracle);
  check "goodput positive" true (o.Service.goodput > 0.0);
  check_int "one latency sample per request" 20
    (Hdr.count (Cluster.latency o.Service.cluster "service.latency"));
  check_int "no disturbed samples" 0
    (Hdr.count (Cluster.latency o.Service.cluster "service.latency.disturbed"));
  (* records are per-rid, finished, and timestamped consistently *)
  List.iteri
    (fun i r ->
      check_int "rid order" i r.Service.rid;
      match r.Service.finish with
      | Some f -> check "finish after arrival" true (f >= r.Service.arrival)
      | None -> Alcotest.fail "clean request not finished")
    o.Service.records

let failures_mid_stream_k1 () =
  (* k=1: a failure striking a request's root host sends that request down
     the full checkpoint-recovery path. *)
  let cfg = svc_cfg ~nodes:4 ~arrival_mean:150.0 ~seed:7 () in
  let o = run ~failures:[ (2000, 0); (3500, 2) ] ~requests:24 cfg in
  let c = o.Service.counts in
  check "all correct" true o.Service.all_correct;
  check "oracle ok" true (Oracle.ok o.Service.oracle);
  check_int "all finished" 24 (Service.finished c);
  check "some request paid the recovery path" true (c.Service.recovered > 0);
  check "disturbed latencies recorded" true
    (Hdr.count (Cluster.latency o.Service.cluster "service.latency.disturbed") > 0)

let replication_masks_k3 () =
  (* Same failure plan, k=3: surviving replicas decide before the disturbed
     one recovers, so failures are masked instead of recovered. *)
  let cfg = svc_cfg ~nodes:8 ~arrival_mean:150.0 ~replicas:3 ~seed:7 () in
  let o = run ~failures:[ (2000, 0); (3500, 2) ] ~requests:24 cfg in
  let c = o.Service.counts in
  check "all correct" true o.Service.all_correct;
  check "oracle ok" true (Oracle.ok o.Service.oracle);
  check_int "all finished" 24 (Service.finished c);
  check "replication masked a failure" true (c.Service.masked > 0)

let overload_sheds () =
  let cfg = svc_cfg ~nodes:4 ~arrival_mean:5.0 ~max_inflight:2 () in
  let o = run ~requests:30 cfg in
  let c = o.Service.counts in
  check "sheds under overload" true (c.Service.shed_overload > 0);
  check "still serves some" true (Service.finished c > 0);
  check_int "offered = finished + shed" 30 (Service.finished c + Service.shed c);
  check "all correct" true o.Service.all_correct;
  List.iter
    (fun r ->
      if r.Service.verdict = Service.Shed_overload then begin
        check "shed has no finish" true (r.Service.finish = None);
        check "shed has no value" true (r.Service.value = None)
      end)
    o.Service.records

let suspects_shed () =
  (* A zero tolerance for dead processors: once the failure lands, every
     later arrival is turned away. *)
  let cfg = svc_cfg ~nodes:4 ~arrival_mean:200.0 ~shed_suspect_frac:0.0 ~seed:3 () in
  let o = run ~failures:[ (300, 1) ] ~requests:16 cfg in
  let c = o.Service.counts in
  check "sheds on suspects" true (c.Service.shed_suspects > 0);
  check "served the pre-failure stream" true (Service.finished c > 0);
  check "all correct" true o.Service.all_correct;
  check "oracle ok" true (Oracle.ok o.Service.oracle)

let service_json_shape () =
  let cfg = svc_cfg ~nodes:4 ~arrival_mean:150.0 ~seed:7 () in
  let o = run ~failures:[ (400, 1) ] ~requests:12 cfg in
  let doc = Service.to_json ~workload:"fib" ~size:"tiny" o in
  (* round-trips through the in-tree codec *)
  let doc =
    match Json.parse (Json.to_string doc) with
    | Ok d -> d
    | Error e -> Alcotest.failf "service json does not parse: %s" e
  in
  check "schema" true (Json.member "schema" doc = Some (Json.Str "recflow.service/1"));
  let traffic = Option.get (Json.member "traffic" doc) in
  check_int "offered" 12 (Option.get (Json.int (Option.get (Json.member "offered" traffic))));
  let latency = Option.get (Json.member "latency" doc) in
  let req = Option.get (Json.member "service.latency" latency) in
  List.iter
    (fun q -> check (q ^ " present") true (Json.member q req <> None))
    [ "count"; "p50"; "p99"; "p999" ];
  check "goodput present" true (Json.member "goodput_per_kilotick" traffic <> None);
  check "episode summary present" true (Json.member "episode_summary" doc <> None)

(* ---------------- overlapping episodes across requests ---------------- *)

let episodes_hand_built () =
  (* Two failures, each disturbing a different request: the analyzer must
     emit two independent spans, windows partitioned at the second
     failure, detection latency measured within each window. *)
  let j = Journal.create () in
  let r0 = Stamp.child Stamp.root 0 and r1 = Stamp.child Stamp.root 1 in
  Journal.record j ~time:0 ~stamp:r0 (Journal.Spawned { task = 0; dest = 0; replica = 0 });
  Journal.record j ~time:10 ~stamp:r1 (Journal.Spawned { task = 1; dest = 1; replica = 0 });
  Journal.record j ~time:100 ~stamp:Stamp.root (Journal.Failure { proc = 0 });
  Journal.record j ~time:150 ~stamp:r0
    (Journal.Respawned { task = 2; dest = 2; reason = "notice" });
  Journal.record j ~time:300 ~stamp:Stamp.root (Journal.Failure { proc = 1 });
  Journal.record j ~time:380 ~stamp:r1
    (Journal.Respawned { task = 3; dest = 3; reason = "notice" });
  match Episode.analyze j with
  | [ e1; e2 ] ->
    check_int "first failed proc" 0 e1.Episode.failed_proc;
    check_int "second failed proc" 1 e2.Episode.failed_proc;
    check "first window ends at second failure" true (e1.Episode.window_end = Some 300);
    check "second window open" true (e2.Episode.window_end = None);
    check "first detection" true (e1.Episode.detection_latency = Some 50);
    check "second detection" true (e2.Episode.detection_latency = Some 80);
    check_int "one reissue each" 1 e1.Episode.reissued;
    check_int "one reissue each 2" 1 e2.Episode.reissued
  | eps -> Alcotest.failf "expected 2 episodes, got %d" (List.length eps)

let episodes_in_gauntlet () =
  (* Full service run: two failures while requests are in flight must fold
     into two episode spans, and every per-request sojourn recorded in the
     Hdr must match the records exactly. *)
  let cfg = svc_cfg ~nodes:4 ~arrival_mean:150.0 ~seed:7 () in
  let o = run ~failures:[ (2000, 0); (3500, 2) ] ~requests:24 cfg in
  check "all correct" true o.Service.all_correct;
  (match Episode.analyze (Cluster.journal o.Service.cluster) with
  | [ e1; e2 ] ->
    check_int "episode 1 proc" 0 e1.Episode.failed_proc;
    check_int "episode 2 proc" 2 e2.Episode.failed_proc;
    check "episode 1 window closed by episode 2" true (e1.Episode.window_end = Some 3500);
    check "both episodes re-issued work" true
      (e1.Episode.reissued > 0 && e2.Episode.reissued > 0)
  | eps -> Alcotest.failf "expected 2 episodes, got %d" (List.length eps));
  (* distinct requests disturbed — the overlap is across requests *)
  let disturbed = List.filter (fun r -> r.Service.disturbed_replicas > 0) o.Service.records in
  check "at least two distinct requests disturbed" true (List.length disturbed >= 2);
  let h = Hdr.create () in
  List.iter
    (fun r ->
      match r.Service.finish with
      | Some f -> Hdr.record h (f - r.Service.arrival)
      | None -> ())
    o.Service.records;
  let recorded = Cluster.latency o.Service.cluster "service.latency" in
  check_int "sojourn sample count matches records" (Hdr.count h) (Hdr.count recorded);
  check_int "sojourn sample mass matches records" (Hdr.total h) (Hdr.total recorded)

let partition_spans_requests () =
  (* A partition window (no fail-stop at all) isolating two processors
     while requests are in flight: suspicion re-homes their roots, both
     requests finish correctly, and the oracle stays green. *)
  let base = svc_cfg ~nodes:4 ~arrival_mean:120.0 ~seed:5 () in
  let cfg =
    {
      base with
      Config.reliable = true;
      chaos = Recflow_net.Chaos.none |> Plan.partition ~from:300 ~until:4500 ~groups:[ [ 2; 3 ] ];
    }
  in
  let o = run ~requests:16 cfg in
  check "all correct" true o.Service.all_correct;
  check "oracle ok" true (Oracle.ok o.Service.oracle);
  check_int "all finished" 16 (Service.finished o.Service.counts);
  let disturbed = List.filter (fun r -> r.Service.disturbed_replicas > 0) o.Service.records in
  check "the partition disturbed in-flight requests" true (List.length disturbed >= 2)

let suites =
  [
    ( "service.cluster",
      [
        Alcotest.test_case "submit requires service" `Quick submit_requires_service;
        Alcotest.test_case "concurrent roots isolated" `Quick concurrent_roots_isolated;
        Alcotest.test_case "recovered request" `Quick per_request_oracle_catches_missing;
      ] );
    ( "service.traffic",
      [
        Alcotest.test_case "clean stream" `Quick clean_stream;
        Alcotest.test_case "failures mid-stream k=1" `Quick failures_mid_stream_k1;
        Alcotest.test_case "replication masks k=3" `Quick replication_masks_k3;
        Alcotest.test_case "overload sheds" `Quick overload_sheds;
        Alcotest.test_case "suspects shed" `Quick suspects_shed;
        Alcotest.test_case "service json" `Quick service_json_shape;
      ] );
    ( "service.episodes",
      [
        Alcotest.test_case "hand-built journal" `Quick episodes_hand_built;
        Alcotest.test_case "gauntlet" `Quick episodes_in_gauntlet;
        Alcotest.test_case "partition spans requests" `Quick partition_spans_requests;
      ] );
  ]
