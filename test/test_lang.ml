(* Tests for the applicative language: parser, validation, evaluators. *)

open Recflow_lang

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let qtest = QCheck_alcotest.to_alcotest

let value = Alcotest.testable Value.pp Value.equal

let parse_expr_exn src =
  match Parser.parse_expr src with
  | Ok e -> e
  | Error e -> Alcotest.failf "parse error: %s" (Parser.error_to_string e)

let eval_str ?(env = []) program src =
  let e = parse_expr_exn src in
  fst (Eval_serial.eval_expr program env e)

let empty_program = Program.of_defs_exn []

(* ---------------- Parser ---------------- *)

let parser_literals () =
  Alcotest.check value "int" (Value.Int 42) (eval_str empty_program "42");
  Alcotest.check value "true" (Value.Bool true) (eval_str empty_program "true");
  Alcotest.check value "nil" Value.Nil (eval_str empty_program "nil");
  Alcotest.check value "list sugar" (Value.of_int_list [ 1; 2; 3 ])
    (eval_str empty_program "[1; 2; 3]");
  Alcotest.check value "empty list" Value.Nil (eval_str empty_program "[]")

let parser_precedence () =
  let t src expected = Alcotest.check value src (Value.Int expected) (eval_str empty_program src) in
  t "1 + 2 * 3" 7;
  t "(1 + 2) * 3" 9;
  t "10 - 3 - 2" 5;  (* left assoc *)
  t "20 / 4 / 5" 1;
  t "17 % 5" 2;
  t "2 + 3 * 4 - 5" 9

let parser_bool_ops () =
  let t src expected =
    Alcotest.check value src (Value.Bool expected) (eval_str empty_program src)
  in
  t "true && false" false;
  t "true || false" true;
  t "1 < 2 && 2 < 3" true;
  t "not (1 == 2)" true;
  t "1 != 2" true;
  t "false && true || true" true  (* || binds loosest *)

let parser_cons_right_assoc () =
  Alcotest.check value "1 :: 2 :: nil" (Value.of_int_list [ 1; 2 ])
    (eval_str empty_program "1 :: 2 :: nil")

let parser_let_if () =
  Alcotest.check value "let" (Value.Int 6) (eval_str empty_program "let x = 2 in x * 3");
  Alcotest.check value "if" (Value.Int 1) (eval_str empty_program "if 2 > 1 then 1 else 0");
  Alcotest.check value "nested let" (Value.Int 9)
    (eval_str empty_program "let x = 2 in let y = x + 1 in x * y + x + 1")

let parser_builtin_calls () =
  Alcotest.check value "head" (Value.Int 1) (eval_str empty_program "head([1; 2])");
  Alcotest.check value "tail" (Value.of_int_list [ 2 ]) (eval_str empty_program "tail([1; 2])");
  Alcotest.check value "isnil" (Value.Bool true) (eval_str empty_program "isnil(nil)");
  Alcotest.check value "min" (Value.Int 2) (eval_str empty_program "min(5, 2)");
  Alcotest.check value "max" (Value.Int 5) (eval_str empty_program "max(5, 2)")

let parser_comments () =
  Alcotest.check value "comment skipped" (Value.Int 3)
    (eval_str empty_program "1 + # comment to end of line\n 2")

let parser_unary_minus () =
  Alcotest.check value "neg" (Value.Int (-5)) (eval_str empty_program "- 5");
  Alcotest.check value "sub vs neg" (Value.Int (-1)) (eval_str empty_program "2 - 3")

let expect_parse_error src pred =
  match Parser.parse_expr src with
  | Ok _ -> Alcotest.failf "expected parse error for %S" src
  | Error e -> check (Printf.sprintf "error position for %S" src) true (pred e)

let parser_errors () =
  expect_parse_error "1 +" (fun _ -> true);
  expect_parse_error "(1" (fun _ -> true);
  expect_parse_error "let x = in 1" (fun _ -> true);
  expect_parse_error "if 1 then 2" (fun _ -> true);
  expect_parse_error "head(1, 2)" (fun e ->
      let msg = Parser.error_to_string e in
      String.length msg > 0);
  expect_parse_error "1 2" (fun _ -> true);
  (* position reporting: error on line 2 *)
  expect_parse_error "1 +\n  @" (fun e -> e.Parser.line = 2)

let parser_defs () =
  match Parser.parse_defs "def f(x) = x + 1\ndef g() = f(2)" with
  | Ok [ f; g ] ->
    Alcotest.(check string) "f name" "f" f.Ast.name;
    Alcotest.(check (list string)) "f params" [ "x" ] f.Ast.params;
    Alcotest.(check (list string)) "g params" [] g.Ast.params
  | Ok _ -> Alcotest.fail "expected two defs"
  | Error e -> Alcotest.failf "parse error: %s" (Parser.error_to_string e)

(* ---------------- Program validation ---------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let expect_program_error src fragment =
  match Parser.parse_program src with
  | Ok _ -> Alcotest.failf "expected validation error for %S" src
  | Error msg -> check (Printf.sprintf "%s in %s" fragment msg) true (contains msg fragment)

let validation_errors () =
  expect_program_error "def f(x) = x\ndef f(y) = y" "duplicate definition";
  expect_program_error "def f(x, x) = x" "duplicate parameter";
  expect_program_error "def f(x) = y" "unbound variable";
  expect_program_error "def f(x) = g(x)" "unknown function";
  expect_program_error "def f(x) = x\ndef g(y) = f(y, y)" "expects 1 arguments"

let validation_let_scoping () =
  (* let-bound names are visible in the body only *)
  expect_program_error "def f(x) = (let y = x in y) + y" "unbound variable";
  match Parser.parse_program "def f(x) = let y = x in y + x" with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "valid program rejected: %s" msg

let program_accessors () =
  let p = Parser.parse_program_exn "def f(x) = x\ndef g(a, b) = a + b" in
  Alcotest.(check (list string)) "names" [ "f"; "g" ] (Program.names p);
  Alcotest.(check (option int)) "arity f" (Some 1) (Program.arity p "f");
  Alcotest.(check (option int)) "arity g" (Some 2) (Program.arity p "g");
  Alcotest.(check (option int)) "arity missing" None (Program.arity p "h")

let program_union () =
  let a = Parser.parse_program_exn "def f(x) = x" in
  let b = Parser.parse_program_exn "def g(x) = x" in
  (match Program.union a b with
  | Ok u -> Alcotest.(check (list string)) "union names" [ "f"; "g" ] (Program.names u)
  | Error _ -> Alcotest.fail "disjoint union failed");
  match Program.union a a with
  | Ok _ -> Alcotest.fail "overlapping union accepted"
  | Error (Program.Duplicate_definition "f") -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Program.error_to_string e)

(* ---------------- Ast helpers ---------------- *)

let ast_helpers () =
  let e = parse_expr_exn "let x = a + 1 in f(x, b)" in
  Alcotest.(check (list string)) "free vars" [ "a"; "b" ] (Ast.free_vars e);
  Alcotest.(check (list string)) "calls" [ "f" ] (Ast.calls e);
  check "size positive" true (Ast.size e > 4)

(* ---------------- Pretty round-trip ---------------- *)

let gen_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let var = oneofl [ "x"; "y"; "z" ] in
  let leaf =
    oneof
      [
        map (fun n -> Ast.Int n) (int_range 0 1000);
        map (fun b -> Ast.Bool b) bool;
        return Ast.Nil;
        map (fun v -> Ast.Var v) var;
      ]
  in
  let prim2 =
    oneofl Ast.[ Add; Sub; Mul; Div; Mod; Lt; Le; Gt; Ge; Eq; Ne; Cons; Min; Max ]
  in
  fix
    (fun self n ->
      if n <= 0 then leaf
      else
        frequency
          [
            (3, leaf);
            (3, map3 (fun p a b -> Ast.Prim (p, [ a; b ])) prim2 (self (n / 2)) (self (n / 2)));
            (1, map (fun a -> Ast.Prim (Ast.Not, [ a ])) (self (n - 1)));
            (1, map (fun a -> Ast.Prim (Ast.Neg, [ a ])) (self (n - 1)));
            (1, map (fun a -> Ast.Prim (Ast.Head, [ a ])) (self (n - 1)));
            (1, map (fun a -> Ast.Prim (Ast.Is_nil, [ a ])) (self (n - 1)));
            ( 2,
              map3 (fun c a b -> Ast.If (c, a, b)) (self (n / 3)) (self (n / 3)) (self (n / 3)) );
            (1, map2 (fun a b -> Ast.And (a, b)) (self (n / 2)) (self (n / 2)));
            (1, map2 (fun a b -> Ast.Or (a, b)) (self (n / 2)) (self (n / 2)));
            ( 2,
              map3 (fun v a b -> Ast.Let (v, a, b)) var (self (n / 2)) (self (n / 2)) );
            ( 1,
              map2 (fun a b -> Ast.Call ("f", [ a; b ])) (self (n / 2)) (self (n / 2)) );
          ])
    8

let arbitrary_expr = QCheck.make ~print:Pretty.expr_to_string gen_expr

let pretty_round_trip =
  QCheck.Test.make ~name:"pretty-print then parse is identity" ~count:500 arbitrary_expr
    (fun e ->
      match Parser.parse_expr (Pretty.expr_to_string e) with
      | Ok e' -> Ast.equal_expr e e'
      | Error err ->
        QCheck.Test.fail_reportf "re-parse failed: %s on %s" (Parser.error_to_string err)
          (Pretty.expr_to_string e))

let pretty_def () =
  let d = { Ast.name = "f"; params = [ "x"; "y" ]; body = parse_expr_exn "x + y" } in
  match Parser.parse_defs (Pretty.def_to_string d) with
  | Ok [ d' ] -> check "def round trip" true (Ast.equal_expr d.Ast.body d'.Ast.body)
  | _ -> Alcotest.fail "def round trip failed"

let workload_pretty_round_trip () =
  (* every shipped program survives pretty -> parse unchanged *)
  List.iter
    (fun (w : Recflow_workload.Workload.t) ->
      List.iter
        (fun (d : Ast.def) ->
          match Parser.parse_defs (Pretty.def_to_string d) with
          | Ok [ d' ] ->
            check
              (Printf.sprintf "%s.%s" w.Recflow_workload.Workload.name d.Ast.name)
              true
              (Ast.equal_expr d.Ast.body d'.Ast.body && d.Ast.params = d'.Ast.params)
          | _ -> Alcotest.failf "%s.%s did not round-trip" w.Recflow_workload.Workload.name d.Ast.name)
        (Program.defs (Recflow_workload.Workload.program w)))
    Recflow_workload.Workload.all

(* ---------------- Deep expressions ---------------- *)

(* The AST walks, the cons chain in the parser and the pretty-printer's
   spine flattening are all iterative; a 200k-deep right-nested chain
   must survive every one of them without touching the OCaml stack. *)
let deep_expression_regression () =
  let n = 200_000 in
  let buf = Buffer.create (n * 8) in
  for i = 1 to n do
    Buffer.add_string buf (string_of_int i);
    Buffer.add_string buf " :: "
  done;
  Buffer.add_string buf "nil";
  let e = parse_expr_exn (Buffer.contents buf) in
  check_int "size" ((2 * n) + 1) (Ast.size e);
  check "no free vars" true (Ast.free_vars e = []);
  check "no calls" true (Ast.calls e = []);
  let e' = parse_expr_exn (Pretty.expr_to_string e) in
  check "pretty/parse round trip" true (Ast.equal_expr e e');
  (* list-literal sugar desugars to the same deep chain *)
  let lit = "[" ^ String.concat "; " (List.init n (fun i -> string_of_int (i + 1))) ^ "]" in
  let el = parse_expr_exn lit in
  check "literal equals cons chain" true (Ast.equal_expr el e)

(* ---------------- Value ---------------- *)

let value_roundtrip () =
  Alcotest.(check (option (list int))) "int list" (Some [ 1; 2; 3 ])
    (Value.to_int_list (Value.of_int_list [ 1; 2; 3 ]));
  Alcotest.(check (option int)) "length" (Some 3)
    (Value.list_length (Value.of_int_list [ 1; 2; 3 ]));
  Alcotest.(check (option int)) "improper list" None
    (Value.list_length (Value.Cons (Value.Int 1, Value.Int 2)))

let value_render () =
  Alcotest.(check string) "list" "[1; 2]" (Value.to_string (Value.of_int_list [ 1; 2 ]));
  Alcotest.(check string) "pair" "(1 :: 2)"
    (Value.to_string (Value.Cons (Value.Int 1, Value.Int 2)));
  Alcotest.(check string) "nil" "[]" (Value.to_string Value.Nil)

let value_compare_total () =
  let vs = [ Value.Int 1; Value.Bool true; Value.Nil; Value.Cons (Value.Int 1, Value.Nil) ] in
  List.iter
    (fun a -> List.iter (fun b -> check "antisym" true (Value.compare a b = -Value.compare b a)) vs)
    vs

(* ---------------- Serial evaluator ---------------- *)

let fib_program =
  Parser.parse_program_exn "def fib(n) = if n < 2 then n else fib(n - 1) + fib(n - 2)"

let eval_fib () =
  let v, steps = Eval_serial.eval fib_program "fib" [ Value.Int 10 ] in
  Alcotest.check value "fib 10" (Value.Int 55) v;
  check "steps counted" true (steps > 100);
  check_int "call tree size" 177 (Eval_serial.call_count fib_program "fib" [ Value.Int 10 ])

let eval_short_circuit () =
  (* the right operand would divide by zero; && must not evaluate it *)
  let p = Parser.parse_program_exn "def f(x) = if x > 0 && 10 / x > 1 then 1 else 0" in
  Alcotest.check value "short circuit" (Value.Int 0) (fst (Eval_serial.eval p "f" [ Value.Int 0 ]))

let eval_runtime_errors () =
  let expect_error fname args =
    match Eval_serial.eval fib_program fname args with
    | exception Eval_serial.Runtime_error _ -> ()
    | exception Not_found -> ()
    | _ -> Alcotest.fail "expected a runtime error"
  in
  expect_error "nope" [];
  let p = Parser.parse_program_exn "def f(x) = 1 / x\ndef g(x) = head(x)" in
  (match Eval_serial.eval p "f" [ Value.Int 0 ] with
  | exception Eval_serial.Runtime_error msg -> check "div msg" true (contains msg "division")
  | _ -> Alcotest.fail "div by zero undetected");
  match Eval_serial.eval p "g" [ Value.Nil ] with
  | exception Eval_serial.Runtime_error msg -> check "head msg" true (contains msg "head")
  | _ -> Alcotest.fail "head nil undetected"

let eval_fuel () =
  let p = Parser.parse_program_exn "def loop(x) = loop(x + 1)" in
  match Eval_serial.eval ~fuel:1000 p "loop" [ Value.Int 0 ] with
  | exception Eval_serial.Runtime_error msg -> check "fuel msg" true (contains msg "fuel")
  | _ -> Alcotest.fail "fuel not enforced"

let eval_type_error_if () =
  let p = Parser.parse_program_exn "def f(x) = if x then 1 else 0" in
  match Eval_serial.eval p "f" [ Value.Int 3 ] with
  | exception Eval_serial.Runtime_error msg -> check "if cond msg" true (contains msg "boolean")
  | _ -> Alcotest.fail "non-bool condition accepted"

(* ---------------- Graph + Instance ---------------- *)

(* Synchronous driver: evaluate spawns depth-first, exactly like the
   serial evaluator would. *)
let rec run_sync lib fname args =
  let inst = Instance.create (Graph.find_exn lib fname) args in
  let rec loop () =
    match Instance.step inst with
    | Instance.Work _ -> loop ()
    | Instance.Spawn { slot; fname; args } ->
      Instance.supply inst slot (run_sync lib fname args);
      loop ()
    | Instance.Finished v -> v
    | Instance.Blocked -> Alcotest.fail "blocked under synchronous driver"
    | Instance.Failed msg -> Alcotest.failf "instance failed: %s" msg
  in
  loop ()

let graph_matches_serial () =
  List.iter
    (fun w ->
      let module W = Recflow_workload.Workload in
      let p = W.program w in
      let lib = Graph.compile_program p in
      let args = Array.of_list (w.W.args W.Tiny) in
      let expected = W.expected w W.Tiny in
      Alcotest.check value (w.W.name ^ " graph = serial") expected (run_sync lib w.W.entry args))
    Recflow_workload.Workload.all

let graph_counts () =
  let lib = Graph.compile_program fib_program in
  let g = Graph.find_exn lib "fib" in
  check_int "two call sites" 2 (Graph.call_sites g);
  check "node count sane" true (Graph.node_count g > 5)

let graph_sharing () =
  (* let x = f(1) in x + x must spawn f once *)
  let p = Parser.parse_program_exn "def f(n) = n + 1\ndef g(u) = let x = f(u) in x + x" in
  let lib = Graph.compile_program p in
  let inst = Instance.create (Graph.find_exn lib "g") [| Value.Int 1 |] in
  let spawns = ref 0 in
  let rec loop () =
    match Instance.step inst with
    | Instance.Work _ -> loop ()
    | Instance.Spawn { slot; _ } ->
      incr spawns;
      Instance.supply inst slot (Value.Int 2);
      loop ()
    | Instance.Finished v ->
      Alcotest.check value "g result" (Value.Int 4) v
    | Instance.Blocked | Instance.Failed _ -> Alcotest.fail "unexpected state"
  in
  loop ();
  check_int "f spawned once (shared let)" 1 !spawns

let graph_demand_driven () =
  (* the call in the untaken branch must never be demanded *)
  let p =
    Parser.parse_program_exn "def f(n) = n\ndef g(c) = if c > 0 then 1 else f(c)"
  in
  let lib = Graph.compile_program p in
  let inst = Instance.create (Graph.find_exn lib "g") [| Value.Int 5 |] in
  let rec loop () =
    match Instance.step inst with
    | Instance.Work _ -> loop ()
    | Instance.Spawn _ -> Alcotest.fail "untaken branch was demanded"
    | Instance.Finished v -> Alcotest.check value "g" (Value.Int 1) v
    | Instance.Blocked | Instance.Failed _ -> Alcotest.fail "unexpected state"
  in
  loop ()

let instance_blocked_then_supply () =
  let lib = Graph.compile_program fib_program in
  let inst = Instance.create (Graph.find_exn lib "fib") [| Value.Int 5 |] in
  (* run until both recursive calls are outstanding *)
  let slots = ref [] in
  let rec pump () =
    match Instance.step inst with
    | Instance.Work _ -> pump ()
    | Instance.Spawn { slot; _ } ->
      slots := slot :: !slots;
      pump ()
    | Instance.Blocked -> ()
    | Instance.Finished _ | Instance.Failed _ -> Alcotest.fail "finished too early"
  in
  pump ();
  check_int "two outstanding" 2 (Instance.outstanding_calls inst);
  Alcotest.(check (list int)) "slots tracked" (List.sort compare !slots)
    (List.sort compare (Instance.outstanding_slots inst));
  List.iteri (fun i slot -> Instance.supply inst slot (Value.Int (i + 1))) !slots;
  let rec finish () =
    match Instance.step inst with
    | Instance.Work _ -> finish ()
    | Instance.Finished v -> Alcotest.check value "sum of supplies" (Value.Int 3) v
    | Instance.Spawn _ | Instance.Blocked | Instance.Failed _ -> Alcotest.fail "unexpected"
  in
  finish ()

let instance_duplicate_supply_ignored () =
  let lib = Graph.compile_program fib_program in
  let inst = Instance.create (Graph.find_exn lib "fib") [| Value.Int 2 |] in
  let rec pump () =
    match Instance.step inst with
    | Instance.Work _ -> pump ()
    | Instance.Spawn { slot; _ } ->
      Instance.supply inst slot (Value.Int 1);
      (* the duplicate must be absorbed silently (§4.1 cases 6-7) *)
      Instance.supply inst slot (Value.Int 1);
      pump ()
    | Instance.Finished v -> Alcotest.check value "fib 2" (Value.Int 2) v
    | Instance.Blocked | Instance.Failed _ -> Alcotest.fail "unexpected"
  in
  pump ()

let instance_invalid_supply () =
  let lib = Graph.compile_program fib_program in
  let g = Graph.find_exn lib "fib" in
  let inst = Instance.create g [| Value.Int 5 |] in
  (* some node is demanded-but-pending (e.g. the comparison waiting to
     fire); supplying it must be rejected *)
  let raises = ref false in
  for slot = 0 to Graph.node_count g - 1 do
    try Instance.supply inst slot (Value.Int 1)
    with Invalid_argument _ -> raises := true
  done;
  check "supplying a non-call slot raises" true !raises

let instance_arity_check () =
  let lib = Graph.compile_program fib_program in
  check "arity mismatch raises" true
    (try
       ignore (Instance.create (Graph.find_exn lib "fib") [||]);
       false
     with Invalid_argument _ -> true)

let instance_program_error () =
  let p = Parser.parse_program_exn "def f(x) = 1 / x" in
  let lib = Graph.compile_program p in
  let inst = Instance.create (Graph.find_exn lib "f") [| Value.Int 0 |] in
  let rec pump () =
    match Instance.step inst with
    | Instance.Work _ -> pump ()
    | Instance.Failed msg -> check "division reported" true (contains msg "division")
    | Instance.Finished _ | Instance.Spawn _ | Instance.Blocked ->
      Alcotest.fail "expected failure"
  in
  pump ()

let instances_agree_with_serial =
  QCheck.Test.make ~name:"graph evaluator agrees with serial evaluator on fib" ~count:30
    QCheck.(int_range 0 15)
    (fun n ->
      let lib = Graph.compile_program fib_program in
      let expected = fst (Eval_serial.eval fib_program "fib" [ Value.Int n ]) in
      Value.equal (run_sync lib "fib" [| Value.Int n |]) expected)

let suites =
  [
    ( "lang.parser",
      [
        Alcotest.test_case "literals" `Quick parser_literals;
        Alcotest.test_case "precedence" `Quick parser_precedence;
        Alcotest.test_case "bool ops" `Quick parser_bool_ops;
        Alcotest.test_case "cons assoc" `Quick parser_cons_right_assoc;
        Alcotest.test_case "let/if" `Quick parser_let_if;
        Alcotest.test_case "builtin calls" `Quick parser_builtin_calls;
        Alcotest.test_case "comments" `Quick parser_comments;
        Alcotest.test_case "unary minus" `Quick parser_unary_minus;
        Alcotest.test_case "errors" `Quick parser_errors;
        Alcotest.test_case "defs" `Quick parser_defs;
      ] );
    ( "lang.program",
      [
        Alcotest.test_case "validation errors" `Quick validation_errors;
        Alcotest.test_case "let scoping" `Quick validation_let_scoping;
        Alcotest.test_case "accessors" `Quick program_accessors;
        Alcotest.test_case "union" `Quick program_union;
        Alcotest.test_case "ast helpers" `Quick ast_helpers;
      ] );
    ( "lang.pretty",
      [
        qtest pretty_round_trip;
        Alcotest.test_case "def round trip" `Quick pretty_def;
        Alcotest.test_case "workload round trip" `Quick workload_pretty_round_trip;
        Alcotest.test_case "deep expressions" `Quick deep_expression_regression;
      ] );
    ( "lang.value",
      [
        Alcotest.test_case "roundtrip" `Quick value_roundtrip;
        Alcotest.test_case "render" `Quick value_render;
        Alcotest.test_case "compare total" `Quick value_compare_total;
      ] );
    ( "lang.eval",
      [
        Alcotest.test_case "fib" `Quick eval_fib;
        Alcotest.test_case "short circuit" `Quick eval_short_circuit;
        Alcotest.test_case "runtime errors" `Quick eval_runtime_errors;
        Alcotest.test_case "fuel" `Quick eval_fuel;
        Alcotest.test_case "if type error" `Quick eval_type_error_if;
      ] );
    ( "lang.graph",
      [
        Alcotest.test_case "matches serial on all workloads" `Quick graph_matches_serial;
        Alcotest.test_case "call sites" `Quick graph_counts;
        Alcotest.test_case "let sharing" `Quick graph_sharing;
        Alcotest.test_case "demand-driven branches" `Quick graph_demand_driven;
        Alcotest.test_case "blocked then supply" `Quick instance_blocked_then_supply;
        Alcotest.test_case "duplicate supply" `Quick instance_duplicate_supply_ignored;
        Alcotest.test_case "invalid supply" `Quick instance_invalid_supply;
        Alcotest.test_case "arity check" `Quick instance_arity_check;
        Alcotest.test_case "program error" `Quick instance_program_error;
        qtest instances_agree_with_serial;
      ] );
  ]
