(* Aggregated alcotest entry point: one section per library. *)

let () =
  Alcotest.run "recflow"
    (Test_sim.suites @ Test_stats.suites @ Test_lang.suites @ Test_net.suites
   @ Test_balance.suites @ Test_recovery.suites @ Test_node.suites @ Test_machine.suites
   @ Test_fault.suites @ Test_chaos.suites @ Test_workload.suites @ Test_baselines.suites @ Test_experiments.suites
   @ Test_trace.suites @ Test_obs.suites @ Test_parallel.suites @ Test_analysis.suites
   @ Test_cost_prop.suites
   @ Test_stamp_prop.suites @ Test_determinism.suites @ Test_scale.suites
   @ Test_service.suites)
