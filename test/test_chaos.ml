(* Tests for the hostile-network layer: the chaos spec/verdict machinery
   in isolation, the reliable transport's counters end-to-end, and the
   gauntlet the ISSUE demands — every workload through loss, duplication,
   reordering, delay spikes and a transient partition, on dozens of
   seeds, with the recovery oracle asserted on every single run. *)

module Chaos = Recflow_net.Chaos
module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Oracle = Recflow_machine.Oracle
module Counter = Recflow_stats.Counter
module Plan = Recflow_fault.Plan
module Workload = Recflow_workload.Workload
module Value = Recflow_lang.Value

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- spec classification & validation ---------------- *)

let spec_classes () =
  check "none is quiet" true (Chaos.quiet Chaos.none);
  check "none is not lossy" false (Chaos.lossy Chaos.none);
  let dropping = Plan.drop_rate 0.1 Chaos.none in
  check "drop is not quiet" false (Chaos.quiet dropping);
  check "drop is lossy" true (Chaos.lossy dropping);
  let dupping = Plan.duplicate_rate 0.3 Chaos.none in
  check "dup is not quiet" false (Chaos.quiet dupping);
  check "dup alone is not lossy" false (Chaos.lossy dupping);
  let cut = Plan.partition ~from:10 ~until:20 ~groups:[ [ 1 ] ] Chaos.none in
  check "partition is lossy" true (Chaos.lossy cut)

let spec_validation () =
  let bad name spec =
    check name true (Result.is_error (Chaos.validate spec))
  in
  check "none validates" true (Result.is_ok (Chaos.validate Chaos.none));
  bad "drop_rate 1.0" { Chaos.none with Chaos.drop_rate = 1.0 };
  bad "negative drop_rate" { Chaos.none with Chaos.drop_rate = -0.1 };
  bad "dup_rate 1.0" { Chaos.none with Chaos.dup_rate = 1.0 };
  bad "reorder rate without spread"
    { Chaos.none with Chaos.reorder_rate = 0.5; reorder_spread = 0 };
  bad "spike rate without max"
    { Chaos.none with Chaos.spike_rate = 0.5; spike_max = 0 };
  bad "inverted window"
    (Plan.partition ~from:100 ~until:100 ~groups:[ [ 1 ] ] Chaos.none);
  bad "negative window start"
    (Plan.partition ~from:(-1) ~until:100 ~groups:[ [ 1 ] ] Chaos.none)

(* ---------------- partition semantics ---------------- *)

let severed_islands () =
  let spec = Plan.partition ~from:100 ~until:200 ~groups:[ [ 1; 2 ] ] Chaos.none in
  let cut now src dst = Chaos.severed spec ~now ~src ~dst in
  check "closed before the window" false (cut 99 0 1);
  check "cut during the window" true (cut 100 0 1);
  check "cut is symmetric" true (cut 150 1 0);
  check "same island passes" false (cut 150 1 2);
  check "implicit island passes" false (cut 150 0 3);
  check "implicit to listed is cut" true (cut 150 3 2);
  check "window end is exclusive" false (cut 200 0 1);
  check "self-send never severed" false (cut 150 1 1);
  check "super-root never severed" false (cut 150 (-1) 1)

(* ---------------- verdict stream determinism ---------------- *)

let stormy =
  Chaos.none |> Plan.drop_rate 0.3 |> Plan.duplicate_rate 0.3
  |> Plan.reorder ~rate:0.3 ~spread:50
  |> Plan.delay_spikes ~rate:0.2 ~max_delay:300

let verdicts t n =
  List.init n (fun i -> Chaos.decide t ~now:i ~src:(i mod 7) ~dst:((i + 1) mod 7))

let decide_deterministic () =
  let a = verdicts (Chaos.create ~seed:99 stormy) 300 in
  let b = verdicts (Chaos.create ~seed:99 stormy) 300 in
  check "same seed, same weather" true (a = b);
  let c = verdicts (Chaos.create ~seed:100 stormy) 300 in
  check "different seed, different weather" false (a = c)

let self_sends_draw_nothing () =
  (* local delivery must neither be perturbed nor advance the stream —
     otherwise arming chaos would re-time purely local computation *)
  let a = Chaos.create ~seed:7 stormy and b = Chaos.create ~seed:7 stormy in
  for i = 0 to 49 do
    check "self-send passes untouched" true
      (Chaos.decide a ~now:i ~src:3 ~dst:3 = Chaos.Pass { extra_delays = [ 0 ] })
  done;
  check "self-sends consumed no randomness" true (verdicts a 100 = verdicts b 100)

let none_spec_passes_everything () =
  let t = Chaos.create ~seed:5 Chaos.none in
  check "quiet spec is a no-op" true
    (List.for_all
       (fun v -> v = Chaos.Pass { extra_delays = [ 0 ] })
       (verdicts t 200))

let drop_rate_statistics () =
  let t = Chaos.create ~seed:11 (Plan.drop_rate 0.5 Chaos.none) in
  let n = 4000 in
  let dropped =
    List.length (List.filter (function Chaos.Drop _ -> true | _ -> false) (verdicts t n))
  in
  let frac = float_of_int dropped /. float_of_int n in
  check "empirical drop rate near 0.5" true (frac > 0.45 && frac < 0.55)

(* ---------------- transport end-to-end ---------------- *)

let run_chaotic ?(nodes = 8) ?(seed = 1) ?(suspicion_after = 1500) chaos w =
  let base = Config.default ~nodes in
  let cfg =
    {
      base with
      Config.recovery = Config.Splice;
      seed;
      chaos;
      reliable = true;
      retry = { base.Config.retry with Config.suspicion_after };
    }
  in
  let c = Cluster.create cfg (Workload.program w) in
  Cluster.start c ~fname:w.Workload.entry ~args:(w.Workload.args Workload.Tiny);
  let o = Cluster.run ~drain:true c in
  ignore (Oracle.assert_ok c);
  (match o.Cluster.answer with
  | Some v ->
      check (w.Workload.name ^ " answer") true
        (Value.equal v (Workload.expected w Workload.Tiny))
  | None -> Alcotest.failf "%s: no answer under chaos" w.Workload.name);
  c

let counter c name = Counter.get (Cluster.counters c) name

let duplicates_suppressed () =
  let c = run_chaotic (Plan.duplicate_rate 0.5 Chaos.none) Workload.tree_sum in
  check "duplicates were injected and caught" true (counter c "net.dup_suppressed" > 0);
  check_int "nothing was dropped" 0 (counter c "net.msg_dropped");
  check_int "no one was suspected" 0 (counter c "net.suspected")

let losses_retransmitted () =
  let c = run_chaotic (Plan.drop_rate 0.25 Chaos.none) Workload.tree_sum in
  check "losses occurred" true (counter c "net.msg_dropped" > 0);
  check "retransmission recovered them" true (counter c "net.retransmit" > 0);
  check_int "patience avoided suspicion" 0 (counter c "net.suspected")

let partition_breeds_false_suspicion () =
  (* a long partition with an aggressive timeout: senders give up on the
     island, falsely suspect live processors, and twins finish the job —
     determinacy (§2) makes the duplicated computation benign *)
  let chaos =
    Chaos.none
    |> Plan.drop_rate 0.05
    |> Plan.partition ~from:300 ~until:30_000 ~groups:[ [ 1; 2 ] ]
  in
  let c = run_chaotic ~suspicion_after:600 chaos Workload.tree_sum in
  check "silence bred suspicion" true (counter c "net.suspected" > 0);
  check "and every suspicion was false" true
    (counter c "net.false_suspicion" = counter c "net.suspected")

(* ---------------- the gauntlet ---------------- *)

let gauntlet_seeds = [ 11; 42; 137; 271; 828; 1729; 4242; 90001 ]

let hostile =
  Chaos.none |> Plan.drop_rate 0.2 |> Plan.duplicate_rate 0.1
  |> Plan.reorder ~rate:0.15 ~spread:80
  |> Plan.delay_spikes ~rate:0.05 ~max_delay:400
  |> Plan.partition ~from:600 ~until:1500 ~groups:[ [ 1; 2 ] ]

let gauntlet () =
  (* ISSUE acceptance: with drop 0.2, dup 0.1 and one transient
     partition, every workload reaches the serial answer on >= 50 seeded
     runs, oracle asserted each time (run_chaotic does both) *)
  let runs = ref 0 in
  List.iter
    (fun w ->
      List.iter
        (fun seed ->
          ignore (run_chaotic ~seed ~suspicion_after:900 hostile w);
          incr runs)
        gauntlet_seeds)
    Workload.all;
  check "at least 50 chaos runs" true (!runs >= 50)

let suites =
  [
    ( "chaos.spec",
      [
        Alcotest.test_case "classification" `Quick spec_classes;
        Alcotest.test_case "validation" `Quick spec_validation;
        Alcotest.test_case "partition islands" `Quick severed_islands;
        Alcotest.test_case "decide deterministic" `Quick decide_deterministic;
        Alcotest.test_case "self-sends untouched" `Quick self_sends_draw_nothing;
        Alcotest.test_case "quiet spec passes all" `Quick none_spec_passes_everything;
        Alcotest.test_case "drop statistics" `Quick drop_rate_statistics;
      ] );
    ( "chaos.transport",
      [
        Alcotest.test_case "duplicates suppressed" `Quick duplicates_suppressed;
        Alcotest.test_case "losses retransmitted" `Quick losses_retransmitted;
        Alcotest.test_case "false suspicion benign" `Quick partition_breeds_false_suspicion;
      ] );
    ("chaos.gauntlet", [ Alcotest.test_case "50+ hostile runs, all correct" `Slow gauntlet ]);
  ]
