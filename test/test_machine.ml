(* Integration tests: the whole simulated machine, fault-free and faulty. *)

module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Node = Recflow_machine.Node
module Journal = Recflow_machine.Journal
module Workload = Recflow_workload.Workload
module Plan = Recflow_fault.Plan
module Stamp = Recflow_recovery.Stamp
module Value = Recflow_lang.Value
module Counter = Recflow_stats.Counter
module Chaos = Recflow_net.Chaos

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let value = Alcotest.testable Value.pp Value.equal
let qtest = QCheck_alcotest.to_alcotest

let run ?(cfg = Config.default ~nodes:8) ?(failures = []) ?(drain = false) w size =
  let c = Cluster.create cfg (Workload.program w) in
  List.iter (fun (t, p) -> Cluster.fail_at c ~time:t p) failures;
  Cluster.start c ~fname:w.Workload.entry ~args:(w.Workload.args size);
  let o = Cluster.run ~drain c in
  (c, o)

let answer_of (o : Cluster.outcome) =
  match o.Cluster.answer with Some v -> v | None -> Alcotest.fail "no answer"

(* ---------------- fault-free matrix ---------------- *)

let fault_free_matrix () =
  List.iter
    (fun w ->
      List.iter
        (fun size ->
          let _, o = run w size in
          Alcotest.check value
            (Printf.sprintf "%s/%s" w.Workload.name
               (match size with Workload.Tiny -> "tiny" | _ -> "small"))
            (Workload.expected w size) (answer_of o))
        [ Workload.Tiny; Workload.Small ])
    Workload.all

let topologies_matrix () =
  List.iter
    (fun topology ->
      let cfg = { (Config.default ~nodes:8) with Config.topology } in
      let _, o = run ~cfg Workload.fib Workload.Small in
      Alcotest.check value (Recflow_net.Topology.to_string topology)
        (Workload.expected Workload.fib Workload.Small)
        (answer_of o))
    [ Recflow_net.Topology.Full 8; Recflow_net.Topology.Ring 8;
      Recflow_net.Topology.Mesh (2, 4); Recflow_net.Topology.Hypercube 3 ]

let policies_matrix () =
  List.iter
    (fun policy ->
      let cfg = { (Config.default ~nodes:8) with Config.policy } in
      let _, o = run ~cfg Workload.tree_sum Workload.Small in
      Alcotest.check value
        (Recflow_balance.Policy.spec_to_string policy)
        (Workload.expected Workload.tree_sum Workload.Small)
        (answer_of o))
    [ Recflow_balance.Policy.Gradient { weight = 2 }; Recflow_balance.Policy.Random;
      Recflow_balance.Policy.Round_robin; Recflow_balance.Policy.Static_hash;
      Recflow_balance.Policy.Neighborhood { radius = 1 };
      Recflow_balance.Policy.Gradient_distributed { threshold = 1 } ]

let single_processor () =
  let cfg = Config.default ~nodes:1 in
  let _, o = run ~cfg Workload.fib Workload.Tiny in
  Alcotest.check value "one node suffices" (Workload.expected Workload.fib Workload.Tiny)
    (answer_of o)

let inline_grain_preserves_answer () =
  List.iter
    (fun inline_depth ->
      let cfg = { (Config.default ~nodes:4) with Config.inline_depth } in
      let _, o = run ~cfg Workload.fib Workload.Small in
      Alcotest.check value
        (Printf.sprintf "inline at depth %d" inline_depth)
        (Workload.expected Workload.fib Workload.Small)
        (answer_of o))
    [ 1; 2; 4; 8 ]

(* ---------------- recovery matrix ---------------- *)

let recovery_modes_with_failure () =
  List.iter
    (fun recovery ->
      let cfg = { (Config.default ~nodes:8) with Config.recovery } in
      let _, o = run ~cfg ~failures:[ (500, 2) ] Workload.fib Workload.Small in
      Alcotest.check value
        (Config.recovery_to_string recovery)
        (Workload.expected Workload.fib Workload.Small)
        (answer_of o))
    [ Config.Rollback; Config.Splice; Config.Replicate 2; Config.Replicate 3 ]

let no_recovery_loses_answer () =
  let cfg = { (Config.default ~nodes:4) with Config.recovery = Config.No_recovery } in
  (* kill the processor hosting the root: without recovery nothing can
     produce an answer *)
  let probe_cfg = cfg in
  let pc, _ = run ~cfg:probe_cfg Workload.fib Workload.Small in
  let root_host =
    Option.get (Plan.Pick.host_of (Cluster.journal pc) ~stamp:Stamp.root ~time:100)
  in
  let _, o = run ~cfg ~failures:[ (100, root_host) ] Workload.fib Workload.Small in
  check "no answer without recovery" true (o.Cluster.answer = None)

let root_failure_recovered () =
  (* the super-root's pre-evaluation checkpoint (§4.3.1) regenerates the
     root wherever it dies *)
  List.iter
    (fun recovery ->
      let cfg = { (Config.default ~nodes:4) with Config.recovery } in
      let pc, _ = run ~cfg Workload.fib Workload.Small in
      let root_host =
        Option.get (Plan.Pick.host_of (Cluster.journal pc) ~stamp:Stamp.root ~time:300)
      in
      let _, o = run ~cfg ~failures:[ (300, root_host) ] Workload.fib Workload.Small in
      Alcotest.check value
        ("root failure under " ^ Config.recovery_to_string recovery)
        (Workload.expected Workload.fib Workload.Small)
        (answer_of o))
    [ Config.Rollback; Config.Splice ]

let multiple_failures () =
  let cfg = { (Config.default ~nodes:8) with Config.recovery = Config.Splice } in
  let _, o = run ~cfg ~failures:[ (400, 1); (700, 5); (900, 6) ] Workload.fib Workload.Small in
  Alcotest.check value "three failures" (Workload.expected Workload.fib Workload.Small)
    (answer_of o)

let simultaneous_failures () =
  let cfg = { (Config.default ~nodes:8) with Config.recovery = Config.Rollback } in
  let _, o = run ~cfg ~failures:[ (500, 2); (500, 3) ] Workload.fib Workload.Small in
  Alcotest.check value "simultaneous pair" (Workload.expected Workload.fib Workload.Small)
    (answer_of o)

let failure_before_start () =
  let cfg = { (Config.default ~nodes:8) with Config.recovery = Config.Rollback } in
  let _, o = run ~cfg ~failures:[ (1, 4) ] Workload.fib Workload.Small in
  Alcotest.check value "failure at t=1" (Workload.expected Workload.fib Workload.Small)
    (answer_of o)

let gradient_distributed_with_failure () =
  (* the node-local gradient model (§3.3 / ref [10]) on a ring, with and
     without a failure *)
  let cfg =
    { (Config.default ~nodes:8) with
      Config.topology = Recflow_net.Topology.Ring 8;
      policy = Recflow_balance.Policy.Gradient_distributed { threshold = 1 };
      recovery = Config.Splice }
  in
  let c, o = run ~cfg Workload.tree_sum Workload.Small in
  Alcotest.check value "fault-free" (Workload.expected Workload.tree_sum Workload.Small)
    (answer_of o);
  check "gradient messages flowed" true
    (Counter.get (Cluster.counters c) "msg.gradient" > 0);
  let _, o = run ~cfg ~failures:[ (400, 3) ] Workload.tree_sum Workload.Small in
  Alcotest.check value "with failure" (Workload.expected Workload.tree_sum Workload.Small)
    (answer_of o)

let static_policy_with_failure () =
  let cfg =
    { (Config.default ~nodes:8) with Config.recovery = Config.Rollback;
      policy = Recflow_balance.Policy.Static_hash }
  in
  let c, o = run ~cfg ~failures:[ (400, 3) ] Workload.fib Workload.Small in
  Alcotest.check value "static recovers" (Workload.expected Workload.fib Workload.Small)
    (answer_of o);
  check "static reassignments happened" true
    (Counter.get (Cluster.counters c) "static.reassigned" > 0)

let splice_property =
  QCheck.Test.make ~name:"splice survives any single failure (random seed/time/victim)"
    ~count:25
    QCheck.(triple (int_range 0 1000) (int_range 50 2000) (int_range 0 7))
    (fun (seed, time, victim) ->
      let cfg = { (Config.default ~nodes:8) with Config.recovery = Config.Splice; seed } in
      let _, o = run ~cfg ~failures:[ (time, victim) ] Workload.tree_sum Workload.Tiny in
      match o.Cluster.answer with
      | Some v -> Value.equal v (Workload.expected Workload.tree_sum Workload.Tiny)
      | None -> false)

let rollback_property =
  QCheck.Test.make ~name:"rollback survives any single failure (random seed/time/victim)"
    ~count:25
    QCheck.(triple (int_range 0 1000) (int_range 50 2000) (int_range 0 7))
    (fun (seed, time, victim) ->
      let cfg = { (Config.default ~nodes:8) with Config.recovery = Config.Rollback; seed } in
      let _, o = run ~cfg ~failures:[ (time, victim) ] Workload.tree_sum Workload.Tiny in
      match o.Cluster.answer with
      | Some v -> Value.equal v (Workload.expected Workload.tree_sum Workload.Tiny)
      | None -> false)

let adoption_off_still_correct () =
  let cfg =
    { (Config.default ~nodes:8) with Config.recovery = Config.Splice; adoption_grace = 0 }
  in
  let _, o = run ~cfg ~failures:[ (500, 2) ] Workload.fib Workload.Small in
  Alcotest.check value "raw protocol (no inheritance)"
    (Workload.expected Workload.fib Workload.Small)
    (answer_of o)

let ancestor_depth_two () =
  let cfg = { (Config.default ~nodes:8) with Config.recovery = Config.Splice; ancestor_depth = 2 } in
  let _, o = run ~cfg ~failures:[ (400, 1); (400, 2) ] Workload.fib Workload.Small in
  Alcotest.check value "great-grandparent links" (Workload.expected Workload.fib Workload.Small)
    (answer_of o)

(* ---------------- journal invariants ---------------- *)

let journal_invariants () =
  let cfg = { (Config.default ~nodes:8) with Config.recovery = Config.Splice } in
  let c, o = run ~cfg ~failures:[ (500, 2) ] ~drain:true Workload.fib Workload.Small in
  ignore (answer_of o);
  let j = Cluster.journal c in
  (* every Completed activation was Activated first, per stamp+task *)
  List.iter
    (fun st ->
      let events = Journal.for_stamp j st in
      List.iter
        (fun (e : Journal.entry) ->
          match e.Journal.event with
          | Journal.Completed { task; _ } ->
            check "completed implies activated" true
              (List.exists
                 (fun (e' : Journal.entry) ->
                   e'.Journal.time <= e.Journal.time
                   &&
                   match e'.Journal.event with
                   | Journal.Activated { task = t'; _ } -> t' = task
                   | _ -> false)
                 events)
          | Journal.Activated { task; _ } ->
            check "activated implies spawned/respawned" true
              (List.exists
                 (fun (e' : Journal.entry) ->
                   e'.Journal.time <= e.Journal.time
                   &&
                   match e'.Journal.event with
                   | Journal.Spawned { task = t'; _ } | Journal.Respawned { task = t'; _ } ->
                     t' = task
                   | _ -> false)
                 events)
          | _ -> ())
        events)
    (Journal.stamps j)

let determinism () =
  let go () =
    let cfg = { (Config.default ~nodes:8) with Config.recovery = Config.Splice; seed = 77 } in
    let c, o = run ~cfg ~failures:[ (600, 3) ] Workload.fib Workload.Small in
    (o.Cluster.answer_time, o.Cluster.events, List.length (Journal.entries (Cluster.journal c)))
  in
  check "identical replay" true (go () = go ())

let seed_changes_schedule () =
  let go seed =
    let cfg =
      { (Config.default ~nodes:8) with Config.policy = Recflow_balance.Policy.Random; seed }
    in
    let _, o = run ~cfg Workload.fib Workload.Small in
    o.Cluster.answer_time
  in
  (* different placement, same answer; times normally differ *)
  check "seeds explored" true (go 1 <> go 2 || go 1 <> go 3)

(* ---------------- errors and edges ---------------- *)

let program_error_surfaces () =
  let p = Recflow_lang.Parser.parse_program_exn "def f(x) = 1 / x" in
  let c = Cluster.create (Config.default ~nodes:2) p in
  Cluster.start c ~fname:"f" ~args:[ Value.Int 0 ];
  let o = Cluster.run c in
  check "no answer" true (o.Cluster.answer = None);
  match o.Cluster.error with
  | Some msg -> check "division reported" true (String.length msg > 0)
  | None -> Alcotest.fail "error not surfaced"

let start_validation () =
  let p = Recflow_lang.Parser.parse_program_exn "def f(x) = x" in
  let c = Cluster.create (Config.default ~nodes:2) p in
  check "unknown entry" true
    (try
       Cluster.start c ~fname:"nope" ~args:[];
       false
     with Invalid_argument _ -> true);
  check "bad arity" true
    (try
       Cluster.start c ~fname:"f" ~args:[];
       false
     with Invalid_argument _ -> true);
  Cluster.start c ~fname:"f" ~args:[ Value.Int 1 ];
  check "double start" true
    (try
       Cluster.start c ~fname:"f" ~args:[ Value.Int 1 ];
       false
     with Invalid_argument _ -> true);
  check "run before start" true
    (let c2 = Cluster.create (Config.default ~nodes:2) p in
     try
       ignore (Cluster.run c2);
       false
     with Invalid_argument _ -> true)

let config_validation () =
  let bad f =
    let cfg = f (Config.default ~nodes:4) in
    match Config.validate cfg with Error _ -> true | Ok () -> false
  in
  check "replicate too big" true (bad (fun c -> { c with Config.recovery = Config.Replicate 9 }));
  check "replicate zero" true (bad (fun c -> { c with Config.recovery = Config.Replicate 0 }));
  check "bad work_tick" true (bad (fun c -> { c with Config.work_tick = 0 }));
  check "bad inline_depth" true (bad (fun c -> { c with Config.inline_depth = 0 }));
  check "negative ancestor depth" true (bad (fun c -> { c with Config.ancestor_depth = -1 }));
  (* transport / chaos knobs: each bad value must name its own rule *)
  let bad_msg msg f =
    let cfg = f (Config.default ~nodes:4) in
    match Config.validate cfg with
    | Error m -> String.equal m msg
    | Ok () -> false
  in
  check "bad rto" true
    (bad_msg "retry rto must be >= 1" (fun c ->
         { c with Config.retry = { c.Config.retry with Config.rto = 0 } }));
  check "bad backoff" true
    (bad_msg "retry backoff base must be >= 1" (fun c ->
         { c with Config.retry = { c.Config.retry with Config.backoff = 0.5 } }));
  check "suspicion under detect_delay" true
    (bad_msg
       "suspicion_after must exceed detect_delay (timeout suspicion is the slow local \
        fallback to the failure-notice broadcast)"
       (fun c ->
         { c with
           Config.reliable = true;
           retry = { c.Config.retry with Config.suspicion_after = c.Config.detect_delay } }));
  check "bad drop rate" true
    (bad_msg "chaos drop_rate must be in [0,1)" (fun c ->
         { c with
           Config.reliable = true;
           chaos = { Chaos.none with Chaos.drop_rate = 1.0 } }));
  check "lossy chaos needs reliable transport" true
    (bad_msg "a lossy chaos spec (drop_rate > 0 or partitions) requires reliable transport"
       (fun c -> { c with Config.chaos = { Chaos.none with Chaos.drop_rate = 0.1 } }));
  (* service knobs: one negative per knob *)
  check "bad arrival mean" true
    (bad_msg "service arrival_mean must be > 0" (fun c ->
         { c with Config.service = { c.Config.service with Config.arrival_mean = 0.0 } }));
  check "bad service replicas" true
    (bad_msg "service replicas must be >= 1" (fun c ->
         { c with Config.service = { c.Config.service with Config.replicas = 0 } }));
  check "service replicas over cluster" true
    (bad_msg "service replicas 9 exceeds cluster size" (fun c ->
         { c with Config.service = { c.Config.service with Config.replicas = 9 } }));
  check "bad max inflight" true
    (bad_msg "service max_inflight must be >= 1" (fun c ->
         { c with Config.service = { c.Config.service with Config.max_inflight = 0 } }));
  check "bad shed fraction" true
    (bad_msg "service shed_suspect_frac must be in [0,1]" (fun c ->
         { c with Config.service = { c.Config.service with Config.shed_suspect_frac = 1.5 } }));
  (* adaptive checkpoint-admission knobs (PR 9) *)
  check "negative ckpt_cost" true
    (bad_msg "costs must be non-negative" (fun c -> { c with Config.ckpt_cost = -1 }));
  check "loss_prior above 1" true
    (bad_msg "loss_prior must be in [0,1]" (fun c -> { c with Config.loss_prior = 1.5 }));
  check "loss_prior negative" true
    (bad_msg "loss_prior must be in [0,1]" (fun c -> { c with Config.loss_prior = -0.1 }));
  check "loss_prior nan" true
    (bad_msg "loss_prior must be in [0,1]" (fun c -> { c with Config.loss_prior = Float.nan }));
  check "adaptive max_depth zero" true
    (bad_msg "adaptive ckpt_mode max_depth must be >= 1 (the root's children must be covered)"
       (fun c -> { c with Config.ckpt_mode = Config.Adaptive { max_depth = 0 } }));
  check "adaptive + replicate" true
    (bad_msg
       "adaptive checkpoint admission cannot be combined with replication (lost replicas are \
        governed by the voter, not the checkpoint table)"
       (fun c ->
         { c with
           Config.ckpt_mode = Config.Adaptive { max_depth = 3 };
           recovery = Config.Replicate 2 }));
  check "valid adaptive config" true
    (Config.validate
       { (Config.default ~nodes:4) with
         Config.ckpt_mode = Config.Adaptive { max_depth = 3 };
         ckpt_cost = 2;
         loss_prior = 0.25;
         recovery = Config.Rollback }
    = Ok ());
  check "default valid" true (Config.validate (Config.default ~nodes:4) = Ok ())

let horizon_stops () =
  let cfg = { (Config.default ~nodes:2) with Config.horizon = 50 } in
  let _, o = run ~cfg Workload.fib Workload.Small in
  check "no answer within tiny horizon" true (o.Cluster.answer = None);
  check "stopped at/before horizon" true (o.Cluster.sim_time <= 50)

let dead_nodes_mark_tasks () =
  let cfg = { (Config.default ~nodes:4) with Config.recovery = Config.Rollback } in
  let c, _ = run ~cfg ~failures:[ (300, 1) ] Workload.fib Workload.Small in
  let n = Cluster.node c 1 in
  check "node dead" false (Node.is_alive n);
  check_int "no live tasks on a dead node" 0 (Node.live_tasks n)

let counters_consistency () =
  let c, _ = run Workload.fib Workload.Small in
  let g name = Counter.get (Cluster.counters c) name in
  (* the root packet is parented on the super-root, which takes no ack *)
  check "every packet acked (no failures)" true (g "msg.task_packet" = g "msg.ack" + 1);
  check "spawn count matches packets" true (g "spawn.remote" + 1 = g "msg.task_packet");
  check_int "no aborts fault-free" 0 (g "task.aborted")

let work_conservation () =
  (* distributed work should be close to the serial reduction count *)
  let c, o = run Workload.fib Workload.Small in
  ignore (answer_of o);
  let work = Cluster.total_work c in
  let serial = Workload.serial_work Workload.fib Workload.Small in
  check "work within 3x of serial reductions" true (work > serial / 3 && work < serial * 3);
  check_int "no waste fault-free" 0 (Cluster.total_waste c)

(* ---------------- timeline ---------------- *)

let timeline_render () =
  let cfg = { (Config.default ~nodes:4) with Config.recovery = Config.Splice } in
  let c, o = run ~cfg ~failures:[ (400, 2) ] Workload.tree_sum Workload.Small in
  ignore (answer_of o);
  let s = Recflow_machine.Timeline.render (Cluster.journal c) ~nodes:4 ~width:40 () in
  check "the failed node's row shows dead buckets" true
    (String.split_on_char '\n' s
    |> List.exists (fun l ->
           String.length l > 2 && l.[0] = 'P' && l.[1] = '2'
           &&
           let has_x = ref false in
           String.iter (fun ch -> if ch = 'X' then has_x := true) l;
           !has_x));
  check_int "one row per node + header + legend" (4 + 2)
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' s)))

let timeline_occupancy () =
  let cfg = { (Config.default ~nodes:4) with Config.recovery = Config.Splice } in
  let c, o = run ~cfg ~failures:[ (400, 2) ] Workload.tree_sum Workload.Small in
  let until = o.Cluster.sim_time in
  let grid = Recflow_machine.Timeline.occupancy (Cluster.journal c) ~nodes:4 ~buckets:50 ~until in
  check_int "rows" 4 (Array.length grid);
  check_int "cols" 50 (Array.length grid.(0));
  (* the failed node is marked dead from some bucket onward, and stays so *)
  let dead_from =
    Array.to_list grid.(2) |> List.mapi (fun i v -> (i, v))
    |> List.find_opt (fun (_, v) -> v < 0)
  in
  (match dead_from with
  | Some (i, _) ->
    check "dead forever after" true
      (Array.for_all (fun v -> v < 0)
         (Array.sub grid.(2) i (Array.length grid.(2) - i)))
  | None -> Alcotest.fail "failed node never marked dead");
  (* live nodes never show a dead marker *)
  check "survivors never dead" true
    (Array.for_all (fun v -> v >= 0) grid.(0)
    && Array.for_all (fun v -> v >= 0) grid.(1)
    && Array.for_all (fun v -> v >= 0) grid.(3))

(* ---------------- first_alive ---------------- *)

let first_alive_min_int () =
  (* Regression: [abs min_int] is still negative, so hashing with [abs]
     produced a negative index and [List.nth] raised.  [key land max_int]
     must work for every int, extremes included. *)
  let c = Cluster.create (Config.default ~nodes:8) (Workload.program Workload.fib) in
  List.iter
    (fun key ->
      match Cluster.first_alive c ~key with
      | Some p -> check (Printf.sprintf "key %d in range" key) true (p >= 0 && p < 8)
      | None -> Alcotest.fail (Printf.sprintf "key %d: no pick among 8 alive nodes" key))
    [ min_int; min_int + 1; -1; 0; 1; max_int ]

let first_alive_deterministic () =
  let c = Cluster.create (Config.default ~nodes:8) (Workload.program Workload.fib) in
  List.iter
    (fun key ->
      check "same key, same pick" true
        (Cluster.first_alive c ~key = Cluster.first_alive c ~key))
    [ min_int; 17; 123456789 ]

let timeline_empty () =
  let j = Journal.create () in
  check "placeholder" true (Recflow_machine.Timeline.render j ~nodes:2 () = "(empty journal)\n")

let occupancy_empty_journal () =
  let grid = Recflow_machine.Timeline.occupancy (Journal.create ()) ~nodes:3 ~buckets:10 ~until:100 in
  check_int "rows" 3 (Array.length grid);
  check_int "cols" 10 (Array.length grid.(0));
  check "all zero" true (Array.for_all (fun row -> Array.for_all (fun v -> v = 0) row) grid)

let occupancy_failure_in_bucket_zero () =
  let j = Journal.create () in
  Journal.record j ~time:0 ~stamp:Stamp.root (Journal.Failure { proc = 1 });
  Journal.record j ~time:50 ~stamp:(Stamp.of_digits [ 1 ]) (Journal.Activated { task = 7; proc = 0 });
  let grid = Recflow_machine.Timeline.occupancy j ~nodes:2 ~buckets:8 ~until:100 in
  check "failed node dead from bucket 0" true (Array.for_all (fun v -> v = -1) grid.(1));
  check "survivor unaffected" true (Array.for_all (fun v -> v >= 0) grid.(0));
  check_int "survivor occupied at activation bucket" 1 grid.(0).(4)

let occupancy_until_before_entries () =
  (* events beyond [until] clamp into the last bucket instead of indexing
     out of bounds *)
  let j = Journal.create () in
  Journal.record j ~time:100 ~stamp:(Stamp.of_digits [ 0 ]) (Journal.Activated { task = 1; proc = 0 });
  Journal.record j ~time:200 ~stamp:(Stamp.of_digits [ 1 ]) (Journal.Activated { task = 2; proc = 0 });
  let grid = Recflow_machine.Timeline.occupancy j ~nodes:1 ~buckets:4 ~until:10 in
  check_int "cols" 4 (Array.length grid.(0));
  check_int "both activations clamp to last bucket" 2 grid.(0).(3);
  check_int "earlier buckets empty" 0 grid.(0).(0)

let suites =
  [
    ( "machine.fault_free",
      [
        Alcotest.test_case "all workloads x sizes" `Quick fault_free_matrix;
        Alcotest.test_case "all topologies" `Quick topologies_matrix;
        Alcotest.test_case "all policies" `Quick policies_matrix;
        Alcotest.test_case "single processor" `Quick single_processor;
        Alcotest.test_case "inline grain" `Quick inline_grain_preserves_answer;
        Alcotest.test_case "counters" `Quick counters_consistency;
        Alcotest.test_case "work conservation" `Quick work_conservation;
      ] );
    ( "machine.recovery",
      [
        Alcotest.test_case "all modes with failure" `Quick recovery_modes_with_failure;
        Alcotest.test_case "no recovery loses" `Quick no_recovery_loses_answer;
        Alcotest.test_case "root failure" `Quick root_failure_recovered;
        Alcotest.test_case "multiple failures" `Quick multiple_failures;
        Alcotest.test_case "simultaneous failures" `Quick simultaneous_failures;
        Alcotest.test_case "failure before start" `Quick failure_before_start;
        Alcotest.test_case "static with failure" `Quick static_policy_with_failure;
        Alcotest.test_case "distributed gradient" `Quick gradient_distributed_with_failure;
        Alcotest.test_case "adoption off" `Quick adoption_off_still_correct;
        Alcotest.test_case "ancestor depth 2" `Quick ancestor_depth_two;
        Alcotest.test_case "dead node state" `Quick dead_nodes_mark_tasks;
        qtest splice_property;
        qtest rollback_property;
      ] );
    ( "machine.invariants",
      [
        Alcotest.test_case "journal invariants" `Quick journal_invariants;
        Alcotest.test_case "determinism" `Quick determinism;
        Alcotest.test_case "seed sensitivity" `Quick seed_changes_schedule;
        Alcotest.test_case "program error" `Quick program_error_surfaces;
        Alcotest.test_case "start validation" `Quick start_validation;
        Alcotest.test_case "config validation" `Quick config_validation;
        Alcotest.test_case "horizon" `Quick horizon_stops;
        Alcotest.test_case "first_alive min_int" `Quick first_alive_min_int;
        Alcotest.test_case "first_alive deterministic" `Quick first_alive_deterministic;
      ] );
    ( "machine.timeline",
      [
        Alcotest.test_case "render" `Quick timeline_render;
        Alcotest.test_case "occupancy" `Quick timeline_occupancy;
        Alcotest.test_case "empty" `Quick timeline_empty;
        Alcotest.test_case "occupancy empty journal" `Quick occupancy_empty_journal;
        Alcotest.test_case "occupancy failure in bucket 0" `Quick occupancy_failure_in_bucket_zero;
        Alcotest.test_case "occupancy until before entries" `Quick occupancy_until_before_entries;
      ] );
  ]
