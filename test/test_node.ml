(* Unit tests of the node protocol (§4.2) against a scripted context: every
   message the node emits is captured, the scheduler is pumped by hand, and
   no cluster/event loop is involved.  This isolates protocol paths that
   are hard to pin down end-to-end: bounce varieties, adoption stash and
   flush, vote bookkeeping, abort cascades, checkpoint discharge. *)

module Node = Recflow_machine.Node
module Config = Recflow_machine.Config
module Message = Recflow_machine.Message
module Journal = Recflow_machine.Journal
module Stamp = Recflow_recovery.Stamp
module Packet = Recflow_recovery.Packet
module Ckpt_table = Recflow_recovery.Ckpt_table
module Value = Recflow_lang.Value
module Graph = Recflow_lang.Graph
module Counter = Recflow_stats.Counter

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let program =
  Recflow_lang.Parser.parse_program_exn
    "def add1(n) = n + 1\n\
     def par(n) = add1(n) + add1(n + 1)\n\
     def wide(n) = add1(n) + add1(n) + add1(n) "

let library = Graph.compile_program program

(* A scripted world around one node: captures sends, counts wakes, fixes
   placement on a chosen destination. *)
type world = {
  node : Node.t;
  ctx : Node.ctx;
  sent : (int * int * Message.t) list ref;  (* src, dst, msg — oldest first *)
  journal : Journal.t;
  counters : Counter.set;
  errors : string list ref;
  mutable wakes : int;
  mutable next_id : int;
  mutable clock : int;
}

let make_world ?(config = Config.default ~nodes:4) ?(dest = 1) ~node_id () =
  let sent = ref [] in
  let journal = Journal.create () in
  let counters = Counter.create_set () in
  let errors = ref [] in
  let rec w =
    lazy
      (let ctx : Node.ctx =
         {
           Node.config;
           now = (fun () -> (Lazy.force w).clock);
           send = (fun ~src ~dst msg -> sent := !sent @ [ (src, dst, msg) ]);
           send_after = (fun ~delay:_ ~src ~dst msg -> sent := !sent @ [ (src, dst, msg) ]);
           wake =
             (fun _ ~delay:_ ->
               let w = Lazy.force w in
               w.wakes <- w.wakes + 1);
           fresh_task_id =
             (fun () ->
               let w = Lazy.force w in
               let id = w.next_id in
               w.next_id <- id + 1;
               id);
           place = (fun ~origin:_ ~key:_ -> dest);
           first_alive = (fun ~key:_ -> Some dest);
           neighbors = (fun _ -> [ 0; 1; 3 ]);
           template = Graph.find_exn library;
           inline_eval =
             (fun fname args ->
               match Recflow_lang.Eval_serial.eval program fname (Array.to_list args) with
               | v, steps -> Ok (v, steps)
               | exception Recflow_lang.Eval_serial.Runtime_error m -> Error m);
           journal;
           counters;
           trace = Recflow_sim.Trace.create ~capacity:256 ();
           record_latency = (fun _ _ -> ());
           program_error = (fun m -> errors := m :: !errors);
         }
       in
       {
         node = Node.create node_id config;
         ctx;
         sent;
         journal;
         counters;
         errors;
         wakes = 0;
         next_id = 1000;
         clock = 0;
       })
  in
  Lazy.force w

(* Drain the node's CPU: honour every requested wake until quiescent. *)
let pump w =
  let guard = ref 0 in
  while w.wakes > 0 && !guard < 100_000 do
    w.wakes <- w.wakes - 1;
    w.clock <- w.clock + 1;
    Node.step w.node w.ctx;
    incr guard
  done;
  check "pump terminated" true (!guard < 100_000)

let deliver w msg =
  Node.deliver w.node w.ctx msg;
  pump w

let parent_link ~task ~proc ~slot = { Packet.task; proc; slot }

let mk_packet ?(stamp = Stamp.of_digits [ 0 ]) ?(fname = "add1") ?(args = [| Value.Int 41 |])
    ?(parent = parent_link ~task:99 ~proc:0 ~slot:7) ?grandparent () =
  Packet.make ~stamp ~fname ~args ~parent ~grandparent ~ancestors:[]

let activate ?(task_id = 500) w packet =
  deliver w (Message.Task_packet { packet; task_id; replica = 0; replicas = 1 })

let sent_to w dst =
  List.filter_map (fun (_, d, m) -> if d = dst then Some m else None) !(w.sent)

let results_sent w =
  List.filter_map (fun (_, _, m) -> match m with Message.Result r -> Some r | _ -> None) !(w.sent)

let packets_sent w =
  (* (packet, task id) pairs, oldest first *)
  List.filter_map
    (fun (_, _, m) ->
      match m with
      | Message.Task_packet { packet; task_id; _ } -> Some (packet, task_id)
      | _ -> None)
    !(w.sent)

(* ---------------- activation / completion ---------------- *)

let ack_then_result () =
  let w = make_world ~node_id:2 () in
  activate w (mk_packet ());
  (* ack to the parent's processor, then the computed result *)
  (match sent_to w 0 with
  | [ Message.Ack { child_task; slot; _ }; Message.Result r ] ->
    check_int "ack child task" 500 child_task;
    check_int "ack slot" 7 slot;
    check "result value" true (Value.equal r.Message.value (Value.Int 42));
    check_int "result target task" 99 r.Message.target.Packet.task;
    check_int "result target slot" 7 r.Message.target.Packet.slot;
    check "to parent" true (r.Message.relay = Message.To_parent)
  | ms -> Alcotest.failf "unexpected messages: %d" (List.length ms));
  check_int "no program errors" 0 (List.length !(w.errors))

let no_ack_for_super_root () =
  let w = make_world ~node_id:2 () in
  activate w
    (mk_packet ~stamp:Stamp.root
       ~parent:(parent_link ~task:Recflow_recovery.Ids.no_task ~proc:Recflow_recovery.Ids.super_root ~slot:0)
       ());
  check "only the result goes out" true
    (List.for_all (fun (_, _, m) -> match m with Message.Ack _ -> false | _ -> true) !(w.sent))

let spawn_links_and_checkpoint () =
  let w = make_world ~node_id:2 () in
  let gp = parent_link ~task:11 ~proc:3 ~slot:1 in
  activate w (mk_packet ~fname:"par" ~stamp:(Stamp.of_digits [ 4 ]) ~grandparent:gp ());
  (match packets_sent w with
  | [ (p1, _); (p2, _) ] ->
    Alcotest.(check (list int)) "first child stamp" [ 4; 0 ] (Stamp.digits p1.Packet.stamp);
    Alcotest.(check (list int)) "second child stamp" [ 4; 1 ] (Stamp.digits p2.Packet.stamp);
    check_int "children parented on this activation" 500 p1.Packet.parent.Packet.task;
    check_int "parent proc is this node" 2 p1.Packet.parent.Packet.proc;
    (* the child's grandparent link is this task's parent link *)
    (match p1.Packet.grandparent with
    | Some l -> check_int "grandparent is the spawner's parent" 99 l.Packet.task
    | None -> Alcotest.fail "no grandparent link");
    check "distinct slots" true (p1.Packet.parent.Packet.slot <> p2.Packet.parent.Packet.slot)
  | ps -> Alcotest.failf "expected 2 spawns, got %d" (List.length ps));
  check_int "both checkpointed" 2 (Ckpt_table.total_size (Node.checkpoints w.node))

let child_results_complete_parent () =
  let w = make_world ~node_id:2 () in
  activate w (mk_packet ~fname:"par" ~args:[| Value.Int 10 |] ());
  let spawns = packets_sent w in
  check_int "two children out" 2 (List.length spawns);
  (* feed both answers back: add1(10)=11, add1(11)=12 *)
  List.iter
    (fun (p, _) ->
      let v =
        match p.Packet.args.(0) with Value.Int n -> Value.Int (n + 1) | _ -> assert false
      in
      deliver w
        (Message.Result
           { stamp = p.Packet.stamp; value = v; target = p.Packet.parent;
             relay = Message.To_parent }))
    spawns;
  (match results_sent w with
  | [ r ] -> check "23" true (Value.equal r.Message.value (Value.Int 23))
  | rs -> Alcotest.failf "expected 1 result, got %d" (List.length rs));
  check_int "checkpoints discharged" 0 (Ckpt_table.total_size (Node.checkpoints w.node))

let duplicate_result_ignored () =
  let w = make_world ~node_id:2 () in
  activate w (mk_packet ~fname:"par" ~args:[| Value.Int 10 |] ());
  match packets_sent w with
  | (p, _) :: _ ->
    let res v =
      Message.Result
        { stamp = p.Packet.stamp; value = v; target = p.Packet.parent;
          relay = Message.To_parent }
    in
    deliver w (res (Value.Int 11));
    deliver w (res (Value.Int 11));
    check_int "duplicate counted" 1 (Counter.get w.counters "dup.ignored")
  | _ -> Alcotest.fail "no spawn"

let unknown_target_ignored () =
  let w = make_world ~node_id:2 () in
  deliver w
    (Message.Result
       { stamp = Stamp.of_digits [ 9 ]; value = Value.Int 1;
         target = parent_link ~task:4242 ~proc:2 ~slot:0; relay = Message.To_parent });
  check_int "ignored" 1 (Counter.get w.counters "result.ignored")

let inline_below_grain () =
  let config = { (Config.default ~nodes:4) with Config.inline_depth = 2 } in
  let w = make_world ~config ~node_id:2 () in
  (* par at depth 1 spawns children that would reach depth 2 -> inlined *)
  activate w (mk_packet ~fname:"par" ~args:[| Value.Int 10 |] ());
  check_int "no remote spawns" 0 (List.length (packets_sent w));
  match results_sent w with
  | [ r ] -> check "inline answer" true (Value.equal r.Message.value (Value.Int 23))
  | _ -> Alcotest.fail "expected one result"

(* ---------------- failure handling ---------------- *)

let notice_reissues_topmost () =
  let w = make_world ~node_id:2 ~dest:1 () in
  activate w (mk_packet ~fname:"par" ~args:[| Value.Int 10 |] ());
  check_int "both to P1" 2 (List.length (packets_sent w));
  w.sent := [];
  deliver w (Message.Failure_notice { failed = 1 });
  let reissues = packets_sent w in
  (* the scripted placement can only nominate the dead node again, so the
     local-regen pass re-issues once more on top of the drained pass *)
  check "children re-issued" true (List.length reissues >= 2);
  check "journal respawns" true
    (Journal.count w.journal (function Journal.Respawned _ -> true | _ -> false) >= 2);
  check "node knows the death" true (Node.knows_dead w.node 1)

let notice_idempotent () =
  let w = make_world ~node_id:2 ~dest:1 () in
  activate w (mk_packet ~fname:"par" ());
  w.sent := [];
  deliver w (Message.Failure_notice { failed = 1 });
  let first = List.length !(w.sent) in
  deliver w (Message.Failure_notice { failed = 1 });
  check_int "second notice is a no-op" first (List.length !(w.sent))

let bounced_packet_reissued () =
  let w = make_world ~node_id:2 ~dest:1 () in
  activate w (mk_packet ~fname:"par" ());
  let lost_packet, lost_id = List.hd (packets_sent w) in
  w.sent := [];
  Node.handle_bounce w.node w.ctx ~dead:1
    (Message.Task_packet { packet = lost_packet; task_id = lost_id; replica = 0; replicas = 1 });
  pump w;
  check "re-issued after bounce" true (packets_sent w <> []);
  check "death learned from bounce" true (Node.knows_dead w.node 1)

let rollback_orphan_abort_cascade () =
  let config = { (Config.default ~nodes:4) with Config.recovery = Config.Rollback } in
  let w = make_world ~config ~node_id:2 ~dest:3 () in
  (* a task whose parent lives on P1; it has spawned children to P3 *)
  activate w (mk_packet ~fname:"par" ~parent:(parent_link ~task:7 ~proc:1 ~slot:0) ());
  w.sent := [];
  deliver w (Message.Failure_notice { failed = 1 });
  (* the orphan is aborted and abort messages cascade to its children *)
  check_int "aborted locally" 1 (Counter.get w.counters "task.aborted");
  check "abort cascaded to children" true
    (List.exists (fun (_, d, m) -> d = 3 && match m with Message.Abort _ -> true | _ -> false)
       !(w.sent));
  check_int "journal abort" 1
    (Journal.count w.journal (function Journal.Aborted _ -> true | _ -> false))

let splice_keeps_orphans () =
  let config = { (Config.default ~nodes:4) with Config.recovery = Config.Splice } in
  let w = make_world ~config ~node_id:2 ~dest:3 () in
  activate w (mk_packet ~fname:"par" ~parent:(parent_link ~task:7 ~proc:1 ~slot:0)
                ~grandparent:(parent_link ~task:3 ~proc:0 ~slot:4) ());
  w.sent := [];
  deliver w (Message.Failure_notice { failed = 1 });
  check_int "no aborts under splice" 0 (Counter.get w.counters "task.aborted");
  (* the living orphan reports itself to the grandparent *)
  check "adoption report sent" true
    (List.exists
       (fun (_, d, m) -> d = 0 && match m with Message.Orphan_alive _ -> true | _ -> false)
       !(w.sent))

let orphan_result_diverts_to_grandparent () =
  let config = { (Config.default ~nodes:4) with Config.recovery = Config.Splice } in
  let w = make_world ~config ~node_id:2 () in
  (* parent on P1 already known dead when the task completes *)
  deliver w (Message.Failure_notice { failed = 1 });
  w.sent := [];
  activate w
    (mk_packet ~parent:(parent_link ~task:7 ~proc:1 ~slot:0)
       ~grandparent:(parent_link ~task:3 ~proc:0 ~slot:4) ());
  (match results_sent w with
  | [ r ] -> (
    match r.Message.relay with
    | Message.To_grandparent { dead_parent } ->
      check_int "grandparent targeted" 3 r.Message.target.Packet.task;
      check_int "dead parent recorded" 7 dead_parent.Packet.task
    | _ -> Alcotest.fail "expected a grandchild relay")
  | rs -> Alcotest.failf "expected 1 result, got %d" (List.length rs));
  check_int "relay counted" 1 (Counter.get w.counters "relay.sent")

let rollback_drops_orphan_result () =
  let config = { (Config.default ~nodes:4) with Config.recovery = Config.Rollback } in
  let w = make_world ~config ~node_id:2 () in
  deliver w (Message.Failure_notice { failed = 1 });
  w.sent := [];
  activate w (mk_packet ~parent:(parent_link ~task:7 ~proc:1 ~slot:0) ());
  check_int "nothing relayed" 0 (List.length (results_sent w));
  check_int "dropped" 1 (Counter.get w.counters "result.orphan_dropped")

let grandparent_relays_to_twin () =
  let config = { (Config.default ~nodes:4) with Config.recovery = Config.Splice } in
  let w = make_world ~config ~node_id:2 ~dest:1 () in
  (* this node's task spawned a child (the future dead parent) to P1 *)
  activate w (mk_packet ~fname:"par" ~args:[| Value.Int 10 |] ());
  let dead, dead_id = List.hd (packets_sent w) in
  w.sent := [];
  (* a grandchild of ours returns, finding its parent (our child) dead *)
  deliver w
    (Message.Result
       {
         stamp = Stamp.child dead.Packet.stamp 0;
         value = Value.Int 5;
         target = dead.Packet.parent;  (* = our task, the grandparent *)
         relay =
           Message.To_grandparent
             { dead_parent = { Packet.task = dead_id; proc = 1; slot = 3 } };
       });
  (* the dead child was re-homed (twin) and the value forwarded to it *)
  check "twin re-issued" true (packets_sent w <> []);
  check "salvage forwarded" true
    (List.exists
       (fun r -> match r.Message.relay with Message.To_step_parent _ -> true | _ -> false)
       (results_sent w));
  check_int "relay counter" 1 (Counter.get w.counters "relay.forwarded")

let adoption_pre_spawn_inherits () =
  let config = { (Config.default ~nodes:4) with Config.recovery = Config.Splice } in
  let w = make_world ~config ~node_id:2 ~dest:1 () in
  (* the twin activation receives an adoption report BEFORE it runs: the
     matching call slot must be inherited, not cloned *)
  let twin_packet = mk_packet ~fname:"par" ~args:[| Value.Int 10 |] ~stamp:(Stamp.of_digits [ 6 ]) () in
  Node.deliver w.node w.ctx
    (Message.Task_packet { packet = twin_packet; task_id = 600; replica = 0; replicas = 1 });
  (* report for the twin's first child-to-be (stamp 6.0) *)
  Node.deliver w.node w.ctx
    (Message.Orphan_alive
       {
         stamp = Stamp.of_digits [ 6; 0 ];
         orphan = parent_link ~task:77 ~proc:3 ~slot:2;
         dead_parent = parent_link ~task:55 ~proc:1 ~slot:2;
         target = parent_link ~task:600 ~proc:2 ~slot:(-1);
       });
  pump w;
  check_int "adoption recorded then consumed" 1
    (Journal.count w.journal (function Journal.Inherited _ -> true | _ -> false));
  check_int "only the second child spawned remotely" 1 (List.length (packets_sent w));
  check_int "inherit counter" 1 (Counter.get w.counters "spawn.inherited")

let early_messages_stash_until_activation () =
  let config = { (Config.default ~nodes:4) with Config.recovery = Config.Splice } in
  let w = make_world ~config ~node_id:2 ~dest:1 () in
  (* a salvaged result addressed to a twin whose packet has not landed *)
  let twin_packet = mk_packet ~fname:"par" ~args:[| Value.Int 10 |] ~stamp:(Stamp.of_digits [ 6 ]) () in
  let slot =
    (* discover par's first call slot from a probe activation elsewhere *)
    let probe = make_world ~config ~node_id:3 ~dest:1 () in
    activate probe (mk_packet ~fname:"par" ~args:[| Value.Int 10 |] ());
    (fst (List.hd (packets_sent probe))).Packet.parent.Packet.slot
  in
  deliver w
    (Message.Result
       {
         stamp = Stamp.of_digits [ 6; 0 ];
         value = Value.Int 11;
         target = parent_link ~task:600 ~proc:2 ~slot;
         relay = Message.To_step_parent { dead_parent = parent_link ~task:55 ~proc:1 ~slot };
       });
  check_int "not treated as unknown" 0 (Counter.get w.counters "result.ignored");
  activate ~task_id:600 w twin_packet;
  (* the stashed result pre-fills one slot, so only one remote spawn *)
  check_int "one spawn skipped" 1 (Counter.get w.counters "spawn.skipped_preheld");
  check_int "one remote child" 1 (List.length (packets_sent w))

(* ---------------- replication ---------------- *)

let replication_spawns_and_votes () =
  let config =
    { (Config.default ~nodes:4) with Config.recovery = Config.Replicate 2; replicate_depth = 99 }
  in
  let w = make_world ~config ~node_id:2 ~dest:1 () in
  activate w (mk_packet ~fname:"par" ~args:[| Value.Int 10 |] ());
  let spawns = packets_sent w in
  check_int "two replicas per child" 4 (List.length spawns);
  w.sent := [];
  (* one replica of each child answers: undecided (majority of 2 is 2) *)
  let by_stamp = Hashtbl.create 4 in
  List.iter
    (fun (p, id) -> Hashtbl.replace by_stamp (Stamp.digits p.Packet.stamp) (p, id))
    spawns;
  let answer (p, _) =
    let v = match p.Packet.args.(0) with Value.Int n -> Value.Int (n + 1) | _ -> assert false in
    deliver w
      (Message.Result
         { stamp = p.Packet.stamp; value = v; target = p.Packet.parent;
           relay = Message.To_parent })
  in
  Hashtbl.iter (fun _ tp -> answer tp) by_stamp;
  check_int "no result yet (one vote each)" 0 (List.length (results_sent w));
  (* second replica of each: decide and complete *)
  List.iter answer spawns;
  match results_sent w with
  | [ r ] -> check "final value" true (Value.equal r.Message.value (Value.Int 23))
  | rs -> Alcotest.failf "expected 1 result, got %d" (List.length rs)

let replication_loses_replica_on_notice () =
  let config =
    { (Config.default ~nodes:4) with Config.recovery = Config.Replicate 2; replicate_depth = 99 }
  in
  let w = make_world ~config ~node_id:2 ~dest:1 () in
  activate w (mk_packet ~fname:"par" ~args:[| Value.Int 10 |] ());
  let spawns = packets_sent w in
  w.sent := [];
  (* all replicas were placed on P1; its failure loses one of each pair,
     and the survivor's unanimity cannot decide until it answers *)
  deliver w (Message.Failure_notice { failed = 1 });
  (* all-dead replica groups are respawned as fresh pairs *)
  check "vote groups re-issued" true (packets_sent w <> []);
  check_int "old spawn count" 4 (List.length spawns)

(* ---------------- kill ---------------- *)

let killed_node_is_silent () =
  let w = make_world ~node_id:2 () in
  activate w (mk_packet ~fname:"par" ());
  Node.kill w.node w.ctx;
  w.sent := [];
  deliver w (mk_packet () |> fun p -> Message.Task_packet { packet = p; task_id = 9; replica = 0; replicas = 1 });
  deliver w (Message.Failure_notice { failed = 1 });
  check_int "no reaction after kill" 0 (List.length !(w.sent));
  check "not alive" false (Node.is_alive w.node)

let suites =
  [
    ( "node.protocol",
      [
        Alcotest.test_case "ack then result" `Quick ack_then_result;
        Alcotest.test_case "no ack for super-root" `Quick no_ack_for_super_root;
        Alcotest.test_case "spawn links + checkpoint" `Quick spawn_links_and_checkpoint;
        Alcotest.test_case "child results complete parent" `Quick child_results_complete_parent;
        Alcotest.test_case "duplicate result ignored" `Quick duplicate_result_ignored;
        Alcotest.test_case "unknown target ignored" `Quick unknown_target_ignored;
        Alcotest.test_case "inline below grain" `Quick inline_below_grain;
      ] );
    ( "node.failure",
      [
        Alcotest.test_case "notice re-issues topmost" `Quick notice_reissues_topmost;
        Alcotest.test_case "notice idempotent" `Quick notice_idempotent;
        Alcotest.test_case "bounced packet re-issued" `Quick bounced_packet_reissued;
        Alcotest.test_case "rollback abort cascade" `Quick rollback_orphan_abort_cascade;
        Alcotest.test_case "splice keeps orphans" `Quick splice_keeps_orphans;
        Alcotest.test_case "orphan result to grandparent" `Quick orphan_result_diverts_to_grandparent;
        Alcotest.test_case "rollback drops orphan result" `Quick rollback_drops_orphan_result;
        Alcotest.test_case "grandparent relays to twin" `Quick grandparent_relays_to_twin;
        Alcotest.test_case "adoption inherits pre-spawn" `Quick adoption_pre_spawn_inherits;
        Alcotest.test_case "early messages stash" `Quick early_messages_stash_until_activation;
        Alcotest.test_case "killed node silent" `Quick killed_node_is_silent;
      ] );
    ( "node.replication",
      [
        Alcotest.test_case "spawns and votes" `Quick replication_spawns_and_votes;
        Alcotest.test_case "loses replica on notice" `Quick replication_loses_replica_on_notice;
      ] );
  ]
