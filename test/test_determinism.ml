(* Determinism regression: golden digests of full journal event streams.

   Perf work on the hot structures (stamps, checkpoint tables, the event
   engine) must never reorder events or change answers: every workload x
   seed x recovery scheme has to replay byte-identically.  Each case below
   runs a faulty cluster simulation and hashes the complete journal
   rendering (every entry via [Journal.pp_entry], in order) together with
   the answer, final clock and dispatch count; the hex digests are pinned
   against values recorded from the pre-optimisation implementation.

   To regenerate after an *intentional* semantic change, run

     RECFLOW_GOLDEN=print dune exec test/test_main.exe -- test determinism

   and paste the printed table over [goldens] — but first be sure the
   change is supposed to alter schedules; this suite exists to make that
   decision explicit rather than accidental. *)

module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Journal = Recflow_machine.Journal
module Workload = Recflow_workload.Workload
module Value = Recflow_lang.Value

let recovery_tag = function
  | Config.Rollback -> "rollback"
  | Config.Splice -> "splice"
  | Config.No_recovery -> "none"
  | Config.Replicate k -> Printf.sprintf "replicate-%d" k

let digest_of_run w ~recovery ~seed =
  let cfg =
    { (Config.default ~nodes:6) with Config.recovery; seed; inline_depth = 6;
      policy = Recflow_balance.Policy.Random }
  in
  let c = Cluster.create cfg (Workload.program w) in
  Cluster.fail_at c ~time:150 1;
  Cluster.start c ~fname:w.Workload.entry ~args:(w.Workload.args Workload.Small);
  let o = Cluster.run c in
  let buf = Buffer.create 16384 in
  List.iter
    (fun e -> Buffer.add_string buf (Format.asprintf "%a\n" Journal.pp_entry e))
    (Journal.entries (Cluster.journal c));
  Buffer.add_string buf
    (match o.Cluster.answer with Some v -> Value.to_string v | None -> "<no-answer>");
  Buffer.add_string buf
    (Printf.sprintf "|sim_time=%d|events=%d" o.Cluster.sim_time o.Cluster.events);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let workloads = [ Workload.fib; Workload.tree_sum; Workload.nqueens ]

let seeds = [ 1; 42 ]

let recoveries = [ Config.Rollback; Config.Splice ]

let cases =
  List.concat_map
    (fun w ->
      List.concat_map
        (fun seed -> List.map (fun r -> (w, seed, r)) recoveries)
        seeds)
    workloads

(* Hex MD5 of the journal stream for each (workload, seed, recovery),
   recorded from the list-based stamp / linear-scan table implementation. *)
let goldens =
  [
    ("fib", 1, "rollback", "d41cf452398a917a85d6dc543ae866b0");
    ("fib", 1, "splice", "889ba631df5bfd90c542780edc325858");
    ("fib", 42, "rollback", "a2633c93bfeb5c3b928447debb1335ec");
    ("fib", 42, "splice", "c379e6e3c2f7747677d5683d50c91eda");
    ("tree_sum", 1, "rollback", "32868f52852aa9278fa75f52fe7107d5");
    ("tree_sum", 1, "splice", "cc4035d95fa57c67e54ecc05a50a66fa");
    ("tree_sum", 42, "rollback", "5c5ae9a73077c36425ff0442919d86c2");
    ("tree_sum", 42, "splice", "61d7e2e3f4295589863739342eaa6208");
    ("nqueens", 1, "rollback", "98d7f8dfbd2d08c6a8d5f666aa1d0b00");
    ("nqueens", 1, "splice", "f46d8ca58e757ca5099bfab9fdd00b85");
    ("nqueens", 42, "rollback", "6da22210846a5c51b9203c26105f00eb");
    ("nqueens", 42, "splice", "54faf5bba1e05d2c3e1edbf739c0c440");
  ]

let golden_key w seed r = Printf.sprintf "%s/%d/%s" w.Workload.name seed (recovery_tag r)

let test_case (w, seed, r) =
  let name = golden_key w seed r in
  Alcotest.test_case name `Slow (fun () ->
      let actual = digest_of_run w ~recovery:r ~seed in
      if Sys.getenv_opt "RECFLOW_GOLDEN" = Some "print" then
        Printf.printf "    (%S, %d, %S, %S);\n%!" w.Workload.name seed (recovery_tag r) actual;
      match
        List.find_opt
          (fun (n, s, rt, _) -> n = w.Workload.name && s = seed && rt = recovery_tag r)
          goldens
      with
      | None -> Alcotest.failf "no golden digest recorded for %s" name
      | Some (_, _, _, expected) ->
        Alcotest.(check string) (name ^ " journal digest") expected actual)

(* ---------------- Sharded single run ---------------- *)

module Shardsim = Recflow_machine.Shardsim
module Pool = Recflow_parallel.Pool

(* Same contract, one level up: a single simulation sharded across domains
   (Machine.Shardsim) must replay byte-identically — pinned at jobs=1
   against a golden, and the jobs=2 / jobs=4 pool runs must reproduce the
   jobs=1 digest exactly.  Regenerate with RECFLOW_GOLDEN=print as above. *)
let shard_scenarios =
  [ ("fault-free", []); ("three-faults", [ (123, 3); (457, 7); (1200, 11) ]) ]

let shard_goldens =
  [
    ("fault-free", "3422dd1f5086ab5f14aed08bf3227a43");
    ("three-faults", "9bf916f68fa830c94d75e2e60c477707");
  ]

let shard_case (name, fail) =
  Alcotest.test_case ("sharded/" ^ name) `Slow (fun () ->
      let p = { Shardsim.default_params with Shardsim.fail } in
      let seq = Shardsim.run p in
      if Sys.getenv_opt "RECFLOW_GOLDEN" = Some "print" then
        Printf.printf "    (%S, %S);\n%!" name seq.Shardsim.journal_digest;
      Alcotest.(check int)
        (name ^ " answer = fault-free oracle")
        (Shardsim.expected_answer p) seq.Shardsim.answer;
      (match List.assoc_opt name shard_goldens with
      | None -> Alcotest.failf "no golden digest recorded for sharded/%s" name
      | Some expected ->
        Alcotest.(check string) (name ^ " digest at jobs=1") expected seq.Shardsim.journal_digest);
      List.iter
        (fun jobs ->
          let pool = Pool.create ~jobs () in
          let par =
            Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> Shardsim.run ~pool p)
          in
          Alcotest.(check string)
            (Printf.sprintf "%s digest at jobs=%d" name jobs)
            seq.Shardsim.journal_digest par.Shardsim.journal_digest;
          Alcotest.(check int)
            (Printf.sprintf "%s events at jobs=%d" name jobs)
            seq.Shardsim.events par.Shardsim.events)
        [ 2; 4 ])

let suites =
  [
    ("determinism", List.map test_case cases);
    ("determinism.sharded", List.map shard_case shard_scenarios);
  ]
