(* Scale smoke and arena invariants for the reworked hot data plane.

   The arena task store, the O(1) load counters and batched delivery were
   introduced to push the machine to 1k+ processors and ~10^5..10^6 tasks
   without changing behaviour.  This file pins that claim from two sides:

   - a 1024-processor, ~131k-task run with chaos and one mid-run failure
     must satisfy the recovery oracle, reproduce the serial answer, and
     replay byte-identically — the journal digest is pinned as a golden
     and re-checked on a pool domain (jobs=2), so no arena or batching
     state may leak between domains or depend on allocation history;
   - a QCheck property drives random small clusters through random
     failures and compares the incremental counters ([Node.live_tasks],
     [Node.blocked_tasks], [Node.wasted_work]) against the brute-force
     [Node.recount] oracle, both mid-run and at quiescence.

   Regenerate the golden after an intentional semantic change with

     RECFLOW_GOLDEN=print dune exec test/test_main.exe -- test scale *)

module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Journal = Recflow_machine.Journal
module Node = Recflow_machine.Node
module Oracle = Recflow_machine.Oracle
module Workload = Recflow_workload.Workload
module Chaos = Recflow_net.Chaos
module Plan = Recflow_fault.Plan
module Pool = Recflow_parallel.Pool
module Value = Recflow_lang.Value

let check = Alcotest.(check bool)
let qtest = QCheck_alcotest.to_alcotest

(* ---------------- 1024-processor smoke ---------------- *)

let scale_depth = 17 (* distributed tasks = 2^17 - 1 = 131_071, leaves inlined *)

let scale_workload = Workload.synthetic ~branching:2 ~depth:scale_depth ~grain:20

let scale_cfg =
  let chaos =
    Chaos.none |> Plan.drop_rate 0.01 |> Plan.duplicate_rate 0.01
    |> Plan.reorder ~rate:0.02 ~spread:40
  in
  {
    (Config.default ~nodes:1024) with
    Config.policy = Recflow_balance.Policy.Static_hash;
    inline_depth = scale_depth;
    batched_delivery = true;
    chaos;
    reliable = true;
    seed = 7;
  }

(* One full run: oracle asserted, answer checked, journal digested the
   same way as the PR-5 determinism suite (every entry + answer + clock +
   event count). *)
let scale_digest () =
  let c = Cluster.create scale_cfg (Workload.program scale_workload) in
  Cluster.fail_at c ~time:4_000 11;
  Cluster.start c ~fname:scale_workload.Workload.entry
    ~args:(scale_workload.Workload.args Workload.Medium);
  let o = Cluster.run c in
  ignore (Oracle.assert_ok c);
  check "scale answer matches the serial reference" true
    (o.Cluster.answer = Some (Workload.expected scale_workload Workload.Medium));
  let buf = Buffer.create (1 lsl 20) in
  List.iter
    (fun e -> Buffer.add_string buf (Format.asprintf "%a\n" Journal.pp_entry e))
    (Journal.entries (Cluster.journal c));
  Buffer.add_string buf
    (match o.Cluster.answer with Some v -> Value.to_string v | None -> "<no-answer>");
  Buffer.add_string buf
    (Printf.sprintf "|sim_time=%d|events=%d" o.Cluster.sim_time o.Cluster.events);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let scale_golden = "b9eb79a71d1ef1293d2e45059b935004"

let scale_smoke () =
  let d1 = scale_digest () in
  if Sys.getenv_opt "RECFLOW_GOLDEN" = Some "print" then
    Printf.printf "    scale_golden = %S\n%!" d1;
  Alcotest.(check string) "scale digest at jobs=1" scale_golden d1;
  (* The same run on a pool domain must reproduce the digest: the arena,
     the batching buffers and the incremental counters hold no
     domain-local or allocation-history-dependent state. *)
  let pool = Pool.create ~jobs:2 () in
  let d2 =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> List.hd (Pool.run pool [ scale_digest ]))
  in
  Alcotest.(check string) "scale digest at jobs=2" d1 d2

(* ---------------- counters vs brute-force recount ---------------- *)

let counters_match c =
  List.for_all
    (fun n ->
      let live, blocked, wasted = Node.recount n in
      live = Node.live_tasks n
      && blocked = Node.blocked_tasks n
      && wasted = Node.wasted_work n)
    (Cluster.nodes c)

type scenario = {
  s_workload : int;  (* index into [prop_workloads] *)
  s_nodes : int;
  s_seed : int;
  s_rollback : bool;
  s_fail_time : int;
  s_victim : int;  (* taken mod s_nodes, skipping 0 sometimes hosting root *)
}

let prop_workloads = [| Workload.fib; Workload.tree_sum; Workload.nqueens |]

let gen_scenario =
  QCheck.Gen.(
    map
      (fun (w, (nodes, (seed, (rb, (ft, v))))) ->
        {
          s_workload = w;
          s_nodes = nodes;
          s_seed = seed;
          s_rollback = rb;
          s_fail_time = ft;
          s_victim = v;
        })
      (pair (int_range 0 2)
         (pair (int_range 2 12)
            (pair (int_range 0 9999) (pair bool (pair (int_range 50 2500) (int_range 1 11)))))))

let print_scenario s =
  Printf.sprintf "%s nodes=%d seed=%d %s fail=%d@%d"
    prop_workloads.(s.s_workload).Workload.name s.s_nodes s.s_seed
    (if s.s_rollback then "rollback" else "splice")
    s.s_fail_time s.s_victim

let arb_scenario = QCheck.make ~print:print_scenario gen_scenario

(* Run the scenario and compare the O(1) counters against [Node.recount]
   at several mid-run instants (while tasks are live, blocked, aborting)
   and again at quiescence. *)
let counters_invariant s =
  let w = prop_workloads.(s.s_workload) in
  let cfg =
    {
      (Config.default ~nodes:s.s_nodes) with
      Config.recovery = (if s.s_rollback then Config.Rollback else Config.Splice);
      seed = s.s_seed;
      inline_depth = 6;
      policy = Recflow_balance.Policy.Random;
    }
  in
  let c = Cluster.create cfg (Workload.program w) in
  let victim = 1 + (s.s_victim mod max 1 (s.s_nodes - 1)) in
  Cluster.fail_at c ~time:s.s_fail_time victim;
  (* Sample mid-run through the journal stream: every 17th lifecycle
     entry lands between protocol actions, while tasks are queued,
     blocked, aborting — exactly where an unbalanced increment would
     show. *)
  let mid_ok = ref true in
  Journal.attach_sink (Cluster.journal c)
    (Recflow_obs_core.Sink.sample ~every:17
       (Recflow_obs_core.Sink.of_fun (fun _ ->
            if not (counters_match c) then mid_ok := false)));
  Cluster.start c ~fname:w.Workload.entry ~args:(w.Workload.args Workload.Tiny);
  ignore (Cluster.run c);
  !mid_ok && counters_match c

let counters_vs_recount =
  QCheck.Test.make ~count:30 ~name:"incremental counters = brute-force recount" arb_scenario
    counters_invariant

let suites =
  [
    ( "scale",
      [
        Alcotest.test_case "1024 procs, 131k tasks, chaos + failure" `Slow scale_smoke;
        qtest counters_vs_recount;
      ] );
  ]
