(* Tests for topologies, routing and latency. *)

module Topology = Recflow_net.Topology
module Router = Recflow_net.Router
module Latency = Recflow_net.Latency

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let qtest = QCheck_alcotest.to_alcotest

let topo_sizes () =
  check_int "full" 8 (Topology.size (Topology.Full 8));
  check_int "ring" 6 (Topology.size (Topology.Ring 6));
  check_int "mesh" 12 (Topology.size (Topology.Mesh (3, 4)));
  check_int "cube" 8 (Topology.size (Topology.Hypercube 3))

let topo_neighbors () =
  Alcotest.(check (list int)) "full 4, node 1" [ 0; 2; 3 ]
    (Topology.neighbors (Topology.Full 4) 1);
  Alcotest.(check (list int)) "ring 5, node 0" [ 1; 4 ] (Topology.neighbors (Topology.Ring 5) 0);
  Alcotest.(check (list int)) "ring 2" [ 1 ] (Topology.neighbors (Topology.Ring 2) 0);
  Alcotest.(check (list int)) "mesh 3x3 centre" [ 1; 3; 5; 7 ]
    (Topology.neighbors (Topology.Mesh (3, 3)) 4);
  Alcotest.(check (list int)) "mesh 3x3 corner" [ 1; 3 ]
    (Topology.neighbors (Topology.Mesh (3, 3)) 0);
  Alcotest.(check (list int)) "cube 3, node 0" [ 1; 2; 4 ]
    (Topology.neighbors (Topology.Hypercube 3) 0)

let topo_distances () =
  check_int "full" 1 (Topology.ideal_distance (Topology.Full 8) 0 5);
  check_int "ring wraps" 2 (Topology.ideal_distance (Topology.Ring 6) 0 4);
  check_int "mesh manhattan" 4 (Topology.ideal_distance (Topology.Mesh (3, 3)) 0 8);
  check_int "cube popcount" 3 (Topology.ideal_distance (Topology.Hypercube 3) 0 7);
  check_int "self" 0 (Topology.ideal_distance (Topology.Ring 6) 3 3)

let topo_diameter () =
  check_int "ring" 3 (Topology.diameter (Topology.Ring 6));
  check_int "mesh" 4 (Topology.diameter (Topology.Mesh (3, 3)));
  check_int "cube" 3 (Topology.diameter (Topology.Hypercube 3));
  check_int "full" 1 (Topology.diameter (Topology.Full 9))

let topo_strings () =
  List.iter
    (fun t ->
      match Topology.of_string (Topology.to_string t) with
      | Ok t' -> check "round trip" true (t = t')
      | Error e -> Alcotest.fail e)
    [ Topology.Full 4; Topology.Ring 7; Topology.Mesh (2, 5); Topology.Hypercube 4 ];
  List.iter
    (fun s ->
      match Topology.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ "full"; "mesh:3"; "ring:0"; "cube:-1"; "torus:4"; "mesh:2x"; "" ]

let topo_out_of_range () =
  check "bad node rejected" true
    (try
       ignore (Topology.neighbors (Topology.Ring 4) 9);
       false
     with Invalid_argument _ -> true)

let dist_symmetric =
  QCheck.Test.make ~name:"ideal_distance symmetric on mesh" ~count:200
    QCheck.(pair (int_range 0 11) (int_range 0 11))
    (fun (a, b) ->
      let t = Topology.Mesh (3, 4) in
      Topology.ideal_distance t a b = Topology.ideal_distance t b a)

let dist_matches_bfs =
  QCheck.Test.make ~name:"closed-form distance equals BFS on live router" ~count:100
    QCheck.(triple (oneofl [ 0; 1; 2 ]) (int_range 0 7) (int_range 0 7))
    (fun (which, a, b) ->
      let t =
        match which with 0 -> Topology.Ring 8 | 1 -> Topology.Hypercube 3 | _ -> Topology.Mesh (2, 4)
      in
      let r = Router.create t in
      Router.distance r a b = Some (Topology.ideal_distance t a b))

let router_kill () =
  let r = Router.create (Topology.Full 4) in
  check "alive initially" true (Router.alive r 2);
  Router.kill r 2;
  check "dead" false (Router.alive r 2);
  Alcotest.(check (list int)) "alive nodes" [ 0; 1; 3 ] (Router.alive_nodes r);
  Alcotest.(check (option int)) "distance to dead" None (Router.distance r 0 2);
  Alcotest.(check (option int)) "distance from dead" None (Router.distance r 2 0);
  Router.revive r 2;
  check "revived" true (Router.alive r 2)

let router_partition () =
  (* killing two opposite nodes of a ring cuts it in half *)
  let r = Router.create (Topology.Ring 6) in
  Router.kill r 0;
  Router.kill r 3;
  check "1-2 still connected" true (Router.reachable r 1 2);
  check "1-4 cut" false (Router.reachable r 1 4);
  Alcotest.(check (option int)) "4-5 side intact" (Some 1) (Router.distance r 4 5);
  Alcotest.(check (option int)) "1-5 cut" None (Router.distance r 1 5)

let router_reroute () =
  (* with a dead shortcut the route goes the long way round *)
  let r = Router.create (Topology.Ring 6) in
  Alcotest.(check (option int)) "short way" (Some 2) (Router.distance r 0 2);
  Router.kill r 1;
  Alcotest.(check (option int)) "long way" (Some 4) (Router.distance r 0 2)

let router_revive_distances () =
  (* regression: revive must invalidate whatever route state kill built,
     not merely flip the liveness bit *)
  let r = Router.create (Topology.Ring 6) in
  Router.kill r 1;
  Alcotest.(check (option int)) "long way while dead" (Some 4) (Router.distance r 0 2);
  Router.revive r 1;
  Alcotest.(check (option int)) "short way restored" (Some 2) (Router.distance r 0 2);
  Alcotest.(check (list int)) "all alive again" [ 0; 1; 2; 3; 4; 5 ] (Router.alive_nodes r)

let router_alive_but_unreachable () =
  (* a live node whose every route is severed answers exactly like a dead
     one — unreachability *is* failure to the bounce-based detector (§1) *)
  let r = Router.create (Topology.Ring 6) in
  Router.kill r 1;
  Router.kill r 3;
  check "node 2 still alive" true (Router.alive r 2);
  check "but unreachable" false (Router.reachable r 0 2);
  Alcotest.(check (option int)) "distance reports none, like a dead node" None
    (Router.distance r 0 2);
  check "dead node agrees" false (Router.reachable r 0 1);
  Router.revive r 3;
  Alcotest.(check (option int)) "reviving the cut vertex restores a route" (Some 4)
    (Router.distance r 0 2)

let latency_fixed () =
  let m = Latency.no_jitter ~base:10 ~per_hop:5 in
  check_int "0 hops" 10 (Latency.delay m ~hops:0);
  check_int "3 hops" 25 (Latency.delay m ~hops:3)

let latency_jitter () =
  let m = { Latency.base = 10; per_hop = 0; jitter = 5 } in
  check_int "no rng means fixed" 10 (Latency.delay m ~hops:0);
  let d = Latency.delay ~rng:(fun bound -> bound - 1) m ~hops:0 in
  check_int "jitter added" 15 d;
  check "negative hops rejected" true
    (try
       ignore (Latency.delay m ~hops:(-1));
       false
     with Invalid_argument _ -> true)

let suites =
  [
    ( "net.topology",
      [
        Alcotest.test_case "sizes" `Quick topo_sizes;
        Alcotest.test_case "neighbors" `Quick topo_neighbors;
        Alcotest.test_case "distances" `Quick topo_distances;
        Alcotest.test_case "diameter" `Quick topo_diameter;
        Alcotest.test_case "strings" `Quick topo_strings;
        Alcotest.test_case "out of range" `Quick topo_out_of_range;
        qtest dist_symmetric;
        qtest dist_matches_bfs;
      ] );
    ( "net.router",
      [
        Alcotest.test_case "kill/revive" `Quick router_kill;
        Alcotest.test_case "partition" `Quick router_partition;
        Alcotest.test_case "reroute" `Quick router_reroute;
        Alcotest.test_case "revive recomputes distances" `Quick router_revive_distances;
        Alcotest.test_case "alive but unreachable = dead" `Quick router_alive_but_unreachable;
      ] );
    ( "net.latency",
      [
        Alcotest.test_case "fixed" `Quick latency_fixed;
        Alcotest.test_case "jitter" `Quick latency_jitter;
      ] );
  ]
