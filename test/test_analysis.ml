(* Tests for the static-analysis subsystem: rule-code fixtures, type
   inference, call graph, spawn shapes, and the fan-out gauntlet that
   cross-checks static bounds against journal-observed spawns. *)

open Recflow_analysis
module Ast = Recflow_lang.Ast
module Parser = Recflow_lang.Parser
module Program = Recflow_lang.Program
module Value = Recflow_lang.Value
module Workload = Recflow_workload.Workload
module Cluster = Recflow_machine.Cluster
module Config = Recflow_machine.Config
module Journal = Recflow_machine.Journal
module Stamp = Recflow_recovery.Stamp

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_strs = Alcotest.(check (list string))

let codes_of (r : Check.report) =
  List.map (fun (d : Diagnostic.t) -> Diagnostic.code_string d.code) r.Check.diagnostics

let program_exn src =
  match Parser.parse_program src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "parse: %s" msg

(* ---------------- Negative fixtures: one per rule code ---------------- *)

(* Each program triggers its code and nothing else; the RF007 fixture is
   below (bad primitive arity cannot be written in surface syntax — the
   parser itself rejects it — so it needs a hand-built AST). *)
let source_fixtures =
  [
    ("RF001", "def main(x = x");
    ("RF002", "def main(x) = x\ndef main(y) = y");
    ("RF003", "def main(x, x) = x");
    ("RF004", "def main(x) = y");
    ("RF005", "def main(x) = missing(x)");
    ("RF006", "def main(x) = helper(x, x)\ndef helper(y) = y");
    ("RF101", "def main(x) = if x then 1 else nil");
    ("RF102", "def main(x) = x :: x");
    ("RF201", "def main(x) = x + 1\ndef orphan(y) = y");
    ("RF202", "def main(x, y) = x");
    ("RF203", "def main(x) = main(x)");
    ("RF204", "def main(x) = let y = x in let y = y + 1 in y");
    ("RF205", "def main(x) = let unused = x + 1 in x");
  ]

let fixtures_trigger_exactly () =
  List.iter
    (fun (code, src) ->
      let r = Check.check_source ~entries:[ "main" ] src in
      check_strs code [ code ] (codes_of r))
    source_fixtures

let rf007_fixture () =
  let d = { Ast.name = "main"; params = [ "x" ]; body = Ast.Prim (Ast.Not, [ Ast.Int 1; Ast.Int 2 ]) } in
  let r = Check.check_defs ~entries:[ "main" ] [ d ] in
  check_strs "RF007" [ "RF007" ] (codes_of r)

let all_codes_have_fixtures () =
  let covered = "RF007" :: List.map fst source_fixtures in
  List.iter
    (fun c ->
      let cs = Diagnostic.code_string c in
      check cs true (List.mem cs covered))
    Diagnostic.all_codes

let severities_by_band () =
  List.iter
    (fun c ->
      let cs = Diagnostic.code_string c in
      let expected = if String.length cs = 5 && cs.[2] = '2' then Diagnostic.Warning else Diagnostic.Error in
      check cs true (Diagnostic.severity_of_code c = expected))
    Diagnostic.all_codes

let diagnostics_carry_locations () =
  (* function-level findings get the def's position, call-site findings
     the call's *)
  let r = Check.check_source ~entries:[ "main" ] "def main(x) = if x then 1 else nil" in
  (match r.Check.diagnostics with
  | [ d ] ->
    check "fn" true (d.Diagnostic.fn = Some "main");
    check "def loc" true (d.Diagnostic.loc = Some (Loc.make ~line:1 ~column:5))
  | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds));
  let r = Check.check_source ~entries:[ "main" ] "def main(x) = main(x)" in
  match r.Check.diagnostics with
  | [ d ] ->
    check "code" true (d.Diagnostic.code = Diagnostic.Non_productive_recursion);
    check "call loc" true (d.Diagnostic.loc = Some (Loc.make ~line:1 ~column:15))
  | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds)

let json_report_shape () =
  let r = Check.check_source ~entries:[ "main" ] "def main(x) = if x then 1 else nil" in
  let js = Check.render_json r in
  let has needle =
    let rec go i =
      i + String.length needle <= String.length js
      && (String.sub js i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  check "errors field" true (has {|"errors":1|});
  check "code field" true (has {|"code":"RF101"|});
  check "severity field" true (has {|"severity":"error"|});
  check "escaping" true (Diagnostic.json_string "a\"b\nc" = {|"a\"b\nc"|})

(* ---------------- Type inference ---------------- *)

let scheme_str (r : Check.report) name =
  match List.assoc_opt name r.Check.schemes with
  | Some s -> Infer.scheme_to_string s
  | None -> "?"

let infer_workload_schemes () =
  let r = Check.check_source ~entries:[ "fib" ] Workload.fib.Workload.source in
  check_str "fib" "int -> int" (scheme_str r "fib");
  let r = Check.check_source ~entries:[ "tak" ] Workload.tak.Workload.source in
  check_str "tak" "int * int * int -> int" (scheme_str r "tak");
  let r = Check.check_source ~entries:[ "qsort_check" ] Workload.quicksort.Workload.source in
  check_str "qsort" "int list -> int list" (scheme_str r "qsort");
  check_str "safe" "int list * int * int -> bool"
    (scheme_str (Check.check_source ~entries:[ "nqueens" ] Workload.nqueens.Workload.source) "safe")

let infer_catches_head_of_int () =
  let r = Check.check_source ~entries:[ "main" ] "def main(x) = x + head(3)" in
  check_strs "head(3)" [ "RF101" ] (codes_of r)

let infer_catches_bool_arith_confusion () =
  let r = Check.check_source ~entries:[ "main" ] "def main(x) = 1 + (x && true)" in
  check_strs "1 + bool" [ "RF101" ] (codes_of r)

let infer_propagates_across_calls () =
  (* the type error is only visible once g's scheme flows into f *)
  let r =
    Check.check_source ~entries:[ "f" ]
      "def f(x) = g(x) + 1\ndef g(y) = y :: nil"
  in
  check_strs "cross-call" [ "RF101" ] (codes_of r)

(* ---------------- Call graph ---------------- *)

let mutual_src =
  "def even(n) = if n == 0 then true else odd(n - 1)\n\
   def odd(n) = if n == 0 then false else even(n - 1)\n\
   def main(n) = even(n)"

let callgraph_basics () =
  let g = Callgraph.of_program (program_exn mutual_src) in
  check_strs "functions" [ "even"; "main"; "odd" ] g.Callgraph.functions;
  check_strs "roots" [ "main" ] (Callgraph.roots g);
  check_strs "reachable" [ "even"; "main"; "odd" ] (Callgraph.reachable g ~entries:[ "main" ]);
  check_strs "reachable from even" [ "even"; "odd" ] (Callgraph.reachable g ~entries:[ "even" ]);
  check_strs "recursive" [ "even"; "odd" ] (Callgraph.recursive_functions g);
  check "even+odd share an scc" true (List.mem [ "even"; "odd" ] (Callgraph.sccs g))

let callgraph_cyclic_roots () =
  (* a fully cyclic program has no root; everything is an entry candidate,
     so nothing is reported dead *)
  let src = "def a(n) = b(n)\ndef b(n) = a(n - 1)" in
  let g = Callgraph.of_program (program_exn src) in
  check_strs "roots fall back to all" [ "a"; "b" ] (Callgraph.roots g);
  let r = Check.check_source src in
  check "no dead functions" true
    (not (List.exists (fun (d : Diagnostic.t) -> d.Diagnostic.code = Diagnostic.Dead_function)
            r.Check.diagnostics))

(* ---------------- Spawn shapes ---------------- *)

let shape_of src fn =
  let shape = Shape.of_program (program_exn src) in
  match Shape.find shape fn with Some s -> s | None -> Alcotest.failf "no shape for %s" fn

let shape_workload_bounds () =
  let bound w fn =
    let shape = Shape.of_program (Workload.program w) in
    Option.get (Shape.fanout_bound shape fn)
  in
  check_int "fib" 2 (bound Workload.fib "fib");
  check_int "tak" 4 (bound Workload.tak "tak");
  check_int "nqueens.try_cols" 3 (bound Workload.nqueens "try_cols");
  check_int "tree_sum" 2 (bound Workload.tree_sum "tsum")

let shape_if_takes_max () =
  (* condition's call plus the wider arm: 1 + max(1, 2) = 3 *)
  let s = shape_of "def f(x) = if f(x) == 0 then f(x - 1) else f(x) + f(x + 1)" "f" in
  check_int "if max" 3 s.Shape.fanout

let shape_recursion_classes () =
  let p = program_exn mutual_src in
  let shape = Shape.of_program p in
  let cls fn = (Option.get (Shape.find shape fn)).Shape.recursion in
  check "main" true (cls "main" = Shape.Non_recursive);
  check "even" true (cls "even" = Shape.Mutually_recursive);
  let s = shape_of "def f(n) = if n == 0 then 0 else f(n - 1)" "f" in
  check "self" true (s.Shape.recursion = Shape.Self_recursive)

let shape_program_bound_respects_entries () =
  let src = "def main(x) = leaf(x)\ndef leaf(x) = x + 1\ndef wide(x) = w(x) + w(x) + w(x)\ndef w(x) = x" in
  let p = program_exn src in
  let shape = Shape.of_program p in
  check_int "reachable only" 1 (Shape.program_fanout_bound ~entries:[ "main" ] shape p);
  check_int "whole program" 3 (Shape.program_fanout_bound shape p)

let gradient_auto_weight () =
  check_int "narrow" 1 (Recflow_balance.Policy.suggest_gradient_weight ~fanout:0);
  check_int "fib-like" 2 (Recflow_balance.Policy.suggest_gradient_weight ~fanout:2);
  check_int "clamped" 4 (Recflow_balance.Policy.suggest_gradient_weight ~fanout:9)

(* ---------------- Corpus: everything we ship is clean ---------------- *)

let corpus_is_clean () =
  let check_clean name entry source =
    let r = Check.check_source ~entries:[ entry ] source in
    if not (Check.ok ~werror:true r) then
      Alcotest.failf "%s not clean:\n%s" name (Check.render_human r)
  in
  List.iter
    (fun (w : Workload.t) -> check_clean w.Workload.name w.Workload.entry w.Workload.source)
    Workload.all;
  List.iter
    (fun b ->
      let w = Workload.synthetic ~branching:b ~depth:3 ~grain:5 in
      check_clean w.Workload.name w.Workload.entry w.Workload.source)
    [ 1; 2; 3; 4 ]

let workload_program_gate () =
  (* Workload.program refuses a workload whose source has analysis errors *)
  let bad =
    {
      Workload.fib with
      Workload.name = "bad_gate_fixture";
      source = "def fib(n) = if n > 0 then 1 else nil";
    }
  in
  check "raises" true
    (try
       ignore (Workload.program bad);
       false
     with Invalid_argument _ -> true)

(* ---------------- Gauntlet: bounds vs the journal ---------------- *)

(* For every workload at every size, run a real 8-node cluster (inlining
   below stamp depth 6 keeps even tak/large fast) and require:
   - the distributed answer equals the serial reference;
   - every digit of every spawned stamp is < the program's static fan-out
     bound (digits are per-activation spawn-counter values);
   - no parent stamp has more distinct spawned children than the bound. *)
let gauntlet () =
  let sizes = [ Workload.Tiny; Workload.Small; Workload.Medium; Workload.Large ] in
  let size_tag = function
    | Workload.Tiny -> "tiny"
    | Workload.Small -> "small"
    | Workload.Medium -> "medium"
    | Workload.Large -> "large"
  in
  List.iter
    (fun (w : Workload.t) ->
      let program = Workload.program w in
      let shape = Shape.of_program program in
      let bound = Shape.program_fanout_bound ~entries:[ w.Workload.entry ] shape program in
      List.iter
        (fun size ->
          let tag = Printf.sprintf "%s/%s" w.Workload.name (size_tag size) in
          let cfg = { (Config.default ~nodes:8) with Config.inline_depth = 6 } in
          let cluster = Cluster.create cfg program in
          Cluster.start cluster ~fname:w.Workload.entry ~args:(w.Workload.args size);
          let outcome = Cluster.run cluster in
          (match outcome.Cluster.answer with
          | Some v ->
            if not (Value.equal v (Workload.expected w size)) then
              Alcotest.failf "%s: wrong answer %s" tag (Value.to_string v)
          | None -> Alcotest.failf "%s: no answer" tag);
          let spawned =
            List.filter_map
              (fun (e : Journal.entry) ->
                match e.Journal.event with Journal.Spawned _ -> Some e.Journal.stamp | _ -> None)
              (Journal.entries (Cluster.journal cluster))
          in
          check (tag ^ " spawns observed") true (spawned <> []);
          List.iter
            (fun s ->
              match Stamp.max_digit s with
              | Some d when d >= bound ->
                Alcotest.failf "%s: stamp %s has digit %d >= bound %d" tag (Stamp.to_string s) d
                  bound
              | _ -> ())
            spawned;
          let children = Hashtbl.create 256 in
          List.iter
            (fun s ->
              match Stamp.parent s with
              | Some p ->
                let set = Option.value ~default:[] (Hashtbl.find_opt children p) in
                if not (List.mem s set) then Hashtbl.replace children p (s :: set)
              | None -> ())
            spawned;
          Hashtbl.iter
            (fun p cs ->
              if List.length cs > bound then
                Alcotest.failf "%s: activation %s spawned %d children > bound %d" tag
                  (Stamp.to_string p) (List.length cs) bound)
            children)
        sizes)
    Workload.all

let suites =
  [
    ( "analysis.diagnostics",
      [
        Alcotest.test_case "fixtures trigger exactly one code" `Quick fixtures_trigger_exactly;
        Alcotest.test_case "RF007 via raw AST" `Quick rf007_fixture;
        Alcotest.test_case "every code has a fixture" `Quick all_codes_have_fixtures;
        Alcotest.test_case "severity follows the band" `Quick severities_by_band;
        Alcotest.test_case "locations" `Quick diagnostics_carry_locations;
        Alcotest.test_case "json shape" `Quick json_report_shape;
      ] );
    ( "analysis.infer",
      [
        Alcotest.test_case "workload schemes" `Quick infer_workload_schemes;
        Alcotest.test_case "head of int" `Quick infer_catches_head_of_int;
        Alcotest.test_case "bool/arith confusion" `Quick infer_catches_bool_arith_confusion;
        Alcotest.test_case "cross-call propagation" `Quick infer_propagates_across_calls;
      ] );
    ( "analysis.callgraph",
      [
        Alcotest.test_case "sccs/roots/reachable" `Quick callgraph_basics;
        Alcotest.test_case "cyclic fallback" `Quick callgraph_cyclic_roots;
      ] );
    ( "analysis.shape",
      [
        Alcotest.test_case "workload bounds" `Quick shape_workload_bounds;
        Alcotest.test_case "if takes max" `Quick shape_if_takes_max;
        Alcotest.test_case "recursion classes" `Quick shape_recursion_classes;
        Alcotest.test_case "entries restrict the bound" `Quick shape_program_bound_respects_entries;
        Alcotest.test_case "gradient:auto weight" `Quick gradient_auto_weight;
      ] );
    ( "analysis.corpus",
      [
        Alcotest.test_case "workloads are clean" `Quick corpus_is_clean;
        Alcotest.test_case "workload gate" `Quick workload_program_gate;
      ] );
    ("analysis.gauntlet", [ Alcotest.test_case "bounds vs journal" `Slow gauntlet ]);
  ]
