(* Tests for the static-analysis subsystem: rule-code fixtures, type
   inference, call graph, spawn shapes, and the fan-out gauntlet that
   cross-checks static bounds against journal-observed spawns. *)

open Recflow_analysis
module Ast = Recflow_lang.Ast
module Parser = Recflow_lang.Parser
module Program = Recflow_lang.Program
module Value = Recflow_lang.Value
module Workload = Recflow_workload.Workload
module Cluster = Recflow_machine.Cluster
module Config = Recflow_machine.Config
module Journal = Recflow_machine.Journal
module Stamp = Recflow_recovery.Stamp
module Json = Recflow_obs_core.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_strs = Alcotest.(check (list string))

let codes_of (r : Check.report) =
  List.map (fun (d : Diagnostic.t) -> Diagnostic.code_string d.code) r.Check.diagnostics

let program_exn src =
  match Parser.parse_program src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "parse: %s" msg

(* ---------------- Negative fixtures: one per rule code ---------------- *)

(* Each program triggers its code and nothing else; the RF007 fixture is
   below (bad primitive arity cannot be written in surface syntax — the
   parser itself rejects it — so it needs a hand-built AST). *)
let source_fixtures =
  [
    ("RF001", "def main(x = x");
    ("RF002", "def main(x) = x\ndef main(y) = y");
    ("RF003", "def main(x, x) = x");
    ("RF004", "def main(x) = y");
    ("RF005", "def main(x) = missing(x)");
    ("RF006", "def main(x) = helper(x, x)\ndef helper(y) = y");
    ("RF101", "def main(x) = if x then 1 else nil");
    ("RF102", "def main(x) = x :: x");
    ("RF201", "def main(x) = x + 1\ndef orphan(y) = y");
    ("RF202", "def main(x, y) = x");
    ("RF203", "def main(x) = main(x)");
    ("RF204", "def main(x) = let y = x in let y = y + 1 in y");
    ("RF205", "def main(x) = let unused = x + 1 in x");
    ("RF301", "def main(n) = if n > 0 then main(n + 1) else 0");
    ("RF302", "def main(n) = if n > 0 then main(n + 1) + main(n + 2) else 0");
    ("RF303", "def helper(x) = x * x\ndef main(n) = if n > 0 then helper(n) + main(n + 1) else 0");
  ]

let fixtures_trigger_exactly () =
  List.iter
    (fun (code, src) ->
      let r = Check.check_source ~entries:[ "main" ] src in
      check_strs code [ code ] (codes_of r))
    source_fixtures

let rf007_fixture () =
  let d = { Ast.name = "main"; params = [ "x" ]; body = Ast.Prim (Ast.Not, [ Ast.Int 1; Ast.Int 2 ]) } in
  let r = Check.check_defs ~entries:[ "main" ] [ d ] in
  check_strs "RF007" [ "RF007" ] (codes_of r)

let all_codes_have_fixtures () =
  let covered = "RF007" :: List.map fst source_fixtures in
  List.iter
    (fun c ->
      let cs = Diagnostic.code_string c in
      check cs true (List.mem cs covered))
    Diagnostic.all_codes

let severities_by_band () =
  List.iter
    (fun c ->
      let cs = Diagnostic.code_string c in
      let expected =
        if String.length cs = 5 && (cs.[2] = '2' || cs.[2] = '3') then Diagnostic.Warning
        else Diagnostic.Error
      in
      check cs true (Diagnostic.severity_of_code c = expected))
    Diagnostic.all_codes

let rf3xx_roundtrip () =
  (* the RF3xx fixtures survive pretty -> parse -> re-check unchanged *)
  List.iter
    (fun (code, src) ->
      let printed = Recflow_lang.Pretty.program_to_string (program_exn src) in
      let r = Check.check_source ~entries:[ "main" ] printed in
      check_strs (code ^ " roundtrip") [ code ] (codes_of r))
    (List.filter
       (fun (c, _) -> String.length c = 5 && c.[2] = '3')
       source_fixtures)

let explain_all_codes () =
  List.iter
    (fun c ->
      let cs = Diagnostic.code_string c in
      check (cs ^ " explained") true (String.length (Diagnostic.explain c) > 40);
      check (cs ^ " of_code_string") true (Diagnostic.of_code_string cs = Some c))
    Diagnostic.all_codes;
  check "unknown code" true (Diagnostic.of_code_string "RF999" = None);
  check "garbage" true (Diagnostic.of_code_string "nonsense" = None)

let diagnostics_carry_locations () =
  (* function-level findings get the def's position, call-site findings
     the call's *)
  let r = Check.check_source ~entries:[ "main" ] "def main(x) = if x then 1 else nil" in
  (match r.Check.diagnostics with
  | [ d ] ->
    check "fn" true (d.Diagnostic.fn = Some "main");
    check "def loc" true (d.Diagnostic.loc = Some (Loc.make ~line:1 ~column:5))
  | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds));
  let r = Check.check_source ~entries:[ "main" ] "def main(x) = main(x)" in
  match r.Check.diagnostics with
  | [ d ] ->
    check "code" true (d.Diagnostic.code = Diagnostic.Non_productive_recursion);
    check "call loc" true (d.Diagnostic.loc = Some (Loc.make ~line:1 ~column:15))
  | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds)

let json_report_shape () =
  let r = Check.check_source ~entries:[ "main" ] "def main(x) = if x then 1 else nil" in
  let js = Check.render_json r in
  let has needle =
    let rec go i =
      i + String.length needle <= String.length js
      && (String.sub js i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  check "errors field" true (has {|"errors":1|});
  check "code field" true (has {|"code":"RF101"|});
  check "severity field" true (has {|"severity":"error"|});
  check "escaping" true (Diagnostic.json_string "a\"b\nc" = {|"a\"b\nc"|})

(* ---------------- Type inference ---------------- *)

let scheme_str (r : Check.report) name =
  match List.assoc_opt name r.Check.schemes with
  | Some s -> Infer.scheme_to_string s
  | None -> "?"

let infer_workload_schemes () =
  let r = Check.check_source ~entries:[ "fib" ] Workload.fib.Workload.source in
  check_str "fib" "int -> int" (scheme_str r "fib");
  let r = Check.check_source ~entries:[ "tak" ] Workload.tak.Workload.source in
  check_str "tak" "int * int * int -> int" (scheme_str r "tak");
  let r = Check.check_source ~entries:[ "qsort_check" ] Workload.quicksort.Workload.source in
  check_str "qsort" "int list -> int list" (scheme_str r "qsort");
  check_str "safe" "int list * int * int -> bool"
    (scheme_str (Check.check_source ~entries:[ "nqueens" ] Workload.nqueens.Workload.source) "safe")

let infer_catches_head_of_int () =
  let r = Check.check_source ~entries:[ "main" ] "def main(x) = x + head(3)" in
  check_strs "head(3)" [ "RF101" ] (codes_of r)

let infer_catches_bool_arith_confusion () =
  let r = Check.check_source ~entries:[ "main" ] "def main(x) = 1 + (x && true)" in
  check_strs "1 + bool" [ "RF101" ] (codes_of r)

let infer_propagates_across_calls () =
  (* the type error is only visible once g's scheme flows into f *)
  let r =
    Check.check_source ~entries:[ "f" ]
      "def f(x) = g(x) + 1\ndef g(y) = y :: nil"
  in
  check_strs "cross-call" [ "RF101" ] (codes_of r)

(* ---------------- Call graph ---------------- *)

let mutual_src =
  "def even(n) = if n == 0 then true else odd(n - 1)\n\
   def odd(n) = if n == 0 then false else even(n - 1)\n\
   def main(n) = even(n)"

let callgraph_basics () =
  let g = Callgraph.of_program (program_exn mutual_src) in
  check_strs "functions" [ "even"; "main"; "odd" ] g.Callgraph.functions;
  check_strs "roots" [ "main" ] (Callgraph.roots g);
  check_strs "reachable" [ "even"; "main"; "odd" ] (Callgraph.reachable g ~entries:[ "main" ]);
  check_strs "reachable from even" [ "even"; "odd" ] (Callgraph.reachable g ~entries:[ "even" ]);
  check_strs "recursive" [ "even"; "odd" ] (Callgraph.recursive_functions g);
  check "even+odd share an scc" true (List.mem [ "even"; "odd" ] (Callgraph.sccs g))

let callgraph_cyclic_roots () =
  (* a fully cyclic program has no root; everything is an entry candidate,
     so nothing is reported dead *)
  let src = "def a(n) = b(n)\ndef b(n) = a(n - 1)" in
  let g = Callgraph.of_program (program_exn src) in
  check_strs "roots fall back to all" [ "a"; "b" ] (Callgraph.roots g);
  let r = Check.check_source src in
  check "no dead functions" true
    (not (List.exists (fun (d : Diagnostic.t) -> d.Diagnostic.code = Diagnostic.Dead_function)
            r.Check.diagnostics))

(* ---------------- Spawn shapes ---------------- *)

let shape_of src fn =
  let shape = Shape.of_program (program_exn src) in
  match Shape.find shape fn with Some s -> s | None -> Alcotest.failf "no shape for %s" fn

let shape_workload_bounds () =
  let bound w fn =
    let shape = Shape.of_program (Workload.program w) in
    Option.get (Shape.fanout_bound shape fn)
  in
  check_int "fib" 2 (bound Workload.fib "fib");
  check_int "tak" 4 (bound Workload.tak "tak");
  check_int "nqueens.try_cols" 3 (bound Workload.nqueens "try_cols");
  check_int "tree_sum" 2 (bound Workload.tree_sum "tsum")

let shape_if_takes_max () =
  (* condition's call plus the wider arm: 1 + max(1, 2) = 3 *)
  let s = shape_of "def f(x) = if f(x) == 0 then f(x - 1) else f(x) + f(x + 1)" "f" in
  check_int "if max" 3 s.Shape.fanout

let shape_recursion_classes () =
  let p = program_exn mutual_src in
  let shape = Shape.of_program p in
  let cls fn = (Option.get (Shape.find shape fn)).Shape.recursion in
  check "main" true (cls "main" = Shape.Non_recursive);
  check "even" true (cls "even" = Shape.Mutually_recursive);
  let s = shape_of "def f(n) = if n == 0 then 0 else f(n - 1)" "f" in
  check "self" true (s.Shape.recursion = Shape.Self_recursive)

let shape_program_bound_respects_entries () =
  let src = "def main(x) = leaf(x)\ndef leaf(x) = x + 1\ndef wide(x) = w(x) + w(x) + w(x)\ndef w(x) = x" in
  let p = program_exn src in
  let shape = Shape.of_program p in
  check_int "reachable only" 1 (Shape.program_fanout_bound ~entries:[ "main" ] shape p);
  check_int "whole program" 3 (Shape.program_fanout_bound shape p)

let gradient_auto_weight () =
  check_int "narrow" 1 (Recflow_balance.Policy.suggest_gradient_weight ~fanout:0);
  check_int "fib-like" 2 (Recflow_balance.Policy.suggest_gradient_weight ~fanout:2);
  check_int "clamped" 4 (Recflow_balance.Policy.suggest_gradient_weight ~fanout:9)

let ckpt_admission_suggestion () =
  let suggest ?(work = 5) ?(fanout = 2) ?(depth = Some 12) ?(loss = 0.1) ?(cost = 3) () =
    Recflow_balance.Policy.suggest_ckpt_admission ~work_per_activation:work ~fanout
      ~depth_bound:depth ~loss_rate:loss ~ckpt_cost:cost
  in
  check "free recording admits all" true (suggest ~cost:0 () = None);
  check "negative cost admits all" true (suggest ~cost:(-2) () = None);
  check "no depth bound admits all" true (suggest ~depth:None () = None);
  check "zero loss keeps only the root's children" true (suggest ~loss:0.0 () = Some 1);
  check "certain loss admits to the full bound" true (suggest ~loss:1.0 () = Some 12);
  (* monotone: more risk, or cheaper records, never raises the cutoff *)
  let d x = match x with Some d -> d | None -> Alcotest.fail "expected Some cutoff" in
  check "higher loss admits deeper" true (d (suggest ~loss:0.01 ()) <= d (suggest ~loss:0.3 ()));
  check "dearer records admit shallower" true
    (d (suggest ~cost:50 ()) <= d (suggest ~cost:2 ()));
  check "cutoff at least 1" true (d (suggest ~loss:1e-9 ~cost:1000 ()) >= 1);
  check "cutoff within bound" true (d (suggest ~loss:0.9 ~depth:(Some 4) ()) <= 4)

(* The check-smoke-<workload>.json dune targets: written by the real CLI
   (`recflow --check-json`), re-read here with the in-tree strict parser.
   Every built-in workload must be clean and carry a cost block per
   function. *)
let check_smoke_roundtrip () =
  List.iter
    (fun (w : Workload.t) ->
      let path = Printf.sprintf "check-smoke-%s.json" w.Workload.name in
      let doc = In_channel.with_open_text path In_channel.input_all in
      match Json.parse doc with
      | Error msg -> Alcotest.failf "%s: %s" path msg
      | Ok j ->
        check (w.Workload.name ^ ": schema") true
          (Json.member "schema" j = Some (Json.Str "recflow.check/2"));
        check (w.Workload.name ^ ": clean") true
          (Json.member "errors" j = Some (Json.Int 0)
          && Json.member "warnings" j = Some (Json.Int 0));
        let fns = Json.to_list (Option.value ~default:Json.Null (Json.member "functions" j)) in
        check (w.Workload.name ^ ": has functions") true (fns <> []);
        List.iter
          (fun f ->
            check (w.Workload.name ^ ": function has a cost block") true
              (Json.member "cost" f <> None))
          fns)
    Workload.all

(* ---------------- Cost analysis precision pins ---------------- *)

let cost_of (w : Workload.t) =
  Option.get (Check.check_source ~entries:[ w.Workload.entry ] w.Workload.source).Check.cost

let fn_cost c fn = match Cost.find c fn with Some fc -> fc | None -> Alcotest.failf "no cost for %s" fn

let cost_verdicts () =
  (* pins: these are precision guarantees, not just soundness — a change
     that degrades any of them is a regression *)
  let fib = fn_cost (cost_of Workload.fib) "fib" in
  (match fib.Cost.verdict with
  | Cost.Bounded { measure = "n"; floor = Some { Cost.at_least = 2; requires_start_ge = None } } -> ()
  | _ -> Alcotest.failf "fib verdict: %s" (Cost.fn_cost_to_string fib));
  check "fib growth" true (fib.Cost.growth = Cost.Exponential);
  check_int "fib rec fan-out" 2 fib.Cost.rec_fanout;
  let tsum = fn_cost (cost_of Workload.tree_sum) "tsum" in
  (match tsum.Cost.verdict with
  | Cost.Bounded { floor = Some { Cost.at_least = 1; _ }; _ } -> ()
  | _ -> Alcotest.failf "tsum verdict: %s" (Cost.fn_cost_to_string tsum));
  let qsort = fn_cost (cost_of Workload.quicksort) "qsort" in
  (match qsort.Cost.verdict with
  | Cost.Bounded { measure = "size(xs)"; floor = Some { Cost.at_least = 1; _ } } -> ()
  | _ -> Alcotest.failf "qsort verdict: %s" (Cost.fn_cost_to_string qsort));
  (* no false divergence warnings: interval halving and merge sort are
     beyond the measure family, so they must stay quiet *)
  let msort = fn_cost (cost_of Workload.mergesort) "msort" in
  check "msort quiet" true (msort.Cost.verdict = Cost.Quiet);
  let sumsq = fn_cost (cost_of Workload.map_reduce) "sumsq" in
  check "sumsq quiet" true (sumsq.Cost.verdict = Cost.Quiet);
  let tak = fn_cost (cost_of Workload.tak) "tak" in
  check "tak quiet" true (tak.Cost.verdict = Cost.Quiet);
  let merge = fn_cost (cost_of Workload.mergesort) "merge" in
  (match merge.Cost.verdict with
  | Cost.Bounded { measure = "sum(list sizes)"; floor = Some { Cost.at_least = 2; _ } } -> ()
  | _ -> Alcotest.failf "merge verdict: %s" (Cost.fn_cost_to_string merge))

let cost_entry_bounds_exact () =
  (* fib tiny = fib(8): chain 8 -> 7 -> ... -> 2 -> leaf is 7 edges *)
  let c = cost_of Workload.fib in
  let eb = Cost.entry_bounds c ~entry:"fib" ~args:(Workload.fib.Workload.args Workload.Tiny) in
  check "fib depth" true (eb.Cost.depth = Some 7);
  check_int "fib fanout" 2 eb.Cost.fanout;
  check "fib activations" true (Cost.activation_bound eb = Some 255);
  check "fib subtree at 5" true (Cost.subtree_bound eb ~depth:5 = Some 7);
  check "fib subtree below floor" true (Cost.subtree_bound eb ~depth:7 = Some 1);
  let c = cost_of Workload.tree_sum in
  let eb = Cost.entry_bounds c ~entry:"tsum" ~args:(Workload.tree_sum.Workload.args Workload.Tiny) in
  check "tsum depth finite" true (Option.is_some eb.Cost.depth)

let cost_divergent_entry_bounds () =
  let r = Check.check_source ~entries:[ "main" ] "def main(n) = if n > 0 then main(n + 1) else 0" in
  let c = Option.get r.Check.cost in
  let eb = Cost.entry_bounds c ~entry:"main" ~args:[ Value.Int 5 ] in
  check "divergent depth" true (eb.Cost.depth = None);
  check "divergent activations" true (Cost.activation_bound eb = None)

let cost_increasing_counter_bounded () =
  (* an increasing counter climbing to a guard ceiling is depth-bounded
     via the negated measure *)
  let r = Check.check_source ~entries:[ "main" ] "def main(n) = if n < 5 then main(n + 1) else n" in
  let c = Option.get r.Check.cost in
  check "no warnings" true (Check.ok ~werror:true r);
  let fc = fn_cost c "main" in
  (match fc.Cost.verdict with
  | Cost.Bounded { floor = Some _; _ } -> ()
  | _ -> Alcotest.failf "ceiling verdict: %s" (Cost.fn_cost_to_string fc));
  let eb = Cost.entry_bounds c ~entry:"main" ~args:[ Value.Int 0 ] in
  check "ceiling depth finite" true (Option.is_some eb.Cost.depth);
  (* -n starts at 0, floor is -4: at most 5 more levels *)
  check "ceiling depth tight" true (eb.Cost.depth = Some 5)

(* ---------------- Corpus: everything we ship is clean ---------------- *)

let corpus_is_clean () =
  let check_clean name entry source =
    let r = Check.check_source ~entries:[ entry ] source in
    if not (Check.ok ~werror:true r) then
      Alcotest.failf "%s not clean:\n%s" name (Check.render_human r)
  in
  List.iter
    (fun (w : Workload.t) -> check_clean w.Workload.name w.Workload.entry w.Workload.source)
    Workload.all;
  List.iter
    (fun b ->
      let w = Workload.synthetic ~branching:b ~depth:3 ~grain:5 in
      check_clean w.Workload.name w.Workload.entry w.Workload.source)
    [ 1; 2; 3; 4 ]

let workload_program_gate () =
  (* Workload.program refuses a workload whose source has analysis errors *)
  let bad =
    {
      Workload.fib with
      Workload.name = "bad_gate_fixture";
      source = "def fib(n) = if n > 0 then 1 else nil";
    }
  in
  check "raises" true
    (try
       ignore (Workload.program bad);
       false
     with Invalid_argument _ -> true)

(* ---------------- Gauntlet: bounds vs the journal ---------------- *)

(* For every workload at every size, run a real 8-node cluster (inlining
   below stamp depth 6 keeps even tak/large fast) and require:
   - the distributed answer equals the serial reference;
   - every digit of every spawned stamp is < the program's static fan-out
     bound (digits are per-activation spawn-counter values);
   - no parent stamp has more distinct spawned children than the bound;
   - when the cost analysis bounds the entry's recursion depth, no
     observed stamp exceeds it, and no subtree holds more spawned tasks
     than [Cost.subtree_bound] allows at its root's depth.  There are no
     per-workload opt-outs: the depth checks are vacuous exactly when the
     analysis itself returned "unbounded". *)
let gauntlet () =
  let sizes = [ Workload.Tiny; Workload.Small; Workload.Medium; Workload.Large ] in
  let size_tag = function
    | Workload.Tiny -> "tiny"
    | Workload.Small -> "small"
    | Workload.Medium -> "medium"
    | Workload.Large -> "large"
  in
  List.iter
    (fun (w : Workload.t) ->
      let program = Workload.program w in
      let shape = Shape.of_program program in
      let bound = Shape.program_fanout_bound ~entries:[ w.Workload.entry ] shape program in
      let cost = cost_of w in
      List.iter
        (fun size ->
          let tag = Printf.sprintf "%s/%s" w.Workload.name (size_tag size) in
          let cfg = { (Config.default ~nodes:8) with Config.inline_depth = 6 } in
          let cluster = Cluster.create cfg program in
          Cluster.start cluster ~fname:w.Workload.entry ~args:(w.Workload.args size);
          let outcome = Cluster.run cluster in
          (match outcome.Cluster.answer with
          | Some v ->
            if not (Value.equal v (Workload.expected w size)) then
              Alcotest.failf "%s: wrong answer %s" tag (Value.to_string v)
          | None -> Alcotest.failf "%s: no answer" tag);
          let spawned =
            List.filter_map
              (fun (e : Journal.entry) ->
                match e.Journal.event with Journal.Spawned _ -> Some e.Journal.stamp | _ -> None)
              (Journal.entries (Cluster.journal cluster))
          in
          check (tag ^ " spawns observed") true (spawned <> []);
          List.iter
            (fun s ->
              match Stamp.max_digit s with
              | Some d when d >= bound ->
                Alcotest.failf "%s: stamp %s has digit %d >= bound %d" tag (Stamp.to_string s) d
                  bound
              | _ -> ())
            spawned;
          let children = Hashtbl.create 256 in
          List.iter
            (fun s ->
              match Stamp.parent s with
              | Some p ->
                let set = Option.value ~default:[] (Hashtbl.find_opt children p) in
                if not (List.mem s set) then Hashtbl.replace children p (s :: set)
              | None -> ())
            spawned;
          Hashtbl.iter
            (fun p cs ->
              if List.length cs > bound then
                Alcotest.failf "%s: activation %s spawned %d children > bound %d" tag
                  (Stamp.to_string p) (List.length cs) bound)
            children;
          let eb = Cost.entry_bounds cost ~entry:w.Workload.entry ~args:(w.Workload.args size) in
          match eb.Cost.depth with
          | None -> ()
          | Some dbound ->
            List.iter
              (fun s ->
                if Stamp.depth s > dbound then
                  Alcotest.failf "%s: stamp %s at depth %d > static bound %d" tag
                    (Stamp.to_string s) (Stamp.depth s) dbound)
              spawned;
            (* counts.(s) = spawned tasks inside s's subtree (s included);
               that undercounts activations (inlined calls don't stamp),
               so <= the static subtree bound is required of it too *)
            let counts = Hashtbl.create 256 in
            let rec bump st =
              Hashtbl.replace counts st (1 + Option.value ~default:0 (Hashtbl.find_opt counts st));
              match Stamp.parent st with Some p -> bump p | None -> ()
            in
            List.iter bump spawned;
            Hashtbl.iter
              (fun s n ->
                match Cost.subtree_bound eb ~depth:(Stamp.depth s) with
                | Some b when n > b ->
                  Alcotest.failf "%s: subtree at %s holds %d tasks > static bound %d" tag
                    (Stamp.to_string s) n b
                | _ -> ())
              counts)
        sizes)
    Workload.all

let suites =
  [
    ( "analysis.diagnostics",
      [
        Alcotest.test_case "fixtures trigger exactly one code" `Quick fixtures_trigger_exactly;
        Alcotest.test_case "RF007 via raw AST" `Quick rf007_fixture;
        Alcotest.test_case "every code has a fixture" `Quick all_codes_have_fixtures;
        Alcotest.test_case "severity follows the band" `Quick severities_by_band;
        Alcotest.test_case "RF3xx pretty/parse roundtrip" `Quick rf3xx_roundtrip;
        Alcotest.test_case "explain covers every code" `Quick explain_all_codes;
        Alcotest.test_case "locations" `Quick diagnostics_carry_locations;
        Alcotest.test_case "json shape" `Quick json_report_shape;
        Alcotest.test_case "check-json CLI smoke round-trip" `Quick check_smoke_roundtrip;
      ] );
    ( "analysis.cost",
      [
        Alcotest.test_case "workload verdicts" `Quick cost_verdicts;
        Alcotest.test_case "entry bounds exact" `Quick cost_entry_bounds_exact;
        Alcotest.test_case "divergent entry bounds" `Quick cost_divergent_entry_bounds;
        Alcotest.test_case "increasing counter bounded" `Quick cost_increasing_counter_bounded;
      ] );
    ( "analysis.infer",
      [
        Alcotest.test_case "workload schemes" `Quick infer_workload_schemes;
        Alcotest.test_case "head of int" `Quick infer_catches_head_of_int;
        Alcotest.test_case "bool/arith confusion" `Quick infer_catches_bool_arith_confusion;
        Alcotest.test_case "cross-call propagation" `Quick infer_propagates_across_calls;
      ] );
    ( "analysis.callgraph",
      [
        Alcotest.test_case "sccs/roots/reachable" `Quick callgraph_basics;
        Alcotest.test_case "cyclic fallback" `Quick callgraph_cyclic_roots;
      ] );
    ( "analysis.shape",
      [
        Alcotest.test_case "workload bounds" `Quick shape_workload_bounds;
        Alcotest.test_case "if takes max" `Quick shape_if_takes_max;
        Alcotest.test_case "recursion classes" `Quick shape_recursion_classes;
        Alcotest.test_case "entries restrict the bound" `Quick shape_program_bound_respects_entries;
        Alcotest.test_case "gradient:auto weight" `Quick gradient_auto_weight;
        Alcotest.test_case "adaptive ckpt admission cutoff" `Quick ckpt_admission_suggestion;
      ] );
    ( "analysis.corpus",
      [
        Alcotest.test_case "workloads are clean" `Quick corpus_is_clean;
        Alcotest.test_case "workload gate" `Quick workload_program_gate;
      ] );
    ("analysis.gauntlet", [ Alcotest.test_case "bounds vs journal" `Slow gauntlet ]);
  ]
