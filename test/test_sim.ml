(* Tests for the simulation substrate: RNG, heap, engine, trace. *)

module Rng = Recflow_sim.Rng
module Heap = Recflow_sim.Heap
module Engine = Recflow_sim.Engine
module Trace = Recflow_sim.Trace

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest = QCheck_alcotest.to_alcotest

(* ---------------- Rng ---------------- *)

let rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let rng_seed_sensitivity () =
  let a = Rng.create 7 and b = Rng.create 8 in
  check "different seeds diverge" true (Rng.next_int64 a <> Rng.next_int64 b)

let rng_copy_independent () =
  let a = Rng.create 3 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a) (Rng.next_int64 b);
  ignore (Rng.next_int64 a);
  (* b is now one draw behind and stays independent *)
  check "copies evolve separately" true (Rng.next_int64 a <> Rng.next_int64 b)

let rng_split_diverges () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let xs = List.init 16 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 16 (fun _ -> Rng.next_int64 b) in
  check "split streams differ" true (xs <> ys)

let rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays in [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let t = Rng.create seed in
      let x = Rng.int t bound in
      x >= 0 && x < bound)

let rng_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int_in inclusive bounds" ~count:500
    QCheck.(triple small_int (int_range (-1000) 1000) (int_range 0 1000))
    (fun (seed, lo, span) ->
      let t = Rng.create seed in
      let x = Rng.int_in t lo (lo + span) in
      x >= lo && x <= lo + span)

let rng_int_invalid () =
  let t = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int t 0))

let rng_float_bounds =
  QCheck.Test.make ~name:"Rng.float stays in [0, bound)" ~count:500
    QCheck.(pair small_int (float_range 0.001 1e6))
    (fun (seed, bound) ->
      let t = Rng.create seed in
      let x = Rng.float t bound in
      x >= 0.0 && x < bound)

let rng_exponential_positive () =
  let t = Rng.create 11 in
  for _ = 1 to 200 do
    check "exp >= 0" true (Rng.exponential t 5.0 >= 0.0)
  done

let rng_shuffle_permutation =
  QCheck.Test.make ~name:"Rng.shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list_of_size (Gen.int_range 0 50) int))
    (fun (seed, xs) ->
      let t = Rng.create seed in
      let arr = Array.of_list xs in
      Rng.shuffle t arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

let rng_pick_member () =
  let t = Rng.create 2 in
  let arr = [| 1; 5; 9 |] in
  for _ = 1 to 50 do
    let x = Rng.pick t arr in
    check "pick from array" true (Array.exists (fun y -> y = x) arr)
  done

let rng_int_unbiased_small_bound () =
  (* Rejection sampling: every residue of a small bound lands within a
     tight band of the expected frequency. *)
  let t = Rng.create 97 in
  let bound = 3 and draws = 30_000 in
  let buckets = Array.make bound 0 in
  for _ = 1 to draws do
    let x = Rng.int t bound in
    buckets.(x) <- buckets.(x) + 1
  done;
  Array.iteri
    (fun i n ->
      check
        (Printf.sprintf "bucket %d near uniform (%d)" i n)
        true
        (abs (n - (draws / bound)) < draws / 20))
    buckets

let rng_int_huge_bound_in_range () =
  (* bound = max_int (2^62 - 1) is the worst case for the old modulo: the
     raw 62-bit draw is taken nearly verbatim, so any sign/wrap slip shows
     up immediately. *)
  let t = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.int t max_int in
    check "in [0, max_int)" true (x >= 0 && x < max_int)
  done

let rng_int_stream_stable () =
  (* The fix must not disturb the accepted stream: for small bounds the
     draw is (virtually) never rejected, so the sequence is exactly the
     pre-fix [r mod bound] one.  Pinned so silent stream changes fail. *)
  let t = Rng.create 42 in
  let got = List.init 8 (fun _ -> Rng.int t 100) in
  let u = Rng.create 42 in
  let expected =
    List.init 8 (fun _ ->
        Int64.to_int (Int64.rem (Int64.shift_right_logical (Rng.next_int64 u) 2) 100L))
  in
  Alcotest.(check (list int)) "same stream as r mod bound" expected got

(* ---------------- Heap ---------------- *)

let heap_sorted_drain =
  QCheck.Test.make ~name:"Heap drains in sorted order" ~count:300
    QCheck.(list_of_size (Gen.int_range 0 100) int)
    (fun xs ->
      let h = Heap.of_list ~cmp:compare xs in
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
      drain [] = List.sort compare xs)

let heap_peek_min () =
  let h = Heap.create ~cmp:compare in
  Heap.push h 5;
  Heap.push h 1;
  Heap.push h 3;
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  check_int "length unchanged by peek" 3 (Heap.length h)

let heap_pop_exn_empty () =
  let h : int Heap.t = Heap.create ~cmp:compare in
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let heap_clear () =
  let h = Heap.of_list ~cmp:compare [ 3; 1 ] in
  Heap.clear h;
  check "empty after clear" true (Heap.is_empty h);
  Heap.push h 9;
  Alcotest.(check (option int)) "usable after clear" (Some 9) (Heap.pop h)

let heap_to_list_content () =
  let h = Heap.of_list ~cmp:compare [ 4; 2; 7 ] in
  Alcotest.(check (list int)) "contents" [ 2; 4; 7 ] (List.sort compare (Heap.to_list h))

(* Regression for the retention leak: [pop] used to leave the vacated slot
   pointing at a live element, pinning popped payloads until the slot was
   reused.  Payloads are boxed and watched through a [Weak] array; after
   popping everything and a major GC they must all be collectable. *)
let heap_pop_releases () =
  let n = 32 in
  let weak = Weak.create n in
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) in
  for i = 0 to n - 1 do
    let payload = ref i in
    Weak.set weak i (Some payload);
    Heap.push h (i, payload)
  done;
  for _ = 1 to n do
    ignore (Heap.pop_exn h)
  done;
  Gc.full_major ();
  let retained = ref 0 in
  for i = 0 to n - 1 do
    if Weak.check weak i then incr retained
  done;
  check_int "popped payloads collected" 0 !retained

let heap_floats () =
  (* The Obj-backed store must not trip over the flat float-array
     representation: float elements stay boxed and drain correctly. *)
  let h = Heap.of_list ~cmp:Float.compare [ 2.5; 0.5; 1.5 ] in
  let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  Alcotest.(check (list (float 0.0))) "sorted floats" [ 0.5; 1.5; 2.5 ] (drain [])

let heap_shrinks_when_drained () =
  (* Interleaved push/pop around the shrink threshold must preserve heap
     order (exercises the blit in [shrink]). *)
  let h = Heap.create ~cmp:compare in
  for i = 511 downto 0 do
    Heap.push h i
  done;
  for i = 0 to 500 do
    check_int "ordered drain across shrink" i (Heap.pop_exn h)
  done;
  check_int "tail intact" 11 (Heap.length h)

(* ---------------- Engine ---------------- *)

let engine_orders_by_time () =
  let e = Engine.create () in
  Engine.schedule e ~delay:30 "c";
  Engine.schedule e ~delay:10 "a";
  Engine.schedule e ~delay:20 "b";
  let order = ref [] in
  Engine.run e (fun _ ev -> order := ev :: !order);
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !order)

let engine_fifo_ties () =
  let e = Engine.create () in
  List.iter (fun s -> Engine.schedule e ~delay:5 s) [ "1"; "2"; "3"; "4" ];
  let order = ref [] in
  Engine.run e (fun _ ev -> order := ev :: !order);
  Alcotest.(check (list string)) "FIFO at equal time" [ "1"; "2"; "3"; "4" ] (List.rev !order)

let engine_clock_advances () =
  let e = Engine.create () in
  Engine.schedule e ~delay:42 ();
  (match Engine.next e with
  | Some (at, ()) -> check_int "timestamp" 42 at
  | None -> Alcotest.fail "missing event");
  check_int "clock" 42 (Engine.now e)

let engine_past_raises () =
  let e = Engine.create () in
  Engine.schedule e ~delay:10 ();
  ignore (Engine.next e);
  check "scheduling in the past rejected" true
    (try
       Engine.schedule_at e ~time:5 ();
       false
     with Invalid_argument _ -> true)

let engine_negative_delay () =
  let e = Engine.create () in
  check "negative delay rejected" true
    (try
       Engine.schedule e ~delay:(-1) ();
       false
     with Invalid_argument _ -> true)

let engine_until_horizon () =
  let e = Engine.create () in
  Engine.schedule e ~delay:10 "in";
  Engine.schedule e ~delay:100 "out";
  let seen = ref [] in
  Engine.run e ~until:50 (fun _ ev -> seen := ev :: !seen);
  Alcotest.(check (list string)) "horizon respected" [ "in" ] (List.rev !seen);
  check_int "event beyond horizon still queued" 1 (Engine.pending e)

let engine_stop () =
  let e = Engine.create () in
  for i = 1 to 5 do
    Engine.schedule e ~delay:i i
  done;
  let n = ref 0 in
  Engine.run e (fun _ _ ->
      incr n;
      if !n = 2 then Engine.stop e);
  check_int "stopped after two" 2 !n;
  check_int "rest pending" 3 (Engine.pending e)

let engine_dispatch_count () =
  let e = Engine.create () in
  for _ = 1 to 7 do
    Engine.schedule e ~delay:1 ()
  done;
  Engine.run e (fun _ () -> ());
  check_int "dispatched" 7 (Engine.events_dispatched e)

let engine_handler_schedules () =
  let e = Engine.create () in
  Engine.schedule e ~delay:1 3;
  let total = ref 0 in
  Engine.run e (fun _ n ->
      total := !total + n;
      if n > 1 then Engine.schedule e ~delay:1 (n - 1));
  check_int "cascade 3+2+1" 6 !total

(* [run] without [until] takes the drain fast path (no per-event horizon
   peek): exercise it across the initial capacity so grow/shrink, packed
   ordering and FIFO ties all happen inside one drain. *)
let engine_drain_fast_loop () =
  let e = Engine.create () in
  let n = 3000 in
  for i = 0 to n - 1 do
    (* Colliding timestamps: 10 events per instant, FIFO within each. *)
    Engine.schedule e ~delay:(i mod (n / 10)) (i mod (n / 10), i)
  done;
  let last_at = ref (-1) and last_seq = ref (-1) and count = ref 0 in
  Engine.run e (fun at (ev_at, seq) ->
      incr count;
      check_int "handler time matches scheduled time" ev_at at;
      check "times non-decreasing" true (at >= !last_at);
      if at = !last_at then check "FIFO among equal times" true (seq > !last_seq);
      last_at := at;
      last_seq := seq);
  check_int "all events drained" n !count;
  check_int "nothing pending" 0 (Engine.pending e);
  check_int "dispatch count" n (Engine.events_dispatched e)

(* The packed (time, seq) priority has explicit range guards rather than
   silent wraparound. *)
let engine_time_range_guard () =
  let e = Engine.create () in
  check "astronomic timestamp rejected" true
    (try
       Engine.schedule_at e ~time:max_int "too far";
       false
     with Invalid_argument _ -> true);
  (* A large-but-packable time still works (2^34 is the documented bound). *)
  Engine.schedule_at e ~time:((1 lsl 34) - 1) "far";
  match Engine.next e with
  | Some (at, "far") -> check_int "far event dispatched" ((1 lsl 34) - 1) at
  | _ -> Alcotest.fail "far event lost"

(* ---------------- Trace ---------------- *)

let trace_basic () =
  let t = Trace.create ~capacity:10 () in
  Trace.log t ~time:1 ~level:Trace.Info ~tag:"a" "hello";
  Trace.logf t ~time:2 ~level:Trace.Warn ~tag:"b" "x=%d" 42;
  check_int "count" 2 (Trace.count t);
  match Trace.records t with
  | [ r1; r2 ] ->
    Alcotest.(check string) "msg 1" "hello" r1.Trace.message;
    Alcotest.(check string) "msg 2" "x=42" r2.Trace.message
  | _ -> Alcotest.fail "expected two records"

let trace_ring_eviction () =
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.log t ~time:i ~level:Trace.Debug ~tag:"t" (string_of_int i)
  done;
  check_int "total count includes evicted" 5 (Trace.count t);
  Alcotest.(check (list string)) "last three retained" [ "3"; "4"; "5" ]
    (List.map (fun r -> r.Trace.message) (Trace.records t))

let trace_find_by_tag () =
  let t = Trace.create () in
  Trace.log t ~time:1 ~level:Trace.Info ~tag:"x" "one";
  Trace.log t ~time:2 ~level:Trace.Info ~tag:"y" "two";
  Trace.log t ~time:3 ~level:Trace.Info ~tag:"x" "three";
  Alcotest.(check (list string)) "find x" [ "one"; "three" ]
    (List.map (fun r -> r.Trace.message) (Trace.find t ~tag:"x"))

let trace_clear () =
  let t = Trace.create () in
  Trace.log t ~time:1 ~level:Trace.Info ~tag:"x" "one";
  Trace.clear t;
  check_int "records dropped" 0 (List.length (Trace.records t))

let trace_capacity_invalid () =
  check "capacity 0 rejected" true
    (try
       ignore (Trace.create ~capacity:0 ());
       false
     with Invalid_argument _ -> true)

let suites =
  [
    ( "sim.rng",
      [
        Alcotest.test_case "deterministic" `Quick rng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick rng_seed_sensitivity;
        Alcotest.test_case "copy" `Quick rng_copy_independent;
        Alcotest.test_case "split" `Quick rng_split_diverges;
        Alcotest.test_case "int invalid" `Quick rng_int_invalid;
        Alcotest.test_case "exponential" `Quick rng_exponential_positive;
        Alcotest.test_case "pick" `Quick rng_pick_member;
        Alcotest.test_case "int unbiased" `Quick rng_int_unbiased_small_bound;
        Alcotest.test_case "int huge bound" `Quick rng_int_huge_bound_in_range;
        Alcotest.test_case "int stream stable" `Quick rng_int_stream_stable;
        qtest rng_int_bounds;
        qtest rng_int_in_bounds;
        qtest rng_float_bounds;
        qtest rng_shuffle_permutation;
      ] );
    ( "sim.heap",
      [
        Alcotest.test_case "peek min" `Quick heap_peek_min;
        Alcotest.test_case "pop_exn empty" `Quick heap_pop_exn_empty;
        Alcotest.test_case "clear" `Quick heap_clear;
        Alcotest.test_case "to_list" `Quick heap_to_list_content;
        Alcotest.test_case "pop releases" `Quick heap_pop_releases;
        Alcotest.test_case "float elements" `Quick heap_floats;
        Alcotest.test_case "shrink keeps order" `Quick heap_shrinks_when_drained;
        qtest heap_sorted_drain;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "time order" `Quick engine_orders_by_time;
        Alcotest.test_case "FIFO ties" `Quick engine_fifo_ties;
        Alcotest.test_case "clock" `Quick engine_clock_advances;
        Alcotest.test_case "past rejected" `Quick engine_past_raises;
        Alcotest.test_case "negative delay" `Quick engine_negative_delay;
        Alcotest.test_case "horizon" `Quick engine_until_horizon;
        Alcotest.test_case "stop" `Quick engine_stop;
        Alcotest.test_case "dispatch count" `Quick engine_dispatch_count;
        Alcotest.test_case "handler schedules" `Quick engine_handler_schedules;
        Alcotest.test_case "drain fast loop" `Quick engine_drain_fast_loop;
        Alcotest.test_case "packed time range guard" `Quick engine_time_range_guard;
      ] );
    ( "sim.trace",
      [
        Alcotest.test_case "basic" `Quick trace_basic;
        Alcotest.test_case "ring eviction" `Quick trace_ring_eviction;
        Alcotest.test_case "find by tag" `Quick trace_find_by_tag;
        Alcotest.test_case "clear" `Quick trace_clear;
        Alcotest.test_case "capacity invalid" `Quick trace_capacity_invalid;
      ] );
  ]
