(* Tests for the paper's core structures: stamps, packets, checkpoint
   tables, splice cases, spawn states, voting. *)

module Stamp = Recflow_recovery.Stamp
module Packet = Recflow_recovery.Packet
module Ckpt_table = Recflow_recovery.Ckpt_table
module Splice_case = Recflow_recovery.Splice_case
module Spawn_state = Recflow_recovery.Spawn_state
module Vote = Recflow_recovery.Vote
module Ids = Recflow_recovery.Ids
module Value = Recflow_lang.Value

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let qtest = QCheck_alcotest.to_alcotest

let stamp = Alcotest.testable (fun ppf s -> Stamp.pp ppf s) Stamp.equal

(* ---------------- Stamp ---------------- *)

let stamp_basics () =
  let s = Stamp.child (Stamp.child Stamp.root 1) 3 in
  Alcotest.(check (list int)) "digits" [ 1; 3 ] (Stamp.digits s);
  check_int "depth" 2 (Stamp.depth s);
  Alcotest.(check (option stamp)) "parent" (Some (Stamp.of_digits [ 1 ])) (Stamp.parent s);
  Alcotest.(check (option stamp)) "root has no parent" None (Stamp.parent Stamp.root);
  check "negative digit rejected" true
    (try
       ignore (Stamp.child Stamp.root (-1));
       false
     with Invalid_argument _ -> true)

let stamp_ancestry () =
  let a = Stamp.of_digits [ 1 ] in
  let b = Stamp.of_digits [ 1; 0; 2 ] in
  check "ancestor" true (Stamp.is_ancestor a b);
  check "descendant" true (Stamp.is_descendant b a);
  check "not self-ancestor (proper)" false (Stamp.is_ancestor a a);
  check "unrelated" false (Stamp.is_ancestor (Stamp.of_digits [ 2 ]) b);
  check "related includes equal" true (Stamp.related a a);
  check "root is everyone's ancestor" true (Stamp.is_ancestor Stamp.root b)

let gen_stamp = QCheck.Gen.(list_size (int_range 0 6) (int_range 0 3))

let arb_stamp =
  QCheck.make ~print:(fun ds -> Stamp.to_string (Stamp.of_digits ds)) gen_stamp

let stamp_prefix_iff_ancestor =
  QCheck.Test.make ~name:"is_ancestor iff proper digit prefix" ~count:1000
    QCheck.(pair arb_stamp arb_stamp)
    (fun (da, db) ->
      let a = Stamp.of_digits da and b = Stamp.of_digits db in
      let rec is_prefix xs ys =
        match (xs, ys) with
        | [], [] -> false
        | [], _ -> true
        | _, [] -> false
        | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
      in
      Stamp.is_ancestor a b = is_prefix da db)

let stamp_string_round_trip =
  QCheck.Test.make ~name:"to_string/of_string round trip" ~count:500 arb_stamp (fun ds ->
      let s = Stamp.of_digits ds in
      match Stamp.of_string (Stamp.to_string s) with
      | Ok s' -> Stamp.equal s s'
      | Error _ -> false)

let stamp_compare_lexicographic =
  QCheck.Test.make ~name:"compare is lexicographic on digits" ~count:500
    QCheck.(pair arb_stamp arb_stamp)
    (fun (da, db) ->
      let c = Stamp.compare (Stamp.of_digits da) (Stamp.of_digits db) in
      let expected = compare da db in
      (c = 0) = (expected = 0) && (c < 0) = (expected < 0))

let stamp_child_parent_inverse =
  QCheck.Test.make ~name:"parent (child s k) = s" ~count:500
    QCheck.(pair arb_stamp (int_range 0 9))
    (fun (ds, k) ->
      let s = Stamp.of_digits ds in
      Stamp.parent (Stamp.child s k) = Some s)

let stamp_common_ancestor () =
  let ca a b = Stamp.common_ancestor (Stamp.of_digits a) (Stamp.of_digits b) in
  Alcotest.check stamp "shared prefix" (Stamp.of_digits [ 1; 2 ]) (ca [ 1; 2; 3 ] [ 1; 2; 9 ]);
  Alcotest.check stamp "disjoint" Stamp.root (ca [ 1 ] [ 2 ]);
  Alcotest.check stamp "one contains other" (Stamp.of_digits [ 1 ]) (ca [ 1 ] [ 1; 5 ])

let stamp_of_string_errors () =
  (match Stamp.of_string "1.x.2" with Error _ -> () | Ok _ -> Alcotest.fail "bad digit accepted");
  match Stamp.of_string "" with
  | Ok s -> check "empty is root" true (Stamp.equal s Stamp.root)
  | Error _ -> Alcotest.fail "empty rejected"

(* ---------------- Packet ---------------- *)

let mk_packet ?(stamp = Stamp.of_digits [ 0 ]) ?(fname = "f") () =
  Packet.make ~stamp ~fname ~args:[| Value.Int 1 |]
    ~parent:{ Packet.task = 1; proc = 0; slot = 2 }
    ~grandparent:(Some { Packet.task = 0; proc = 1; slot = 0 })
    ~ancestors:[]

let packet_basics () =
  let root = Packet.root ~fname:"main" ~args:[||] ~super_slot:0 in
  check "root stamp" true (Stamp.equal root.Packet.stamp Stamp.root);
  check_int "root parent proc is super-root" Ids.super_root root.Packet.parent.Packet.proc;
  check "root has no grandparent" true (root.Packet.grandparent = None);
  let p = mk_packet () in
  let p' = Packet.reparent p ~parent:{ Packet.task = 9; proc = 3; slot = 2 } ~grandparent:None in
  check "reparent keeps stamp" true (Stamp.equal p.Packet.stamp p'.Packet.stamp);
  check_int "reparent moves parent" 9 p'.Packet.parent.Packet.task;
  check "identity by stamp+fname" true (Packet.equal_identity p p');
  check "identity differs on fname" false
    (Packet.equal_identity p (mk_packet ~fname:"g" ()))

(* ---------------- Ckpt_table ---------------- *)

let ckpt_topmost_coverage () =
  let t = Ckpt_table.create () in
  let anc = mk_packet ~stamp:(Stamp.of_digits [ 1 ]) () in
  let desc = mk_packet ~stamp:(Stamp.of_digits [ 1; 0 ]) () in
  check "ancestor recorded" true (Ckpt_table.record t ~dest:2 anc = `Recorded);
  check "descendant covered" true (Ckpt_table.record t ~dest:2 desc = `Covered);
  check_int "one stored" 1 (Ckpt_table.total_size t);
  (* same stamps in a different entry are independent *)
  check "other entry records" true (Ckpt_table.record t ~dest:3 desc = `Recorded)

let ckpt_eviction_by_new_ancestor () =
  let t = Ckpt_table.create () in
  let desc = mk_packet ~stamp:(Stamp.of_digits [ 1; 0 ]) () in
  let anc = mk_packet ~stamp:(Stamp.of_digits [ 1 ]) () in
  check "descendant first" true (Ckpt_table.record t ~dest:2 desc = `Recorded);
  check "ancestor recorded" true (Ckpt_table.record t ~dest:2 anc = `Recorded);
  (* the ancestor evicts the now-covered descendant *)
  check_int "one left" 1 (List.length (Ckpt_table.entry t ~dest:2));
  check "it is the ancestor" true
    (Stamp.equal (List.hd (Ckpt_table.entry t ~dest:2)).Packet.stamp (Stamp.of_digits [ 1 ]))

let ckpt_keep_all () =
  let t = Ckpt_table.create ~mode:Ckpt_table.Keep_all () in
  let anc = mk_packet ~stamp:(Stamp.of_digits [ 1 ]) () in
  let desc = mk_packet ~stamp:(Stamp.of_digits [ 1; 0 ]) () in
  check "anc" true (Ckpt_table.record t ~dest:2 anc = `Recorded);
  check "desc also recorded" true (Ckpt_table.record t ~dest:2 desc = `Recorded);
  check_int "both stored" 2 (Ckpt_table.total_size t)

let ckpt_discharge () =
  let t = Ckpt_table.create () in
  let p = mk_packet ~stamp:(Stamp.of_digits [ 2 ]) () in
  ignore (Ckpt_table.record t ~dest:1 p);
  check "discharge hit" true (Ckpt_table.discharge t ~dest:1 (Stamp.of_digits [ 2 ]));
  check "discharge miss" false (Ckpt_table.discharge t ~dest:1 (Stamp.of_digits [ 2 ]));
  check_int "empty" 0 (Ckpt_table.total_size t)

let ckpt_deep_eviction () =
  (* A re-spawned ancestor must evict its *whole* covered subtree in one
     record, with [total_size] tracking the bulk removal. *)
  let t = Ckpt_table.create () in
  List.iter
    (fun ds -> ignore (Ckpt_table.record t ~dest:4 (mk_packet ~stamp:(Stamp.of_digits ds) ())))
    [ [ 0; 1; 0 ]; [ 0; 1; 1 ]; [ 0; 2 ]; [ 1 ] ];
  check_int "four stored" 4 (Ckpt_table.total_size t);
  check "ancestor of three recorded" true
    (Ckpt_table.record t ~dest:4 (mk_packet ~stamp:(Stamp.of_digits [ 0 ]) ()) = `Recorded);
  Alcotest.(check (list (list int))) "subtree evicted, sibling kept"
    [ [ 0 ]; [ 1 ] ]
    (List.map (fun (p : Packet.t) -> Stamp.digits p.Packet.stamp) (Ckpt_table.entry t ~dest:4));
  check_int "size reflects bulk eviction" 2 (Ckpt_table.total_size t)

let ckpt_keep_all_duplicates () =
  (* Keep-all mode stores duplicates of one stamp; discharge drops them all
     at once (the pre-index filter removed every equal stamp too). *)
  let t = Ckpt_table.create ~mode:Ckpt_table.Keep_all () in
  let p = mk_packet ~stamp:(Stamp.of_digits [ 2; 2 ]) () in
  ignore (Ckpt_table.record t ~dest:1 p);
  ignore (Ckpt_table.record t ~dest:1 p);
  ignore (Ckpt_table.record t ~dest:1 (mk_packet ~stamp:(Stamp.of_digits [ 2 ]) ()));
  check_int "three stored" 3 (Ckpt_table.total_size t);
  check "discharge removes all duplicates" true
    (Ckpt_table.discharge t ~dest:1 (Stamp.of_digits [ 2; 2 ]));
  check_int "only the ancestor left" 1 (Ckpt_table.total_size t);
  check "second discharge is a miss" false
    (Ckpt_table.discharge t ~dest:1 (Stamp.of_digits [ 2; 2 ]))

(* Randomized cross-check of the trie-indexed table against the original
   flat-list implementation, replayed operation by operation. *)
module Ckpt_oracle = struct
  type t = { mode : Ckpt_table.mode; mutable entries : (int * Packet.t list) list }

  let create mode = { mode; entries = [] }

  let entry t dest = match List.assoc_opt dest t.entries with Some l -> l | None -> []

  let set t dest l = t.entries <- (dest, l) :: List.remove_assoc dest t.entries

  let record t ~dest (p : Packet.t) =
    let l = entry t dest in
    match t.mode with
    | Ckpt_table.Keep_all ->
      set t dest (p :: l);
      `Recorded
    | Ckpt_table.Topmost ->
      if
        List.exists
          (fun (q : Packet.t) ->
            Stamp.equal q.Packet.stamp p.Packet.stamp
            || Stamp.is_ancestor q.Packet.stamp p.Packet.stamp)
          l
      then `Covered
      else begin
        set t dest
          (p
          :: List.filter
               (fun (q : Packet.t) -> not (Stamp.is_ancestor p.Packet.stamp q.Packet.stamp))
               l);
        `Recorded
      end

  let discharge t ~dest stamp =
    let l = entry t dest in
    let l' = List.filter (fun (q : Packet.t) -> not (Stamp.equal q.Packet.stamp stamp)) l in
    set t dest l';
    List.length l' < List.length l

  let sorted t dest =
    List.stable_sort
      (fun (a : Packet.t) (b : Packet.t) -> Stamp.compare a.Packet.stamp b.Packet.stamp)
      (entry t dest)

  let total t = List.fold_left (fun acc (_, l) -> acc + List.length l) 0 t.entries
end

let gen_op =
  QCheck.Gen.(
    int_bound 20 >>= fun len ->
    list_size (return len) (int_bound 2) >>= fun digits ->
    int_bound 2 >>= fun dest ->
    bool >>= fun is_record -> return (is_record, dest, digits))

let ckpt_matches_oracle mode =
  QCheck.Test.make ~count:300
    ~name:
      (Printf.sprintf "trie table = flat-list oracle (%s)"
         (match mode with Ckpt_table.Topmost -> "topmost" | Ckpt_table.Keep_all -> "keep-all"))
    (QCheck.make QCheck.Gen.(list_size (int_bound 60) gen_op))
    (fun ops ->
      let t = Ckpt_table.create ~mode () in
      let o = Ckpt_oracle.create mode in
      List.for_all
        (fun (is_record, dest, digits) ->
          let stamp = Stamp.of_digits digits in
          let same_step =
            if is_record then
              let p = mk_packet ~stamp () in
              Ckpt_table.record t ~dest p = Ckpt_oracle.record o ~dest p
            else Ckpt_table.discharge t ~dest stamp = Ckpt_oracle.discharge o ~dest stamp
          in
          let same_entry dest =
            List.map
              (fun (p : Packet.t) -> Stamp.digits p.Packet.stamp)
              (Ckpt_table.entry t ~dest)
            = List.map (fun (p : Packet.t) -> Stamp.digits p.Packet.stamp) (Ckpt_oracle.sorted o dest)
          in
          same_step
          && same_entry 0 && same_entry 1 && same_entry 2
          && Ckpt_table.total_size t = Ckpt_oracle.total o)
        ops)

let ckpt_on_failure () =
  let t = Ckpt_table.create () in
  ignore (Ckpt_table.record t ~dest:1 (mk_packet ~stamp:(Stamp.of_digits [ 2; 1 ]) ()));
  ignore (Ckpt_table.record t ~dest:1 (mk_packet ~stamp:(Stamp.of_digits [ 0 ]) ()));
  ignore (Ckpt_table.record t ~dest:5 (mk_packet ~stamp:(Stamp.of_digits [ 3 ]) ()));
  let drained = Ckpt_table.on_failure t ~failed:1 in
  Alcotest.(check (list (list int))) "stamp order (ancestors first)"
    [ [ 0 ]; [ 2; 1 ] ]
    (List.map (fun (p : Packet.t) -> Stamp.digits p.Packet.stamp) drained);
  check_int "entry cleared" 0 (List.length (Ckpt_table.entry t ~dest:1));
  Alcotest.(check (list int)) "other entries untouched" [ 5 ] (Ckpt_table.destinations t);
  check "repeat drain is empty" true (Ckpt_table.on_failure t ~failed:1 = [])

(* ---------------- Splice_case ---------------- *)

let tl ?ci ?cc ?(pf = 100) ?pi' ?pc' ?ci' ?cc' () =
  {
    Splice_case.c_invoked = ci;
    c_completed = cc;
    p_failed = pf;
    p'_invoked = pi';
    p'_completed = pc';
    c'_invoked = ci';
    c'_completed = cc';
  }

let case = Alcotest.testable (fun ppf c -> Format.pp_print_string ppf (Splice_case.to_string c))
    (fun a b -> a = b)

let splice_classify_all () =
  Alcotest.check case "c1" Splice_case.C1 (Splice_case.classify (tl ()));
  Alcotest.check case "c2" Splice_case.C2 (Splice_case.classify (tl ~ci:50 ()));
  Alcotest.check case "c3" Splice_case.C3 (Splice_case.classify (tl ~ci:10 ~cc:90 ()));
  Alcotest.check case "c4" Splice_case.C4
    (Splice_case.classify (tl ~ci:10 ~cc:150 ~pi':200 ()));
  Alcotest.check case "c5" Splice_case.C5
    (Splice_case.classify (tl ~ci:10 ~cc:250 ~pi':200 ~ci':300 ()));
  Alcotest.check case "c6" Splice_case.C6
    (Splice_case.classify (tl ~ci:10 ~cc:350 ~pi':200 ~ci':300 ~cc':400 ()));
  Alcotest.check case "c7" Splice_case.C7
    (Splice_case.classify (tl ~ci:10 ~cc:450 ~pi':200 ~ci':300 ~cc':400 ~pc':500 ()));
  Alcotest.check case "c8" Splice_case.C8
    (Splice_case.classify (tl ~ci:10 ~cc:550 ~pi':200 ~ci':300 ~cc':400 ~pc':500 ()))

let splice_ties () =
  (* completion exactly at a milestone counts as after it *)
  Alcotest.check case "at failure instant -> case 4" Splice_case.C4
    (Splice_case.classify (tl ~ci:10 ~cc:100 ()));
  Alcotest.check case "at P' invocation -> case 5" Splice_case.C5
    (Splice_case.classify (tl ~ci:10 ~cc:200 ~pi':200 ()))

let splice_meta () =
  check_int "eight cases" 8 (List.length Splice_case.all);
  Alcotest.(check (list int)) "numbered 1..8" [ 1; 2; 3; 4; 5; 6; 7; 8 ]
    (List.map Splice_case.case_number Splice_case.all);
  List.iter
    (fun c -> check "described" true (String.length (Splice_case.description c) > 0))
    Splice_case.all

(* ---------------- Spawn_state ---------------- *)

let spawn_state_chain () =
  let rec walk s acc =
    match Spawn_state.next s with None -> List.rev (s :: acc) | Some s' -> walk s' (s :: acc)
  in
  Alcotest.(check (list string)) "a..g"
    [ "a"; "b"; "c"; "d"; "e"; "f"; "g" ]
    (List.map Spawn_state.label (walk Spawn_state.A []));
  check_int "seven states" 7 (List.length Spawn_state.all)

let spawn_state_labels () =
  List.iter
    (fun s ->
      Alcotest.(check (option string)) "label round trip" (Some (Spawn_state.label s))
        (Option.map Spawn_state.label (Spawn_state.of_label (Spawn_state.label s))))
    Spawn_state.all;
  check "unknown label" true (Spawn_state.of_label "z" = None)

let spawn_state_transients () =
  Alcotest.(check (list string)) "b and d transient" [ "b"; "d" ]
    (List.filter_map
       (fun s -> if Spawn_state.is_transient s then Some (Spawn_state.label s) else None)
       Spawn_state.all)

let spawn_state_pointers () =
  check "a has no pointers" true (Spawn_state.pointers Spawn_state.A = []);
  check "e has the full chain" true (List.length (Spawn_state.pointers Spawn_state.E) = 5)

(* ---------------- Vote ---------------- *)

let vote_majority_early () =
  let v = Vote.create ~replicas:3 ~equal:Int.equal in
  check_int "majority of 3" 2 (Vote.majority v);
  check "first undecided" true (Vote.add v 7 = Vote.Undecided);
  (match Vote.add v 7 with
  | Vote.Decided 7 -> ()
  | _ -> Alcotest.fail "two identical of three should decide");
  (* decision is sticky; stragglers are absorbed without being tallied *)
  match Vote.add v 9 with
  | Vote.Decided 7 -> check_int "tally frozen at decision" 2 (Vote.received v)
  | _ -> Alcotest.fail "decision not sticky"

let vote_single_replica () =
  let v = Vote.create ~replicas:1 ~equal:Int.equal in
  match Vote.add v 5 with Vote.Decided 5 -> () | _ -> Alcotest.fail "k=1 decides immediately"

let vote_unanimous_survivors () =
  let v = Vote.create ~replicas:3 ~equal:Int.equal in
  check "loss 1 undecided" true (Vote.lose v = Vote.Undecided);
  check "loss 2 undecided" true (Vote.lose v = Vote.Undecided);
  match Vote.add v 4 with
  | Vote.Decided 4 -> ()
  | _ -> Alcotest.fail "lone survivor should decide once all are accounted"

let vote_all_lost_inconclusive () =
  let v = Vote.create ~replicas:2 ~equal:Int.equal in
  ignore (Vote.lose v);
  match Vote.lose v with
  | Vote.Inconclusive -> check_int "lost" 2 (Vote.lost v)
  | _ -> Alcotest.fail "total loss must be inconclusive"

let vote_split_inconclusive () =
  let v = Vote.create ~replicas:2 ~equal:Int.equal in
  ignore (Vote.add v 1);
  match Vote.add v 2 with
  | Vote.Inconclusive -> ()
  | _ -> Alcotest.fail "1-1 split of 2 must be inconclusive"

let vote_early_impossibility () =
  let v = Vote.create ~replicas:3 ~equal:Int.equal in
  ignore (Vote.add v 1);
  ignore (Vote.add v 2);
  (* best has 1 vote, 1 outstanding: 2 = majority still reachable -> undecided *)
  check "still reachable" true (Vote.decision v = None);
  match Vote.add v 3 with
  | Vote.Inconclusive -> ()
  | _ -> Alcotest.fail "three-way split must be inconclusive"

let vote_give_up () =
  (* decided: give_up just returns the decision *)
  let v = Vote.create ~replicas:3 ~equal:Int.equal in
  ignore (Vote.add v 7);
  ignore (Vote.add v 7);
  check "decided give_up" true (Vote.give_up v = Some 7);
  (* strict plurality below majority *)
  let v = Vote.create ~replicas:5 ~equal:Int.equal in
  ignore (Vote.add v 1);
  ignore (Vote.add v 2);
  ignore (Vote.add v 2);
  check "plurality give_up" true (Vote.give_up v = Some 2);
  (* tie between distinct values carries no information *)
  let v = Vote.create ~replicas:4 ~equal:Int.equal in
  ignore (Vote.add v 1);
  ignore (Vote.add v 2);
  check "tied give_up" true (Vote.give_up v = None);
  (* nothing on the table at all *)
  let v = Vote.create ~replicas:2 ~equal:Int.equal in
  ignore (Vote.lose v);
  ignore (Vote.lose v);
  check "empty give_up" true (Vote.give_up v = None)

let vote_leader () =
  let v = Vote.create ~replicas:5 ~equal:Int.equal in
  ignore (Vote.add v 1);
  ignore (Vote.add v 2);
  ignore (Vote.add v 2);
  (match Vote.leader v with
  | Some (2, 2) -> ()
  | _ -> Alcotest.fail "plurality leader wrong");
  check "invalid replicas" true
    (try
       ignore (Vote.create ~replicas:0 ~equal:Int.equal);
       false
     with Invalid_argument _ -> true)

let suites =
  [
    ( "recovery.stamp",
      [
        Alcotest.test_case "basics" `Quick stamp_basics;
        Alcotest.test_case "ancestry" `Quick stamp_ancestry;
        Alcotest.test_case "common ancestor" `Quick stamp_common_ancestor;
        Alcotest.test_case "of_string errors" `Quick stamp_of_string_errors;
        qtest stamp_prefix_iff_ancestor;
        qtest stamp_string_round_trip;
        qtest stamp_compare_lexicographic;
        qtest stamp_child_parent_inverse;
      ] );
    ("recovery.packet", [ Alcotest.test_case "basics" `Quick packet_basics ]);
    ( "recovery.ckpt_table",
      [
        Alcotest.test_case "topmost coverage" `Quick ckpt_topmost_coverage;
        Alcotest.test_case "eviction" `Quick ckpt_eviction_by_new_ancestor;
        Alcotest.test_case "keep all" `Quick ckpt_keep_all;
        Alcotest.test_case "discharge" `Quick ckpt_discharge;
        Alcotest.test_case "deep eviction" `Quick ckpt_deep_eviction;
        Alcotest.test_case "keep-all duplicates" `Quick ckpt_keep_all_duplicates;
        Alcotest.test_case "on failure" `Quick ckpt_on_failure;
        qtest (ckpt_matches_oracle Ckpt_table.Topmost);
        qtest (ckpt_matches_oracle Ckpt_table.Keep_all);
      ] );
    ( "recovery.splice_case",
      [
        Alcotest.test_case "classify all" `Quick splice_classify_all;
        Alcotest.test_case "ties" `Quick splice_ties;
        Alcotest.test_case "meta" `Quick splice_meta;
      ] );
    ( "recovery.spawn_state",
      [
        Alcotest.test_case "chain" `Quick spawn_state_chain;
        Alcotest.test_case "labels" `Quick spawn_state_labels;
        Alcotest.test_case "transients" `Quick spawn_state_transients;
        Alcotest.test_case "pointers" `Quick spawn_state_pointers;
      ] );
    ( "recovery.vote",
      [
        Alcotest.test_case "majority early" `Quick vote_majority_early;
        Alcotest.test_case "single replica" `Quick vote_single_replica;
        Alcotest.test_case "unanimous survivors" `Quick vote_unanimous_survivors;
        Alcotest.test_case "all lost" `Quick vote_all_lost_inconclusive;
        Alcotest.test_case "split" `Quick vote_split_inconclusive;
        Alcotest.test_case "early impossibility" `Quick vote_early_impossibility;
        Alcotest.test_case "leader" `Quick vote_leader;
        Alcotest.test_case "give up" `Quick vote_give_up;
      ] );
  ]
