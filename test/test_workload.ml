(* Tests for the workload catalogue. *)

module Workload = Recflow_workload.Workload
module Value = Recflow_lang.Value

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let value = Alcotest.testable Value.pp Value.equal

let all_parse_and_evaluate () =
  List.iter
    (fun w ->
      ignore (Workload.program w);
      let v = Workload.expected w Workload.Tiny in
      check (w.Workload.name ^ " evaluates") true
        (match v with Value.Int _ -> true | _ -> false);
      check (w.Workload.name ^ " does work") true (Workload.serial_work w Workload.Tiny > 0);
      check (w.Workload.name ^ " spawns tasks") true (Workload.task_count w Workload.Tiny > 1))
    Workload.all

let known_answers () =
  Alcotest.check value "fib small" (Value.Int 144) (Workload.expected Workload.fib Workload.Small);
  Alcotest.check value "nqueens 5" (Value.Int 10)
    (Workload.expected Workload.nqueens Workload.Small);
  Alcotest.check value "nqueens 6" (Value.Int 4)
    (Workload.expected Workload.nqueens Workload.Medium);
  Alcotest.check value "map_reduce 0..63"
    (Value.Int (List.fold_left (fun acc i -> acc + (i * i)) 0 (List.init 64 Fun.id)))
    (Workload.expected Workload.map_reduce Workload.Small);
  Alcotest.check value "tak" (Value.Int 5) (Workload.expected Workload.tak Workload.Small)

let quicksort_sorts () =
  (* the checksum is position-weighted, so it detects ordering mistakes:
     recompute it from a reference sort of the same pseudo-random list *)
  let p = Workload.program Workload.quicksort in
  let xs, _ =
    Recflow_lang.Eval_serial.eval p "randlist" [ Value.Int 30; Value.Int 1 ]
  in
  let sorted = List.sort compare (Option.get (Value.to_int_list xs)) in
  let expected_checksum =
    List.fold_left (fun (i, acc) x -> (i + 1, acc + ((i + 1) * x))) (0, 0) sorted |> snd
  in
  Alcotest.check value "checksum of reference sort" (Value.Int expected_checksum)
    (Workload.expected Workload.quicksort Workload.Small)

let sizes_monotone () =
  List.iter
    (fun w ->
      check
        (w.Workload.name ^ " grows with size")
        true
        (Workload.serial_work w Workload.Small >= Workload.serial_work w Workload.Tiny))
    Workload.all

let synthetic_shape () =
  let w = Workload.synthetic ~branching:3 ~depth:2 ~grain:0 in
  (* medium = depth 2: 1 + 3 + 9 synth calls, plus one spin per leaf *)
  check_int "task count" (13 + 9) (Workload.task_count w Workload.Medium);
  Alcotest.check value "sums zeros" (Value.Int 0) (Workload.expected w Workload.Medium)

let synthetic_validation () =
  check "branching 0 rejected" true
    (try
       ignore (Workload.synthetic ~branching:0 ~depth:1 ~grain:1);
       false
     with Invalid_argument _ -> true);
  check "negative depth rejected" true
    (try
       ignore (Workload.synthetic ~branching:2 ~depth:(-1) ~grain:1);
       false
     with Invalid_argument _ -> true)

let by_name () =
  check "fib found" true (Workload.by_name "fib" <> None);
  check "missing" true (Workload.by_name "zzz" = None)

let suites =
  [
    ( "workload",
      [
        Alcotest.test_case "all parse and evaluate" `Quick all_parse_and_evaluate;
        Alcotest.test_case "known answers" `Quick known_answers;
        Alcotest.test_case "quicksort sorts" `Quick quicksort_sorts;
        Alcotest.test_case "sizes monotone" `Quick sizes_monotone;
        Alcotest.test_case "synthetic shape" `Quick synthetic_shape;
        Alcotest.test_case "synthetic validation" `Quick synthetic_validation;
        Alcotest.test_case "by name" `Quick by_name;
      ] );
  ]
