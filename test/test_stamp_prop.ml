(* Property suite for the packed level-stamp representation (§3.1).

   The reference implementation here is the original list-of-digits one:
   every operation is re-derived from first principles on plain [int list]
   values (forward order, root first) and cross-checked against the packed
   [Stamp.t] on randomized pairs.  Pairs are generated with a shared-prefix
   bias so the ancestor/common-prefix branches are exercised, not just the
   unrelated fast path. *)

module Stamp = Recflow_recovery.Stamp

let qtest = QCheck_alcotest.to_alcotest

(* ---------------- list-based oracle ---------------- *)

module Oracle = struct
  type t = int list (* forward order, root first *)

  let rec is_prefix a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: a', y :: b' -> x = y && is_prefix a' b'

  let is_ancestor a b = List.length a < List.length b && is_prefix a b

  let compare (a : t) (b : t) = Stdlib.compare a b

  let rec common_prefix a b =
    match (a, b) with
    | x :: a', y :: b' when x = y -> x :: common_prefix a' b'
    | _ -> []

  let hash (a : t) = Hashtbl.hash a

  let to_string = function
    | [] -> "\xce\xb5"
    | ds -> String.concat "." (List.map string_of_int ds)
end

(* ---------------- generators ---------------- *)

(* Mostly realistic fan-out-sized digits, with an occasional digit large
   enough (> 255) to force the packed representation's spill layout, so
   every property also covers the spill and mixed packed/spill paths. *)
let gen_digit =
  QCheck.Gen.(frequency [ (9, int_bound 5); (1, map (fun d -> 250 + d) (int_bound 20)) ])

let gen_digits =
  QCheck.Gen.(
    int_bound 20 >>= fun len ->
    list_size (return len) gen_digit)

(* A pair that shares a prefix with probability ~2/3: either [b] extends
   [a], or both extend a common stem, or they are independent. *)
let gen_pair =
  QCheck.Gen.(
    gen_digits >>= fun a ->
    oneof
      [
        (gen_digits >>= fun ext -> return (a, a @ ext));
        ( gen_digits >>= fun b' ->
          gen_digits >>= fun c -> return (a @ b', a @ c) );
        (gen_digits >>= fun b -> return (a, b));
      ])

let arb_digits = QCheck.make ~print:Oracle.to_string gen_digits

let arb_pair =
  QCheck.make
    ~print:(fun (a, b) -> Oracle.to_string a ^ " / " ^ Oracle.to_string b)
    gen_pair

let count = 2000

(* ---------------- properties ---------------- *)

let norm c = Stdlib.compare c 0

let prop_roundtrip =
  QCheck.Test.make ~count ~name:"of_digits/digits round-trip" arb_digits (fun ds ->
      Stamp.digits (Stamp.of_digits ds) = ds)

let prop_child_digits =
  QCheck.Test.make ~count ~name:"child appends a digit" arb_digits (fun ds ->
      match List.rev ds with
      | [] -> Stamp.equal (Stamp.of_digits []) Stamp.root
      | last :: rev_init ->
        let parent = Stamp.of_digits (List.rev rev_init) in
        Stamp.equal (Stamp.child parent last) (Stamp.of_digits ds))

let prop_depth =
  QCheck.Test.make ~count ~name:"depth = digit count" arb_digits (fun ds ->
      Stamp.depth (Stamp.of_digits ds) = List.length ds)

let prop_is_ancestor =
  QCheck.Test.make ~count ~name:"is_ancestor matches prefix oracle" arb_pair (fun (a, b) ->
      Stamp.is_ancestor (Stamp.of_digits a) (Stamp.of_digits b) = Oracle.is_ancestor a b)

let prop_compare =
  QCheck.Test.make ~count ~name:"compare matches list compare" arb_pair (fun (a, b) ->
      norm (Stamp.compare (Stamp.of_digits a) (Stamp.of_digits b)) = norm (Oracle.compare a b))

let prop_equal =
  QCheck.Test.make ~count ~name:"equal iff same digits" arb_pair (fun (a, b) ->
      Stamp.equal (Stamp.of_digits a) (Stamp.of_digits b) = (a = b))

let prop_common_ancestor =
  QCheck.Test.make ~count ~name:"common_ancestor is longest common prefix" arb_pair
    (fun (a, b) ->
      Stamp.digits (Stamp.common_ancestor (Stamp.of_digits a) (Stamp.of_digits b))
      = Oracle.common_prefix a b)

let prop_hash =
  QCheck.Test.make ~count ~name:"hash matches Hashtbl.hash of digit list" arb_digits
    (fun ds -> Stamp.hash (Stamp.of_digits ds) = Oracle.hash ds)

let prop_hash_consistent =
  QCheck.Test.make ~count ~name:"equal stamps hash equal (child-built vs of_digits)"
    arb_digits (fun ds ->
      let built = List.fold_left Stamp.child Stamp.root ds in
      Stamp.hash built = Stamp.hash (Stamp.of_digits ds)
      && Stamp.equal built (Stamp.of_digits ds))

let prop_string_roundtrip =
  QCheck.Test.make ~count ~name:"of_string (to_string s) = Ok s" arb_digits (fun ds ->
      let s = Stamp.of_digits ds in
      Stamp.to_string s = Oracle.to_string ds
      && match Stamp.of_string (Stamp.to_string s) with
         | Ok s' -> Stamp.equal s s'
         | Error _ -> false)

let prop_max_digit =
  QCheck.Test.make ~count ~name:"max_digit matches fold" arb_digits (fun ds ->
      Stamp.max_digit (Stamp.of_digits ds)
      = (match ds with [] -> None | _ -> Some (List.fold_left max 0 ds)))

let prop_parent =
  QCheck.Test.make ~count ~name:"parent drops the last digit" arb_digits (fun ds ->
      match (Stamp.parent (Stamp.of_digits ds), List.rev ds) with
      | None, [] -> true
      | Some p, _ :: rev_init -> Stamp.digits p = List.rev rev_init
      | _ -> false)

let suites =
  [
    ( "stamp-prop",
      List.map qtest
        [
          prop_roundtrip; prop_child_digits; prop_depth; prop_is_ancestor; prop_compare;
          prop_equal; prop_common_ancestor; prop_hash; prop_hash_consistent;
          prop_string_roundtrip; prop_max_digit; prop_parent;
        ] );
  ]
