(* Tests for the event-sink abstraction and the ring-backed trace buffer. *)

module Trace = Recflow_sim.Trace
module Sink = Recflow_obs_core.Sink
module Json = Recflow_obs_core.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- Sink.Ring ---------------- *)

let ring_basic () =
  let r = Sink.Ring.create ~capacity:4 in
  check_int "empty length" 0 (Sink.Ring.length r);
  check_int "empty total" 0 (Sink.Ring.total r);
  List.iter (Sink.Ring.push r) [ 1; 2; 3 ];
  check "order is oldest first" true (Sink.Ring.to_list r = [ 1; 2; 3 ]);
  check_int "capacity" 4 (Sink.Ring.capacity r)

let ring_eviction_wraparound () =
  let r = Sink.Ring.create ~capacity:3 in
  for i = 1 to 10 do
    Sink.Ring.push r i
  done;
  check_int "total counts evicted values" 10 (Sink.Ring.total r);
  check_int "length capped at capacity" 3 (Sink.Ring.length r);
  check "retains the newest, oldest first" true (Sink.Ring.to_list r = [ 8; 9; 10 ]);
  (* keep wrapping: the window slides *)
  Sink.Ring.push r 11;
  check "window slides" true (Sink.Ring.to_list r = [ 9; 10; 11 ])

let ring_clear_keeps_total () =
  let r = Sink.Ring.create ~capacity:2 in
  List.iter (Sink.Ring.push r) [ 1; 2; 3 ];
  Sink.Ring.clear r;
  check_int "cleared" 0 (Sink.Ring.length r);
  check_int "total is monotone" 3 (Sink.Ring.total r);
  Sink.Ring.push r 4;
  check "usable after clear" true (Sink.Ring.to_list r = [ 4 ]);
  check_int "total keeps counting" 4 (Sink.Ring.total r)

let ring_invalid_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Sink.Ring.create: capacity must be positive") (fun () ->
      ignore (Sink.Ring.create ~capacity:0))

let ring_as_sink () =
  let r = Sink.Ring.create ~capacity:8 in
  let s = Sink.Ring.sink r in
  List.iter (Sink.emit s) [ "a"; "b" ];
  check "sink pushes into the ring" true (Sink.Ring.to_list r = [ "a"; "b" ]);
  check_int "emitted" 2 (Sink.emitted s)

(* ---------------- Sink variants ---------------- *)

let sink_null () =
  let s = Sink.null () in
  List.iter (Sink.emit s) [ 1; 2; 3 ];
  check_int "null still counts" 3 (Sink.emitted s);
  Sink.flush s;
  Sink.close s

let sink_of_fun_and_close () =
  let got = ref [] in
  let closed = ref 0 in
  let s = Sink.of_fun ~close:(fun () -> incr closed) (fun x -> got := x :: !got) in
  List.iter (Sink.emit s) [ 1; 2 ];
  Sink.close s;
  Sink.close s;
  (* closed sinks swallow emits silently *)
  Sink.emit s 3;
  check "values delivered in order" true (List.rev !got = [ 1; 2 ]);
  check_int "close is idempotent" 1 !closed;
  check_int "emit after close is a no-op" 2 (Sink.emitted s)

let sink_tee () =
  let a = ref [] and b = ref [] in
  let s = Sink.tee (Sink.of_fun (fun x -> a := x :: !a)) (Sink.of_fun (fun x -> b := x :: !b)) in
  List.iter (Sink.emit s) [ 1; 2; 3 ];
  check "both sides see everything" true (List.rev !a = [ 1; 2; 3 ] && List.rev !b = [ 1; 2; 3 ])

let sink_file_jsonl () =
  let path = Filename.temp_file "recflow_sink" ".jsonl" in
  let s = Sink.file ~render:string_of_int path in
  List.iter (Sink.emit s) [ 10; 20; 30 ];
  Sink.close s;
  let ic = open_in path in
  let lines = In_channel.input_lines ic in
  close_in ic;
  Sys.remove path;
  check "one line per value" true (lines = [ "10"; "20"; "30" ])

(* ---------------- Trace on top of the ring ---------------- *)

let log t time msg = Trace.log t ~time ~level:Trace.Info ~tag:"test" msg

let trace_count_vs_records () =
  let t = Trace.create ~capacity:5 () in
  for i = 1 to 12 do
    log t i (Printf.sprintf "r%d" i)
  done;
  check_int "count includes evicted records" 12 (Trace.count t);
  check_int "records is capped at capacity" 5 (List.length (Trace.records t));
  check "newest retained, oldest first" true
    (List.map (fun (r : Trace.record) -> r.Trace.message) (Trace.records t)
    = [ "r8"; "r9"; "r10"; "r11"; "r12" ])

let trace_find_after_eviction () =
  let t = Trace.create ~capacity:3 () in
  Trace.log t ~time:1 ~level:Trace.Info ~tag:"wanted" "early";
  for i = 2 to 5 do
    log t i "filler"
  done;
  Trace.log t ~time:6 ~level:Trace.Warn ~tag:"wanted" "late";
  check "evicted records are not found" true
    (List.map (fun (r : Trace.record) -> r.Trace.message) (Trace.find t ~tag:"wanted")
    = [ "late" ]);
  Trace.clear t;
  check_int "find after clear" 0 (List.length (Trace.find t ~tag:"wanted"));
  check_int "count survives clear" 6 (Trace.count t)

let trace_attach_sink () =
  let t = Trace.create ~capacity:2 () in
  let seen = ref [] in
  Trace.attach_sink t (Sink.of_fun (fun (r : Trace.record) -> seen := r.Trace.message :: !seen));
  let seen2 = ref 0 in
  (* a second attach tees rather than replacing *)
  Trace.attach_sink t (Sink.of_fun (fun _ -> incr seen2));
  for i = 1 to 4 do
    log t i (Printf.sprintf "m%d" i)
  done;
  check "sink saw every record, even evicted ones" true
    (List.rev !seen = [ "m1"; "m2"; "m3"; "m4" ]);
  check_int "teed sink too" 4 !seen2;
  check_int "ring still capped" 2 (List.length (Trace.records t))

let trace_json_line () =
  let t = Trace.create () in
  Trace.log t ~time:42 ~level:Trace.Error ~tag:"node" "bad \"thing\"";
  let r = List.hd (Trace.records t) in
  match Json.parse (Trace.to_json_line r) with
  | Error e -> Alcotest.failf "unparsable line: %s" e
  | Ok j ->
    let field name = Json.member name j in
    check "ts" true (Option.bind (field "ts") Json.int = Some 42);
    check "level" true (Option.bind (field "level") Json.str = Some "ERROR");
    check "msg round-trips escaping" true
      (Option.bind (field "msg") Json.str = Some "bad \"thing\"")

let suites =
  [
    ( "obs.ring",
      [
        Alcotest.test_case "basics" `Quick ring_basic;
        Alcotest.test_case "eviction wraparound" `Quick ring_eviction_wraparound;
        Alcotest.test_case "clear keeps total" `Quick ring_clear_keeps_total;
        Alcotest.test_case "invalid capacity" `Quick ring_invalid_capacity;
        Alcotest.test_case "as sink" `Quick ring_as_sink;
      ] );
    ( "obs.sink",
      [
        Alcotest.test_case "null" `Quick sink_null;
        Alcotest.test_case "of_fun + close" `Quick sink_of_fun_and_close;
        Alcotest.test_case "tee" `Quick sink_tee;
        Alcotest.test_case "file jsonl" `Quick sink_file_jsonl;
      ] );
    ( "sim.trace_ring",
      [
        Alcotest.test_case "count vs records" `Quick trace_count_vs_records;
        Alcotest.test_case "find after eviction" `Quick trace_find_after_eviction;
        Alcotest.test_case "attach sink" `Quick trace_attach_sink;
        Alcotest.test_case "json line" `Quick trace_json_line;
      ] );
  ]
