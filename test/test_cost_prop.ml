(* Property suite for the static cost analysis (ROADMAP item 5).

   Soundness oracle: a counting serial evaluator (a faithful mirror of
   [Eval_serial], extended to track the maximum call depth and the total
   activation count).  For random generated programs and for every shipped
   workload, whenever the analysis claims a finite entry depth or
   activation bound, the measured run must stay within it — no opt-outs.

   The generators are template families chosen to exercise each verdict
   path: guarded countdowns with random fan-out/steps (Bounded via a
   decreasing parameter), increasing counters under a guard ceiling
   (Bounded via a negated measure), list walks (Bounded via a size
   measure) and mutual two-function cycles (Bounded via the summed
   measure). *)

open Recflow_analysis
module Ast = Recflow_lang.Ast
module Builtins = Recflow_lang.Builtins
module Program = Recflow_lang.Program
module Value = Recflow_lang.Value
module Workload = Recflow_workload.Workload

let qtest = QCheck_alcotest.to_alcotest

(* ---------------- counting evaluator ---------------- *)

exception Stuck of string

(* (max call depth below the entry, total activations incl. the entry);
   mirrors Eval_serial's strict semantics via the same Builtins table *)
let measure program fname args =
  let maxd = ref 0 and calls = ref 1 and fuel = ref 5_000_000 in
  let tick () =
    decr fuel;
    if !fuel <= 0 then raise (Stuck "fuel")
  in
  let rec eval_in depth env expr =
    tick ();
    match expr with
    | Ast.Int n -> Value.Int n
    | Ast.Bool b -> Value.Bool b
    | Ast.Nil -> Value.Nil
    | Ast.Var x -> (
      match List.assoc_opt x env with Some v -> v | None -> raise (Stuck ("unbound " ^ x)))
    | Ast.Prim (p, args) -> (
      let vals = Array.of_list (List.map (eval_in depth env) args) in
      match Builtins.apply p vals with Ok v -> v | Error msg -> raise (Stuck msg))
    | Ast.If (c, th, el) -> (
      match eval_in depth env c with
      | Value.Bool true -> eval_in depth env th
      | Value.Bool false -> eval_in depth env el
      | _ -> raise (Stuck "if"))
    | Ast.And (a, b) -> (
      match eval_in depth env a with
      | Value.Bool false -> Value.Bool false
      | Value.Bool true -> eval_in depth env b
      | _ -> raise (Stuck "&&"))
    | Ast.Or (a, b) -> (
      match eval_in depth env a with
      | Value.Bool true -> Value.Bool true
      | Value.Bool false -> eval_in depth env b
      | _ -> raise (Stuck "||"))
    | Ast.Let (x, bound, body) ->
      let v = eval_in depth env bound in
      eval_in depth ((x, v) :: env) body
    | Ast.Call (f, args) ->
      let vals = List.map (eval_in depth env) args in
      incr calls;
      if depth + 1 > !maxd then maxd := depth + 1;
      apply (depth + 1) f vals
  and apply depth f vals =
    match Program.find program f with
    | None -> raise (Stuck ("unknown " ^ f))
    | Some def -> eval_in depth (List.combine def.Ast.params vals) def.Ast.body
  in
  ignore (apply 0 fname args);
  (!maxd, !calls)

(* ---------------- the property ---------------- *)

(* analyze [src], run [entry args] under the oracle, and demand the
   observed depth/activations respect any finite static bound *)
let sound_for ~src ~entry ~args =
  let r = Check.check_source ~entries:[ entry ] src in
  match r.Check.cost with
  | None -> QCheck.Test.fail_reportf "no cost analysis for:\n%s" src
  | Some cost ->
    let eb = Cost.entry_bounds cost ~entry ~args in
    let d, n = measure (Option.get r.Check.program) entry args in
    (match eb.Cost.depth with
    | Some bound when d > bound ->
      QCheck.Test.fail_reportf "depth %d > static bound %d for:\n%s" d bound src
    | _ -> ());
    (match Cost.activation_bound eb with
    | Some bound when n > bound ->
      QCheck.Test.fail_reportf "%d activations > static bound %d for:\n%s" n bound src
    | _ -> ());
    true

(* ---------------- generators ---------------- *)

let gen_countdown =
  QCheck.Gen.(
    let* guard_k = int_range 0 4 in
    let* nrec = int_range 1 3 in
    let* steps = list_repeat nrec (int_range 1 3) in
    let* leaf = int_range (-5) 5 in
    let* helper = bool in
    let* arg = int_range 0 14 in
    let calls =
      List.map (fun s -> Printf.sprintf "main(n - %d)" s) steps
      @ (if helper then [ "aux(n)" ] else [])
    in
    let src =
      Printf.sprintf "def main(n) = if n > %d then %s else %d%s" guard_k
        (String.concat " + " calls) leaf
        (if helper then "\ndef aux(x) = x * x" else "")
    in
    return (src, [ Value.Int arg ]))

let gen_ceiling =
  QCheck.Gen.(
    let* ceil = int_range 1 9 in
    let* step = int_range 1 2 in
    let* arg = int_range (-3) 9 in
    let src =
      Printf.sprintf "def main(n) = if n < %d then main(n + %d) else n" ceil step
    in
    return (src, [ Value.Int (min arg ceil) ]))

let gen_list_walk =
  QCheck.Gen.(
    let* len = int_range 0 12 in
    let* acc = bool in
    let src =
      if acc then
        "def main(xs) = if isnil(xs) then 0 else head(xs) + main(tail(xs))"
      else "def main(xs) = if isnil(xs) then 0 else 1 + main(tail(xs))"
    in
    let rec mk n = if n = 0 then Value.Nil else Value.Cons (Value.Int n, mk (n - 1)) in
    return (src, [ mk len ]))

let gen_mutual =
  QCheck.Gen.(
    let* s1 = int_range 1 2 in
    let* s2 = int_range 1 2 in
    let* arg = int_range 0 10 in
    let src =
      Printf.sprintf
        "def main(n) = if n > 0 then aux(n - %d) else 0\n\
         def aux(m) = if m > 0 then main(m - %d) + main(m - %d) else 1"
        s1 s2 (s2 + 1)
    in
    return (src, [ Value.Int arg ]))

let arb gen =
  QCheck.make ~print:(fun (src, args) ->
      Printf.sprintf "%s\n-- args: %s" src
        (String.concat ", " (List.map Value.to_string args)))
    gen

let prop name gen =
  QCheck.Test.make ~count:150 ~name (arb gen) (fun (src, args) ->
      sound_for ~src ~entry:"main" ~args)

(* ---------------- workload cross-check ---------------- *)

let workload_bounds () =
  let sizes = [ Workload.Tiny; Workload.Small ] in
  List.iter
    (fun (w : Workload.t) ->
      let r = Check.check_source ~entries:[ w.Workload.entry ] w.Workload.source in
      let cost = Option.get r.Check.cost in
      List.iter
        (fun size ->
          let args = w.Workload.args size in
          let eb = Cost.entry_bounds cost ~entry:w.Workload.entry ~args in
          let d, n = measure (Workload.program w) w.Workload.entry args in
          (match eb.Cost.depth with
          | Some bound when d > bound ->
            Alcotest.failf "%s: depth %d > static bound %d" w.Workload.name d bound
          | _ -> ());
          match Cost.activation_bound eb with
          | Some bound when n > bound ->
            Alcotest.failf "%s: %d activations > static bound %d" w.Workload.name n bound
          | _ -> ())
        sizes)
    (Workload.all
    @ [ Workload.synthetic ~branching:2 ~depth:4 ~grain:3;
        Workload.synthetic ~branching:3 ~depth:3 ~grain:5 ])

let suites =
  [
    ( "analysis.cost_prop",
      [
        qtest (prop "countdown programs stay within bounds" gen_countdown);
        qtest (prop "guard-ceiling counters stay within bounds" gen_ceiling);
        qtest (prop "list walks stay within bounds" gen_list_walk);
        qtest (prop "mutual cycles stay within bounds" gen_mutual);
        Alcotest.test_case "workloads stay within bounds" `Quick workload_bounds;
      ] );
  ]
