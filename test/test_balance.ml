(* Tests for placement policies. *)

module Policy = Recflow_balance.Policy
module Router = Recflow_net.Router
module Topology = Recflow_net.Topology

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let view ?(pressure = fun _ -> 0) router = { Policy.router; pressure }

let full8 () = Router.create (Topology.Full 8)

let dynamic_stays_alive () =
  let router = full8 () in
  Router.kill router 3;
  Router.kill router 5;
  List.iter
    (fun spec ->
      let p = Policy.create spec in
      for key = 0 to 50 do
        let d = Policy.choose p (view router) ~origin:0 ~key in
        check (Policy.spec_to_string spec ^ " avoids dead") true (d <> 3 && d <> 5);
        check "in range" true (d >= 0 && d < 8)
      done)
    [ Policy.Gradient { weight = 2 }; Policy.Random; Policy.Round_robin;
      Policy.Neighborhood { radius = 1 } ]

let static_ignores_liveness () =
  let router = full8 () in
  let p = Policy.create Policy.Static_hash in
  (* same key -> same node, dead or not *)
  let d1 = Policy.choose p (view router) ~origin:0 ~key:123 in
  Router.kill router d1;
  let d2 = Policy.choose p (view router) ~origin:4 ~key:123 in
  check_int "static placement is a pure function of the key" d1 d2

let round_robin_cycles () =
  let router = Router.create (Topology.Full 3) in
  let p = Policy.create Policy.Round_robin in
  let picks = List.init 6 (fun key -> Policy.choose p (view router) ~origin:0 ~key) in
  Alcotest.(check (list int)) "cycle" [ 0; 1; 2; 0; 1; 2 ] picks

let gradient_prefers_idle () =
  let router = full8 () in
  (* node 6 is idle, everyone else heavily loaded *)
  let pressure n = if n = 6 then 0 else 100 in
  let p = Policy.create (Policy.Gradient { weight = 2 }) in
  check_int "flows to the idle node" 6 (Policy.choose p (view ~pressure router) ~origin:0 ~key:1)

let gradient_weight_keeps_local () =
  let router = Router.create (Topology.Ring 8) in
  (* origin slightly loaded; distance weight dominates *)
  let pressure n = if n = 0 then 3 else 0 in
  let heavy = Policy.create (Policy.Gradient { weight = 100 }) in
  check_int "heavy weight stays local" 0
    (Policy.choose heavy (view ~pressure router) ~origin:0 ~key:1);
  let light = Policy.create (Policy.Gradient { weight = 0 }) in
  check "zero weight escapes" true
    (Policy.choose light (view ~pressure router) ~origin:0 ~key:1 <> 0)

let neighborhood_radius () =
  let router = Router.create (Topology.Ring 8) in
  let p = Policy.create (Policy.Neighborhood { radius = 1 }) in
  for key = 0 to 20 do
    let d = Policy.choose p (view router) ~origin:4 ~key in
    check "within 1 hop of origin" true (List.mem d [ 3; 4; 5 ])
  done

let neighborhood_dead_ball_falls_back () =
  let router = Router.create (Topology.Ring 8) in
  Router.kill router 3;
  Router.kill router 4;
  Router.kill router 5;
  let p = Policy.create (Policy.Neighborhood { radius = 1 }) in
  (* origin 4 is dead itself; ball empty -> nearest live node *)
  let d = Policy.choose p (view router) ~origin:4 ~key:0 in
  check "falls back to a live node" true (Router.alive router d)

let no_live_node_raises () =
  let router = Router.create (Topology.Full 2) in
  Router.kill router 0;
  Router.kill router 1;
  let p = Policy.create Policy.Random in
  check "raises with no live node" true
    (try
       ignore (Policy.choose p (view router) ~origin:0 ~key:0);
       false
     with Invalid_argument _ -> true)

let spec_strings () =
  List.iter
    (fun spec ->
      match Policy.spec_of_string (Policy.spec_to_string spec) with
      | Ok s -> check "round trip" true (s = spec)
      | Error e -> Alcotest.fail e)
    [ Policy.Gradient { weight = 3 }; Policy.Random; Policy.Round_robin; Policy.Static_hash;
      Policy.Neighborhood { radius = 2 }; Policy.Gradient_distributed { threshold = 2 } ];
  (match Policy.spec_of_string "gradient" with
  | Ok (Policy.Gradient _) -> ()
  | _ -> Alcotest.fail "bare gradient");
  match Policy.spec_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus accepted"

let is_static () =
  check "static" true (Policy.is_static (Policy.create Policy.Static_hash));
  check "gradient not static" false (Policy.is_static (Policy.create Policy.Random))

let deterministic_given_seed () =
  let run () =
    let router = full8 () in
    let p = Policy.create ~seed:9 Policy.Random in
    List.init 20 (fun key -> Policy.choose p (view router) ~origin:0 ~key)
  in
  Alcotest.(check (list int)) "same seed same picks" (run ()) (run ())

let suites =
  [
    ( "balance.policy",
      [
        Alcotest.test_case "dynamic stays alive" `Quick dynamic_stays_alive;
        Alcotest.test_case "static ignores liveness" `Quick static_ignores_liveness;
        Alcotest.test_case "round robin cycles" `Quick round_robin_cycles;
        Alcotest.test_case "gradient prefers idle" `Quick gradient_prefers_idle;
        Alcotest.test_case "gradient weight" `Quick gradient_weight_keeps_local;
        Alcotest.test_case "neighborhood radius" `Quick neighborhood_radius;
        Alcotest.test_case "neighborhood fallback" `Quick neighborhood_dead_ball_falls_back;
        Alcotest.test_case "no live node" `Quick no_live_node_raises;
        Alcotest.test_case "spec strings" `Quick spec_strings;
        Alcotest.test_case "is_static" `Quick is_static;
        Alcotest.test_case "deterministic" `Quick deterministic_given_seed;
      ] );
  ]
