(* Tests for the domain pool and the parallel experiment harness: ordering,
   exception propagation, and the determinism contract — identical results
   at any pool width. *)

module Pool = Recflow_parallel.Pool
module Deque = Recflow_parallel.Deque
module Harness = Recflow_experiments.Harness
module Report = Recflow_experiments.Report
module Workload = Recflow_workload.Workload
module Rng = Recflow_sim.Rng
module Collect = Recflow_obs_core.Collect
module Counter = Recflow_stats.Counter

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_pool ~jobs f =
  let p = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* Run [f] with the default pool set to [jobs], restoring width 1 after so
   tests do not leak domains into each other. *)
let with_default_jobs jobs f =
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs 1) f

(* ---------------- Deque ---------------- *)

let deque_sequential_grow () =
  (* Push far past the initial ring capacity, then drain from both ends:
     every element must come back exactly once. *)
  let q = Deque.create () in
  let n = 1000 in
  for i = 0 to n - 1 do
    Deque.push q i
  done;
  check_int "size after pushes" n (Deque.size q);
  let seen = Array.make n 0 in
  for _ = 1 to n / 2 do
    match Deque.steal q with
    | Some v -> seen.(v) <- seen.(v) + 1
    | None -> Alcotest.fail "steal returned None on a non-empty deque"
  done;
  let rec drain () =
    match Deque.pop q with
    | Some v ->
      seen.(v) <- seen.(v) + 1;
      drain ()
    | None -> ()
  in
  drain ();
  check "each element exactly once" true (Array.for_all (( = ) 1) seen)

let deque_steal_grow_race () =
  (* Regression for a memory-safety race: [steal] used to read [q.buf]
     twice — once for the mask, once for the element — so a concurrent
     [grow] (which swaps the buffer) could pair the new array with the old
     mask (wrong slot, garbage value) or the old array with the new mask
     (out of bounds).  Thief domains hammer [steal] while the owner pushes
     enough to double the ring many times over; heap-allocated payloads
     [(i, 2 * i + 1)] make a wrong-slot read detectable as a value-set
     violation rather than only as a segfault. *)
  let q : (int * int) Deque.t = Deque.create () in
  let n = 100_000 in
  let thieves = 2 in
  let stop = Atomic.make false in
  let stealers =
    List.init thieves (fun _ ->
        Domain.spawn (fun () ->
            let acc = ref [] in
            let rec go () =
              match Deque.steal q with
              | Some v ->
                acc := v :: !acc;
                go ()
              | None ->
                if not (Atomic.get stop) then begin
                  Domain.cpu_relax ();
                  go ()
                end
            in
            go ();
            !acc))
  in
  let popped = ref [] in
  for i = 0 to n - 1 do
    (* bursts of pushes grow the ring under the thieves' feet; the
       occasional pop keeps the owner's bottom end busy too *)
    Deque.push q (i, (2 * i) + 1);
    if i mod 7 = 0 then
      match Deque.pop q with Some v -> popped := v :: !popped | None -> ()
  done;
  let rec drain () =
    match Deque.pop q with
    | Some v ->
      popped := v :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  let stolen = List.concat_map Domain.join stealers in
  let all = List.rev_append !popped stolen in
  check_int "no element lost or duplicated" n (List.length all);
  check "every payload intact" true
    (List.for_all (fun (i, w) -> i >= 0 && i < n && w = (2 * i) + 1) all);
  let module S = Set.Make (Int) in
  check_int "all distinct" n (S.cardinal (S.of_list (List.map fst all)))

(* ---------------- Pool ---------------- *)

let pool_map_ordering () =
  List.iter
    (fun jobs ->
      with_pool ~jobs (fun p ->
          let xs = List.init 100 Fun.id in
          let ys = Pool.map p (fun x -> x * x) xs in
          Alcotest.(check (list int))
            (Printf.sprintf "submission order at jobs=%d" jobs)
            (List.map (fun x -> x * x) xs)
            ys))
    [ 1; 2; 4 ]

let pool_map_empty_and_singleton () =
  with_pool ~jobs:4 (fun p ->
      Alcotest.(check (list int)) "empty" [] (Pool.map p (fun x -> x) []);
      Alcotest.(check (list int)) "singleton" [ 7 ] (Pool.map p (fun x -> x + 1) [ 6 ]))

exception Boom of int

let pool_exception_propagates () =
  List.iter
    (fun jobs ->
      with_pool ~jobs (fun p ->
          check
            (Printf.sprintf "raises at jobs=%d" jobs)
            true
            (try
               ignore (Pool.map p (fun x -> if x = 3 then raise (Boom x) else x) [ 1; 2; 3; 4 ]);
               false
             with Boom 3 -> true)))
    [ 1; 4 ]

let pool_lowest_index_exception () =
  (* Several tasks fail; the batch must settle and re-raise the failure of
     the lowest submission index, not whichever finished first. *)
  with_pool ~jobs:4 (fun p ->
      check "lowest index wins" true
        (try
           ignore
             (Pool.map p
                (fun x -> if x mod 2 = 0 then raise (Boom x) else x)
                [ 1; 2; 3; 4; 5; 6 ]);
           false
         with Boom 2 -> true))

let pool_survives_exception () =
  (* A failed batch must not poison the pool for later batches. *)
  with_pool ~jobs:2 (fun p ->
      (try ignore (Pool.map p (fun _ -> raise (Boom 0)) [ 1; 2 ]) with Boom _ -> ());
      Alcotest.(check (list int)) "next batch fine" [ 2; 4 ] (Pool.map p (fun x -> 2 * x) [ 1; 2 ]))

let pool_nested_map () =
  (* Nested submissions (an outer task fanning out an inner sweep, as
     exp_salvage does) must not deadlock even when the pool is narrower
     than the outer batch. *)
  with_pool ~jobs:2 (fun p ->
      let got =
        Pool.map p (fun i -> List.fold_left ( + ) 0 (Pool.map p (fun j -> (10 * i) + j) [ 1; 2; 3 ]))
          [ 1; 2; 3; 4 ]
      in
      Alcotest.(check (list int)) "nested sums" [ 36; 66; 96; 126 ] got)

let pool_jobs_clamped () =
  with_pool ~jobs:1 (fun p -> check_int "jobs 1" 1 (Pool.jobs p));
  check "jobs 0 rejected" true
    (try
       ignore (Pool.create ~jobs:0 ());
       false
     with Invalid_argument _ -> true)

let pool_shutdown_idempotent () =
  let p = Pool.create ~jobs:3 () in
  Pool.shutdown p;
  Pool.shutdown p;
  (* A map on a shut-down pool used to fall back to running submitter-only,
     silently masquerading as a parallel sweep; it must refuse instead. *)
  check "map after shutdown refused" true
    (try
       ignore (Pool.map p (fun x -> x * x) [ 1; 2; 3 ]);
       false
     with Invalid_argument _ -> true)

let pool_shutdown_drains_in_flight_map () =
  (* Regression: workers used to exit the moment [closed] was set, without
     draining — a shutdown racing an in-flight map could strand its queued
     splits and deadlock the submitter.  Now shutdown must wait for the
     admitted batch: the submitter gets its complete result and shutdown
     returns only after.  Task 0 parks until the main domain has started
     the shutdown, guaranteeing the close flip lands mid-batch. *)
  let p = Pool.create ~jobs:3 () in
  let started = Atomic.make false in
  let release = Atomic.make false in
  let n = 64 in
  let submitter =
    Domain.spawn (fun () ->
        Pool.map p
          (fun i ->
            if i = 0 then begin
              Atomic.set started true;
              while not (Atomic.get release) do
                Domain.cpu_relax ()
              done
            end;
            i * i)
          (List.init n Fun.id))
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  let closer = Domain.spawn (fun () -> Pool.shutdown p) in
  (* give the shutdown a moment to flip [closed] while task 0 still parks *)
  for _ = 1 to 10_000 do
    Domain.cpu_relax ()
  done;
  Atomic.set release true;
  Alcotest.(check (list int))
    "racing map completed in full" (List.init n (fun i -> i * i)) (Domain.join submitter);
  Domain.join closer;
  check "map after the drained shutdown refused" true
    (try
       ignore (Pool.map p (fun x -> x) [ 1; 2 ]);
       false
     with Invalid_argument _ -> true)

let cross_pool_nested_map () =
  (* A worker of pool A submitting a batch to pool B claims B's deque 0
     and temporarily rebinds the domain's pool context; the release must
     RESTORE the worker's original context, not erase it (a clobber
     silently demoted all its later pushes in A to the mutexed injection
     queue).  Exercised for correctness here: repeated rounds of A-tasks
     each fanning out through B, with enough elements per round that the
     outer tasks keep splitting after their inner maps return. *)
  with_pool ~jobs:2 (fun a ->
      with_pool ~jobs:2 (fun b ->
          for _round = 1 to 3 do
            let got =
              Pool.map a
                (fun i ->
                  let inner = Pool.map b (fun j -> (100 * i) + j) [ 1; 2; 3 ] in
                  List.fold_left ( + ) 0 inner)
                (List.init 40 Fun.id)
            in
            let expect = List.init 40 (fun i -> (300 * i) + 6) in
            Alcotest.(check (list int)) "cross-pool nested sums" expect got
          done))

let pool_run_thunks () =
  with_pool ~jobs:2 (fun p ->
      Alcotest.(check (list int)) "run" [ 10; 20 ] (Pool.run p [ (fun () -> 10); (fun () -> 20) ]))

let set_default_jobs_refused_in_flight () =
  (* Swapping the default pool while a map is running on it would tear the
     pool out from under its submitter.  A raw domain drives a map through
     the default pool and parks inside a task until the main domain has
     observed the refusal. *)
  with_default_jobs 2 (fun () ->
      let started = Atomic.make false in
      let release = Atomic.make false in
      let submitter =
        Domain.spawn (fun () ->
            Pool.map (Pool.default ())
              (fun i ->
                if i = 0 then begin
                  Atomic.set started true;
                  while not (Atomic.get release) do
                    Domain.cpu_relax ()
                  done
                end;
                i)
              [ 0; 1; 2; 3 ])
      in
      while not (Atomic.get started) do
        Domain.cpu_relax ()
      done;
      let refused =
        try
          Pool.set_default_jobs 3;
          false
        with Invalid_argument _ -> true
      in
      Atomic.set release true;
      Alcotest.(check (list int)) "gated map finished" [ 0; 1; 2; 3 ] (Domain.join submitter);
      check "swap refused while map in flight" true refused;
      (* once the batch has settled the swap must go through *)
      Pool.set_default_jobs 3;
      check_int "swap succeeds after the batch" 3 (Pool.default_jobs ()))

let dual_pool_slots_disjoint () =
  (* Two coexisting pools must never alias an execution slot: slot ids are
     what sharded collectors key their single-writer shards by. *)
  with_pool ~jobs:3 (fun p1 ->
      with_pool ~jobs:3 (fun p2 ->
          let slots_of p =
            Pool.map p (fun i -> ignore (Sys.opaque_identity i); Pool.slot ()) (List.init 64 Fun.id)
          in
          let s1 = slots_of p1 and s2 = slots_of p2 in
          let module S = Set.Make (Int) in
          let d1 = S.of_list s1 and d2 = S.of_list s2 in
          check "pools share no slot" true (S.is_empty (S.inter (S.remove (Pool.slot ()) d1)
            (S.remove (Pool.slot ()) d2)));
          check "slots below slot_limit" true
            (S.for_all (fun s -> s >= 0 && s < Pool.slot_limit ()) (S.union d1 d2))))

let dual_pool_collect_exact () =
  (* The practical consequence of slot disjointness: a sharded collector
     written through two pools at once — one driven by a second raw domain,
     whose lazily allocated slot also exercises the growth path — must
     merge to exact totals, with no update lost to slot aliasing. *)
  with_pool ~jobs:3 (fun p1 ->
      with_pool ~jobs:3 (fun p2 ->
          let coll = Collect.create () in
          let n = 400 in
          let bump p name = ignore (Pool.map p (fun _ -> Collect.incr coll name) (List.init n Fun.id)) in
          let other =
            Domain.spawn (fun () ->
                bump p2 "shared";
                bump p2 "only_p2")
          in
          bump p1 "shared";
          bump p1 "only_p1";
          Domain.join other;
          let c = Collect.counters coll in
          check_int "shared counter exact" (2 * n) (Counter.get c "shared");
          check_int "p1 counter exact" n (Counter.get c "only_p1");
          check_int "p2 counter exact" n (Counter.get c "only_p2")))

(* ---------------- Harness determinism across pool widths ---------------- *)

(* The acceptance bar of the runner: a full experiment report rendered at
   --jobs 1 and at --jobs 4 must be byte-identical. Exercised here on the
   quick overhead sweep (the widest fan-out of the quick set). *)
let report_identical_across_widths () =
  let render () = Report.to_markdown (Recflow_experiments.Exp_overhead.run ~quick:true ()) in
  let seq = with_default_jobs 1 render in
  let par = with_default_jobs 4 render in
  Alcotest.(check string) "jobs=1 and jobs=4 markdown identical" seq par

let run_many_matches_list_map () =
  with_default_jobs 4 (fun () ->
      let xs = List.init 50 Fun.id in
      Alcotest.(check (list int)) "run_many = List.map" (List.map succ xs)
        (Harness.run_many succ xs))

let run_many_seeded_deterministic () =
  (* Element i's stream depends only on (seed, i): same at any width, and
     stable when the list grows a tail. *)
  let f ~rng x = (x, Rng.int rng 1_000_000) in
  let narrow = with_default_jobs 1 (fun () -> Harness.run_many_seeded ~seed:11 f [ 1; 2; 3; 4 ]) in
  let wide = with_default_jobs 4 (fun () -> Harness.run_many_seeded ~seed:11 f [ 1; 2; 3; 4 ]) in
  Alcotest.(check (list (pair int int))) "width-independent" narrow wide;
  let longer = with_default_jobs 2 (fun () -> Harness.run_many_seeded ~seed:11 f [ 1; 2; 3; 4; 5 ]) in
  Alcotest.(check (list (pair int int)))
    "prefix stable when the sweep grows" narrow
    (List.filteri (fun i _ -> i < 4) longer);
  let reseeded = with_default_jobs 2 (fun () -> Harness.run_many_seeded ~seed:12 f [ 1; 2; 3; 4 ]) in
  check "seed matters" true (narrow <> reseeded)

let obs_hook_complete_under_parallel_runs () =
  (* Every harness run must fire the hook exactly once even when runs
     execute on pool domains; the mutex in the harness serializes the hook
     body, so a plain counter and list suffice. *)
  let calls = ref 0 in
  let names = ref [] in
  Harness.set_obs_hook
    (Some
       (fun info run ->
         incr calls;
         names := info.Harness.workload_name :: !names;
         check "hook sees a finished run" true run.Harness.correct));
  Fun.protect
    ~finally:(fun () -> Harness.set_obs_hook None)
    (fun () ->
      with_default_jobs 4 (fun () ->
          let cfg seed = { (Harness.Config.default ~nodes:4) with Harness.Config.seed } in
          let runs =
            Harness.run_many
              (fun seed -> Harness.probe (cfg seed) Workload.fib Workload.Tiny)
              [ 1; 2; 3; 4; 5; 6 ]
          in
          check_int "all runs returned" 6 (List.length runs);
          check_int "hook fired once per run" 6 !calls;
          check "hook saw the workload" true (List.for_all (( = ) "fib") !names)))

let suites =
  [
    ( "parallel.deque",
      [
        Alcotest.test_case "sequential grow" `Quick deque_sequential_grow;
        Alcotest.test_case "steal vs grow race" `Quick deque_steal_grow_race;
      ] );
    ( "parallel.pool",
      [
        Alcotest.test_case "map ordering" `Quick pool_map_ordering;
        Alcotest.test_case "empty and singleton" `Quick pool_map_empty_and_singleton;
        Alcotest.test_case "exception propagates" `Quick pool_exception_propagates;
        Alcotest.test_case "lowest-index exception" `Quick pool_lowest_index_exception;
        Alcotest.test_case "survives exception" `Quick pool_survives_exception;
        Alcotest.test_case "nested map" `Quick pool_nested_map;
        Alcotest.test_case "jobs validation" `Quick pool_jobs_clamped;
        Alcotest.test_case "shutdown idempotent" `Quick pool_shutdown_idempotent;
        Alcotest.test_case "shutdown drains in-flight map" `Quick
          pool_shutdown_drains_in_flight_map;
        Alcotest.test_case "cross-pool nested map" `Quick cross_pool_nested_map;
        Alcotest.test_case "run thunks" `Quick pool_run_thunks;
        Alcotest.test_case "set_default_jobs refused in flight" `Quick
          set_default_jobs_refused_in_flight;
        Alcotest.test_case "dual-pool slots disjoint" `Quick dual_pool_slots_disjoint;
        Alcotest.test_case "dual-pool collect exact" `Quick dual_pool_collect_exact;
      ] );
    ( "parallel.harness",
      [
        Alcotest.test_case "report identical across widths" `Quick report_identical_across_widths;
        Alcotest.test_case "run_many = List.map" `Quick run_many_matches_list_map;
        Alcotest.test_case "run_many_seeded deterministic" `Quick run_many_seeded_deterministic;
        Alcotest.test_case "obs hook complete under jobs=4" `Quick obs_hook_complete_under_parallel_runs;
      ] );
  ]
