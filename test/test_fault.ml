(* Tests for fault plans plus a correctness fuzz: random multi-failure
   schedules against the full machine.  The fuzz is the broadest net in
   the suite — any protocol hole that loses a result or deadlocks shows
   up as a wrong/missing answer here. *)

module Plan = Recflow_fault.Plan
module Rng = Recflow_sim.Rng
module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Workload = Recflow_workload.Workload
module Value = Recflow_lang.Value
module Policy = Recflow_balance.Policy

let check = Alcotest.(check bool)
let qtest = QCheck_alcotest.to_alcotest

(* ---------------- plan generators ---------------- *)

let burst_shape () =
  let rng = Rng.create 5 in
  let plan = Plan.random_burst ~rng ~procs:8 ~count:3 ~lo:100 ~hi:500 in
  check "three failures" true (List.length plan = 3);
  check "times in range and sorted" true
    (let rec sorted = function
       | (a, _) :: ((b, _) :: _ as rest) -> a <= b && sorted rest
       | _ -> true
     in
     sorted plan && List.for_all (fun (t, _) -> t >= 100 && t <= 500) plan);
  check "victims distinct and in range" true
    (let vs = List.map snd plan in
     List.length (List.sort_uniq compare vs) = 3 && List.for_all (fun v -> v >= 0 && v < 8) vs)

let burst_caps_at_procs () =
  let rng = Rng.create 5 in
  let plan = Plan.random_burst ~rng ~procs:4 ~count:10 ~lo:0 ~hi:10 in
  check "capped at processor count" true (List.length plan = 4)

let poisson_shape () =
  let rng = Rng.create 7 in
  let plan = Plan.poisson ~rng ~procs:8 ~mean_interval:300.0 ~until:2000 in
  check "within horizon" true (List.for_all (fun (t, _) -> t <= 2000) plan);
  check "times nondecreasing" true
    (let rec sorted = function
       | (a, _) :: ((b, _) :: _ as rest) -> a <= b && sorted rest
       | _ -> true
     in
     sorted plan);
  check "victims distinct" true
    (let vs = List.map snd plan in
     List.length (List.sort_uniq compare vs) = List.length vs)

let generators_validate () =
  let rng = Rng.create 1 in
  check "bad procs" true
    (try ignore (Plan.random_burst ~rng ~procs:0 ~count:1 ~lo:0 ~hi:1); false
     with Invalid_argument _ -> true);
  check "bad count" true
    (try ignore (Plan.random_burst ~rng ~procs:2 ~count:(-1) ~lo:0 ~hi:1); false
     with Invalid_argument _ -> true);
  check "bad range" true
    (try ignore (Plan.random_burst ~rng ~procs:2 ~count:1 ~lo:5 ~hi:1); false
     with Invalid_argument _ -> true);
  check "bad interval" true
    (try ignore (Plan.poisson ~rng ~procs:2 ~mean_interval:0.0 ~until:10); false
     with Invalid_argument _ -> true);
  check "bad horizon" true
    (try ignore (Plan.poisson ~rng ~procs:2 ~mean_interval:5.0 ~until:(-1)); false
     with Invalid_argument _ -> true);
  check "bad poisson procs" true
    (try ignore (Plan.poisson ~rng ~procs:0 ~mean_interval:5.0 ~until:10); false
     with Invalid_argument _ -> true)

(* ---------------- plan properties ---------------- *)

let prop_burst =
  QCheck.Test.make ~name:"prop: random_burst victims distinct, times within [lo,hi]" ~count:200
    QCheck.(quad (int_range 0 99_999) (int_range 1 12) (int_range 0 8) (int_range 0 5_000))
    (fun (seed, procs, count, lo) ->
      let rng = Rng.create seed in
      let hi = lo + (seed mod 3_000) in
      let plan = Plan.random_burst ~rng ~procs ~count ~lo ~hi in
      let vs = List.map snd plan in
      List.length plan = min count procs
      && List.length (List.sort_uniq compare vs) = List.length vs
      && List.for_all (fun v -> v >= 0 && v < procs) vs
      && List.for_all (fun (t, _) -> t >= lo && t <= hi) plan)

let prop_poisson =
  QCheck.Test.make ~name:"prop: poisson respects its horizon, victims fresh" ~count:200
    QCheck.(triple (int_range 0 99_999) (int_range 1 12) (int_range 0 5_000))
    (fun (seed, procs, until) ->
      let rng = Rng.create seed in
      let plan = Plan.poisson ~rng ~procs ~mean_interval:250.0 ~until in
      let vs = List.map snd plan in
      List.length plan <= procs
      && List.for_all (fun (t, _) -> t <= until) plan
      && List.length (List.sort_uniq compare vs) = List.length vs)

let prop_at_fractions =
  QCheck.Test.make ~name:"prop: at_fractions clamps into [0.01, 0.99] of the makespan"
    ~count:200
    QCheck.(pair (int_range 1 100_000) (small_list (float_range (-2.0) 3.0)))
    (fun (makespan, fracs) ->
      let specs = List.mapi (fun i f -> (f, i)) fracs in
      let plan = Plan.at_fractions ~makespan specs in
      let m = float_of_int makespan in
      List.length plan = List.length specs
      && List.for_all
           (fun (t, _) ->
             let ft = float_of_int t in
             ft >= (0.01 *. m) -. 1.0 && ft <= (0.99 *. m) +. 1.0)
           plan)

(* ---------------- fuzz ---------------- *)

let run_with cfg w plan =
  let c = Cluster.create cfg (Workload.program w) in
  Plan.apply c plan;
  Cluster.start c ~fname:w.Workload.entry ~args:(w.Workload.args Workload.Tiny);
  let o = Cluster.run c in
  match o.Cluster.answer with
  | Some v -> Value.equal v (Workload.expected w Workload.Tiny)
  | None -> false

let policies = [| Policy.Gradient { weight = 2 }; Policy.Random; Policy.Round_robin |]

(* ---------------- regressions ---------------- *)

let deep_orphan_salvage () =
  (* Found by the splice fuzz (seed 2936): with ancestor links deep
     enough to skip past a dead grandparent, a grandchild's salvaged
     result reaches the super-root.  Filing it directly into a root call
     slot substitutes one subtree fragment for the whole slot — the run
     "completes" with a silently wrong answer.  The super-root must keep
     the orphan's [To_grandparent] shape and let the root twin drive it
     down the chain of twins. *)
  let rng = Rng.create (2936 * 7 + 1) in
  let plan = Plan.random_burst ~rng ~procs:8 ~count:2 ~lo:50 ~hi:2500 in
  let cfg =
    { (Config.default ~nodes:8) with Config.recovery = Config.Splice; seed = 2936;
      ancestor_depth = 2; policy = Policy.Random }
  in
  check "grandchild salvage keeps the full subtree" true (run_with cfg Workload.tree_sum plan)

let fuzz_recovery recovery name =
  QCheck.Test.make ~name ~count:40
    QCheck.(
      quad (int_range 0 10_000) (int_range 1 3) (int_range 0 2) (int_range 1 2))
    (fun (seed, failures, policy_idx, ancestor_depth) ->
      let rng = Rng.create (seed * 7 + 1) in
      let plan = Plan.random_burst ~rng ~procs:8 ~count:failures ~lo:50 ~hi:2500 in
      let cfg =
        {
          (Config.default ~nodes:8) with
          Config.recovery;
          seed;
          ancestor_depth;
          policy = policies.(policy_idx);
        }
      in
      run_with cfg Workload.tree_sum plan)

let fuzz_splice = fuzz_recovery Config.Splice
    "fuzz: splice correct under random multi-failure schedules"

let fuzz_rollback = fuzz_recovery Config.Rollback
    "fuzz: rollback correct under random multi-failure schedules"

let fuzz_literal_splice =
  QCheck.Test.make ~name:"fuzz: literal-protocol splice (no inheritance) stays correct"
    ~count:25
    QCheck.(pair (int_range 0 10_000) (int_range 1 2))
    (fun (seed, failures) ->
      let rng = Rng.create (seed + 13) in
      let plan = Plan.random_burst ~rng ~procs:8 ~count:failures ~lo:50 ~hi:2500 in
      let cfg =
        { (Config.default ~nodes:8) with Config.recovery = Config.Splice;
          adoption_grace = 0; seed }
      in
      run_with cfg Workload.tree_sum plan)

let fuzz_workload_mix =
  QCheck.Test.make ~name:"fuzz: every workload survives one random failure (splice)" ~count:30
    QCheck.(pair (int_range 0 10_000) (int_range 0 6))
    (fun (seed, widx) ->
      let w = List.nth Workload.all (widx mod List.length Workload.all) in
      let rng = Rng.create (seed + 29) in
      let plan = Plan.random_burst ~rng ~procs:8 ~count:1 ~lo:50 ~hi:1500 in
      let cfg = { (Config.default ~nodes:8) with Config.recovery = Config.Splice; seed } in
      run_with cfg w plan)

let fuzz_poisson_replication =
  QCheck.Test.make ~name:"fuzz: replicate:3 masks a random early failure" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create (seed + 31) in
      let plan = Plan.random_burst ~rng ~procs:8 ~count:1 ~lo:50 ~hi:1000 in
      let cfg =
        { (Config.default ~nodes:8) with Config.recovery = Config.Replicate 3; seed }
      in
      run_with cfg Workload.tree_sum plan)

let suites =
  [
    ( "fault.plan",
      [
        Alcotest.test_case "burst shape" `Quick burst_shape;
        Alcotest.test_case "burst caps" `Quick burst_caps_at_procs;
        Alcotest.test_case "poisson shape" `Quick poisson_shape;
        Alcotest.test_case "validation" `Quick generators_validate;
        qtest prop_burst;
        qtest prop_poisson;
        qtest prop_at_fractions;
      ] );
    ( "fault.fuzz",
      [
        Alcotest.test_case "deep orphan salvage regression" `Quick deep_orphan_salvage;
        qtest fuzz_splice;
        qtest fuzz_rollback;
        qtest fuzz_literal_splice;
        qtest fuzz_workload_mix;
        qtest fuzz_poisson_replication;
      ] );
  ]
