(* End-to-end: every registered experiment runs (quick mode) and all of
   its internal checks — the reproduced claims of the paper — hold. *)

module Registry = Recflow_experiments.Registry
module Report = Recflow_experiments.Report
module Paper_tree = Recflow_experiments.Paper_tree
module Stamp = Recflow_recovery.Stamp

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let experiment_case (e : Registry.entry) =
  Alcotest.test_case (e.Registry.id ^ " " ^ e.Registry.title) `Slow (fun () ->
      let r = e.Registry.run ~quick:true () in
      check "has tables" true (r.Report.tables <> []);
      List.iter
        (fun (name, ok) -> check (e.Registry.id ^ ": " ^ name) true ok)
        r.Report.checks)

let registry_sanity () =
  check_int "21 experiments" 21 (List.length Registry.all);
  check "find is case-insensitive" true (Registry.find "f1" <> None);
  check "unknown id" true (Registry.find "Z9" = None);
  let ids = Registry.ids in
  check "ids unique" true (List.length (List.sort_uniq compare ids) = List.length ids)

let markdown_renders () =
  let r = Recflow_experiments.Exp_fig2.run () in
  let md = Report.to_markdown r in
  check "has header" true (String.length md > 0 && md.[0] = '#');
  check "mentions figure" true (String.length md > 100)

let paper_tree_consistency () =
  (* 17 tasks, stamps unique, children stamps extend the parent's *)
  check_int "17 tasks" 17 (List.length Paper_tree.all);
  let stamps = List.map (fun (n : Paper_tree.node) -> Stamp.digits n.Paper_tree.stamp) Paper_tree.all in
  check "stamps unique" true (List.length (List.sort_uniq compare stamps) = 17);
  List.iter
    (fun (n : Paper_tree.node) ->
      List.iter
        (fun (c : Paper_tree.node) ->
          check "child extends parent stamp" true
            (Stamp.is_ancestor n.Paper_tree.stamp c.Paper_tree.stamp))
        n.Paper_tree.children)
    Paper_tree.all;
  (* each processor hosts the tasks its name says *)
  List.iter
    (fun (n : Paper_tree.node) ->
      let letter = String.sub n.Paper_tree.label 0 1 in
      check_int
        ("task " ^ n.Paper_tree.label ^ " on its processor")
        (Paper_tree.proc_of_name letter) n.Paper_tree.proc)
    Paper_tree.all

let paper_tree_fragments_exhaustive () =
  (* failing each processor partitions the survivors exactly *)
  List.iter
    (fun proc ->
      let frags = Paper_tree.fragments ~failed:proc in
      let members = List.concat frags in
      let survivors =
        List.filter (fun (n : Paper_tree.node) -> n.Paper_tree.proc <> proc) Paper_tree.all
      in
      check_int
        ("fragments of P" ^ string_of_int proc ^ " cover survivors")
        (List.length survivors) (List.length members);
      check "no duplicates" true
        (List.length (List.sort_uniq compare members) = List.length members))
    [ 0; 1; 2; 3 ]

let suites =
  [
    ( "experiments.meta",
      [
        Alcotest.test_case "registry" `Quick registry_sanity;
        Alcotest.test_case "markdown" `Quick markdown_renders;
        Alcotest.test_case "paper tree consistency" `Quick paper_tree_consistency;
        Alcotest.test_case "paper tree fragments" `Quick paper_tree_fragments_exhaustive;
      ] );
    ("experiments.reproduction", List.map experiment_case Registry.all);
  ]
