(* Tests for counters, summaries, histograms and table rendering. *)

module Counter = Recflow_stats.Counter
module Summary = Recflow_stats.Summary
module Histogram = Recflow_stats.Histogram
module Hdr = Recflow_stats.Hdr
module Table = Recflow_stats.Table

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let qtest = QCheck_alcotest.to_alcotest

(* ---------------- Counter ---------------- *)

let counter_basic () =
  let s = Counter.create_set () in
  Counter.incr s "a";
  Counter.incr s "a";
  Counter.add s "b" 5;
  check_int "a" 2 (Counter.get s "a");
  check_int "b" 5 (Counter.get s "b");
  check_int "missing is zero" 0 (Counter.get s "nope")

let counter_names_sorted () =
  let s = Counter.create_set () in
  Counter.incr s "zz";
  Counter.incr s "aa";
  Alcotest.(check (list string)) "sorted" [ "aa"; "zz" ] (Counter.names s)

let counter_merge () =
  let a = Counter.create_set () and b = Counter.create_set () in
  Counter.add a "x" 1;
  Counter.add b "x" 2;
  Counter.add b "y" 3;
  let m = Counter.merge a b in
  check_int "x summed" 3 (Counter.get m "x");
  check_int "y carried" 3 (Counter.get m "y");
  check_int "inputs untouched" 1 (Counter.get a "x")

let counter_reset () =
  let s = Counter.create_set () in
  Counter.add s "x" 9;
  Counter.reset s;
  check_int "reset to zero" 0 (Counter.get s "x")

(* Counter.merge is the primitive the sharded collector folds over; the
   --jobs byte-identical contract rests on it being a pointwise sum that
   is insensitive to shard order and never forgets a touched name. *)

let set_of_alist xs =
  let s = Counter.create_set () in
  List.iter (fun (k, v) -> Counter.add s k v) xs;
  s

let alist_gen =
  QCheck.(list_of_size (Gen.int_range 0 12) (pair (oneofl [ "a"; "bb"; "c.d"; "e"; "f" ]) (int_range (-50) 50)))

let counter_merge_commutative =
  QCheck.Test.make ~name:"Counter.merge commutative up to to_alist" ~count:300
    QCheck.(pair alist_gen alist_gen)
    (fun (xs, ys) ->
      let a = set_of_alist xs and b = set_of_alist ys in
      Counter.to_alist (Counter.merge a b) = Counter.to_alist (Counter.merge b a))

let counter_merge_associative =
  QCheck.Test.make ~name:"Counter.merge associative up to to_alist" ~count:300
    QCheck.(triple alist_gen alist_gen alist_gen)
    (fun (xs, ys, zs) ->
      let a = set_of_alist xs and b = set_of_alist ys and c = set_of_alist zs in
      Counter.to_alist (Counter.merge (Counter.merge a b) c)
      = Counter.to_alist (Counter.merge a (Counter.merge b c)))

let counter_merge_pointwise =
  QCheck.Test.make ~name:"Counter.merge is the pointwise sum" ~count:300
    QCheck.(pair alist_gen alist_gen)
    (fun (xs, ys) ->
      let a = set_of_alist xs and b = set_of_alist ys in
      let m = Counter.merge a b in
      List.for_all
        (fun name -> Counter.get m name = Counter.get a name + Counter.get b name)
        (Counter.names m)
      && List.sort_uniq String.compare (Counter.names a @ Counter.names b) = Counter.names m)

let counter_merge_keeps_zero_names () =
  let a = Counter.create_set () and b = Counter.create_set () in
  Counter.add a "touched.zero" 0;
  Counter.incr b "other";
  let m = Counter.merge a b in
  check "touched-but-zero name survives merge" true
    (List.mem "touched.zero" (Counter.names m));
  check_int "its value is zero" 0 (Counter.get m "touched.zero")

(* ---------------- Summary ---------------- *)

let summary_known_values () =
  let s = Summary.create () in
  List.iter (Summary.observe s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_int "count" 8 (Summary.count s);
  check_float "mean" 5.0 (Summary.mean s);
  check_float "stddev (population)" 2.0 (Summary.stddev s);
  check_float "min" 2.0 (Summary.min_value s);
  check_float "max" 9.0 (Summary.max_value s);
  check_float "total" 40.0 (Summary.total s)

let summary_percentile_nearest_rank () =
  let s = Summary.create () in
  List.iter (Summary.observe_int s) [ 15; 20; 35; 40; 50 ];
  check_float "p30 = 2nd" 20.0 (Summary.percentile s 30.0);
  check_float "p40 = 2nd" 20.0 (Summary.percentile s 40.0);
  check_float "p50 = 3rd" 35.0 (Summary.percentile s 50.0);
  check_float "p100 = max" 50.0 (Summary.percentile s 100.0);
  check_float "p0 = min" 15.0 (Summary.percentile s 0.0)

let summary_empty_raises () =
  let s = Summary.create () in
  check_float "mean of empty" 0.0 (Summary.mean s);
  check "min raises" true
    (try
       ignore (Summary.min_value s);
       false
     with Invalid_argument _ -> true);
  check "percentile raises" true
    (try
       ignore (Summary.percentile s 50.0);
       false
     with Invalid_argument _ -> true)

let summary_percentile_range () =
  let s = Summary.create () in
  Summary.observe s 1.0;
  check "p>100 rejected" true
    (try
       ignore (Summary.percentile s 101.0);
       false
     with Invalid_argument _ -> true)

let summary_mean_bounded =
  QCheck.Test.make ~name:"Summary mean within [min,max]" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Summary.create () in
      List.iter (Summary.observe s) xs;
      let m = Summary.mean s in
      m >= Summary.min_value s -. 1e-9 && m <= Summary.max_value s +. 1e-9)

let summary_order_preserved () =
  let s = Summary.create () in
  List.iter (Summary.observe s) [ 3.0; 1.0; 2.0 ];
  Alcotest.(check (list (float 0.0))) "observation order" [ 3.0; 1.0; 2.0 ] (Summary.to_list s)

let summary_stddev_large_offset () =
  (* Regression for catastrophic cancellation: the textbook
     sumsq/n - mean^2 form loses all significant digits when samples sit
     on a 1e9 offset (it used to report sd = 0 or NaN here).  Welford
     keeps the true population sd of {1e9, 1e9+1, 1e9+2}: sqrt(2/3). *)
  let s = Summary.create () in
  List.iter (Summary.observe s) [ 1e9; 1e9 +. 1.0; 1e9 +. 2.0 ];
  Alcotest.(check (float 1e-6)) "sd on large offset" (sqrt (2.0 /. 3.0)) (Summary.stddev s);
  Alcotest.(check (float 1e-6)) "mean on large offset" (1e9 +. 1.0) (Summary.mean s)

let summary_stddev_constant () =
  let s = Summary.create () in
  List.iter (Summary.observe s) [ 5.0; 5.0; 5.0; 5.0 ];
  check_float "constant samples" 0.0 (Summary.stddev s)

let summary_sorted_cache_invalidation () =
  (* The sorted array is cached between quantile calls; a fresh
     observation must invalidate it or percentiles go stale. *)
  let s = Summary.create () in
  List.iter (Summary.observe s) [ 1.0; 2.0; 3.0 ];
  check_float "median before" 2.0 (Summary.median s);
  Summary.observe s 100.0;
  check_float "max after new obs" 100.0 (Summary.percentile s 100.0);
  check_float "median reflects new sample" 2.0 (Summary.median s);
  Summary.observe s (-100.0);
  check_float "min after new obs" (-100.0) (Summary.percentile s 0.0)

(* ---------------- Histogram ---------------- *)

let histogram_buckets () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:5 in
  List.iter (Histogram.observe h) [ 0.0; 1.9; 2.0; 9.99; 5.0 ];
  Alcotest.(check (array int)) "placement" [| 2; 1; 1; 0; 1 |] (Histogram.bucket_counts h);
  check_int "count" 5 (Histogram.count h)

let histogram_clamping () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:2 in
  Histogram.observe h (-5.0);
  Histogram.observe h 50.0;
  check_int "underflow" 1 (Histogram.underflow h);
  check_int "overflow" 1 (Histogram.overflow h);
  Alcotest.(check (array int)) "clamped into edge buckets" [| 1; 1 |] (Histogram.bucket_counts h)

let histogram_bounds () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:4 in
  let lo, hi = Histogram.bucket_bounds h 1 in
  check_float "bucket lo" 2.5 lo;
  check_float "bucket hi" 5.0 hi

let histogram_invalid () =
  check "lo >= hi rejected" true
    (try
       ignore (Histogram.create ~lo:1.0 ~hi:1.0 ~buckets:3);
       false
     with Invalid_argument _ -> true);
  check "0 buckets rejected" true
    (try
       ignore (Histogram.create ~lo:0.0 ~hi:1.0 ~buckets:0);
       false
     with Invalid_argument _ -> true)

let histogram_nan_inf () =
  (* Regression: NaN used to fall through the bucket arithmetic and land
     in the underflow tally (comparisons with NaN are all false), inf in
     overflow — both silently skewing the clamped counts.  They are not
     observations at all: dedicated invalid tally, count untouched. *)
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:4 in
  Histogram.observe h Float.nan;
  Histogram.observe h Float.infinity;
  Histogram.observe h Float.neg_infinity;
  check_int "invalid tally" 3 (Histogram.invalid h);
  check_int "count untouched" 0 (Histogram.count h);
  check_int "no underflow" 0 (Histogram.underflow h);
  check_int "no overflow" 0 (Histogram.overflow h);
  Alcotest.(check (array int)) "no bucket perturbed" [| 0; 0; 0; 0 |] (Histogram.bucket_counts h);
  Histogram.observe h 5.0;
  check_int "finite values still counted" 1 (Histogram.count h);
  check_int "invalid unchanged" 3 (Histogram.invalid h)

(* ---------------- Hdr ---------------- *)

let hdr_exact_small () =
  (* Below 2^precision every integer has its own bucket: quantiles exact. *)
  let h = Hdr.create ~precision:5 () in
  for v = 0 to 31 do
    Hdr.record h v
  done;
  check_int "count" 32 (Hdr.count h);
  check_int "min" 0 (Hdr.min_value h);
  check_int "max" 31 (Hdr.max_value h);
  check_int "total" (31 * 32 / 2) (Hdr.total h);
  check_float "mean" 15.5 (Hdr.mean h);
  check_int "p50 exact" 15 (Hdr.quantile h 50.0);
  check_int "p100 exact" 31 (Hdr.quantile h 100.0);
  check_int "p0 is min" 0 (Hdr.quantile h 0.0)

let hdr_relative_error =
  QCheck.Test.make ~name:"Hdr bucket width within 2^-precision of the value" ~count:500
    QCheck.(int_range 0 (1 lsl 40))
    (fun v ->
      let h = Hdr.create ~precision:5 () in
      Hdr.record h v;
      match Hdr.to_alist h with
      | [ (lo, hi, 1) ] -> lo <= v && v < hi && hi - lo <= max 1 (v asr 5)
      | _ -> false)

let hdr_quantile_clamped_to_extremes =
  QCheck.Test.make ~name:"Hdr quantile stays within [min,max]" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 40) (int_range 0 1_000_000))
    (fun vs ->
      let h = Hdr.create () in
      List.iter (Hdr.record h) vs;
      let lo = List.fold_left min max_int vs and hi = List.fold_left max 0 vs in
      List.for_all
        (fun q ->
          let x = Hdr.quantile h q in
          lo <= x && x <= hi)
        [ 0.0; 10.0; 50.0; 90.0; 99.0; 99.9; 100.0 ])

let hdr_negative_invalid () =
  let h = Hdr.create () in
  Hdr.record h (-1);
  Hdr.record h (-999);
  check_int "invalid tally" 2 (Hdr.invalid h);
  check_int "count untouched" 0 (Hdr.count h);
  Hdr.record h 7;
  check_int "valid still counted" 1 (Hdr.count h);
  check_int "p50 of singleton" 7 (Hdr.quantile h 50.0)

let hdr_empty_raises () =
  let h = Hdr.create () in
  check "quantile on empty raises" true
    (try
       ignore (Hdr.quantile h 50.0);
       false
     with Invalid_argument _ -> true);
  check "min on empty raises" true
    (try
       ignore (Hdr.min_value h);
       false
     with Invalid_argument _ -> true);
  check_float "mean of empty" 0.0 (Hdr.mean h);
  Hdr.record h 1;
  check "q out of range raises" true
    (try
       ignore (Hdr.quantile h 100.5);
       false
     with Invalid_argument _ -> true)

let hdr_merge () =
  let a = Hdr.create () and b = Hdr.create () in
  List.iter (Hdr.record a) [ 1; 2; 3 ];
  List.iter (Hdr.record b) [ 1000; 2000 ];
  Hdr.record b (-5);
  let m = Hdr.merge a b in
  check_int "counts sum" 5 (Hdr.count m);
  check_int "invalid sums" 1 (Hdr.invalid m);
  check_int "min combined" 1 (Hdr.min_value m);
  check_int "max combined" 2000 (Hdr.max_value m);
  check_int "inputs untouched" 3 (Hdr.count a);
  check "precision mismatch raises" true
    (try
       ignore (Hdr.merge (Hdr.create ~precision:5 ()) (Hdr.create ~precision:6 ()));
       false
     with Invalid_argument _ -> true)

let hdr_merge_order_independent =
  QCheck.Test.make ~name:"Hdr.merge commutes (same buckets either way)" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 0 30) (int_range 0 100_000))
              (list_of_size (Gen.int_range 0 30) (int_range 0 100_000)))
    (fun (xs, ys) ->
      let build vs =
        let h = Hdr.create () in
        List.iter (Hdr.record h) vs;
        h
      in
      let ab = Hdr.merge (build xs) (build ys) and ba = Hdr.merge (build ys) (build xs) in
      Hdr.to_alist ab = Hdr.to_alist ba
      && Hdr.count ab = List.length xs + List.length ys)

(* ---------------- Table ---------------- *)

let table_rows_and_render () =
  let t = Table.create ~title:"demo" ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_separator t;
  Table.add_row t [ "beta"; "22" ];
  Alcotest.(check (list (list string))) "rows" [ [ "alpha"; "1" ]; [ "beta"; "22" ] ] (Table.rows t);
  let rendered = Format.asprintf "%a" Table.pp t in
  check "title present" true (String.length rendered > 0 && String.sub rendered 0 3 = "== ");
  check "contains beta" true
    (String.split_on_char '\n' rendered |> List.exists (fun l -> String.length l > 0 && l.[0] = 'b'))

let table_width_mismatch () =
  let t = Table.create ~title:"x" ~columns:[ "a"; "b" ] in
  check "short row rejected" true
    (try
       Table.add_row t [ "only" ];
       false
     with Invalid_argument _ -> true)

let table_csv_escaping () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "has,comma"; "has\"quote" ];
  let csv = Table.to_csv t in
  check "comma quoted" true
    (String.length csv > 0
    && String.split_on_char '\n' csv
       |> List.exists (fun l -> String.length l > 0 && l.[0] = '"'))

let table_cells () =
  Alcotest.(check string) "int" "42" (Table.cell_int 42);
  Alcotest.(check string) "float" "3.14" (Table.cell_float 3.141592);
  Alcotest.(check string) "float decimals" "3.1416" (Table.cell_float ~decimals:4 3.141592);
  Alcotest.(check string) "pct" "12.5%" (Table.cell_pct 0.125)

let suites =
  [
    ( "stats.counter",
      [
        Alcotest.test_case "basic" `Quick counter_basic;
        Alcotest.test_case "names sorted" `Quick counter_names_sorted;
        Alcotest.test_case "merge" `Quick counter_merge;
        Alcotest.test_case "reset" `Quick counter_reset;
        Alcotest.test_case "merge keeps zero names" `Quick counter_merge_keeps_zero_names;
        qtest counter_merge_commutative;
        qtest counter_merge_associative;
        qtest counter_merge_pointwise;
      ] );
    ( "stats.summary",
      [
        Alcotest.test_case "known values" `Quick summary_known_values;
        Alcotest.test_case "percentile nearest-rank" `Quick summary_percentile_nearest_rank;
        Alcotest.test_case "empty" `Quick summary_empty_raises;
        Alcotest.test_case "percentile range" `Quick summary_percentile_range;
        Alcotest.test_case "order preserved" `Quick summary_order_preserved;
        Alcotest.test_case "stddev large offset" `Quick summary_stddev_large_offset;
        Alcotest.test_case "stddev constant" `Quick summary_stddev_constant;
        Alcotest.test_case "sorted cache invalidation" `Quick summary_sorted_cache_invalidation;
        qtest summary_mean_bounded;
      ] );
    ( "stats.histogram",
      [
        Alcotest.test_case "buckets" `Quick histogram_buckets;
        Alcotest.test_case "clamping" `Quick histogram_clamping;
        Alcotest.test_case "bounds" `Quick histogram_bounds;
        Alcotest.test_case "invalid" `Quick histogram_invalid;
        Alcotest.test_case "nan/inf regression" `Quick histogram_nan_inf;
      ] );
    ( "stats.hdr",
      [
        Alcotest.test_case "exact below 2^precision" `Quick hdr_exact_small;
        Alcotest.test_case "negative is invalid" `Quick hdr_negative_invalid;
        Alcotest.test_case "empty and range errors" `Quick hdr_empty_raises;
        Alcotest.test_case "merge" `Quick hdr_merge;
        qtest hdr_relative_error;
        qtest hdr_quantile_clamped_to_extremes;
        qtest hdr_merge_order_independent;
      ] );
    ( "stats.table",
      [
        Alcotest.test_case "rows and render" `Quick table_rows_and_render;
        Alcotest.test_case "width mismatch" `Quick table_width_mismatch;
        Alcotest.test_case "csv escaping" `Quick table_csv_escaping;
        Alcotest.test_case "cells" `Quick table_cells;
      ] );
  ]
