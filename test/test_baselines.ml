(* Tests for the comparator models: periodic checkpointing, TMR, Grit. *)

module Periodic = Recflow_baselines.Periodic
module Tmr = Recflow_baselines.Tmr
module Grit = Recflow_baselines.Grit
module Config = Recflow_machine.Config

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let p ~interval ~save ~restore = { Periodic.interval; save_cost = save; restore_cost = restore }

let periodic_fault_free () =
  (* 100 work, checkpoint every 25 costing 10: saves at 25,50,75,100 *)
  let r = Periodic.simulate (p ~interval:25 ~save:10 ~restore:0) ~work:100 ~failures:[] in
  check_int "checkpoints" 4 (Periodic.(r.checkpoints_taken));
  check_int "completion" 140 Periodic.(r.completion_time);
  Alcotest.(check (float 1e-9)) "overhead" 0.4 Periodic.(r.overhead);
  check_int "nothing lost" 0 Periodic.(r.work_lost)

let periodic_zero_work () =
  let r = Periodic.simulate (p ~interval:10 ~save:1 ~restore:1) ~work:0 ~failures:[ 5 ] in
  check_int "instant" 0 Periodic.(r.completion_time)

let periodic_failure_rolls_back () =
  (* interval 25, save 10: the first snapshot commits at t=35.  A failure
     at t=45 is ten ticks into the second span and loses exactly that
     uncheckpointed work. *)
  let r = Periodic.simulate (p ~interval:25 ~save:10 ~restore:5) ~work:50 ~failures:[ 45 ] in
  check "work was lost" true (Periodic.(r.work_lost) > 0);
  check "completion delayed beyond fault-free" true
    (Periodic.(r.completion_time)
    > Periodic.(
        (simulate (p ~interval:25 ~save:10 ~restore:5) ~work:50 ~failures:[]).completion_time))

let periodic_more_frequent_less_lost () =
  (* with a late failure, tighter checkpoint intervals lose less work *)
  let lost interval =
    Periodic.(
      (simulate (p ~interval ~save:5 ~restore:5) ~work:1000 ~failures:[ 800 ]).work_lost)
  in
  check "10 <= 100" true (lost 10 <= lost 100);
  check "100 <= 1000" true (lost 100 <= lost 1000)

let periodic_tradeoff () =
  (* ...but tighter intervals cost more fault-free overhead: the paper's
     argument against periodic schemes *)
  let overhead interval =
    Periodic.fault_free_overhead (p ~interval ~save:5 ~restore:5) ~work:1000
  in
  check "overhead decreasing in interval" true
    (overhead 10 > overhead 100 && overhead 100 > overhead 500)

let periodic_multi_failures () =
  let r =
    Periodic.simulate (p ~interval:50 ~save:5 ~restore:5) ~work:200 ~failures:[ 60; 60; 300 ]
  in
  check "completes" true (Periodic.(r.completion_time) > 200)

let periodic_validation () =
  check "bad interval" true
    (try
       ignore (Periodic.simulate (p ~interval:0 ~save:1 ~restore:1) ~work:10 ~failures:[]);
       false
     with Invalid_argument _ -> true);
  check "negative work" true
    (try
       ignore (Periodic.simulate (p ~interval:5 ~save:1 ~restore:1) ~work:(-1) ~failures:[]);
       false
     with Invalid_argument _ -> true)

let tmr_estimates () =
  check_int "3x work over 6 procs" 500
    (Tmr.completion_estimate Tmr.default ~work:1000 ~procs:6 ~tasks:0);
  check_int "votes included" 510
    (Tmr.completion_estimate Tmr.default ~work:1000 ~procs:6 ~tasks:60);
  Alcotest.(check (float 1e-9)) "overhead" 2.0 (Tmr.overhead Tmr.default);
  check_int "masks one" 1 (Tmr.masked_failures Tmr.default);
  check_int "5 copies mask two" 2 (Tmr.masked_failures { Tmr.copies = 5; vote_cost = 0 })

let grit_config () =
  let cfg = Grit.config ~nodes:8 (Config.default ~nodes:4) in
  check "ring topology" true (cfg.Config.topology = Recflow_net.Topology.Ring 8);
  check "neighbourhood policy" true
    (cfg.Config.policy = Recflow_balance.Policy.Neighborhood { radius = 1 });
  check "rollback recovery" true (cfg.Config.recovery = Config.Rollback);
  check "validates" true (Config.validate cfg = Ok ());
  check "too small rejected" true
    (try
       ignore (Grit.config ~nodes:1 (Config.default ~nodes:4));
       false
     with Invalid_argument _ -> true)

let suites =
  [
    ( "baselines.periodic",
      [
        Alcotest.test_case "fault free" `Quick periodic_fault_free;
        Alcotest.test_case "zero work" `Quick periodic_zero_work;
        Alcotest.test_case "failure rolls back" `Quick periodic_failure_rolls_back;
        Alcotest.test_case "frequency vs loss" `Quick periodic_more_frequent_less_lost;
        Alcotest.test_case "frequency vs overhead" `Quick periodic_tradeoff;
        Alcotest.test_case "multiple failures" `Quick periodic_multi_failures;
        Alcotest.test_case "validation" `Quick periodic_validation;
      ] );
    ("baselines.tmr", [ Alcotest.test_case "estimates" `Quick tmr_estimates ]);
    ("baselines.grit", [ Alcotest.test_case "config" `Quick grit_config ]);
  ]
