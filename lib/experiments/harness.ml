module Cluster = Recflow_machine.Cluster
module Config = Recflow_machine.Config
module Workload = Recflow_workload.Workload
module Value = Recflow_lang.Value
module Counter = Recflow_stats.Counter
module Rng = Recflow_sim.Rng
module Pool = Recflow_parallel.Pool

module Oracle = Recflow_machine.Oracle

type run = {
  cluster : Cluster.t;
  outcome : Cluster.outcome;
  correct : bool;
  makespan : int;
  oracle : Oracle.report;
}

type obs_info = { workload_name : string; size_name : string }

(* The hook is a process-wide mutable and harness runs execute on pool
   domains.  It used to be guarded by a mutex taken on *every* run — a
   serialization point right on the sweep hot path (ROADMAP item 1).  Now
   the slot is an [Atomic.t] read lock-free per run; the trade is that
   hook bodies execute concurrently on pool domains and must be
   domain-safe themselves.  Shard per-run state by pool slot
   (Recflow_obs_core.Collect) or use atomics for ordinals — see
   bin/experiments.ml for the pattern. *)
let obs_hook : (obs_info -> run -> unit) option Atomic.t = Atomic.make None

let set_obs_hook h = Atomic.set obs_hook h

let notify_obs info r = match Atomic.get obs_hook with Some hook -> hook info r | None -> ()

let size_name = function
  | Workload.Tiny -> "tiny"
  | Workload.Small -> "small"
  | Workload.Medium -> "medium"
  | Workload.Large -> "large"

let run ?(drain = false) config workload size ~failures =
  let cluster = Cluster.create config (Workload.program workload) in
  Recflow_fault.Plan.apply cluster failures;
  Cluster.start cluster ~fname:workload.Workload.entry ~args:(workload.Workload.args size);
  let outcome = Cluster.run ~drain cluster in
  (* every harness run answers to the recovery oracle — no opt-out *)
  let oracle = Oracle.assert_ok cluster in
  let expected = Workload.expected workload size in
  let correct =
    match outcome.Cluster.answer with Some v -> Value.equal v expected | None -> false
  in
  let makespan =
    match outcome.Cluster.answer_time with Some t -> t | None -> outcome.Cluster.sim_time
  in
  let r = { cluster; outcome; correct; makespan; oracle } in
  notify_obs { workload_name = workload.Workload.name; size_name = size_name size } r;
  r

let probe config workload size = run config workload size ~failures:[]

let run_many f xs = Pool.map (Pool.default ()) f xs

let warm_pool () =
  let p = Pool.default () in
  (* One trivial batch wider than the pool forces every worker through its
     first wakeup (and its GC resize) before anything is timed. *)
  ignore (Pool.map p Fun.id (List.init (4 * Pool.jobs p) Fun.id))

let run_many_seeded ~seed f xs =
  (* Derive one independent stream per element by splitting a master
     generator *before* the fan-out: stream [i] depends only on [seed]
     and [i], never on which domain (or how many) runs the element, so a
     sweep is bit-identical at any [--jobs]. *)
  let master = Rng.create seed in
  let seeded = List.map (fun x -> (Rng.split master, x)) xs in
  run_many (fun (rng, x) -> f ~rng x) seeded

let synthetic_setup ~quick =
  let depth = 8 in
  let w = Workload.synthetic ~branching:2 ~depth ~grain:60 in
  let size = if quick then Workload.Small else Workload.Medium in
  let effective_depth = match size with Workload.Small -> depth - 1 | _ -> depth in
  (w, size, effective_depth + 1)

let counter r name = Counter.get (Cluster.counters r.cluster) name

let speedup ~baseline r =
  if r.makespan = 0 then nan else float_of_int baseline.makespan /. float_of_int r.makespan

let pct_of ~part ~whole = if whole = 0 then 0.0 else float_of_int part /. float_of_int whole

let c_int = string_of_int

let c_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let c_bool b = if b then "yes" else "no"

let c_opt_value = function Some v -> Value.to_string v | None -> "-"
