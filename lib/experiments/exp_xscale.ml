module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Node = Recflow_machine.Node
module Oracle = Recflow_machine.Oracle
module Workload = Recflow_workload.Workload
module Counter = Recflow_stats.Counter
module Table = Recflow_stats.Table
module Value = Recflow_lang.Value

type point = {
  procs : int;
  depth : int;
  tasks : int;  (* distributed task instances: root + every remote spawn *)
  makespan : int;
  events : int;
  residual : int;  (* arena-resident tasks after quiescence (must be 0) *)
  correct : bool;
  (* Wall-clock-derived numbers exist only in the full run: quick mode is
     part of the --jobs determinism gate, so its report must not contain
     anything the host machine can perturb. *)
  cpu_s : float;
  peak_heap_words : int;
}

(* Peak heap size sampled at every major-GC slice — an upper bound on peak
   live words that costs one [Gc.quick_stat] per slice instead of a heap
   walk.  Returns (result, cpu_seconds, peak_heap_words). *)
let probe_peak f =
  Gc.compact ();
  let peak = ref (Gc.quick_stat ()).Gc.heap_words in
  let alarm =
    Gc.create_alarm (fun () ->
        let h = (Gc.quick_stat ()).Gc.heap_words in
        if h > !peak then peak := h)
  in
  let t0 = Sys.time () in
  let r = f () in
  let dt = Sys.time () -. t0 in
  Gc.delete_alarm alarm;
  let h = (Gc.quick_stat ()).Gc.heap_words in
  if h > !peak then peak := h;
  (r, dt, !peak)

let run ?(quick = false) () =
  (* (processors, tree depth): distributed tasks = 2^depth - 1 once the
     leaf level is inlined.  The full grid tops out at 1024 processors and
     a >= 1M-task tree; quick keeps the same shape at toy sizes. *)
  let grid = if quick then [ (16, 8); (64, 10) ] else [ (64, 14); (256, 17); (1024, 20) ] in
  let points =
    (* Sequential on purpose: the Gc probe of each row must not see
       another row's allocation, and the big rows dwarf the small ones
       anyway.  Sequential is also trivially identical at any --jobs. *)
    List.map
      (fun (procs, depth) ->
        let grain = 20 in
        let w = Workload.synthetic ~branching:2 ~depth ~grain in
        let cfg =
          {
            (Config.default ~nodes:procs) with
            Config.policy = Recflow_balance.Policy.Static_hash;
            inline_depth = depth;
            batched_delivery = true;
            journal_retain = false;
          }
        in
        (* Driven directly rather than through [Harness.probe]: the
           million-call tree of the big row is beyond the serial
           evaluator's fuel, and the synthetic answer is known in closed
           form anyway — 2^depth leaves of [grain] each. *)
        let (c, o), cpu_s, peak_heap_words =
          probe_peak (fun () ->
              let c = Cluster.create cfg (Workload.program w) in
              Cluster.start c ~fname:w.Workload.entry ~args:(w.Workload.args Workload.Medium);
              let o = Cluster.run c in
              ignore (Oracle.assert_ok c);
              (c, o))
        in
        let tasks = 1 + Counter.get (Cluster.counters c) "spawn.remote" in
        let residual =
          List.fold_left (fun acc n -> acc + Node.resident_tasks n) 0 (Cluster.nodes c)
        in
        {
          procs;
          depth;
          tasks;
          makespan = (match o.Cluster.answer_time with Some t -> t | None -> o.Cluster.sim_time);
          events = o.Cluster.events;
          residual;
          correct = o.Cluster.answer = Some (Value.Int (grain * (1 lsl depth)));
          cpu_s;
          peak_heap_words;
        })
      grid
  in
  let table =
    Table.create
      ~title:
        "Scale sweep: arena storage + batched delivery + O(1) journal (static placement, \
         fault-free)"
      ~columns:
        [ "processors"; "tree depth"; "tasks"; "makespan"; "events"; "events/task";
          "peak heap (Mw)"; "cpu (s)"; "events/s"; "answer ok" ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          Harness.c_int p.procs;
          Harness.c_int p.depth;
          Harness.c_int p.tasks;
          Harness.c_int p.makespan;
          Harness.c_int p.events;
          Printf.sprintf "%.1f" (float_of_int p.events /. float_of_int p.tasks);
          (if quick then "-"
           else Printf.sprintf "%.1f" (float_of_int p.peak_heap_words /. 1e6));
          (if quick then "-" else Printf.sprintf "%.1f" p.cpu_s);
          (if quick then "-"
           else Printf.sprintf "%.0f" (float_of_int p.events /. max 0.001 p.cpu_s));
          Harness.c_bool p.correct;
        ])
    points;
  let last = List.nth points (List.length points - 1) in
  let checks =
    [
      ("every run produces the serial answer", List.for_all (fun p -> p.correct) points);
      ( "task grid is exactly the inlined tree (2^depth - 1)",
        List.for_all (fun p -> p.tasks = (1 lsl p.depth) - 1) points );
      ( "event count stays linear in the task count (< 40 events/task)",
        List.for_all (fun p -> p.events < 40 * p.tasks) points );
      ( "the arena drains: no resident tasks after quiescence",
        List.for_all (fun p -> p.residual = 0) points );
      ( (if quick then "largest quick row reaches 64 processors"
         else "largest row reaches 1024 processors and >= 1M tasks"),
        if quick then last.procs = 64 else last.procs = 1024 && last.tasks >= 1_000_000 );
    ]
    @
    if quick then []
    else
      [
        ( "peak heap stays under 1000 words per task (+64Mw floor)",
          List.for_all
            (fun p -> p.peak_heap_words < (1000 * p.tasks) + 64_000_000)
            points );
      ]
  in
  Report.make ~id:"X8" ~title:"Scale: 1024 processors, a million-task tree"
    ~paper_source:"§1 (aggregation of processors); §3.3 (dynamic allocation at scale)"
    ~notes:
      [ "Tasks live in per-node arenas and retire to tombstones on completion; deliveries \
         coalesce per destination tick; the journal streams without retention.  Wall-clock \
         and heap columns are suppressed in quick mode so the report stays bit-identical \
         across --jobs." ]
    ~checks [ table ]
