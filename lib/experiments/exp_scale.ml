module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Table = Recflow_stats.Table
module Plan = Recflow_fault.Plan
module Stamp = Recflow_recovery.Stamp

type point = {
  nodes : int;
  makespan : int;
  speedup : float;
  utilisation : float;
  faulty_delta : int option;  (* None for the 1-node cluster *)
  correct : bool;
}

let run ?(quick = false) () =
  let w, size, inline_depth = Harness.synthetic_setup ~quick in
  let node_counts = if quick then [ 1; 2; 4; 8; 16 ] else [ 1; 2; 4; 8; 16; 32 ] in
  let points =
    Harness.run_many
      (fun nodes ->
        let cfg =
          {
            (Config.default ~nodes) with
            Config.inline_depth;
            recovery = Config.Splice;
            policy = Recflow_balance.Policy.Gradient { weight = 1 };
          }
        in
        let probe = Harness.probe cfg w size in
        let work = Cluster.total_work probe.Harness.cluster in
        let utilisation =
          float_of_int work /. float_of_int (nodes * max 1 probe.Harness.makespan)
        in
        let faulty =
          if nodes < 2 then None
          else begin
            let journal = Cluster.journal probe.Harness.cluster in
            let t_fail = probe.Harness.makespan / 2 in
            let root_host =
              Option.to_list (Plan.Pick.host_of journal ~stamp:Stamp.root ~time:t_fail)
            in
            let victim =
              Option.value ~default:(nodes - 1)
                (Plan.Pick.busiest_at journal ~time:t_fail ~exclude:root_host)
            in
            Some (Harness.run cfg w size ~failures:(Plan.single ~time:t_fail victim))
          end
        in
        {
          nodes;
          makespan = probe.Harness.makespan;
          speedup = 1.0;  (* filled below once the 1-node run is known *)
          utilisation;
          faulty_delta =
            Option.map (fun r -> r.Harness.makespan - probe.Harness.makespan) faulty;
          correct =
            probe.Harness.correct
            && (match faulty with Some r -> r.Harness.correct | None -> true);
        })
      node_counts
  in
  let serial = (List.hd points).makespan in
  let points =
    List.map
      (fun p -> { p with speedup = float_of_int serial /. float_of_int p.makespan })
      points
  in
  let table =
    Table.create ~title:"Speedup and single-failure recovery vs cluster size (splice)"
      ~columns:
        [ "processors"; "makespan"; "speedup"; "utilisation"; "recovery delta (fault @50%)";
          "delta / makespan"; "answer ok" ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          Harness.c_int p.nodes;
          Harness.c_int p.makespan;
          Printf.sprintf "%.2fx" p.speedup;
          Printf.sprintf "%.0f%%" (100.0 *. p.utilisation);
          (match p.faulty_delta with Some d -> Printf.sprintf "%+d" d | None -> "-");
          (match p.faulty_delta with
          | Some d -> Printf.sprintf "%.0f%%" (100.0 *. float_of_int d /. float_of_int p.makespan)
          | None -> "-");
          Harness.c_bool p.correct;
        ])
    points;
  let at n = List.find (fun p -> p.nodes = n) points in
  let checks =
    [
      ("all runs, faulty or not, produce the serial answer",
       List.for_all (fun p -> p.correct) points);
      ("speedup grows from 2 to 8 processors", (at 8).speedup > (at 2).speedup);
      ("8 processors give at least 3x speedup", (at 8).speedup > 3.0);
      ( "relative recovery cost shrinks as the cluster grows",
        match ((at 2).faulty_delta, (at (if quick then 16 else 32)).faulty_delta) with
        | Some d2, Some dbig ->
          float_of_int dbig /. float_of_int (at (if quick then 16 else 32)).makespan
          < float_of_int d2 /. float_of_int (at 2).makespan
        | _ -> false );
    ]
  in
  Report.make ~id:"Q4" ~title:"Scalability: speedup and recovery vs processors"
    ~paper_source:"§1 (aggregation of processors); §3.3 (dynamic allocation)"
    ~notes:
      [ "The victim is the busiest non-root processor at mid-run; the smaller its share of \
         the computation, the smaller the re-issued subtrees." ]
    ~checks [ table ]
