(** Q4 — Scalability: speedup and recovery cost vs cluster size.

    §1 frames applicative systems as "promising candidates for achieving
    high performance through aggregation of processors"; the recovery
    schemes must not spoil that.  We sweep the processor count, measure
    fault-free speedup over the single-processor run, then inject one
    mid-run failure under splice and report the recovery delta — which
    shrinks relative to the run as the cluster grows (less of the
    computation lives on any one node). *)

val run : ?quick:bool -> unit -> Report.t
