(** Experiment reports: tables plus notes, printable as text or markdown.

    One report per reproduced figure/claim; EXPERIMENTS.md quotes the
    rendered output of [bin/experiments.exe]. *)

type t = {
  id : string;  (** "F1", "Q3", ... *)
  title : string;
  paper_source : string;  (** which figure/section of the paper this reproduces *)
  tables : Recflow_stats.Table.t list;
  notes : string list;
  checks : (string * bool) list;  (** named assertions; all should hold *)
}

val make :
  id:string ->
  title:string ->
  paper_source:string ->
  ?notes:string list ->
  ?checks:(string * bool) list ->
  Recflow_stats.Table.t list ->
  t

val all_checks_pass : t -> bool

val pp : Format.formatter -> t -> unit

val to_markdown : t -> string
