module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Table = Recflow_stats.Table
module Workload = Recflow_workload.Workload
module Plan = Recflow_fault.Plan
module Stamp = Recflow_recovery.Stamp
module Tmr = Recflow_baselines.Tmr

type row = {
  name : string;
  ff_makespan : int;
  overhead : float;
  faulty_delta : int;
  reissues : int;
  vote_inconclusive : int;
  correct : bool;
}

let run ?(quick = false) () =
  (* A shallow bushy tree: every spawn lies within replicate_depth, so the
     whole computation is a replicated "critical section".  Six processors
     for 20 logical tasks: capacity binds, so the k-fold redundancy shows
     up in the makespan. *)
  let w = Workload.synthetic ~branching:4 ~depth:2 ~grain:(if quick then 150 else 400) in
  let size = Workload.Medium in
  let base =
    {
      (Config.default ~nodes:6) with
      Config.inline_depth = 3;
      replicate_depth = 3;
      policy = Recflow_balance.Policy.Random;
    }
  in
  let schemes =
    [
      ("rollback", Config.Rollback);
      ("splice", Config.Splice);
      ("replicate k=2", Config.Replicate 2);
      ("replicate k=3", Config.Replicate 3);
    ]
  in
  let rows =
    Harness.run_many
      (fun (name, recovery) ->
        let cfg = { base with Config.recovery } in
        let probe = Harness.probe cfg w size in
        let journal = Cluster.journal probe.Harness.cluster in
        let t_fail = probe.Harness.makespan / 3 in
        let root_host =
          Option.to_list (Plan.Pick.host_of journal ~stamp:Stamp.root ~time:t_fail)
        in
        let victim =
          Option.value ~default:1 (Plan.Pick.busiest_at journal ~time:t_fail ~exclude:root_host)
        in
        let faulty = Harness.run cfg w size ~failures:(Plan.single ~time:t_fail victim) in
        {
          name;
          ff_makespan = probe.Harness.makespan;
          overhead = 0.0;
          faulty_delta = faulty.Harness.makespan - probe.Harness.makespan;
          reissues = Harness.counter faulty "reissue.count";
          vote_inconclusive = Harness.counter faulty "vote.inconclusive";
          correct = probe.Harness.correct && faulty.Harness.correct;
        })
      schemes
  in
  let baseline = (List.hd rows).ff_makespan in
  let rows =
    List.map
      (fun r ->
        { r with overhead = float_of_int (r.ff_makespan - baseline) /. float_of_int baseline })
      rows
  in
  let table =
    Table.create
      ~title:"Replication with majority voting vs checkpoint recovery (one failure at 33%)"
      ~columns:
        [ "scheme"; "fault-free makespan"; "overhead"; "recovery delta"; "re-issues";
          "votes inconclusive"; "answer ok" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.name;
          Harness.c_int r.ff_makespan;
          Printf.sprintf "%+.0f%%" (100.0 *. r.overhead);
          Printf.sprintf "%+d" r.faulty_delta;
          Harness.c_int r.reissues;
          Harness.c_int r.vote_inconclusive;
          Harness.c_bool r.correct;
        ])
    rows;
  (* Misunas whole-program TMR, closed form, on the same workload. *)
  let work = Workload.serial_work w size in
  let tasks = Workload.task_count w size in
  let tmr = Tmr.default in
  let tmr_table =
    Table.create ~title:"Misunas TMR closed form (whole program, 6 processors)"
      ~columns:[ "copies"; "ideal completion"; "work overhead"; "failures masked" ]
  in
  Table.add_row tmr_table
    [
      Harness.c_int tmr.Tmr.copies;
      Harness.c_int (Tmr.completion_estimate tmr ~work ~procs:6 ~tasks);
      Printf.sprintf "%+.0f%%" (100.0 *. Tmr.overhead tmr);
      Harness.c_int (Tmr.masked_failures tmr);
    ];
  let find name = List.find (fun r -> r.name = name) rows in
  let k3 = find "replicate k=3" and roll = find "rollback" in
  let checks =
    [
      ("all schemes survive the failure with the serial answer",
       List.for_all (fun r -> r.correct) rows);
      ("replication overhead grows with k",
       (find "replicate k=2").overhead < k3.overhead && (find "replicate k=2").overhead > 0.2);
      ( "k=3 masks the failure with less recovery delay than rollback",
        k3.faulty_delta < roll.faulty_delta );
      ("k=3 masks the failure without re-issuing any replicated task", k3.reissues = 0
                                                                       && k3.vote_inconclusive = 0);
      ("checkpointing is free in normal operation; replication is not",
       roll.overhead = 0.0 && k3.overhead > 0.5);
    ]
  in
  Report.make ~id:"Q6" ~title:"Task replication with majority voting (§5.3) vs checkpointing"
    ~paper_source:"§5.3 (hardware redundancy emulation), §5.4 (Misunas TMR)"
    ~notes:
      [
        "The voter decides on ⌊k/2⌋+1 identical results — \"a node does not have to wait for \
         the slowest answer\"; a replica lost to the failure is accounted by the voter, and \
         unanimous survivors still decide.";
      ]
    ~checks [ table; tmr_table ]
