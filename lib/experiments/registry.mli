(** Registry of every reproduced figure and quantitative claim. *)

type entry = {
  id : string;  (** "F1".."F6", "Q1".."Q8" (case-insensitive lookup) *)
  title : string;
  run : ?quick:bool -> unit -> Report.t;
}

val all : entry list
(** In presentation order: figures first, then the quantitative series. *)

val find : string -> entry option

val ids : string list
