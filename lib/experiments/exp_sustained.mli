(** X1 — Fail-soft degradation under sustained failures.

    §1 motivates the whole paper: a multiprocessor should "sustain partial
    system failures".  We inject a growing number of fail-stop failures,
    evenly spaced through the run, into a 16-processor cluster and measure
    completion time and correctness for rollback and splice.  The fail-soft
    claim holds if the answer is always correct and completion degrades
    gradually with the number of lost processors rather than collapsing. *)

val run : ?quick:bool -> unit -> Report.t
