(** X2 — Ablation of the adoption grace (offspring inheritance window).

    The paper's twin "inherits all offspring of the faulty task" but gives
    no mechanism for *running* orphans; our implementation holds a
    re-issued twin back for [adoption_grace] ticks so orphan reports can
    overtake it (DESIGN.md, implementation findings).  This ablation sweeps
    the grace: 0 reverts to the literal §4.2 protocol (twins clone
    everything, duplicates absorb the waste), small values capture most
    inheritance, and very large values delay recovery itself. *)

val run : ?quick:bool -> unit -> Report.t
