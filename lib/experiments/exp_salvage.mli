(** Q3 — Orphan salvage accounting.

    §3.4 motivates splice recovery: orphan partial results are correct
    answers whose linkage broke, and rollback throws them away.  This
    experiment counts the fate of every orphan return under both schemes
    across fault times and detection delays: relayed through a grandparent,
    adopted by a twin before it spawned the clone (the pure win), arrived
    as a duplicate (salvage lost the race), stranded (ancestors dead too),
    or dropped outright (rollback). *)

val run : ?quick:bool -> unit -> Report.t
