module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Table = Recflow_stats.Table
module Workload = Recflow_workload.Workload
module Plan = Recflow_fault.Plan
module Stamp = Recflow_recovery.Stamp

type point = {
  inline_depth : int;
  makespan : int;
  tasks : int;
  messages : int;
  faulty_delta : int;
  correct : bool;
}

let run ?(quick = false) () =
  let depth = 8 in
  let w = Workload.synthetic ~branching:2 ~depth ~grain:60 in
  let size = if quick then Workload.Small else Workload.Medium in
  let eff_depth = match size with Workload.Small -> depth - 1 | _ -> depth in
  let thresholds =
    (* 2 = almost everything inline; eff_depth+1 = leaves inline;
       max_int = every spin iteration its own task *)
    [ 2; 3; eff_depth / 2; eff_depth - 1; eff_depth + 1; max_int ]
    |> List.sort_uniq compare
  in
  let points =
    Harness.run_many
      (fun inline_depth ->
        let cfg =
          {
            (Config.default ~nodes:8) with
            Config.inline_depth;
            recovery = Config.Splice;
            policy = Recflow_balance.Policy.Random;
          }
        in
        let probe = Harness.probe cfg w size in
        let journal = Cluster.journal probe.Harness.cluster in
        let t_fail = probe.Harness.makespan / 2 in
        let root_host =
          Option.to_list (Plan.Pick.host_of journal ~stamp:Stamp.root ~time:t_fail)
        in
        let victim =
          Option.value ~default:1 (Plan.Pick.busiest_at journal ~time:t_fail ~exclude:root_host)
        in
        let faulty = Harness.run cfg w size ~failures:(Plan.single ~time:t_fail victim) in
        {
          inline_depth;
          makespan = probe.Harness.makespan;
          tasks = Harness.counter probe "msg.task_packet";
          messages = Harness.counter probe "msg.sent";
          faulty_delta = faulty.Harness.makespan - probe.Harness.makespan;
          correct = probe.Harness.correct && faulty.Harness.correct;
        })
      thresholds
  in
  let table =
    Table.create ~title:"Grain sweep: inline threshold vs cost (synthetic b=2, 8 processors)"
      ~columns:
        [ "inline at depth"; "tasks"; "messages"; "makespan"; "recovery delta"; "answer ok" ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          (if p.inline_depth = max_int then "never" else Harness.c_int p.inline_depth);
          Harness.c_int p.tasks;
          Harness.c_int p.messages;
          Harness.c_int p.makespan;
          Printf.sprintf "%+d" p.faulty_delta;
          Harness.c_bool p.correct;
        ])
    points;
  let coarsest = List.find (fun p -> p.inline_depth = 2) points in
  let finest = List.find (fun p -> p.inline_depth = max_int) points in
  let best = List.fold_left (fun acc p -> if p.makespan < acc.makespan then p else acc)
      (List.hd points) points in
  let checks =
    [
      ("every grain recovers correctly", List.for_all (fun p -> p.correct) points);
      ("task count grows monotonically with finer grain",
       let rec mono = function
         | a :: (b :: _ as rest) -> a.tasks <= b.tasks && mono rest
         | _ -> true
       in
       mono points);
      ( "both extremes lose to an intermediate grain",
        best.makespan < coarsest.makespan && best.makespan < finest.makespan );
      ( "too-fine grain pays an order of magnitude more messages",
        finest.messages > 10 * best.messages );
    ]
  in
  Report.make ~id:"X3" ~title:"Ablation: task granularity (inline threshold)"
    ~paper_source:"DESIGN.md grain control; §1 (dynamic task creation)"
    ~notes:
      [
        "The re-issued unit of recovery is the task packet, so recovery cost tracks grain: \
         coarse grains lose bigger subtrees per failure but need fewer re-issues.";
      ]
    ~checks [ table ]
