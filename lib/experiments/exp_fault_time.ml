module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Table = Recflow_stats.Table
module Plan = Recflow_fault.Plan
module Stamp = Recflow_recovery.Stamp

let fractions quick = if quick then [ 0.25; 0.5; 0.75 ] else [ 0.1; 0.25; 0.4; 0.55; 0.7; 0.85 ]

type point = {
  frac : float;
  detect : int;
  delta : int;  (* completion time beyond the fault-free makespan *)
  extra_work : int;  (* busy ticks beyond the fault-free run *)
  waste : int;  (* survivor-side work on aborted/dropped tasks *)
  reissues : int;
  relayed : int;
  correct : bool;
}

let sweep cfg w size quick =
  let probe = Harness.probe cfg w size in
  let journal = Cluster.journal probe.Harness.cluster in
  Harness.run_many
    (fun frac ->
      let t_fail = int_of_float (frac *. float_of_int probe.Harness.makespan) in
      let root_host =
        Option.to_list (Plan.Pick.host_of journal ~stamp:Stamp.root ~time:t_fail)
      in
      let victim =
        match Plan.Pick.busiest_at journal ~time:t_fail ~exclude:root_host with
        | Some p -> p
        | None -> ( match root_host with [ h ] -> (h + 1) mod 8 | _ -> 1)
      in
      let r = Harness.run cfg w size ~failures:(Plan.single ~time:t_fail victim) in
      {
        frac;
        detect = cfg.Config.detect_delay;
        delta = r.Harness.makespan - probe.Harness.makespan;
        extra_work =
          Cluster.total_work r.Harness.cluster - Cluster.total_work probe.Harness.cluster;
        waste = Cluster.total_waste r.Harness.cluster;
        reissues = Harness.counter r "reissue.count";
        relayed = Harness.counter r "relay.forwarded";
        correct = r.Harness.correct;
      })
    (fractions quick)

let run ?(quick = false) () =
  let w, size, inline_depth = Harness.synthetic_setup ~quick in
  let base = { (Config.default ~nodes:8) with Config.inline_depth } in
  let mk recovery detect =
    { base with Config.recovery; detect_delay = detect; policy = Recflow_balance.Policy.Random }
  in
  let detects = [ 200; 2500 ] in
  let grid =
    Harness.run_many
      (fun (scheme, recovery, detect) -> (scheme, detect, sweep (mk recovery detect) w size quick))
      (List.concat_map
         (fun detect ->
           [ ("rollback", Config.Rollback, detect); ("splice", Config.Splice, detect) ])
         detects)
  in
  let table =
    Table.create ~title:"Recovery cost vs fault time and detection delay"
      ~columns:
        [ "fault at"; "detect delay"; "scheme"; "recovery delta"; "extra work"; "lost work";
          "re-issues"; "salvaged"; "answer ok" ]
  in
  List.iter
    (fun (scheme, detect, points) ->
      List.iter
        (fun p ->
          Table.add_row table
            [
              Printf.sprintf "%.0f%%" (100.0 *. p.frac);
              Harness.c_int detect;
              scheme;
              Printf.sprintf "%+d" p.delta;
              Harness.c_int p.extra_work;
              Harness.c_int p.waste;
              Harness.c_int p.reissues;
              Harness.c_int p.relayed;
              Harness.c_bool p.correct;
            ])
        points;
      Table.add_separator table)
    grid;
  let find scheme detect =
    let _, _, pts = List.find (fun (s, d, _) -> s = scheme && d = detect) grid in
    pts
  in
  let last pts = List.nth pts (List.length pts - 1) in
  let all_points = List.concat_map (fun (_, _, pts) -> pts) grid in
  let roll_slow = find "rollback" 2500 and splice_slow = find "splice" 2500 in
  let roll_fast = find "rollback" 200 and splice_fast = find "splice" 200 in
  let total f pts = List.fold_left (fun acc p -> acc + f p) 0 pts in
  let checks =
    [
      ("every faulty run still produces the serial answer",
       List.for_all (fun p -> p.correct) all_points);
      ( "rollback's recovery delay grows with fault lateness",
        (last roll_fast).delta > (List.hd roll_fast).delta
        && (last roll_slow).delta > (List.hd roll_slow).delta );
      ( "splice completes recovery faster than rollback overall (both detection regimes)",
        total (fun p -> max 0 p.delta) splice_fast < total (fun p -> max 0 p.delta) roll_fast
        && total (fun p -> max 0 p.delta) splice_slow < total (fun p -> max 0 p.delta) roll_slow );
      ( "splice redoes less work than rollback (totals; per-point once there is anything to \
         salvage)",
        let tail = function [] -> [] | _ :: rest -> rest in
        total (fun p -> p.extra_work) splice_fast < total (fun p -> p.extra_work) roll_fast
        && total (fun p -> p.extra_work) splice_slow < total (fun p -> p.extra_work) roll_slow
        && List.for_all2
             (fun (s : point) (r : point) -> s.extra_work < r.extra_work)
             (tail splice_slow) (tail roll_slow)
        && List.for_all2
             (fun (s : point) (r : point) -> s.extra_work < r.extra_work)
             (tail splice_fast) (tail roll_fast) );
      ("splice salvages orphan results; rollback never does",
       List.for_all (fun p -> p.relayed = 0) (roll_fast @ roll_slow)
       && List.exists (fun p -> p.relayed > 0) (splice_fast @ splice_slow));
    ]
  in
  Report.make ~id:"Q2" ~title:"Recovery cost vs fault time (rollback vs splice)"
    ~paper_source:"§6 (rollback \"may be costly\" late); §3.4/§4 (salvage motivation)"
    ~notes:
      [
        "Victim: the busiest processor that does not host the root, chosen per fault time from \
         a fault-free probe.";
        "Splice's edge comes from offspring inheritance: a re-issued twin is held back one \
         adoption-grace interval so living orphans can announce themselves, and inherited \
         pieces keep computing instead of being recomputed.  Duplicates remain only where \
         the adoption race is lost (§4.1 cases 6-7).";
      ]
    ~checks [ table ]
