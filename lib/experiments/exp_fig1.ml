module Stamp = Recflow_recovery.Stamp
module Ckpt_table = Recflow_recovery.Ckpt_table
module Packet = Recflow_recovery.Packet
module Table = Recflow_stats.Table
module T = Paper_tree

let proc_ids = [ 0; 1; 2; 3 ]

(* Fill each processor's checkpoint table exactly as evaluation would:
   when a parent on processor P spawns a child onto processor Q, P files
   the child's packet under entry Q.  Spawns happen in stamp order (a
   parent is always spawned before its children), so coverage pruning sees
   ancestors first — as in a real run. *)
let build_tables () =
  let tables = List.map (fun p -> (p, Ckpt_table.create ~mode:Ckpt_table.Topmost ())) proc_ids in
  let table p = List.assoc p tables in
  List.iter
    (fun (n : T.node) ->
      match T.parent n with
      | None -> ()
      | Some parent ->
        ignore (Ckpt_table.record (table parent.T.proc) ~dest:n.T.proc (T.packet_of n)))
    T.all;
  tables

let labels_of_packets ps =
  List.map
    (fun (p : Packet.t) ->
      match List.find_opt (fun (n : T.node) -> Stamp.equal n.T.stamp p.Packet.stamp) T.all with
      | Some n -> n.T.label
      | None -> Stamp.to_string p.Packet.stamp)
    ps

let run ?quick:_ () =
  let b = T.proc_of_name "B" in
  (* Table 1: the mapping of Figure 1. *)
  let mapping = Table.create ~title:"Call tree mapped onto processors A-D" ~columns:[ "task"; "stamp"; "processor"; "children" ] in
  List.iter
    (fun (n : T.node) ->
      Table.add_row mapping
        [
          n.T.label;
          Stamp.to_string n.T.stamp;
          T.proc_name n.T.proc;
          String.concat " " (List.map (fun (c : T.node) -> c.T.label) n.T.children);
        ])
    T.all;
  (* Table 2: checkpoint distribution for entry B on each processor. *)
  let tables = build_tables () in
  let dist = Table.create ~title:"Functional checkpoints held for tasks on processor B"
      ~columns:[ "holder"; "entry B (topmost)"; "covered (not stored)" ] in
  let entry_of p = Ckpt_table.entry (List.assoc p tables) ~dest:b in
  let holder_rows =
    List.filter_map
      (fun p ->
        if p = b then None
        else begin
          let held = labels_of_packets (entry_of p) in
          (* covered = children on B spawned from p that are not in the entry *)
          let spawned_to_b =
            List.filter_map
              (fun (n : T.node) ->
                match T.parent n with
                | Some parent when parent.T.proc = p && n.T.proc = b -> Some n.T.label
                | _ -> None)
              T.all
          in
          let covered = List.filter (fun l -> not (List.mem l held)) spawned_to_b in
          Some (p, held, covered)
        end)
      proc_ids
  in
  List.iter
    (fun (p, held, covered) ->
      Table.add_row dist
        [ T.proc_name p; String.concat " " held; String.concat " " covered ])
    holder_rows;
  (* Table 3: fragments after B fails. *)
  let frags = T.fragments ~failed:b in
  let frag_table = Table.create ~title:"Fragments of the call tree after B fails" ~columns:[ "piece"; "tasks" ] in
  List.iteri
    (fun i members ->
      Table.add_row frag_table [ string_of_int (i + 1); String.concat " " members ])
    frags;
  (* Table 4: rollback re-issue sets (Ckpt_table.on_failure). *)
  let reissue = Table.create ~title:"Rollback recovery: re-issued checkpoints per processor"
      ~columns:[ "processor"; "re-issues" ] in
  let reissues =
    List.filter_map
      (fun p ->
        if p = b then None
        else begin
          let drained = Ckpt_table.on_failure (List.assoc p tables) ~failed:b in
          Some (p, labels_of_packets drained)
        end)
      proc_ids
  in
  List.iter
    (fun (p, ls) -> Table.add_row reissue [ T.proc_name p; String.concat " " ls ])
    reissues;
  let held p = match List.assoc_opt p reissues with Some l -> l | None -> [] in
  (* Pieces are ordered by their topmost task's stamp: D4 (1.0.0) roots its
     piece before A2 (1.0.1). *)
  let expected_fragments =
    [
      [ "A1"; "C1"; "C2"; "C3"; "D3" ];
      [ "A5"; "D4"; "D5" ];
      [ "A2"; "C4"; "D1"; "D2" ];
    ]
  in
  let checks =
    [
      ("B's failure fragments the tree into the paper's three pieces", frags = expected_fragments);
      ("A re-issues exactly B1", held 0 = [ "B1" ]);
      ("C re-issues B2 and B3 only", held 2 = [ "B2"; "B3" ]);
      ( "B5's checkpoint is covered by B2 (topmost rule)",
        List.exists (fun (p, _, covered) -> p = 2 && covered = [ "B5" ]) holder_rows );
      ("D re-issues B7", held 3 = [ "B7" ]);
    ]
  in
  Report.make ~id:"F1" ~title:"Call-tree fragmentation and checkpoint distribution"
    ~paper_source:"Figure 1, §3–§3.2"
    ~notes:
      [
        "The paper's respawn narrative omits D's re-issue of B7, but its own per-entry rule \
         (§3.2) requires it: B7 is topmost in D's entry B.";
        "B5 is filed by C4 (on C) but never stored: its stamp descends from B2's, which is \
         already in C's entry B — exactly the paper's \"most ancient ancestor\" optimisation.";
      ]
    ~checks
    [ mapping; dist; frag_table; reissue ]
