(** X3 — Ablation of task granularity (the inline depth).

    The machine evaluates calls below a stamp-depth threshold inline
    instead of spawning them (DESIGN.md "grain control"): too fine a grain
    drowns the run in packet/latency overhead, too coarse a grain starves
    the processors.  This ablation sweeps the threshold on a fixed tree
    and reports makespan, task count and message traffic, fault-free and
    with one failure — recovery granularity follows task granularity,
    since the re-issued unit is the task packet. *)

val run : ?quick:bool -> unit -> Report.t
