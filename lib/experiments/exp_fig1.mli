(** F1 — Figure 1: call-tree fragmentation and checkpoint distribution.

    Reconstructs the paper's worked example on the recovery data
    structures: the tree mapped onto processors A–D, the per-processor
    functional-checkpoint tables, the three fragments produced by B's
    failure, and the rollback re-issue sets (A re-issues B1; C re-issues
    B2 and B3 with B5 covered by B2; D re-issues B7). *)

val run : ?quick:bool -> unit -> Report.t
