(** F6/F7 — Figures 6–7: residue-freedom across the spawn states.

    A three-task chain G → P → C is instrumented so that every state of
    the spawn/reduction machine of §4.3.2 occupies a non-empty window of
    simulated time (arithmetic padding inside P's body stretches the
    windows the ack protocol would otherwise race past).  P's processor is
    then killed once inside each window, under both rollback and splice,
    and the experiment verifies the paper's claim: the failure leaves no
    residue — G is never corrupted, C either aborts, is salvaged, or is
    recomputed, and the final answer is always the serial one. *)

val run : ?quick:bool -> unit -> Report.t
