module Shardsim = Recflow_machine.Shardsim
module Pool = Recflow_parallel.Pool
module Table = Recflow_stats.Table

(* This experiment deliberately does NOT use the shared default pool: it
   creates its own pools of pinned widths (1/2/4) so the rendered report
   is byte-identical at any --jobs — the point under test is that one
   sharded run is domain-count-invariant, which only means something if
   the experiment controls the domain counts itself. *)

type row = {
  scenario : string;
  p : Shardsim.params;
  seq : Shardsim.outcome;
  j2 : Shardsim.outcome;
  j4 : Shardsim.outcome;
  expected : int;
}

let with_pool jobs f =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let run ?(quick = false) () =
  let base =
    { Shardsim.default_params with depth = (if quick then 4 else 5); spin = 50 }
  in
  let scenarios =
    [
      ("fault-free", []);
      ("one fault", [ (300, 5) ]);
      ("three faults", [ (123, 3); (457, 7); (1200, 11) ]);
    ]
  in
  let rows =
    List.map
      (fun (scenario, fail) ->
        let p = { base with Shardsim.fail } in
        let seq = Shardsim.run p in
        let j2 = with_pool 2 (fun pool -> Shardsim.run ~pool p) in
        let j4 = with_pool 4 (fun pool -> Shardsim.run ~pool p) in
        { scenario; p; seq; j2; j4; expected = Shardsim.expected_answer p })
      scenarios
  in
  let clean = List.hd rows in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Sharded single run: %d processors on %d shards (b=%d, depth=%d, window=%d ticks)"
           base.Shardsim.procs base.Shardsim.shards base.Shardsim.branching base.Shardsim.depth
           base.Shardsim.shard_latency)
      ~columns:
        [ "scenario"; "answer ok"; "makespan"; "recovery delta"; "events"; "digest 2=1"; "digest 4=1" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.scenario;
          Harness.c_bool
            (r.seq.Shardsim.answer = r.expected
            && r.j2.Shardsim.answer = r.expected
            && r.j4.Shardsim.answer = r.expected);
          Harness.c_int r.seq.Shardsim.sim_time;
          Printf.sprintf "%+d" (r.seq.Shardsim.sim_time - clean.seq.Shardsim.sim_time);
          Harness.c_int r.seq.Shardsim.events;
          Harness.c_bool (String.equal r.j2.Shardsim.journal_digest r.seq.Shardsim.journal_digest);
          Harness.c_bool (String.equal r.j4.Shardsim.journal_digest r.seq.Shardsim.journal_digest);
        ])
    rows;
  let digests_invariant r =
    String.equal r.j2.Shardsim.journal_digest r.seq.Shardsim.journal_digest
    && String.equal r.j4.Shardsim.journal_digest r.seq.Shardsim.journal_digest
  in
  let checks =
    [
      ( "every scenario recovers the exact fault-free answer",
        List.for_all
          (fun r ->
            r.seq.Shardsim.answer = r.expected
            && r.j2.Shardsim.answer = r.expected
            && r.j4.Shardsim.answer = r.expected)
          rows );
      ( "journal digest is byte-identical at 1, 2 and 4 domains",
        List.for_all digests_invariant rows );
      ( "failures never shorten the simulated makespan",
        (* a single early fault can hide entirely in scheduling slack, so
           only the event count is required to grow strictly *)
        List.for_all (fun r -> r.seq.Shardsim.sim_time >= clean.seq.Shardsim.sim_time) rows );
      ( "failures cost events (re-issued subtrees are re-executed)",
        List.for_all
          (fun r -> r.p.Shardsim.fail = [] || r.seq.Shardsim.events > clean.seq.Shardsim.events)
          rows );
    ]
  in
  Report.make ~id:"X5" ~title:"Sharded execution of one run across domains"
    ~paper_source:"§3 (distribution of the recovery scheme); DESIGN.md sharded single run"
    ~notes:
      [
        "Each scenario runs three times — sequentially, on a 2-domain pool and on a 4-domain \
         pool — and the merged journal digest (placements, failures, re-issues, answer, \
         makespan, event count) must not differ by a byte: cross-shard messages only cross at \
         lookahead-window barriers, merged in (time, source shard, sequence) order.";
        "Wall-clock speedup is a bench concern (see bench --shard); this report only contains \
         simulated observables so it renders identically at any --jobs.";
      ]
    ~checks [ table ]
