(** Q8 — Checkpoint-table ablation: topmost-only vs keep-all (§3.2).

    The paper's table keeps only the *topmost* checkpoints per destination:
    a descendant covered by an ancestor's checkpoint is redundant, because
    re-issuing the ancestor regenerates it, and re-issuing it separately
    only "increases the system overhead" (the B5 discussion).  We run the
    same workload and failure with both table disciplines and compare
    storage, re-issue counts and redone work. *)

val run : ?quick:bool -> unit -> Report.t
