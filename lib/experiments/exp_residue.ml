module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Journal = Recflow_machine.Journal
module Stamp = Recflow_recovery.Stamp
module Spawn_state = Recflow_recovery.Spawn_state
module Table = Recflow_stats.Table
module Workload = Recflow_workload.Workload
module Value = Recflow_lang.Value
module Plan = Recflow_fault.Plan

(* Arithmetic padding: [n] no-op terms evaluated before/after the call to
   C, stretching states c and f into windows wide enough to hit. *)
let pad_expr var n =
  String.concat " + " (List.init n (fun _ -> Printf.sprintf "(%s - %s)" var var))

let source =
  Printf.sprintf
    "def gg(w) = pp(w) + 1\n\
     def pp(w) = let r = cc(w + %s) in r + %s\n\
     def cc(w) = spin(w, 0)\n\
     def spin(k, acc) = if k == 0 then acc else spin(k - 1, acc + 1)"
    (pad_expr "w" 150) (pad_expr "r" 150)

let workload =
  {
    Workload.name = "residue_chain";
    description = "G -> P -> C chain with padded spawn-state windows";
    source;
    entry = "gg";
    args = (fun _ -> [ Value.Int 1000 ]);
  }

let g_stamp = Stamp.root

let p_stamp = Stamp.of_digits [ 0 ]

let c_stamp = Stamp.of_digits [ 0; 0 ]

let first journal stamp pred =
  List.find_map
    (fun (e : Journal.entry) -> if pred e.Journal.event then Some e.Journal.time else None)
    (Journal.for_stamp journal stamp)

type windows = {
  p_host : int;
  p_spawned : int;
  p_acked : int;
  c_spawned : int;
  c_acked : int;
  c_completed : int;
  c_accepted : int;  (* C's result accepted inside P *)
  p_completed : int;
  p_accepted : int;  (* P's result accepted at G *)
}

let host_in j stamp =
  List.find_map
    (fun (e : Journal.entry) ->
      match e.Journal.event with Journal.Activated { proc; _ } -> Some proc | _ -> None)
    (Journal.for_stamp j stamp)

let measure cfg =
  let r = Harness.probe cfg workload Workload.Small in
  let j = Cluster.journal r.Harness.cluster in
  let ev stamp pred = first j stamp pred in
  let get what = function
    | Some t -> t
    | None -> invalid_arg ("exp_residue: missing probe event " ^ what)
  in
  let host = host_in j p_stamp in
  {
    p_host = get "p host" host;
    p_spawned = get "p spawned" (ev p_stamp (function Journal.Spawned _ -> true | _ -> false));
    p_acked = get "p acked" (ev p_stamp (function Journal.Acked _ -> true | _ -> false));
    c_spawned = get "c spawned" (ev c_stamp (function Journal.Spawned _ -> true | _ -> false));
    c_acked = get "c acked" (ev c_stamp (function Journal.Acked _ -> true | _ -> false));
    c_completed =
      get "c completed" (ev c_stamp (function Journal.Completed _ -> true | _ -> false));
    c_accepted =
      get "c accepted" (ev c_stamp (function Journal.Result_accepted _ -> true | _ -> false));
    p_completed =
      get "p completed" (ev p_stamp (function Journal.Completed _ -> true | _ -> false));
    p_accepted =
      get "p accepted" (ev p_stamp (function Journal.Result_accepted _ -> true | _ -> false));
  }

(* The fail instant for each spawn state: the midpoint of its window.
   State a precedes P's existence, so the future host is killed before the
   spawn; state g strikes after P's answer reached G. *)
let window w state =
  let mid a b = if b > a + 1 then Some (a + ((b - a) / 2), Printf.sprintf "[%d,%d)" a b) else None in
  match state with
  | Spawn_state.A -> mid (max 1 (w.p_spawned - 15)) w.p_spawned
  | Spawn_state.B -> mid w.p_spawned w.p_acked
  | Spawn_state.C_established -> mid w.p_acked w.c_spawned
  | Spawn_state.D -> mid w.c_spawned w.c_acked
  | Spawn_state.E -> mid w.c_acked w.c_completed
  | Spawn_state.F -> mid w.c_accepted w.p_completed
  | Spawn_state.G_done -> mid (w.p_accepted + 1) (w.p_accepted + 3)

(* Find a placement seed where G, P and C live on three distinct
   processors, so killing P's node touches neither its parent nor its
   child — the configuration Figures 6-7 analyse. *)
let pick_seed base =
  let rec scan seed =
    if seed > 64 then invalid_arg "exp_residue: no seed separates G, P and C"
    else begin
      let cfg = { base with Config.seed } in
      let r = Harness.probe cfg workload Workload.Small in
      let j = Cluster.journal r.Harness.cluster in
      match (host_in j g_stamp, host_in j p_stamp, host_in j c_stamp) with
      | Some g, Some p, Some c when g <> p && c <> p -> seed
      | _ -> scan (seed + 1)
    end
  in
  scan 1

let run ?quick:_ () =
  let base = Config.default ~nodes:4 in
  let mk recovery =
    {
      base with
      Config.recovery;
      policy = Recflow_balance.Policy.Random;
      inline_depth = 3;
      detect_delay = 300;
      bounce_delay = 100;
    }
  in
  let seed = pick_seed (mk Config.Splice) in
  let mk recovery = { (mk recovery) with Config.seed = seed } in
  let table =
    Table.create ~title:"Failing P in every spawn state (Figures 6-7)"
      ~columns:
        [ "state"; "pointers present"; "window"; "fail at"; "recovery"; "re-issues"; "relays";
          "aborts"; "answer ok"; "G respawned" ]
  in
  let all_ok = ref true in
  let windows_ok = ref true in
  List.iter
    (fun recovery ->
      let cfg = mk recovery in
      let w = measure cfg in
      List.iter
        (fun state ->
          match window w state with
          | None ->
            windows_ok := false;
            Table.add_row table
              [ Spawn_state.to_string state; String.concat " " (Spawn_state.pointers state);
                "(empty)"; "-"; Config.recovery_to_string recovery; "-"; "-"; "-"; "-"; "-" ]
          | Some (fail_at, window_str) ->
            let r =
              Harness.run ~drain:true cfg workload Workload.Small
                ~failures:(Plan.single ~time:fail_at w.p_host)
            in
            let j = Cluster.journal r.Harness.cluster in
            let respawns =
              Journal.count j (function Journal.Respawned _ -> true | _ -> false)
            in
            let relays = Journal.count j (function Journal.Relayed _ -> true | _ -> false) in
            let aborts = Journal.count j (function Journal.Aborted _ -> true | _ -> false) in
            (* G must never need regeneration: its stamp never re-spawns. *)
            let g_respawned =
              List.exists
                (fun (e : Journal.entry) ->
                  match e.Journal.event with Journal.Respawned _ -> true | _ -> false)
                (Journal.for_stamp j g_stamp)
            in
            if (not r.Harness.correct) || g_respawned then all_ok := false;
            Table.add_row table
              [
                Spawn_state.to_string state;
                String.concat " " (Spawn_state.pointers state);
                window_str;
                string_of_int fail_at;
                Config.recovery_to_string recovery;
                string_of_int respawns;
                string_of_int relays;
                string_of_int aborts;
                Harness.c_bool r.Harness.correct;
                Harness.c_bool g_respawned;
              ])
        Spawn_state.all;
      Table.add_separator table)
    [ Config.Rollback; Config.Splice ];
  let checks =
    [
      ("every spawn state occupies a non-empty window", !windows_ok);
      ( "failing P in any state, under rollback or splice, is residue-free: the answer is \
         correct and G is never regenerated",
        !all_ok );
    ]
  in
  Report.make ~id:"F6" ~title:"Residue-free recovery across spawn states a-g"
    ~paper_source:"Figures 6-7, §4.3.2"
    ~notes:
      [
        "Windows b and d are the transient states (packet in flight, unacknowledged); the \
         failure there loses the packet and the retained checkpoint regenerates it — \"the \
         system acts as if the first invocation of P did not take place\".";
        "State f (C reduced, result inside P) is the case the paper flags for rollback: the \
         partial result stored in P is lost with it and C must be recomputed by P'.";
      ]
    ~checks [ table ]
