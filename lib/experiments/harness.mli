(** Shared run machinery for the experiments.

    Wraps [Cluster] with workload plumbing, correctness checking against
    the serial evaluator, and the probe-then-inject pattern used by all
    fault experiments. *)

module Cluster = Recflow_machine.Cluster
module Config = Recflow_machine.Config
module Workload = Recflow_workload.Workload

type run = {
  cluster : Cluster.t;
  outcome : Cluster.outcome;
  correct : bool;  (** answer present and equal to the serial reference *)
  makespan : int;  (** answer time, or sim end when no answer *)
  oracle : Recflow_machine.Oracle.report;
      (** recovery-correctness report; {!run} already asserted it holds *)
}

val run :
  ?drain:bool -> Config.t -> Workload.t -> Workload.size -> failures:Recflow_fault.Plan.t -> run
(** Build, fault-inject and drive a cluster, then check the recovery
    oracle ({!Recflow_machine.Oracle.assert_ok} — raises on violation). *)

val probe : Config.t -> Workload.t -> Workload.size -> run
(** Fault-free run (the oracle for fault placement and baselines). *)

val run_many : ('a -> 'b) -> 'a list -> 'b list
(** [run_many f xs] is [List.map f xs] fanned out over the shared domain
    pool ({!Recflow_parallel.Pool.default}, sized by the driver's
    [--jobs]).  Results come back in the order of [xs] and every run is
    determined by its own [Config.seed], so a sweep's output is
    bit-identical at any pool width.  Use for the independent points of
    an experiment sweep; the elements must not share mutable state. *)

val run_many_seeded :
  seed:int -> (rng:Recflow_sim.Rng.t -> 'a -> 'b) -> 'a list -> 'b list
(** Like {!run_many} for sweeps that draw extra randomness: element [i]
    receives a private stream split off a master generator seeded with
    [seed] before the fan-out, so the draws depend only on [(seed, i)]
    and the sweep stays bit-identical at any [--jobs]. *)

val warm_pool : unit -> unit
(** Force the shared pool into existence and run one trivial wider-than-
    the-pool batch through it, so domain spawn and first-wakeup costs land
    before any timed section instead of inside the first sweep.  The
    experiments driver calls this once after [--jobs] is applied; the
    benches hoist pool construction the same way. *)

type obs_info = { workload_name : string; size_name : string }

val set_obs_hook : (obs_info -> run -> unit) option -> unit
(** Install (or clear) an observability callback invoked after every
    harness run, probes included — the experiments binary uses it to dump
    a metrics document per simulated run ([--metrics-dir]) without any
    experiment knowing.  The hook must not mutate the cluster.

    The hook slot is an atomic read on the per-run hot path — no lock is
    taken, so hook bodies execute concurrently on pool domains
    ({!run_many}) and must be domain-safe: shard mutable state by pool
    slot ({!Recflow_obs_core.Collect}) or use [Atomic] for ordinals.
    Completion order across domains — and hence e.g. ordinal file
    numbering — is not deterministic under [--jobs] > 1, but the set of
    invocations is. *)

val synthetic_setup : quick:bool -> Workload.t * Workload.size * int
(** The standard controlled workload of the quantitative experiments: a
    binary tree (branching 2, depth 8, leaf grain 60) at Medium size
    (Small when [quick]), together with the matching [inline_depth] —
    leaf spins evaluate inline so tasks have real grain instead of
    unravelling into per-iteration chains. *)

val counter : run -> string -> int

val speedup : baseline:run -> run -> float
(** makespan ratio baseline/this. *)

val pct_of : part:int -> whole:int -> float

val c_int : int -> string

val c_float : ?decimals:int -> float -> string

val c_bool : bool -> string

val c_opt_value : Recflow_lang.Value.t option -> string
