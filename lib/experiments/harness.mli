(** Shared run machinery for the experiments.

    Wraps [Cluster] with workload plumbing, correctness checking against
    the serial evaluator, and the probe-then-inject pattern used by all
    fault experiments. *)

module Cluster = Recflow_machine.Cluster
module Config = Recflow_machine.Config
module Workload = Recflow_workload.Workload

type run = {
  cluster : Cluster.t;
  outcome : Cluster.outcome;
  correct : bool;  (** answer present and equal to the serial reference *)
  makespan : int;  (** answer time, or sim end when no answer *)
}

val run :
  ?drain:bool -> Config.t -> Workload.t -> Workload.size -> failures:Recflow_fault.Plan.t -> run

val probe : Config.t -> Workload.t -> Workload.size -> run
(** Fault-free run (the oracle for fault placement and baselines). *)

type obs_info = { workload_name : string; size_name : string }

val set_obs_hook : (obs_info -> run -> unit) option -> unit
(** Install (or clear) an observability callback invoked after every
    harness run, probes included — the experiments binary uses it to dump
    a metrics document per simulated run ([--metrics-dir]) without any
    experiment knowing.  The hook must not mutate the cluster. *)

val synthetic_setup : quick:bool -> Workload.t * Workload.size * int
(** The standard controlled workload of the quantitative experiments: a
    binary tree (branching 2, depth 8, leaf grain 60) at Medium size
    (Small when [quick]), together with the matching [inline_depth] —
    leaf spins evaluate inline so tasks have real grain instead of
    unravelling into per-iteration chains. *)

val counter : run -> string -> int

val speedup : baseline:run -> run -> float
(** makespan ratio baseline/this. *)

val pct_of : part:int -> whole:int -> float

val c_int : int -> string

val c_float : ?decimals:int -> float -> string

val c_bool : bool -> string

val c_opt_value : Recflow_lang.Value.t option -> string
