(** X5: one simulated run sharded across domains
    ({!Recflow_machine.Shardsim}) — answer, makespan and journal digest
    must be byte-identical whether the shards execute sequentially or on
    pools of width 2 and 4, with and without failures. *)

val run : ?quick:bool -> unit -> Report.t
