module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Table = Recflow_stats.Table
module Plan = Recflow_fault.Plan
module Stamp = Recflow_recovery.Stamp

type point = {
  grace : int;
  delta : int;
  extra_work : int;
  inherited : int;
  duplicates : int;
  correct : bool;
}

let run ?(quick = false) () =
  let w, size, inline_depth = Harness.synthetic_setup ~quick in
  let graces = if quick then [ 0; 80; 800 ] else [ 0; 20; 80; 200; 800; 3000 ] in
  let points =
    Harness.run_many
      (fun grace ->
        let cfg =
          {
            (Config.default ~nodes:8) with
            Config.inline_depth;
            recovery = Config.Splice;
            adoption_grace = grace;
            policy = Recflow_balance.Policy.Random;
          }
        in
        let probe = Harness.probe cfg w size in
        let journal = Cluster.journal probe.Harness.cluster in
        let t_fail = probe.Harness.makespan / 2 in
        let root_host =
          Option.to_list (Plan.Pick.host_of journal ~stamp:Stamp.root ~time:t_fail)
        in
        let victim =
          Option.value ~default:1 (Plan.Pick.busiest_at journal ~time:t_fail ~exclude:root_host)
        in
        let r = Harness.run cfg w size ~failures:(Plan.single ~time:t_fail victim) in
        {
          grace;
          delta = r.Harness.makespan - probe.Harness.makespan;
          extra_work =
            Cluster.total_work r.Harness.cluster - Cluster.total_work probe.Harness.cluster;
          inherited = Harness.counter r "spawn.inherited";
          duplicates = Harness.counter r "dup.ignored";
          correct = r.Harness.correct;
        })
      graces
  in
  let table =
    Table.create ~title:"Adoption grace sweep (splice, one failure at 50%)"
      ~columns:
        [ "grace (ticks)"; "recovery delta"; "extra work"; "orphans inherited"; "duplicates";
          "answer ok" ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          Harness.c_int p.grace;
          Printf.sprintf "%+d" p.delta;
          Harness.c_int p.extra_work;
          Harness.c_int p.inherited;
          Harness.c_int p.duplicates;
          Harness.c_bool p.correct;
        ])
    points;
  let at g = List.find (fun p -> p.grace = g) points in
  let zero = at 0 and mid = at 80 in
  let best_extra = List.fold_left (fun acc p -> min acc p.extra_work) max_int points in
  let checks =
    [
      ("all graces recover correctly", List.for_all (fun p -> p.correct) points);
      ("grace 0 inherits nothing (literal §4.2 protocol)", zero.inherited = 0);
      ("a modest grace enables inheritance", mid.inherited > 0);
      ( "inheritance cuts redone work vs the literal protocol",
        mid.extra_work < zero.extra_work );
      ( "the default grace (80) is within 25% of the best extra-work in the sweep",
        float_of_int mid.extra_work <= 1.25 *. float_of_int best_extra );
    ]
  in
  Report.make ~id:"X2" ~title:"Ablation: adoption grace for offspring inheritance"
    ~paper_source:"§4.1 (\"inherits all offspring\"); DESIGN.md implementation findings"
    ~notes:
      [
        "Grace 0 also disables orphan self-reports, reverting exactly to the protocol text of \
         §4.2: only completed orphan results are salvaged, and the twin re-demands everything \
         else.";
      ]
    ~checks [ table ]
