(** F3 — Figures 3–4: twin creation and offspring inheritance, live.

    Runs a real workload under splice recovery, kills a busy processor
    mid-run with a deliberately slow error-detection broadcast, and shows
    the Figure-3 sequence happening in the journal: an orphan's return
    bounces off its dead parent, reaches the grandparent, the grandparent
    regenerates a twin (step-parent) from its functional checkpoint, and
    the salvaged result is relayed into the twin — which therefore skips
    re-spawning that child. *)

val run : ?quick:bool -> unit -> Report.t
