module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Node = Recflow_machine.Node
module Table = Recflow_stats.Table
module Policy = Recflow_balance.Policy
module Plan = Recflow_fault.Plan
module Stamp = Recflow_recovery.Stamp
module Summary = Recflow_stats.Summary

let balance_spread cluster =
  (* Coefficient of variation of per-node busy time: 0 = perfectly even. *)
  let s = Summary.create () in
  List.iter
    (fun n -> if Node.is_alive n then Summary.observe_int s (Node.work_done n))
    (Cluster.nodes cluster);
  if Summary.mean s = 0.0 then 0.0 else Summary.stddev s /. Summary.mean s

let run ?(quick = false) () =
  let w, size, inline_depth = Harness.synthetic_setup ~quick in
  let nodes = 8 in
  let policies =
    [
      ("gradient (Lin-Keller [10])", Policy.Gradient { weight = 2 }, Recflow_net.Topology.Full nodes);
      ("random", Policy.Random, Recflow_net.Topology.Full nodes);
      ("round-robin", Policy.Round_robin, Recflow_net.Topology.Full nodes);
      ("static hash (§3.3 baseline)", Policy.Static_hash, Recflow_net.Topology.Full nodes);
      ("neighbourhood r=1 on ring (Grit [6])", Policy.Neighborhood { radius = 1 },
       Recflow_net.Topology.Ring nodes);
      ("distributed gradient on ring (ref [10], node-local)",
       Policy.Gradient_distributed { threshold = 1 }, Recflow_net.Topology.Ring nodes);
    ]
  in
  let table =
    Table.create ~title:"Placement policies, fault-free and with one failure (rollback)"
      ~columns:
        [ "policy"; "makespan"; "balance CV"; "faulty makespan"; "recovery delta";
          "static reassignments"; "answer ok" ]
  in
  let results =
    Harness.run_many
      (fun (name, policy, topology) ->
        let cfg =
          {
            (Config.default ~nodes) with
            Config.inline_depth;
            policy;
            topology;
            recovery = Config.Rollback;
          }
        in
        let probe = Harness.probe cfg w size in
        let journal = Cluster.journal probe.Harness.cluster in
        let t_fail = probe.Harness.makespan * 2 / 5 in
        let root_host =
          Option.to_list (Plan.Pick.host_of journal ~stamp:Stamp.root ~time:t_fail)
        in
        let victim =
          Option.value ~default:1 (Plan.Pick.busiest_at journal ~time:t_fail ~exclude:root_host)
        in
        let faulty = Harness.run cfg w size ~failures:(Plan.single ~time:t_fail victim) in
        let reassigned = Harness.counter faulty "static.reassigned" in
        (name, probe, faulty, reassigned))
      policies
  in
  (* Rows are rendered after the fan-out so the table mutates on one
     domain only, in policy order. *)
  List.iter
    (fun (name, probe, faulty, reassigned) ->
      Table.add_row table
        [
          name;
          Harness.c_int probe.Harness.makespan;
          Harness.c_float ~decimals:2 (balance_spread probe.Harness.cluster);
          Harness.c_int faulty.Harness.makespan;
          Printf.sprintf "%+d" (faulty.Harness.makespan - probe.Harness.makespan);
          Harness.c_int reassigned;
          Harness.c_bool (probe.Harness.correct && faulty.Harness.correct);
        ])
    results;
  let reassigned_of name =
    let _, _, _, r = List.find (fun (n, _, _, _) -> n = name) results in
    r
  in
  let dynamic =
    [ "gradient (Lin-Keller [10])"; "random"; "round-robin";
      "distributed gradient on ring (ref [10], node-local)" ]
  in
  let checks =
    [
      ( "every policy completes correctly, fault-free and faulty",
        List.for_all (fun (_, p, f, _) -> p.Harness.correct && f.Harness.correct) results );
      ( "dynamic policies never place a task on a known-dead processor",
        List.for_all (fun n -> reassigned_of n = 0) dynamic );
      ( "static allocation keeps nominating the dead processor and pays reassignments",
        reassigned_of "static hash (§3.3 baseline)" > 0 );
      ( "gradient balances at least as well as static hash fault-free",
        let cv name =
          let _, p, _, _ = List.find (fun (n, _, _, _) -> n = name) results in
          balance_spread p.Harness.cluster
        in
        cv "gradient (Lin-Keller [10])" <= cv "static hash (§3.3 baseline)" +. 0.05 );
    ]
  in
  Report.make ~id:"Q7" ~title:"Dynamic vs static allocation under recovery"
    ~paper_source:"§3.3 (dynamic allocation and recovery), §5.4 (Grit)"
    ~notes:
      [
        "Balance CV = stddev/mean of per-processor busy time over surviving nodes (lower is \
         more even).";
        "Static reassignments approximate §3.3's linkage fix-up cost: each one is a placement \
         that had to be detected as dead and re-homed.";
      ]
    ~checks [ table ]
