(** The call tree of Figure 1, reconstructed from the paper's text.

    Constraints taken verbatim from §3–§4: failing B fragments the tree
    into {A1,C1,C2,C3,D3}, {A2,D1,D2,C4} and {D4,D5,A5}; processor A holds
    the checkpoint for B1, C for B2, B3 and B5, D for B7; B2's children are
    D4 and A2; C4 spawned B5; B3's grandparent pointer reaches A1 and D4's
    reaches C1.  The unique tree shape satisfying all of these:

    {v
    A1(ε) ── B1 • C1 ── B2 ── D4 ── D5 ── A5
          │           └──── A2 ── D1 • D2 ── C4 ── B5
          ├─ C2 ── B3
          └─ C3 ── D3 ── B7
    v}

    Tasks are named as in the figure ("A1" means "a task on processor A");
    processors A..D map to ids 0..3. *)

module Stamp = Recflow_recovery.Stamp
module Ids = Recflow_recovery.Ids

type node = { label : string; stamp : Stamp.t; proc : Ids.proc_id; children : node list }

val root : node
(** A1. *)

val all : node list
(** Preorder. *)

val find : string -> node
(** @raise Not_found for an unknown label. *)

val parent : node -> node option

val grandparent : node -> node option

val proc_name : Ids.proc_id -> string
(** 0..3 → "A".."D". *)

val proc_of_name : string -> Ids.proc_id
(** @raise Not_found. *)

val on_processor : Ids.proc_id -> node list

val fragments : failed:Ids.proc_id -> string list list
(** Connected pieces of the tree after removing tasks on [failed], each as
    a sorted list of labels (pieces ordered by their topmost task's stamp). *)

val packet_of : node -> Recflow_recovery.Packet.t
(** A task packet for the node, with parent/grandparent links derived from
    the tree (the root uses the super-root linkage). *)
