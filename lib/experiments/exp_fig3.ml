module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Journal = Recflow_machine.Journal
module Stamp = Recflow_recovery.Stamp
module Table = Recflow_stats.Table
module Workload = Recflow_workload.Workload
module Plan = Recflow_fault.Plan

let run ?(quick = false) () =
  let size = if quick then Workload.Small else Workload.Medium in
  let w = Workload.tree_sum in
  let base = Config.default ~nodes:8 in
  (* Slow broadcast detection: orphan returns reach grandparents first, so
     twins are created by the "unexpected partial answer" path of §4.1
     rather than by the notice.  Random placement spreads a task's parent
     and grandparent across processors, so one failure rarely kills both —
     the gradient model co-locates lineages, which yields the stranded
     orphans studied in Q5 instead. *)
  let cfg =
    {
      base with
      Config.recovery = Config.Splice;
      policy = Recflow_balance.Policy.Random;
      detect_delay = 4000;
      bounce_delay = 80;
    }
  in
  let probe = Harness.probe cfg w size in
  let t_fail = probe.Harness.makespan * 2 / 5 in
  let root_host =
    Option.to_list (Plan.Pick.host_of (Cluster.journal probe.Harness.cluster) ~stamp:Recflow_recovery.Stamp.root ~time:t_fail)
  in
  let victim =
    match
      Plan.Pick.busiest_at (Cluster.journal probe.Harness.cluster) ~time:t_fail ~exclude:root_host
    with
    | Some p -> p
    | None -> 1
  in
  let faulty = Harness.run cfg w size ~failures:(Plan.single ~time:t_fail victim) in
  let journal = Cluster.journal faulty.Harness.cluster in
  (* Twins created on orphan evidence (an unexpected partial answer, or a
     living orphan's adoption report), and the relays they received. *)
  let twins =
    List.filter_map
      (fun (e : Journal.entry) ->
        match e.Journal.event with
        | Journal.Respawned { task; dest; reason }
          when reason = "orphan-result" || reason = "orphan-alive" ->
          Some (e.Journal.stamp, e.Journal.time, task, dest)
        | _ -> None)
      (Journal.entries journal)
  in
  let inherited_count =
    Journal.count journal (function Journal.Inherited _ -> true | _ -> false)
  in
  let relays =
    List.filter_map
      (fun (e : Journal.entry) ->
        match e.Journal.event with
        | Journal.Relayed { via } -> Some (e.Journal.stamp, e.Journal.time, via)
        | _ -> None)
      (Journal.entries journal)
  in
  let summary =
    Table.create ~title:"Splice recovery run (tree_sum, one failure)"
      ~columns:[ "metric"; "value" ]
  in
  let metric k v = Table.add_row summary [ k; v ] in
  metric "fault-free makespan" (Harness.c_int probe.Harness.makespan);
  metric "failure time / victim" (Printf.sprintf "%d / P%d" t_fail victim);
  metric "makespan with failure" (Harness.c_int faulty.Harness.makespan);
  metric "answer correct" (Harness.c_bool faulty.Harness.correct);
  metric "twins from orphan evidence" (Harness.c_int (List.length twins));
  metric "twins from failure notice"
    (Harness.c_int
       (Journal.count journal (function
         | Journal.Respawned { reason; _ } -> reason = "notice"
         | _ -> false)));
  metric "living orphans inherited by twins" (Harness.c_int inherited_count);
  metric "orphan results relayed" (Harness.c_int (List.length relays));
  metric "spawns skipped (answer already there)"
    (Harness.c_int (Harness.counter faulty "spawn.skipped_preheld"));
  metric "duplicate results ignored" (Harness.c_int (Harness.counter faulty "dup.ignored"));
  let twin_table =
    Table.create ~title:"Twin tasks (step-parents) created from checkpoints"
      ~columns:[ "stamp"; "created at"; "twin task"; "new processor"; "relays received" ]
  in
  let shown = if quick then 8 else 16 in
  List.iteri
    (fun i (stamp, time, task, dest) ->
      if i < shown then begin
        let received =
          List.length
            (List.filter
               (fun (s, _, _) ->
                 match Stamp.parent s with Some p -> Stamp.equal p stamp | None -> false)
               relays)
        in
        Table.add_row twin_table
          [
            Stamp.to_string stamp;
            Harness.c_int time;
            Printf.sprintf "task%d" task;
            Printf.sprintf "P%d" dest;
            Harness.c_int received;
          ]
      end)
    twins;
  let checks =
    [
      ("answer survives the failure and matches the serial result", faulty.Harness.correct);
      ("at least one twin was created on orphan evidence", twins <> []);
      ("twins inherited living orphans instead of cloning them", inherited_count > 0);
      ("orphan results were relayed through grandparents", relays <> []);
    ]
  in
  Report.make ~id:"F3" ~title:"Twin creation and offspring inheritance (splice)"
    ~paper_source:"Figures 3–4, §4.1–§4.2"
    ~notes:
      [
        "Detection is deliberately slowed (detect_delay = 4000) so grandchildren returns are \
         the first failure evidence grandparents see — the exact Figure 3 storyline.";
      ]
    ~checks [ summary; twin_table ]
