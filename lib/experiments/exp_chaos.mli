(** X4 — Chaos: loss, duplication, reordering, partitions, suspicion.

    The reliable network assumed by the paper is replaced by a hostile
    one: messages are dropped, duplicated, reordered, delayed and cut by a
    transient partition, with the reliable transport (transport acks,
    exponential-backoff retransmission, duplicate suppression) armed.  The
    sweep over loss rate × suspicion timeout measures the *price* of the
    weather — makespan inflation over the chaos-free baseline and
    retransmission volume — and shows that per §1 an aggressive timeout
    converts network weather into false suspicions, which determinacy (§2)
    renders benign: the falsely-suspected processor coexists with its twin
    and the answer never changes.  The recovery oracle is asserted on
    every run. *)

val run : ?quick:bool -> unit -> Report.t
