(** Q1 — Fault-free overhead of functional checkpointing.

    The paper's central engineering claim (§2, §6): functional
    checkpointing is "concise, distributed and asynchronous" and costs
    almost nothing in normal operation, unlike periodic global
    checkpointing which stops the machine at every interval.  We run the
    same workload with no fault tolerance, with functional checkpointing
    (rollback and splice variants), and with task replication, and put the
    periodic-global model next to them across a sweep of intervals. *)

val run : ?quick:bool -> unit -> Report.t
