(* X4: survive a hostile network.

   Sweep message-loss rate × suspicion timeout under a fixed background of
   duplication, reordering, delay spikes and one transient partition, with
   the reliable transport armed.  Determinacy (§2) promises the answer
   cannot change; what the sweep measures is the *price*: makespan
   inflation over the chaos-free baseline, retransmission volume, and how
   an aggressive suspicion timeout converts network weather into false
   suspicions (abandoned-but-live processors replaced by twins). *)

module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Oracle = Recflow_machine.Oracle
module Chaos = Recflow_net.Chaos
module Plan = Recflow_fault.Plan
module Table = Recflow_stats.Table

type point = {
  drop : float;
  susp : int;
  all_correct : bool;
  all_oracle_ok : bool;
  inflation : float;  (** mean makespan / clean-probe makespan *)
  retransmit : float;  (** mean per run *)
  dropped : float;
  dup_suppressed : float;
  false_suspicions : int;  (** total over seeds *)
  suspected : int;
}

let mean xs =
  match xs with [] -> 0.0 | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let run ?(quick = false) () =
  let w, size, inline_depth = Harness.synthetic_setup ~quick in
  let drops = if quick then [ 0.0; 0.1; 0.2 ] else [ 0.0; 0.05; 0.1; 0.2 ] in
  let susps = if quick then [ 700; 2400 ] else [ 600; 1200; 2400 ] in
  let seeds = if quick then [ 42; 1042 ] else [ 42; 1042; 2042; 3042 ] in
  let base seed =
    {
      (Config.default ~nodes:8) with
      Config.inline_depth;
      recovery = Config.Splice;
      policy = Recflow_balance.Policy.Random;
      seed;
    }
  in
  (* Chaos-free probes: the makespan baseline, one per seed. *)
  let clean = Harness.run_many (fun s -> (s, Harness.probe (base s) w size)) seeds in
  let clean_makespan s = (List.assoc s clean).Harness.makespan in
  (* One transient partition cutting processors 1-2 off for the middle
     third of the clean run (absolute window, same for every cell). *)
  let m0 = clean_makespan (List.hd seeds) in
  let p_from = m0 / 3 and p_until = (m0 / 3) + (max 900 (m0 / 3)) in
  let cells =
    List.concat_map
      (fun d -> List.concat_map (fun s -> List.map (fun sd -> (d, s, sd)) seeds) susps)
      drops
  in
  let runs =
    Harness.run_many
      (fun (d, susp, seed) ->
        let chaos =
          Chaos.none |> Plan.drop_rate d |> Plan.duplicate_rate 0.1
          |> Plan.reorder ~rate:0.15 ~spread:120
          |> Plan.delay_spikes ~rate:0.05 ~max_delay:800
          |> Plan.partition ~from:p_from ~until:p_until ~groups:[ [ 1; 2 ] ]
        in
        let cfg = base seed in
        let cfg =
          {
            cfg with
            Config.chaos;
            reliable = true;
            retry = { cfg.Config.retry with Config.suspicion_after = susp };
          }
        in
        ((d, susp, seed), Harness.run ~drain:true cfg w size ~failures:[]))
      cells
  in
  let point d susp =
    let rs =
      List.filter_map
        (fun ((d', s', seed), r) -> if d' = d && s' = susp then Some (seed, r) else None)
        runs
    in
    let fmean f = mean (List.map (fun (_, r) -> float_of_int (f r)) rs) in
    {
      drop = d;
      susp;
      all_correct = List.for_all (fun (_, r) -> r.Harness.correct) rs;
      all_oracle_ok = List.for_all (fun (_, r) -> Oracle.ok r.Harness.oracle) rs;
      inflation =
        mean
          (List.map
             (fun (seed, r) ->
               float_of_int r.Harness.makespan /. float_of_int (clean_makespan seed))
             rs);
      retransmit = fmean (fun r -> Harness.counter r "net.retransmit");
      dropped = fmean (fun r -> Harness.counter r "net.msg_dropped");
      dup_suppressed = fmean (fun r -> Harness.counter r "net.dup_suppressed");
      false_suspicions =
        List.fold_left (fun acc (_, r) -> acc + Harness.counter r "net.false_suspicion") 0 rs;
      suspected = List.fold_left (fun acc (_, r) -> acc + Harness.counter r "net.suspected") 0 rs;
    }
  in
  let points = List.concat_map (fun d -> List.map (point d) susps) drops in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Loss rate x suspicion timeout (dup 10%%, reorder 15%%, spikes, partition \
            [%d,%d) of procs 1-2, %d seeds)"
           p_from p_until (List.length seeds))
      ~columns:
        [ "drop"; "suspicion"; "correct"; "makespan x"; "retransmits"; "dropped";
          "dup suppressed"; "false suspicions"; "suspected" ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          Printf.sprintf "%.0f%%" (100.0 *. p.drop);
          Harness.c_int p.susp;
          Harness.c_bool (p.all_correct && p.all_oracle_ok);
          Harness.c_float p.inflation;
          Harness.c_float ~decimals:1 p.retransmit;
          Harness.c_float ~decimals:1 p.dropped;
          Harness.c_float ~decimals:1 p.dup_suppressed;
          Harness.c_int p.false_suspicions;
          Harness.c_int p.suspected;
        ])
    points;
  let max_drop = List.fold_left max 0.0 drops in
  let min_susp = List.fold_left min max_int susps in
  let max_susp = List.fold_left max 0 susps in
  let at d s = List.find (fun p -> p.drop = d && p.susp = s) points in
  let sum_over pred f = List.fold_left (fun acc p -> if pred p then acc + f p else acc) 0 points in
  let checks =
    [
      ("every chaotic run returns the correct answer", List.for_all (fun p -> p.all_correct) points);
      ("the recovery oracle holds on every run", List.for_all (fun p -> p.all_oracle_ok) points);
      ( "retransmissions grow with the loss rate",
        (at max_drop max_susp).retransmit > (at 0.0 max_susp).retransmit );
      ( "the partition alone already costs retransmissions at drop 0",
        (at 0.0 max_susp).dropped > 0.0 );
      ( "injected duplicates are suppressed",
        List.exists (fun p -> p.dup_suppressed > 0.0) points );
      ( "an aggressive suspicion timeout falsely suspects live processors",
        sum_over (fun p -> p.susp = min_susp) (fun p -> p.false_suspicions) > 0 );
      ( "a patient timeout suspects no more than an aggressive one",
        sum_over (fun p -> p.susp = max_susp) (fun p -> p.suspected)
        <= sum_over (fun p -> p.susp = min_susp) (fun p -> p.suspected) );
    ]
  in
  Report.make ~id:"X4" ~title:"Chaos: loss, duplication, reordering, partitions, suspicion"
    ~paper_source:"§1 (timeout ⇒ treat as faulty), §2 (determinacy makes re-execution safe)"
    ~notes:
      [
        "The reliable network of the paper is replaced by a lossy one; \
         Task_packet/Result/Orphan_alive/Reparent sends get transport acks, exponential-backoff \
         retransmission and receiver-side duplicate suppression.";
        "A sender that waits out the whole suspicion window treats the silent destination as \
         faulty (per §1) and routes the message down the existing bounce/recovery path; a \
         falsely-suspected live processor coexists with its twin and determinacy makes \
         whichever result lands first correct.";
      ]
    ~checks [ table ]
