(** X6 — Service: request streams surviving mid-stream failures.

    A long open-loop request stream (Poisson arrivals) is fed into one
    persistent cluster and two processors are killed mid-stream.  The
    sweep over arrival rate × network weather × replication degree
    measures what a *client* of the system sees: per-request latency
    percentiles, goodput, and the honest outcome split
    (completed / masked / recovered / shed).  The headline check is the
    §5.3 claim read through SLO eyes — with k=3 replication the surviving
    replicas outvote a killed one, so the p99 penalty a failure inflicts
    is measurably smaller than under k=1, where disturbed requests pay
    the full checkpoint-recovery latency.  Every request in every run is
    verified against the serial reference and the per-request recovery
    oracle. *)

val run : ?quick:bool -> unit -> Report.t
