(** F5 — Figure 5: the eight orderings of a child's completion.

    A three-task family is run under splice recovery: P spawns a fast child
    C and a slow sibling D; P's processor is killed at a chosen instant.
    By sweeping the child's work, the failure time, the detection delay and
    the placement seed, the deterministic simulator is steered into each of
    the paper's eight cases (C never invoked, C never completes, C
    completes before/after each recovery milestone).  For every case the
    experiment reports the parameters found, the observed timeline, and
    verifies that the final answer is correct and duplicates were ignored —
    the exactly-once result semantics the case analysis of §4.1 argues. *)

val run : ?quick:bool -> unit -> Report.t
