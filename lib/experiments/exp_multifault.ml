module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Journal = Recflow_machine.Journal
module Table = Recflow_stats.Table
module Plan = Recflow_fault.Plan
module Stamp = Recflow_recovery.Stamp

type row = {
  scenario : string;
  victims : string;
  delta : int;
  stranded : int;
  relayed : int;
  stashed : int;
  branches_recovered : int;
  correct : bool;
}

let branches_with_respawns journal =
  Journal.entries journal
  |> List.filter_map (fun (e : Journal.entry) ->
         match e.Journal.event with
         | Journal.Respawned _ -> (
           match Stamp.digits e.Journal.stamp with d :: _ -> Some d | [] -> None)
         | _ -> None)
  |> List.sort_uniq compare
  |> List.length

let scenario_row cfg w size probe ~scenario ~victims_at =
  let journal = Cluster.journal probe.Harness.cluster in
  let t_fail = probe.Harness.makespan * 2 / 5 in
  match victims_at journal t_fail with
  | None -> None
  | Some victims ->
    let failures = List.map (fun v -> (t_fail, v)) victims in
    let r = Harness.run ~drain:true cfg w size ~failures in
    let j = Cluster.journal r.Harness.cluster in
    Some
      {
        scenario;
        victims = String.concat "," (List.map (Printf.sprintf "P%d") victims);
        delta = r.Harness.makespan - probe.Harness.makespan;
        stranded = Harness.counter r "relay.stranded";
        relayed = Harness.counter r "relay.forwarded";
        stashed = Harness.counter r "relay.stashed";
        branches_recovered = branches_with_respawns j;
        correct = r.Harness.correct;
      }

let run ?(quick = false) () =
  let w, size, inline_depth = Harness.synthetic_setup ~quick in
  let mk ancestor_depth =
    {
      (Config.default ~nodes:8) with
      Config.inline_depth;
      recovery = Config.Splice;
      ancestor_depth;
      (* gradient placement co-locates lineages, making chain failures
         plentiful; detection is slowed so salvage races are visible *)
      policy = Recflow_balance.Policy.Gradient { weight = 2 };
      detect_delay = 1500;
    }
  in
  let cfg1 = mk 1 in
  let cfg2 = mk 2 in
  let probe1, probe2 =
    match Harness.run_many (fun cfg -> Harness.probe cfg w size) [ cfg1; cfg2 ] with
    | [ p1; p2 ] -> (p1, p2)
    | _ -> assert false
  in
  let rows =
    List.filter_map Fun.id
    @@ Harness.run_many
         (fun scenario -> scenario ())
         [
           (fun () ->
             scenario_row cfg1 w size probe1 ~scenario:"single failure (reference)"
               ~victims_at:(fun j t ->
                 Option.map (fun v -> [ v ]) (Plan.Pick.busiest_at j ~time:t ~exclude:[])));
           (fun () ->
             scenario_row cfg1 w size probe1 ~scenario:"two failures, disjoint branches"
               ~victims_at:(fun j t ->
                 Option.map (fun (a, b) -> [ a; b ]) (Plan.Pick.disjoint_pair j ~time:t)));
           (fun () ->
             scenario_row cfg1 w size probe1 ~scenario:"parent+grandparent chain (depth-1 links)"
               ~victims_at:(fun j t ->
                 Option.map
                   (fun (p, g) -> [ p; g ])
                   (Plan.Pick.parent_grandparent_pair j ~time:t)));
           (fun () ->
             scenario_row cfg2 w size probe2 ~scenario:"parent+grandparent chain (depth-2 links)"
               ~victims_at:(fun j t ->
                 Option.map
                   (fun (p, g) -> [ p; g ])
                   (Plan.Pick.parent_grandparent_pair j ~time:t)));
         ]
  in
  let table =
    Table.create ~title:"Multiple simultaneous failures under splice"
      ~columns:
        [ "scenario"; "victims"; "recovery delta"; "stranded"; "relayed"; "stashed";
          "branches recovering"; "answer ok" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.scenario;
          r.victims;
          Printf.sprintf "%+d" r.delta;
          Harness.c_int r.stranded;
          Harness.c_int r.relayed;
          Harness.c_int r.stashed;
          Harness.c_int r.branches_recovered;
          Harness.c_bool r.correct;
        ])
    rows;
  let find s = List.find_opt (fun r -> r.scenario = s) rows in
  let chain1 = find "parent+grandparent chain (depth-1 links)" in
  let chain2 = find "parent+grandparent chain (depth-2 links)" in
  let disjoint = find "two failures, disjoint branches" in
  let checks =
    [
      ("every scenario completes with the serial answer", List.for_all (fun r -> r.correct) rows);
      ("all four scenarios were constructible from the probe run", List.length rows = 4);
      ( "disjoint-branch failures recover in parallel (respawns in both branches)",
        match disjoint with Some r -> r.branches_recovered >= 2 | None -> false );
      ( "chain failure with grandparent-only links strands orphans",
        match chain1 with Some r -> r.stranded > 0 | None -> false );
      ( "great-grandparent links resume salvage past a dead grandparent",
        match (chain1, chain2) with
        | Some c1, Some c2 -> c2.stranded < c1.stranded
        | _ -> false );
    ]
  in
  Report.make ~id:"Q5" ~title:"Multiple faults: disjoint branches vs ancestor chains"
    ~paper_source:"§5.2 (multiple faults; great-grandparent extension)"
    ~notes:
      [
        "\"Stashed\" counts salvaged results held by a twin until it re-created the next chain \
         link — the mechanism behind the depth-2 recovery.";
        "The same victim pair is used for both chain rows when placements coincide; otherwise \
         each probe supplies its own pair.";
      ]
    ~checks [ table ]
