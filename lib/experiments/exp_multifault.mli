(** Q5 — Multiple faults (§5.2).

    Three scenarios under splice recovery:
    - two simultaneous failures on *disjoint branches* of the call tree:
      "separate recoveries take place at different parts of the program in
      parallel" and nothing is stranded by design;
    - simultaneous failure of a task's *parent and grandparent* hosts:
      orphans on that chain are stranded (their salvage drops), though the
      computation still completes through checkpoint re-issue;
    - the same chain failure with the great-grandparent extension
      ([ancestor_depth = 2]): the orphan return climbs one level higher
      and salvage resumes. *)

val run : ?quick:bool -> unit -> Report.t
