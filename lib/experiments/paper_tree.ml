module Stamp = Recflow_recovery.Stamp
module Ids = Recflow_recovery.Ids
module Packet = Recflow_recovery.Packet
module Value = Recflow_lang.Value

type node = { label : string; stamp : Stamp.t; proc : Ids.proc_id; children : node list }

let proc_a = 0
let proc_b = 1
let proc_c = 2
let proc_d = 3

let proc_name = function
  | 0 -> "A"
  | 1 -> "B"
  | 2 -> "C"
  | 3 -> "D"
  | p -> Ids.proc_to_string p

let proc_of_name = function
  | "A" -> proc_a
  | "B" -> proc_b
  | "C" -> proc_c
  | "D" -> proc_d
  | _ -> raise Not_found

(* Build the tree top-down, deriving stamps from child positions. *)
let root =
  let n label proc stamp children = { label; stamp; proc; children } in
  let s = Stamp.of_digits in
  n "A1" proc_a (s [])
    [
      n "B1" proc_b (s [ 0 ]) [];
      n "C1" proc_c (s [ 1 ])
        [
          n "B2" proc_b (s [ 1; 0 ])
            [
              n "D4" proc_d (s [ 1; 0; 0 ])
                [ n "D5" proc_d (s [ 1; 0; 0; 0 ]) [ n "A5" proc_a (s [ 1; 0; 0; 0; 0 ]) [] ] ];
              n "A2" proc_a (s [ 1; 0; 1 ])
                [
                  n "D1" proc_d (s [ 1; 0; 1; 0 ]) [];
                  n "D2" proc_d (s [ 1; 0; 1; 1 ])
                    [ n "C4" proc_c (s [ 1; 0; 1; 1; 0 ]) [ n "B5" proc_b (s [ 1; 0; 1; 1; 0; 0 ]) [] ] ];
                ];
            ];
        ];
      n "C2" proc_c (s [ 2 ]) [ n "B3" proc_b (s [ 2; 0 ]) [] ];
      n "C3" proc_c (s [ 3 ]) [ n "D3" proc_d (s [ 3; 0 ]) [ n "B7" proc_b (s [ 3; 0; 0 ]) [] ] ];
    ]

let all =
  let rec go n acc = List.fold_left (fun acc c -> go c acc) (n :: acc) n.children in
  List.rev (go root [])

let find label =
  match List.find_opt (fun n -> String.equal n.label label) all with
  | Some n -> n
  | None -> raise Not_found

let parent n =
  match Stamp.parent n.stamp with
  | None -> None
  | Some ps -> List.find_opt (fun m -> Stamp.equal m.stamp ps) all

let grandparent n = Option.bind (parent n) parent

let on_processor proc = List.filter (fun n -> n.proc = proc) all

let fragments ~failed =
  let survivors = List.filter (fun n -> n.proc <> failed) all in
  let alive label = List.exists (fun n -> String.equal n.label label) survivors in
  (* A surviving task joins its parent's piece iff the parent survives;
     otherwise it roots a new piece. *)
  let piece_root n =
    let rec up m = match parent m with Some p when alive p.label -> up p | _ -> m in
    up n
  in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun n ->
      let r = (piece_root n).label in
      let cur = Option.value ~default:[] (Hashtbl.find_opt tbl r) in
      Hashtbl.replace tbl r (n.label :: cur))
    survivors;
  Hashtbl.fold (fun r members acc -> (r, List.sort String.compare members) :: acc) tbl []
  |> List.sort (fun (r1, _) (r2, _) -> Stamp.compare (find r1).stamp (find r2).stamp)
  |> List.map snd

let packet_of n =
  let link_of (m : node) =
    match parent m with
    | None -> { Packet.task = Ids.no_task; proc = Ids.super_root; slot = 0 }
    | Some p -> { Packet.task = Stamp.hash p.stamp; proc = p.proc; slot = 0 }
  in
  match parent n with
  | None -> Packet.root ~fname:"task" ~args:[| Value.Int 0 |] ~super_slot:0
  | Some p ->
    Packet.make ~stamp:n.stamp ~fname:"task" ~args:[| Value.Int 0 |]
      ~parent:{ Packet.task = Stamp.hash p.stamp; proc = p.proc; slot = 0 }
      ~grandparent:(Some (link_of p)) ~ancestors:[]
