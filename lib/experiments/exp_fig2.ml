module Stamp = Recflow_recovery.Stamp
module Table = Recflow_stats.Table
module T = Paper_tree

let run ?quick:_ () =
  let table =
    Table.create ~title:"Grandparent pointers (Figure 2)"
      ~columns:[ "task"; "parent"; "grandparent pointer"; "grandparent processor" ]
  in
  let gp_of_label = Hashtbl.create 16 in
  List.iter
    (fun (n : T.node) ->
      let parent = T.parent n in
      let gp = T.grandparent n in
      Hashtbl.replace gp_of_label n.T.label (Option.map (fun (g : T.node) -> g.T.label) gp);
      Table.add_row table
        [
          n.T.label;
          (match parent with Some p -> p.T.label | None -> "(super-root)");
          (match gp with Some g -> g.T.label | None -> "-");
          (match gp with Some g -> T.proc_name g.T.proc | None -> "-");
        ])
    T.all;
  let gp label = Option.join (Hashtbl.find_opt gp_of_label label) in
  let checks =
    [
      ("B3's grandparent pointer reaches A1", gp "B3" = Some "A1");
      ("D4's grandparent pointer reaches C1", gp "D4" = Some "C1");
      ("B5's grandparent pointer reaches D2", gp "B5" = Some "D2");
      ( "every depth>=2 task has a grandparent pointer",
        List.for_all
          (fun (n : T.node) -> Stamp.depth n.T.stamp < 2 || gp n.T.label <> None)
          T.all );
      ( "the pointer always reaches the stamp two levels up",
        List.for_all
          (fun (n : T.node) ->
            match T.grandparent n with
            | None -> true
            | Some g -> (
              match Option.bind (Stamp.parent n.T.stamp) Stamp.parent with
              | Some s -> Stamp.equal s g.T.stamp
              | None -> false))
          T.all );
    ]
  in
  Report.make ~id:"F2" ~title:"Grandparent pointers" ~paper_source:"Figure 2, §4.1"
    ~notes:
      [
        "The grandparent pointer is the only structural overhead splice recovery adds to a \
         packet: one processor/task identification (\"may be just an integer\", §4.2).";
      ]
    ~checks [ table ]
