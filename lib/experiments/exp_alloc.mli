(** Q7 — Allocation policy ablation (§3.3).

    The paper argues that re-issue recovery presupposes *dynamic*
    allocation: with the gradient model, a regenerated task "is
    indistinguishable from an original one" — no linkage fix-up, no
    rebalancing problem.  A static allocator keeps nominating the dead
    processor and every such placement must be detected and reassigned.
    We compare gradient, random, round-robin, static-hash and the
    Grit-style 1-hop neighbourhood restriction, fault-free and with one
    failure. *)

val run : ?quick:bool -> unit -> Report.t
