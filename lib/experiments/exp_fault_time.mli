(** Q2 — Recovery cost as a function of when the fault strikes.

    §6: "if a fault happens at a later stage of the evaluation, the
    rollback recovery may be costly" — because rollback discards every
    partial result below the re-issued checkpoints, and late in the run
    there is more to discard.  Splice salvages orphan results, so its cost
    should grow more slowly with fault time.  We kill the busiest
    non-root processor at 10%–90% of the fault-free makespan under both
    schemes and report completion time, re-issued tasks and wasted work. *)

val run : ?quick:bool -> unit -> Report.t
