(** X8 — Scale sweep: the machine at 1024 processors and a million tasks.

    §1 sells applicative systems on "aggregation of processors"; this
    sweep checks the simulator itself can follow the claim two orders of
    magnitude past the quantitative experiments.  A uniform binary tree
    with the leaf level inlined is driven fault-free over a
    (processors x tasks) grid up to 1024 x ~1M under static placement,
    with the scale machinery on: arena task storage, batched delivery
    ([Config.batched_delivery]) and a non-retaining journal
    ([Config.journal_retain = false]).  Reports makespan, engine events
    per task, and — in the full run only, to keep the quick report
    deterministic across [--jobs] — CPU seconds, events/s and peak heap
    words sampled at every major-GC slice. *)

val run : ?quick:bool -> unit -> Report.t
