module Config = Recflow_machine.Config
module Table = Recflow_stats.Table
module Cluster = Recflow_machine.Cluster
module Plan = Recflow_fault.Plan
module Stamp = Recflow_recovery.Stamp

let run ?(quick = false) () =
  let w, size, inline_depth = Harness.synthetic_setup ~quick in
  let base = { (Config.default ~nodes:8) with Config.inline_depth } in
  let fractions = if quick then [ 0.3; 0.6 ] else [ 0.15; 0.3; 0.45; 0.6; 0.75 ] in
  let detects = [ 200; 2500 ] in
  let table =
    Table.create ~title:"Fate of orphan results by scheme, fault time and detection delay"
      ~columns:
        [ "fault at"; "detect"; "scheme"; "orphan returns"; "relayed"; "adopted pre-spawn";
          "duplicates"; "stranded"; "dropped (rollback)"; "answer ok" ]
  in
  let splice_adopted = ref 0 and splice_relayed = ref 0 in
  let rollback_dropped = ref 0 and rollback_salvaged = ref 0 in
  let all_correct = ref true in
  (* One block per (detect, scheme): probe once, then every fault time of
     the block in parallel; accumulation and table rows happen afterwards
     on the submitting domain, in sweep order. *)
  let blocks =
    Harness.run_many
      (fun (detect, recovery) ->
        let cfg =
          { base with Config.recovery; detect_delay = detect;
            policy = Recflow_balance.Policy.Random }
        in
        let probe = Harness.probe cfg w size in
        let journal = Cluster.journal probe.Harness.cluster in
        let points =
          Harness.run_many
            (fun frac ->
              let t_fail = int_of_float (frac *. float_of_int probe.Harness.makespan) in
              let root_host =
                Option.to_list (Plan.Pick.host_of journal ~stamp:Stamp.root ~time:t_fail)
              in
              let victim =
                Option.value ~default:1
                  (Plan.Pick.busiest_at journal ~time:t_fail ~exclude:root_host)
              in
              let r =
                Harness.run ~drain:true cfg w size
                  ~failures:(Plan.single ~time:t_fail victim)
              in
              let c name = Harness.counter r name in
              ( frac,
                [
                  ("relay.sent", c "relay.sent");
                  ("relay.forwarded", c "relay.forwarded");
                  ("spawn.skipped_preheld", c "spawn.skipped_preheld");
                  ("dup.ignored", c "dup.ignored");
                  ("relay.stranded", c "relay.stranded");
                  ("result.orphan_dropped", c "result.orphan_dropped");
                ],
                r.Harness.correct ))
            fractions
        in
        (detect, recovery, points))
      (List.concat_map
         (fun detect ->
           List.map (fun recovery -> (detect, recovery)) [ Config.Rollback; Config.Splice ])
         detects)
  in
  List.iter
    (fun (detect, recovery, points) ->
      List.iter
        (fun (frac, counters, correct) ->
          if not correct then all_correct := false;
          let c name = List.assoc name counters in
          let adopted = c "spawn.skipped_preheld" in
          (match recovery with
          | Config.Splice ->
            splice_adopted := !splice_adopted + adopted;
            splice_relayed := !splice_relayed + c "relay.forwarded"
          | Config.Rollback ->
            rollback_dropped := !rollback_dropped + c "result.orphan_dropped";
            rollback_salvaged := !rollback_salvaged + c "relay.forwarded"
          | Config.No_recovery | Config.Replicate _ -> ());
          Table.add_row table
            [
              Printf.sprintf "%.0f%%" (100.0 *. frac);
              Harness.c_int detect;
              Config.recovery_to_string recovery;
              Harness.c_int (c "relay.sent" + c "result.orphan_dropped");
              Harness.c_int (c "relay.forwarded");
              Harness.c_int adopted;
              Harness.c_int (c "dup.ignored");
              Harness.c_int (c "relay.stranded");
              Harness.c_int (c "result.orphan_dropped");
              Harness.c_bool correct;
            ])
        points;
      Table.add_separator table)
    blocks;
  let checks =
    [
      ("all runs produce the serial answer", !all_correct);
      ("splice relays orphan results through grandparents", !splice_relayed > 0);
      ( "some salvaged results are adopted by twins before re-spawning (cases 4-5)",
        !splice_adopted > 0 );
      ("rollback drops orphan results instead of relaying", !rollback_salvaged = 0
                                                            && !rollback_dropped > 0);
    ]
  in
  Report.make ~id:"Q3" ~title:"Salvage accounting for orphan results"
    ~paper_source:"§3.4 (orphan tasks), §4.1 (splice salvage)"
    ~notes:
      [
        "Runs use drain mode so orphan returns that arrive after the root answer are still \
         accounted.";
        "\"Adopted pre-spawn\" is the pure salvage win: the twin found the answer already \
         there and skipped re-spawning the subtree.";
      ]
    ~checks [ table ]
