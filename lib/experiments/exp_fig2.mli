(** F2 — Figure 2: grandparent pointers over the Figure-1 tree.

    Verifies that the backward linkage splice recovery relies on is exactly
    the paper's: B3's grandparent pointer reaches A1, D4's reaches C1, and
    in general every task at depth ≥ 2 points two levels up. *)

val run : ?quick:bool -> unit -> Report.t
