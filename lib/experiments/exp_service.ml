(* X6: continuous request traffic that survives failures mid-stream.

   The batch experiments ask what one program costs to recover; a service
   asks what its *users* see.  Sweep arrival rate × network weather ×
   replication degree over a long open-loop request stream into one
   persistent cluster; each cell first runs fault-free (the probe, which
   doubles as the penalty baseline), then re-runs with two mid-stream
   kills aimed — probe-then-inject, like every fault experiment — at
   processors hosting still-unanswered replica roots.  The answer is read
   off the latency distribution: replication (k=3) masks the kill out of
   the tail that checkpoint recovery alone (k=1) pays in full, while
   admission control keeps every outcome honestly accounted
   (completed / masked / recovered / shed).  Every request in every run
   is checked against the serial reference and the per-request oracle. *)

module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Oracle = Recflow_machine.Oracle
module Workload = Recflow_workload.Workload
module Service = Recflow_service.Service
module Chaos = Recflow_net.Chaos
module Plan = Recflow_fault.Plan
module Hdr = Recflow_stats.Hdr
module Table = Recflow_stats.Table

type cell = {
  arrival : float;
  lossy : bool;
  k : int;
  faulty : bool;
  counts : Service.counts;
  p50 : int;
  p99 : int;
  p999 : int;
  p99_disturbed : int;  (** 0 when no request was disturbed *)
  penalty : int option;
      (** median sojourn of disturbed requests minus median sojourn of
          undisturbed requests of the same run — both populations share
          the post-kill cluster, so capacity loss cancels and what
          remains is the recovery (or masking) cost of a typical
          disturbed request *)
  goodput : float;
  all_correct : bool;
  oracle_ok : bool;
}

let net_label lossy = if lossy then "lossy" else "clean"

let nearest_rank xs q =
  let n = Array.length xs in
  xs.(max 0 (int_of_float (Float.ceil (q /. 100.0 *. float_of_int n)) - 1))

let penalty_of (o : Service.outcome) =
  let sojourns ~disturbed =
    List.filter_map
      (fun r ->
        match r.Service.finish with
        | Some f when r.Service.disturbed_replicas > 0 = disturbed -> Some (f - r.Service.arrival)
        | _ -> None)
      o.Service.records
    |> List.sort compare |> Array.of_list
  in
  let d = sojourns ~disturbed:true and u = sojourns ~disturbed:false in
  if Array.length d = 0 || Array.length u = 0 then None
  else Some (nearest_rank d 50.0 - nearest_rank u 50.0)

(* Pick a kill that provably disturbs the stream: take a mid-stream
   request from the probe, kill — strictly between its arrival and its
   completion — the processor hosting its slowest replica root.  Up to
   the first kill the faulty run replays the probe exactly (determinism),
   so that root is still unanswered when its host dies: under k=1 the
   request must take the recovery path, under k=3 the survivors outvote
   it.  Replica roots of request [rid] are cluster uids [k*rid ..
   k*rid+k-1] (nothing is shed in the underloaded probe). *)
let kill_for probe ~k ~rid ~after ~not_proc =
  let cl = probe.Service.cluster in
  let r = List.nth probe.Service.records rid in
  match r.Service.finish with
  | None -> None
  | Some finish -> (
    let time = (r.Service.arrival + finish) / 2 in
    if time <= after then None
    else
      let slowest =
        List.fold_left
          (fun best uid ->
            let t = Option.value ~default:max_int (Cluster.request_answer_time cl uid) in
            match best with Some (_, bt) when bt >= t -> best | _ -> Some (uid, t))
          None
          (List.init k (fun i -> (k * rid) + i))
      in
      match slowest with
      | Some (uid, t) when t > time -> (
        match Cluster.request_dest cl uid with
        | Some p when p <> not_proc -> Some (time, p)
        | _ -> None)
      | _ -> None)

let plan_for probe ~k ~requests =
  let rec scan rid stop ~after ~not_proc =
    if rid >= stop then None
    else
      match kill_for probe ~k ~rid ~after ~not_proc with
      | Some kill -> Some kill
      | None -> scan (rid + 1) stop ~after ~not_proc
  in
  match scan (requests * 3 / 10) requests ~after:0 ~not_proc:(-1) with
  | None -> []
  | Some ((t1, p1) as k1) -> (
    match scan (requests * 6 / 10) requests ~after:t1 ~not_proc:p1 with
    | None -> [ k1 ]
    | Some k2 -> [ k1; k2 ])

let run ?(quick = false) () =
  let w = Workload.fib and size = Workload.Tiny in
  let requests = if quick then 120 else 500 in
  let nodes = 8 in
  let arrivals = [ 400.0; 700.0 ] in
  let nets = [ false; true ] in
  let ks = [ 1; 3 ] in
  let specs =
    List.concat_map
      (fun arrival -> List.concat_map (fun lossy -> List.map (fun k -> (arrival, lossy, k)) ks) nets)
      arrivals
  in
  let cells =
    Harness.run_many
      (fun (arrival, lossy, k) ->
        let cfg = Config.default ~nodes in
        let cfg =
          {
            cfg with
            Config.recovery = Config.Splice;
            (* one seed per (arrival, net): the arrival stream is a pure
               function of the seed, so within a comparison pair k and
               the kill plan are the only differences *)
            seed = 42 + (7 * int_of_float arrival) + if lossy then 1 else 0;
            service =
              { Config.arrival_mean = arrival; replicas = k; max_inflight = 64;
                shed_suspect_frac = 0.9 };
          }
        in
        let cfg =
          if lossy then
            { cfg with
              Config.reliable = true;
              chaos = Chaos.none |> Plan.drop_rate 0.05 |> Plan.duplicate_rate 0.05 }
          else cfg
        in
        let service failures = Service.run ~failures ~config:cfg ~workload:w ~size ~requests () in
        let probe = service [] in
        let faulty = service (plan_for probe ~k ~requests) in
        let cell faulty (o : Service.outcome) =
          let h = Cluster.latency o.Service.cluster "service.latency" in
          let hd = Cluster.latency o.Service.cluster "service.latency.disturbed" in
          let q p = if Hdr.count h = 0 then 0 else Hdr.quantile h p in
          {
            arrival; lossy; k; faulty;
            counts = o.Service.counts;
            p50 = q 50.0;
            p99 = q 99.0;
            p999 = q 99.9;
            p99_disturbed = (if Hdr.count hd = 0 then 0 else Hdr.quantile hd 99.0);
            penalty = (if faulty then penalty_of o else None);
            goodput = o.Service.goodput;
            all_correct = o.Service.all_correct;
            oracle_ok = Oracle.ok o.Service.oracle;
          }
        in
        [ cell false probe; cell true faulty ])
      specs
    |> List.concat
  in
  let find arrival lossy k faulty =
    List.find
      (fun c -> c.arrival = arrival && c.lossy = lossy && c.k = k && c.faulty = faulty)
      cells
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Request stream of %d into %d processors; faulty cells lose two root hosts mid-stream"
           requests nodes)
      ~columns:
        [ "arrival"; "net"; "k"; "failures"; "completed"; "masked"; "recovered"; "shed";
          "p50"; "p99"; "p999"; "goodput/kt"; "ok" ]
  in
  List.iter
    (fun c ->
      Table.add_row table
        [
          Printf.sprintf "1/%.0f" c.arrival;
          net_label c.lossy;
          Harness.c_int c.k;
          (if c.faulty then "2" else "0");
          Harness.c_int c.counts.Service.completed;
          Harness.c_int c.counts.Service.masked;
          Harness.c_int c.counts.Service.recovered;
          Harness.c_int (Service.shed c.counts);
          Harness.c_int c.p50;
          Harness.c_int c.p99;
          Harness.c_int c.p999;
          Harness.c_float ~decimals:2 c.goodput;
          Harness.c_bool (c.all_correct && c.oracle_ok);
        ])
    cells;
  (* The tentpole claim: what a *disturbed* request pays over its
     undisturbed neighbours in the same run must shrink when replication
     can outvote the killed replica.  (Whole-stream p99, or the fault-free
     baseline, would confound this with the capacity the dead processors
     take from every later request.) *)
  let penalty arrival lossy k =
    Option.value ~default:0 (find arrival lossy k true).penalty
  in
  let penalties =
    List.concat_map (fun a -> List.map (fun l -> (a, l, penalty a l 1, penalty a l 3)) nets)
      arrivals
  in
  let ptable =
    Table.create
      ~title:"recovery penalty (median disturbed minus median undisturbed sojourn, same run)"
      ~columns:[ "arrival"; "net"; "penalty k=1"; "penalty k=3" ]
  in
  List.iter
    (fun (a, l, p1, p3) ->
      Table.add_row ptable
        [ Printf.sprintf "1/%.0f" a; net_label l; Harness.c_int p1; Harness.c_int p3 ])
    penalties;
  let faulty_cells b = List.filter (fun c -> c.faulty && c.k = b) cells in
  let checks =
    [
      ( "every request in every run returns the serial answer (per-request oracle held)",
        List.for_all (fun c -> c.all_correct && c.oracle_ok) cells );
      ( "every offered request is accounted: finished + shed = offered",
        List.for_all
          (fun c -> Service.finished c.counts + Service.shed c.counts = c.counts.Service.offered)
          cells );
      ( "without replication, mid-stream failures force requests down the recovery path",
        List.for_all (fun c -> c.counts.Service.recovered > 0) (faulty_cells 1) );
      ( "with k=3, surviving replicas mask failures before recovery completes",
        List.for_all (fun c -> c.counts.Service.masked > 0) (faulty_cells 3) );
      ( "a kill costs an unreplicated disturbed request real latency (positive penalty)",
        List.for_all (fun (_, _, p1, _) -> p1 > 0) penalties );
      ( "replication shrinks the recovery penalty under each network weather",
        List.for_all
          (fun l ->
            let sum f =
              List.fold_left (fun acc (_, l', p1, p3) -> if l' = l then acc + f p1 p3 else acc) 0
                penalties
            in
            sum (fun _ p3 -> p3) < sum (fun p1 _ -> p1))
          nets );
      ( "the stream keeps flowing: positive goodput everywhere",
        List.for_all (fun c -> c.goodput > 0.0) cells );
    ]
  in
  Report.make ~id:"X6"
    ~title:"Service: request streams surviving mid-stream failures"
    ~paper_source:"§4.3.1 (super-root), §5.3 (replication + majority voting), §1 (fail-soft)"
    ~notes:
      [
        "Open-loop Poisson arrivals from a dedicated RNG stream; each request is an independent \
         root under its own depth-1 level stamp, so the §4.3.1 super-root supervises many \
         concurrent roots whose checkpoint subtrees can never alias.";
        "Probe-then-inject: each cell's fault-free run picks the kills — a mid-stream request's \
         slowest replica root host, killed between arrival and completion, so determinism \
         guarantees the first kill lands on a still-unanswered root in the faulty re-run.";
        "k=3 dispatches each request as three replica roots on distinct processors and takes \
         the first majority (§5.3); a killed replica is voted out by the survivors, so the \
         client never waits for checkpoint recovery — that is the masked column.";
        "Lossy cells run drop 5% + duplicate 5% over the reliable transport; the same seed is \
         shared within a (arrival, net) pair so k and the kill plan are the only differences.";
      ]
    ~checks [ table; ptable ]
