module Table = Recflow_stats.Table

type t = {
  id : string;
  title : string;
  paper_source : string;
  tables : Table.t list;
  notes : string list;
  checks : (string * bool) list;
}

let make ~id ~title ~paper_source ?(notes = []) ?(checks = []) tables =
  { id; title; paper_source; tables; notes; checks }

let all_checks_pass t = List.for_all snd t.checks

let pp ppf t =
  Format.fprintf ppf "@.===== %s: %s =====@." t.id t.title;
  Format.fprintf ppf "reproduces: %s@.@." t.paper_source;
  List.iter (fun table -> Format.fprintf ppf "%a@." Table.pp table) t.tables;
  if t.notes <> [] then begin
    Format.fprintf ppf "notes:@.";
    List.iter (fun n -> Format.fprintf ppf "  - %s@." n) t.notes
  end;
  if t.checks <> [] then begin
    Format.fprintf ppf "checks:@.";
    List.iter
      (fun (name, ok) -> Format.fprintf ppf "  [%s] %s@." (if ok then "PASS" else "FAIL") name)
      t.checks
  end

let to_markdown t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "## %s — %s\n\n*Reproduces: %s*\n\n" t.id t.title t.paper_source);
  List.iter
    (fun table ->
      Buffer.add_string buf (Printf.sprintf "**%s**\n\n" (Table.title table));
      let cols = Table.columns table in
      Buffer.add_string buf ("| " ^ String.concat " | " cols ^ " |\n");
      Buffer.add_string buf ("|" ^ String.concat "|" (List.map (fun _ -> "---") cols) ^ "|\n");
      List.iter
        (fun row -> Buffer.add_string buf ("| " ^ String.concat " | " row ^ " |\n"))
        (Table.rows table);
      Buffer.add_char buf '\n')
    t.tables;
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "- %s\n" n)) t.notes;
  List.iter
    (fun (name, ok) ->
      Buffer.add_string buf (Printf.sprintf "- %s **%s**\n" (if ok then "✓" else "✗") name))
    t.checks;
  Buffer.contents buf
