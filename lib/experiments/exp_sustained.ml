module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Table = Recflow_stats.Table
module Plan = Recflow_fault.Plan
module Stamp = Recflow_recovery.Stamp

type point = { failures : int; delta : int; makespan : int; correct : bool }

(* Spread [n] failures evenly across (20%, 80%) of the probe makespan,
   choosing at each instant the busiest processor not yet doomed and not
   hosting the root. *)
let plan_for probe n =
  let journal = Cluster.journal probe.Harness.cluster in
  let span = probe.Harness.makespan in
  let rec build i chosen plan =
    if i >= n then List.rev plan
    else begin
      let time = (span / 5) + (i * (3 * span / 5) / max 1 n) in
      let root_host = Option.to_list (Plan.Pick.host_of journal ~stamp:Stamp.root ~time) in
      match Plan.Pick.busiest_at journal ~time ~exclude:(root_host @ chosen) with
      | Some victim -> build (i + 1) (victim :: chosen) ((time, victim) :: plan)
      | None -> List.rev plan
    end
  in
  build 0 [] []

let sweep cfg w size counts =
  let probe = Harness.probe cfg w size in
  ( probe,
    Harness.run_many
      (fun n ->
        let plan = plan_for probe n in
        let r = Harness.run cfg w size ~failures:plan in
        {
          failures = List.length plan;
          delta = r.Harness.makespan - probe.Harness.makespan;
          makespan = r.Harness.makespan;
          correct = r.Harness.correct;
        })
      counts )

let run ?(quick = false) () =
  let w, size, inline_depth = Harness.synthetic_setup ~quick in
  let counts = if quick then [ 0; 2; 4 ] else [ 0; 1; 2; 3; 4; 5; 6 ] in
  let mk recovery =
    {
      (Config.default ~nodes:16) with
      Config.inline_depth;
      recovery;
      policy = Recflow_balance.Policy.Random;
    }
  in
  let roll_probe, roll = sweep (mk Config.Rollback) w size counts in
  let _, splice = sweep (mk Config.Splice) w size counts in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Completion under sustained failures (16 processors, fault-free makespan %d)"
           roll_probe.Harness.makespan)
      ~columns:[ "processors lost"; "scheme"; "makespan"; "degradation"; "answer ok" ]
  in
  List.iter2
    (fun (r : point) (s : point) ->
      let row scheme (p : point) =
        Table.add_row table
          [
            Harness.c_int p.failures;
            scheme;
            Harness.c_int p.makespan;
            Printf.sprintf "%+.0f%%"
              (100.0 *. float_of_int p.delta /. float_of_int roll_probe.Harness.makespan);
            Harness.c_bool p.correct;
          ]
      in
      row "rollback" r;
      row "splice" s)
    roll splice;
  let max_pt pts = List.nth pts (List.length pts - 1) in
  let degradation_bounded pts =
    (* losing k of 16 processors should not cost more than ~(2 + k)x *)
    List.for_all
      (fun p -> p.makespan <= roll_probe.Harness.makespan * (2 + p.failures))
      pts
  in
  let monotone_trend pts =
    (max_pt pts).delta >= (List.hd pts).delta
  in
  let checks =
    [
      ("every run, up to 6 lost processors, yields the serial answer",
       List.for_all (fun p -> p.correct) (roll @ splice));
      ("degradation is gradual (bounded by a small multiple per lost node)",
       degradation_bounded roll && degradation_bounded splice);
      ("cost grows with the number of failures", monotone_trend roll && monotone_trend splice);
    ]
  in
  Report.make ~id:"X1" ~title:"Fail-soft degradation under sustained failures"
    ~paper_source:"§1 (\"ability to sustain partial system failures\"), §5.2"
    ~notes:
      [
        "Victims are spread over the middle 60% of the run, each chosen as the busiest \
         processor still standing; the root's host is spared so the super-root path (tested \
         elsewhere) does not dominate the measurement.";
      ]
    ~checks [ table ]
