module Config = Recflow_machine.Config
module Table = Recflow_stats.Table
module Workload = Recflow_workload.Workload
module Periodic = Recflow_baselines.Periodic

let run ?(quick = false) () =
  let w, size, inline_depth = Harness.synthetic_setup ~quick in
  let base = { (Config.default ~nodes:8) with Config.inline_depth } in
  let mech name recovery = (name, { base with Config.recovery }) in
  let rows =
    [
      mech "no fault tolerance" Config.No_recovery;
      mech "functional ckpt (rollback)" Config.Rollback;
      mech "functional ckpt (splice, grandparent links)" Config.Splice;
      mech "task replication k=3 (depth<=2)" (Config.Replicate 3);
    ]
  in
  let runs = Harness.run_many (fun (name, cfg) -> (name, Harness.probe cfg w size)) rows in
  let baseline = List.assoc "no fault tolerance" runs in
  let table =
    Table.create ~title:"Fault-free overhead by mechanism (synthetic b=2 d=8 g=60, 8 processors)"
      ~columns:
        [ "mechanism"; "makespan"; "overhead"; "messages"; "checkpoints stored"; "ckpts covered";
          "answer ok" ]
  in
  List.iter
    (fun (name, r) ->
      let overhead =
        Harness.pct_of
          ~part:(r.Harness.makespan - baseline.Harness.makespan)
          ~whole:baseline.Harness.makespan
      in
      Table.add_row table
        [
          name;
          Harness.c_int r.Harness.makespan;
          Printf.sprintf "%+.1f%%" (100.0 *. overhead);
          Harness.c_int (Harness.counter r "msg.sent");
          Harness.c_int (Harness.counter r "ckpt.recorded");
          Harness.c_int (Harness.counter r "ckpt.covered");
          Harness.c_bool r.Harness.correct;
        ])
    runs;
  (* Periodic global checkpointing: the whole machine pauses [save_cost]
     every [interval] of useful progress.  Work = the no-FT makespan. *)
  let work = baseline.Harness.makespan in
  let periodic_table =
    Table.create
      ~title:"Periodic global checkpointing (Tamir & Sequin [15] model) on the same run"
      ~columns:[ "interval"; "save cost"; "checkpoints"; "completion"; "overhead" ]
  in
  let intervals = [ work / 20; work / 10; work / 5; work / 2 ] in
  let save_cost = 200 in
  let periodic_overheads =
    List.map
      (fun interval ->
        let interval = max 1 interval in
        let run = Periodic.simulate { Periodic.interval; save_cost; restore_cost = 200 } ~work ~failures:[] in
        Table.add_row periodic_table
          [
            Harness.c_int interval;
            Harness.c_int save_cost;
            Harness.c_int run.Periodic.checkpoints_taken;
            Harness.c_int run.Periodic.completion_time;
            Printf.sprintf "%+.1f%%" (100.0 *. run.Periodic.overhead);
          ];
        run.Periodic.overhead)
      intervals
  in
  let rollback = List.assoc "functional ckpt (rollback)" runs in
  let splice = List.assoc "functional ckpt (splice, grandparent links)" runs in
  let func_overhead r =
    Harness.pct_of ~part:(r.Harness.makespan - baseline.Harness.makespan)
      ~whole:baseline.Harness.makespan
  in
  let checks =
    [
      ( "functional checkpointing adds no simulated time in normal operation",
        rollback.Harness.makespan = baseline.Harness.makespan
        && splice.Harness.makespan = baseline.Harness.makespan );
      ( "functional checkpointing beats every periodic interval swept",
        List.for_all (fun p -> p > Float.max (func_overhead rollback) (func_overhead splice))
          periodic_overheads );
      ( "replication pays roughly its redundancy factor",
        let r = List.assoc "task replication k=3 (depth<=2)" runs in
        r.Harness.makespan > baseline.Harness.makespan );
      ("all mechanisms produce the serial answer", List.for_all (fun (_, r) -> r.Harness.correct) runs);
    ]
  in
  Report.make ~id:"Q1" ~title:"Fault-free overhead: functional vs periodic checkpointing"
    ~paper_source:"§2 (checkpoint properties), §6 (\"minimize the overhead while the system is \
                   in a normal, fault-free operation\")"
    ~notes:
      [
        "Functional checkpointing is the retained task packet: it rides on messages that are \
         sent anyway, so its fault-free cost is storage (the 'checkpoints stored' column) and \
         zero time — exactly the paper's claim.";
        "The periodic model charges only the global pause; coordination traffic would make it \
         worse, so the comparison is conservative.";
      ]
    ~checks
    [ table; periodic_table ]
