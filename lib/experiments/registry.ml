type entry = { id : string; title : string; run : ?quick:bool -> unit -> Report.t }

let all =
  [
    { id = "F1"; title = "Call-tree fragmentation and checkpoint distribution (Figure 1)";
      run = Exp_fig1.run };
    { id = "F2"; title = "Grandparent pointers (Figure 2)"; run = Exp_fig2.run };
    { id = "F3"; title = "Twin creation and offspring inheritance (Figures 3-4)";
      run = Exp_fig3.run };
    { id = "F5"; title = "All orderings of child completion vs recovery (Figure 5)";
      run = Exp_cases.run };
    { id = "F6"; title = "Residue-free recovery across spawn states (Figures 6-7)";
      run = Exp_residue.run };
    { id = "Q1"; title = "Fault-free overhead: functional vs periodic checkpointing";
      run = Exp_overhead.run };
    { id = "Q2"; title = "Recovery cost vs fault time (rollback vs splice)";
      run = Exp_fault_time.run };
    { id = "Q3"; title = "Salvage accounting for orphan results"; run = Exp_salvage.run };
    { id = "Q4"; title = "Scalability: speedup and recovery vs processors"; run = Exp_scale.run };
    { id = "Q5"; title = "Multiple faults: disjoint branches vs ancestor chains";
      run = Exp_multifault.run };
    { id = "Q6"; title = "Task replication with majority voting vs checkpointing";
      run = Exp_replication.run };
    { id = "Q7"; title = "Dynamic vs static allocation under recovery"; run = Exp_alloc.run };
    { id = "Q8"; title = "Checkpoint-table ablation: topmost-only vs keep-all";
      run = Exp_table.run };
    { id = "X1"; title = "Fail-soft degradation under sustained failures";
      run = Exp_sustained.run };
    { id = "X2"; title = "Ablation: adoption grace for offspring inheritance";
      run = Exp_grace.run };
    { id = "X3"; title = "Ablation: task granularity (inline threshold)"; run = Exp_grain.run };
    { id = "X4"; title = "Chaos: loss, duplication, reordering, partitions, suspicion";
      run = Exp_chaos.run };
    { id = "X5"; title = "Sharded execution of one run across domains"; run = Exp_shard.run };
    { id = "X6"; title = "Service: request streams surviving mid-stream failures";
      run = Exp_service.run };
    { id = "X7"; title = "Adaptive checkpoint admission driven by static cost bounds";
      run = Exp_adaptive.run };
    { id = "X8"; title = "Scale: 1024 processors, a million-task tree"; run = Exp_xscale.run };
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun e -> String.equal e.id id) all

let ids = List.map (fun e -> e.id) all
