module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Ckpt_table = Recflow_recovery.Ckpt_table
module Table = Recflow_stats.Table
module Plan = Recflow_fault.Plan
module Stamp = Recflow_recovery.Stamp
module Workload = Recflow_workload.Workload
module Cost = Recflow_analysis.Cost
module Check = Recflow_analysis.Check
module Policy = Recflow_balance.Policy

(* X7: does *static* cost analysis buy anything at run time?  Sweep the
   (loss rate x work size) plane and at each point race three checkpoint
   admission disciplines:

   - keep-all: every spawn stores a checkpoint (and pays [ckpt_cost] for
     it on the spawn critical path);
   - topmost (paper §3.2): ancestor-covered checkpoints are pruned;
   - auto: [Policy.suggest_ckpt_admission] turns the static depth/work
     bounds from {!Cost.entry_bounds} plus the loss prior into a depth
     cutoff, and spawns below it skip the store entirely
     ([Config.Adaptive]).

   The paper charges nothing for recording (§3.3 argues the table write
   is cheap); the sweep makes the cost explicit so the admission
   trade-off — certain record cost now vs expected regeneration cost
   after a failure — has two non-trivial corners.  Auto should win where
   records are dear and loss is unlikely, and degenerate to topmost-like
   admission where loss is likely. *)

type point = {
  label : string;
  size : Workload.size;
  fail : bool;  (** inject one mid-run failure at this point? *)
  prior : float;  (** loss prior fed to the admission rule *)
}

type row = {
  point : string;
  discipline : string;
  admission : string;  (** depth cutoff chosen by auto, or "-" *)
  stored : int;
  skipped : int;
  reissues : int;
  work : int;  (** total node-time: compute + spawn + record charges *)
  makespan : int;
  correct : bool;
}

let ckpt_cost = 8

let run ?(quick = false) () =
  let w = Workload.synthetic ~branching:2 ~depth:(if quick then 6 else 8) ~grain:40 in
  let report = Check.check_source ~entries:[ w.Workload.entry ] w.Workload.source in
  let cost =
    match report.Check.cost with
    | Some c -> c
    | None -> invalid_arg "X7: synthetic workload failed the static checker"
  in
  let work =
    match Cost.find cost w.Workload.entry with
    | Some fc -> fc.Cost.work_per_activation
    | None -> 1
  in
  let lo, hi = if quick then (Workload.Tiny, Workload.Small) else (Workload.Small, Workload.Medium) in
  let points =
    [
      { label = "loss-, work-"; size = lo; fail = false; prior = 0.02 };
      { label = "loss-, work+"; size = hi; fail = false; prior = 0.02 };
      { label = "loss~, work+"; size = hi; fail = true; prior = 0.1 };
      { label = "loss+, work-"; size = lo; fail = true; prior = 0.6 };
      { label = "loss+, work+"; size = hi; fail = true; prior = 0.6 };
    ]
  in
  let inline_depth =
    (* spawn the full tree, as in the other synthetic experiments *)
    match hi with Workload.Medium -> 9 | _ -> 7
  in
  let cells =
    List.concat_map
      (fun pt ->
        let eb = Cost.entry_bounds cost ~entry:w.Workload.entry ~args:(w.Workload.args pt.size) in
        (* spawns deeper than [inline_depth] are inlined and never reach the
           checkpoint table, so that is the effective depth of admissible
           stamps — the static call-depth bound also counts inlined frames
           (here the leaf spin chains) *)
        let depth_bound = Option.map (fun d -> min d inline_depth) eb.Cost.depth in
        let cutoff =
          Policy.suggest_ckpt_admission ~work_per_activation:work ~fanout:eb.Cost.fanout
            ~depth_bound ~loss_rate:pt.prior ~ckpt_cost
        in
        let auto_mode =
          match cutoff with
          | Some d -> Config.Adaptive { max_depth = d }
          | None -> Config.Fixed Ckpt_table.Topmost
        in
        List.map
          (fun (name, mode) -> (pt, cutoff, name, mode))
          [
            ("keep-all", Config.Fixed Ckpt_table.Keep_all);
            ("topmost", Config.Fixed Ckpt_table.Topmost);
            ("auto", auto_mode);
          ])
      points
  in
  let rows =
    Harness.run_many
      (fun (pt, cutoff, name, mode) ->
        let cfg =
          {
            (Config.default ~nodes:8) with
            Config.inline_depth;
            ckpt_mode = mode;
            ckpt_cost;
            loss_prior = pt.prior;
            recovery = Config.Rollback;
            policy = Policy.Gradient { weight = 2 };
          }
        in
        let probe = Harness.probe cfg w pt.size in
        let failures =
          if not pt.fail then []
          else begin
            let journal = Cluster.journal probe.Harness.cluster in
            let t_fail = probe.Harness.makespan / 2 in
            let root_host =
              Option.to_list (Plan.Pick.host_of journal ~stamp:Stamp.root ~time:t_fail)
            in
            let victim =
              Option.value ~default:1
                (Plan.Pick.busiest_at journal ~time:t_fail ~exclude:root_host)
            in
            Plan.single ~time:t_fail victim
          end
        in
        let r = if pt.fail then Harness.run ~drain:true cfg w pt.size ~failures else probe in
        {
          point = pt.label;
          discipline = name;
          admission =
            (match (name, cutoff) with
            | "auto", Some d -> string_of_int d
            | _ -> "-");
          stored = Harness.counter r "ckpt.recorded";
          skipped = Harness.counter r "ckpt.skipped_deep";
          reissues = Harness.counter r "reissue.count";
          work = Cluster.total_work r.Harness.cluster;
          makespan = r.Harness.makespan;
          correct = r.Harness.correct;
        })
      cells
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Checkpoint admission across the loss x work plane (ckpt_cost=%d, rollback)" ckpt_cost)
      ~columns:
        [ "plane point"; "admission"; "depth cutoff"; "stored"; "skipped deep"; "re-issues";
          "total work"; "makespan"; "answer ok" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.point;
          r.discipline;
          r.admission;
          Harness.c_int r.stored;
          Harness.c_int r.skipped;
          Harness.c_int r.reissues;
          Harness.c_int r.work;
          Harness.c_int r.makespan;
          Harness.c_bool r.correct;
        ])
    rows;
  let at point discipline =
    List.find (fun r -> String.equal r.point point && String.equal r.discipline discipline) rows
  in
  let auto_wins point =
    let a = at point "auto" and t = at point "topmost" and k = at point "keep-all" in
    a.work < t.work && a.work < k.work
  in
  let checks =
    [
      ("every discipline recovers the right answer everywhere", List.for_all (fun r -> r.correct) rows);
      ( "auto prunes below the static cutoff where loss is unlikely",
        (at "loss-, work+" "auto").skipped > 0 );
      ( "auto spends the least node-time somewhere in the plane",
        List.exists (fun pt -> auto_wins pt.label) points );
      ( "a failure with a pruned table still recovers (parent regeneration)",
        (let r = at "loss~, work+" "auto" in
         r.correct && r.skipped > 0) );
      ( "keep-all never stores fewer checkpoints than topmost",
        List.for_all
          (fun pt -> (at pt.label "keep-all").stored >= (at pt.label "topmost").stored)
          points );
      ( "under a likely failure auto keeps (nearly) everything topmost keeps",
        (at "loss+, work+" "auto").skipped <= (at "loss-, work+" "auto").skipped );
    ]
  in
  Report.make ~id:"X7" ~title:"Adaptive checkpoint admission driven by static cost bounds"
    ~paper_source:"§3.2 (checkpoint table) + §3.3 (recovery cost model); admission rule after Sodre"
    ~notes:
      [
        "The admission cutoff is computed *before* the run from the static \
         depth/fan-out/work bounds (RF3xx cost pass) and the loss prior; the machine then \
         skips the table store for spawns below the cutoff and pays regeneration from the \
         surviving parent if one of them is lost.";
      ]
    ~checks [ table ]
