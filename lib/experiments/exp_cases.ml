module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Journal = Recflow_machine.Journal
module Stamp = Recflow_recovery.Stamp
module Splice_case = Recflow_recovery.Splice_case
module Table = Recflow_stats.Table
module Workload = Recflow_workload.Workload
module Value = Recflow_lang.Value
module Plan = Recflow_fault.Plan

(* P spawns the probed child C first is wrong for contention cases: D goes
   first so that when C and D share a processor, D's long spin delays C —
   the lever that pushes C's completion past C′'s (cases 7/8). *)
let source =
  "def root_case(cw, dw) = pp(cw, dw) + 1\n\
   def pp(cw, dw) = dd(dw) + cc(cw)\n\
   def cc(cw) = spin(cw, 0)\n\
   def dd(dw) = spin(dw, 0)\n\
   def spin(k, acc) = if k == 0 then acc else spin(k - 1, acc + 1)"

let workload ~cw ~dw =
  {
    Workload.name = Printf.sprintf "case_family_%d_%d" cw dw;
    description = "three-task family for the Figure 5 case analysis";
    source;
    entry = "root_case";
    args = (fun _ -> [ Value.Int cw; Value.Int dw ]);
  }

let p_stamp = Stamp.of_digits [ 0 ]

let c_stamp = Stamp.of_digits [ 0; 1 ]  (* cc: spawned second (dd first) *)

let d_stamp = Stamp.of_digits [ 0; 0 ]

type probe_info = {
  root_host : int option;
  p_host : int option;
  c_host : int option;
  d_host : int option;
  p_activated : int option;
  c_spawned : int option;
  c_done : int option;
  c_accepted : int option;  (* result landed in P *)
  p_done : int option;
  makespan : int;
}

let first_event journal stamp pred =
  List.find_map
    (fun (e : Journal.entry) -> if pred e.Journal.event then Some e.Journal.time else None)
    (Journal.for_stamp journal stamp)

let original_task journal stamp =
  List.find_map
    (fun (e : Journal.entry) ->
      match e.Journal.event with Journal.Spawned { task; _ } -> Some task | _ -> None)
    (Journal.for_stamp journal stamp)

let host_of journal stamp =
  List.find_map
    (fun (e : Journal.entry) ->
      match e.Journal.event with Journal.Activated { proc; _ } -> Some proc | _ -> None)
    (Journal.for_stamp journal stamp)

let probe cfg ~cw ~dw =
  let w = workload ~cw ~dw in
  let r = Harness.probe cfg w Workload.Small in
  let j = Cluster.journal r.Harness.cluster in
  {
    root_host = host_of j Stamp.root;
    p_host = host_of j p_stamp;
    c_host = host_of j c_stamp;
    d_host = host_of j d_stamp;
    p_activated = first_event j p_stamp (function Journal.Activated _ -> true | _ -> false);
    c_spawned = first_event j c_stamp (function Journal.Spawned _ -> true | _ -> false);
    c_done = first_event j c_stamp (function Journal.Completed _ -> true | _ -> false);
    c_accepted = first_event j c_stamp (function Journal.Result_accepted _ -> true | _ -> false);
    p_done = first_event j p_stamp (function Journal.Completed _ -> true | _ -> false);
    makespan = r.Harness.makespan;
  }

(* Timestamps of the recovery milestones in a faulty run, for the ORIGINAL
   activations of C and P versus their twins/clones.  "Original C" means
   the C spawned by the original P, i.e. spawned before P failed — if the
   first spawn of C's stamp happens after the failure it is already the
   clone C′ and the original C was never invoked (case 1). *)
let timeline journal ~fail_time =
  let orig_p = original_task journal p_stamp in
  let orig_c =
    List.find_map
      (fun (e : Journal.entry) ->
        match e.Journal.event with
        | Journal.Spawned { task; _ } when e.Journal.time < fail_time -> Some task
        | _ -> None)
      (Journal.for_stamp journal c_stamp)
  in
  let time_of stamp ~orig ~want_original pred =
    List.find_map
      (fun (e : Journal.entry) ->
        match e.Journal.event with
        | Journal.Activated { task; _ } when pred = `Activated ->
          let is_orig = Some task = orig in
          if is_orig = want_original then Some e.Journal.time else None
        | Journal.Completed { task; _ } when pred = `Completed ->
          let is_orig = Some task = orig in
          if is_orig = want_original then Some e.Journal.time else None
        | _ -> None)
      (Journal.for_stamp journal stamp)
  in
  {
    Splice_case.c_invoked =
      (match orig_c with
      | None -> None
      | Some _ -> time_of c_stamp ~orig:orig_c ~want_original:true `Activated);
    c_completed =
      (match orig_c with
      | None -> None
      | Some _ -> time_of c_stamp ~orig:orig_c ~want_original:true `Completed);
    p_failed = fail_time;
    p'_invoked = time_of p_stamp ~orig:orig_p ~want_original:false `Activated;
    p'_completed = time_of p_stamp ~orig:orig_p ~want_original:false `Completed;
    c'_invoked = time_of c_stamp ~orig:orig_c ~want_original:false `Activated;
    c'_completed = time_of c_stamp ~orig:orig_c ~want_original:false `Completed;
  }

type found = {
  params : string;
  tl : Splice_case.timeline;
  correct : bool;
  dups : int;
}

let base_config ~seed ~detect =
  let c = Config.default ~nodes:4 in
  {
    c with
    Config.recovery = Config.Splice;
    policy = Recflow_balance.Policy.Random;
    inline_depth = 3;
    detect_delay = detect;
    (* The Figure 5 case space is about the raw §4.2 protocol, where the
       twin re-demands its offspring (C' exists); offspring inheritance
       would adopt C instead and collapse cases 6-8, so it is off here. *)
    adoption_grace = 0;
    bounce_delay = 100;
    seed;
  }

let attempt ~seed ~detect ~cw ~dw ~failures =
  let cfg = base_config ~seed ~detect in
  let w = workload ~cw ~dw in
  let r = Harness.run cfg w Workload.Small ~failures in
  let j = Cluster.journal r.Harness.cluster in
  let fail_time = match failures with (t, _) :: _ -> t | [] -> 0 in
  let tl = timeline j ~fail_time in
  let case = Splice_case.classify tl in
  ( case,
    {
      params =
        Printf.sprintf "seed=%d detect=%d cw=%d dw=%d fail=%s" seed detect cw dw
          (String.concat ","
             (List.map (fun (t, p) -> Printf.sprintf "%d@P%d" t p) failures));
      tl;
      correct = r.Harness.correct;
      dups = Harness.counter r "dup.ignored";
    } )

(* For case 2 ("C will never complete") correctness means the recomputed
   clone still yields the right answer, so [correct] stays the criterion. *)
let search target candidates =
  let rec go = function
    | [] -> None
    | mk :: rest -> (
      match mk () with
      | Some (case, found) when case = target && found.correct -> Some found
      | _ -> go rest)
  in
  go candidates

let candidates_for ~quick target =
  let seeds = if quick then [ 1; 2; 3; 5; 7 ] else [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  let with_probe seed detect cw dw k =
    let cfg = base_config ~seed ~detect in
    let info = probe cfg ~cw ~dw in
    match info.p_host with
    | None -> None
    | Some ph -> k info ph
  in
  match target with
  | Splice_case.C1 ->
    (* Kill P after activation, before it spawns C (it spawns D first, so
       the window is [activated, spawned(C)) and may include D's spawn). *)
    List.concat_map
      (fun seed ->
        [
          (fun () ->
            with_probe seed 300 400 3000 (fun info ph ->
                match (info.p_activated, info.c_spawned) with
                | Some a, Some s when s > a + 1 ->
                  Some (attempt ~seed ~detect:300 ~cw:400 ~dw:3000
                          ~failures:(Plan.single ~time:(a + ((s - a) / 2)) ph))
                | _ -> None));
        ])
      seeds
  | Splice_case.C2 ->
    (* Kill P, then C's processor before C can finish. *)
    List.concat_map
      (fun seed ->
        [
          (fun () ->
            with_probe seed 300 2000 4000 (fun info ph ->
                match (info.c_spawned, info.c_host, info.c_done) with
                | Some s, Some chost, Some cdone when chost <> ph && cdone > s + 200 ->
                  Some
                    (attempt ~seed ~detect:300 ~cw:2000 ~dw:4000
                       ~failures:[ (s + 100, ph); (s + 150, chost) ])
                | _ -> None));
        ])
      seeds
  | Splice_case.C3 ->
    (* Kill P after C's result was accepted, while D keeps P alive. *)
    List.concat_map
      (fun seed ->
        [
          (fun () ->
            with_probe seed 300 300 6000 (fun info ph ->
                match (info.c_accepted, info.p_done) with
                | Some acc, Some pdone when pdone > acc + 10 ->
                  Some (attempt ~seed ~detect:300 ~cw:300 ~dw:6000
                          ~failures:(Plan.single ~time:(acc + ((pdone - acc) / 2)) ph))
                | _ -> None));
        ])
      seeds
  | Splice_case.C4 ->
    (* Huge detection delay: C (on another processor) finishes long before
       P' exists. *)
    List.concat_map
      (fun seed ->
        [
          (fun () ->
            with_probe seed 8000 1500 4000 (fun info ph ->
                match (info.c_spawned, info.c_host, info.c_done) with
                | Some s, Some chost, Some cdone when chost <> ph && cdone > s + 300 ->
                  Some (attempt ~seed ~detect:8000 ~cw:1500 ~dw:4000
                          ~failures:(Plan.single ~time:(s + 150) ph))
                | _ -> None));
        ])
      seeds
  | Splice_case.C5 | Splice_case.C6 ->
    (* Timing races around the twin: sweep the failure offset and C's work
       so C's completion lands in successive recovery windows. *)
    let cws =
      match target with
      | Splice_case.C5 -> [ 800; 1200; 1600; 2000 ]
      | _ -> [ 1200; 2000; 3000; 4000 ]
    in
    let offsets = if quick then [ 100; 400; 800 ] else [ 50; 100; 200; 400; 800; 1200 ] in
    List.concat_map
      (fun seed ->
        List.concat_map
          (fun cw ->
            List.map
              (fun off () ->
                with_probe seed 300 cw 3000 (fun info ph ->
                    match info.c_spawned with
                    | Some s -> Some (attempt ~seed ~detect:300 ~cw ~dw:3000
                                        ~failures:(Plan.single ~time:(s + off) ph))
                    | None -> None))
              offsets)
          cws)
      seeds
  | Splice_case.C7 | Splice_case.C8 ->
    (* C must outlive its own clone: co-locate C with the long-spinning
       sibling D (D is spawned first, so it monopolises the shared CPU and
       C starts only after ~D's work).  The clone C′ lands on a free
       processor and finishes quickly; whether the salvaged D return or
       C's own late return beats P′'s completion separates case 7 from
       case 8. *)
    let cws =
      match target with
      | Splice_case.C7 -> [ 2; 3; 5; 8; 12 ]
      | _ -> [ 10; 15; 25; 40; 100; 400 ]
    in
    let offsets = if quick then [ 50; 100 ] else [ 50; 100; 200 ] in
    let seeds = if quick then [ 11; 21; 36 ] else List.init 40 (fun i -> i + 1) in
    List.concat_map
      (fun seed ->
        List.concat_map
          (fun cw ->
            List.map
              (fun off () ->
                with_probe seed 300 cw 3000 (fun info ph ->
                    (* The grandparent (root) must survive to relay, and C
                       must share a CPU with D but not with P. *)
                    match (info.c_spawned, info.c_host, info.d_host, info.root_host) with
                    | Some s, Some ch, Some dh, Some rh when ch = dh && ch <> ph && rh <> ph ->
                      Some (attempt ~seed ~detect:300 ~cw ~dw:3000
                              ~failures:(Plan.single ~time:(s + off) ph))
                    | _ -> None))
              offsets)
          cws)
      seeds

let opt_time = function Some t -> string_of_int t | None -> "-"

let run ?(quick = false) () =
  (* The eight case searches are independent; each stays sequential inside
     (first matching candidate wins) so the found schedule is identical at
     any pool width. *)
  let results =
    Harness.run_many
      (fun case -> (case, search case (candidates_for ~quick case)))
      Splice_case.all
  in
  let table =
    Table.create ~title:"Figure 5: orderings of C's completion vs recovery milestones"
      ~columns:
        [ "case"; "description"; "C done"; "P fails"; "P' inv"; "C' inv"; "C' done"; "P' done";
          "answer ok"; "dups ignored"; "parameters" ]
  in
  List.iter
    (fun (case, found) ->
      match found with
      | None ->
        Table.add_row table
          [ Splice_case.to_string case; Splice_case.description case; "-"; "-"; "-"; "-"; "-";
            "-"; "-"; "-"; "(not reached in sweep)" ]
      | Some f ->
        let tl = f.tl in
        Table.add_row table
          [
            Splice_case.to_string case;
            Splice_case.description case;
            opt_time tl.Splice_case.c_completed;
            string_of_int tl.Splice_case.p_failed;
            opt_time tl.Splice_case.p'_invoked;
            opt_time tl.Splice_case.c'_invoked;
            opt_time tl.Splice_case.c'_completed;
            opt_time tl.Splice_case.p'_completed;
            Harness.c_bool f.correct;
            string_of_int f.dups;
            f.params;
          ])
    results;
  let reached = List.filter (fun (_, f) -> f <> None) results in
  let checks =
    List.map
      (fun (case, found) ->
        ( Printf.sprintf "%s (%s) reached with a correct answer" (Splice_case.to_string case)
            (Splice_case.description case),
          found <> None ))
      results
    @ [
        ( "every reached case produced the serial answer exactly once",
          List.for_all (fun (_, f) -> match f with Some f -> f.correct | None -> true) reached );
      ]
  in
  Report.make ~id:"F5" ~title:"All orderings of child completion vs recovery (case analysis)"
    ~paper_source:"Figures 4–5, §4.1"
    ~notes:
      [
        "Each row is a real simulated schedule found by sweeping failure time, child work, \
         detection delay and placement seed; the classifier buckets the observed journal.";
        "Case 5 typically manifests as the salvaged result reaching P' before it spawns C', so \
         C' is never invoked — the paper's \"P' will not spawn C' because the answer is \
         already there\".";
      ]
    ~checks [ table ]
