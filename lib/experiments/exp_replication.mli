(** Q6 — Emulated hardware redundancy by task replication (§5.3).

    Replicating task packets makes an applicative system behave like a
    hardware-redundant one: replicas execute asynchronously on distinct
    processors and the originator takes the majority consensus, without
    waiting for the slowest replica.  On a workload whose whole call tree
    sits inside the replicated prefix, a failure is *masked* — zero
    re-issues, negligible recovery delay — at k× the fault-free cost.  The
    checkpointing schemes recover the same failure more cheaply in normal
    operation but pay for it at fault time.  Misunas's whole-program TMR
    closed form is quoted alongside. *)

val run : ?quick:bool -> unit -> Report.t
