module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Ckpt_table = Recflow_recovery.Ckpt_table
module Table = Recflow_stats.Table
module Plan = Recflow_fault.Plan
module Stamp = Recflow_recovery.Stamp

type row = {
  mode : string;
  stored : int;
  covered : int;
  reissues : int;
  extra_work : int;
  delta : int;
  correct : bool;
}

let run ?(quick = false) () =
  let w, size, inline_depth = Harness.synthetic_setup ~quick in
  let mk ckpt_mode =
    {
      (Config.default ~nodes:8) with
      Config.inline_depth;
      ckpt_mode;
      recovery = Config.Rollback;
      (* gradient placement co-locates ancestor chains, which is what makes
         coverage effective — the interesting regime for the ablation *)
      policy = Recflow_balance.Policy.Gradient { weight = 2 };
    }
  in
  let rows =
    Harness.run_many
      (fun (name, mode) ->
        let cfg = mk mode in
        let probe = Harness.probe cfg w size in
        let journal = Cluster.journal probe.Harness.cluster in
        let t_fail = probe.Harness.makespan / 2 in
        let root_host =
          Option.to_list (Plan.Pick.host_of journal ~stamp:Stamp.root ~time:t_fail)
        in
        let victim =
          Option.value ~default:1 (Plan.Pick.busiest_at journal ~time:t_fail ~exclude:root_host)
        in
        let faulty =
          Harness.run ~drain:true cfg w size ~failures:(Plan.single ~time:t_fail victim)
        in
        {
          mode = name;
          stored = Harness.counter faulty "ckpt.recorded";
          covered = Harness.counter faulty "ckpt.covered";
          reissues = Harness.counter faulty "reissue.count";
          extra_work =
            Cluster.total_work faulty.Harness.cluster - Cluster.total_work probe.Harness.cluster;
          delta = faulty.Harness.makespan - probe.Harness.makespan;
          correct = faulty.Harness.correct;
        })
      [
        ("topmost (paper §3.2)", Config.Fixed Ckpt_table.Topmost);
        ("keep-all", Config.Fixed Ckpt_table.Keep_all);
      ]
  in
  let table =
    Table.create ~title:"Checkpoint table discipline under one mid-run failure (rollback)"
      ~columns:
        [ "discipline"; "checkpoints stored"; "covered (not stored)"; "re-issues";
          "extra work"; "recovery delta"; "answer ok" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.mode;
          Harness.c_int r.stored;
          Harness.c_int r.covered;
          Harness.c_int r.reissues;
          Harness.c_int r.extra_work;
          Printf.sprintf "%+d" r.delta;
          Harness.c_bool r.correct;
        ])
    rows;
  let topmost = List.hd rows and keep_all = List.nth rows 1 in
  let checks =
    [
      ("both disciplines recover correctly", topmost.correct && keep_all.correct);
      ("topmost stores strictly fewer checkpoints", topmost.stored < keep_all.stored);
      ("topmost re-issues no more tasks than keep-all", topmost.reissues <= keep_all.reissues);
      ( "keep-all redoes at least as much work (fruitless descendant re-issues)",
        topmost.extra_work <= keep_all.extra_work );
    ]
  in
  Report.make ~id:"Q8" ~title:"Checkpoint-table ablation: topmost-only vs keep-all"
    ~paper_source:"§3.2 (table of topmost checkpoints; the B5 coverage discussion)"
    ~notes:
      [
        "Keep-all re-issues every checkpoint filed under the dead processor, including \
         descendants whose regenerated ancestors would recreate them anyway — the \"not \
         fruitful\" reactivations of §3 (task B5).";
      ]
    ~checks [ table ]
