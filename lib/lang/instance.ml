type nstate =
  | Idle  (* not demanded *)
  | Pending of int  (* demanded, waiting on this many dep completions *)
  | Branch_wait of Graph.node_id  (* If: condition decided, waiting on this branch *)
  | Queued  (* all deps ready; sitting in the ready queue *)
  | Called  (* Call: spawn emitted, awaiting supply *)
  | Done of Value.t

type action =
  | Work of { cost : int }
  | Spawn of { slot : Graph.node_id; fname : string; args : Value.t array }
  | Blocked
  | Finished of Value.t
  | Failed of string

type t = {
  graph : Graph.t;
  params : Value.t array;
  states : nstate array;
  waiters : Graph.node_id list array;  (* nodes to notify when a node completes *)
  ready : Graph.node_id Queue.t;
  mutable outstanding : int;
  mutable spawn_order : Graph.node_id list;  (* reversed *)
  mutable fired : int;
  mutable failure : string option;
}

let value_exn t id =
  match t.states.(id) with
  | Done v -> v
  | Idle | Pending _ | Branch_wait _ | Queued | Called ->
    invalid_arg "Instance: dependency not ready"

exception Program_error of string

(* Mark [id] complete with [v] and propagate readiness to its waiters. *)
let rec complete t id v =
  t.states.(id) <- Done v;
  let ws = t.waiters.(id) in
  t.waiters.(id) <- [];
  List.iter (fun w -> dep_ready t w) ws

(* One dependency of [w] became ready. *)
and dep_ready t w =
  match t.states.(w) with
  | Pending n -> (
    match t.graph.Graph.nodes.(w) with
    | Graph.If { cond; then_; else_ } -> branch_decide t w cond then_ else_
    | Graph.Prim _ | Graph.Call _ ->
      if n <= 1 then begin
        t.states.(w) <- Queued;
        Queue.add w t.ready
      end
      else t.states.(w) <- Pending (n - 1)
    | Graph.Const _ | Graph.Param _ -> invalid_arg "Instance: leaf node cannot be pending")
  | Branch_wait _ ->
    t.states.(w) <- Queued;
    Queue.add w t.ready
  | Idle | Queued | Called | Done _ -> invalid_arg "Instance: unexpected dep notification"

(* The If node [w]'s condition is ready: demand the chosen branch. *)
and branch_decide t w cond then_ else_ =
  match value_exn t cond with
  | Value.Bool b ->
    let branch = if b then then_ else else_ in
    demand t branch;
    (match t.states.(branch) with
    | Done _ ->
      t.states.(w) <- Queued;
      Queue.add w t.ready
    | Idle | Pending _ | Branch_wait _ | Queued | Called ->
      t.states.(w) <- Branch_wait branch;
      t.waiters.(branch) <- w :: t.waiters.(branch))
  | v -> raise (Program_error (Type_error.if_condition (Value.type_name v)))

(* Demand-driven activation: idempotent. *)
and demand t id =
  match t.states.(id) with
  | Idle -> (
    match t.graph.Graph.nodes.(id) with
    | Graph.Const v -> complete t id v
    | Graph.Param i -> complete t id t.params.(i)
    | Graph.Prim (_, deps) | Graph.Call { args = deps; _ } ->
      t.states.(id) <- Pending (Array.length deps);
      let missing = ref 0 in
      Array.iter
        (fun d ->
          demand t d;
          match t.states.(d) with
          | Done _ -> ()
          | Idle | Pending _ | Branch_wait _ | Queued | Called ->
            incr missing;
            t.waiters.(d) <- id :: t.waiters.(d))
        deps;
      if !missing = 0 then begin
        t.states.(id) <- Queued;
        Queue.add id t.ready
      end
      else t.states.(id) <- Pending !missing
    | Graph.If { cond; then_; else_ } ->
      t.states.(id) <- Pending 1;
      demand t cond;
      (match t.states.(cond) with
      | Done _ -> branch_decide t id cond then_ else_
      | Idle | Pending _ | Branch_wait _ | Queued | Called ->
        t.waiters.(cond) <- id :: t.waiters.(cond)))
  | Pending _ | Branch_wait _ | Queued | Called | Done _ -> ()

let create graph params =
  if Array.length params <> graph.Graph.arity then
    invalid_arg
      (Printf.sprintf "Instance.create: %s expects %d arguments, got %d" graph.Graph.fname
         graph.Graph.arity (Array.length params));
  let n = Array.length graph.Graph.nodes in
  let t =
    {
      graph;
      params;
      states = Array.make n Idle;
      waiters = Array.make n [];
      ready = Queue.create ();
      outstanding = 0;
      spawn_order = [];
      fired = 0;
      failure = None;
    }
  in
  (try demand t graph.Graph.result with Program_error msg -> t.failure <- Some msg);
  t

let result t =
  match t.states.(t.graph.Graph.result) with Done v -> Some v | _ -> None

let step t =
  match t.failure with
  | Some msg -> Failed msg
  | None -> (
    match result t with
    | Some v -> Finished v
    | None -> (
      match Queue.take_opt t.ready with
      | None ->
        if t.outstanding > 0 then Blocked
        else Failed "internal: evaluation stuck with no outstanding calls"
      | Some id -> (
        match t.graph.Graph.nodes.(id) with
        | Graph.Prim (p, deps) -> (
          let vals = Array.map (value_exn t) deps in
          match Builtins.apply p vals with
          | Ok v ->
            t.fired <- t.fired + 1;
            (try
               complete t id v;
               Work { cost = Builtins.cost p }
             with Program_error msg ->
               t.failure <- Some msg;
               Failed msg)
          | Error msg ->
            t.failure <- Some msg;
            Failed msg)
        | Graph.If { cond; then_; else_ } -> (
          (* The chosen branch is ready; the If yields its value.  The
             condition is necessarily Done, so recomputing the choice here
             is safe and avoids storing it through the Queued state. *)
          let branch =
            match value_exn t cond with
            | Value.Bool b -> if b then then_ else else_
            | _ -> invalid_arg "Instance: non-boolean condition slipped through"
          in
          let v = value_exn t branch in
          t.fired <- t.fired + 1;
          try
            complete t id v;
            Work { cost = 1 }
          with Program_error msg ->
            t.failure <- Some msg;
            Failed msg)
        | Graph.Call { fname; args } ->
          t.states.(id) <- Called;
          t.outstanding <- t.outstanding + 1;
          t.spawn_order <- id :: t.spawn_order;
          Spawn { slot = id; fname; args = Array.map (value_exn t) args }
        | Graph.Const _ | Graph.Param _ -> invalid_arg "Instance: leaf node in ready queue")))

let supply t slot v =
  match t.states.(slot) with
  | Called ->
    t.outstanding <- t.outstanding - 1;
    (try complete t slot v with Program_error msg -> t.failure <- Some msg)
  | Done _ -> ()  (* duplicate answer: identical by determinacy; ignore (§4.1 case 6/7) *)
  | Idle | Pending _ | Branch_wait _ | Queued ->
    invalid_arg "Instance.supply: slot is not an outstanding call"

let outstanding_calls t = t.outstanding

let outstanding_slots t =
  List.rev t.spawn_order
  |> List.filter (fun id -> match t.states.(id) with Called -> true | _ -> false)

let fname t = t.graph.Graph.fname

let args t = t.params

let fired_nodes t = t.fired
