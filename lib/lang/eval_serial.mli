(** Reference (sequential) evaluator.

    Serves three purposes:
    - ground truth: every distributed run must produce the same answer
      (determinacy, §2.1 of the paper);
    - inline execution: the machine layer evaluates fine-grained calls below
      the spawn threshold with this evaluator, charging simulated time
      proportional to the reported reduction count;
    - workload sizing: reduction counts calibrate experiment parameters.

    Reductions are counted per primitive application, conditional branch
    taken, let binding, variable lookup and function call. *)

exception Runtime_error of string
(** Program errors: type errors, division by zero, head/tail of nil,
    call-depth overflow. *)

val eval :
  ?fuel:int -> Program.t -> string -> Value.t list -> Value.t * int
(** [eval program fname args] applies the named function and returns
    [(value, reductions)].  [fuel] (default [50_000_000]) bounds the
    reduction count to catch accidental non-termination in tests.
    @raise Runtime_error on program errors or fuel exhaustion.
    @raise Not_found if [fname] is undefined. *)

val eval_expr : ?fuel:int -> Program.t -> (string * Value.t) list -> Ast.expr -> Value.t * int
(** Evaluate an expression under an initial environment. *)

val call_count : Program.t -> string -> Value.t list -> int
(** Number of user-function applications performed (the size of the call
    tree a fully-spawned distributed run would create).  Used by
    experiments to report salvage fractions. *)
