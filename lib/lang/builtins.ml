let type_error prim args =
  Error
    (Printf.sprintf "%s: bad argument types (%s)" (Ast.prim_name prim)
       (String.concat ", " (List.map Value.type_name (Array.to_list args))))

let int2 prim args k =
  match args with
  | [| Value.Int a; Value.Int b |] -> k a b
  | _ -> type_error prim args

let apply prim args =
  if Array.length args <> Ast.prim_arity prim then
    Error (Printf.sprintf "%s: expected %d arguments, got %d" (Ast.prim_name prim)
             (Ast.prim_arity prim) (Array.length args))
  else
    match prim with
    | Ast.Add -> int2 prim args (fun a b -> Ok (Value.Int (a + b)))
    | Ast.Sub -> int2 prim args (fun a b -> Ok (Value.Int (a - b)))
    | Ast.Mul -> int2 prim args (fun a b -> Ok (Value.Int (a * b)))
    | Ast.Div ->
      int2 prim args (fun a b -> if b = 0 then Error "/: division by zero" else Ok (Value.Int (a / b)))
    | Ast.Mod ->
      int2 prim args (fun a b -> if b = 0 then Error "%: modulo by zero" else Ok (Value.Int (a mod b)))
    | Ast.Min -> int2 prim args (fun a b -> Ok (Value.Int (min a b)))
    | Ast.Max -> int2 prim args (fun a b -> Ok (Value.Int (max a b)))
    | Ast.Lt -> int2 prim args (fun a b -> Ok (Value.Bool (a < b)))
    | Ast.Le -> int2 prim args (fun a b -> Ok (Value.Bool (a <= b)))
    | Ast.Gt -> int2 prim args (fun a b -> Ok (Value.Bool (a > b)))
    | Ast.Ge -> int2 prim args (fun a b -> Ok (Value.Bool (a >= b)))
    | Ast.Eq -> Ok (Value.Bool (Value.equal args.(0) args.(1)))
    | Ast.Ne -> Ok (Value.Bool (not (Value.equal args.(0) args.(1))))
    | Ast.Not -> (
      match args.(0) with
      | Value.Bool b -> Ok (Value.Bool (not b))
      | _ -> type_error prim args)
    | Ast.Neg -> (
      match args.(0) with
      | Value.Int n -> Ok (Value.Int (-n))
      | _ -> type_error prim args)
    | Ast.Cons -> Ok (Value.Cons (args.(0), args.(1)))
    | Ast.Head -> (
      match args.(0) with
      | Value.Cons (h, _) -> Ok h
      | Value.Nil -> Error "head: empty list"
      | _ -> type_error prim args)
    | Ast.Tail -> (
      match args.(0) with
      | Value.Cons (_, t) -> Ok t
      | Value.Nil -> Error "tail: empty list"
      | _ -> type_error prim args)
    | Ast.Is_nil -> (
      match args.(0) with
      | Value.Nil -> Ok (Value.Bool true)
      | Value.Cons _ -> Ok (Value.Bool false)
      | _ -> type_error prim args)

let cost (_ : Ast.prim) = 1
