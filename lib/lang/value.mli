(** Runtime values of the source language.

    Values are immutable and self-contained, so a value embedded in a task
    packet can be shipped between simulated processors by structural copy —
    there is no shared mutable store, mirroring the partitioned-memory
    assumption of the paper. *)

type t = Int of int | Bool of bool | Nil | Cons of t * t

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total structural order (used by voting and by tests). *)

val of_int_list : int list -> t
(** Build a [Cons]-list of integers. *)

val to_int_list : t -> int list option
(** Inverse of {!of_int_list}; [None] if the value is not a proper list of
    integers. *)

val list_length : t -> int option
(** Length of a proper list, [None] otherwise. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val type_name : t -> string
(** "int", "bool", "nil" or "cons" — for error messages. *)
