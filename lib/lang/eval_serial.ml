exception Runtime_error of string

type state = { program : Program.t; mutable steps : int; fuel : int; mutable calls : int }

let tick st =
  st.steps <- st.steps + 1;
  if st.steps > st.fuel then raise (Runtime_error "fuel exhausted (non-terminating program?)")

(* Environments are association lists: bindings are few (function parameters
   plus lets) and lookup hits the most recent binding first. *)
let lookup env x =
  match List.assoc_opt x env with
  | Some v -> v
  | None -> raise (Runtime_error ("unbound variable " ^ x))

let rec eval_in st env expr =
  match expr with
  | Ast.Int n -> Value.Int n
  | Ast.Bool b -> Value.Bool b
  | Ast.Nil -> Value.Nil
  | Ast.Var x ->
    tick st;
    lookup env x
  | Ast.Prim (p, args) ->
    tick st;
    let vals = Array.of_list (List.map (eval_in st env) args) in
    (match Builtins.apply p vals with
    | Ok v -> v
    | Error msg -> raise (Runtime_error msg))
  | Ast.If (c, th, el) -> (
    tick st;
    match eval_in st env c with
    | Value.Bool true -> eval_in st env th
    | Value.Bool false -> eval_in st env el
    | v -> raise (Runtime_error (Type_error.if_condition (Value.type_name v))))
  | Ast.And (a, b) -> (
    tick st;
    match eval_in st env a with
    | Value.Bool false -> Value.Bool false
    | Value.Bool true -> (
      match eval_in st env b with
      | Value.Bool _ as v -> v
      | v ->
        raise (Runtime_error (Type_error.bool_operand ~op:"&&" ~side:"right" (Value.type_name v))))
    | v ->
      raise (Runtime_error (Type_error.bool_operand ~op:"&&" ~side:"left" (Value.type_name v))))
  | Ast.Or (a, b) -> (
    tick st;
    match eval_in st env a with
    | Value.Bool true -> Value.Bool true
    | Value.Bool false -> (
      match eval_in st env b with
      | Value.Bool _ as v -> v
      | v ->
        raise (Runtime_error (Type_error.bool_operand ~op:"||" ~side:"right" (Value.type_name v))))
    | v ->
      raise (Runtime_error (Type_error.bool_operand ~op:"||" ~side:"left" (Value.type_name v))))
  | Ast.Let (x, bound, body) ->
    tick st;
    let v = eval_in st env bound in
    eval_in st ((x, v) :: env) body
  | Ast.Call (fname, args) ->
    tick st;
    st.calls <- st.calls + 1;
    let vals = List.map (eval_in st env) args in
    apply st fname vals

and apply st fname vals =
  match Program.find st.program fname with
  | None -> raise (Runtime_error ("call to unknown function " ^ fname))
  | Some def ->
    if List.length def.params <> List.length vals then
      raise
        (Runtime_error
           (Printf.sprintf "%s: expected %d arguments, got %d" fname (List.length def.params)
              (List.length vals)));
    let env = List.combine def.params vals in
    eval_in st env def.body

let default_fuel = 50_000_000

let eval ?(fuel = default_fuel) program fname args =
  if Program.find program fname = None then raise Not_found;
  let st = { program; steps = 0; fuel; calls = 0 } in
  let v = apply st fname args in
  (v, st.steps)

let eval_expr ?(fuel = default_fuel) program env expr =
  let st = { program; steps = 0; fuel; calls = 0 } in
  let v = eval_in st env expr in
  (v, st.steps)

let call_count program fname args =
  let st = { program; steps = 0; fuel = default_fuel; calls = 1 } in
  ignore (apply st fname args);
  st.calls
