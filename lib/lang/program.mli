(** A program: a set of named function definitions.

    Construction validates the static well-formedness rules the evaluators
    rely on: no duplicate definitions or parameters, no unbound variables,
    every call resolves to a defined function with the right arity, and
    primitive arities are respected. *)

type t

type error =
  | Duplicate_definition of string
  | Duplicate_parameter of string * string  (** function, parameter *)
  | Unbound_variable of string * string  (** function, variable *)
  | Unknown_function of string * string  (** caller, callee *)
  | Arity_mismatch of { caller : string; callee : string; expected : int; got : int }
  | Prim_arity of { caller : string; prim : string; expected : int; got : int }

val error_to_string : error -> string

val of_defs : Ast.def list -> (t, error) result

val of_defs_exn : Ast.def list -> t
(** @raise Invalid_argument with the rendered error. *)

val find : t -> string -> Ast.def option

val find_exn : t -> string -> Ast.def
(** @raise Not_found *)

val arity : t -> string -> int option

val defs : t -> Ast.def list
(** Definitions sorted by name. *)

val names : t -> string list

val union : t -> t -> (t, error) result
(** Combine two programs; fails with [Duplicate_definition] on overlap. *)
