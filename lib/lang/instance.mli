(** Per-task activation of a {!Graph} template: demand-driven evaluation.

    An instance starts with the result node demanded; demand propagates to
    exactly the nodes the answer needs (in particular only the taken branch
    of a conditional, mirroring Rediflow's demand-driven model).  Execution
    is pulled by the machine layer one micro-step at a time so the
    simulator can charge time per node firing and interleave tasks:

    - {!step} returns [Work] when a primitive or conditional fired (with
      its simulated cost), [Spawn] when a call node's arguments are ready —
      the machine performs DEMAND_IT and later calls {!supply} with the
      child's answer — [Blocked] when the only pending work awaits child
      results, [Finished] once the result node has a value, and [Failed] on
      a program error.

    - {!supply} is idempotent for already-filled slots: a duplicate answer
      for the same call node is ignored, which is exactly the behaviour
      splice recovery needs in cases 6 and 7 of §4.1 ("since they are
      identical, the second copy is simply ignored"). *)

type t

type action =
  | Work of { cost : int }  (** a node fired; charge this much simulated work *)
  | Spawn of { slot : Graph.node_id; fname : string; args : Value.t array }
  | Blocked  (** waiting on outstanding call results *)
  | Finished of Value.t
  | Failed of string

val create : Graph.t -> Value.t array -> t
(** @raise Invalid_argument on arity mismatch. *)

val step : t -> action

val supply : t -> Graph.node_id -> Value.t -> unit
(** Deliver a child result into a call slot.  Ignored if the slot is
    already filled.
    @raise Invalid_argument if the slot is not an outstanding call. *)

val outstanding_calls : t -> int
(** Call slots spawned but not yet supplied. *)

val outstanding_slots : t -> Graph.node_id list
(** The outstanding slots, in spawn order. *)

val result : t -> Value.t option

val fname : t -> string

val args : t -> Value.t array

val fired_nodes : t -> int
(** Nodes fired so far (a per-task work metric). *)
