type prim =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Not
  | Neg
  | Cons
  | Head
  | Tail
  | Is_nil
  | Min
  | Max

type expr =
  | Int of int
  | Bool of bool
  | Nil
  | Var of string
  | Prim of prim * expr list
  | If of expr * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Let of string * expr * expr
  | Call of string * expr list

type def = { name : string; params : string list; body : expr }

let prim_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | Not -> "not"
  | Neg -> "neg"
  | Cons -> "::"
  | Head -> "head"
  | Tail -> "tail"
  | Is_nil -> "nil?"
  | Min -> "min"
  | Max -> "max"

let prim_arity = function
  | Not | Neg | Head | Tail | Is_nil -> 1
  | Add | Sub | Mul | Div | Mod | Lt | Le | Gt | Ge | Eq | Ne | Cons | Min | Max -> 2

(* The structural walks below use explicit work lists instead of direct
   recursion: deep right-nested expressions (a 100k-element list literal
   desugars to a cons chain that deep) must not overflow the stack. *)

let equal_expr a b =
  let rec go = function
    | [] -> true
    | (a, b) :: rest -> (
      match (a, b) with
      | Int x, Int y -> x = y && go rest
      | Bool x, Bool y -> x = y && go rest
      | Nil, Nil -> go rest
      | Var x, Var y -> String.equal x y && go rest
      | Prim (p, xs), Prim (q, ys) ->
        p = q && List.length xs = List.length ys && go (List.combine xs ys @ rest)
      | If (c1, t1, e1), If (c2, t2, e2) -> go ((c1, c2) :: (t1, t2) :: (e1, e2) :: rest)
      | And (x1, y1), And (x2, y2) | Or (x1, y1), Or (x2, y2) ->
        go ((x1, x2) :: (y1, y2) :: rest)
      | Let (n1, b1, k1), Let (n2, b2, k2) ->
        String.equal n1 n2 && go ((b1, b2) :: (k1, k2) :: rest)
      | Call (f, xs), Call (g, ys) ->
        String.equal f g && List.length xs = List.length ys && go (List.combine xs ys @ rest)
      | (Int _ | Bool _ | Nil | Var _ | Prim _ | If _ | And _ | Or _ | Let _ | Call _), _ ->
        false)
  in
  go [ (a, b) ]

let size expr =
  let rec go acc = function
    | [] -> acc
    | e :: rest -> (
      match e with
      | Int _ | Bool _ | Nil | Var _ -> go (acc + 1) rest
      | Prim (_, args) | Call (_, args) -> go (acc + 1) (args @ rest)
      | If (c, t, e) -> go (acc + 1) (c :: t :: e :: rest)
      | And (a, b) | Or (a, b) -> go (acc + 1) (a :: b :: rest)
      | Let (_, b, k) -> go (acc + 1) (b :: k :: rest))
  in
  go 0 [ expr ]

let sorted_unique xs = List.sort_uniq String.compare xs

let free_vars expr =
  let rec go acc = function
    | [] -> sorted_unique acc
    | (e, bound) :: rest -> (
      match e with
      | Int _ | Bool _ | Nil -> go acc rest
      | Var x -> go (if List.mem x bound then acc else x :: acc) rest
      | Prim (_, args) | Call (_, args) ->
        go acc (List.map (fun a -> (a, bound)) args @ rest)
      | If (c, t, e) -> go acc ((c, bound) :: (t, bound) :: (e, bound) :: rest)
      | And (a, b) | Or (a, b) -> go acc ((a, bound) :: (b, bound) :: rest)
      | Let (x, b, k) -> go acc ((b, bound) :: (k, x :: bound) :: rest))
  in
  go [] [ (expr, []) ]

let calls expr =
  let rec go acc = function
    | [] -> sorted_unique acc
    | e :: rest -> (
      match e with
      | Int _ | Bool _ | Nil | Var _ -> go acc rest
      | Prim (_, args) -> go acc (args @ rest)
      | If (c, t, e) -> go acc (c :: t :: e :: rest)
      | And (a, b) | Or (a, b) -> go acc (a :: b :: rest)
      | Let (_, b, k) -> go acc (b :: k :: rest)
      | Call (f, args) -> go (f :: acc) (args @ rest))
  in
  go [] [ expr ]
