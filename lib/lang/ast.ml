type prim =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Not
  | Neg
  | Cons
  | Head
  | Tail
  | Is_nil
  | Min
  | Max

type expr =
  | Int of int
  | Bool of bool
  | Nil
  | Var of string
  | Prim of prim * expr list
  | If of expr * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Let of string * expr * expr
  | Call of string * expr list

type def = { name : string; params : string list; body : expr }

let prim_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | Not -> "not"
  | Neg -> "neg"
  | Cons -> "::"
  | Head -> "head"
  | Tail -> "tail"
  | Is_nil -> "nil?"
  | Min -> "min"
  | Max -> "max"

let prim_arity = function
  | Not | Neg | Head | Tail | Is_nil -> 1
  | Add | Sub | Mul | Div | Mod | Lt | Le | Gt | Ge | Eq | Ne | Cons | Min | Max -> 2

let rec equal_expr a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Bool x, Bool y -> x = y
  | Nil, Nil -> true
  | Var x, Var y -> String.equal x y
  | Prim (p, xs), Prim (q, ys) ->
    p = q && List.length xs = List.length ys && List.for_all2 equal_expr xs ys
  | If (c1, t1, e1), If (c2, t2, e2) -> equal_expr c1 c2 && equal_expr t1 t2 && equal_expr e1 e2
  | And (x1, y1), And (x2, y2) | Or (x1, y1), Or (x2, y2) ->
    equal_expr x1 x2 && equal_expr y1 y2
  | Let (n1, b1, k1), Let (n2, b2, k2) -> String.equal n1 n2 && equal_expr b1 b2 && equal_expr k1 k2
  | Call (f, xs), Call (g, ys) ->
    String.equal f g && List.length xs = List.length ys && List.for_all2 equal_expr xs ys
  | (Int _ | Bool _ | Nil | Var _ | Prim _ | If _ | And _ | Or _ | Let _ | Call _), _ -> false

let rec size = function
  | Int _ | Bool _ | Nil | Var _ -> 1
  | Prim (_, args) -> List.fold_left (fun acc e -> acc + size e) 1 args
  | If (c, t, e) -> 1 + size c + size t + size e
  | And (a, b) | Or (a, b) -> 1 + size a + size b
  | Let (_, b, k) -> 1 + size b + size k
  | Call (_, args) -> List.fold_left (fun acc e -> acc + size e) 1 args

let sorted_unique xs = List.sort_uniq String.compare xs

let free_vars expr =
  let rec go bound acc = function
    | Int _ | Bool _ | Nil -> acc
    | Var x -> if List.mem x bound then acc else x :: acc
    | Prim (_, args) | Call (_, args) -> List.fold_left (go bound) acc args
    | If (c, t, e) -> go bound (go bound (go bound acc c) t) e
    | And (a, b) | Or (a, b) -> go bound (go bound acc a) b
    | Let (x, b, k) -> go (x :: bound) (go bound acc b) k
  in
  sorted_unique (go [] [] expr)

let calls expr =
  let rec go acc = function
    | Int _ | Bool _ | Nil | Var _ -> acc
    | Prim (_, args) -> List.fold_left go acc args
    | If (c, t, e) -> go (go (go acc c) t) e
    | And (a, b) | Or (a, b) -> go (go acc a) b
    | Let (_, b, k) -> go (go acc b) k
    | Call (f, args) -> List.fold_left go (f :: acc) args
  in
  sorted_unique (go [] expr)
