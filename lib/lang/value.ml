type t = Int of int | Bool of bool | Nil | Cons of t * t

let rec equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Bool x, Bool y -> x = y
  | Nil, Nil -> true
  | Cons (h1, t1), Cons (h2, t2) -> equal h1 h2 && equal t1 t2
  | (Int _ | Bool _ | Nil | Cons _), _ -> false

let rec compare a b =
  let rank = function Int _ -> 0 | Bool _ -> 1 | Nil -> 2 | Cons _ -> 3 in
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | Nil, Nil -> 0
  | Cons (h1, t1), Cons (h2, t2) ->
    let c = compare h1 h2 in
    if c <> 0 then c else compare t1 t2
  | _, _ -> Stdlib.compare (rank a) (rank b)

let of_int_list xs = List.fold_right (fun x acc -> Cons (Int x, acc)) xs Nil

let to_int_list v =
  let rec go acc = function
    | Nil -> Some (List.rev acc)
    | Cons (Int x, rest) -> go (x :: acc) rest
    | Cons (_, _) | Int _ | Bool _ -> None
  in
  go [] v

let list_length v =
  let rec go n = function
    | Nil -> Some n
    | Cons (_, rest) -> go (n + 1) rest
    | Int _ | Bool _ -> None
  in
  go 0 v

let rec pp ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Bool b -> Format.pp_print_bool ppf b
  | Nil -> Format.pp_print_string ppf "[]"
  | Cons (h, t) -> (
    (* Render proper lists as [a; b; c]; improper pairs as (a :: b). *)
    match to_elements (Cons (h, t)) with
    | Some elts ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp)
        elts
    | None -> Format.fprintf ppf "(%a :: %a)" pp h pp t)

and to_elements v =
  (* Iterative: rendering a deep list value must not overflow the stack. *)
  let rec go acc = function
    | Nil -> Some (List.rev acc)
    | Cons (h, t) -> go (h :: acc) t
    | Int _ | Bool _ -> None
  in
  go [] v

let to_string v = Format.asprintf "%a" pp v

let type_name = function Int _ -> "int" | Bool _ -> "bool" | Nil -> "nil" | Cons _ -> "cons"
