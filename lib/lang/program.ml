type t = (string, Ast.def) Hashtbl.t

type error =
  | Duplicate_definition of string
  | Duplicate_parameter of string * string
  | Unbound_variable of string * string
  | Unknown_function of string * string
  | Arity_mismatch of { caller : string; callee : string; expected : int; got : int }
  | Prim_arity of { caller : string; prim : string; expected : int; got : int }

let error_to_string = function
  | Duplicate_definition f -> Printf.sprintf "duplicate definition of %s" f
  | Duplicate_parameter (f, p) -> Printf.sprintf "%s: duplicate parameter %s" f p
  | Unbound_variable (f, v) -> Printf.sprintf "%s: unbound variable %s" f v
  | Unknown_function (f, g) -> Printf.sprintf "%s: call to unknown function %s" f g
  | Arity_mismatch { caller; callee; expected; got } ->
    Printf.sprintf "%s: %s expects %d arguments, got %d" caller callee expected got
  | Prim_arity { caller; prim; expected; got } ->
    Printf.sprintf "%s: primitive %s expects %d arguments, got %d" caller prim expected got

exception Check of error

let rec check_expr table fname bound expr =
  match expr with
  | Ast.Int _ | Ast.Bool _ | Ast.Nil -> ()
  | Ast.Var x -> if not (List.mem x bound) then raise (Check (Unbound_variable (fname, x)))
  | Ast.Prim (p, args) ->
    let expected = Ast.prim_arity p and got = List.length args in
    if expected <> got then
      raise (Check (Prim_arity { caller = fname; prim = Ast.prim_name p; expected; got }));
    List.iter (check_expr table fname bound) args
  | Ast.If (c, th, el) ->
    check_expr table fname bound c;
    check_expr table fname bound th;
    check_expr table fname bound el
  | Ast.And (a, b) | Ast.Or (a, b) ->
    check_expr table fname bound a;
    check_expr table fname bound b
  | Ast.Let (x, b, k) ->
    check_expr table fname bound b;
    check_expr table fname (x :: bound) k
  | Ast.Call (g, args) -> (
    match Hashtbl.find_opt table g with
    | None -> raise (Check (Unknown_function (fname, g)))
    | Some (def : Ast.def) ->
      let expected = List.length def.params and got = List.length args in
      if expected <> got then
        raise (Check (Arity_mismatch { caller = fname; callee = g; expected; got }));
      List.iter (check_expr table fname bound) args)

let rec first_duplicate = function
  | [] -> None
  | x :: rest -> if List.mem x rest then Some x else first_duplicate rest

let of_defs defs =
  let table = Hashtbl.create 16 in
  try
    List.iter
      (fun (def : Ast.def) ->
        if Hashtbl.mem table def.name then raise (Check (Duplicate_definition def.name));
        (match first_duplicate def.params with
        | Some p -> raise (Check (Duplicate_parameter (def.name, p)))
        | None -> ());
        Hashtbl.add table def.name def)
      defs;
    List.iter
      (fun (def : Ast.def) -> check_expr table def.name def.params def.body)
      defs;
    Ok table
  with Check e -> Error e

let of_defs_exn defs =
  match of_defs defs with
  | Ok t -> t
  | Error e -> invalid_arg ("Program.of_defs_exn: " ^ error_to_string e)

let find t name = Hashtbl.find_opt t name

let find_exn t name =
  match find t name with Some d -> d | None -> raise Not_found

let arity t name = Option.map (fun (d : Ast.def) -> List.length d.params) (find t name)

let defs t =
  Hashtbl.fold (fun _ d acc -> d :: acc) t []
  |> List.sort (fun (a : Ast.def) b -> String.compare a.name b.name)

let names t = List.map (fun (d : Ast.def) -> d.name) (defs t)

let union a b = of_defs (defs a @ defs b)
