(** Pretty-printer for expressions and definitions.

    Output re-parses to the same AST (a qcheck property in the test suite),
    so it doubles as a serializer for task-packet debugging dumps. *)

val expr_to_string : Ast.expr -> string

val def_to_string : Ast.def -> string

val program_to_string : Program.t -> string

val pp_expr : Format.formatter -> Ast.expr -> unit

val pp_def : Format.formatter -> Ast.def -> unit
