(** Lexer and recursive-descent parser for the source language.

    Concrete syntax, by example:

    {v
    # comments run to end of line
    def fib(n) =
      if n < 2 then n else fib(n - 1) + fib(n - 2)

    def sum(xs) =
      if isnil(xs) then 0 else head(xs) + sum(tail(xs))

    def range(lo, hi) =
      if lo >= hi then nil else lo :: range(lo + 1, hi)
    v}

    Operator precedence, loosest first: [||], [&&], comparisons
    (non-associative), [::] (right-associative), [+ -], [* / %], unary
    ([not], [-]).  [let x = e in e'] and [if/then/else] parse at the top
    level of an expression; [head], [tail], [isnil], [min], [max] are
    reserved primitive names. *)

type error = { line : int; column : int; message : string }

val error_to_string : error -> string

type span = { sline : int; scol : int }
(** 1-based line/column of a token of interest. *)

type def_spans = {
  def_name : string;
  def_span : span;  (** position of the function name in its [def] *)
  call_spans : (string * span) list;
      (** user-call identifiers in textual order.  Textual order equals a
          left-to-right pre-order walk of the body's [Ast.Call] nodes, so
          the analyser can re-attach spans with a counter instead of
          storing positions in the AST. *)
}

val parse_expr : string -> (Ast.expr, error) result
(** Parse a single expression (for tests and the REPL-ish examples). *)

val parse_defs : string -> (Ast.def list, error) result
(** Parse a whole program: a sequence of [def] items. *)

val parse_defs_spanned : string -> (Ast.def list * def_spans list, error) result
(** Like [parse_defs] but also returns per-def source locations for the
    static analyser's diagnostics. *)

val parse_program : string -> (Program.t, string) result
(** Parse then validate; the error string covers both syntax and static
    checking failures. *)

val parse_program_spanned : string -> (Program.t * def_spans list, string) result
(** [parse_program] plus the per-def spans of [parse_defs_spanned]. *)

val parse_program_exn : string -> Program.t
(** @raise Invalid_argument on any parse or validation error. *)
