(** Lexer and recursive-descent parser for the source language.

    Concrete syntax, by example:

    {v
    # comments run to end of line
    def fib(n) =
      if n < 2 then n else fib(n - 1) + fib(n - 2)

    def sum(xs) =
      if isnil(xs) then 0 else head(xs) + sum(tail(xs))

    def range(lo, hi) =
      if lo >= hi then nil else lo :: range(lo + 1, hi)
    v}

    Operator precedence, loosest first: [||], [&&], comparisons
    (non-associative), [::] (right-associative), [+ -], [* / %], unary
    ([not], [-]).  [let x = e in e'] and [if/then/else] parse at the top
    level of an expression; [head], [tail], [isnil], [min], [max] are
    reserved primitive names. *)

type error = { line : int; column : int; message : string }

val error_to_string : error -> string

val parse_expr : string -> (Ast.expr, error) result
(** Parse a single expression (for tests and the REPL-ish examples). *)

val parse_defs : string -> (Ast.def list, error) result
(** Parse a whole program: a sequence of [def] items. *)

val parse_program : string -> (Program.t, string) result
(** Parse then validate; the error string covers both syntax and static
    checking failures. *)

val parse_program_exn : string -> Program.t
(** @raise Invalid_argument on any parse or validation error. *)
