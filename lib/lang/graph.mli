(** Dataflow-graph templates: one compiled per function definition.

    A function body compiles to a DAG whose leaves are constants and
    parameters and whose internal nodes are primitive applications,
    conditionals and user-function calls.  [let] bindings become shared
    nodes, so a bound value is computed once.  [&&]/[||] desugar into
    conditionals, preserving short-circuit (demand-driven) evaluation.

    A task in the simulated machine is an {!Instance} of a template: the
    template is immutable and shared; per-task state lives in the instance.
    Call nodes are the spawn sites of the paper's call tree — when a call
    node's arguments are ready the instance emits a spawn request, which the
    machine turns into DEMAND_IT (§4.2): packet formation, level stamping
    and functional checkpointing. *)

type node_id = int

type node =
  | Const of Value.t
  | Param of int
  | Prim of Ast.prim * node_id array
  | If of { cond : node_id; then_ : node_id; else_ : node_id }
  | Call of { fname : string; args : node_id array }

type t = private {
  fname : string;
  arity : int;
  nodes : node array;  (** topologically ordered: deps precede users *)
  result : node_id;
}

val compile_def : Ast.def -> t

type library
(** Compiled templates for a whole program. *)

val compile_program : Program.t -> library

val find : library -> string -> t option

val find_exn : library -> string -> t
(** @raise Invalid_argument for an unknown function. *)

val program : library -> Program.t
(** The source program the library was compiled from (used for inline
    evaluation of fine-grained calls). *)

val node_count : t -> int

val call_sites : t -> int
(** Number of [Call] nodes (potential spawn points per activation). *)

val pp : Format.formatter -> t -> unit
(** Debug rendering, one node per line. *)
