(** Semantics of the primitive operators.

    All primitives are total functions of their argument values into
    [result]; type errors and division by zero are reported as [Error]
    strings, which the machine layer turns into task failures (a *program*
    error, distinct from the *processor* failures the recovery schemes
    handle). *)

val apply : Ast.prim -> Value.t array -> (Value.t, string) result
(** Evaluate one primitive.  [Error] covers wrong arity, wrong argument
    types, division/modulo by zero, and head/tail of an empty list. *)

val cost : Ast.prim -> int
(** Simulated execution cost of the primitive in abstract work units (the
    machine multiplies by its per-unit tick cost).  Arithmetic and
    comparisons cost 1; list structure operations cost 1; this is
    deliberately simple — relative experiment outcomes do not depend on the
    exact per-op weights. *)
