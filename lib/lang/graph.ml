type node_id = int

type node =
  | Const of Value.t
  | Param of int
  | Prim of Ast.prim * node_id array
  | If of { cond : node_id; then_ : node_id; else_ : node_id }
  | Call of { fname : string; args : node_id array }

type t = { fname : string; arity : int; nodes : node array; result : node_id }

type builder = { mutable rev_nodes : node list; mutable count : int }

let emit b node =
  let id = b.count in
  b.rev_nodes <- node :: b.rev_nodes;
  b.count <- b.count + 1;
  id

(* [env] maps a variable either to its parameter index or to the node that
   computes its let-bound value (giving sharing). *)
type binding = Bparam of int | Bnode of node_id

let rec compile_expr b env expr =
  match expr with
  | Ast.Int n -> emit b (Const (Value.Int n))
  | Ast.Bool v -> emit b (Const (Value.Bool v))
  | Ast.Nil -> emit b (Const Value.Nil)
  | Ast.Var x -> (
    match List.assoc_opt x env with
    | Some (Bnode id) -> id
    | Some (Bparam i) -> emit b (Param i)
    | None -> invalid_arg ("Graph.compile: unbound variable " ^ x))
  | Ast.Prim (p, args) ->
    let ids = Array.of_list (List.map (compile_expr b env) args) in
    emit b (Prim (p, ids))
  | Ast.If (c, th, el) ->
    let cond = compile_expr b env c in
    let then_ = compile_expr b env th in
    let else_ = compile_expr b env el in
    emit b (If { cond; then_; else_ })
  | Ast.And (x, y) ->
    (* Short-circuit: if x then y else false. *)
    let cond = compile_expr b env x in
    let then_ = compile_expr b env y in
    let else_ = emit b (Const (Value.Bool false)) in
    emit b (If { cond; then_; else_ })
  | Ast.Or (x, y) ->
    let cond = compile_expr b env x in
    let then_ = emit b (Const (Value.Bool true)) in
    let else_ = compile_expr b env y in
    emit b (If { cond; then_; else_ })
  | Ast.Let (x, bound, body) ->
    let bid = compile_expr b env bound in
    compile_expr b ((x, Bnode bid) :: env) body
  | Ast.Call (fname, args) ->
    let ids = Array.of_list (List.map (compile_expr b env) args) in
    emit b (Call { fname; args = ids })

let compile_def (def : Ast.def) =
  let b = { rev_nodes = []; count = 0 } in
  let env = List.mapi (fun i p -> (p, Bparam i)) def.params in
  let result = compile_expr b env def.body in
  {
    fname = def.name;
    arity = List.length def.params;
    nodes = Array.of_list (List.rev b.rev_nodes);
    result;
  }

type library = { templates : (string, t) Hashtbl.t; source : Program.t }

let compile_program program =
  let templates = Hashtbl.create 16 in
  List.iter
    (fun (def : Ast.def) -> Hashtbl.replace templates def.name (compile_def def))
    (Program.defs program);
  { templates; source = program }

let find lib name = Hashtbl.find_opt lib.templates name

let find_exn lib name =
  match find lib name with
  | Some t -> t
  | None -> invalid_arg ("Graph.find_exn: unknown function " ^ name)

let program lib = lib.source

let node_count t = Array.length t.nodes

let call_sites t =
  Array.fold_left (fun acc n -> match n with Call _ -> acc + 1 | _ -> acc) 0 t.nodes

let pp_node ppf = function
  | Const v -> Format.fprintf ppf "const %a" Value.pp v
  | Param i -> Format.fprintf ppf "param %d" i
  | Prim (p, deps) ->
    Format.fprintf ppf "prim %s (%s)" (Ast.prim_name p)
      (String.concat ", " (Array.to_list (Array.map string_of_int deps)))
  | If { cond; then_; else_ } -> Format.fprintf ppf "if n%d then n%d else n%d" cond then_ else_
  | Call { fname; args } ->
    Format.fprintf ppf "call %s (%s)" fname
      (String.concat ", " (Array.to_list (Array.map string_of_int args)))

let pp ppf t =
  Format.fprintf ppf "graph %s/%d (result n%d)@." t.fname t.arity t.result;
  Array.iteri (fun i n -> Format.fprintf ppf "  n%-4d %a@." i pp_node n) t.nodes
