(* Shared wording for runtime/static type errors.

   Both evaluators (eval_serial, instance) and the static checker
   (recflow_analysis) render boolean-context violations through these
   helpers so a message seen at runtime is literally the message the
   checker would have printed for the same defect. *)

let if_condition ty = "if: condition is not a boolean: " ^ ty

let bool_operand ~op ~side ty =
  Printf.sprintf "%s: %s operand is not a boolean: %s" op side ty
