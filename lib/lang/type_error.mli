(** Shared wording for boolean-context type errors.

    One source of truth for the strings raised by [Eval_serial],
    [Instance] and reported by the static checker, so runtime diagnostics
    and [recflow --check] diagnostics never drift apart. *)

val if_condition : string -> string
(** [if_condition ty] is the message for a non-boolean [if] condition of
    type (or runtime type name) [ty]. *)

val bool_operand : op:string -> side:string -> string -> string
(** [bool_operand ~op:"&&" ~side:"left" ty] is the message for a
    non-boolean operand of a short-circuit operator. *)
