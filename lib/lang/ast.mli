(** Abstract syntax of the applicative source language.

    The language is strict, first-order and pure: no assignment, no I/O, no
    higher-order values.  Purity gives exactly the determinacy property the
    paper's recovery schemes rely on (§2.1): any application of a function to
    given arguments always yields the same result, so a retained task packet
    can regenerate a lost task at any time. *)

type prim =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Not
  | Neg
  | Cons
  | Head
  | Tail
  | Is_nil
  | Min
  | Max

type expr =
  | Int of int
  | Bool of bool
  | Nil
  | Var of string
  | Prim of prim * expr list
  | If of expr * expr * expr
  | And of expr * expr  (** short-circuit; kept distinct from [Prim] *)
  | Or of expr * expr
  | Let of string * expr * expr
  | Call of string * expr list  (** user-defined function application *)

type def = { name : string; params : string list; body : expr }

val prim_name : prim -> string

val prim_arity : prim -> int

val equal_expr : expr -> expr -> bool

val size : expr -> int
(** Number of AST nodes; used by tests and by cost heuristics. *)

val free_vars : expr -> string list
(** Sorted, deduplicated free variables. *)

val calls : expr -> string list
(** Sorted, deduplicated names of user functions referenced. *)
