type error = { line : int; column : int; message : string }

let error_to_string e = Printf.sprintf "line %d, column %d: %s" e.line e.column e.message

type token =
  | Tint of int
  | Tident of string
  | Tdef
  | Tlet
  | Tin
  | Tif
  | Tthen
  | Telse
  | Ttrue
  | Tfalse
  | Tnil
  | Tnot
  | Tlparen
  | Trparen
  | Tlbracket
  | Trbracket
  | Tcomma
  | Tsemi
  | Tassign
  | Teqeq
  | Tne
  | Tlt
  | Tle
  | Tgt
  | Tge
  | Tplus
  | Tminus
  | Tstar
  | Tslash
  | Tpercent
  | Tconscons
  | Tandand
  | Toror
  | Teof

let token_label = function
  | Tint n -> string_of_int n
  | Tident s -> s
  | Tdef -> "def"
  | Tlet -> "let"
  | Tin -> "in"
  | Tif -> "if"
  | Tthen -> "then"
  | Telse -> "else"
  | Ttrue -> "true"
  | Tfalse -> "false"
  | Tnil -> "nil"
  | Tnot -> "not"
  | Tlparen -> "("
  | Trparen -> ")"
  | Tlbracket -> "["
  | Trbracket -> "]"
  | Tcomma -> ","
  | Tsemi -> ";"
  | Tassign -> "="
  | Teqeq -> "=="
  | Tne -> "!="
  | Tlt -> "<"
  | Tle -> "<="
  | Tgt -> ">"
  | Tge -> ">="
  | Tplus -> "+"
  | Tminus -> "-"
  | Tstar -> "*"
  | Tslash -> "/"
  | Tpercent -> "%"
  | Tconscons -> "::"
  | Tandand -> "&&"
  | Toror -> "||"
  | Teof -> "<eof>"

exception Parse_error of error

let fail line column fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; column; message })) fmt

(* ------------------------------------------------------------------ *)
(* Lexing                                                              *)
(* ------------------------------------------------------------------ *)

type located = { tok : token; tline : int; tcol : int }

let keyword = function
  | "def" -> Some Tdef
  | "let" -> Some Tlet
  | "in" -> Some Tin
  | "if" -> Some Tif
  | "then" -> Some Tthen
  | "else" -> Some Telse
  | "true" -> Some Ttrue
  | "false" -> Some Tfalse
  | "nil" -> Some Tnil
  | "not" -> Some Tnot
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let out = ref [] in
  let emit tok tline tcol = out := { tok; tline; tcol } :: !out in
  let i = ref 0 in
  let advance () =
    (if src.[!i] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr i
  in
  while !i < n do
    let c = src.[!i] in
    let tline = !line and tcol = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '#' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        advance ()
      done;
      let text = String.sub src start (!i - start) in
      match int_of_string_opt text with
      | Some v -> emit (Tint v) tline tcol
      | None -> fail tline tcol "integer literal out of range: %s" text
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      let text = String.sub src start (!i - start) in
      match keyword text with
      | Some tok -> emit tok tline tcol
      | None -> emit (Tident text) tline tcol
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      let emit2 tok =
        emit tok tline tcol;
        advance ();
        advance ()
      in
      match two with
      | Some "==" -> emit2 Teqeq
      | Some "!=" -> emit2 Tne
      | Some "<=" -> emit2 Tle
      | Some ">=" -> emit2 Tge
      | Some "::" -> emit2 Tconscons
      | Some "&&" -> emit2 Tandand
      | Some "||" -> emit2 Toror
      | _ -> (
        let emit1 tok =
          emit tok tline tcol;
          advance ()
        in
        match c with
        | '(' -> emit1 Tlparen
        | ')' -> emit1 Trparen
        | '[' -> emit1 Tlbracket
        | ']' -> emit1 Trbracket
        | ',' -> emit1 Tcomma
        | ';' -> emit1 Tsemi
        | '=' -> emit1 Tassign
        | '<' -> emit1 Tlt
        | '>' -> emit1 Tgt
        | '+' -> emit1 Tplus
        | '-' -> emit1 Tminus
        | '*' -> emit1 Tstar
        | '/' -> emit1 Tslash
        | '%' -> emit1 Tpercent
        | _ -> fail tline tcol "unexpected character %C" c)
    end
  done;
  emit Teof !line !col;
  Array.of_list (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type span = { sline : int; scol : int }

type def_spans = { def_name : string; def_span : span; call_spans : (string * span) list }

type state = {
  toks : located array;
  mutable pos : int;
  (* User-call identifier positions in textual order.  Because the grammar
     is parsed left-to-right, this order equals a left-to-right pre-order
     walk of the resulting AST's [Call] nodes — the static analyser relies
     on that to re-attach spans without storing them in the AST. *)
  mutable user_calls : (string * span) list;  (* reversed *)
}

let peek st = st.toks.(st.pos)

let next st =
  let t = st.toks.(st.pos) in
  if t.tok <> Teof then st.pos <- st.pos + 1;
  t

let expect st tok =
  let t = next st in
  if t.tok <> tok then
    fail t.tline t.tcol "expected %s but found %s" (token_label tok) (token_label t.tok)

let expect_ident st =
  let t = next st in
  match t.tok with
  | Tident name -> name
  | other -> fail t.tline t.tcol "expected an identifier but found %s" (token_label other)

(* Primitive functions callable by name: name(args). *)
let prim_by_name = function
  | "head" -> Some Ast.Head
  | "tail" -> Some Ast.Tail
  | "isnil" -> Some Ast.Is_nil
  | "min" -> Some Ast.Min
  | "max" -> Some Ast.Max
  | _ -> None

let rec parse_expr_st st =
  let t = peek st in
  match t.tok with
  | Tlet ->
    ignore (next st);
    let name = expect_ident st in
    expect st Tassign;
    let bound = parse_expr_st st in
    expect st Tin;
    let body = parse_expr_st st in
    Ast.Let (name, bound, body)
  | Tif ->
    ignore (next st);
    let cond = parse_expr_st st in
    expect st Tthen;
    let th = parse_expr_st st in
    expect st Telse;
    let el = parse_expr_st st in
    Ast.If (cond, th, el)
  | _ -> parse_or st

and parse_or st =
  let lhs = parse_and st in
  if (peek st).tok = Toror then begin
    ignore (next st);
    let rhs = parse_or st in
    Ast.Or (lhs, rhs)
  end
  else lhs

and parse_and st =
  let lhs = parse_cmp st in
  if (peek st).tok = Tandand then begin
    ignore (next st);
    let rhs = parse_and st in
    Ast.And (lhs, rhs)
  end
  else lhs

and parse_cmp st =
  let lhs = parse_cons st in
  let op =
    match (peek st).tok with
    | Teqeq -> Some Ast.Eq
    | Tne -> Some Ast.Ne
    | Tlt -> Some Ast.Lt
    | Tle -> Some Ast.Le
    | Tgt -> Some Ast.Gt
    | Tge -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    ignore (next st);
    let rhs = parse_cons st in
    Ast.Prim (op, [ lhs; rhs ])

and parse_cons st =
  (* Collect the ::-separated operands iteratively (a deep cons chain must
     not recurse), then fold them into the right-nested AST. *)
  let rec collect acc =
    let e = parse_add st in
    if (peek st).tok = Tconscons then begin
      ignore (next st);
      collect (e :: acc)
    end
    else (e, acc)
  in
  let last, rev_init = collect [] in
  List.fold_left (fun acc e -> Ast.Prim (Ast.Cons, [ e; acc ])) last rev_init

and parse_add st =
  let rec loop lhs =
    match (peek st).tok with
    | Tplus ->
      ignore (next st);
      loop (Ast.Prim (Ast.Add, [ lhs; parse_mul st ]))
    | Tminus ->
      ignore (next st);
      loop (Ast.Prim (Ast.Sub, [ lhs; parse_mul st ]))
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    match (peek st).tok with
    | Tstar ->
      ignore (next st);
      loop (Ast.Prim (Ast.Mul, [ lhs; parse_unary st ]))
    | Tslash ->
      ignore (next st);
      loop (Ast.Prim (Ast.Div, [ lhs; parse_unary st ]))
    | Tpercent ->
      ignore (next st);
      loop (Ast.Prim (Ast.Mod, [ lhs; parse_unary st ]))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  match (peek st).tok with
  | Tnot ->
    ignore (next st);
    Ast.Prim (Ast.Not, [ parse_unary st ])
  | Tminus ->
    ignore (next st);
    Ast.Prim (Ast.Neg, [ parse_unary st ])
  | _ -> parse_atom st

and parse_atom st =
  let t = next st in
  match t.tok with
  | Tint n -> Ast.Int n
  | Ttrue -> Ast.Bool true
  | Tfalse -> Ast.Bool false
  | Tnil -> Ast.Nil
  | Tlparen ->
    let e = parse_expr_st st in
    expect st Trparen;
    e
  | Tlbracket ->
    if (peek st).tok = Trbracket then begin
      ignore (next st);
      Ast.Nil
    end
    else begin
      (* Iterative for the same reason as [parse_cons]: a 100k-element
         literal desugars to a cons chain that deep. *)
      let rec elements acc =
        let e = parse_expr_st st in
        match (peek st).tok with
        | Tsemi | Tcomma ->
          ignore (next st);
          elements (e :: acc)
        | _ -> e :: acc
      in
      let rev_elts = elements [] in
      expect st Trbracket;
      List.fold_left (fun acc e -> Ast.Prim (Ast.Cons, [ e; acc ])) Ast.Nil rev_elts
    end
  | Tident name ->
    if (peek st).tok = Tlparen then begin
      ignore (next st);
      if prim_by_name name = None then
        st.user_calls <- (name, { sline = t.tline; scol = t.tcol }) :: st.user_calls;
      let args =
        if (peek st).tok = Trparen then []
        else begin
          let rec loop () =
            let e = parse_expr_st st in
            if (peek st).tok = Tcomma then begin
              ignore (next st);
              e :: loop ()
            end
            else [ e ]
          in
          loop ()
        end
      in
      expect st Trparen;
      match prim_by_name name with
      | Some prim ->
        if List.length args <> Ast.prim_arity prim then
          fail t.tline t.tcol "primitive %s expects %d arguments, got %d" name
            (Ast.prim_arity prim) (List.length args);
        Ast.Prim (prim, args)
      | None -> Ast.Call (name, args)
    end
    else Ast.Var name
  | other -> fail t.tline t.tcol "unexpected %s" (token_label other)

let parse_def st =
  expect st Tdef;
  let name_tok = next st in
  let name =
    match name_tok.tok with
    | Tident name -> name
    | other ->
      fail name_tok.tline name_tok.tcol "expected an identifier but found %s" (token_label other)
  in
  st.user_calls <- [];
  expect st Tlparen;
  let params =
    if (peek st).tok = Trparen then []
    else begin
      let rec loop () =
        let p = expect_ident st in
        if (peek st).tok = Tcomma then begin
          ignore (next st);
          p :: loop ()
        end
        else [ p ]
      in
      loop ()
    end
  in
  expect st Trparen;
  expect st Tassign;
  let body = parse_expr_st st in
  let spans =
    {
      def_name = name;
      def_span = { sline = name_tok.tline; scol = name_tok.tcol };
      call_spans = List.rev st.user_calls;
    }
  in
  ({ Ast.name; params; body }, spans)

let with_state src k =
  try
    let st = { toks = tokenize src; pos = 0; user_calls = [] } in
    let result = k st in
    let t = peek st in
    if t.tok <> Teof then fail t.tline t.tcol "trailing input: %s" (token_label t.tok);
    Ok result
  with Parse_error e -> Error e

let parse_expr src = with_state src parse_expr_st

let parse_defs_spanned src =
  with_state src (fun st ->
      let rec loop acc =
        if (peek st).tok = Teof then List.rev acc else loop (parse_def st :: acc)
      in
      List.split (loop []))

let parse_defs src = Result.map fst (parse_defs_spanned src)

let parse_program_spanned src =
  match parse_defs_spanned src with
  | Error e -> Error (error_to_string e)
  | Ok (defs, spans) -> (
    match Program.of_defs defs with
    | Ok p -> Ok (p, spans)
    | Error e -> Error (Program.error_to_string e))

let parse_program src = Result.map fst (parse_program_spanned src)

let parse_program_exn src =
  match parse_program src with
  | Ok p -> p
  | Error msg -> invalid_arg ("Parser.parse_program_exn: " ^ msg)
