(* Precedence levels mirror the parser: 0 = top (let/if), 1 = ||, 2 = &&,
   3 = comparisons, 4 = ::, 5 = + -, 6 = * / %, 7 = unary, 8 = atoms.
   Each printer emits parentheses whenever its construct binds looser than
   the context requires, so output re-parses identically. *)

let prim_level = function
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 3
  | Ast.Cons -> 4
  | Ast.Add | Ast.Sub -> 5
  | Ast.Mul | Ast.Div | Ast.Mod -> 6
  | Ast.Not | Ast.Neg -> 7
  | Ast.Head | Ast.Tail | Ast.Is_nil | Ast.Min | Ast.Max -> 8

let prim_call_name = function
  | Ast.Head -> "head"
  | Ast.Tail -> "tail"
  | Ast.Is_nil -> "isnil"
  | Ast.Min -> "min"
  | Ast.Max -> "max"
  | p -> Ast.prim_name p

let rec pp_level level ppf expr =
  let self = expr_level expr in
  let body ppf () =
    match expr with
    | Ast.Int n -> if n < 0 then Format.fprintf ppf "(0 - %d)" (-n) else Format.pp_print_int ppf n
    | Ast.Bool b -> Format.pp_print_bool ppf b
    | Ast.Nil -> Format.pp_print_string ppf "nil"
    | Ast.Var x -> Format.pp_print_string ppf x
    | Ast.Let (x, b, k) ->
      Format.fprintf ppf "let %s = %a in %a" x (pp_level 0) b (pp_level 0) k
    | Ast.If (c, t, e) ->
      Format.fprintf ppf "if %a then %a else %a" (pp_level 0) c (pp_level 0) t (pp_level 0) e
    | Ast.Or (a, b) -> Format.fprintf ppf "%a || %a" (pp_level 2) a (pp_level 1) b
    | Ast.And (a, b) -> Format.fprintf ppf "%a && %a" (pp_level 3) a (pp_level 2) b
    | Ast.Prim (p, args) -> pp_prim ppf p args
    | Ast.Call (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") (pp_level 0))
        args
  in
  if self < level then Format.fprintf ppf "(%a)" body () else body ppf ()

and expr_level = function
  | Ast.Int n -> if n < 0 then 8 (* printed parenthesized *) else 8
  | Ast.Bool _ | Ast.Nil | Ast.Var _ | Ast.Call _ -> 8
  | Ast.Let _ | Ast.If _ -> 0
  | Ast.Or _ -> 1
  | Ast.And _ -> 2
  | Ast.Prim (p, _) -> prim_level p

and pp_prim ppf p args =
  match (p, args) with
  | (Ast.Head | Ast.Tail | Ast.Is_nil | Ast.Min | Ast.Max), _ ->
    Format.fprintf ppf "%s(%a)" (prim_call_name p)
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") (pp_level 0))
      args
  | Ast.Not, [ a ] -> Format.fprintf ppf "not %a" (pp_level 7) a
  | Ast.Neg, [ a ] -> Format.fprintf ppf "- %a" (pp_level 7) a
  | Ast.Cons, [ a; b ] ->
    (* Right-associative: parenthesize a left operand that is itself a cons.
       The right spine is flattened iteratively so printing a deep list
       literal stays stack-safe; each element prints exactly as it would
       have as the left operand of a nested cons. *)
    let rec spine acc e =
      match e with
      | Ast.Prim (Ast.Cons, [ h; t ]) -> spine (h :: acc) t
      | last -> (List.rev acc, last)
    in
    let elts, last = spine [ a ] b in
    List.iter (fun e -> Format.fprintf ppf "%a :: " (pp_level 5) e) elts;
    pp_level 4 ppf last
  | (Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), [ a; b ] ->
    Format.fprintf ppf "%a %s %a" (pp_level 4) a (Ast.prim_name p) (pp_level 4) b
  | (Ast.Add | Ast.Sub), [ a; b ] ->
    Format.fprintf ppf "%a %s %a" (pp_level 5) a (Ast.prim_name p) (pp_level 6) b
  | (Ast.Mul | Ast.Div | Ast.Mod), [ a; b ] ->
    Format.fprintf ppf "%a %s %a" (pp_level 6) a (Ast.prim_name p) (pp_level 7) b
  | _ ->
    (* Arity errors cannot come from the parser; render defensively. *)
    Format.fprintf ppf "%s(%a)" (prim_call_name p)
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") (pp_level 0))
      args

let pp_expr ppf e = pp_level 0 ppf e

let pp_def ppf (d : Ast.def) =
  Format.fprintf ppf "def %s(%s) =@.  %a@." d.name (String.concat ", " d.params) pp_expr d.body

let expr_to_string e = Format.asprintf "%a" pp_expr e

let def_to_string d = Format.asprintf "%a" pp_def d

let program_to_string p =
  String.concat "\n" (List.map def_to_string (Program.defs p))
