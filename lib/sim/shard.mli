(** Conservative parallel discrete-event coordinator: one {!Engine} per
    shard, advanced in lockstep lookahead windows.

    The classic obstacle to running one simulation on several domains is
    that a message from shard A can invalidate shard B's past.  This
    coordinator uses the conservative (Chandy–Misra style) answer: if every
    cross-shard interaction takes at least [window] ticks of simulated
    latency, then the interval [tmin, tmin + window - 1] (where [tmin] is
    the earliest pending event anywhere) can be executed by all shards
    independently — nothing sent during the window can land inside it.
    Each window runs the per-shard engines (in parallel when a pool is
    supplied), then merges the cross-shard outboxes at the barrier.

    Determinism is by construction, not by luck: during a window a shard
    handler may touch only that shard's state, and the merge delivers
    outbox entries in [(time, source shard, send sequence)] order, so the
    destination engines' FIFO tie-break sequence numbers — and therefore
    every subsequent dispatch order — are identical whether the windows ran
    on one domain or eight.  A run under [?pool] is byte-identical to a
    sequential run. *)

type 'a t

val create : shards:int -> window:int -> unit -> 'a t
(** [create ~shards ~window ()] builds [shards] empty engines with a
    cross-shard lookahead of [window] ticks.
    @raise Invalid_argument if [shards < 1] or [window < 1]. *)

val shards : 'a t -> int

val window : 'a t -> int

val engine : 'a t -> int -> 'a Engine.t
(** Direct access to one shard's engine — for seeding initial events
    before {!run} and for shard-local scheduling from inside a handler.
    During {!run}, a handler running as shard [i] must only touch
    [engine t i]. *)

val send : 'a t -> src:int -> dst:int -> time:Engine.time -> 'a -> unit
(** Queue a cross-shard event from shard [src] (the shard the calling
    handler is executing) for delivery into shard [dst] at absolute
    [time].  Entries accumulate in [src]'s outbox — written only by the
    domain running [src], so no lock — and are merged deterministically at
    the next window barrier.
    @raise Invalid_argument if [dst] is out of range or [time] does not
    lie strictly beyond the current window (a lookahead violation: the
    destination shard may already have simulated past [time]). *)

val run : ?pool:Recflow_parallel.Pool.t -> ?until:Engine.time -> 'a t ->
  (int -> Engine.time -> 'a -> unit) -> unit
(** [run t handler] executes windows until every engine is quiescent (or
    the next event would pass [until]).  [handler shard at ev] is invoked
    for each event; with [?pool] the shards of one window execute as one
    pool batch, without it they run sequentially in shard order — the two
    produce identical event orders per shard. *)

val total_dispatched : 'a t -> int
(** Sum of {!Engine.events_dispatched} across shards. *)

val max_now : 'a t -> Engine.time
(** Latest virtual clock across shards (the run's simulated makespan). *)
