(** Bounded in-memory trace of simulation events.

    Nodes and recovery drivers append human-readable records; tests and the
    experiment harness scan them to assert that a particular protocol step
    actually happened (e.g. "C re-issued checkpoint B2 after B failed").
    The buffer is a {!Recflow_obs_core.Sink.Ring}: only the most recent
    [capacity] records are kept, together with a monotone count of
    everything ever logged.  Extra {!Recflow_obs_core.Sink.t}s can be
    attached so million-event runs stream every record to disk (JSONL)
    instead of silently evicting. *)

type level = Debug | Info | Warn | Error

type record = { time : int; level : level; tag : string; message : string }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity is 65536 records. *)

val attach_sink : t -> record Recflow_obs_core.Sink.t -> unit
(** Every subsequent record is also pushed into the sink (in addition to
    the ring).  Repeated calls tee; the caller keeps ownership and must
    {!Recflow_obs_core.Sink.close} file-backed sinks after the run. *)

val log : t -> time:int -> level:level -> tag:string -> string -> unit

val logf :
  t -> time:int -> level:level -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val records : t -> record list
(** Records currently retained, oldest first. *)

val find : t -> tag:string -> record list
(** Retained records whose tag equals [tag], oldest first. *)

val count : t -> int
(** Total records ever logged (including evicted ones). *)

val clear : t -> unit

val to_json : record -> Recflow_obs_core.Json.t

val to_json_line : record -> string
(** One-line JSON rendering ([{"ts":..,"level":..,"tag":..,"msg":..}]),
    ready for a JSONL {!Recflow_obs_core.Sink.file}. *)

val pp_record : Format.formatter -> record -> unit

val dump : ?limit:int -> Format.formatter -> t -> unit
(** Print the last [limit] (default: all retained) records. *)
