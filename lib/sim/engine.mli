(** Discrete-event simulation engine.

    The engine owns a virtual clock and a priority queue of pending events.
    Events scheduled for the same instant fire in FIFO order of scheduling
    (a monotone sequence number breaks ties), which makes runs fully
    deterministic.

    Time is a plain [int] count of abstract ticks; the machine layer decides
    what a tick means (we use one tick = one microsecond of simulated time
    throughout, but nothing in this module depends on that). *)

type time = int

type 'a t
(** An engine whose events carry payloads of type ['a]. *)

val create : unit -> 'a t

val now : 'a t -> time
(** Current virtual time (the timestamp of the event being dispatched, or of
    the last dispatched event when idle). *)

val pending : 'a t -> int
(** Number of events still queued. *)

val next_time : 'a t -> time option
(** Timestamp of the earliest queued event without popping it — the
    window-scheduling peek the sharded coordinator ({!Shard}) uses to pick
    the next tick boundary. *)

val schedule : 'a t -> delay:int -> 'a -> unit
(** [schedule t ~delay ev] enqueues [ev] at [now t + delay].
    @raise Invalid_argument if [delay < 0]. *)

val schedule_at : 'a t -> time:time -> 'a -> unit
(** Absolute-time variant; the time must not lie in the past. *)

val next : 'a t -> (time * 'a) option
(** Pop the earliest event, advancing the clock to its timestamp. *)

val run : 'a t -> ?until:time -> (time -> 'a -> unit) -> unit
(** [run t handler] repeatedly pops events and feeds them to [handler]
    (which typically schedules further events) until the queue is empty or
    the clock would pass [until].  Events with timestamp exactly [until]
    still fire. *)

val stop : 'a t -> unit
(** Request that [run] return after the current event; subsequent [run]
    calls resume normally. *)

val events_dispatched : 'a t -> int
(** Total number of events dispatched since creation (a cheap progress /
    cost metric). *)
