type time = int

type 'a entry = { at : time; seq : int; payload : 'a }

type 'a t = {
  queue : 'a entry Heap.t;
  mutable clock : time;
  mutable next_seq : int;
  mutable stopping : bool;
  mutable dispatched : int;
}

let compare_entry a b =
  let c = compare a.at b.at in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  {
    queue = Heap.create ~cmp:compare_entry;
    clock = 0;
    next_seq = 0;
    stopping = false;
    dispatched = 0;
  }

let now t = t.clock

let pending t = Heap.length t.queue

let schedule_at t ~time payload =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is in the past (now %d)" time t.clock);
  Heap.push t.queue { at = time; seq = t.next_seq; payload };
  t.next_seq <- t.next_seq + 1

let schedule t ~delay payload =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock + delay) payload

let next t =
  match Heap.pop t.queue with
  | None -> None
  | Some e ->
    t.clock <- e.at;
    t.dispatched <- t.dispatched + 1;
    Some (e.at, e.payload)

let stop t = t.stopping <- true

let run t ?until handler =
  t.stopping <- false;
  let horizon_ok () =
    match until with
    | None -> true
    | Some limit -> ( match Heap.peek t.queue with Some e -> e.at <= limit | None -> true)
  in
  let rec loop () =
    if (not t.stopping) && horizon_ok () then
      match next t with
      | None -> ()
      | Some (at, ev) ->
        handler at ev;
        loop ()
  in
  loop ()

let events_dispatched t = t.dispatched
