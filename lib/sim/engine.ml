(* The event queue used to be a generic [Heap.t] of boxed
   [{ at; seq; payload }] records compared through a closure: three words of
   allocation per event plus two indirections per comparison, on the hottest
   loop in the simulator.  The queue is now an inline binary heap over a
   plain [int array] of *packed priorities* — [(at lsl seq_bits) lor seq] —
   with payloads in a parallel array: scheduling allocates nothing beyond
   the payload itself, and a sift step is one unboxed [int] compare.

   Packing preserves the dispatch order exactly: keys compare first by
   timestamp and then by scheduling sequence (FIFO among same-instant
   events), because [seq] occupies the low [seq_bits] bits and is strictly
   monotone.  The packable ranges — times up to 2^34 ticks (hours of
   simulated microseconds) and 2^28 events per engine (the X8 scale sweep
   pushes past 2^26 even with batched delivery) — are orders of magnitude
   above anything else the experiments reach and are enforced with
   [invalid_arg] rather than silent wraparound.

   The payload store is an [Obj.t array] for the same reason as {!Heap}:
   vacated slots are overwritten with an immediate junk value so a popped
   event is not retained by the queue, and the array is created from an
   immediate so it is never flat-float. *)

type time = int

module Profile = Recflow_obs_core.Profile

let seq_bits = 28

let seq_limit = 1 lsl seq_bits

let max_time = max_int lsr seq_bits

let dummy = Obj.repr 0

(* Clusters schedule hundreds of events within the first few ticks;
   starting at a real capacity avoids the doubling ladder on every run. *)
let initial_capacity = 256

type 'a t = {
  mutable keys : int array;  (* packed [(at lsl seq_bits) lor seq] *)
  mutable payloads : Obj.t array;  (* parallel to [keys] *)
  mutable size : int;
  mutable clock : time;
  mutable next_seq : int;
  mutable stopping : bool;
  mutable dispatched : int;
}

let create () =
  {
    keys = Array.make initial_capacity 0;
    payloads = Array.make initial_capacity dummy;
    size = 0;
    clock = 0;
    next_seq = 0;
    stopping = false;
    dispatched = 0;
  }

let now t = t.clock

let pending t = t.size

let next_time t = if t.size = 0 then None else Some (Array.unsafe_get t.keys 0 lsr seq_bits)

let grow t =
  let cap = Array.length t.keys in
  if t.size = cap then begin
    let ncap = cap * 2 in
    let nkeys = Array.make ncap 0 and npayloads = Array.make ncap dummy in
    Array.blit t.keys 0 nkeys 0 t.size;
    Array.blit t.payloads 0 npayloads 0 t.size;
    t.keys <- nkeys;
    t.payloads <- npayloads
  end

(* Halve the store once it is three-quarters junk (never below the initial
   capacity), so a drained queue does not pin its high-water mark. *)
let shrink t =
  let cap = Array.length t.keys in
  if cap > initial_capacity && t.size <= cap / 4 then begin
    let ncap = cap / 2 in
    let nkeys = Array.make ncap 0 and npayloads = Array.make ncap dummy in
    Array.blit t.keys 0 nkeys 0 t.size;
    Array.blit t.payloads 0 npayloads 0 t.size;
    t.keys <- nkeys;
    t.payloads <- npayloads
  end

let swap t i j =
  let ki = Array.unsafe_get t.keys i in
  Array.unsafe_set t.keys i (Array.unsafe_get t.keys j);
  Array.unsafe_set t.keys j ki;
  let pi = Array.unsafe_get t.payloads i in
  Array.unsafe_set t.payloads i (Array.unsafe_get t.payloads j);
  Array.unsafe_set t.payloads j pi

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if Array.unsafe_get t.keys i < Array.unsafe_get t.keys parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && Array.unsafe_get t.keys l < Array.unsafe_get t.keys !smallest then
    smallest := l;
  if r < t.size && Array.unsafe_get t.keys r < Array.unsafe_get t.keys !smallest then
    smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let do_schedule_at : 'a. 'a t -> time:time -> 'a -> unit =
 fun t ~time payload ->
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is in the past (now %d)" time t.clock);
  if time > max_time then
    invalid_arg (Printf.sprintf "Engine.schedule_at: time %d exceeds packable range" time);
  if t.next_seq >= seq_limit then invalid_arg "Engine.schedule_at: event sequence exhausted";
  grow t;
  let i = t.size in
  Array.unsafe_set t.keys i ((time lsl seq_bits) lor t.next_seq);
  Array.unsafe_set t.payloads i (Obj.repr payload);
  t.size <- t.size + 1;
  t.next_seq <- t.next_seq + 1;
  sift_up t i

(* Scheduling is a ~100ns heap push: wrapping each call in a wall-clock
   span would more than double its cost, so schedule time is deliberately
   left inside the enclosing [engine.dispatch] chunk's self time (every
   schedule call of a running cluster happens inside a dispatched
   handler) rather than given a per-call span of its own. *)
let schedule_at = do_schedule_at

let schedule t ~delay payload =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock + delay) payload

let next : 'a. 'a t -> (time * 'a) option =
 fun t ->
  if t.size = 0 then None
  else begin
    let key = Array.unsafe_get t.keys 0 in
    let payload = Obj.obj (Array.unsafe_get t.payloads 0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.keys.(0) <- t.keys.(t.size);
      t.payloads.(0) <- t.payloads.(t.size);
      t.payloads.(t.size) <- dummy;
      sift_down t 0
    end
    else t.payloads.(0) <- dummy;
    shrink t;
    t.clock <- key lsr seq_bits;
    t.dispatched <- t.dispatched + 1;
    Some (t.clock, payload)
  end

let stop t = t.stopping <- true

(* A dispatched event costs ~150ns, so timing each one individually
   (two clock reads + a tally lookup per event) would double the hot
   loop.  The profiled drain instead times *chunks* of up to
   [profile_chunk] events: the clock is read twice per chunk, nested
   spans opened by handlers (checkpoint record, recovery splice) still
   subtract correctly from the open chunk frame's self time, and the
   amortized overhead is well under a nanosecond per event.  The
   [engine.dispatch] entry's [count] therefore counts chunks — event
   counts come from {!events_dispatched}. *)
let profile_chunk = 256

let dispatch_probe = Profile.probe "engine.dispatch"

(* The [until]-absent case is the common one (clusters stop themselves via
   [stop]); it runs a straight drain loop with no per-event horizon peek.
   Profiling is decided once per run: the disabled drain loops are
   byte-for-byte the old ones, no closure and no flag test per event. *)
let run t ?until handler =
  t.stopping <- false;
  if Profile.is_enabled () then begin
    (* Specialized per [until] exactly like the unprofiled loops below,
       with the chunk countdown as a recursive int parameter (a register,
       not a [ref]): the per-event work inside a chunk is the unprofiled
       drain's tests plus a single integer compare. *)
    match until with
    | None ->
      let rec chunk budget =
        if budget > 0 && not t.stopping then
          match next t with
          | None -> ()
          | Some (at, ev) ->
            handler at ev;
            chunk (budget - 1)
      in
      let rec drain () =
        if (not t.stopping) && t.size > 0 then begin
          Profile.time_probe dispatch_probe (fun () -> chunk profile_chunk);
          drain ()
        end
      in
      drain ()
    | Some limit ->
      let rec chunk budget =
        if
          budget > 0
          && (not t.stopping)
          && (t.size = 0 || Array.unsafe_get t.keys 0 lsr seq_bits <= limit)
        then
          match next t with
          | None -> ()
          | Some (at, ev) ->
            handler at ev;
            chunk (budget - 1)
      in
      let rec drain () =
        if
          (not t.stopping)
          && t.size > 0
          && Array.unsafe_get t.keys 0 lsr seq_bits <= limit
        then begin
          Profile.time_probe dispatch_probe (fun () -> chunk profile_chunk);
          drain ()
        end
      in
      drain ()
  end
  else
    match until with
    | None ->
      let rec drain () =
        if not t.stopping then
          match next t with
          | None -> ()
          | Some (at, ev) ->
            handler at ev;
            drain ()
      in
      drain ()
    | Some limit ->
      let rec loop () =
        if (not t.stopping) && (t.size = 0 || Array.unsafe_get t.keys 0 lsr seq_bits <= limit)
        then
          match next t with
          | None -> ()
          | Some (at, ev) ->
            handler at ev;
            loop ()
      in
      loop ()

let events_dispatched t = t.dispatched
