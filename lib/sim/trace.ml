module Sink = Recflow_obs_core.Sink
module Json = Recflow_obs_core.Json

type level = Debug | Info | Warn | Error

type record = { time : int; level : level; tag : string; message : string }

type t = {
  ring : record Sink.Ring.ring;
  mutable extra : record Sink.t option;  (* attached consumers, teed *)
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { ring = Sink.Ring.create ~capacity; extra = None }

let attach_sink t s =
  t.extra <- (match t.extra with None -> Some s | Some prev -> Some (Sink.tee prev s))

let log t ~time ~level ~tag message =
  let r = { time; level; tag; message } in
  Sink.Ring.push t.ring r;
  match t.extra with None -> () | Some s -> Sink.emit s r

let logf t ~time ~level ~tag fmt =
  Format.kasprintf (fun message -> log t ~time ~level ~tag message) fmt

let records t = Sink.Ring.to_list t.ring

let find t ~tag = List.filter (fun r -> String.equal r.tag tag) (records t)

let count t = Sink.Ring.total t.ring

let clear t = Sink.Ring.clear t.ring

let level_label = function
  | Debug -> "DEBUG"
  | Info -> "INFO"
  | Warn -> "WARN"
  | Error -> "ERROR"

let to_json r =
  Json.Obj
    [
      ("ts", Json.Int r.time);
      ("level", Json.Str (level_label r.level));
      ("tag", Json.Str r.tag);
      ("msg", Json.Str r.message);
    ]

let to_json_line r = Json.to_string (to_json r)

let pp_record ppf r =
  Format.fprintf ppf "[%8d] %-5s %-12s %s" r.time (level_label r.level) r.tag r.message

let dump ?limit ppf t =
  let rs = records t in
  let rs =
    match limit with
    | None -> rs
    | Some n ->
      let len = List.length rs in
      if len <= n then rs else List.filteri (fun i _ -> i >= len - n) rs
  in
  List.iter (fun r -> Format.fprintf ppf "%a@." pp_record r) rs
