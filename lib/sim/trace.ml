type level = Debug | Info | Warn | Error

type record = { time : int; level : level; tag : string; message : string }

type t = {
  capacity : int;
  mutable buf : record array;
  mutable start : int;  (* index of oldest record *)
  mutable len : int;
  mutable total : int;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; buf = [||]; start = 0; len = 0; total = 0 }

let log t ~time ~level ~tag message =
  let r = { time; level; tag; message } in
  if Array.length t.buf = 0 then t.buf <- Array.make t.capacity r;
  if t.len < t.capacity then begin
    t.buf.((t.start + t.len) mod t.capacity) <- r;
    t.len <- t.len + 1
  end
  else begin
    t.buf.(t.start) <- r;
    t.start <- (t.start + 1) mod t.capacity
  end;
  t.total <- t.total + 1

let logf t ~time ~level ~tag fmt =
  Format.kasprintf (fun message -> log t ~time ~level ~tag message) fmt

let records t =
  let rec collect i acc =
    if i < 0 then acc else collect (i - 1) (t.buf.((t.start + i) mod t.capacity) :: acc)
  in
  collect (t.len - 1) []

let find t ~tag = List.filter (fun r -> String.equal r.tag tag) (records t)

let count t = t.total

let clear t =
  t.start <- 0;
  t.len <- 0

let level_label = function
  | Debug -> "DEBUG"
  | Info -> "INFO"
  | Warn -> "WARN"
  | Error -> "ERROR"

let pp_record ppf r =
  Format.fprintf ppf "[%8d] %-5s %-12s %s" r.time (level_label r.level) r.tag r.message

let dump ?limit ppf t =
  let rs = records t in
  let rs =
    match limit with
    | None -> rs
    | Some n ->
      let len = List.length rs in
      if len <= n then rs else List.filteri (fun i _ -> i >= len - n) rs
  in
  List.iter (fun r -> Format.fprintf ppf "%a@." pp_record r) rs
