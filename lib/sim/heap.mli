(** Array-backed binary min-heap.

    The comparison function is fixed at creation.  Used as the spine of the
    event queue and by the load balancer's pressure tables. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Fresh empty heap ordered by [cmp] (smallest element on top). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element.  The vacated slot is cleared
    (and the store shrunk as the heap drains), so a popped element is not
    retained by the heap once the caller drops it. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Snapshot of the contents in unspecified order. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
