(* The backing store is an [Obj.t array] rather than an ['a array] so freed
   slots can be overwritten with a junk value ([dummy]): with a plain
   polymorphic array there is no value of type ['a] to clear with, and
   leaving the old pointer in place retains every popped element (task
   packets, messages) until the slot happens to be reused — for the event
   queue that means for the life of the simulation.  The array is created
   from [dummy] (an immediate), never from a float element, so it is never
   subject to the flat float-array representation and the [Obj.repr]/
   [Obj.obj] round-trip is representation-safe. *)

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : Obj.t array;
  mutable size : int;
}

let dummy = Obj.repr 0

let create ~cmp = { cmp; data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let get : 'a. 'a t -> int -> 'a = fun t i -> Obj.obj (Array.unsafe_get t.data i)

let set : 'a. 'a t -> int -> 'a -> unit = fun t i x -> Array.unsafe_set t.data i (Obj.repr x)

let grow t =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap dummy in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

(* Halve the store once it is three-quarters junk, so a drained heap does
   not pin its high-water mark worth of slots. *)
let shrink t =
  let cap = Array.length t.data in
  if cap > 16 && t.size <= cap / 4 then begin
    let ndata = Array.make (cap / 2) dummy in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp (get t i) (get t parent) < 0 then begin
      let tmp = Array.unsafe_get t.data i in
      Array.unsafe_set t.data i (Array.unsafe_get t.data parent);
      Array.unsafe_set t.data parent tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp (get t l) (get t !smallest) < 0 then smallest := l;
  if r < t.size && t.cmp (get t r) (get t !smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = Array.unsafe_get t.data i in
    Array.unsafe_set t.data i (Array.unsafe_get t.data !smallest);
    Array.unsafe_set t.data !smallest tmp;
    sift_down t !smallest
  end

let push t x =
  grow t;
  set t t.size x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some (get t 0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = get t 0 in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      t.data.(t.size) <- dummy;
      sift_down t 0
    end
    else t.data.(0) <- dummy;
    shrink t;
    Some top
  end

let pop_exn t =
  match pop t with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear t =
  t.data <- [||];
  t.size <- 0

let to_list t =
  let rec collect i acc = if i < 0 then acc else collect (i - 1) (get t i :: acc) in
  collect (t.size - 1) []

let of_list ~cmp xs =
  let t = create ~cmp in
  List.iter (push t) xs;
  t
