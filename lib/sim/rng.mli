(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic choice in the simulator draws from an explicit [Rng.t]
    so that a run is fully determined by its seed.  The generator is the
    splitmix64 of Steele, Lea and Flood, which has a 64-bit state, passes
    BigCrush, and supports cheap splitting into independent streams. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator.  Two generators created with the
    same seed produce identical streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy and the original then
    evolve independently. *)

val split : t -> t
(** [split t] derives a statistically independent generator from [t],
    advancing [t].  Used to give each processor its own stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is exactly uniform in [\[0, bound)] (rejection sampling,
    no modulo bias).  Raises [Invalid_argument] if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> float -> float
(** [exponential t mean] draws from an exponential distribution with the
    given mean; used for inter-arrival and latency jitter models. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
