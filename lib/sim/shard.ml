(* Windowed multi-engine coordinator; see shard.mli for the model.

   Concurrency discipline: during one window, shard [i]'s engine, outbox
   list and send counter are touched only by the domain executing shard
   [i]'s thunk; the coordinator touches them only between windows.  The
   pool's batch barrier provides the happens-before edge in both
   directions, so every field here can stay plain (non-atomic).  [bound]
   is written by the coordinator before submission and only read inside
   the window. *)

module Pool = Recflow_parallel.Pool

type 'a entry = { at : Engine.time; src : int; seq : int; dst : int; payload : 'a }

type 'a t = {
  engines : 'a Engine.t array;
  outboxes : 'a entry list array;  (* per source shard, newest first *)
  seqs : int array;  (* per source shard, monotone send counter *)
  win : int;
  mutable bound : Engine.time;  (* inclusive end of the window in flight *)
}

let create ~shards ~window () =
  if shards < 1 then invalid_arg "Shard.create: shards must be >= 1";
  if window < 1 then invalid_arg "Shard.create: window must be >= 1";
  {
    engines = Array.init shards (fun _ -> Engine.create ());
    outboxes = Array.make shards [];
    seqs = Array.make shards 0;
    win = window;
    bound = -1;
  }

let shards t = Array.length t.engines

let window t = t.win

let engine t i = t.engines.(i)

let send t ~src ~dst ~time payload =
  if dst < 0 || dst >= Array.length t.engines then invalid_arg "Shard.send: dst out of range";
  if time <= t.bound then
    invalid_arg
      (Printf.sprintf "Shard.send: time %d within window bound %d (lookahead violation)" time
         t.bound);
  let seq = t.seqs.(src) in
  t.seqs.(src) <- seq + 1;
  t.outboxes.(src) <- { at = time; src; seq; dst; payload } :: t.outboxes.(src)

(* Deliver every queued outbox entry into its destination engine, in
   (time, source shard, send sequence) order.  Because delivery happens
   sequentially on the coordinator after the barrier, the destination
   engines assign their FIFO tie-break sequence numbers in this exact
   order — the step that makes the whole run independent of how the
   window's shards were interleaved across domains. *)
let flush t =
  let entries =
    Array.fold_left (fun acc box -> List.rev_append box acc) [] t.outboxes
    |> List.sort (fun a b ->
           if a.at <> b.at then compare a.at b.at
           else if a.src <> b.src then compare a.src b.src
           else compare a.seq b.seq)
  in
  Array.fill t.outboxes 0 (Array.length t.outboxes) [];
  List.iter (fun e -> Engine.schedule_at t.engines.(e.dst) ~time:e.at e.payload) entries

let earliest t =
  Array.fold_left
    (fun acc e ->
      match Engine.next_time e with
      | None -> acc
      | Some at -> ( match acc with None -> Some at | Some a -> Some (min a at)))
    None t.engines

let run ?pool ?until t handler =
  let n = Array.length t.engines in
  let rec windows () =
    flush t;
    match earliest t with
    | None -> ()
    | Some tmin when (match until with Some u -> tmin > u | None -> false) -> ()
    | Some tmin ->
      let bound = tmin + t.win - 1 in
      let bound = match until with Some u -> min bound u | None -> bound in
      t.bound <- bound;
      let step i () = Engine.run t.engines.(i) ~until:bound (handler i) in
      (match pool with
      | Some p when n > 1 && Pool.jobs p > 1 -> ignore (Pool.run p (List.init n step))
      | _ ->
        for i = 0 to n - 1 do
          step i ()
        done);
      t.bound <- -1;
      windows ()
  in
  windows ()

let total_dispatched t =
  Array.fold_left (fun acc e -> acc + Engine.events_dispatched e) 0 t.engines

let max_now t = Array.fold_left (fun acc e -> max acc (Engine.now e)) 0 t.engines
