type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.mul (Int64.of_int (seed + 1)) golden_gamma }

let copy t = { state = t.state }

(* Finalization mix of splitmix64: two xor-shift-multiply rounds. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  { state = seed }

(* 2^62: draws keep 62 bits because a 63-bit value does not fit OCaml's
   tagged int and [Int64.to_int] would wrap it negative. *)
let draw_range = 0x4000_0000_0000_0000L

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling: [r mod bound] alone over-represents the first
     [2^62 mod bound] residues, so draws at or above the largest multiple
     of [bound] below 2^62 are re-drawn.  For realistic bounds the accept
     region is nearly all of the range, so this almost never costs an
     extra draw and the emitted stream matches the biased one except on
     the (astronomically rare) rejected draws. *)
  let b = Int64.of_int bound in
  let limit = Int64.mul (Int64.div draw_range b) b in
  let rec draw () =
    let r = Int64.shift_right_logical (next_int64 t) 2 in
    if r < limit then Int64.to_int (Int64.rem r b) else draw ()
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform mantissa bits, scaled to [0, bound). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
