(** Static cost analysis: recursion-depth bounds, task-count growth and
    work-per-activation estimates (ROADMAP item 5, paper §3.3).

    The pass is a monotone interval/size abstract interpretation over the
    PR-4 callgraph SCCs.  Integer arguments are abstracted to their value,
    list arguments to their length, and every expression is bounded by
    affine forms over the enclosing function's parameters.  For each
    recursive SCC the analyzer searches a small family of candidate
    ranking measures — a single int parameter, a single list size, a
    pairwise difference of int parameters, the sum of int parameters, the
    sum of list sizes — and classifies each cycle edge as decreasing,
    provably non-decreasing, or unknown:

    - a measure that decreases on {e every} internal edge, together with a
      floor recovered from the dominating guards (e.g. [n >= 2] for fib,
      [d != 0] with exact unit steps for tree_sum), yields a sound depth
      bound;
    - an SCC where every comparable candidate is {e provably}
      non-decreasing on some edge — or where every path through every
      member unconditionally re-enters the cycle — is divergent and
      reported as RF301/302/303;
    - anything in between stays quiet (unknown), so imprecision never
      produces a warning.

    Downstream, {!entry_bounds} instantiates the symbolic bounds at a
    concrete entry call: observed journal stamp depths and per-subtree
    activation counts must stay within them (the cost gauntlet), and the
    bounds seed [Balance.Policy.suggest_ckpt_admission] for
    [--policy auto]. *)

open Recflow_lang

(** Task-count growth of the whole call subtree of one activation, as a
    function of its (abstract) argument sizes. *)
type growth =
  | Constant  (** no recursion anywhere below *)
  | Polynomial of int  (** chain recursion; degree composes across SCCs *)
  | Exponential  (** >= 2 cycle re-entries per activation *)
  | Unknown_growth  (** recursion present but not classified — no warning *)
  | Unbounded  (** provably divergent cycle (RF3xx fired) *)

val growth_string : growth -> string
(** ["constant"], ["linear"], ["polynomial:2"], ["exponential"],
    ["unknown"], ["unbounded"]. *)

(** How far a decreasing measure can fall while the cycle keeps
    recursing.  [at_least] is the smallest measure value at which an
    internal call can still fire; [requires_start_ge] (from [!=] base
    guards) conditions the bound on the measure starting at or above the
    given value — checked concretely by {!entry_bounds}. *)
type floor = { at_least : int; requires_start_ge : int option }

(** Per-SCC termination verdict. *)
type verdict =
  | Not_recursive
  | Bounded of { measure : string; floor : floor option }
      (** some candidate measure decreases on every internal edge;
          [floor = None] means no guard bounds it below (depth still
          statically unbounded, but quiet) *)
  | Quiet  (** recursive, no bound, no proof of divergence *)
  | Divergent of { reason : string }  (** fires RF301/302/303 *)

type fn_cost = {
  fn : string;
  verdict : verdict;  (** shared by every member of the function's SCC *)
  rec_fanout : int;
      (** max SCC-internal calls one activation can issue (0 when not
          recursive) *)
  growth : growth;
  work_per_activation : int;  (** [Ast.size] of the body: reduction proxy *)
}

type t

val of_program : ?entries:string list -> ?schemes:(string * Infer.fn_scheme) list
  -> Program.t -> t
(** Analyze a validated program.  [entries] scope the RF3xx lints (dead
    SCCs never warn — they already get RF201); defaults to
    [Callgraph.roots].  [schemes] (from {!Infer.infer_program}) classify
    parameters as int-valued or list-valued; inferred internally when
    omitted. *)

val fn_costs : t -> fn_cost list
(** Sorted by function name. *)

val find : t -> string -> fn_cost option

val lint : t -> Diagnostic.t list
(** RF301/302/303 for entry-reachable divergent SCCs, one diagnostic per
    SCC (attached to its first member), sorted.  Precedence within an
    SCC: RF302 (cycle re-enters >= 2×) over RF303 (cycle spawns non-SCC
    work) over RF301. *)

val fn_cost_to_string : fn_cost -> string
(** ["fib: depth <= n (floor 2), rec fan-out 2, growth exponential,
     work/activation 21"]. *)

(** Concrete bounds for one entry call, instantiated from the symbolic
    analysis by propagating the entry argument sizes through the
    condensation DAG (with widening inside SCCs). *)
type entry_bounds = {
  depth : int option;
      (** sound bound on the stamp depth (edges below the entry
          activation); [None] when any reachable SCC is unbounded *)
  fanout : int;  (** program fan-out bound over the reachable functions *)
}

val entry_bounds : t -> entry:string -> args:Value.t list -> entry_bounds

val subtree_bound : entry_bounds -> depth:int -> int option
(** Sound bound on the number of activations (tasks) in the subtree
    rooted at a task of stamp depth [depth]: with [R = depth_bound -
    depth] remaining levels and fan-out [b], at most [1 + b + ... + b^R]
    tasks, saturating at [max_int].  [None] when the depth is
    unbounded. *)

val activation_bound : entry_bounds -> int option
(** [subtree_bound ~depth:0] — total task-count bound for the entry. *)
