type t = { line : int; column : int }

let make ~line ~column = { line; column }

let of_span (s : Recflow_lang.Parser.span) =
  { line = s.Recflow_lang.Parser.sline; column = s.Recflow_lang.Parser.scol }

let compare a b =
  match Int.compare a.line b.line with 0 -> Int.compare a.column b.column | c -> c

let to_string l = Printf.sprintf "%d:%d" l.line l.column

let pp ppf l = Format.pp_print_string ppf (to_string l)
