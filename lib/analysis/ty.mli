(** Monomorphic types for the source language and their unifier.

    The type language is [int], [bool] and homogeneous lists; unification
    variables stand for as-yet-unknown types.  Each function gets exactly
    one (monomorphic) type shared by every call site — deliberately
    simple, and enough to catch every runtime type error the evaluators
    can raise. *)

type t = Int | Bool | List of t | Var of var

and var = { id : int; mutable inst : t option }

type gen
(** Fresh-variable supply.  Scoped per inference run (not global) so
    concurrent analyses never share mutable state. *)

val new_gen : unit -> gen

val fresh : gen -> t

val repr : t -> t
(** Follow instantiations to the representative, with path compression. *)

type error = Mismatch of t * t | Occurs of t * t

val unify : t -> t -> (unit, error) result

type namer
(** Shared pretty-naming scope: the same variable renders as the same
    ['a] across several types. *)

val new_namer : unit -> namer

val render : namer -> t -> string

val to_string : t -> string

val to_string_many : t list -> string list
(** Render several types in one naming scope (for "expected X, got Y"). *)
