type t = Int | Bool | List of t | Var of var

and var = { id : int; mutable inst : t option }

type gen = { mutable next : int }

let new_gen () = { next = 0 }

let fresh gen =
  let v = { id = gen.next; inst = None } in
  gen.next <- gen.next + 1;
  Var v

(* Union-find representative with path compression along the chain. *)
let rec repr t =
  match t with
  | Var ({ inst = Some u; _ } as v) ->
    let r = repr u in
    v.inst <- Some r;
    r
  | Int | Bool | List _ | Var { inst = None; _ } -> t

let rec occurs v t =
  match repr t with
  | Var w -> w == v
  | List u -> occurs v u
  | Int | Bool -> false

type error = Mismatch of t * t | Occurs of t * t

let rec unify a b =
  let a = repr a and b = repr b in
  match (a, b) with
  | Int, Int | Bool, Bool -> Ok ()
  | List x, List y -> unify x y
  | Var v, Var w when v == w -> Ok ()
  | Var v, t | t, Var v ->
    if occurs v t then Error (Occurs (Var v, t))
    else begin
      v.inst <- Some t;
      Ok ()
    end
  | (Int | Bool | List _), _ -> Error (Mismatch (a, b))

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

type namer = { names : (int, string) Hashtbl.t; mutable used : int }

let new_namer () = { names = Hashtbl.create 8; used = 0 }

let var_name nm (v : var) =
  match Hashtbl.find_opt nm.names v.id with
  | Some s -> s
  | None ->
    let i = nm.used in
    nm.used <- i + 1;
    let s =
      if i < 26 then Printf.sprintf "'%c" (Char.chr (Char.code 'a' + i))
      else Printf.sprintf "'a%d" (i - 26)
    in
    Hashtbl.add nm.names v.id s;
    s

let rec render nm t =
  match repr t with
  | Int -> "int"
  | Bool -> "bool"
  | List u -> render nm u ^ " list"
  | Var v -> var_name nm v

let to_string t = render (new_namer ()) t

let to_string_many tys =
  let nm = new_namer () in
  List.map (render nm) tys
