open Recflow_lang

type t = {
  functions : string list;  (** sorted *)
  edges : (string * string list) list;  (** caller -> sorted distinct callees *)
}

let callees g fn = match List.assoc_opt fn g.edges with Some cs -> cs | None -> []

let of_program program =
  let defs = Program.defs program in
  let functions = List.map (fun (d : Ast.def) -> d.name) defs in
  let edges = List.map (fun (d : Ast.def) -> (d.name, Ast.calls d.body)) defs in
  { functions; edges }

let reachable g ~entries =
  let seen = Hashtbl.create 16 in
  let rec go = function
    | [] -> ()
    | fn :: rest ->
      if Hashtbl.mem seen fn then go rest
      else begin
        Hashtbl.add seen fn ();
        go (callees g fn @ rest)
      end
  in
  go (List.filter (fun fn -> List.mem fn g.functions) entries);
  List.filter (Hashtbl.mem seen) g.functions

(* Roots: functions never called by another function (self-calls don't
   count).  In a program whose call graph has no root — e.g. a single
   mutually recursive cycle — every function is a candidate entry. *)
let roots g =
  let called = Hashtbl.create 16 in
  List.iter
    (fun (caller, callees) ->
      List.iter (fun callee -> if callee <> caller then Hashtbl.replace called callee ()) callees)
    g.edges;
  match List.filter (fun fn -> not (Hashtbl.mem called fn)) g.functions with
  | [] -> g.functions
  | rs -> rs

(* Tarjan's strongly connected components, with an explicit stack of work
   items so deep graphs cannot overflow the OCaml stack. *)
type frame = { fn : string; mutable todo : string list }

let sccs g =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let visit root =
    if not (Hashtbl.mem index root) then begin
      let call_stack = ref [] in
      let push fn =
        Hashtbl.add index fn !counter;
        Hashtbl.add lowlink fn !counter;
        incr counter;
        stack := fn :: !stack;
        Hashtbl.add on_stack fn ();
        call_stack := { fn; todo = callees g fn } :: !call_stack
      in
      push root;
      while !call_stack <> [] do
        let frame = List.hd !call_stack in
        match frame.todo with
        | callee :: rest ->
          frame.todo <- rest;
          if not (List.mem callee g.functions) then ()
          else if not (Hashtbl.mem index callee) then push callee
          else if Hashtbl.mem on_stack callee then
            Hashtbl.replace lowlink frame.fn
              (min (Hashtbl.find lowlink frame.fn) (Hashtbl.find index callee))
        | [] ->
          call_stack := List.tl !call_stack;
          (if Hashtbl.find lowlink frame.fn = Hashtbl.find index frame.fn then begin
             (* frame.fn is an SCC root: pop the component off the stack. *)
             let rec pop acc =
               match !stack with
               | [] -> acc
               | fn :: rest ->
                 stack := rest;
                 Hashtbl.remove on_stack fn;
                 if fn = frame.fn then fn :: acc else pop (fn :: acc)
             in
             components := List.sort String.compare (pop []) :: !components
           end);
          (match !call_stack with
          | parent :: _ ->
            Hashtbl.replace lowlink parent.fn
              (min (Hashtbl.find lowlink parent.fn) (Hashtbl.find lowlink frame.fn))
          | [] -> ())
      done
    end
  in
  List.iter visit g.functions;
  List.rev !components

let recursive_functions g =
  let in_cycle = Hashtbl.create 16 in
  List.iter
    (fun component ->
      match component with
      | [ fn ] -> if List.mem fn (callees g fn) then Hashtbl.add in_cycle fn ()
      | _ :: _ :: _ -> List.iter (fun fn -> Hashtbl.add in_cycle fn ()) component
      | [] -> ())
    (sccs g);
  List.filter (Hashtbl.mem in_cycle) g.functions
