open Recflow_lang

(* ------------------------------------------------------------------ *)
(* Affine forms over parameter indices                                 *)
(* ------------------------------------------------------------------ *)

(* The abstract "size" of a value: an int is its own size, a list its
   length, a bool 0.  Every bound the pass manipulates is an affine form
   c + sum(k_i * p_i) over the enclosing function's parameter sizes. *)
module Aff = struct
  type t = { c : int; ks : (int * int) list }  (* sorted index -> nonzero coeff *)

  let const c = { c; ks = [] }

  let param i = { c = 0; ks = [ (i, 1) ] }

  let coeff a i = match List.assoc_opt i a.ks with Some k -> k | None -> 0

  let norm ks = List.filter (fun (_, k) -> k <> 0) (List.sort compare ks)

  let add a b =
    let idxs =
      List.sort_uniq compare (List.map fst a.ks @ List.map fst b.ks)
    in
    { c = a.c + b.c; ks = norm (List.map (fun i -> (i, coeff a i + coeff b i)) idxs) }

  let scale k a =
    if k = 0 then const 0 else { c = k * a.c; ks = norm (List.map (fun (i, v) -> (i, k * v)) a.ks) }

  let neg = scale (-1)

  let sub a b = add a (neg b)

  let add_const d a = { a with c = a.c + d }

  let equal a b = a.c = b.c && a.ks = b.ks

  let is_const a = a.ks = []

  let sum affs = List.fold_left add (const 0) affs
end

(* Bounds on one expression: affine lower and upper forms, [None] for
   unbounded on that side. *)
type bounds = { lo : Aff.t option; hi : Aff.t option }

let top = { lo = None; hi = None }

let exact a = { lo = Some a; hi = Some a }

let of_const c = exact (Aff.const c)

let opt2 f a b = match (a, b) with Some x, Some y -> Some (f x y) | _ -> None

let b_add a b = { lo = opt2 Aff.add a.lo b.lo; hi = opt2 Aff.add a.hi b.hi }

let b_neg a = { lo = Option.map Aff.neg a.hi; hi = Option.map Aff.neg a.lo }

let b_sub a b = b_add a (b_neg b)

let b_scale k a =
  if k >= 0 then { lo = Option.map (Aff.scale k) a.lo; hi = Option.map (Aff.scale k) a.hi }
  else { lo = Option.map (Aff.scale k) a.hi; hi = Option.map (Aff.scale k) a.lo }

let const_of b =
  match (b.lo, b.hi) with
  | Some x, Some y when Aff.equal x y && Aff.is_const x -> Some x.Aff.c
  | _ -> None

(* Syntactic max/min of two affine forms: defined only when the forms
   share coefficients, so the comparison is valid for every argument. *)
let aff_max a b =
  if a.Aff.ks = b.Aff.ks then Some (if a.Aff.c >= b.Aff.c then a else b) else None

let aff_min a b =
  if a.Aff.ks = b.Aff.ks then Some (if a.Aff.c <= b.Aff.c then a else b) else None

let join a b =
  {
    lo = (match (a.lo, b.lo) with Some x, Some y -> aff_min x y | _ -> None);
    hi = (match (a.hi, b.hi) with Some x, Some y -> aff_max x y | _ -> None);
  }

(* ------------------------------------------------------------------ *)
(* Result-size summaries                                               *)
(* ------------------------------------------------------------------ *)

(* Upper/lower affine bound on a function's result size, over its own
   parameter sizes.  Recursive summaries are guessed from a small
   candidate family and verified branch-wise by induction on the
   evaluation derivation (sound for partial correctness: a divergent or
   aborting call returns nothing to bound). *)
type summary = bounds

(* Instantiate an affine form over callee parameters with bounds on the
   actual arguments (expressed over the caller's parameters). *)
let inst_hi (a : Aff.t) (args : bounds list) =
  List.fold_left
    (fun acc (i, k) ->
      match acc with
      | None -> None
      | Some acc -> (
        let arg = try List.nth args i with _ -> top in
        let side = if k >= 0 then arg.hi else arg.lo in
        match side with Some s -> Some (Aff.add acc (Aff.scale k s)) | None -> None))
    (Some (Aff.const a.Aff.c))
    a.Aff.ks

let inst_lo (a : Aff.t) (args : bounds list) =
  List.fold_left
    (fun acc (i, k) ->
      match acc with
      | None -> None
      | Some acc -> (
        let arg = try List.nth args i with _ -> top in
        let side = if k >= 0 then arg.lo else arg.hi in
        match side with Some s -> Some (Aff.add acc (Aff.scale k s)) | None -> None))
    (Some (Aff.const a.Aff.c))
    a.Aff.ks

let instantiate (s : summary) (args : bounds list) =
  {
    hi = (match s.hi with Some a -> inst_hi a args | None -> None);
    lo = (match s.lo with Some a -> inst_lo a args | None -> None);
  }

(* ------------------------------------------------------------------ *)
(* Expression bounds                                                   *)
(* ------------------------------------------------------------------ *)

let rec eval (summaries : (string * summary) list) env (e : Ast.expr) : bounds =
  match e with
  | Ast.Int n -> of_const n
  | Ast.Bool _ -> of_const 0
  | Ast.Nil -> of_const 0
  | Ast.Var v -> ( match List.assoc_opt v env with Some b -> b | None -> top)
  | Ast.If (_, a, b) -> join (eval summaries env a) (eval summaries env b)
  | Ast.And _ | Ast.Or _ -> of_const 0
  | Ast.Let (v, e1, e2) -> eval summaries ((v, eval summaries env e1) :: env) e2
  | Ast.Call (g, es) -> (
    let args = List.map (eval summaries env) es in
    match List.assoc_opt g summaries with Some s -> instantiate s args | None -> top)
  | Ast.Prim (p, es) -> (
    let bs = List.map (eval summaries env) es in
    match (p, bs) with
    | Ast.Add, [ a; b ] -> b_add a b
    | Ast.Sub, [ a; b ] -> b_sub a b
    | Ast.Neg, [ a ] -> b_neg a
    | Ast.Mul, [ a; b ] -> (
      match (const_of a, const_of b) with
      | Some k, _ -> b_scale k b
      | _, Some k -> b_scale k a
      | _ -> top)
    | Ast.Div, [ a; b ] -> (
      match (const_of a, const_of b) with
      | Some n, Some k when k <> 0 -> of_const (n / k)
      | _ -> top)
    | Ast.Mod, [ _; b ] -> (
      match const_of b with
      | Some k when k > 0 -> { lo = Some (Aff.const 0); hi = Some (Aff.const (k - 1)) }
      | _ -> top)
    | Ast.Min, [ a; b ] ->
      {
        lo = (match (a.lo, b.lo) with Some x, Some y -> aff_min x y | _ -> None);
        hi =
          (match (a.hi, b.hi) with
          | Some x, Some y -> ( match aff_min x y with Some m -> Some m | None -> Some x)
          | Some x, None -> Some x
          | None, Some y -> Some y
          | None, None -> None);
      }
    | Ast.Max, [ a; b ] ->
      {
        lo =
          (match (a.lo, b.lo) with
          | Some x, Some y -> ( match aff_max x y with Some m -> Some m | None -> Some x)
          | Some x, None -> Some x
          | None, Some y -> Some y
          | None, None -> None);
        hi = (match (a.hi, b.hi) with Some x, Some y -> aff_max x y | _ -> None);
      }
    | Ast.Cons, [ _; t ] -> b_add (of_const 1) t
    | Ast.Tail, [ l ] -> b_sub l (of_const 1)
    | Ast.Head, _ -> top
    | (Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.Not | Ast.Is_nil), _ ->
      of_const 0
    | _ -> top)

(* ------------------------------------------------------------------ *)
(* Guard facts and entailment                                          *)
(* ------------------------------------------------------------------ *)

(* [ge0]: affine forms known >= 0 on the current path.  [ne0]: affine
   forms known <> 0 (from negated equality guards), used only for the
   exact-unit-step floor rule. *)
type facts = { ge0 : Aff.t list; ne0 : Aff.t list }

let no_facts = { ge0 = []; ne0 = [] }

let facts_union a b = { ge0 = a.ge0 @ b.ge0; ne0 = a.ne0 @ b.ne0 }

(* (facts when the condition is true, facts when it is false) *)
let rec cond_facts summaries env (c : Ast.expr) : facts * facts =
  let ex e =
    let b = eval summaries env e in
    match (b.lo, b.hi) with Some x, Some y when Aff.equal x y -> Some x | _ -> None
  in
  let cmp a b ~t ~f =
    match (ex a, ex b) with
    | Some x, Some y -> ({ no_facts with ge0 = t x y }, { no_facts with ge0 = f x y })
    | _ -> (no_facts, no_facts)
  in
  match c with
  | Ast.Prim (Ast.Lt, [ a; b ]) ->
    cmp a b
      ~t:(fun x y -> [ Aff.add_const (-1) (Aff.sub y x) ])
      ~f:(fun x y -> [ Aff.sub x y ])
  | Ast.Prim (Ast.Le, [ a; b ]) ->
    cmp a b ~t:(fun x y -> [ Aff.sub y x ]) ~f:(fun x y -> [ Aff.add_const (-1) (Aff.sub x y) ])
  | Ast.Prim (Ast.Gt, [ a; b ]) -> cond_facts summaries env (Ast.Prim (Ast.Lt, [ b; a ]))
  | Ast.Prim (Ast.Ge, [ a; b ]) -> cond_facts summaries env (Ast.Prim (Ast.Le, [ b; a ]))
  | Ast.Prim (Ast.Eq, [ a; b ]) -> (
    match (ex a, ex b) with
    | Some x, Some y ->
      ( { no_facts with ge0 = [ Aff.sub x y; Aff.sub y x ] },
        { no_facts with ne0 = [ Aff.sub x y ] } )
    | _ -> (no_facts, no_facts))
  | Ast.Prim (Ast.Ne, [ a; b ]) -> (
    match (ex a, ex b) with
    | Some x, Some y ->
      ( { no_facts with ne0 = [ Aff.sub x y ] },
        { no_facts with ge0 = [ Aff.sub x y; Aff.sub y x ] } )
    | _ -> (no_facts, no_facts))
  | Ast.Prim (Ast.Is_nil, [ l ]) -> (
    match ex l with
    | Some x -> ({ no_facts with ge0 = [ Aff.neg x ] }, { no_facts with ge0 = [ Aff.add_const (-1) x ] })
    | None -> (no_facts, no_facts))
  | Ast.Prim (Ast.Not, [ c ]) ->
    let t, f = cond_facts summaries env c in
    (f, t)
  | Ast.And (a, b) ->
    let ta, _ = cond_facts summaries env a in
    let tb, _ = cond_facts summaries env b in
    (facts_union ta tb, no_facts)
  | Ast.Or (a, b) ->
    let _, fa = cond_facts summaries env a in
    let _, fb = cond_facts summaries env b in
    (no_facts, facts_union fa fb)
  | _ -> (no_facts, no_facts)

(* [nonneg] holds the parameter indices whose size is intrinsically
   nonnegative (list-typed parameters).  A target is entailed when it is
   trivially nonnegative or dominated by the sum of at most two facts —
   a tiny, always-sound fragment of Farkas' lemma that covers every
   guard shape the workloads use. *)
let trivially_nonneg ~nonneg (a : Aff.t) =
  a.Aff.c >= 0 && List.for_all (fun (i, k) -> k >= 0 && List.mem i nonneg) a.Aff.ks

let entails ~nonneg (facts : facts) (target : Aff.t) =
  trivially_nonneg ~nonneg target
  || List.exists (fun f -> trivially_nonneg ~nonneg (Aff.sub target f)) facts.ge0
  || List.exists
       (fun f1 ->
         List.exists
           (fun f2 -> trivially_nonneg ~nonneg (Aff.sub (Aff.sub target f1) f2))
           facts.ge0)
       facts.ge0

(* ------------------------------------------------------------------ *)
(* Call sites with path-sensitive facts                                *)
(* ------------------------------------------------------------------ *)

type site = { callee : string; args : bounds list; sfacts : facts }

let collect_sites summaries (d : Ast.def) : site list =
  let sites = ref [] in
  let rec go env facts (e : Ast.expr) =
    match e with
    | Ast.Int _ | Ast.Bool _ | Ast.Nil | Ast.Var _ -> ()
    | Ast.If (c, a, b) ->
      go env facts c;
      let t, f = cond_facts summaries env c in
      go env (facts_union facts t) a;
      go env (facts_union facts f) b
    | Ast.And (a, b) ->
      go env facts a;
      let t, _ = cond_facts summaries env a in
      go env (facts_union facts t) b
    | Ast.Or (a, b) ->
      go env facts a;
      let _, f = cond_facts summaries env a in
      go env (facts_union facts f) b
    | Ast.Let (v, e1, e2) ->
      go env facts e1;
      go ((v, eval summaries env e1) :: env) facts e2
    | Ast.Prim (_, es) -> List.iter (go env facts) es
    | Ast.Call (g, es) ->
      List.iter (go env facts) es;
      sites := { callee = g; args = List.map (eval summaries env) es; sfacts = facts } :: !sites
  in
  let env = List.mapi (fun i p -> (p, exact (Aff.param i))) d.Ast.params in
  go env no_facts d.Ast.body;
  List.rev !sites

(* Max / min number of calls into [scc] one activation can issue.  Max
   mirrors the machine's spawn counting (short-circuit arms may both
   run in the worst case); min takes the cheapest path — if even the
   cheapest path re-enters the cycle for every member, the cycle can
   never be left once entered. *)
let rec count_calls ~mode ~in_scc (e : Ast.expr) =
  let c = count_calls ~mode ~in_scc in
  match e with
  | Ast.Int _ | Ast.Bool _ | Ast.Nil | Ast.Var _ -> 0
  | Ast.Prim (_, es) -> List.fold_left (fun acc e -> acc + c e) 0 es
  | Ast.Call (g, es) ->
    List.fold_left (fun acc e -> acc + c e) (if in_scc g then 1 else 0) es
  | Ast.If (cnd, a, b) ->
    c cnd + (match mode with `Max -> max (c a) (c b) | `Min -> min (c a) (c b))
  | Ast.And (a, b) | Ast.Or (a, b) -> (
    c a + match mode with `Max -> c b | `Min -> 0)
  | Ast.Let (_, a, b) -> c a + c b

(* ------------------------------------------------------------------ *)
(* Parameter kinds                                                     *)
(* ------------------------------------------------------------------ *)

type kind = KInt | KSize | KOther

let kinds_of_scheme (s : Infer.fn_scheme) =
  List.map
    (fun ty ->
      match Ty.repr ty with Ty.Int -> KInt | Ty.List _ -> KSize | _ -> KOther)
    s.Infer.param_tys

(* ------------------------------------------------------------------ *)
(* Public result types                                                 *)
(* ------------------------------------------------------------------ *)

type growth = Constant | Polynomial of int | Exponential | Unknown_growth | Unbounded

let growth_string = function
  | Constant -> "constant"
  | Polynomial 1 -> "linear"
  | Polynomial d -> Printf.sprintf "polynomial:%d" d
  | Exponential -> "exponential"
  | Unknown_growth -> "unknown"
  | Unbounded -> "unbounded"

type floor = { at_least : int; requires_start_ge : int option }

type verdict =
  | Not_recursive
  | Bounded of { measure : string; floor : floor option }
  | Quiet
  | Divergent of { reason : string }

type fn_cost = {
  fn : string;
  verdict : verdict;
  rec_fanout : int;
  growth : growth;
  work_per_activation : int;
}

(* ------------------------------------------------------------------ *)
(* Measures                                                            *)
(* ------------------------------------------------------------------ *)

(* A candidate ranking measure.  Per-parameter and pairwise-difference
   measures are local to one member (comparable on its self-edges only);
   the sums are defined for every member, so they can decrease across a
   mutual cycle (tak-style). *)
type measure =
  | M_param of string * int
  | M_diff of string * int * int
  | M_sum_ints
  | M_sum_sizes
  | M_neg of measure
      (** negation: an increasing counter bounded above by a guard
          ceiling; only usable when it yields a floored bound *)

let rec measure_at_raw ~kinds fn (m : measure) : Aff.t option =
  let ks () = match List.assoc_opt fn kinds with Some a -> a | None -> [||] in
  match m with
  | M_param (f, i) -> if String.equal f fn then Some (Aff.param i) else None
  | M_diff (f, i, j) ->
    if String.equal f fn then Some (Aff.sub (Aff.param i) (Aff.param j)) else None
  | M_neg m -> Option.map Aff.neg (measure_at_raw ~kinds fn m)
  | M_sum_ints ->
    let a = ks () in
    Some
      (Aff.sum
         (List.filter_map
            (fun i -> if a.(i) = KInt then Some (Aff.param i) else None)
            (List.init (Array.length a) Fun.id)))
  | M_sum_sizes ->
    let a = ks () in
    Some
      (Aff.sum
         (List.filter_map
            (fun i -> if a.(i) = KSize then Some (Aff.param i) else None)
            (List.init (Array.length a) Fun.id)))

(* A measure that degenerates to a constant (e.g. sum-of-list-sizes in a
   function with no list parameters) ranks nothing: treat it as
   inapplicable rather than letting it read as "stationary". *)
let measure_at ~kinds fn m =
  match measure_at_raw ~kinds fn m with
  | Some a when Aff.is_const a -> None
  | r -> r

let measure_desc ~params ~kinds_arr (m : measure) =
  let pname f i =
    match List.assoc_opt f params with
    | Some ps when i < List.length ps -> List.nth ps i
    | _ -> Printf.sprintf "p%d" i
  in
  let render f i =
    let sized =
      match List.assoc_opt f kinds_arr with
      | Some a when i < Array.length a && a.(i) = KSize -> true
      | _ -> false
    in
    if sized then Printf.sprintf "size(%s)" (pname f i) else pname f i
  in
  let rec go = function
    | M_param (f, i) -> render f i
    | M_diff (f, i, j) -> Printf.sprintf "%s - %s" (render f i) (render f j)
    | M_sum_ints -> "sum(int params)"
    | M_sum_sizes -> "sum(list sizes)"
    | M_neg m -> Printf.sprintf "-(%s)" (go m)
  in
  go m

(* ------------------------------------------------------------------ *)
(* Whole-program analysis                                              *)
(* ------------------------------------------------------------------ *)

type scc_info = {
  members : string list;  (* sorted *)
  si_verdict : verdict;
  si_measure : measure option;
  r_max : int;  (* max SCC-internal calls per activation, over members *)
  ext_callees : string list;  (* sorted distinct callees outside the SCC *)
  si_growth : growth;  (* composed over the condensation *)
}

type t = {
  program : Program.t;
  shape : Shape.t;
  graph : Callgraph.t;
  entries : string list;
  kinds : (string * kind array) list;
  summaries : (string * summary) list;
  sites : (string * site list) list;  (* per function, with final summaries *)
  scc_of : (string, int) Hashtbl.t;
  infos : (int * scc_info) list;  (* topological order, callees first *)
  costs : fn_cost list;
}

(* Topologically order the SCCs, callees first, deterministically. *)
let topo_sccs (graph : Callgraph.t) (sccs : string list list) =
  let scc_of = Hashtbl.create 16 in
  List.iteri (fun id ms -> List.iter (fun f -> Hashtbl.replace scc_of f id) ms) sccs;
  let arr = Array.of_list sccs in
  let n = Array.length arr in
  let deps = Array.make n [] in
  (* deps.(i) = scc ids i's members call into (excluding i) *)
  Array.iteri
    (fun i ms ->
      let ds =
        List.concat_map
          (fun f ->
            List.filter_map
              (fun g ->
                match Hashtbl.find_opt scc_of g with
                | Some j when j <> i -> Some j
                | _ -> None)
              (Callgraph.callees graph f))
          ms
        |> List.sort_uniq compare
      in
      deps.(i) <- ds)
    arr;
  let state = Array.make n 0 in
  let order = ref [] in
  let rec visit i =
    if state.(i) = 0 then begin
      state.(i) <- 1;
      List.iter visit deps.(i);
      state.(i) <- 2;
      order := i :: !order
    end
  in
  Array.iteri (fun i _ -> visit i) arr;
  (scc_of, arr, List.rev !order)

let nonneg_of kinds_arr fn =
  match List.assoc_opt fn kinds_arr with
  | Some a ->
    List.filter (fun i -> a.(i) = KSize) (List.init (Array.length a) Fun.id)
  | None -> []

(* Branch-wise verification of a candidate summary assignment for one
   SCC: every tail position's upper bound must be entailed <= the
   member's candidate under the path guards.  Sound by induction on the
   evaluation derivation (the candidate is assumed for recursive calls,
   which have strictly smaller derivations). *)
let verify_candidates ~kinds summaries (defs : Ast.def list) (cands : (string * Aff.t) list) =
  let summaries' =
    List.map (fun (f, cand) -> (f, { lo = None; hi = Some cand })) cands @ summaries
  in
  List.for_all
    (fun (d : Ast.def) ->
      let cand = List.assoc d.Ast.name cands in
      let nonneg = nonneg_of kinds d.Ast.name in
      let rec check env facts (e : Ast.expr) =
        match e with
        | Ast.If (c, a, b) ->
          let t, f = cond_facts summaries' env c in
          check env (facts_union facts t) a && check env (facts_union facts f) b
        | Ast.Let (v, e1, e2) ->
          check ((v, eval summaries' env e1) :: env) facts e2
        | _ -> (
          match (eval summaries' env e).hi with
          | Some h -> entails ~nonneg facts (Aff.sub cand h)
          | None -> false)
      in
      let env = List.mapi (fun i p -> (p, exact (Aff.param i))) d.Ast.params in
      check env no_facts d.Ast.body)
    defs

(* Candidate result-size bounds for one recursive SCC.  Singleton SCCs
   try each compatible parameter and the parameter sum; mutual SCCs try
   the uniform parameter-sum strategy only. *)
let candidate_assignments ~kinds (defs : Ast.def list) =
  let sum_cand (d : Ast.def) extra =
    let a = match List.assoc_opt d.Ast.name kinds with Some a -> a | None -> [||] in
    Aff.add_const extra
      (Aff.sum
         (List.filter_map
            (fun i -> if a.(i) <> KOther then Some (Aff.param i) else None)
            (List.init (Array.length a) Fun.id)))
  in
  match defs with
  | [ d ] ->
    let a = match List.assoc_opt d.Ast.name kinds with Some a -> a | None -> [||] in
    let singles =
      List.concat_map
        (fun i ->
          if a.(i) <> KOther then
            [ Aff.param i; Aff.add_const 1 (Aff.param i) ]
          else [])
        (List.init (Array.length a) Fun.id)
    in
    List.map (fun c -> [ (d.Ast.name, c) ]) (singles @ [ sum_cand d 0; sum_cand d 1 ])
  | ds ->
    List.map (fun extra -> List.map (fun d -> (d.Ast.name, sum_cand d extra)) ds) [ 0; 1 ]

(* Probe the largest k with facts |- measure >= k (the guard floor). *)
let probe_floor ~nonneg facts (m_caller : Aff.t) =
  let rec go k = if k < -16 then None else if entails ~nonneg facts (Aff.add_const (-k) m_caller) then Some k else go (k - 1) in
  go 64

let ne_floor facts (m_caller : Aff.t) =
  (* a fact aff <> 0 matches when aff = m_caller - k for some k *)
  List.filter_map
    (fun a ->
      if a.Aff.ks = m_caller.Aff.ks then Some (m_caller.Aff.c - a.Aff.c)
      else
        let n = Aff.neg a in
        if n.Aff.ks = m_caller.Aff.ks then Some (m_caller.Aff.c - n.Aff.c) else None)
    facts.ne0

let of_program ?(entries = []) ?schemes program =
  let graph = Callgraph.of_program program in
  let shape = Shape.of_program program in
  let entries =
    match List.filter (fun e -> List.mem e graph.Callgraph.functions) entries with
    | [] -> Callgraph.roots graph
    | es -> es
  in
  let schemes =
    match schemes with Some s -> s | None -> (Infer.infer_program program).Infer.schemes
  in
  let kinds =
    List.map
      (fun (d : Ast.def) ->
        ( d.Ast.name,
          match List.assoc_opt d.Ast.name schemes with
          | Some s -> Array.of_list (kinds_of_scheme s)
          | None -> Array.make (List.length d.Ast.params) KOther ))
      (Program.defs program)
  in
  let params = List.map (fun (d : Ast.def) -> (d.Ast.name, d.Ast.params)) (Program.defs program) in
  let recursive = Callgraph.recursive_functions graph in
  let scc_of, scc_arr, topo = topo_sccs graph (Callgraph.sccs graph) in
  (* -------- summaries, SCCs in dependency order -------- *)
  let summaries = ref [] in
  List.iter
    (fun id ->
      let members = scc_arr.(id) in
      let defs = List.map (Program.find_exn program) members in
      let is_rec = List.exists (fun f -> List.mem f recursive) members in
      if not is_rec then
        (* evaluate the body directly; callee summaries are already known *)
        List.iter
          (fun (d : Ast.def) ->
            let env = List.mapi (fun i p -> (p, exact (Aff.param i))) d.Ast.params in
            summaries := (d.Ast.name, eval !summaries env d.Ast.body) :: !summaries)
          defs
      else begin
        let chosen =
          List.find_opt
            (fun cands -> verify_candidates ~kinds !summaries defs cands)
            (candidate_assignments ~kinds defs)
        in
        List.iter
          (fun (d : Ast.def) ->
            let s =
              match chosen with
              | Some cands -> { lo = None; hi = Some (List.assoc d.Ast.name cands) }
              | None -> top
            in
            summaries := (d.Ast.name, s) :: !summaries)
          defs
      end)
    topo;
  let summaries = !summaries in
  let sites =
    List.map
      (fun (d : Ast.def) -> (d.Ast.name, collect_sites summaries d))
      (Program.defs program)
  in
  (* -------- per-SCC termination verdict -------- *)
  let classify id =
    let members = scc_arr.(id) in
    let is_rec = List.exists (fun f -> List.mem f recursive) members in
    let in_scc g = List.mem g members in
    let internal =
      List.concat_map
        (fun f ->
          List.filter_map
            (fun s -> if in_scc s.callee then Some (f, s) else None)
            (List.assoc f sites))
        members
    in
    let r_of f =
      count_calls ~mode:`Max ~in_scc (Program.find_exn program f).Ast.body
    in
    let r_max = List.fold_left (fun acc f -> max acc (r_of f)) 0 members in
    let ext_callees =
      List.concat_map
        (fun f -> List.filter (fun g -> not (in_scc g)) (Callgraph.callees graph f))
        members
      |> List.sort_uniq String.compare
    in
    if not is_rec then (Not_recursive, None, r_max, ext_callees)
    else begin
      let base_candidates =
        List.concat_map
          (fun f ->
            let a = match List.assoc_opt f kinds with Some a -> a | None -> [||] in
            let idx = List.init (Array.length a) Fun.id in
            let singles =
              List.filter_map (fun i -> if a.(i) <> KOther then Some (M_param (f, i)) else None) idx
            in
            let diffs =
              List.concat_map
                (fun i ->
                  List.filter_map
                    (fun j ->
                      if i <> j && a.(i) = KInt && a.(j) = KInt then Some (M_diff (f, i, j))
                      else None)
                    idx)
                idx
            in
            singles @ diffs)
          members
        @ [ M_sum_ints; M_sum_sizes ]
      in
      (* edge status.  [`Dec]: provably decreases by >= 1.  [`Same]:
         provably stationary.  [`Inc]: provably does not decrease (and
         not stationary) — the only status that counts as divergence
         evidence, since a measure merely standing still on one edge may
         be compensated by another measure on another edge.  [`Unknown]:
         not comparable. *)
      let edge_status m (f, s) =
        match measure_at ~kinds f m with
        | None -> `Unknown
        | Some m_caller -> (
          match measure_at ~kinds s.callee m with
          | None -> `Unknown
          | Some m_callee ->
            let nonneg = nonneg_of kinds f in
            let hi = inst_hi m_callee s.args and lo = inst_lo m_callee s.args in
            let same =
              match (hi, lo) with
              | Some h, Some l -> Aff.equal h l && Aff.equal h m_caller
              | _ -> false
            in
            let dec =
              match hi with
              | Some h -> entails ~nonneg s.sfacts (Aff.sub (Aff.add_const (-1) m_caller) h)
              | None -> false
            in
            if same then `Same
            else if dec then `Dec
            else
              let nondec =
                match lo with
                | Some l -> entails ~nonneg s.sfacts (Aff.sub l m_caller)
                | None -> false
              in
              if nondec then `Inc else `Unknown)
      in
      let statuses m = List.map (edge_status m) internal in
      let base = List.map (fun m -> (m, statuses m)) base_candidates in
      let negated = List.map (fun m -> (M_neg m, statuses (M_neg m))) base_candidates in
      let non_vacuous =
        List.filter (fun (_, sts) -> List.exists (fun s -> s <> `Unknown) sts) base
      in
      let dec_all_of = List.filter (fun (_, sts) -> List.for_all (fun s -> s = `Dec) sts) in
      let dec_all = dec_all_of base in
      let dec_all_neg = dec_all_of negated in
      let exact_unit m (f, s) =
        match (measure_at ~kinds f m, measure_at ~kinds s.callee m) with
        | Some m_caller, Some m_callee -> (
          match (inst_hi m_callee s.args, inst_lo m_callee s.args) with
          | Some h, Some l -> Aff.equal h l && Aff.equal h (Aff.add_const (-1) m_caller)
          | _ -> false)
        | _ -> false
      in
      (* floor for one decreasing measure, combined over internal sites *)
      let floor_of m =
        let unit_ok = List.for_all (exact_unit m) internal in
        let site_floor (f, s) =
          match measure_at ~kinds f m with
          | None -> None
          | Some m_caller -> (
            let nonneg = nonneg_of kinds f in
            match probe_floor ~nonneg s.sfacts m_caller with
            | Some k -> Some (k, None)
            | None -> (
              if not unit_ok then None
              else
                match ne_floor s.sfacts m_caller with
                | k :: _ -> Some (k + 1, Some k)
                | [] -> None))
        in
        let fls = List.map site_floor internal in
        if List.exists Option.is_none fls then None
        else
          let fls = List.filter_map Fun.id fls in
          let at_least = List.fold_left (fun acc (k, _) -> min acc k) max_int fls in
          let requires =
            List.fold_left
              (fun acc (_, r) ->
                match (acc, r) with
                | None, r -> r
                | Some a, Some b -> Some (max a b)
                | Some a, None -> Some a)
              None fls
          in
          Some { at_least; requires_start_ge = requires }
      in
      (* Negated candidates model increasing counters climbing toward a
         guard ceiling (e.g. [if n < 5 then f(n + 1)]): [-n] decreases and
         the guard floors it at [-4].  They only count when they come with
         a floor — an unfloored decreasing [-n] proves nothing and must
         not rescue [f(n) = f(n + 1)] from RF301. *)
      let with_floor =
        List.filter_map
          (fun (m, _) -> match floor_of m with Some fl -> Some (m, fl) | None -> None)
          (dec_all @ dec_all_neg)
      in
      let all_paths_recurse =
        members <> []
        && List.for_all
             (fun f -> count_calls ~mode:`Min ~in_scc (Program.find_exn program f).Ast.body >= 1)
             members
      in
      let desc m = measure_desc ~params ~kinds_arr:kinds m in
      match with_floor with
      | (m, fl) :: _ ->
        (Bounded { measure = desc m; floor = Some fl }, Some m, r_max, ext_callees)
      | [] ->
        if all_paths_recurse then
          ( Divergent { reason = "every evaluation path re-enters the cycle" },
            None, r_max, ext_callees )
        else (
          match dec_all with
          | (m, _) :: _ -> (Bounded { measure = desc m; floor = None }, Some m, r_max, ext_callees)
          | [] ->
            if
              non_vacuous <> []
              && List.for_all (fun (_, sts) -> List.exists (fun s -> s = `Inc) sts) non_vacuous
            then
              ( Divergent { reason = "every candidate measure is provably non-decreasing" },
                None, r_max, ext_callees )
            else (Quiet, None, r_max, ext_callees))
    end
  in
  (* -------- growth composition over the condensation -------- *)
  let infos = Hashtbl.create 16 in
  List.iter
    (fun id ->
      let verdict, m, r_max, ext_callees = classify id in
      let local =
        match verdict with
        | Not_recursive -> Constant
        | Bounded { floor = Some _; _ } -> if r_max >= 2 then Exponential else Polynomial 1
        | Bounded { floor = None; _ } | Quiet -> Unknown_growth
        | Divergent _ -> Unbounded
      in
      let ext_growth =
        List.fold_left
          (fun acc g ->
            let gid = Hashtbl.find scc_of g in
            let gi = Hashtbl.find infos gid in
            match (acc, gi.si_growth) with
            | Unbounded, _ | _, Unbounded -> Unbounded
            | Unknown_growth, _ | _, Unknown_growth -> Unknown_growth
            | Exponential, _ | _, Exponential -> Exponential
            | Polynomial a, Polynomial b -> Polynomial (max a b)
            | Polynomial a, Constant | Constant, Polynomial a -> Polynomial a
            | Constant, Constant -> Constant)
          Constant ext_callees
      in
      let composed =
        match (local, ext_growth) with
        | Unbounded, _ | _, Unbounded -> Unbounded
        | Unknown_growth, _ | _, Unknown_growth -> Unknown_growth
        | Exponential, _ | _, Exponential -> Exponential
        | Polynomial a, Polynomial b -> Polynomial (a + b)
        | Polynomial a, Constant | Constant, Polynomial a -> Polynomial a
        | Constant, Constant -> Constant
      in
      Hashtbl.replace infos id
        {
          members = scc_arr.(id);
          si_verdict = verdict;
          si_measure = m;
          r_max;
          ext_callees;
          si_growth = composed;
        })
    topo;
  let infos_list = List.map (fun id -> (id, Hashtbl.find infos id)) topo in
  let costs =
    List.map
      (fun (d : Ast.def) ->
        let id = Hashtbl.find scc_of d.Ast.name in
        let info = Hashtbl.find infos id in
        let in_scc g = List.mem g info.members in
        {
          fn = d.Ast.name;
          verdict = info.si_verdict;
          rec_fanout = count_calls ~mode:`Max ~in_scc d.Ast.body;
          growth = info.si_growth;
          work_per_activation = Ast.size d.Ast.body;
        })
      (Program.defs program)
  in
  { program; shape; graph; entries; kinds; summaries; sites; scc_of; infos = infos_list; costs }

let fn_costs t = t.costs

let find t fn = List.find_opt (fun c -> String.equal c.fn fn) t.costs

(* ------------------------------------------------------------------ *)
(* RF3xx lints                                                         *)
(* ------------------------------------------------------------------ *)

(* Mirror of the RF203 detection in [Lints]: a self-call passing every
   parameter through unchanged.  When a divergent SCC contains one, RF203
   already pinpoints the offending call — a stacked RF3xx on the same
   cycle would be noise, so [lint] stays silent for that SCC. *)
let has_identity_self_call (d : Ast.def) =
  let found = ref false in
  let rec go rebound = function
    | Ast.Int _ | Ast.Bool _ | Ast.Nil | Ast.Var _ -> ()
    | Ast.Prim (_, args) -> List.iter (go rebound) args
    | Ast.If (c, a, b) ->
      go rebound c;
      go rebound a;
      go rebound b
    | Ast.And (a, b) | Ast.Or (a, b) ->
      go rebound a;
      go rebound b
    | Ast.Let (x, bound, body) ->
      go rebound bound;
      go (x :: rebound) body
    | Ast.Call (f, args) ->
      (if f = d.Ast.name && List.length args = List.length d.Ast.params then
         let identical =
           List.for_all2
             (fun arg param ->
               match arg with
               | Ast.Var v -> v = param && not (List.mem v rebound)
               | _ -> false)
             args d.Ast.params
         in
         if identical then found := true);
      List.iter (go rebound) args
  in
  go [] d.Ast.body;
  !found

let lint t =
  let reachable = Callgraph.reachable t.graph ~entries:t.entries in
  List.filter_map
    (fun (_, info) ->
      match info.si_verdict with
      | Divergent { reason }
        when List.exists (fun f -> List.mem f reachable) info.members
             && not
                  (List.exists
                     (fun f -> has_identity_self_call (Program.find_exn t.program f))
                     info.members) ->
        let fn = List.hd info.members in
        let cycle = String.concat " <-> " info.members in
        let d =
          if info.r_max >= 2 then
            Diagnostic.make ~fn Diagnostic.Exponential_spawn
              (Printf.sprintf
                 "recursive cycle %s re-enters itself %d times per activation with no \
                  decreasing measure (%s); task count grows exponentially"
                 cycle info.r_max reason)
          else if info.ext_callees <> [] then
            Diagnostic.make ~fn Diagnostic.Spawn_in_nondec_cycle
              (Printf.sprintf
                 "recursive cycle %s spawns %s on every trip around a non-decreasing cycle \
                  (%s); total spawned work is statically unbounded"
                 cycle
                 (String.concat ", " info.ext_callees)
                 reason)
          else
            Diagnostic.make ~fn Diagnostic.Unbounded_recursion
              (Printf.sprintf
                 "recursive cycle %s admits no decreasing argument measure (%s); recursion \
                  depth is statically unbounded"
                 cycle reason)
        in
        Some d
      | _ -> None)
    t.infos
  |> List.sort Diagnostic.compare

let fn_cost_to_string c =
  let v =
    match c.verdict with
    | Not_recursive -> "not recursive"
    | Bounded { measure; floor = Some fl } ->
      Printf.sprintf "depth bounded by %s (floor %d)" measure fl.at_least
    | Bounded { measure; floor = None } -> Printf.sprintf "decreasing %s, no floor" measure
    | Quiet -> "depth unknown"
    | Divergent { reason } -> "divergent: " ^ reason
  in
  Printf.sprintf "%s: %s, rec fan-out %d, growth %s, work/activation %d" c.fn v c.rec_fanout
    (growth_string c.growth) c.work_per_activation

(* ------------------------------------------------------------------ *)
(* Concrete entry bounds                                               *)
(* ------------------------------------------------------------------ *)

type entry_bounds = { depth : int option; fanout : int }

(* concrete interval, [None] = unbounded on that side *)
type iv = { ilo : int option; ihi : int option }

let iv_exact n = { ilo = Some n; ihi = Some n }

let value_size (v : Value.t) =
  match v with
  | Value.Int n -> n
  | Value.Bool _ -> 0
  | Value.Nil | Value.Cons _ ->
    let rec len acc = function Value.Cons (_, t) -> len (acc + 1) t | _ -> acc in
    len 0 v

let inst_iv_hi (a : Aff.t) (ivs : iv array) =
  List.fold_left
    (fun acc (i, k) ->
      match acc with
      | None -> None
      | Some acc -> (
        let p = if i < Array.length ivs then ivs.(i) else { ilo = None; ihi = None } in
        match if k >= 0 then p.ihi else p.ilo with
        | Some v -> Some (acc + (k * v))
        | None -> None))
    (Some a.Aff.c) a.Aff.ks

let inst_iv_lo (a : Aff.t) (ivs : iv array) =
  List.fold_left
    (fun acc (i, k) ->
      match acc with
      | None -> None
      | Some acc -> (
        let p = if i < Array.length ivs then ivs.(i) else { ilo = None; ihi = None } in
        match if k >= 0 then p.ilo else p.ihi with
        | Some v -> Some (acc + (k * v))
        | None -> None))
    (Some a.Aff.c) a.Aff.ks

let bounds_iv (b : bounds) (ivs : iv array) =
  {
    ilo = (match b.lo with Some a -> inst_iv_lo a ivs | None -> None);
    ihi = (match b.hi with Some a -> inst_iv_hi a ivs | None -> None);
  }

type fn_state = { mutable ext : iv array option; mutable full : iv array option }

let sat_add a b =
  match (a, b) with
  | Some x, Some y -> if x > max_int - y then None else Some (x + y)
  | _ -> None

let entry_bounds t ~entry ~args =
  let fanout = Shape.program_fanout_bound ~entries:[ entry ] t.shape t.program in
  match Program.find t.program entry with
  | None -> { depth = None; fanout }
  | Some edef ->
    let arity = List.length edef.Ast.params in
    let states : (string, fn_state) Hashtbl.t = Hashtbl.create 16 in
    let widens : (string * int * [ `Lo | `Hi ] * [ `Ext | `Full ], int) Hashtbl.t =
      Hashtbl.create 64
    in
    let state fn =
      match Hashtbl.find_opt states fn with
      | Some s -> s
      | None ->
        let s = { ext = None; full = None } in
        Hashtbl.replace states fn s;
        s
    in
    (* join [nw] into the [which] map of [fn]; true when anything changed *)
    let join_into fn which (nw : iv array) =
      let s = state fn in
      let cur = match which with `Ext -> s.ext | `Full -> s.full in
      match cur with
      | None ->
        (match which with `Ext -> s.ext <- Some (Array.copy nw) | `Full -> s.full <- Some (Array.copy nw));
        true
      | Some cur ->
        let changed = ref false in
        Array.iteri
          (fun i nv ->
            let widen side =
              let key = (fn, i, side, which) in
              let n = match Hashtbl.find_opt widens key with Some n -> n | None -> 0 in
              Hashtbl.replace widens key (n + 1);
              n + 1 > 3
            in
            let lo' =
              match (cur.(i).ilo, nv.ilo) with
              | None, _ | _, None -> None
              | Some a, Some b ->
                if b < a then if widen `Lo then None else Some b else Some a
            in
            let hi' =
              match (cur.(i).ihi, nv.ihi) with
              | None, _ | _, None -> None
              | Some a, Some b ->
                if b > a then if widen `Hi then None else Some b else Some a
            in
            if lo' <> cur.(i).ilo || hi' <> cur.(i).ihi then begin
              changed := true;
              cur.(i) <- { ilo = lo'; ihi = hi' }
            end)
          nw;
        !changed
    in
    let converged = ref true in
    if List.length args = arity then begin
      let seed = Array.of_list (List.map (fun v -> iv_exact (value_size v)) args) in
      ignore (join_into entry `Ext seed);
      ignore (join_into entry `Full seed);
      let work = Queue.create () in
      Queue.push entry work;
      (* widening bounds the number of state changes, so this terminates
         without the guard; the cap is a pure safety net *)
      let guard = ref 0 in
      while (not (Queue.is_empty work)) && !guard < 1_000_000 do
        incr guard;
        let f = Queue.pop work in
        match (state f).full with
        | None -> ()
        | Some ivs ->
          let my_scc = Hashtbl.find_opt t.scc_of f in
          List.iter
            (fun s ->
              let nw = Array.of_list (List.map (fun b -> bounds_iv b ivs) s.args) in
              let cross = Hashtbl.find_opt t.scc_of s.callee <> my_scc in
              let ch_full = join_into s.callee `Full nw in
              let ch_ext = if cross then join_into s.callee `Ext nw else false in
              if ch_full || ch_ext then Queue.push s.callee work)
            (match List.assoc_opt f t.sites with Some ss -> ss | None -> [])
      done;
      if not (Queue.is_empty work) then converged := false
    end
    else converged := false;
    (* depth over the condensation, memoized per SCC *)
    let memo : (int, int option) Hashtbl.t = Hashtbl.create 16 in
    let info_of id = List.assoc id t.infos in
    let rec sd id =
      match Hashtbl.find_opt memo id with
      | Some d -> d
      | None ->
        Hashtbl.replace memo id (Some 0) (* provisional; condensation is acyclic *);
        let info = info_of id in
        let ext_depth () =
          List.fold_left
            (fun acc g ->
              let d = sat_add (Some 1) (sd (Hashtbl.find t.scc_of g)) in
              match (acc, d) with
              | None, _ | _, None -> None
              | Some a, Some b -> Some (max a b))
            (Some 0) info.ext_callees
        in
        let d =
          match info.si_verdict with
          | Not_recursive -> ext_depth ()
          | Bounded { floor = Some fl; _ } -> (
            match info.si_measure with
            | None -> None
            | Some m ->
              (* measure at SCC entry, over externally-reached members *)
              let entries =
                List.filter_map
                  (fun f ->
                    match (state f).ext with
                    | Some ivs -> (
                      match measure_at ~kinds:t.kinds f m with
                      | Some a -> Some (inst_iv_hi a ivs, inst_iv_lo a ivs)
                      | None -> None)
                    | None -> None)
                  info.members
              in
              if entries = [] then ext_depth () (* SCC never actually entered *)
              else
                let m0_hi =
                  List.fold_left
                    (fun acc (hi, _) ->
                      match (acc, hi) with Some a, Some b -> Some (max a b) | _ -> None)
                    (Some min_int) entries
                in
                let m0_lo =
                  List.fold_left
                    (fun acc (_, lo) ->
                      match (acc, lo) with Some a, Some b -> Some (min a b) | _ -> None)
                    (Some max_int) entries
                in
                let start_ok =
                  match fl.requires_start_ge with
                  | None -> true
                  | Some k -> ( match m0_lo with Some l -> l >= k | None -> false)
                in
                if not start_ok then None
                else (
                  match m0_hi with
                  | None -> None
                  | Some m0 ->
                    let e = max 0 (m0 - fl.at_least + 1) in
                    sat_add (Some e) (ext_depth ()))
            )
          | _ -> None
        in
        Hashtbl.replace memo id d;
        d
    in
    let depth =
      if not !converged then None
      else match Hashtbl.find_opt t.scc_of entry with Some id -> sd id | None -> None
    in
    { depth; fanout }

let subtree_bound eb ~depth =
  match eb.depth with
  | None -> None
  | Some d ->
    let r = max 0 (d - depth) in
    let b = eb.fanout in
    if b <= 1 then Some (r + 1)
    else
      (* 1 + b + ... + b^r, saturating *)
      let rec go i acc pow =
        if i > r then Some acc
        else if pow > (max_int - acc) / b then None
        else
          let pow = pow * b in
          go (i + 1) (acc + pow) pow
      in
      (match go 1 1 1 with Some n -> Some n | None -> Some max_int)

let activation_bound eb = subtree_bound eb ~depth:0
