(** Monomorphic whole-program type inference.

    Every function receives a single type shared by all call sites; bodies
    are walked once, unifying as we go.  Failures become [RF101]
    (mismatch) or [RF102] (occurs check) diagnostics rather than
    exceptions, so one bad definition does not hide problems in others.

    User-call sites are located via the parser's recorded spans when
    available ([?spans]); other constructs are attributed to their
    enclosing function only. *)

open Recflow_lang

type fn_scheme = { param_tys : Ty.t list; ret_ty : Ty.t }

type result = {
  schemes : (string * fn_scheme) list;  (** per function, in def order *)
  diagnostics : Diagnostic.t list;
}

val infer_program : ?spans:Parser.def_spans list -> Program.t -> result

val scheme_to_string : fn_scheme -> string
(** ["int * int list -> bool"] — shared naming scope across the arrow. *)
