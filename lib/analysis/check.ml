open Recflow_lang

type report = {
  diagnostics : Diagnostic.t list;  (** sorted by [Diagnostic.compare] *)
  program : Program.t option;  (** [None] when structurally invalid *)
  shape : Shape.t option;
  cost : Cost.t option;
  schemes : (string * Infer.fn_scheme) list;
  entries : string list;  (** resolved entry points *)
}

let schema = "recflow.check/2"

let errors r = List.filter (fun d -> Diagnostic.severity d = Diagnostic.Error) r.diagnostics

let warnings r = List.filter (fun d -> Diagnostic.severity d = Diagnostic.Warning) r.diagnostics

let ok ?(werror = false) r =
  errors r = [] && ((not werror) || warnings r = [])

let resolve_entries ~requested program =
  let graph = Callgraph.of_program program in
  match List.filter (fun e -> List.mem e graph.Callgraph.functions) requested with
  | [] -> Callgraph.roots graph
  | es -> es

let of_program_error (e : Program.error) : Diagnostic.t =
  match e with
  | Program.Duplicate_definition fn ->
    Diagnostic.make ~fn Diagnostic.Duplicate_definition
      (Printf.sprintf "function %s is defined more than once" fn)
  | Program.Duplicate_parameter (fn, p) ->
    Diagnostic.make ~fn Diagnostic.Duplicate_parameter
      (Printf.sprintf "parameter %s appears more than once" p)
  | Program.Unbound_variable (fn, v) ->
    Diagnostic.make ~fn Diagnostic.Unbound_variable (Printf.sprintf "unbound variable %s" v)
  | Program.Unknown_function (caller, callee) ->
    Diagnostic.make ~fn:caller Diagnostic.Unknown_function
      (Printf.sprintf "call to undefined function %s" callee)
  | Program.Arity_mismatch { caller; callee; expected; got } ->
    Diagnostic.make ~fn:caller Diagnostic.Arity_mismatch
      (Printf.sprintf "%s expects %d argument%s, got %d" callee expected
         (if expected = 1 then "" else "s")
         got)
  | Program.Prim_arity { caller; prim; expected; got } ->
    Diagnostic.make ~fn:caller Diagnostic.Prim_arity
      (Printf.sprintf "%s expects %d argument%s, got %d" prim expected
         (if expected = 1 then "" else "s")
         got)

(* Function-level diagnostics (validation errors, lints) carry no
   intrinsic position; when the source spans are available, give each one
   the position of its function's [def] so every line of a report points
   somewhere useful. *)
let attach_def_locs (spans : Parser.def_spans list) diags =
  let def_loc fn =
    List.find_map
      (fun (s : Parser.def_spans) ->
        if s.def_name = fn then Some (Loc.of_span s.def_span) else None)
      spans
  in
  List.map
    (fun (d : Diagnostic.t) ->
      match (d.loc, d.fn) with
      | None, Some fn -> (
        match def_loc fn with Some loc -> { d with loc = Some loc } | None -> d)
      | _ -> d)
    diags

let invalid_report diag =
  {
    diagnostics = [ diag ];
    program = None;
    shape = None;
    cost = None;
    schemes = [];
    entries = [];
  }

let check_defs ?(spans : Parser.def_spans list = []) ?(entries = []) defs =
  match Program.of_defs defs with
  | Error e ->
    let diags = attach_def_locs spans [ of_program_error e ] in
    { (invalid_report (List.hd diags)) with diagnostics = diags }
  | Ok program ->
    let entries = resolve_entries ~requested:entries program in
    let inferred = Infer.infer_program ~spans program in
    let lint_diags = Lints.lint_program ~spans ~entries program in
    let cost = Cost.of_program ~entries ~schemes:inferred.Infer.schemes program in
    let diagnostics =
      attach_def_locs spans (inferred.Infer.diagnostics @ lint_diags @ Cost.lint cost)
      |> List.sort Diagnostic.compare
    in
    {
      diagnostics;
      program = Some program;
      shape = Some (Shape.of_program program);
      cost = Some cost;
      schemes = inferred.Infer.schemes;
      entries;
    }

let check_source ?entries src =
  match Parser.parse_defs_spanned src with
  | Error (e : Parser.error) ->
    invalid_report
      (Diagnostic.make
         ~loc:(Loc.make ~line:e.line ~column:e.column)
         Diagnostic.Parse_error e.message)
  | Ok (defs, spans) -> check_defs ~spans ?entries defs

let summary_line r =
  let ne = List.length (errors r) and nw = List.length (warnings r) in
  if ne = 0 && nw = 0 then "check passed: no diagnostics"
  else
    Printf.sprintf "check %s: %d error%s, %d warning%s"
      (if ne > 0 then "failed" else "passed")
      ne
      (if ne = 1 then "" else "s")
      nw
      (if nw = 1 then "" else "s")

let render_human r =
  let diag_lines = List.map Diagnostic.to_string r.diagnostics in
  let fn_lines =
    match (r.program, r.shape) with
    | Some program, Some shape ->
      List.map
        (fun (d : Ast.def) ->
          let ty =
            match List.assoc_opt d.name r.schemes with
            | Some s -> Infer.scheme_to_string s
            | None -> "?"
          in
          let shape_part =
            match Shape.find shape d.name with
            | Some s ->
              Printf.sprintf "fan-out <= %d, %s" s.Shape.fanout
                (Shape.recursion_class_string s.Shape.recursion)
            | None -> ""
          in
          let cost_part =
            match Option.map (fun c -> Cost.find c d.name) r.cost |> Option.join with
            | Some (fc : Cost.fn_cost) ->
              let depth =
                match fc.Cost.verdict with
                | Cost.Not_recursive -> "depth 0"
                | Cost.Bounded { measure; floor = Some fl } ->
                  Printf.sprintf "depth ~ %s (floor %d)" measure fl.Cost.at_least
                | Cost.Bounded { measure; floor = None } ->
                  Printf.sprintf "decreasing %s, no floor" measure
                | Cost.Quiet -> "depth ?"
                | Cost.Divergent _ -> "depth unbounded"
              in
              Printf.sprintf "; %s, growth %s, work %d" depth
                (Cost.growth_string fc.Cost.growth)
                fc.Cost.work_per_activation
            | None -> ""
          in
          Printf.sprintf "  %s : %s  [%s%s]" d.name ty shape_part cost_part)
        (Program.defs program)
    | _ -> []
  in
  String.concat "\n" (diag_lines @ fn_lines @ [ summary_line r ])

let render_json r =
  let open Diagnostic in
  let diags = "[" ^ String.concat "," (List.map to_json r.diagnostics) ^ "]" in
  let functions =
    match (r.program, r.shape) with
    | Some program, Some shape ->
      let objs =
        List.map
          (fun (d : Ast.def) ->
            let fields =
              [
                Some ("name", json_string d.name);
                Option.map
                  (fun s -> ("type", json_string (Infer.scheme_to_string s)))
                  (List.assoc_opt d.name r.schemes);
                Option.map
                  (fun (s : Shape.fn_shape) -> ("fanout_bound", string_of_int s.Shape.fanout))
                  (Shape.find shape d.name);
                Option.map
                  (fun (s : Shape.fn_shape) ->
                    ("recursion", json_string (Shape.recursion_class_string s.Shape.recursion)))
                  (Shape.find shape d.name);
                Option.map
                  (fun (fc : Cost.fn_cost) ->
                    let verdict, measure, floor =
                      match fc.Cost.verdict with
                      | Cost.Not_recursive -> ("not-recursive", None, None)
                      | Cost.Bounded { measure; floor = Some fl } ->
                        ("bounded", Some measure, Some fl.Cost.at_least)
                      | Cost.Bounded { measure; floor = None } ->
                        ("decreasing", Some measure, None)
                      | Cost.Quiet -> ("unknown", None, None)
                      | Cost.Divergent _ -> ("divergent", None, None)
                    in
                    let fields =
                      [
                        Some ("verdict", json_string verdict);
                        Option.map (fun m -> ("measure", json_string m)) measure;
                        Option.map (fun k -> ("floor", string_of_int k)) floor;
                        Some ("rec_fanout", string_of_int fc.Cost.rec_fanout);
                        Some ("growth", json_string (Cost.growth_string fc.Cost.growth));
                        Some ("work", string_of_int fc.Cost.work_per_activation);
                      ]
                      |> List.filter_map Fun.id
                    in
                    ( "cost",
                      "{"
                      ^ String.concat ","
                          (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
                      ^ "}" ))
                  (Option.map (fun c -> Cost.find c d.name) r.cost |> Option.join);
              ]
              |> List.filter_map Fun.id
            in
            "{"
            ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
            ^ "}")
          (Program.defs program)
      in
      "[" ^ String.concat "," objs ^ "]"
    | _ -> "[]"
  in
  let entries = "[" ^ String.concat "," (List.map json_string r.entries) ^ "]" in
  Printf.sprintf
    {|{"schema":%s,"errors":%d,"warnings":%d,"entries":%s,"diagnostics":%s,"functions":%s}|}
    (json_string schema)
    (List.length (errors r))
    (List.length (warnings r))
    entries diags functions

(* Runtime gate for programmatic program construction (workloads,
   examples): refuse to hand out a program with analysis errors.
   Warnings are left to the lint suite — a runtime abort would be too
   blunt for style findings. *)
let assert_clean ?entries defs =
  let r = check_defs ?entries defs in
  match errors r with
  | [] -> ()
  | e :: _ ->
    invalid_arg (Printf.sprintf "static analysis failed: %s" (Diagnostic.to_string e))
