open Recflow_lang

(* Primitive signatures.  Equality is polymorphic in the source language
   (Eq/Ne compare ints, bools and lists), so each Eq/Ne site gets a fresh
   variable; likewise Cons/Head/Tail/Is_nil work over ['a list]. *)
let prim_sig gen (p : Ast.prim) : Ty.t list * Ty.t =
  match p with
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Min | Ast.Max ->
    ([ Ty.Int; Ty.Int ], Ty.Int)
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> ([ Ty.Int; Ty.Int ], Ty.Bool)
  | Ast.Eq | Ast.Ne ->
    let a = Ty.fresh gen in
    ([ a; a ], Ty.Bool)
  | Ast.Not -> ([ Ty.Bool ], Ty.Bool)
  | Ast.Neg -> ([ Ty.Int ], Ty.Int)
  | Ast.Cons ->
    let a = Ty.fresh gen in
    ([ a; Ty.List a ], Ty.List a)
  | Ast.Head ->
    let a = Ty.fresh gen in
    ([ Ty.List a ], a)
  | Ast.Tail ->
    let a = Ty.fresh gen in
    ([ Ty.List a ], Ty.List a)
  | Ast.Is_nil ->
    let a = Ty.fresh gen in
    ([ Ty.List a ], Ty.Bool)

type fn_scheme = { param_tys : Ty.t list; ret_ty : Ty.t }

type result = {
  schemes : (string * fn_scheme) list;  (** per function, in def order *)
  diagnostics : Diagnostic.t list;
}

(* Where a unification failure is reported.  [ctx] names the construct,
   [fn] the enclosing definition, [loc] the best span we have (user-call
   sites only; other constructs carry no span — see Parser.def_spans). *)
type site = { fn : string; ctx : string; loc : Loc.t option }

let mismatch site ~expected ~got =
  match Ty.to_string_many [ expected; got ] with
  | [ e; g ] ->
    let msg = Printf.sprintf "%s: expected %s, got %s" site.ctx e g in
    Diagnostic.make ~fn:site.fn ?loc:site.loc Diagnostic.Type_mismatch msg
  | _ -> assert false

let infinite site ~var ~ty =
  match Ty.to_string_many [ var; ty ] with
  | [ v; t ] ->
    let msg = Printf.sprintf "%s: %s occurs in %s (infinite type)" site.ctx v t in
    Diagnostic.make ~fn:site.fn ?loc:site.loc Diagnostic.Infinite_type msg
  | _ -> assert false

let infer_program ?(spans : Parser.def_spans list = []) (program : Program.t) : result =
  let gen = Ty.new_gen () in
  let defs = Program.defs program in
  let diags = ref [] in
  let unify_at site a b =
    match Ty.unify a b with
    | Ok () -> ()
    | Error (Ty.Mismatch (x, y)) -> diags := mismatch site ~expected:x ~got:y :: !diags
    | Error (Ty.Occurs (v, t)) -> diags := infinite site ~var:v ~ty:t :: !diags
  in
  (* One monomorphic scheme per function, created up front so recursive and
     mutually recursive calls constrain the same variables. *)
  let schemes =
    List.map
      (fun (d : Ast.def) ->
        (d.name, { param_tys = List.map (fun _ -> Ty.fresh gen) d.params; ret_ty = Ty.fresh gen }))
      defs
  in
  let scheme_of name = List.assoc_opt name schemes in
  let spans_of fn =
    match List.find_opt (fun (s : Parser.def_spans) -> s.def_name = fn) spans with
    | Some s -> Array.of_list s.call_spans
    | None -> [||]
  in
  List.iter
    (fun (d : Ast.def) ->
      let call_spans = spans_of d.name in
      let call_idx = ref 0 in
      (* Spans are recorded in textual order, which for this grammar equals
         a left-to-right pre-order walk of the Call nodes — so a simple
         counter re-attaches them. *)
      let next_call_loc () =
        let i = !call_idx in
        incr call_idx;
        if i < Array.length call_spans then Some (Loc.of_span (snd call_spans.(i))) else None
      in
      let scheme =
        match scheme_of d.name with Some s -> s | None -> assert false
      in
      let env = List.combine d.params scheme.param_tys in
      let rec infer env (e : Ast.expr) : Ty.t =
        match e with
        | Ast.Int _ -> Ty.Int
        | Ast.Bool _ -> Ty.Bool
        | Ast.Nil -> Ty.List (Ty.fresh gen)
        | Ast.Var x -> (
          match List.assoc_opt x env with Some t -> t | None -> Ty.fresh gen)
        | Ast.Prim (p, args) ->
          let param_tys, ret = prim_sig gen p in
          let ctx = Printf.sprintf "argument of %s" (Ast.prim_name p) in
          let site = { fn = d.name; ctx; loc = None } in
          (if List.length args = List.length param_tys then
             List.iter2 (fun a pt -> unify_at site (infer env a) pt) args param_tys);
          ret
        | Ast.If (c, t, e) ->
          unify_at { fn = d.name; ctx = "if condition"; loc = None } (infer env c) Ty.Bool;
          let tt = infer env t in
          let te = infer env e in
          unify_at { fn = d.name; ctx = "if branches"; loc = None } tt te;
          tt
        | Ast.And (a, b) | Ast.Or (a, b) ->
          let op = match e with Ast.And _ -> "&&" | _ -> "||" in
          unify_at
            { fn = d.name; ctx = Printf.sprintf "left operand of %s" op; loc = None }
            (infer env a) Ty.Bool;
          unify_at
            { fn = d.name; ctx = Printf.sprintf "right operand of %s" op; loc = None }
            (infer env b) Ty.Bool;
          Ty.Bool
        | Ast.Let (x, bound, body) ->
          let tb = infer env bound in
          infer ((x, tb) :: env) body
        | Ast.Call (f, args) -> (
          let loc = next_call_loc () in
          match scheme_of f with
          | None -> Ty.fresh gen
          | Some s ->
            (if List.length args = List.length s.param_tys then
               List.iteri
                 (fun i (a, pt) ->
                   let ctx = Printf.sprintf "argument %d of %s" (i + 1) f in
                   unify_at { fn = d.name; ctx; loc } (infer env a) pt)
                 (List.combine args s.param_tys));
            s.ret_ty)
      in
      let body_ty = infer env d.body in
      unify_at { fn = d.name; ctx = "function result"; loc = None } body_ty scheme.ret_ty)
    defs;
  { schemes; diagnostics = List.rev !diags }

let scheme_to_string { param_tys; ret_ty } =
  match Ty.to_string_many (param_tys @ [ ret_ty ]) with
  | [] -> assert false
  | rendered ->
    let rec split acc = function
      | [ ret ] -> (List.rev acc, ret)
      | x :: rest -> split (x :: acc) rest
      | [] -> assert false
    in
    let params, ret = split [] rendered in
    if params = [] then ret else Printf.sprintf "%s -> %s" (String.concat " * " params) ret
