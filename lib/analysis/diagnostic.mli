(** Diagnostics with stable rule codes.

    Codes are grouped by band: RF0xx structural validity (parse and
    program-form errors), RF1xx type errors, RF2xx lints (warnings).
    Severity is a function of the code, never of the site. *)

type severity = Error | Warning

type code =
  | Parse_error  (** RF001 *)
  | Duplicate_definition  (** RF002 *)
  | Duplicate_parameter  (** RF003 *)
  | Unbound_variable  (** RF004 *)
  | Unknown_function  (** RF005 *)
  | Arity_mismatch  (** RF006: wrong argument count at a user call *)
  | Prim_arity  (** RF007: wrong argument count at a primitive *)
  | Type_mismatch  (** RF101: unification failure *)
  | Infinite_type  (** RF102: occurs-check failure *)
  | Dead_function  (** RF201: unreachable from the entry points *)
  | Unused_parameter  (** RF202 *)
  | Non_productive_recursion
      (** RF203: a self-call passing every argument unchanged — in a pure
          strict language such a call can only diverge *)
  | Shadowed_binding  (** RF204: [let] rebinds a visible name *)
  | Unused_let  (** RF205: [let]-bound value never referenced *)
  | Unbounded_recursion
      (** RF301: an entry-reachable recursive cycle admits no decreasing
          measure — recursion depth is statically unbounded *)
  | Exponential_spawn
      (** RF302: a non-decreasing cycle re-enters itself >= 2 times per
          activation — task count blows up exponentially *)
  | Spawn_in_nondec_cycle
      (** RF303: a non-decreasing cycle spawns non-cycle work every trip
          around — unbounded extra subtree work *)

val all_codes : code list
(** Every code, in code order — tests iterate this to prove fixture
    coverage. *)

val code_string : code -> string

val of_code_string : string -> code option
(** Inverse of {!code_string} ("RF203" -> [Some Non_productive_recursion]);
    [None] for unknown codes. *)

val severity_of_code : code -> severity

val explain : code -> string
(** One-paragraph rule doc, printed by [recflow --explain RF<code>]. *)

type t = { code : code; fn : string option; loc : Loc.t option; message : string }

val make : ?fn:string -> ?loc:Loc.t -> code -> string -> t

val severity : t -> severity

val severity_string : severity -> string

val to_string : t -> string
(** ["error[RF101] fib:1:20: <message>"]. *)

val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
(** Total order: errors first, then function, location, code, message. *)

val json_string : string -> string
(** JSON-escape and quote a string (shared by the report renderer). *)

val to_json : t -> string
(** One JSON object; fields [code], [severity], [message] always present,
    [function], [line], [column] when known. *)
