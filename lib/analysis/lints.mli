(** Call-graph and binding lints (the RF2xx warning band).

    - RF201 dead function: unreachable from the entry points.
    - RF202 unused parameter.
    - RF203 non-productive recursion: a self-call passing every argument
      unchanged, which in a pure strict language can only diverge.
    - RF204 shadowed binding: [let] rebinds a visible name.
    - RF205 unused let: the bound value is never referenced.

    All lints are warnings; none change program meaning. *)

open Recflow_lang

val lint_program :
  ?spans:Parser.def_spans list -> entries:string list -> Program.t -> Diagnostic.t list
(** Diagnostics in definition order (callers sort with
    [Diagnostic.compare] for reports). *)
