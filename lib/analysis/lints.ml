open Recflow_lang

(* RF201: functions unreachable from the entry points. *)
let dead_functions graph ~entries =
  let live = Callgraph.reachable graph ~entries in
  List.filter_map
    (fun fn ->
      if List.mem fn live then None
      else
        Some
          (Diagnostic.make ~fn Diagnostic.Dead_function
             (Printf.sprintf "function %s is never called from the entry points" fn)))
    graph.Callgraph.functions

(* RF202: parameters the body never references. *)
let unused_parameters (d : Ast.def) =
  let free = Ast.free_vars d.body in
  List.filter_map
    (fun p ->
      if List.mem p free then None
      else
        Some
          (Diagnostic.make ~fn:d.name Diagnostic.Unused_parameter
             (Printf.sprintf "parameter %s is never used" p)))
    d.params

(* Walk a body in left-to-right pre-order over [Call] nodes (matching the
   parser's recorded span order) carrying the set of let-bound names, and
   report RF203/RF204/RF205 as we go. *)
let walk_lints (d : Ast.def) (call_spans : (string * Parser.span) list) =
  let spans = Array.of_list call_spans in
  let call_idx = ref 0 in
  let next_call_loc () =
    let i = !call_idx in
    incr call_idx;
    if i < Array.length spans then Some (Loc.of_span (snd spans.(i))) else None
  in
  let diags = ref [] in
  let warn ?loc code msg = diags := Diagnostic.make ~fn:d.name ?loc code msg :: !diags in
  (* [scope] is every visible binding, [rebound] the subset introduced by
     enclosing lets (a param referenced after rebinding is no longer the
     caller's argument, so RF203 must not fire on it). *)
  let rec go scope rebound (e : Ast.expr) =
    match e with
    | Ast.Int _ | Ast.Bool _ | Ast.Nil | Ast.Var _ -> ()
    | Ast.Prim (_, args) -> List.iter (go scope rebound) args
    | Ast.If (c, t, e) ->
      go scope rebound c;
      go scope rebound t;
      go scope rebound e
    | Ast.And (a, b) | Ast.Or (a, b) ->
      go scope rebound a;
      go scope rebound b
    | Ast.Let (x, bound, body) ->
      if List.mem x scope then
        warn Diagnostic.Shadowed_binding (Printf.sprintf "let %s shadows an earlier binding" x);
      if not (List.mem x (Ast.free_vars body)) then
        warn Diagnostic.Unused_let (Printf.sprintf "let-bound %s is never used" x);
      go scope rebound bound;
      go (x :: scope) (x :: rebound) body
    | Ast.Call (f, args) ->
      let loc = next_call_loc () in
      (* RF203: a self-call where every argument is the caller's own
         parameter, unchanged.  Pure + strict means such a call can only
         re-pose the identical question: if it is ever demanded, it
         diverges. *)
      (if f = d.name && List.length args = List.length d.params then
         let identical =
           List.for_all2
             (fun arg param ->
               match arg with
               | Ast.Var v -> v = param && not (List.mem v rebound)
               | _ -> false)
             args d.params
         in
         if identical then
           warn ?loc Diagnostic.Non_productive_recursion
             (Printf.sprintf "%s calls itself with every argument unchanged" f));
      List.iter (go scope rebound) args
  in
  go d.params [] d.body;
  List.rev !diags

let lint_program ?(spans : Parser.def_spans list = []) ~entries (program : Program.t) =
  let graph = Callgraph.of_program program in
  let spans_of fn =
    match List.find_opt (fun (s : Parser.def_spans) -> s.def_name = fn) spans with
    | Some s -> s.call_spans
    | None -> []
  in
  let per_def =
    List.concat_map
      (fun (d : Ast.def) -> unused_parameters d @ walk_lints d (spans_of d.name))
      (Program.defs program)
  in
  dead_functions graph ~entries @ per_def
