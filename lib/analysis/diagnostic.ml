type severity = Error | Warning

type code =
  | Parse_error
  | Duplicate_definition
  | Duplicate_parameter
  | Unbound_variable
  | Unknown_function
  | Arity_mismatch
  | Prim_arity
  | Type_mismatch
  | Infinite_type
  | Dead_function
  | Unused_parameter
  | Non_productive_recursion
  | Shadowed_binding
  | Unused_let

let all_codes =
  [
    Parse_error;
    Duplicate_definition;
    Duplicate_parameter;
    Unbound_variable;
    Unknown_function;
    Arity_mismatch;
    Prim_arity;
    Type_mismatch;
    Infinite_type;
    Dead_function;
    Unused_parameter;
    Non_productive_recursion;
    Shadowed_binding;
    Unused_let;
  ]

(* Stable rule codes: RF0xx structural validity, RF1xx types, RF2xx lints.
   Codes are part of the JSON output contract — never renumber. *)
let code_string = function
  | Parse_error -> "RF001"
  | Duplicate_definition -> "RF002"
  | Duplicate_parameter -> "RF003"
  | Unbound_variable -> "RF004"
  | Unknown_function -> "RF005"
  | Arity_mismatch -> "RF006"
  | Prim_arity -> "RF007"
  | Type_mismatch -> "RF101"
  | Infinite_type -> "RF102"
  | Dead_function -> "RF201"
  | Unused_parameter -> "RF202"
  | Non_productive_recursion -> "RF203"
  | Shadowed_binding -> "RF204"
  | Unused_let -> "RF205"

let severity_of_code = function
  | Parse_error | Duplicate_definition | Duplicate_parameter | Unbound_variable
  | Unknown_function | Arity_mismatch | Prim_arity | Type_mismatch | Infinite_type ->
    Error
  | Dead_function | Unused_parameter | Non_productive_recursion | Shadowed_binding | Unused_let
    ->
    Warning

type t = { code : code; fn : string option; loc : Loc.t option; message : string }

let make ?fn ?loc code message = { code; fn; loc; message }

let severity d = severity_of_code d.code

let severity_string = function Error -> "error" | Warning -> "warning"

let to_string d =
  let where =
    match (d.fn, d.loc) with
    | Some fn, Some loc -> Printf.sprintf " %s:%s" fn (Loc.to_string loc)
    | Some fn, None -> " " ^ fn
    | None, Some loc -> " " ^ Loc.to_string loc
    | None, None -> ""
  in
  Printf.sprintf "%s[%s]%s: %s" (severity_string (severity d)) (code_string d.code) where
    d.message

let pp ppf d = Format.pp_print_string ppf (to_string d)

(* Errors before warnings, then by function, location, code, message — a
   total deterministic order so reports are byte-stable. *)
let compare a b =
  let sev = function Error -> 0 | Warning -> 1 in
  let cmp_opt cmp a b =
    match (a, b) with
    | None, None -> 0
    | None, Some _ -> -1
    | Some _, None -> 1
    | Some x, Some y -> cmp x y
  in
  let c = Int.compare (sev (severity a)) (sev (severity b)) in
  if c <> 0 then c
  else
    let c = cmp_opt String.compare a.fn b.fn in
    if c <> 0 then c
    else
      let c = cmp_opt Loc.compare a.loc b.loc in
      if c <> 0 then c
      else
        let c = String.compare (code_string a.code) (code_string b.code) in
        if c <> 0 then c else String.compare a.message b.message

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json d =
  let fields =
    [
      Some ("code", json_string (code_string d.code));
      Some ("severity", json_string (severity_string (severity d)));
      Option.map (fun fn -> ("function", json_string fn)) d.fn;
      Option.map (fun (l : Loc.t) -> ("line", string_of_int l.line)) d.loc;
      Option.map (fun (l : Loc.t) -> ("column", string_of_int l.column)) d.loc;
      Some ("message", json_string d.message);
    ]
    |> List.filter_map Fun.id
  in
  "{" ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields) ^ "}"
