type severity = Error | Warning

type code =
  | Parse_error
  | Duplicate_definition
  | Duplicate_parameter
  | Unbound_variable
  | Unknown_function
  | Arity_mismatch
  | Prim_arity
  | Type_mismatch
  | Infinite_type
  | Dead_function
  | Unused_parameter
  | Non_productive_recursion
  | Shadowed_binding
  | Unused_let
  | Unbounded_recursion
  | Exponential_spawn
  | Spawn_in_nondec_cycle

let all_codes =
  [
    Parse_error;
    Duplicate_definition;
    Duplicate_parameter;
    Unbound_variable;
    Unknown_function;
    Arity_mismatch;
    Prim_arity;
    Type_mismatch;
    Infinite_type;
    Dead_function;
    Unused_parameter;
    Non_productive_recursion;
    Shadowed_binding;
    Unused_let;
    Unbounded_recursion;
    Exponential_spawn;
    Spawn_in_nondec_cycle;
  ]

(* Stable rule codes: RF0xx structural validity, RF1xx types, RF2xx lints,
   RF3xx cost/termination findings.
   Codes are part of the JSON output contract — never renumber. *)
let code_string = function
  | Parse_error -> "RF001"
  | Duplicate_definition -> "RF002"
  | Duplicate_parameter -> "RF003"
  | Unbound_variable -> "RF004"
  | Unknown_function -> "RF005"
  | Arity_mismatch -> "RF006"
  | Prim_arity -> "RF007"
  | Type_mismatch -> "RF101"
  | Infinite_type -> "RF102"
  | Dead_function -> "RF201"
  | Unused_parameter -> "RF202"
  | Non_productive_recursion -> "RF203"
  | Shadowed_binding -> "RF204"
  | Unused_let -> "RF205"
  | Unbounded_recursion -> "RF301"
  | Exponential_spawn -> "RF302"
  | Spawn_in_nondec_cycle -> "RF303"

let of_code_string s = List.find_opt (fun c -> String.equal (code_string c) s) all_codes

let severity_of_code = function
  | Parse_error | Duplicate_definition | Duplicate_parameter | Unbound_variable
  | Unknown_function | Arity_mismatch | Prim_arity | Type_mismatch | Infinite_type ->
    Error
  | Dead_function | Unused_parameter | Non_productive_recursion | Shadowed_binding | Unused_let
  | Unbounded_recursion | Exponential_spawn | Spawn_in_nondec_cycle ->
    Warning

type t = { code : code; fn : string option; loc : Loc.t option; message : string }

let make ?fn ?loc code message = { code; fn; loc; message }

let severity d = severity_of_code d.code

let severity_string = function Error -> "error" | Warning -> "warning"

let to_string d =
  let where =
    match (d.fn, d.loc) with
    | Some fn, Some loc -> Printf.sprintf " %s:%s" fn (Loc.to_string loc)
    | Some fn, None -> " " ^ fn
    | None, Some loc -> " " ^ Loc.to_string loc
    | None, None -> ""
  in
  Printf.sprintf "%s[%s]%s: %s" (severity_string (severity d)) (code_string d.code) where
    d.message

let pp ppf d = Format.pp_print_string ppf (to_string d)

(* Errors before warnings, then by function, location, code, message — a
   total deterministic order so reports are byte-stable. *)
let compare a b =
  let sev = function Error -> 0 | Warning -> 1 in
  let cmp_opt cmp a b =
    match (a, b) with
    | None, None -> 0
    | None, Some _ -> -1
    | Some _, None -> 1
    | Some x, Some y -> cmp x y
  in
  let c = Int.compare (sev (severity a)) (sev (severity b)) in
  if c <> 0 then c
  else
    let c = cmp_opt String.compare a.fn b.fn in
    if c <> 0 then c
    else
      let c = cmp_opt Loc.compare a.loc b.loc in
      if c <> 0 then c
      else
        let c = String.compare (code_string a.code) (code_string b.code) in
        if c <> 0 then c else String.compare a.message b.message

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* One-paragraph rule docs, printed by [recflow --explain RF<code>].  Kept
   here, next to the codes, so adding a code without its doc is a compile
   error (the match is exhaustive). *)
let explain = function
  | Parse_error ->
    "RF001 parse error: the source text is not a well-formed program. The \
     parser stops at the first offending token and reports its position; \
     nothing downstream (types, lints, cost) runs until the program parses."
  | Duplicate_definition ->
    "RF002 duplicate definition: two function definitions share one name. \
     Calls are resolved by name, so a duplicate would make the program \
     ambiguous; rename or delete one of the definitions."
  | Duplicate_parameter ->
    "RF003 duplicate parameter: a function declares the same parameter name \
     twice. The later binding would silently shadow the earlier one at every \
     use site, so the form is rejected outright."
  | Unbound_variable ->
    "RF004 unbound variable: an expression references a name that is neither \
     a parameter of the enclosing function nor a visible let binding. The \
     language has no globals, so every name must be bound locally."
  | Unknown_function ->
    "RF005 unknown function: a call site names a function the program never \
     defines. There is no external linking — the program text is the whole \
     world — so the call could never be dispatched."
  | Arity_mismatch ->
    "RF006 arity mismatch: a call passes a different number of arguments \
     than the callee declares. The language is first-order with no currying \
     or optional arguments, so call and definition arity must agree exactly."
  | Prim_arity ->
    "RF007 primitive arity: a built-in operator is applied to the wrong \
     number of arguments. Each primitive has a fixed arity (e.g. + takes \
     two, head takes one); the checker rejects any other shape."
  | Type_mismatch ->
    "RF101 type mismatch: whole-program unification found an expression \
     used at two incompatible types (e.g. an int where a list is required). \
     The evaluators would raise the same conflict at run time; the checker \
     reports it statically with the two irreconcilable types."
  | Infinite_type ->
    "RF102 infinite type: solving the type constraints requires a type that \
     contains itself (occurs-check failure), e.g. forcing 'a = list 'a. No \
     finite type can satisfy the program, so it is rejected."
  | Dead_function ->
    "RF201 dead function: the function is unreachable from the entry points \
     along the call graph. It can never run, so it is either leftover code \
     or evidence that a call site names the wrong function."
  | Unused_parameter ->
    "RF202 unused parameter: a declared parameter is never referenced in \
     the function body. Callers still pay to evaluate the argument (the \
     language is strict), so an unused parameter is wasted work and often a \
     sign the wrong variable is used inside the body."
  | Non_productive_recursion ->
    "RF203 non-productive recursion: a self-call passes every argument \
     unchanged. In a pure, strict language the call re-enters the same \
     state and can only diverge — there is no effect or laziness that could \
     break the cycle."
  | Shadowed_binding ->
    "RF204 shadowed binding: a let rebinds a name that is already visible \
     (a parameter or an enclosing let). The inner binding wins, which is \
     legal but error-prone; rename the inner binding to keep every use \
     unambiguous."
  | Unused_let ->
    "RF205 unused let: a let-bound value is never referenced afterwards. \
     The bound expression is still evaluated (strict semantics), so the \
     binding costs work and reads as if it mattered; delete it or use it."
  | Unbounded_recursion ->
    "RF301 statically unbounded recursion: a recursive cycle reachable from \
     the entry point admits no decreasing measure — every candidate ranking \
     function (an integer parameter, a list size, a pairwise difference or \
     a sum of those) is provably non-decreasing around the cycle, or every \
     path through the cycle unconditionally re-enters it. The cost analyzer \
     can place no bound on recursion depth, and the recovery-cost model \
     (paper \u{00a7}3.3) has no finite work estimate for the subtree. The rule \
     stays quiet when a measure merely cannot be classified; it fires only \
     on provable non-decrease."
  | Exponential_spawn ->
    "RF302 exponential task blow-up: a recursive cycle reachable from the \
     entry point re-enters itself two or more times per activation while no \
     candidate measure decreases, so the spawned task count grows without \
     bound and exponentially in the recursion — the worst corner of the \
     loss-rate \u{00d7} work-size plane for checkpoint admission. Bounded \
     divide-and-conquer (fib-style, with a decreasing argument) does not \
     trigger this; only provably non-decreasing cycles do."
  | Spawn_in_nondec_cycle ->
    "RF303 spawn inside a non-decreasing cycle: a recursive cycle with no \
     decreasing measure spawns work outside its own strongly-connected \
     component on every trip around the cycle. Each iteration enqueues \
     fresh subtree work whose total is statically unbounded, so checkpoint \
     admission cannot price the subtree and recovery may re-issue an \
     arbitrary amount of it. Bound the cycle with a decreasing argument or \
     hoist the spawn out of it."

let to_json d =
  let fields =
    [
      Some ("code", json_string (code_string d.code));
      Some ("severity", json_string (severity_string (severity d)));
      Option.map (fun fn -> ("function", json_string fn)) d.fn;
      Option.map (fun (l : Loc.t) -> ("line", string_of_int l.line)) d.loc;
      Option.map (fun (l : Loc.t) -> ("column", string_of_int l.column)) d.loc;
      Some ("message", json_string d.message);
    ]
    |> List.filter_map Fun.id
  in
  "{" ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields) ^ "}"
