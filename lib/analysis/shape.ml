open Recflow_lang

type recursion_class = Non_recursive | Self_recursive | Mutually_recursive

let recursion_class_string = function
  | Non_recursive -> "non-recursive"
  | Self_recursive -> "self-recursive"
  | Mutually_recursive -> "mutually recursive"

type fn_shape = {
  fn : string;
  fanout : int;
  recursion : recursion_class;
  calls : string list;  (** sorted distinct callees *)
}

type t = { shapes : fn_shape list (* sorted by function name *) }

(* Worst-case number of user calls one activation can issue.  Both
   evaluators respect these bounds: the serial evaluator takes one branch
   of an [If] and short-circuits [And]/[Or], and the demand-driven
   instance graph builds the condition plus at most one arm.  A [Call]'s
   arguments are evaluated by the caller, so they count against the
   caller's own activation — hence [1 + sum over args].

   The worklist keeps the walk stack-safe in list/let/prim spines; only
   [If]-nesting consumes OCaml stack (to take the max over the arms), and
   programs nest conditionals shallowly. *)
let rec fanout_of_expr expr =
  let rec go acc = function
    | [] -> acc
    | e :: rest -> (
      match e with
      | Ast.Int _ | Ast.Bool _ | Ast.Nil | Ast.Var _ -> go acc rest
      | Ast.Prim (_, args) -> go acc (args @ rest)
      | Ast.Call (_, args) -> go (acc + 1) (args @ rest)
      | Ast.And (a, b) | Ast.Or (a, b) -> go acc (a :: b :: rest)
      | Ast.Let (_, bound, body) -> go acc (bound :: body :: rest)
      | Ast.If (c, t, e) ->
        go (acc + max (fanout_of_expr t) (fanout_of_expr e)) (c :: rest))
  in
  go 0 [ expr ]

let of_program program =
  let graph = Callgraph.of_program program in
  let recursive = Callgraph.recursive_functions graph in
  let components = Callgraph.sccs graph in
  let shapes =
    List.map
      (fun (d : Ast.def) ->
        let callees = Callgraph.callees graph d.name in
        let recursion =
          if not (List.mem d.name recursive) then Non_recursive
          else if
            (* on a cycle; self-recursive iff its SCC is just itself *)
            List.exists (fun component -> component = [ d.name ]) components
          then Self_recursive
          else Mutually_recursive
        in
        { fn = d.name; fanout = fanout_of_expr d.body; recursion; calls = callees })
      (Program.defs program)
  in
  { shapes }

let find t fn = List.find_opt (fun s -> s.fn = fn) t.shapes

let fanout_bound t fn = match find t fn with Some s -> Some s.fanout | None -> None

let program_fanout_bound ?entries t program =
  let graph = Callgraph.of_program program in
  let fns =
    match entries with
    | Some entries -> Callgraph.reachable graph ~entries
    | None -> graph.functions
  in
  List.fold_left (fun acc s -> if List.mem s.fn fns then max acc s.fanout else acc) 0 t.shapes

let fn_shape_to_string s =
  Printf.sprintf "%s: fan-out <= %d, %s%s" s.fn s.fanout
    (recursion_class_string s.recursion)
    (match s.calls with [] -> "" | cs -> ", calls " ^ String.concat ", " cs)
