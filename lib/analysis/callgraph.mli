(** Static call graph over user-defined functions.

    Nodes are function names; there is an edge [f -> g] when [f]'s body
    contains a call to [g].  All outputs are deterministically ordered
    (functions sorted by name, SCCs in a stable order) so downstream
    reports are byte-stable. *)

open Recflow_lang

type t = {
  functions : string list;  (** sorted *)
  edges : (string * string list) list;  (** caller -> sorted distinct callees *)
}

val of_program : Program.t -> t

val callees : t -> string -> string list

val reachable : t -> entries:string list -> string list
(** Functions reachable from [entries] (entries not naming a function are
    ignored).  Sorted. *)

val roots : t -> string list
(** Functions never called by another function (self-calls excluded) —
    the natural entry candidates.  Falls back to every function when the
    whole graph is cyclic, so nothing is spuriously reported dead. *)

val sccs : t -> string list list
(** Strongly connected components, each sorted; iterative Tarjan. *)

val recursive_functions : t -> string list
(** Functions on some call-graph cycle (including self-loops).  Sorted. *)
