(** The whole-program checker: parse/validate, infer, lint, summarise.

    This is the one entry point the CLI, the workload registry and the
    tests go through.  A check never raises on bad input — every failure
    is a [Diagnostic.t] — and its outputs are deterministically ordered
    so reports are byte-stable across runs. *)

open Recflow_lang

type report = {
  diagnostics : Diagnostic.t list;  (** sorted by [Diagnostic.compare] *)
  program : Program.t option;  (** [None] when structurally invalid *)
  shape : Shape.t option;
  cost : Cost.t option;  (** static cost/depth analysis (PR 9) *)
  schemes : (string * Infer.fn_scheme) list;
  entries : string list;  (** resolved entry points *)
}

val schema : string
(** ["recflow.check/2"] — the [--check-json] document schema.  Version 2
    adds the top-level [schema] field and the per-function [cost]
    block. *)

val check_source : ?entries:string list -> string -> report
(** Check concrete syntax.  Parse errors become [RF001]. *)

val check_defs : ?spans:Parser.def_spans list -> ?entries:string list -> Ast.def list -> report
(** Check an already-parsed definition list (programmatic ASTs included —
    this is the only way to reach [RF007], since the parser rejects bad
    primitive arity itself). *)

val resolve_entries : requested:string list -> Program.t -> string list
(** Requested entries that exist in the program; falls back to the call
    graph's roots (and from there to every function) so cyclic programs
    are never all "dead". *)

val errors : report -> Diagnostic.t list

val warnings : report -> Diagnostic.t list

val ok : ?werror:bool -> report -> bool
(** No errors; with [~werror:true], no warnings either. *)

val summary_line : report -> string

val render_human : report -> string
(** Diagnostics, then a per-function [name : type [fan-out <= n, class]]
    table on success, then the summary line. *)

val render_json : report -> string
(** One JSON object:
    [{"schema":"recflow.check/2","errors":N,"warnings":N,"entries":[...],
      "diagnostics":[...],
      "functions":[{"name":..,"type":..,"fanout_bound":..,"recursion":..,
                    "cost":{"verdict":..,"measure":..,"floor":..,
                            "rec_fanout":..,"growth":..,"work":..}}]}] *)

val assert_clean : ?entries:string list -> Ast.def list -> unit
(** Runtime gate for workload/example construction.
    @raise Invalid_argument on the first analysis {e error} (warnings are
    the lint suite's job). *)
