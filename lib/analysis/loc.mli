(** Source locations for diagnostics: 1-based line and column. *)

type t = { line : int; column : int }

val make : line:int -> column:int -> t

val of_span : Recflow_lang.Parser.span -> t

val compare : t -> t -> int

val to_string : t -> string
(** ["LINE:COL"], the conventional compiler rendering. *)

val pp : Format.formatter -> t -> unit
