(** Spawn-shape analysis: static per-function fan-out bounds.

    The machine spawns one child activation per user call a running
    activation issues (minus calls the scheduler chooses to inline), and
    stamps each child with a digit drawn from a per-activation counter
    (§3.1 of the paper assumes this digit count is small).  The fan-out
    bound computed here is a sound static ceiling on that counter: no
    activation of [f] ever spawns more than [fanout] children, under
    either the serial evaluator or the demand-driven instance graph.

    Cross-checks downstream: [Stamp.max_digit] of every journal-observed
    child stamp must be strictly below the spawning function's bound, and
    the bound seeds the [gradient:auto] balance-policy weight. *)

open Recflow_lang

type recursion_class = Non_recursive | Self_recursive | Mutually_recursive

val recursion_class_string : recursion_class -> string

type fn_shape = {
  fn : string;
  fanout : int;  (** static bound on user calls per activation *)
  recursion : recursion_class;
  calls : string list;  (** sorted distinct callees *)
}

type t = { shapes : fn_shape list (* sorted by function name *) }

val fanout_of_expr : Ast.expr -> int

val of_program : Program.t -> t

val find : t -> string -> fn_shape option

val fanout_bound : t -> string -> int option

val program_fanout_bound : ?entries:string list -> t -> Program.t -> int
(** Max fan-out over functions reachable from [entries] (all functions
    when omitted).  [0] for a program that never calls. *)

val fn_shape_to_string : fn_shape -> string
(** ["fib: fan-out <= 2, self-recursive, calls fib"]. *)
