module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Node = Recflow_machine.Node
module Oracle = Recflow_machine.Oracle
module Workload = Recflow_workload.Workload
module Value = Recflow_lang.Value
module Vote = Recflow_recovery.Vote
module Rng = Recflow_sim.Rng
module Hdr = Recflow_stats.Hdr
module Json = Recflow_obs_core.Json
module Episode = Recflow_obs.Episode
module Metrics = Recflow_obs.Metrics

let schema = "recflow.service/1"

type verdict = Completed | Masked | Recovered | Shed_overload | Shed_suspects

let verdict_label = function
  | Completed -> "completed"
  | Masked -> "masked"
  | Recovered -> "recovered"
  | Shed_overload -> "shed.overload"
  | Shed_suspects -> "shed.suspects"

type record = {
  rid : int;
  arrival : int;
  verdict : verdict;
  finish : int option;
  value : Value.t option;
  disturbed_replicas : int;
}

type counts = {
  offered : int;
  completed : int;
  masked : int;
  recovered : int;
  shed_overload : int;
  shed_suspects : int;
}

let finished c = c.completed + c.masked + c.recovered

let shed c = c.shed_overload + c.shed_suspects

type outcome = {
  counts : counts;
  records : record list;
  sim_time : int;
  events : int;
  goodput : float;
  all_correct : bool;
  oracle : Oracle.report;
  cluster : Cluster.t;
}

(* One logical request mid-flight: k replica roots feeding one voter. *)
type state = Voting | Await_recovery | Done

type pending = {
  p_rid : int;
  p_arrival : int;
  vote : Value.t Vote.t;
  replica_disturbed : bool array;
  mutable disturbed : int;
  mutable state : state;
}

let run ?(failures = []) ~config ~workload ~size ~requests () =
  if requests < 1 then invalid_arg "Service.run: requests must be >= 1";
  (* Service roots sit at stamp depth 1 (their uid digit), so an absolute
     inline-depth limit would cut the call tree one level short of what the
     same config means in batch mode; shift it to compensate. *)
  let config =
    if config.Config.inline_depth = max_int then config
    else { config with Config.inline_depth = config.Config.inline_depth + 1 }
  in
  let svc = config.Config.service in
  let k = svc.Config.replicas in
  let cluster = Cluster.create config (Workload.program workload) in
  Recflow_fault.Plan.apply cluster failures;
  let expected = Workload.expected workload size in
  let fname = workload.Workload.entry in
  let args = workload.Workload.args size in
  (* A dedicated arrival stream: traffic must not perturb the machine's
     placement/jitter draws (same isolation trick as the chaos stream). *)
  let arr_rng = Rng.create (config.Config.seed lxor 0x0a5e12b7) in
  let lat_all = Cluster.latency cluster "service.latency" in
  let lat_disturbed = Cluster.latency cluster "service.latency.disturbed" in
  let records = Array.make requests None in
  let inflight = ref 0 in
  let nodes = Cluster.nodes cluster in
  let total_nodes = List.length nodes in
  let file p verdict ~finish ~value =
    records.(p.p_rid) <-
      Some
        {
          rid = p.p_rid;
          arrival = p.p_arrival;
          verdict;
          finish;
          value;
          disturbed_replicas = p.disturbed;
        }
  in
  let complete p verdict value =
    p.state <- Done;
    decr inflight;
    let now = Cluster.now cluster in
    Hdr.record lat_all (now - p.p_arrival);
    if p.disturbed > 0 then Hdr.record lat_disturbed (now - p.p_arrival);
    file p verdict ~finish:(Some now) ~value:(Some value)
  in
  (* The replication state machine.  Fast path: the vote decides from the
     healthy replicas.  Degenerate end: [Vote.give_up] accepts a strict
     plurality; failing even that, the request waits for checkpoint
     recovery to push an answer through — the paper's slow path, counted
     honestly as [Recovered]. *)
  let on_vote p = function
    | Vote.Decided v ->
      complete p (if p.disturbed > 0 && k > 1 then Masked else Completed) v
    | Vote.Inconclusive -> (
      match Vote.give_up p.vote with
      | Some v -> complete p Recovered v
      | None -> p.state <- Await_recovery)
    | Vote.Undecided -> ()
  in
  let replica_answer p v =
    match p.state with
    | Done -> ()
    | Await_recovery -> complete p Recovered v
    | Voting -> on_vote p (Vote.add p.vote v)
  in
  let replica_disturbed p i =
    if p.state = Voting && not p.replica_disturbed.(i) then begin
      p.replica_disturbed.(i) <- true;
      p.disturbed <- p.disturbed + 1;
      on_vote p (Vote.lose p.vote)
    end
  in
  let suspect_frac () =
    let suspected = Cluster.suspected_nodes cluster in
    let bad =
      List.fold_left
        (fun acc n ->
          if (not (Node.is_alive n)) || List.mem (Node.id n) suspected then acc + 1 else acc)
        0 nodes
    in
    float_of_int bad /. float_of_int total_nodes
  in
  let offer rid =
    let now = Cluster.now cluster in
    let shed_as verdict =
      let p =
        { p_rid = rid; p_arrival = now; vote = Vote.create ~replicas:1 ~equal:Value.equal;
          replica_disturbed = [||]; disturbed = 0; state = Done }
      in
      file p verdict ~finish:None ~value:None
    in
    if !inflight >= svc.Config.max_inflight then shed_as Shed_overload
    else if suspect_frac () > svc.Config.shed_suspect_frac then shed_as Shed_suspects
    else begin
      let p =
        {
          p_rid = rid;
          p_arrival = now;
          vote = Vote.create ~replicas:k ~equal:Value.equal;
          replica_disturbed = Array.make k false;
          disturbed = 0;
          state = Voting;
        }
      in
      incr inflight;
      (* Replicas avoid each other's current hosts: co-located replicas
         would fall to one failure together, voiding the vote's point. *)
      let dests = ref [] in
      for i = 0 to k - 1 do
        let uid =
          Cluster.submit cluster ~avoid:!dests
            ~on_answer:(fun v -> replica_answer p v)
            ~on_disturbed:(fun _reason -> replica_disturbed p i)
            ~fname ~args ()
        in
        match Cluster.request_dest cluster uid with
        | Some d when not (List.mem d !dests) -> dests := d :: !dests
        | Some _ | None -> ()
      done
    end
  in
  let next_rid = ref 0 in
  let gap () = max 1 (int_of_float (ceil (Rng.exponential arr_rng svc.Config.arrival_mean))) in
  let rec arrival () =
    let rid = !next_rid in
    incr next_rid;
    offer rid;
    if !next_rid < requests then Cluster.schedule_callback cluster ~delay:(gap ()) arrival
    else Cluster.close_arrivals cluster
  in
  Cluster.begin_service cluster;
  Cluster.schedule_callback cluster ~delay:(gap ()) arrival;
  let run_outcome = Cluster.run cluster in
  let oracle = Oracle.assert_ok cluster in
  let records =
    Array.to_list records
    |> List.map (function
         | Some r -> r
         | None -> failwith "Service.run: request neither finished nor shed")
  in
  let count v = List.length (List.filter (fun r -> r.verdict = v) records) in
  let counts =
    {
      offered = requests;
      completed = count Completed;
      masked = count Masked;
      recovered = count Recovered;
      shed_overload = count Shed_overload;
      shed_suspects = count Shed_suspects;
    }
  in
  let all_correct =
    List.for_all
      (fun r ->
        match r.value with
        | Some v -> Value.equal v expected
        | None -> r.verdict = Shed_overload || r.verdict = Shed_suspects)
      records
  in
  let sim_time = run_outcome.Cluster.sim_time in
  let goodput =
    if sim_time = 0 then 0.0 else 1000.0 *. float_of_int (finished counts) /. float_of_int sim_time
  in
  { counts; records; sim_time; events = run_outcome.Cluster.events; goodput; all_correct;
    oracle; cluster }

let to_json ?workload ?size outcome =
  let journal = Cluster.journal outcome.cluster in
  let episodes = Episode.analyze journal in
  let c = outcome.counts in
  let latency =
    (* every family the machine recorded, plus the journal-derived episode
       durations — same shape as the recflow.metrics/1 latency block *)
    let ep = Hdr.create () in
    List.iter
      (fun (e : Episode.t) ->
        match e.Episode.recovery_latency with Some d -> Hdr.record ep d | None -> ())
      episodes;
    let families = Cluster.latency_hists outcome.cluster in
    let families =
      if Hdr.count ep > 0 then
        List.sort (fun (a, _) (b, _) -> String.compare a b) (("episode.duration", ep) :: families)
      else families
    in
    Json.Obj (List.map (fun (name, h) -> (name, Metrics.hdr_json h)) families)
  in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("meta", Metrics.meta_json ?workload ?size (Cluster.config outcome.cluster));
      ( "traffic",
        Json.Obj
          [
            ("offered", Json.Int c.offered);
            ("completed", Json.Int c.completed);
            ("masked", Json.Int c.masked);
            ("recovered", Json.Int c.recovered);
            ("shed_overload", Json.Int c.shed_overload);
            ("shed_suspects", Json.Int c.shed_suspects);
            ("finished", Json.Int (finished c));
            ("goodput_per_kilotick", Json.Float outcome.goodput);
          ] );
      ("latency", latency);
      ( "outcome",
        Json.Obj
          [
            ("sim_time", Json.Int outcome.sim_time);
            ("events", Json.Int outcome.events);
            ("all_correct", Json.Bool outcome.all_correct);
            ("oracle_ok", Json.Bool (Oracle.ok outcome.oracle));
          ] );
      ("episode_summary", Episode.aggregate_to_json (Episode.aggregate episodes));
    ]
