(** Long-running service over one persistent cluster: an open-loop traffic
    generator feeds a stream of independent root requests into service-mode
    {!Recflow_machine.Cluster}, with per-request k-way replication and
    §5.3 majority voting as a failure-masking fast path, admission
    control / load shedding for graceful degradation, and per-request SLO
    accounting (latency percentiles, goodput, shed/masked/recovered
    counts).

    The traffic model is Poisson: inter-arrival gaps are exponential draws
    (mean [Config.service.arrival_mean]) from a dedicated RNG stream, taken
    inside the event loop so the whole stream is a deterministic function
    of the seed.  Each logical request is dispatched as [k] independent
    replica roots placed on distinct processors; the first majority among
    their answers completes the request ([Completed], or [Masked] when a
    replica's host had died or been suspected mid-flight).  When a majority
    becomes impossible the voter's {!Recflow_recovery.Vote.give_up}
    accepts a strict plurality, and failing even that, the request waits
    for the paper's checkpoint recovery to deliver — both counted
    [Recovered], the slow path replication exists to hide.

    Admission control sheds an arrival (never executed, honestly counted)
    when too many requests are already in flight ([Shed_overload]) or when
    too much of the cluster is dead or suspected ([Shed_suspects]).

    Every finished request is oracle-checked: the run ends by draining the
    cluster to quiescence, asserting the per-request recovery oracle, and
    comparing every delivered value against the workload's serial
    reference. *)

module Config = Recflow_machine.Config
module Cluster = Recflow_machine.Cluster
module Oracle = Recflow_machine.Oracle
module Workload = Recflow_workload.Workload
module Value = Recflow_lang.Value

val schema : string
(** ["recflow.service/1"] *)

type verdict =
  | Completed  (** vote decided, no replica ever disturbed *)
  | Masked
      (** at least one replica's root was re-dispatched (its host died or
          was suspected) but the surviving replicas decided first — the
          failure was masked out of the latency path *)
  | Recovered
      (** the answer arrived through the slow path: an accepted plurality
          after the vote went inconclusive, or a checkpoint-recovered
          replica answering after every fast option was exhausted *)
  | Shed_overload  (** rejected at admission: in-flight depth at the cap *)
  | Shed_suspects
      (** rejected at admission: dead + suspected processor fraction above
          the degradation threshold *)

val verdict_label : verdict -> string

type record = {
  rid : int;  (** logical request id, in arrival order *)
  arrival : int;  (** tick the request arrived *)
  verdict : verdict;
  finish : int option;  (** completion tick; [None] for shed requests *)
  value : Value.t option;  (** delivered answer; [None] for shed requests *)
  disturbed_replicas : int;  (** replicas whose root was re-dispatched *)
}

type counts = {
  offered : int;  (** arrivals generated (shed included) *)
  completed : int;
  masked : int;
  recovered : int;
  shed_overload : int;
  shed_suspects : int;
}

val finished : counts -> int
(** [completed + masked + recovered]. *)

val shed : counts -> int
(** [shed_overload + shed_suspects]. *)

type outcome = {
  counts : counts;
  records : record list;  (** one per offered request, in rid order *)
  sim_time : int;
  events : int;
  goodput : float;  (** finished requests per 1000 simulated ticks *)
  all_correct : bool;
      (** every executed request delivered exactly the serial reference
          answer *)
  oracle : Oracle.report;
  cluster : Cluster.t;
      (** the drained cluster, for journals / counters / latency families —
          request latencies live in the ["service.latency"] and
          ["service.latency.disturbed"] histogram families *)
}

val run :
  ?failures:Recflow_fault.Plan.t ->
  config:Config.t ->
  workload:Workload.t ->
  size:Workload.size ->
  requests:int ->
  unit ->
  outcome
(** Run a [requests]-long stream to completion (drain, oracle, reference
    check).  Traffic knobs come from [config.service]; failures and chaos
    from [failures] / [config.chaos] strike mid-stream like any batch run.
    The configured [inline_depth] is depth-shifted by one internally so a
    grain limit means the same thing as in batch mode (service roots sit
    at stamp depth 1).
    @raise Invalid_argument on an invalid config or [requests < 1].
    @raise Failure when the recovery oracle finds a violation. *)

val to_json : ?workload:string -> ?size:string -> outcome -> Recflow_obs_core.Json.t
(** The [recflow.service/1] document: config metadata, traffic counts,
    goodput, request latency percentile blocks (p50/p90/p99/p999) for all
    and for disturbed requests, every other cluster latency family, and
    the recovery-episode summary. *)
