module Router = Recflow_net.Router

type spec =
  | Gradient of { weight : int }
  | Random
  | Round_robin
  | Static_hash
  | Neighborhood of { radius : int }
  | Gradient_distributed of { threshold : int }

let spec_to_string = function
  | Gradient { weight } -> Printf.sprintf "gradient:%d" weight
  | Random -> "random"
  | Round_robin -> "round-robin"
  | Static_hash -> "static"
  | Neighborhood { radius } -> Printf.sprintf "neighborhood:%d" radius
  | Gradient_distributed { threshold } -> Printf.sprintf "gradient-distributed:%d" threshold

let spec_of_string s =
  match String.split_on_char ':' s with
  | [ "gradient" ] -> Ok (Gradient { weight = 2 })
  | [ "gradient"; w ] -> (
    match int_of_string_opt w with
    | Some w when w >= 0 -> Ok (Gradient { weight = w })
    | _ -> Error (Printf.sprintf "bad gradient weight in %S" s))
  | [ "random" ] -> Ok Random
  | [ "round-robin" ] | [ "rr" ] -> Ok Round_robin
  | [ "static" ] -> Ok Static_hash
  | [ "neighborhood" ] -> Ok (Neighborhood { radius = 1 })
  | [ "neighborhood"; r ] -> (
    match int_of_string_opt r with
    | Some r when r >= 0 -> Ok (Neighborhood { radius = r })
    | _ -> Error (Printf.sprintf "bad neighborhood radius in %S" s))
  | [ "gradient-distributed" ] -> Ok (Gradient_distributed { threshold = 1 })
  | [ "gradient-distributed"; t ] -> (
    match int_of_string_opt t with
    | Some t when t >= 0 -> Ok (Gradient_distributed { threshold = t })
    | _ -> Error (Printf.sprintf "bad gradient-distributed threshold in %S" s))
  | _ -> Error (Printf.sprintf "unknown policy %S" s)

(* A wide spawner floods its neighbourhood quickly, so distance should
   cost more (spawns stay local and spread in waves); narrow programs
   need distance to be cheap or nothing ever leaves the origin.  Clamped
   to the weights that behave sensibly on the experiment topologies. *)
let suggest_gradient_weight ~fanout = max 1 (min 4 fanout)

(* Sodre-style checkpoint admission: a checkpoint stored at depth d costs
   [ckpt_cost] for certain (on the spawn critical path), and insures
   against losing the subtree below it — an expected
   [loss_rate * work_per_activation * (activations below depth d)]
   recomputation.  Admit checkpoints down to the deepest level where the
   insurance still pays for itself; below that, skipping the record and
   regenerating from the surviving parent is cheaper. *)
let suggest_ckpt_admission ~work_per_activation ~fanout ~depth_bound ~loss_rate ~ckpt_cost =
  match depth_bound with
  | None -> None (* no static depth bound: nothing to reason from, admit all *)
  | Some depth_bound ->
    if ckpt_cost <= 0 then None (* recording is free: pruning buys nothing *)
    else begin
      let work = float_of_int (max 1 work_per_activation) in
      let b = float_of_int (max 1 fanout) in
      let subtree_work d =
        let levels = max 0 (depth_bound - d) in
        let rec go i acc pow =
          if i > levels || acc > 1e15 then acc else go (i + 1) (acc +. pow) (pow *. b)
        in
        work *. go 0 0.0 1.0
      in
      let rec cutoff d =
        if d >= depth_bound then depth_bound
        else if loss_rate *. subtree_work (d + 1) < float_of_int ckpt_cost then d
        else cutoff (d + 1)
      in
      Some (max 1 (cutoff 1))
    end

type view = { router : Router.t; pressure : int -> int }

type t = { spec : spec; rng : Recflow_sim.Rng.t; mutable rr_next : int }

let create ?(seed = 0x5eed) spec = { spec; rng = Recflow_sim.Rng.create seed; rr_next = 0 }

let spec t = t.spec

let choose t view ~origin ~key =
  (* O(1) existence check; only the policies that really enumerate the
     live set pay for the O(P) list below. *)
  if Router.alive_count view.router = 0 then invalid_arg "Policy.choose: no live node";
  let alive () = Router.alive_nodes view.router in
  match t.spec with
  | Random ->
    let arr = Array.of_list (alive ()) in
    Recflow_sim.Rng.pick t.rng arr
  | Round_robin ->
    let alive = alive () in
    let n = List.length alive in
    let idx = t.rr_next mod n in
    t.rr_next <- t.rr_next + 1;
    List.nth alive idx
  | Static_hash ->
    (* Deterministic placement over the *configured* node set, ignoring
       liveness: exactly what a static allocator does.  No live-set
       enumeration at all — this is the O(1) fast path the scale runs
       lean on. *)
    let n = Recflow_net.Topology.size (Router.topology view.router) in
    (* Knuth multiplicative scrambling keeps consecutive stamps apart. *)
    abs (key * 2654435761) mod n
  | Gradient { weight } ->
    (* Walk downhill on [pressure + weight * distance-from-origin]; the
       origin itself competes, so light local load keeps tasks nearby. *)
    let score node =
      let hops =
        match Router.distance view.router origin node with
        | Some h -> h
        | None ->
          (* origin dead (it is failing while spawning): fall back to 0 so
             placement degenerates to pure pressure. *)
          0
      in
      view.pressure node + (weight * hops)
    in
    let best =
      List.fold_left
        (fun acc node ->
          let s = score node in
          match acc with
          | Some (_, best_s) when best_s <= s -> acc
          | _ -> Some (node, s))
        None (alive ())
    in
    (match best with Some (node, _) -> node | None -> assert false)
  | Neighborhood { radius } ->
    (* Restrict the gradient surface to the origin's r-hop ball; if the
       whole ball is dead, take the nearest live node anyway (the task
       must go somewhere). *)
    let alive = alive () in
    let dist node = Router.distance view.router origin node in
    let in_ball = List.filter (fun n -> match dist n with Some d -> d <= radius | None -> false) alive in
    let candidates = if in_ball = [] then alive else in_ball in
    let best =
      List.fold_left
        (fun acc node ->
          let s = (view.pressure node, Option.value ~default:max_int (dist node)) in
          match acc with
          | Some (_, best_s) when compare best_s s <= 0 -> acc
          | _ -> Some (node, s))
        None candidates
    in
    (match best with Some (node, _) -> node | None -> assert false)
  | Gradient_distributed _ ->
    (* Placement proper happens node-locally in the machine; this cluster-
       level fallback (used for the root dispatch and static analyses)
       degenerates to least pressure among all live nodes. *)
    let best =
      List.fold_left
        (fun acc node ->
          let s = view.pressure node in
          match acc with
          | Some (_, best_s) when best_s <= s -> acc
          | _ -> Some (node, s))
        None (alive ())
    in
    (match best with Some (node, _) -> node | None -> assert false)

let is_static t = match t.spec with Static_hash -> true | _ -> false
