(** Dynamic task placement policies.

    §3.3 of the paper makes load balancing part of the recovery story: with
    *dynamic* allocation (their gradient model, ref [10]) a re-issued task
    is indistinguishable from an original one and needs no linkage fix-up,
    whereas *static* allocation must reassign tasks bound to a dead node and
    patch return addresses.  We provide:

    - [Gradient]: a pressure-surface approximation of the Lin–Keller
      gradient model — a spawn flows toward the live node minimising
      [pressure + weight * hops from origin], i.e. downhill on the demand
      gradient anchored at under-loaded nodes;
    - [Random]: uniform over live nodes;
    - [Round_robin]: cyclic over live nodes;
    - [Static_hash]: placement fixed by a hash of the task's identity —
      the static baseline for the Q7 ablation.  It may nominate a dead
      node; the machine layer then charges a reassignment penalty and
      re-places the task dynamically.

    The policy sees a [view]: the router (alive set + distances) and a
    pressure function (ready-queue length per node).  The gradient model in
    the real machine would propagate pressure hop-by-hop; sampling the
    current queue lengths is the standard simulation shortcut and is noted
    in DESIGN.md. *)

type spec =
  | Gradient of { weight : int }  (** [weight]: hops-to-pressure exchange rate, >= 0 *)
  | Random
  | Round_robin
  | Static_hash
  | Neighborhood of { radius : int }
      (** least-pressure node within [radius] hops of the origin (self
          included) — models Grit-style schemes where tasks may only move
          to immediate neighbours; falls back to the nearest live node
          when the whole neighbourhood is dead *)
  | Gradient_distributed of { threshold : int }
      (** the gradient model implemented distributedly, as in Lin & Keller
          [10]: nodes periodically exchange gradient values with their
          topology neighbours ([Config.gradient_period]) and a spawn stays
          local while the run queue is at most [threshold], otherwise it
          flows to the neighbour with the lowest gradient value.  The
          placement decision is made inside {!Recflow_machine.Node} from
          node-local state only; {!choose} (used for the root dispatch)
          falls back to least-pressure-among-all. *)

val spec_to_string : spec -> string

val spec_of_string : string -> (spec, string) result
(** "gradient", "gradient:W", "random", "round-robin", "static",
    "neighborhood", "neighborhood:R", "gradient-distributed",
    "gradient-distributed:T". *)

val suggest_gradient_weight : fanout:int -> int
(** A [Gradient] weight seeded from a program's static fan-out bound (see
    {!Recflow_analysis.Shape}): wide spawners pay more per hop so demand
    spreads in waves, narrow ones pay less so work still leaves the
    origin.  Pure arithmetic — no dependency on the analyser. *)

val suggest_ckpt_admission :
  work_per_activation:int ->
  fanout:int ->
  depth_bound:int option ->
  loss_rate:float ->
  ckpt_cost:int ->
  int option
(** The adaptive checkpoint admission cutoff for
    [Config.ckpt_mode = Adaptive]: the deepest stamp depth at which a
    checkpoint's expected insurance value — [loss_rate] times the static
    work bound of the subtree below it ([work_per_activation] per task,
    fan-out [fanout], depth capped by [depth_bound]) — still covers its
    certain [ckpt_cost] on the spawn critical path.  [None] means "admit
    everything" (no static depth bound to reason from, or recording is
    free); [Some d] is always >= 1, so the root's children stay covered.
    Pure arithmetic — the caller feeds it numbers from
    {!Recflow_analysis.Cost.entry_bounds}. *)

type view = { router : Recflow_net.Router.t; pressure : int -> int }

type t

val create : ?seed:int -> spec -> t

val spec : t -> spec

val choose : t -> view -> origin:int -> key:int -> int
(** Pick a destination node for a task spawned at [origin].  [key] is a
    stable identity hash of the task (used only by [Static_hash]).  The
    returned node may be dead only under [Static_hash]; all dynamic
    policies return a live node.
    @raise Invalid_argument if no node is alive. *)

val is_static : t -> bool
