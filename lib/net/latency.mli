(** Message latency model.

    Latency is [base + per_hop * hops], optionally with deterministic
    pseudo-random jitter in [\[0, jitter\]] drawn from a caller-supplied
    generator.  All quantities are simulation ticks. *)

type t = { base : int; per_hop : int; jitter : int }

val default : t
(** base 20, per_hop 10, jitter 0 — a switch traversal dominated model. *)

val no_jitter : base:int -> per_hop:int -> t

val delay : ?rng:(int -> int) -> t -> hops:int -> int
(** [delay ~rng m ~hops]; [rng bound] must return a value in [\[0, bound)]
    and is consulted only when [m.jitter > 0]. *)
