type t = Full of int | Ring of int | Mesh of int * int | Hypercube of int

let size = function
  | Full n | Ring n -> n
  | Mesh (r, c) -> r * c
  | Hypercube d -> 1 lsl d

let to_string = function
  | Full n -> Printf.sprintf "full:%d" n
  | Ring n -> Printf.sprintf "ring:%d" n
  | Mesh (r, c) -> Printf.sprintf "mesh:%dx%d" r c
  | Hypercube d -> Printf.sprintf "cube:%d" d

let of_string s =
  let fail () = Error (Printf.sprintf "cannot parse topology %S (want full:N, ring:N, mesh:RxC, cube:D)" s) in
  match String.split_on_char ':' s with
  | [ "full"; n ] -> (
    match int_of_string_opt n with Some n when n > 0 -> Ok (Full n) | _ -> fail ())
  | [ "ring"; n ] -> (
    match int_of_string_opt n with Some n when n > 0 -> Ok (Ring n) | _ -> fail ())
  | [ "cube"; d ] -> (
    match int_of_string_opt d with Some d when d >= 0 && d <= 20 -> Ok (Hypercube d) | _ -> fail ())
  | [ "mesh"; dims ] -> (
    match String.split_on_char 'x' dims with
    | [ r; c ] -> (
      match (int_of_string_opt r, int_of_string_opt c) with
      | Some r, Some c when r > 0 && c > 0 -> Ok (Mesh (r, c))
      | _ -> fail ())
    | _ -> fail ())
  | _ -> fail ()

let check t node =
  if node < 0 || node >= size t then
    invalid_arg (Printf.sprintf "Topology: node %d out of range for %s" node (to_string t))

let neighbors t node =
  check t node;
  match t with
  | Full n -> List.init n Fun.id |> List.filter (fun i -> i <> node)
  | Ring n ->
    if n = 1 then []
    else if n = 2 then [ 1 - node ]
    else List.sort_uniq compare [ (node + 1) mod n; (node + n - 1) mod n ]
  | Mesh (rows, cols) ->
    let r = node / cols and c = node mod cols in
    let candidates = [ (r - 1, c); (r + 1, c); (r, c - 1); (r, c + 1) ] in
    candidates
    |> List.filter (fun (r', c') -> r' >= 0 && r' < rows && c' >= 0 && c' < cols)
    |> List.map (fun (r', c') -> (r' * cols) + c')
    |> List.sort compare
  | Hypercube d -> List.init d (fun bit -> node lxor (1 lsl bit)) |> List.sort compare

let ideal_distance t a b =
  check t a;
  check t b;
  if a = b then 0
  else
    match t with
    | Full _ -> 1
    | Ring n ->
      let d = abs (a - b) in
      min d (n - d)
    | Mesh (_, cols) ->
      let ra = a / cols and ca = a mod cols in
      let rb = b / cols and cb = b mod cols in
      abs (ra - rb) + abs (ca - cb)
    | Hypercube _ ->
      let rec popcount x = if x = 0 then 0 else (x land 1) + popcount (x lsr 1) in
      popcount (a lxor b)

let diameter t =
  match t with
  | Full n -> if n <= 1 then 0 else 1
  | Ring n -> n / 2
  | Mesh (r, c) -> r - 1 + (c - 1)
  | Hypercube d -> d
