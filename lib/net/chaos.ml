module Rng = Recflow_sim.Rng

type partition = { p_from : int; p_until : int; groups : int list list }

type spec = {
  drop_rate : float;
  dup_rate : float;
  reorder_rate : float;
  reorder_spread : int;
  spike_rate : float;
  spike_max : int;
  partitions : partition list;
}

let none =
  {
    drop_rate = 0.0;
    dup_rate = 0.0;
    reorder_rate = 0.0;
    reorder_spread = 0;
    spike_rate = 0.0;
    spike_max = 0;
    partitions = [];
  }

let quiet s =
  s.drop_rate = 0.0 && s.dup_rate = 0.0 && s.reorder_rate = 0.0 && s.spike_rate = 0.0
  && s.partitions = []

let lossy s = s.drop_rate > 0.0 || s.partitions <> []

let validate s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let in_unit_half_open r = r >= 0.0 && r < 1.0 in
  let in_unit_closed r = r >= 0.0 && r <= 1.0 in
  if not (in_unit_half_open s.drop_rate) then err "chaos drop_rate must be in [0,1)"
  else if not (in_unit_half_open s.dup_rate) then err "chaos dup_rate must be in [0,1)"
  else if not (in_unit_closed s.reorder_rate) then err "chaos reorder_rate must be in [0,1]"
  else if not (in_unit_closed s.spike_rate) then err "chaos spike_rate must be in [0,1]"
  else if s.reorder_rate > 0.0 && s.reorder_spread < 1 then
    err "chaos reorder_spread must be >= 1 when reorder_rate > 0"
  else if s.spike_rate > 0.0 && s.spike_max < 1 then
    err "chaos spike_max must be >= 1 when spike_rate > 0"
  else
    let check_partition p =
      if p.p_from < 0 || p.p_until <= p.p_from then
        err "chaos partition window must satisfy 0 <= from < until"
      else if p.groups = [] || List.exists (fun g -> g = []) p.groups then
        err "chaos partition needs non-empty groups"
      else if List.exists (fun g -> List.exists (fun x -> x < 0) g) p.groups then
        err "chaos partition groups must list processor ids (>= 0)"
      else
        let all = List.concat p.groups in
        if List.length (List.sort_uniq compare all) <> List.length all then
          err "chaos partition groups must be disjoint"
        else Ok ()
    in
    List.fold_left
      (fun acc p -> match acc with Error _ -> acc | Ok () -> check_partition p)
      (Ok ()) s.partitions

(* Island index of [x]: position of the group listing it, or -1 for the
   implicit island of unlisted processors. *)
let group_of groups x =
  let rec go i = function [] -> -1 | g :: rest -> if List.mem x g then i else go (i + 1) rest in
  go 0 groups

let severed s ~now ~src ~dst =
  src >= 0 && dst >= 0 && src <> dst
  && List.exists
       (fun p ->
         now >= p.p_from && now < p.p_until && group_of p.groups src <> group_of p.groups dst)
       s.partitions

type t = { spec : spec; rng : Rng.t }

let create ~seed spec = { spec; rng = Rng.create seed }

let spec t = t.spec

type verdict = Pass of { extra_delays : int list } | Drop of [ `Loss | `Partition ]

let decide t ~now ~src ~dst =
  let s = t.spec in
  if src = dst then Pass { extra_delays = [ 0 ] }
  else if severed s ~now ~src ~dst then Drop `Partition
  else if s.drop_rate > 0.0 && Rng.float t.rng 1.0 < s.drop_rate then Drop `Loss
  else begin
    (* Each delivered copy draws its own reorder / spike delay, so a
       duplicate usually lands at a different instant than the original. *)
    let extra () =
      let d =
        if s.reorder_rate > 0.0 && Rng.float t.rng 1.0 < s.reorder_rate then
          1 + Rng.int t.rng s.reorder_spread
        else 0
      in
      if s.spike_rate > 0.0 && Rng.float t.rng 1.0 < s.spike_rate then
        d + 1 + Rng.int t.rng s.spike_max
      else d
    in
    let first = extra () in
    let delays =
      if s.dup_rate > 0.0 && Rng.float t.rng 1.0 < s.dup_rate then [ first; extra () ]
      else [ first ]
    in
    Pass { extra_delays = delays }
  end
