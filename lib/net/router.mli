(** Hop-distance routing that accounts for dead nodes.

    Messages between live nodes are store-and-forward routed through live
    intermediate nodes only.  Distances come from per-source BFS rows
    computed on demand and dropped when a node dies or revives, and a
    [Full] topology needs no BFS at all (every live pair is one hop) —
    so a 1k-processor crossbar never pays the old all-pairs rebuild.  A
    destination
    that is unreachable — dead, or cut off because every route crosses dead
    nodes — is reported as such; per §1 of the paper the sender must then
    treat it as faulty. *)

type t

val create : Topology.t -> t

val topology : t -> Topology.t

val kill : t -> int -> unit
(** Mark a node dead.  Idempotent. *)

val revive : t -> int -> unit
(** Undo {!kill} (used by tests; the paper's model is fail-stop). *)

val alive : t -> int -> bool

val alive_nodes : t -> int list
(** Sorted ids of live nodes.  Allocates O(P); hot paths that only need
    existence or cardinality should use {!alive_count}. *)

val alive_count : t -> int
(** Number of live nodes, maintained incrementally — O(1). *)

val distance : t -> int -> int -> int option
(** [distance t a b] is the hop count of the shortest live route, [None]
    when [b] is dead or unreachable from [a].  [Some 0] when [a = b] and
    alive. *)

val reachable : t -> int -> int -> bool
