type t = { base : int; per_hop : int; jitter : int }

let default = { base = 20; per_hop = 10; jitter = 0 }

let no_jitter ~base ~per_hop = { base; per_hop; jitter = 0 }

let delay ?rng t ~hops =
  if hops < 0 then invalid_arg "Latency.delay: negative hop count";
  let fixed = t.base + (t.per_hop * hops) in
  if t.jitter <= 0 then fixed
  else
    match rng with
    | None -> fixed
    | Some draw -> fixed + draw (t.jitter + 1)
