(** Deterministic network perturbation: message loss, duplication,
    reordering, delay spikes and scheduled partition windows.

    The cluster consults a chaos instance once per transmitted message (per
    hop through the send path, not per physical link) and obtains a verdict:
    drop the message, or deliver one or more copies with extra delay.  All
    randomness comes from the instance's own splitmix64 stream, seeded from
    the run seed, so a chaotic run is exactly replayable and independent of
    the latency-jitter and placement streams.

    A {!spec} with every rate zero and no partitions ({!quiet}) draws
    nothing and perturbs nothing; the cluster skips the layer entirely so
    existing runs stay bit-identical.  A {!lossy} spec (positive drop rate
    or any partition window) destroys messages and therefore requires the
    reliable transport ([Config.reliable]); validation enforces this. *)

type partition = {
  p_from : int;  (** window start, inclusive (simulation ticks) *)
  p_until : int;  (** window end, exclusive *)
  groups : int list list;
      (** islands of processor ids.  During the window a message passes
          only between endpoints of the same island; processors listed in
          no group form one implicit extra island.  Negative ids (the
          super-root, i.e. the cluster membership service) are never
          severed. *)
}

type spec = {
  drop_rate : float;  (** P(message destroyed), in [\[0,1)] *)
  dup_rate : float;  (** P(message delivered twice), in [\[0,1)] *)
  reorder_rate : float;
      (** P(copy held back by a uniform extra delay in
          [\[1, reorder_spread\]]), in [\[0,1\]] *)
  reorder_spread : int;
  spike_rate : float;
      (** P(copy hit by a congestion spike of uniform extra delay in
          [\[1, spike_max\]]), in [\[0,1\]]; independent of reordering *)
  spike_max : int;
  partitions : partition list;
}

val none : spec
(** All rates zero, no partitions. *)

val quiet : spec -> bool
(** The spec can never perturb a message (chaos layer may be skipped). *)

val lossy : spec -> bool
(** The spec can destroy messages: positive drop rate or a partition. *)

val validate : spec -> (unit, string) result

val severed : spec -> now:int -> src:int -> dst:int -> bool
(** Pure partition check: is the [src]→[dst] link cut at time [now]?
    Always false for self-sends and super-root endpoints. *)

type t
(** A chaos instance: a spec plus its private random stream. *)

val create : seed:int -> spec -> t

val spec : t -> spec

type verdict =
  | Pass of { extra_delays : int list }
      (** deliver one copy per element, each with that extra delay *)
  | Drop of [ `Loss | `Partition ]

val decide : t -> now:int -> src:int -> dst:int -> verdict
(** Verdict for one message about to be transmitted.  Self-sends
    ([src = dst]) always pass untouched and draw nothing. *)
