(** Interconnection topologies for the simulated multiprocessor.

    Nodes are numbered [0 .. size-1].  The topology fixes the neighbour
    relation; {!Router} computes hop distances (possibly avoiding dead
    nodes).  Rediflow was conceived around a grid/hypercube-style switching
    network, so those are provided along with a ring (worst diameter) and a
    full crossbar (best). *)

type t =
  | Full of int  (** complete graph on [n] nodes *)
  | Ring of int
  | Mesh of int * int  (** rows × cols, no wraparound *)
  | Hypercube of int  (** dimension [d]; [2^d] nodes *)

val size : t -> int

val of_string : string -> (t, string) result
(** Parse "full:8", "ring:16", "mesh:4x4", "cube:3". *)

val to_string : t -> string

val neighbors : t -> int -> int list
(** Sorted neighbour list.
    @raise Invalid_argument for an out-of-range node. *)

val ideal_distance : t -> int -> int -> int
(** Hop distance assuming all nodes alive (closed form, no search). *)

val diameter : t -> int
