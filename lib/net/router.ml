type t = {
  topology : Topology.t;
  dead : bool array;
  mutable n_dead : int;
  full : bool;  (* [Full] topology: every live pair is 1 hop, no BFS needed *)
  rows : int array option array;  (* per-source distance rows, filled lazily *)
}

let create topology =
  let n = Topology.size topology in
  {
    topology;
    dead = Array.make n false;
    n_dead = 0;
    full = (match topology with Topology.Full _ -> true | _ -> false);
    rows = Array.make n None;
  }

let topology t = t.topology

let check t node =
  if node < 0 || node >= Array.length t.dead then
    invalid_arg (Printf.sprintf "Router: node %d out of range" node)

(* Any death or revival can reroute any pair: drop every cached row.
   O(P) per liveness change, against the old all-pairs rebuild. *)
let invalidate t = Array.fill t.rows 0 (Array.length t.rows) None

let kill t node =
  check t node;
  if not t.dead.(node) then begin
    t.dead.(node) <- true;
    t.n_dead <- t.n_dead + 1;
    invalidate t
  end

let revive t node =
  check t node;
  if t.dead.(node) then begin
    t.dead.(node) <- false;
    t.n_dead <- t.n_dead - 1;
    invalidate t
  end

let alive t node =
  check t node;
  not t.dead.(node)

let alive_count t = Array.length t.dead - t.n_dead

let alive_nodes t =
  let n = Array.length t.dead in
  List.init n Fun.id |> List.filter (fun i -> not t.dead.(i))

let unreachable = max_int

let bfs t src =
  let n = Array.length t.dead in
  let dist = Array.make n unreachable in
  if not t.dead.(src) then begin
    dist.(src) <- 0;
    let q = Queue.create () in
    Queue.add src q;
    while not (Queue.is_empty q) do
      let u = Queue.take q in
      List.iter
        (fun v ->
          if (not t.dead.(v)) && dist.(v) = unreachable then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
        (Topology.neighbors t.topology u)
    done
  end;
  dist

let row t src =
  match t.rows.(src) with
  | Some r -> r
  | None ->
    let r = bfs t src in
    t.rows.(src) <- Some r;
    r

let distance t a b =
  check t a;
  check t b;
  if t.dead.(a) || t.dead.(b) then None
  else if t.full then Some (if a = b then 0 else 1)
  else begin
    let d = (row t a).(b) in
    if d = unreachable then None else Some d
  end

let reachable t a b = distance t a b <> None
