type t = {
  topology : Topology.t;
  dead : bool array;
  mutable dist : int array array option;  (* cache; rebuilt after a death/revival *)
}

let create topology = { topology; dead = Array.make (Topology.size topology) false; dist = None }

let topology t = t.topology

let check t node =
  if node < 0 || node >= Array.length t.dead then
    invalid_arg (Printf.sprintf "Router: node %d out of range" node)

let kill t node =
  check t node;
  if not t.dead.(node) then begin
    t.dead.(node) <- true;
    t.dist <- None
  end

let revive t node =
  check t node;
  if t.dead.(node) then begin
    t.dead.(node) <- false;
    t.dist <- None
  end

let alive t node =
  check t node;
  not t.dead.(node)

let alive_nodes t =
  let n = Array.length t.dead in
  List.init n Fun.id |> List.filter (fun i -> not t.dead.(i))

let unreachable = max_int

let bfs t src =
  let n = Array.length t.dead in
  let dist = Array.make n unreachable in
  if not t.dead.(src) then begin
    dist.(src) <- 0;
    let q = Queue.create () in
    Queue.add src q;
    while not (Queue.is_empty q) do
      let u = Queue.take q in
      List.iter
        (fun v ->
          if (not t.dead.(v)) && dist.(v) = unreachable then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
        (Topology.neighbors t.topology u)
    done
  end;
  dist

let table t =
  match t.dist with
  | Some d -> d
  | None ->
    let n = Array.length t.dead in
    let d = Array.init n (fun src -> bfs t src) in
    t.dist <- Some d;
    d

let distance t a b =
  check t a;
  check t b;
  if t.dead.(a) || t.dead.(b) then None
  else begin
    let d = (table t).(a).(b) in
    if d = unreachable then None else Some d
  end

let reachable t a b = distance t a b <> None
