(** Cluster configuration: machine model, cost model and recovery mode. *)

type recovery =
  | No_recovery  (** a failure silently loses work (control baseline) *)
  | Rollback  (** §3: re-issue topmost checkpoints, abort orphans *)
  | Splice  (** §4: re-issue + grandparent relay, twins inherit offspring *)
  | Replicate of int  (** §5.3: k-way task replication with majority voting *)

val recovery_to_string : recovery -> string

type ckpt_mode =
  | Fixed of Recflow_recovery.Ckpt_table.mode
      (** every spawn is offered to the table under the given discipline
          ([Topmost] = paper §3.2, [Keep_all] = the Q8 ablation) *)
  | Adaptive of { max_depth : int }
      (** Sodre-style admission: spawns at stamp depth > [max_depth] are
          not checkpointed at all (their loss is repaired by the surviving
          parent's local regeneration); shallower spawns use the topmost
          discipline.  Seeded from the static cost analysis via
          [--policy auto] / {!Recflow_balance.Policy.suggest_ckpt_admission}. *)

val ckpt_mode_string : ckpt_mode -> string
(** ["topmost"], ["keep-all"], ["adaptive:3"]. *)

val table_mode : ckpt_mode -> Recflow_recovery.Ckpt_table.mode
(** The table discipline actually instantiated per node: [Adaptive]
    admission gates *entry* to a [Topmost] table. *)

type retry = {
  rto : int;  (** ticks before the first retransmission of an unacked send *)
  backoff : float;  (** exponential backoff base: attempt n waits rto·backoffⁿ *)
  suspicion_after : int;
      (** ticks of silence after which the sender gives up, *suspects* the
          destination (treats it as faulty per §1, even if it is merely
          slow or partitioned) and routes the message down the bounce
          recovery path.  Must exceed [detect_delay] so real failures are
          normally announced before suspicion fires. *)
}

type service = {
  arrival_mean : float;
      (** mean inter-arrival time (ticks) of the open-loop request stream;
          draws are exponential via [Rng.exponential], so the generator is
          Poisson at rate 1/arrival_mean *)
  replicas : int;
      (** k-way replication per request (§5.3): each request is dispatched
          as [k] independent root instances and the first majority among
          their answers completes it, masking mid-stream failures without
          waiting for checkpoint recovery.  1 = no replication. *)
  max_inflight : int;
      (** admission control: arrivals while this many requests are already
          in flight are shed (counted, never executed) *)
  shed_suspect_frac : float;
      (** degradation threshold: arrivals are shed while the fraction of
          dead or suspected processors exceeds this (in [0,1]; 1.0 never
          sheds on suspicion) *)
}

type t = {
  topology : Recflow_net.Topology.t;
  latency : Recflow_net.Latency.t;
  policy : Recflow_balance.Policy.spec;
  recovery : recovery;
  ckpt_mode : ckpt_mode;
  ckpt_cost : int;
      (** extra ticks charged at spawn per checkpoint actually stored
          (0 = the pre-PR-9 cost model, where recording is free) *)
  loss_prior : float;
      (** prior probability (in [0,1]) that any given spawned task is lost
          to a failure — the operator's loss-rate estimate consumed by
          [Policy.suggest_ckpt_admission] when seeding [Adaptive] *)
  ancestor_depth : int;
      (** how many ancestor links a packet carries beyond its parent:
          1 = grandparent (standard splice), n ≥ 2 adds great-grandparents
          (the §5.2 multi-fault extension).  0 disables relaying. *)
  replicate_depth : int;
      (** under [Replicate k]: spawns whose child would sit at stamp depth
          ≤ this are replicated — the "critical section" prefix of the call
          tree (§5.3); deeper spawns fall back to rollback handling *)
  inline_depth : int;
      (** calls whose stamp depth would reach this value are evaluated
          inline (grain control); [max_int] spawns everything. *)
  work_tick : int;  (** simulated ticks per unit of evaluator work *)
  spawn_cost : int;  (** ticks to form + checkpoint + enqueue a packet *)
  ctx_switch : int;  (** ticks to pick the next task off the run queue *)
  detect_delay : int;
      (** ticks from a processor failure until peers receive the
          error-detection notice (plus per-hop distance) *)
  gradient_period : int;
      (** period of the distributed gradient exchange (only used with
          [Policy.Gradient_distributed]): every node recomputes its
          gradient value from its neighbours' last-heard values and
          broadcasts it to them *)
  adoption_grace : int;
      (** splice only: enables offspring *inheritance* (§4.1 "this twin
          task inherits all offspring of the faulty task") — living
          orphans report to their grandparents and re-issued twins are
          held back this many ticks so the reports can overtake them and
          mark the matching call slots inherited instead of cloned.
          0 reverts to the literal §4.2 protocol: twins re-demand all
          offspring and only completed orphan results are salvaged. *)
  bounce_delay : int;
      (** ticks for a sender to conclude a message was undeliverable *)
  horizon : int;  (** hard simulation-time stop *)
  seed : int;
  trace_capacity : int;
  chaos : Recflow_net.Chaos.spec;
      (** network perturbation (loss, duplication, reordering, delay
          spikes, partition windows); [Chaos.none] leaves every run
          bit-identical to the reliable network *)
  reliable : bool;
      (** arm the transport layer: [Task_packet]/[Result]/[Orphan_alive]/
          [Reparent] sends carry sequence numbers, are acknowledged
          hop-to-hop, retransmitted with exponential backoff and
          deduplicated at the receiver; required whenever [chaos] can
          destroy messages *)
  retry : retry;  (** retransmission timing (only used when [reliable]) *)
  service : service;
      (** open-loop traffic model (only used by [Recflow_service]; batch
          runs ignore it) *)
  batched_delivery : bool;
      (** coalesce same-destination same-arrival-tick message deliveries
          into one simulator event carrying the whole batch.  Per-edge
          FIFO order and every per-message latency/chaos/transport draw
          are preserved, but coalesced messages are processed at the
          batch's queue position instead of their individual ones, so
          event interleaving — and hence the journal — can differ from an
          unbatched run.  Off by default; the scale experiments turn it
          on and carry their own golden digests. *)
  journal_retain : bool;
      (** keep every journal entry in memory (the default).  Scale runs
          with millions of tasks turn this off: entries still stream to
          any attached sink and the counts survive, but the retained
          list / per-stamp index stay empty so memory is bounded by the
          live frontier, not the run length. *)
}

val default : nodes:int -> t
(** Full crossbar over [nodes] processors, gradient placement, splice
    recovery, grandparent links only, spawn-everything grain, modest cost
    model.  Experiments override fields as needed. *)

val validate : t -> (unit, string) result

type meta_value = [ `Int of int | `Str of string | `Bool of bool ]

val metadata : t -> (string * meta_value) list
(** The run-defining knobs (nodes, topology, policy, recovery mode,
    checkpoint mode, cost model, rng seed, ...) as typed key/value pairs,
    in a stable order.  Every exported metrics document embeds this so a
    benchmark trajectory can be reproduced from the artefact alone. *)
