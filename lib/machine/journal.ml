module Stamp = Recflow_recovery.Stamp
module Ids = Recflow_recovery.Ids

type event =
  | Spawned of { task : Ids.task_id; dest : Ids.proc_id; replica : int }
  | Activated of { task : Ids.task_id; proc : Ids.proc_id }
  | Acked of { task : Ids.task_id; proc : Ids.proc_id }
  | Completed of { task : Ids.task_id; proc : Ids.proc_id; work : int }
  | Inlined of { parent_task : Ids.task_id; proc : Ids.proc_id; work : int }
  | Aborted of { task : Ids.task_id; proc : Ids.proc_id; work : int }
  | Lost of { task : Ids.task_id; proc : Ids.proc_id; work : int }
  | Respawned of { task : Ids.task_id; dest : Ids.proc_id; reason : string }
  | Inherited of { orphan_task : Ids.task_id; proc : Ids.proc_id }
  | Result_accepted of { task : Ids.task_id }
  | Duplicate_ignored of { task : Ids.task_id }
  | Relayed of { via : Ids.proc_id }
  | Relay_dropped of { at : Ids.proc_id; reason : string }
  | Orphan_dropped of { task : Ids.task_id }
  | Failure of { proc : Ids.proc_id }

type entry = { time : int; stamp : Stamp.t; event : event }

type key = int list

let key_of_stamp s : key = Stamp.digits s

type t = {
  retain : bool;
      (* scale runs record millions of entries: with [retain = false] the
         list and per-stamp index stay empty (sinks still see everything)
         so journal memory is O(1) instead of O(run length) *)
  mutable rev_entries : entry list;
  mutable n_entries : int;
  mutable last_time : int option;
  by_stamp : (key, entry list ref) Hashtbl.t;  (* reverse chronological *)
  mutable extra : entry Recflow_obs_core.Sink.t option;
      (* streaming consumers (Perfetto.Stream, JSONL) see every entry as
         it is recorded, without waiting for — or needing — the full
         retained list *)
}

let create ?(retain = true) () =
  {
    retain;
    rev_entries = [];
    n_entries = 0;
    last_time = None;
    by_stamp = Hashtbl.create 256;
    extra = None;
  }

let attach_sink t sink =
  t.extra <-
    (match t.extra with
    | None -> Some sink
    | Some existing -> Some (Recflow_obs_core.Sink.tee existing sink))

let record t ~time ~stamp event =
  let e = { time; stamp; event } in
  t.n_entries <- t.n_entries + 1;
  t.last_time <- Some time;
  (match t.extra with Some s -> Recflow_obs_core.Sink.emit s e | None -> ());
  if t.retain then begin
    t.rev_entries <- e :: t.rev_entries;
    let k = key_of_stamp stamp in
    match Hashtbl.find_opt t.by_stamp k with
    | Some r -> r := e :: !r
    | None -> Hashtbl.add t.by_stamp k (ref [ e ])
  end

let entries t = List.rev t.rev_entries

let length t = t.n_entries

let last_entry_time t = t.last_time

let failures t =
  List.rev
    (List.filter_map
       (fun e -> match e.event with Failure { proc } -> Some (e.time, proc) | _ -> None)
       t.rev_entries)

let for_stamp t stamp =
  match Hashtbl.find_opt t.by_stamp (key_of_stamp stamp) with
  | Some r -> List.rev !r
  | None -> []

let stamps t =
  Hashtbl.fold (fun k _ acc -> Stamp.of_digits k :: acc) t.by_stamp []
  |> List.sort Stamp.compare

let count t pred =
  List.fold_left (fun acc e -> if pred e.event then acc + 1 else acc) 0 t.rev_entries

let first_time t stamp pred =
  List.find_opt (fun e -> pred e.event) (for_stamp t stamp) |> Option.map (fun e -> e.time)

let last_time t stamp pred =
  List.fold_left
    (fun acc e -> if pred e.event then Some e.time else acc)
    None (for_stamp t stamp)

let event_label = function
  | Spawned _ -> "spawned"
  | Activated _ -> "activated"
  | Acked _ -> "acked"
  | Completed _ -> "completed"
  | Inlined _ -> "inlined"
  | Aborted _ -> "aborted"
  | Lost _ -> "lost"
  | Respawned _ -> "respawned"
  | Inherited _ -> "inherited"
  | Result_accepted _ -> "result_accepted"
  | Duplicate_ignored _ -> "duplicate_ignored"
  | Relayed _ -> "relayed"
  | Relay_dropped _ -> "relay_dropped"
  | Orphan_dropped _ -> "orphan_dropped"
  | Failure _ -> "failure"

let pp_entry ppf e =
  let detail =
    match e.event with
    | Spawned { task; dest; replica } ->
      Printf.sprintf "task%d -> %s%s" task (Ids.proc_to_string dest)
        (if replica > 0 then Printf.sprintf " (replica %d)" replica else "")
    | Activated { task; proc } | Acked { task; proc } ->
      Printf.sprintf "task%d on %s" task (Ids.proc_to_string proc)
    | Completed { task; proc; work } | Aborted { task; proc; work } | Lost { task; proc; work }
      ->
      Printf.sprintf "task%d on %s (work %d)" task (Ids.proc_to_string proc) work
    | Inlined { parent_task; proc; work } ->
      Printf.sprintf "inside task%d on %s (work %d)" parent_task (Ids.proc_to_string proc) work
    | Respawned { task; dest; reason } ->
      Printf.sprintf "task%d -> %s (%s)" task (Ids.proc_to_string dest) reason
    | Inherited { orphan_task; proc } ->
      Printf.sprintf "orphan task%d on %s adopted" orphan_task (Ids.proc_to_string proc)
    | Result_accepted { task } | Duplicate_ignored { task } | Orphan_dropped { task } ->
      Printf.sprintf "task%d" task
    | Relayed { via } -> Printf.sprintf "via %s" (Ids.proc_to_string via)
    | Relay_dropped { at; reason } ->
      Printf.sprintf "at %s (%s)" (Ids.proc_to_string at) reason
    | Failure { proc } -> Ids.proc_to_string proc
  in
  Format.fprintf ppf "[%8d] %-10s %-16s %s" e.time (Stamp.to_string e.stamp)
    (event_label e.event) detail
