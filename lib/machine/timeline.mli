(** ASCII activity timeline rendered from a run's journal.

    One row per processor, one column per time bucket; the glyph encodes
    how many tasks were resident-and-live on that processor during the
    bucket ([.:-=*#@] from one to many), [X] marks buckets after the
    processor failed, and [!] the bucket containing the failure itself.
    Useful for eyeballing load balance, the hole a failure tears, and the
    recovery wave that refills it — the examples and the CLI expose it. *)

val render :
  Journal.t -> nodes:int -> ?width:int -> ?until:int -> unit -> string
(** [render journal ~nodes ()] draws [nodes] rows.  [width] is the number
    of time buckets (default 72); [until] the time of the last bucket
    (default: the last journal entry).  Returns a multi-line string ending
    in a newline; renders an "(empty journal)" placeholder when there is
    nothing to draw. *)

val occupancy : Journal.t -> nodes:int -> buckets:int -> until:int -> int array array
(** The underlying matrix: [occupancy.(node).(bucket)] is the peak number
    of live resident tasks in that bucket ([-1] once the node is dead).
    Exposed for tests and custom rendering. *)
