type recovery = No_recovery | Rollback | Splice | Replicate of int

let recovery_to_string = function
  | No_recovery -> "none"
  | Rollback -> "rollback"
  | Splice -> "splice"
  | Replicate k -> Printf.sprintf "replicate:%d" k

type ckpt_mode =
  | Fixed of Recflow_recovery.Ckpt_table.mode
  | Adaptive of { max_depth : int }

let ckpt_mode_string = function
  | Fixed Recflow_recovery.Ckpt_table.Topmost -> "topmost"
  | Fixed Recflow_recovery.Ckpt_table.Keep_all -> "keep-all"
  | Adaptive { max_depth } -> Printf.sprintf "adaptive:%d" max_depth

let table_mode = function
  | Fixed m -> m
  | Adaptive _ -> Recflow_recovery.Ckpt_table.Topmost

type retry = { rto : int; backoff : float; suspicion_after : int }

type service = {
  arrival_mean : float;
  replicas : int;
  max_inflight : int;
  shed_suspect_frac : float;
}

type t = {
  topology : Recflow_net.Topology.t;
  latency : Recflow_net.Latency.t;
  policy : Recflow_balance.Policy.spec;
  recovery : recovery;
  ckpt_mode : ckpt_mode;
  ckpt_cost : int;
  loss_prior : float;
  ancestor_depth : int;
  replicate_depth : int;
  inline_depth : int;
  work_tick : int;
  spawn_cost : int;
  ctx_switch : int;
  detect_delay : int;
  gradient_period : int;
  adoption_grace : int;
  bounce_delay : int;
  horizon : int;
  seed : int;
  trace_capacity : int;
  chaos : Recflow_net.Chaos.spec;
  reliable : bool;
  retry : retry;
  service : service;
  batched_delivery : bool;
  journal_retain : bool;
}

let default ~nodes =
  {
    topology = Recflow_net.Topology.Full nodes;
    latency = Recflow_net.Latency.default;
    policy = Recflow_balance.Policy.Gradient { weight = 2 };
    recovery = Splice;
    ckpt_mode = Fixed Recflow_recovery.Ckpt_table.Topmost;
    ckpt_cost = 0;
    loss_prior = 0.0;
    ancestor_depth = 1;
    replicate_depth = 2;
    inline_depth = max_int;
    work_tick = 1;
    spawn_cost = 5;
    ctx_switch = 1;
    detect_delay = 200;
    gradient_period = 100;
    adoption_grace = 80;
    bounce_delay = 150;
    horizon = 200_000_000;
    seed = 42;
    trace_capacity = 65536;
    chaos = Recflow_net.Chaos.none;
    reliable = false;
    retry = { rto = 150; backoff = 2.0; suspicion_after = 1500 };
    service =
      { arrival_mean = 400.0; replicas = 1; max_inflight = 64; shed_suspect_frac = 0.5 };
    batched_delivery = false;
    journal_retain = true;
  }

type meta_value = [ `Int of int | `Str of string | `Bool of bool ]

let metadata t : (string * meta_value) list =
  [
    ("nodes", `Int (Recflow_net.Topology.size t.topology));
    ("topology", `Str (Recflow_net.Topology.to_string t.topology));
    ("policy", `Str (Recflow_balance.Policy.spec_to_string t.policy));
    ("recovery", `Str (recovery_to_string t.recovery));
    ("ckpt_mode", `Str (ckpt_mode_string t.ckpt_mode));
    ("ckpt_cost", `Int t.ckpt_cost);
    ("loss_prior", `Str (Printf.sprintf "%g" t.loss_prior));
    ("ancestor_depth", `Int t.ancestor_depth);
    ("replicate_depth", `Int t.replicate_depth);
    ("inline_depth", if t.inline_depth = max_int then `Str "unbounded" else `Int t.inline_depth);
    ("work_tick", `Int t.work_tick);
    ("spawn_cost", `Int t.spawn_cost);
    ("ctx_switch", `Int t.ctx_switch);
    ("latency_base", `Int t.latency.Recflow_net.Latency.base);
    ("latency_per_hop", `Int t.latency.Recflow_net.Latency.per_hop);
    ("latency_jitter", `Int t.latency.Recflow_net.Latency.jitter);
    ("detect_delay", `Int t.detect_delay);
    ("gradient_period", `Int t.gradient_period);
    ("adoption_grace", `Int t.adoption_grace);
    ("bounce_delay", `Int t.bounce_delay);
    ("seed", `Int t.seed);
    ("trace_capacity", `Int t.trace_capacity);
    ("reliable", `Bool t.reliable);
    ("retry_rto", `Int t.retry.rto);
    ("retry_backoff", `Str (Printf.sprintf "%g" t.retry.backoff));
    ("suspicion_after", `Int t.retry.suspicion_after);
    ("chaos_drop_rate", `Str (Printf.sprintf "%g" t.chaos.Recflow_net.Chaos.drop_rate));
    ("chaos_dup_rate", `Str (Printf.sprintf "%g" t.chaos.Recflow_net.Chaos.dup_rate));
    ("chaos_reorder_rate", `Str (Printf.sprintf "%g" t.chaos.Recflow_net.Chaos.reorder_rate));
    ("chaos_spike_rate", `Str (Printf.sprintf "%g" t.chaos.Recflow_net.Chaos.spike_rate));
    ("chaos_partitions", `Int (List.length t.chaos.Recflow_net.Chaos.partitions));
    ("service_arrival_mean", `Str (Printf.sprintf "%g" t.service.arrival_mean));
    ("service_replicas", `Int t.service.replicas);
    ("service_max_inflight", `Int t.service.max_inflight);
    ("service_shed_suspect_frac", `Str (Printf.sprintf "%g" t.service.shed_suspect_frac));
    ("batched_delivery", `Bool t.batched_delivery);
    ("journal_retain", `Bool t.journal_retain);
  ]

let validate t =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if Recflow_net.Topology.size t.topology < 1 then err "topology has no nodes"
  else if t.ancestor_depth < 0 then err "ancestor_depth must be >= 0"
  else if t.replicate_depth < 0 then err "replicate_depth must be >= 0"
  else if t.inline_depth < 1 then err "inline_depth must be >= 1 (the root task is never inline)"
  else if t.work_tick < 1 then err "work_tick must be >= 1"
  else if t.spawn_cost < 0 || t.ctx_switch < 0 || t.ckpt_cost < 0 then
    err "costs must be non-negative"
  else if t.loss_prior < 0.0 || t.loss_prior > 1.0 || Float.is_nan t.loss_prior then
    err "loss_prior must be in [0,1]"
  else if (match t.ckpt_mode with Adaptive { max_depth } -> max_depth < 1 | Fixed _ -> false)
  then err "adaptive ckpt_mode max_depth must be >= 1 (the root's children must be covered)"
  else if t.detect_delay < 1 then err "detect_delay must be >= 1"
  else if t.adoption_grace < 0 then err "adoption_grace must be >= 0"
  else if t.gradient_period < 1 then err "gradient_period must be >= 1"
  else if t.bounce_delay < 1 then err "bounce_delay must be >= 1"
  else if t.horizon < 1 then err "horizon must be >= 1"
  else if t.retry.rto < 1 then err "retry rto must be >= 1"
  else if t.retry.backoff < 1.0 then err "retry backoff base must be >= 1"
  else if t.reliable && t.retry.suspicion_after <= t.detect_delay then
    err
      "suspicion_after must exceed detect_delay (timeout suspicion is the slow local fallback \
       to the failure-notice broadcast)"
  else if not (t.service.arrival_mean > 0.0) then err "service arrival_mean must be > 0"
  else if t.service.replicas < 1 then err "service replicas must be >= 1"
  else if t.service.replicas > Recflow_net.Topology.size t.topology then
    err "service replicas %d exceeds cluster size" t.service.replicas
  else if t.service.max_inflight < 1 then err "service max_inflight must be >= 1"
  else if t.service.shed_suspect_frac < 0.0 || t.service.shed_suspect_frac > 1.0 then
    err "service shed_suspect_frac must be in [0,1]"
  else
    match Recflow_net.Chaos.validate t.chaos with
    | Error m -> err "%s" m
    | Ok () ->
      if Recflow_net.Chaos.lossy t.chaos && not t.reliable then
        err "a lossy chaos spec (drop_rate > 0 or partitions) requires reliable transport"
      else (
        match t.recovery with
        | Replicate _ when (match t.ckpt_mode with Adaptive _ -> true | Fixed _ -> false) ->
          err
            "adaptive checkpoint admission cannot be combined with replication (lost replicas \
             are governed by the voter, not the checkpoint table)"
        | Replicate k when k < 1 -> err "replication factor must be >= 1"
        | Replicate k when k > Recflow_net.Topology.size t.topology ->
          err "replication factor %d exceeds cluster size" k
        | No_recovery | Rollback | Splice | Replicate _ -> Ok ())
