(** Recovery-correctness oracle: the invariants §2-§4 promise, checked on a
    finished run.

    Determinacy makes re-execution safe (§2), so whatever the network and
    the failure plan did, a run must end with exactly one root *value*
    (possibly delivered several times by coexisting twins), no task left
    resident-but-unfinished on a trusted live processor, no committed
    checkpoint stranded in a trusted live table, and no reliable send still
    in limbo.  Processors that some sender gave up on (timeout suspicion)
    are excluded from the leak checks: per §1 they are *treated* as faulty,
    so their residual work is deliberately abandoned to a twin.

    The completion-dependent checks only apply when they can be decided:
    the run drained to quiescence, recovery was enabled, no program error
    occurred and at least one processor survived.  The divergence check
    (all root answers equal) is unconditional.

    In service mode ({!Cluster.begin_service}) the answer checks are
    per-request: each submitted request must end with exactly one distinct
    value of its own, and — when decidable — at least one answer.  The
    leak, strand and transport checks apply cluster-wide as in batch.

    {!assert_ok} is wired into [Harness.run] — every experiment and every
    harness-driven test runs under the oracle, never with it off. *)

type report = {
  answers : int;  (** root results that reached the super-root *)
  distinct_answers : int;  (** distinct values among them (must be <= 1) *)
  leaked_tasks : int;  (** unfinished tasks on trusted live processors *)
  stranded_checkpoints : int;  (** undischarged entries in trusted live tables *)
  abandoned_tasks : int;
      (** unfinished tasks on falsely-suspected live processors —
          informational, not a violation: that work was written off *)
  unsettled_sends : int;  (** reliable sends neither acked nor bounced *)
  quiescent : bool;
  violations : string list;  (** empty = the run upheld every invariant *)
}

val check : Cluster.t -> report

val ok : report -> bool

val assert_ok : Cluster.t -> report
(** @raise Failure listing the violations, if any. *)

val pp : Format.formatter -> report -> unit
