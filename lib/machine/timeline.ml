(* Reconstruct per-processor occupancy from lifecycle events: a task is
   resident on its activation processor from Activated until Completed or
   Aborted; a Failure ends its processor's row. *)

let occupancy journal ~nodes ~buckets ~until =
  let grid = Array.make_matrix nodes buckets 0 in
  let live = Array.make nodes 0 in
  let dead_at = Array.make nodes max_int in
  let bucket_of time =
    if until <= 0 then 0 else min (buckets - 1) (time * buckets / until)
  in
  (* where each activation lives: task id -> proc *)
  let home : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let last_bucket = Array.make nodes 0 in
  (* carry the current live count forward through empty buckets *)
  let advance proc upto =
    let from = last_bucket.(proc) in
    for b = from + 1 to min upto (buckets - 1) do
      grid.(proc).(b) <- live.(proc)
    done;
    if upto > last_bucket.(proc) then last_bucket.(proc) <- min upto (buckets - 1)
  in
  let bump proc time delta =
    if proc >= 0 && proc < nodes then begin
      let b = bucket_of time in
      advance proc b;
      live.(proc) <- max 0 (live.(proc) + delta);
      (* record the PEAK within the bucket *)
      grid.(proc).(b) <- max grid.(proc).(b) live.(proc)
    end
  in
  List.iter
    (fun (e : Journal.entry) ->
      match e.Journal.event with
      | Journal.Activated { task; proc } ->
        Hashtbl.replace home task proc;
        bump proc e.Journal.time 1
      | Journal.Completed { task; proc; _ } | Journal.Aborted { task; proc; _ } ->
        Hashtbl.remove home task;
        bump proc e.Journal.time (-1)
      | Journal.Failure { proc } ->
        if proc >= 0 && proc < nodes then begin
          let b = bucket_of e.Journal.time in
          advance proc b;
          dead_at.(proc) <- min dead_at.(proc) b;
          live.(proc) <- 0;
          (* resident tasks died with the node *)
          Hashtbl.iter (fun t p -> if p = proc then Hashtbl.remove home t) home
        end
      | _ -> ())
    (Journal.entries journal);
  for proc = 0 to nodes - 1 do
    advance proc (buckets - 1);
    if dead_at.(proc) < max_int then
      for b = dead_at.(proc) to buckets - 1 do
        grid.(proc).(b) <- -1
      done
  done;
  grid

let glyph = function
  | n when n < 0 -> 'X'
  | 0 -> ' '
  | 1 -> '.'
  | 2 -> ':'
  | 3 -> '-'
  | 4 -> '='
  | n when n <= 6 -> '*'
  | n when n <= 9 -> '#'
  | _ -> '@'

let render journal ~nodes ?(width = 72) ?until () =
  let entries = Journal.entries journal in
  match entries with
  | [] -> "(empty journal)\n"
  | _ ->
    let last = List.fold_left (fun acc (e : Journal.entry) -> max acc e.Journal.time) 0 entries in
    let until = match until with Some u -> u | None -> max 1 last in
    let grid = occupancy journal ~nodes ~buckets:width ~until in
    let buf = Buffer.create ((nodes + 3) * (width + 8)) in
    Buffer.add_string buf
      (Printf.sprintf "time 0 .. %d (one column = %d ticks); X = failed\n" until
         (max 1 (until / width)));
    for proc = 0 to nodes - 1 do
      Buffer.add_string buf (Printf.sprintf "P%-3d |" proc);
      Array.iter
        (fun n ->
          let c = if n < 0 then 'X' else glyph n in
          Buffer.add_char buf c)
        grid.(proc);
      (* mark the failure bucket *)
      (match Array.to_list grid.(proc) |> List.mapi (fun i v -> (i, v))
             |> List.find_opt (fun (_, v) -> v < 0)
       with
      | Some (i, _) -> Buffer.add_string buf (Printf.sprintf "|  failed at ~bucket %d" i)
      | None -> Buffer.add_char buf '|');
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf "legend: ' '=idle  .=1  :=2  -=3  ==4  *=5-6  #=7-9  @=10+ live tasks\n";
    Buffer.contents buf
