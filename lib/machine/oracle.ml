module Ckpt_table = Recflow_recovery.Ckpt_table
module Value = Recflow_lang.Value

type report = {
  answers : int;
  distinct_answers : int;
  leaked_tasks : int;
  stranded_checkpoints : int;
  abandoned_tasks : int;
  unsettled_sends : int;
  quiescent : bool;
  violations : string list;
}

let distinct_values vs =
  List.fold_left (fun acc v -> if List.exists (Value.equal v) acc then acc else v :: acc) [] vs

let check cluster =
  let cfg = Cluster.config cluster in
  let answers = Cluster.root_answers cluster in
  let quiescent = Cluster.quiescent cluster in
  let suspected = Cluster.suspected_nodes cluster in
  let live = List.filter Node.is_alive (Cluster.nodes cluster) in
  let trusted, abandoned_nodes =
    List.partition (fun n -> not (List.mem (Node.id n) suspected)) live
  in
  let sum f = List.fold_left (fun acc n -> acc + f n) 0 in
  let leaked = sum Node.live_tasks trusted in
  let abandoned = sum Node.live_tasks abandoned_nodes in
  let stranded = sum (fun n -> Ckpt_table.total_size (Node.checkpoints n)) trusted in
  let unsettled = Cluster.unsettled_sends cluster in
  let n_answers = List.length answers in
  let distinct = List.length (distinct_values answers) in
  (* The completion checks are only decidable on a drained, recoverable,
     healthy run with survivors; the divergence check always applies. *)
  let decidable =
    quiescent
    && Cluster.error cluster = None
    && cfg.Config.recovery <> Config.No_recovery
    && live <> []
  in
  let violations = ref [] in
  let viol fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  if Cluster.service_mode cluster then begin
    (* Per-request verdicts: different requests legitimately produce
       different values, but each request's own answers must agree, and
       every submitted request must have an answer once the run drained. *)
    for uid = 0 to Cluster.submitted_requests cluster - 1 do
      let req_answers = Cluster.request_answers cluster uid in
      let d = List.length (distinct_values req_answers) in
      if d > 1 then
        viol "request %d produced %d distinct answers (determinacy guarantees a unique value)"
          uid d;
      if decidable && req_answers = [] then
        viol "request %d got no answer although the run drained with live processors" uid
    done
  end
  else begin
    if distinct > 1 then
      viol "%d distinct root answers arrived (determinacy guarantees a unique value)" distinct;
    if decidable && n_answers = 0 then
      viol "no root answer arrived although the run drained with live processors"
  end;
  if decidable && n_answers > 0 && leaked > 0 then
    viol "%d task(s) leaked un-GC'd on trusted live processors at quiescence" leaked;
  if decidable && n_answers > 0 && stranded > 0 then
    viol "%d committed checkpoint(s) stranded on trusted live processors at quiescence" stranded;
  if quiescent && unsettled > 0 then
    viol "%d reliable send(s) neither acknowledged nor bounced at quiescence" unsettled;
  {
    answers = n_answers;
    distinct_answers = distinct;
    leaked_tasks = leaked;
    stranded_checkpoints = stranded;
    abandoned_tasks = abandoned;
    unsettled_sends = unsettled;
    quiescent;
    violations = List.rev !violations;
  }

let ok r = r.violations = []

let assert_ok cluster =
  let r = check cluster in
  if not (ok r) then failwith ("recovery oracle: " ^ String.concat "; " r.violations);
  r

let pp ppf r =
  Format.fprintf ppf
    "@[<v>oracle: %s@ answers=%d distinct=%d leaked=%d stranded=%d abandoned=%d unsettled=%d \
     quiescent=%b@]"
    (if ok r then "ok" else String.concat "; " r.violations)
    r.answers r.distinct_answers r.leaked_tasks r.stranded_checkpoints r.abandoned_tasks
    r.unsettled_sends r.quiescent
