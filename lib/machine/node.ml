module Ids = Recflow_recovery.Ids
module Stamp = Recflow_recovery.Stamp
module Packet = Recflow_recovery.Packet
module Ckpt_table = Recflow_recovery.Ckpt_table
module Vote = Recflow_recovery.Vote
module Value = Recflow_lang.Value
module Instance = Recflow_lang.Instance
module Counter = Recflow_stats.Counter
module Trace = Recflow_sim.Trace
module Profile = Recflow_obs_core.Profile

(* Checkpoint record/discharge run once per packet — hot enough that the
   per-span name lookup of [Profile.time] is worth skipping. *)
let ckpt_record_probe = Profile.probe "ckpt.record"

let ckpt_discharge_probe = Profile.probe "ckpt.discharge"

type ctx = {
  config : Config.t;
  now : unit -> int;
  send : src:Ids.proc_id -> dst:Ids.proc_id -> Message.t -> unit;
  send_after : delay:int -> src:Ids.proc_id -> dst:Ids.proc_id -> Message.t -> unit;
  wake : Ids.proc_id -> delay:int -> unit;
  fresh_task_id : unit -> Ids.task_id;
  place : origin:Ids.proc_id -> key:int -> Ids.proc_id;
  first_alive : key:int -> Ids.proc_id option;
  neighbors : Ids.proc_id -> Ids.proc_id list;
  template : string -> Recflow_lang.Graph.t;
  inline_eval : string -> Value.t array -> (Value.t * int, string) result;
  journal : Journal.t;
  counters : Counter.set;
  trace : Trace.t;
  record_latency : string -> int -> unit;
      (* named duration histogram on the owning cluster (task.sojourn, ...) *)
  program_error : string -> unit;
}

type task_state = Queued | Running | Blocked | Done | Aborted

(* Bookkeeping for one call slot of a task: the child (or replica group)
   spawned from it.  [dests]/[tasks] associate replica index with the
   current destination processor and activation id; both are rewritten when
   a checkpoint is re-issued. *)
type child = {
  slot : int;
  c_stamp : Stamp.t;
  c_packet : Packet.t;
  mutable dests : (int * Ids.proc_id) list;
  mutable ctasks : (int * Ids.task_id) list;
  mutable vote : Value.t Vote.t option;
  mutable filled : bool;
}

type task = {
  tid : Ids.task_id;
  mutable packet : Packet.t;  (* mutable only for reparenting adopted orphans *)
  inst : Instance.t;
  born : int;  (* activation tick, for the sojourn-time histogram *)
  mutable state : task_state;
  mutable child_seq : int;
  mutable children : (int, child) Hashtbl.t option;
      (* keyed by call slot; allocated on the first spawn so the (large)
         population of leaf tasks never pays for an empty table *)
  mutable pending : (int * Value.t) list;
      (* results that arrived before the slot was reached (tiny: one entry
         per outrun call slot, usually zero) *)
  mutable work : int;  (* busy ticks attributed to this task *)
  mutable result_dropped : bool;
  mutable gc_pending : (Stamp.t * Packet.link * Value.t) list;
      (* salvaged orphan results that arrived before this (twin) task
         spawned the chain link they travel through: (orphan stamp, dead
         parent link, value) *)
  mutable adopted : (int list * (Packet.link * Packet.link)) list;
      (* orphan stamp (digits) -> (orphan link, dead parent link): live
         orphans this step-parent must inherit instead of cloning *)
  mutable adopt_pending : (Stamp.t * Packet.link * Packet.link) list;
      (* adoption reports waiting for this twin to spawn the chain link *)
  mutable adoption_reported : bool;
      (* this task, as an orphan, already announced itself upward *)
}

(* A finished task's full record (instance, children, pending tables) is
   dead weight: once [Done] or [Aborted] the only observable behaviours
   left are the tombstone ones — answer an Ack, absorb a duplicate
   activation, ignore a late result, apply a Reparent (possibly re-sending
   the completed value), and serve as the producer in the bounce path.
   The task is therefore *retired* to this slim record immediately, and
   its arena slot is recycled.

   Note on §3.3's never-reused-uid assumption: only arena *slots* are
   recycled.  Task uids stay monotone ([ctx.fresh_task_id]) and the
   uid-keyed index below keeps a tombstone cell per uid forever, so a late
   message addressed to a dead uid can never be confused with a newer task
   that happens to occupy the same arena slot. *)
type retired = {
  r_tid : Ids.task_id;
  mutable r_packet : Packet.t;  (* mutable for post-mortem reparenting *)
  r_state : task_state;  (* [Done] or [Aborted] *)
  r_result : Value.t option;  (* the instance's answer at retirement *)
  r_work : int;
  mutable r_dropped : bool;
}

type entry = Live of int  (* arena slot *) | Retired of retired

type cell = { mutable entry : entry }

type t = {
  nid : Ids.proc_id;
  mutable alive : bool;
  (* uid -> cell index.  Keys are only ever inserted (activation) and
     cells mutate in place on retirement, so the table's iteration order
     is a pure function of the uid insertion sequence — the protocol scans
     below that walk it (abort cascades, vote accounting, producer lookup,
     adoption reports) observe the same order as the pre-arena
     representation, keeping runs bit-identical. *)
  tasks : (Ids.task_id, cell) Hashtbl.t;
  (* flat growable arena of the resident (live) task records, free-list
     recycled; the dense int slots keep the live set compact no matter how
     many tasks the run has retired *)
  mutable arena : task option array;
  mutable arena_n : int;  (* high-water mark *)
  mutable free : int list;
  (* incremental load accounting: maintained on every state transition so
     the balancer/oracle queries are O(1) instead of a fold over every
     task that ever lived *)
  mutable n_live : int;
  mutable n_blocked : int;
  mutable n_wasted : int;  (* busy ticks of aborted / result-dropped tasks *)
  run_queue : Ids.task_id Queue.t;
  mutable current : Ids.task_id option;
  ckpts : Ckpt_table.t;
  known_dead : (Ids.proc_id, unit) Hashtbl.t;
  mutable stepping : bool;
  mutable work_ticks : int;
  (* messages addressed to a re-issued twin whose (grace-delayed) packet
     has not activated here yet, keyed by the twin's task id *)
  early_results : (Ids.task_id, Message.result_payload list) Hashtbl.t;
  early_adoptions : (Ids.task_id, (Stamp.t * Packet.link * Packet.link) list) Hashtbl.t;
  (* distributed gradient model: last value heard from each neighbour and
     this node's own value (0 = a demand sink).  [heard_min] caches the
     fold over [gradient_heard]; [heard_dirty] marks it stale when a
     possible minimum-holder raised its value or died. *)
  gradient_heard : (Ids.proc_id, int) Hashtbl.t;
  mutable gradient_value : int;
  mutable heard_min : int;
  mutable heard_dirty : bool;
  mutable neighbor_cache : Ids.proc_id list option;
}

let create nid (config : Config.t) =
  {
    nid;
    alive = true;
    tasks = Hashtbl.create 64;
    arena = [||];
    arena_n = 0;
    free = [];
    n_live = 0;
    n_blocked = 0;
    n_wasted = 0;
    run_queue = Queue.create ();
    current = None;
    ckpts = Ckpt_table.create ~mode:(Config.table_mode config.ckpt_mode) ();
    known_dead = Hashtbl.create 4;
    stepping = false;
    work_ticks = 0;
    early_results = Hashtbl.create 4;
    early_adoptions = Hashtbl.create 4;
    gradient_heard = Hashtbl.create 8;
    gradient_value = 0;
    heard_min = max_int / 2;
    heard_dirty = false;
    neighbor_cache = None;
  }

let id t = t.nid

let is_alive t = t.alive

let checkpoints t = t.ckpts

let knows_dead t p = Hashtbl.mem t.known_dead p

let mark_dead t p =
  if not (Hashtbl.mem t.known_dead p) then begin
    Hashtbl.add t.known_dead p ();
    if Hashtbl.mem t.gradient_heard p then t.heard_dirty <- true
  end

let work_done t = t.work_ticks

let task_live task = match task.state with Done | Aborted -> false | _ -> true

let live_tasks t = t.n_live

let blocked_tasks t = t.n_blocked

let runnable_tasks t =
  Queue.length t.run_queue + (match t.current with Some _ -> 1 | None -> 0)

let wasted_work t = t.n_wasted

(* ------------------------------------------------------------------ *)
(* Arena and index plumbing                                            *)
(* ------------------------------------------------------------------ *)

let alloc_slot t task =
  match t.free with
  | s :: rest ->
    t.free <- rest;
    t.arena.(s) <- Some task;
    s
  | [] ->
    let cap = Array.length t.arena in
    if t.arena_n = cap then begin
      let narena = Array.make (max 64 (cap * 2)) None in
      Array.blit t.arena 0 narena 0 cap;
      t.arena <- narena
    end;
    let s = t.arena_n in
    t.arena_n <- s + 1;
    t.arena.(s) <- Some task;
    s

let retire_cell t cell task =
  match cell.entry with
  | Retired _ -> ()
  | Live s ->
    t.arena.(s) <- None;
    t.free <- s :: t.free;
    cell.entry <-
      Retired
        {
          r_tid = task.tid;
          r_packet = task.packet;
          r_state = task.state;
          r_result = Instance.result task.inst;
          r_work = task.work;
          r_dropped = task.result_dropped;
        }

let retire t task =
  match Hashtbl.find_opt t.tasks task.tid with
  | Some cell -> retire_cell t cell task
  | None -> ()

type lookup = Absent | Alive of task | Gone of retired

let lookup t tid =
  match Hashtbl.find_opt t.tasks tid with
  | None -> Absent
  | Some cell -> (
    match cell.entry with
    | Live s -> ( match t.arena.(s) with Some task -> Alive task | None -> Absent)
    | Retired r -> Gone r)

(* Walk the resident live tasks in the index's (legacy) iteration order;
   retiring the visited task in place is safe — cells mutate, the table's
   structure does not. *)
let iter_live t f =
  Hashtbl.iter
    (fun _ cell ->
      match cell.entry with
      | Live s -> ( match t.arena.(s) with Some task -> f task | None -> ())
      | Retired _ -> ())
    t.tasks

let set_state t task st =
  if task.state <> st then begin
    (match task.state with Blocked -> t.n_blocked <- t.n_blocked - 1 | _ -> ());
    (match st with Blocked -> t.n_blocked <- t.n_blocked + 1 | _ -> ());
    (match st with
    | Done | Aborted -> (
      match task.state with Done | Aborted -> () | _ -> t.n_live <- t.n_live - 1)
    | Queued | Running | Blocked -> (
      match task.state with Done | Aborted -> t.n_live <- t.n_live + 1 | _ -> ()));
    task.state <- st
  end

(* A live task is never dropped (dropping happens at completion), and an
   aborted task's work is already in [n_wasted], so the guard keeps the
   counter equal to the old fold over both populations. *)
let mark_dropped t task =
  if not task.result_dropped then begin
    task.result_dropped <- true;
    if task.state <> Aborted then t.n_wasted <- t.n_wasted + task.work
  end

let mark_retired_dropped t (p : retired) =
  if not p.r_dropped then begin
    p.r_dropped <- true;
    if p.r_state <> Aborted then t.n_wasted <- t.n_wasted + p.r_work
  end

let children_tbl task =
  match task.children with
  | Some h -> h
  | None ->
    let h = Hashtbl.create 8 in
    task.children <- Some h;
    h

let child_find task slot =
  match task.children with None -> None | Some h -> Hashtbl.find_opt h slot

let child_iter f task = match task.children with None -> () | Some h -> Hashtbl.iter f h

let child_fold f task init =
  match task.children with None -> init | Some h -> Hashtbl.fold f h init

type task_view = {
  v_stamp : Stamp.t;
  v_task : Ids.task_id;
  v_state : string;
  v_waiting_on : (Stamp.t * Ids.proc_id list) list;
}

let state_label = function
  | Queued -> "queued"
  | Running -> "running"
  | Blocked -> "blocked"
  | Done -> "done"
  | Aborted -> "aborted"

let task_view_of task =
  let waiting =
    child_fold
      (fun _ child acc ->
        if child.filled then acc else (child.c_stamp, List.map snd child.dests) :: acc)
      task []
  in
  {
    v_stamp = task.packet.Packet.stamp;
    v_task = task.tid;
    v_state = state_label task.state;
    v_waiting_on = waiting;
  }

let iter_task_views t f = iter_live t (fun task -> f (task_view_of task))

let snapshot t =
  let acc = ref [] in
  iter_task_views t (fun v -> acc := v :: !acc);
  List.sort (fun a b -> Stamp.compare a.v_stamp b.v_stamp) !acc

(* Brute-force recount of the incremental counters over every resident and
   retired task — the invariant oracle for the property tests, never used
   on a hot path. *)
let recount t =
  let live = ref 0 and blocked = ref 0 and wasted = ref 0 in
  Hashtbl.iter
    (fun _ cell ->
      match cell.entry with
      | Live s -> (
        match t.arena.(s) with
        | Some task ->
          if task_live task then incr live;
          if task.state = Blocked then incr blocked;
          if task.state = Aborted || task.result_dropped then wasted := !wasted + task.work
        | None -> ())
      | Retired r ->
        if r.r_state = Aborted || r.r_dropped then wasted := !wasted + r.r_work)
    t.tasks;
  (!live, !blocked, !wasted)

let resident_tasks t = t.arena_n - List.length t.free

let tracef t ctx fmt =
  Trace.logf ctx.trace ~time:(ctx.now ()) ~level:Trace.Debug
    ~tag:(Ids.proc_to_string t.nid) fmt

(* ------------------------------------------------------------------ *)
(* CPU scheduling                                                      *)
(* ------------------------------------------------------------------ *)

let ensure_stepping t ctx =
  if t.alive && not t.stepping then begin
    t.stepping <- true;
    ctx.wake t.nid ~delay:0
  end

let enqueue_task t ctx task =
  set_state t task Queued;
  Queue.add task.tid t.run_queue;
  ensure_stepping t ctx

(* ------------------------------------------------------------------ *)
(* Spawning (DEMAND_IT, §4.2)                                          *)
(* ------------------------------------------------------------------ *)

let replication_factor ctx (task : task) =
  match ctx.config.recovery with
  | Config.Replicate k ->
    (* Replicate the "critical section" prefix of the call tree (§5.3);
       deeper spawns fall back to plain checkpoint/rollback handling. *)
    if Stamp.depth task.packet.Packet.stamp + 1 <= ctx.config.replicate_depth then k else 1
  | Config.No_recovery | Config.Rollback | Config.Splice -> 1

(* The gradient surface, recomputed from neighbours' last-heard values:
   an under-loaded node is a sink (0); elsewhere the value grows with the
   hop distance to the nearest sink (Lin & Keller's gradient model [10],
   computed with local information only). *)
let gradient_threshold ctx =
  match ctx.config.policy with
  | Recflow_balance.Policy.Gradient_distributed { threshold } -> threshold
  | _ -> 1

let neighbors_of t ctx =
  match t.neighbor_cache with
  | Some l -> l
  | None ->
    let l = ctx.neighbors t.nid in
    t.neighbor_cache <- Some l;
    l

let heard_nearest t =
  if t.heard_dirty then begin
    t.heard_dirty <- false;
    t.heard_min <-
      Hashtbl.fold
        (fun peer v acc -> if Hashtbl.mem t.known_dead peer then acc else min acc v)
        t.gradient_heard (max_int / 2)
  end;
  t.heard_min

let recompute_gradient t ctx =
  t.gradient_value <-
    (if runnable_tasks t <= gradient_threshold ctx then 0 else 1 + heard_nearest t)

(* Node-local gradient placement: stay local while under-loaded, else flow
   one hop toward the lowest-valued live neighbour. *)
let gradient_place t ctx =
  if runnable_tasks t <= gradient_threshold ctx then t.nid
  else begin
    let best =
      List.fold_left
        (fun acc peer ->
          if Hashtbl.mem t.known_dead peer then acc
          else begin
            let v = Option.value ~default:(max_int / 2) (Hashtbl.find_opt t.gradient_heard peer) in
            match acc with Some (_, bv) when bv <= v -> acc | _ -> Some (peer, v)
          end)
        None (neighbors_of t ctx)
    in
    match best with
    | Some (peer, v) when v < t.gradient_value -> peer
    | _ -> t.nid
  end

(* Periodic exchange: recompute and tell the neighbours. *)
let gradient_tick t ctx =
  if t.alive then begin
    recompute_gradient t ctx;
    List.iter
      (fun peer ->
        if not (Hashtbl.mem t.known_dead peer) then
          ctx.send ~src:t.nid ~dst:peer
            (Message.Gradient { from = t.nid; value = t.gradient_value }))
      (neighbors_of t ctx)
  end

(* Pick a destination; static placement may nominate a dead node, in which
   case we charge a reassignment and fall back deterministically (§3.3). *)
let choose_dest t ctx ~key =
  let dest =
    match ctx.config.policy with
    | Recflow_balance.Policy.Gradient_distributed _ -> gradient_place t ctx
    | _ -> ctx.place ~origin:t.nid ~key
  in
  if dest >= 0 && not (Hashtbl.mem t.known_dead dest) then dest
  else begin
    Counter.incr ctx.counters "static.reassigned";
    (* The cluster fallback only knows router liveness; a *suspected*
       processor is still routable, but anything placed there is written
       off by this node (§1), so probe past locally-known-dead picks.
       Under fail-stop alone known_dead ⊆ router-dead and the first probe
       already lands. *)
    let rec probe k tries =
      if tries <= 0 then None
      else
        match ctx.first_alive ~key:k with
        | Some d when not (Hashtbl.mem t.known_dead d) -> Some d
        | Some _ -> probe (k + 1) (tries - 1)
        | None -> None
    in
    match probe key 64 with
    | Some d -> d
    | None -> dest (* no live node: send anyway; the bounce path cleans up *)
  end

(* Returns whether a checkpoint was actually stored, so the spawn path can
   charge [ckpt_cost] only for real records.  Under [Adaptive] admission,
   spawns deeper than [max_depth] skip the table entirely: their recovery
   cost is bounded (the static analysis bounds the subtree), so the
   surviving parent's local regeneration is cheaper than carrying a
   checkpoint per deep task (§3.3's recovery-cost/storage trade). *)
let record_checkpoint t ctx ~dest packet =
  match ctx.config.Config.ckpt_mode with
  | Config.Adaptive { max_depth } when Stamp.depth packet.Packet.stamp > max_depth ->
    Counter.incr ctx.counters "ckpt.skipped_deep";
    false
  | Config.Fixed _ | Config.Adaptive _ -> (
    match
      Profile.time_probe ckpt_record_probe (fun () -> Ckpt_table.record t.ckpts ~dest packet)
    with
    | `Recorded ->
      Counter.incr ctx.counters "ckpt.recorded";
      true
    | `Covered ->
      Counter.incr ctx.counters "ckpt.covered";
      false)

let send_activation t ctx packet ~task_id ~dest ~replica ~replicas =
  ctx.send ~src:t.nid ~dst:dest
    (Message.Task_packet { packet; task_id; replica; replicas });
  Journal.record ctx.journal ~time:(ctx.now ()) ~stamp:packet.Packet.stamp
    (Journal.Spawned { task = task_id; dest; replica })

(* Forward stashed salvaged results whose relay chain passes through a
   freshly spawned child: a twin that was holding an orphan's answer
   releases it as soon as it re-creates the next link of the chain. *)
let forward_orphan_alive t ctx (child : child) ~ostamp ~orphan ~dead_parent =
  match (child.dests, child.ctasks) with
  | (_, proc) :: _, (_, ctask) :: _ ->
    Counter.incr ctx.counters "adopt.forwarded";
    ctx.send ~src:t.nid ~dst:proc
      (Message.Orphan_alive
         { stamp = ostamp; orphan; dead_parent;
           target = { Packet.task = ctask; proc; slot = -1 } })
  | _ -> Counter.incr ctx.counters "adopt.dropped"

let flush_adopt_pending t ctx task (child : child) =
  if task.adopt_pending <> [] then begin
    let covered (ostamp, _, _) =
      match Stamp.parent ostamp with
      | Some ps -> Stamp.equal child.c_stamp ps || Stamp.is_ancestor child.c_stamp ps
      | None -> false
    in
    let matches, rest = List.partition covered task.adopt_pending in
    task.adopt_pending <- rest;
    List.iter
      (fun (ostamp, orphan, dead_parent) ->
        forward_orphan_alive t ctx child ~ostamp ~orphan ~dead_parent)
      matches
  end

let flush_gc_pending t ctx task (child : child) =
  if task.gc_pending <> [] then begin
    let covered (ostamp, _, _) =
      match Stamp.parent ostamp with
      | Some ps -> Stamp.equal child.c_stamp ps || Stamp.is_ancestor child.c_stamp ps
      | None -> false
    in
    let matches, rest = List.partition covered task.gc_pending in
    task.gc_pending <- rest;
    List.iter
      (fun (ostamp, (dead_parent : Packet.link), value) ->
        match (child.dests, child.ctasks) with
        | (_, proc) :: _, (_, ctask) :: _ ->
          let direct =
            match Stamp.parent ostamp with
            | Some ps -> Stamp.equal child.c_stamp ps
            | None -> false
          in
          let relay, tslot =
            if direct then (Message.To_step_parent { dead_parent }, dead_parent.Packet.slot)
            else (Message.To_grandparent { dead_parent }, -1)
          in
          Counter.incr ctx.counters "relay.forwarded";
          Journal.record ctx.journal ~time:(ctx.now ()) ~stamp:ostamp
            (Journal.Relayed { via = t.nid });
          ctx.send ~src:t.nid ~dst:proc
            (Message.Result
               { stamp = ostamp; value; target = { Packet.task = ctask; proc; slot = tslot };
                 relay })
        | _ -> ())
      matches
  end

(* DEMAND_IT's packet formation: level-stamp with the next child digit and
   attach the parent, grandparent and deeper ancestor identifications. *)
let build_child_packet t ctx task ~slot ~fname ~args =
  let digit = task.child_seq in
  task.child_seq <- task.child_seq + 1;
  let stamp = Stamp.child task.packet.Packet.stamp digit in
  let parent = { Packet.task = task.tid; proc = t.nid; slot } in
  let grandparent =
    if ctx.config.ancestor_depth >= 1 then Some task.packet.Packet.parent else None
  in
  let ancestors =
    if ctx.config.ancestor_depth <= 1 then []
    else begin
      let inherited =
        match task.packet.Packet.grandparent with
        | Some g -> g :: task.packet.Packet.ancestors
        | None -> []
      in
      List.filteri (fun i _ -> i < ctx.config.ancestor_depth - 1) inherited
    end
  in
  Packet.make ~stamp ~fname ~args ~parent ~grandparent ~ancestors

(* Spawn the child for call slot [slot] of [task]: build the packet, level
   stamp it, functionally checkpoint it, and queue it toward the balancer's
   choice of processor. *)
let spawn_child t ctx task ~slot ~fname ~args =
  let packet = build_child_packet t ctx task ~slot ~fname ~args in
  let stamp = packet.Packet.stamp in
  let replicas = replication_factor ctx task in
  let base_key = Stamp.hash stamp in
  let dests = ref [] and ctasks = ref [] and recorded = ref 0 in
  for replica = 0 to replicas - 1 do
    let task_id = ctx.fresh_task_id () in
    let dest = choose_dest t ctx ~key:(base_key + (replica * 7919)) in
    if record_checkpoint t ctx ~dest packet then incr recorded;
    send_activation t ctx packet ~task_id ~dest ~replica ~replicas;
    dests := (replica, dest) :: !dests;
    ctasks := (replica, task_id) :: !ctasks
  done;
  let vote =
    if replicas > 1 then Some (Vote.create ~replicas ~equal:Value.equal) else None
  in
  let child =
    { slot; c_stamp = stamp; c_packet = packet; dests = !dests; ctasks = !ctasks; vote;
      filled = false }
  in
  Hashtbl.replace (children_tbl task) slot child;
  Counter.add ctx.counters "spawn.remote" replicas;
  flush_gc_pending t ctx task child;
  flush_adopt_pending t ctx task child;
  !recorded

(* Re-issue a child from its functional checkpoint (rollback §3.2 /
   splice twin creation §4.1).  The packet is byte-identical — same stamp,
   same return linkage — so by determinacy the regenerated activation is a
   functional twin of the lost one. *)
let respawn_child t ctx _task (child : child) ~reason =
  Profile.time "recovery.respawn" @@ fun () ->
  let replicas = List.length child.dests in
  Profile.time_probe ckpt_discharge_probe (fun () ->
      List.iter
        (fun (_, dest) -> ignore (Ckpt_table.discharge t.ckpts ~dest child.c_stamp))
        child.dests);
  let base_key = Stamp.hash child.c_stamp in
  let dests = ref [] and ctasks = ref [] in
  for replica = 0 to replicas - 1 do
    let task_id = ctx.fresh_task_id () in
    let dest = choose_dest t ctx ~key:(base_key + 104729 + (replica * 7919)) in
    ignore (record_checkpoint t ctx ~dest child.c_packet);
    (* Under splice, hold the twin back briefly so adoption reports from
       living orphans can overtake it (§4.1 offspring inheritance). *)
    let grace =
      match ctx.config.recovery with
      | Config.Splice -> ctx.config.adoption_grace
      | Config.No_recovery | Config.Rollback | Config.Replicate _ -> 0
    in
    ctx.send_after ~delay:grace ~src:t.nid ~dst:dest
      (Message.Task_packet { packet = child.c_packet; task_id; replica; replicas });
    Journal.record ctx.journal ~time:(ctx.now ()) ~stamp:child.c_stamp
      (Journal.Respawned { task = task_id; dest; reason });
    dests := (replica, dest) :: !dests;
    ctasks := (replica, task_id) :: !ctasks
  done;
  child.dests <- !dests;
  child.ctasks <- !ctasks;
  if replicas > 1 then child.vote <- Some (Vote.create ~replicas ~equal:Value.equal);
  Counter.incr ctx.counters "reissue.count";
  tracef t ctx "reissued %s (%s)" (Stamp.to_string child.c_stamp) reason

(* ------------------------------------------------------------------ *)
(* Task completion and result forwarding                               *)
(* ------------------------------------------------------------------ *)

let discharge_child t child =
  Profile.time_probe ckpt_discharge_probe @@ fun () ->
  List.iter
    (fun (_, dest) -> ignore (Ckpt_table.discharge t.ckpts ~dest child.c_stamp))
    child.dests

(* Fill a call slot with a decided value and resume the task if it was
   suspended on it. *)
let fill_slot t ctx task (child : child) value =
  child.filled <- true;
  discharge_child t child;
  Instance.supply task.inst child.slot value;
  Journal.record ctx.journal ~time:(ctx.now ()) ~stamp:child.c_stamp
    (Journal.Result_accepted { task = task.tid });
  if task.state = Blocked then enqueue_task t ctx task

(* §4.2: "Send the result to the parent.  If the parent is dead, notify
   the grandparent and send the result to the grandparent."

   Parameterized over the producer's packet and drop bookkeeping so it
   serves both a live task completing ([complete_task]) and a retired
   producer whose earlier return bounced ([handle_bounce]). *)
let return_result_from t ctx ~(packet : Packet.t) ~tid ~mark_dropped value =
  let parent = packet.Packet.parent in
  let payload relay target =
    Message.Result { stamp = packet.Packet.stamp; value; target; relay }
  in
  if not (Hashtbl.mem t.known_dead parent.Packet.proc) then
    ctx.send ~src:t.nid ~dst:parent.Packet.proc (payload Message.To_parent parent)
  else begin
    match ctx.config.recovery with
    | Config.Splice when ctx.config.ancestor_depth >= 1 -> (
      (* Climb the ancestor links (grandparent first, then the §5.2
         great-grandparent extension when enabled) to the nearest live
         holder of a checkpoint on our chain. *)
      let candidates =
        (match packet.Packet.grandparent with Some gp -> [ gp ] | None -> [])
        @ packet.Packet.ancestors
      in
      match
        List.find_opt
          (fun (l : Packet.link) -> not (Hashtbl.mem t.known_dead l.Packet.proc))
          candidates
      with
      | Some live_ancestor ->
        Counter.incr ctx.counters "relay.sent";
        ctx.send ~src:t.nid ~dst:live_ancestor.Packet.proc
          (payload (Message.To_grandparent { dead_parent = parent }) live_ancestor)
      | None ->
        mark_dropped ();
        Counter.incr ctx.counters "relay.stranded";
        Journal.record ctx.journal ~time:(ctx.now ()) ~stamp:packet.Packet.stamp
          (Journal.Relay_dropped { at = t.nid; reason = "grandparent dead or absent" }))
    | Config.No_recovery | Config.Rollback | Config.Splice | Config.Replicate _ ->
      mark_dropped ();
      Counter.incr ctx.counters "result.orphan_dropped";
      Journal.record ctx.journal ~time:(ctx.now ()) ~stamp:packet.Packet.stamp
        (Journal.Orphan_dropped { task = tid })
  end

let return_result t ctx task value =
  return_result_from t ctx ~packet:task.packet ~tid:task.tid
    ~mark_dropped:(fun () -> mark_dropped t task)
    value

let complete_task t ctx task value =
  set_state t task Done;
  ctx.record_latency "task.sojourn" (ctx.now () - task.born);
  Journal.record ctx.journal ~time:(ctx.now ()) ~stamp:task.packet.Packet.stamp
    (Journal.Completed { task = task.tid; proc = t.nid; work = task.work });
  return_result t ctx task value;
  retire t task

(* ------------------------------------------------------------------ *)
(* Aborts (rollback garbage collection, §3.2/§3.4)                     *)
(* ------------------------------------------------------------------ *)

let abort_task t ctx task =
  if task_live task then begin
    set_state t task Aborted;
    t.n_wasted <- t.n_wasted + task.work;
    Counter.incr ctx.counters "task.aborted";
    Journal.record ctx.journal ~time:(ctx.now ()) ~stamp:task.packet.Packet.stamp
      (Journal.Aborted { task = task.tid; proc = t.nid; work = task.work });
    (* Cascade to outstanding children so their processors can reclaim
       them; checkpoints for this doomed subtree are dropped. *)
    child_iter
      (fun _ child ->
        if not child.filled then begin
          discharge_child t child;
          List.iter
            (fun (replica, dest) ->
              if not (Hashtbl.mem t.known_dead dest) then
                match List.assoc_opt replica child.ctasks with
                | Some ctask -> ctx.send ~src:t.nid ~dst:dest (Message.Abort { task = ctask })
                | None -> ())
            child.dests
        end)
      task;
    retire t task
  end

let abort_orphans t ctx ~failed =
  iter_live t (fun task ->
      if task.packet.Packet.parent.Packet.proc = failed then abort_task t ctx task)

(* ------------------------------------------------------------------ *)
(* Failure handling (error-detection branch of the protocol LOOP)      *)
(* ------------------------------------------------------------------ *)

(* [reason] records what first told this node about the failure: the
   broadcast notice, a bounced send, or an orphan's unexpected return —
   the re-issue journal entries carry it so experiments can tell the
   Figure-3 path (twin created on orphan evidence) from notice-driven
   recovery. *)
let handle_failure ?(reason = "notice") t ctx ~failed =
  if not (Hashtbl.mem t.known_dead failed) then
    Profile.time "recovery.handle_failure" @@ fun () ->
    begin
    mark_dead t failed;
    let drained = Ckpt_table.on_failure t.ckpts ~failed in
    (match ctx.config.recovery with
    | Config.No_recovery ->
      Counter.add ctx.counters "ckpt.dropped_no_recovery" (List.length drained)
    | Config.Rollback | Config.Splice | Config.Replicate _ ->
      (* Re-issue the topmost checkpoints filed under the dead processor
         whose slots are still waiting.  Replicated slots are governed by
         the voter instead. *)
      List.iter
        (fun (packet : Packet.t) ->
          let parent = packet.Packet.parent in
          match lookup t parent.Packet.task with
          | Absent | Gone _ -> Counter.incr ctx.counters "reissue.stale"
          | Alive task -> (
            match child_find task parent.Packet.slot with
            | None -> Counter.incr ctx.counters "reissue.stale"
            | Some child ->
              if child.filled || child.vote <> None then ()
              else if not (Stamp.equal child.c_stamp packet.Packet.stamp) then
                (* The slot has moved on (covered descendant drained
                   alongside its ancestor in Keep_all mode). *)
                Counter.incr ctx.counters "reissue.stale"
              else if List.exists (fun (_, d) -> d <> failed) child.dests then
                (* already re-homed by the orphan-result path *)
                ()
              else respawn_child t ctx task child ~reason))
        drained;
      (* Replicated slots: account the lost replicas with the voter. *)
      (match ctx.config.recovery with
      | Config.Replicate _ ->
        iter_live t (fun task ->
            child_iter
              (fun _ child ->
                match child.vote with
                | Some vote when not child.filled ->
                  let lost_here =
                    List.filter (fun (_, dest) -> dest = failed) child.dests
                  in
                  List.iter
                    (fun _ ->
                      match Vote.lose vote with
                      | Vote.Decided v -> if not child.filled then fill_slot t ctx task child v
                      | Vote.Inconclusive ->
                        Counter.incr ctx.counters "vote.inconclusive";
                        respawn_child t ctx task child ~reason:"vote-inconclusive"
                      | Vote.Undecided -> ())
                    lost_here
                | Some _ | None -> ())
              task)
      | Config.No_recovery | Config.Rollback | Config.Splice -> ());
      (* Surviving tasks regenerate their own lost children.  The table's
         topmost discipline suppressed proactive re-issue of covered
         descendants — sound for pure rollback, where the doomed subtree
         is recomputed wholesale from the topmost twin — but a survivor
         that is *not* doomed (an inherited orphan's piece under splice, or
         a live replica whose vote still needs it under replication) must
         make progress by itself, so the retained packet kept in the slot
         bookkeeping is re-issued here (the C4/B5 situation of §3 once
         B2's piece is salvaged).  Replicated slots stay with the voter. *)
      let local_regen () =
        iter_live t (fun task ->
            (* pending adoptions of orphans that just died are stale *)
            (match task.adopted with
            | [] -> ()
            | l ->
              let stale, keep =
                List.partition
                  (fun (_, ((orphan : Packet.link), _)) ->
                    Hashtbl.mem t.known_dead orphan.Packet.proc)
                  l
              in
              if stale <> [] then begin
                task.adopted <- keep;
                List.iter (fun _ -> Counter.incr ctx.counters "adopt.stale") stale
              end);
            child_iter
              (fun _ child ->
                if
                  (not child.filled)
                  && child.vote = None
                  && child.dests <> []
                  && List.for_all (fun (_, d) -> Hashtbl.mem t.known_dead d) child.dests
                then respawn_child t ctx task child ~reason:"local-regen")
              task)
      in
      (* Rollback discards orphans; splice keeps them alive, and every
         still-running orphan announces itself upward so its step-parent
         twin can inherit it rather than spawn a duplicate clone (§4.1:
         "this twin task inherits all offspring of the faulty task"). *)
      match ctx.config.recovery with
      | Config.Rollback ->
        abort_orphans t ctx ~failed;
        (* Under adaptive admission, deep children were never offered to
           the table, so the drained topmost set cannot cover them: each
           surviving parent regenerates its own unrecorded lost children
           (the admission rule's whole bet is that this recomputation is
           cheaper than having checkpointed them). *)
        (match ctx.config.ckpt_mode with
        | Config.Adaptive _ -> local_regen ()
        | Config.Fixed _ -> ())
      | Config.Replicate _ ->
        abort_orphans t ctx ~failed;
        local_regen ()
      | Config.Splice ->
        let adoption_on = ctx.config.adoption_grace > 0 in
        local_regen ();
        if adoption_on then
        iter_live t (fun task ->
            if
              task.packet.Packet.parent.Packet.proc = failed
              && not task.adoption_reported
            then begin
              task.adoption_reported <- true;
              let candidates =
                (match task.packet.Packet.grandparent with Some gp -> [ gp ] | None -> [])
                @ task.packet.Packet.ancestors
              in
              match
                List.find_opt
                  (fun (l : Packet.link) -> not (Hashtbl.mem t.known_dead l.Packet.proc))
                  candidates
              with
              | Some anc ->
                Counter.incr ctx.counters "adopt.sent";
                ctx.send ~src:t.nid ~dst:anc.Packet.proc
                  (Message.Orphan_alive
                     {
                       stamp = task.packet.Packet.stamp;
                       orphan =
                         { Packet.task = task.tid; proc = t.nid;
                           slot = task.packet.Packet.parent.Packet.slot };
                       dead_parent = task.packet.Packet.parent;
                       target = anc;
                     })
              | None -> Counter.incr ctx.counters "adopt.stranded"
            end)
      | Config.No_recovery -> ())
  end

(* ------------------------------------------------------------------ *)
(* Result delivery                                                     *)
(* ------------------------------------------------------------------ *)

(* A result (normal or spliced) reaches the task that owns the call slot. *)
let deliver_result_into t ctx task ~slot ~stamp value =
  match child_find task slot with
  | None ->
    (* The slot has not been reached yet (a salvaged result outran the
       step-parent's own evaluation, §4.1 cases 4–5): hold it so the spawn
       is skipped when the call node fires. *)
    if List.mem_assoc slot task.pending then begin
      Counter.incr ctx.counters "dup.ignored";
      Journal.record ctx.journal ~time:(ctx.now ()) ~stamp
        (Journal.Duplicate_ignored { task = task.tid })
    end
    else begin
      task.pending <- (slot, value) :: task.pending;
      Counter.incr ctx.counters "result.preheld"
    end
  | Some child ->
    if child.filled then begin
      Counter.incr ctx.counters "dup.ignored";
      Journal.record ctx.journal ~time:(ctx.now ()) ~stamp
        (Journal.Duplicate_ignored { task = task.tid })
    end
    else begin
      match child.vote with
      | None -> fill_slot t ctx task child value
      | Some vote -> (
        match Vote.add vote value with
        | Vote.Decided v -> fill_slot t ctx task child v
        | Vote.Undecided -> ()
        | Vote.Inconclusive ->
          Counter.incr ctx.counters "vote.inconclusive";
          respawn_child t ctx task child ~reason:"vote-inconclusive")
    end

(* An orphan's return arrived at the grandparent (§4.1): treat it as
   failure detection, make sure the dead child has a twin, and relay the
   salvaged value to the step-parent. *)
(* An orphan's salvaged result arrived at an ancestor (grandparent, or a
   deeper ancestor under the §5.2 extension).  Drive it down the chain of
   twins toward the orphan's step-parent:

   - the ancestor's own child on the chain is [Stamp.parent orphan] or an
     ancestor of it; regenerate its twin if it is still homed on a dead
     processor;
   - if the twin *is* the orphan's step-parent, forward [To_step_parent]
     (the twin's call slot is [dead_parent.slot] — slots are graph node
     ids, identical across activations of the same function);
   - if the chain is deeper, forward [To_grandparent] to the twin, which
     repeats this procedure one level down;
   - a twin that has not spawned the next chain link yet stashes the
     orphan result ([gc_pending]) and forwards when the spawn happens. *)
let handle_grandchild_result t ctx task ~(dead_parent : Packet.link) ~slot ~stamp value =
  Profile.time "recovery.splice.orphan_result" @@ fun () ->
  handle_failure ~reason:"orphan-result" t ctx ~failed:dead_parent.Packet.proc;
  let drop reason =
    Counter.incr ctx.counters "relay.dropped";
    Journal.record ctx.journal ~time:(ctx.now ()) ~stamp
      (Journal.Relay_dropped { at = t.nid; reason })
  in
  match Stamp.parent stamp with
  | None -> drop "orphan has no parent stamp"
  | Some parent_stamp -> (
    (* Locate the chain child: by slot when the stamps agree (the direct
       grandparent case), otherwise by stamp ancestry. *)
    let by_slot =
      match child_find task slot with
      | Some child
        when Stamp.equal child.c_stamp parent_stamp
             || Stamp.is_ancestor child.c_stamp parent_stamp ->
        Some child
      | Some _ | None -> None
    in
    let chain_child =
      match by_slot with
      | Some _ -> by_slot
      | None ->
        child_fold
          (fun _ child acc ->
            match acc with
            | Some _ -> acc
            | None ->
              if
                Stamp.equal child.c_stamp parent_stamp
                || Stamp.is_ancestor child.c_stamp parent_stamp
              then Some child
              else None)
          task None
    in
    match chain_child with
    | None ->
      (* The chain link is not spawned yet (this task is itself a twin
         that has not reached that call): hold the salvaged result. *)
      task.gc_pending <- (stamp, dead_parent, value) :: task.gc_pending;
      Counter.incr ctx.counters "relay.stashed"
    | Some child ->
      if child.filled then drop "parent slot already filled"
      else begin
        if List.for_all (fun (_, d) -> Hashtbl.mem t.known_dead d) child.dests then
          respawn_child t ctx task child ~reason:"orphan-result";
        match (child.dests, child.ctasks) with
        | (_, twin_proc) :: _, (_, twin_task) :: _ ->
          Counter.incr ctx.counters "relay.forwarded";
          Journal.record ctx.journal ~time:(ctx.now ()) ~stamp (Journal.Relayed { via = t.nid });
          let relay, tslot =
            if Stamp.equal child.c_stamp parent_stamp then
              (Message.To_step_parent { dead_parent }, dead_parent.Packet.slot)
            else (Message.To_grandparent { dead_parent }, -1)
          in
          ctx.send ~src:t.nid ~dst:twin_proc
            (Message.Result
               {
                 stamp;
                 value;
                 target = { Packet.task = twin_task; proc = twin_proc; slot = tslot };
                 relay;
               })
        | _ -> drop "no live twin destination"
      end)

(* An adoption report reached an ancestor (or, after forwarding, the
   step-parent twin itself).  Mirror image of {!handle_grandchild_result}
   for orphans that are still running: drive the report down the chain of
   twins; the step-parent records the orphan so the matching call slot is
   inherited instead of cloned. *)
let handle_orphan_alive t ctx task ~ostamp ~(orphan : Packet.link)
    ~(dead_parent : Packet.link) =
  Profile.time "recovery.splice.orphan_alive" @@ fun () ->
  handle_failure ~reason:"orphan-alive" t ctx ~failed:dead_parent.Packet.proc;
  match Stamp.parent ostamp with
  | None -> Counter.incr ctx.counters "adopt.dropped"
  | Some parent_stamp ->
    if Stamp.equal parent_stamp task.packet.Packet.stamp then begin
      (* This task is the step-parent.  If the clone for that stamp is
         already out, adoption lost the race (duplicates, §4.1 case 6). *)
      let clone_exists =
        child_fold (fun _ child acc -> acc || Stamp.equal child.c_stamp ostamp) task false
      in
      if clone_exists then Counter.incr ctx.counters "adopt.late"
      else begin
        let key = Stamp.digits ostamp in
        task.adopted <- (key, (orphan, dead_parent)) :: List.remove_assoc key task.adopted;
        Counter.incr ctx.counters "adopt.recorded"
      end
    end
    else begin
      let chain_child =
        child_fold
          (fun _ child acc ->
            match acc with
            | Some _ -> acc
            | None ->
              if
                Stamp.equal child.c_stamp parent_stamp
                || Stamp.is_ancestor child.c_stamp parent_stamp
              then Some child
              else None)
          task None
      in
      match chain_child with
      | None ->
        task.adopt_pending <- (ostamp, orphan, dead_parent) :: task.adopt_pending;
        Counter.incr ctx.counters "adopt.stashed"
      | Some child ->
        if child.filled then Counter.incr ctx.counters "adopt.dropped"
        else begin
          if List.for_all (fun (_, d) -> Hashtbl.mem t.known_dead d) child.dests then
            respawn_child t ctx task child ~reason:"orphan-alive";
          forward_orphan_alive t ctx child ~ostamp ~orphan ~dead_parent
        end
    end

(* ------------------------------------------------------------------ *)
(* Message delivery                                                    *)
(* ------------------------------------------------------------------ *)

let activate_task t ctx packet ~task_id =
  let graph = ctx.template packet.Packet.fname in
  let inst = Instance.create graph packet.Packet.args in
  let task =
    {
      tid = task_id;
      packet;
      inst;
      born = ctx.now ();
      state = Queued;
      child_seq = 0;
      children = None;
      pending = [];
      work = 0;
      result_dropped = false;
      gc_pending = [];
      adopted = [];
      adopt_pending = [];
      adoption_reported = false;
    }
  in
  let slot = alloc_slot t task in
  Hashtbl.replace t.tasks task_id { entry = Live slot };
  t.n_live <- t.n_live + 1;
  Journal.record ctx.journal ~time:(ctx.now ()) ~stamp:packet.Packet.stamp
    (Journal.Activated { task = task_id; proc = t.nid });
  (* Positive acknowledgement: moves the spawn out of transient state b/d
     (§4.3.2).  The super-root does not track acks. *)
  let parent = packet.Packet.parent in
  if parent.Packet.proc <> Ids.super_root then
    ctx.send ~src:t.nid ~dst:parent.Packet.proc
      (Message.Ack
         {
           child_stamp = packet.Packet.stamp;
           child_task = task_id;
           child_proc = t.nid;
           parent_task = parent.Packet.task;
           slot = parent.Packet.slot;
         });
  Queue.add task_id t.run_queue;
  ensure_stepping t ctx;
  task

let deliver t ctx msg =
  if t.alive then begin
    Counter.incr ctx.counters ("msg." ^ Message.label msg);
    match msg with
    | Message.Task_packet { packet; task_id; replica = _; replicas = _ }
      when Hashtbl.mem t.tasks task_id ->
      (* A retransmitted activation raced its transport ack: activation is
         idempotent by stamp + task id, so keep the existing instance
         untouched and only repeat the protocol-level Ack — the first one
         may have been lost, and the parent must still leave state b/d. *)
      Counter.incr ctx.counters "dup.task_packet";
      Journal.record ctx.journal ~time:(ctx.now ()) ~stamp:packet.Packet.stamp
        (Journal.Duplicate_ignored { task = task_id });
      let parent = packet.Packet.parent in
      if parent.Packet.proc <> Ids.super_root then
        ctx.send ~src:t.nid ~dst:parent.Packet.proc
          (Message.Ack
             {
               child_stamp = packet.Packet.stamp;
               child_task = task_id;
               child_proc = t.nid;
               parent_task = parent.Packet.task;
               slot = parent.Packet.slot;
             })
    | Message.Task_packet { packet; task_id; replica = _; replicas = _ } ->
      let task = activate_task t ctx packet ~task_id in
      (* A grace-delayed twin may have been overtaken by adoption reports
         and salvaged results addressed to it: apply them now. *)
      (match Hashtbl.find_opt t.early_adoptions task_id with
      | Some reports ->
        Hashtbl.remove t.early_adoptions task_id;
        List.iter
          (fun (ostamp, orphan, dead_parent) ->
            handle_orphan_alive t ctx task ~ostamp ~orphan ~dead_parent)
          (List.rev reports)
      | None -> ());
      (match Hashtbl.find_opt t.early_results task_id with
      | Some rs ->
        Hashtbl.remove t.early_results task_id;
        List.iter
          (fun (r : Message.result_payload) ->
            match r.Message.relay with
            | Message.To_parent | Message.To_step_parent _ ->
              deliver_result_into t ctx task ~slot:r.Message.target.Packet.slot
                ~stamp:r.Message.stamp r.Message.value
            | Message.To_grandparent { dead_parent } ->
              handle_grandchild_result t ctx task ~dead_parent
                ~slot:r.Message.target.Packet.slot ~stamp:r.Message.stamp r.Message.value)
          (List.rev rs)
      | None -> ())
    | Message.Orphan_alive { stamp; orphan; dead_parent; target } -> (
      match lookup t target.Packet.task with
      | Alive task -> handle_orphan_alive t ctx task ~ostamp:stamp ~orphan ~dead_parent
      | Gone _ -> Counter.incr ctx.counters "adopt.ignored"
      | Absent ->
        (* the twin's own packet is still in flight: hold the report *)
        let prev =
          Option.value ~default:[] (Hashtbl.find_opt t.early_adoptions target.Packet.task)
        in
        Hashtbl.replace t.early_adoptions target.Packet.task
          ((stamp, orphan, dead_parent) :: prev))
    | Message.Ack { child_stamp; child_task; child_proc; parent_task; slot = _ } -> (
      (* Establishes the parent→child pointer (state b/d → c/e). *)
      match Hashtbl.find_opt t.tasks parent_task with
      | Some _ ->
        Journal.record ctx.journal ~time:(ctx.now ()) ~stamp:child_stamp
          (Journal.Acked { task = child_task; proc = child_proc });
        tracef t ctx "ack for %s: task%d on %s" (Stamp.to_string child_stamp) child_task
          (Ids.proc_to_string child_proc)
      | None -> Counter.incr ctx.counters "ack.ignored")
    | Message.Result { stamp; value; target; relay } -> (
      match lookup t target.Packet.task with
      | Absent -> (
        match relay with
        | Message.To_step_parent _ | Message.To_grandparent _ ->
          (* salvage addressed to a twin whose packet is still in flight *)
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt t.early_results target.Packet.task)
          in
          Hashtbl.replace t.early_results target.Packet.task
            ({ Message.stamp; value; target; relay } :: prev)
        | Message.To_parent ->
          (* "If a processor receives a packet and cannot find a proper
             rule to handle it, the processor simply ignores the
             message." *)
          Counter.incr ctx.counters "result.ignored")
      | Gone _ -> Counter.incr ctx.counters "result.ignored"
      | Alive task -> (
        match relay with
        | Message.To_parent | Message.To_step_parent _ ->
          deliver_result_into t ctx task ~slot:target.Packet.slot ~stamp value
        | Message.To_grandparent { dead_parent } -> (
          match ctx.config.recovery with
          | Config.Splice ->
            handle_grandchild_result t ctx task ~dead_parent ~slot:target.Packet.slot ~stamp
              value
          | Config.No_recovery | Config.Rollback | Config.Replicate _ ->
            Counter.incr ctx.counters "relay.dropped")))
    | Message.Reparent { orphan_task; new_parent; new_grandparent } -> (
      match lookup t orphan_task with
      | Absent -> Counter.incr ctx.counters "reparent.ignored"
      | Alive task ->
        (* a live orphan has no answer yet; its eventual return follows
           the rewritten links *)
        task.packet <-
          Packet.reparent task.packet ~parent:new_parent ~grandparent:new_grandparent;
        Counter.incr ctx.counters "reparent.applied"
      | Gone p -> (
        p.r_packet <-
          Packet.reparent p.r_packet ~parent:new_parent ~grandparent:new_grandparent;
        Counter.incr ctx.counters "reparent.applied";
        match (p.r_state, p.r_result) with
        | Done, Some v ->
          (* completed before learning the address: deliver now (a
             duplicate of an earlier successful relay is absorbed) *)
          if p.r_dropped then begin
            p.r_dropped <- false;
            t.n_wasted <- t.n_wasted - p.r_work
          end;
          ctx.send ~src:t.nid ~dst:new_parent.Packet.proc
            (Message.Result
               { stamp = p.r_packet.Packet.stamp; value = v; target = new_parent;
                 relay = Message.To_parent })
        | _ -> ()))
    | Message.Gradient { from; value } ->
      let prev = Hashtbl.find_opt t.gradient_heard from in
      Hashtbl.replace t.gradient_heard from value;
      (* keep the cached minimum exact without a fold: a lower value from
         a live peer tightens it directly; raising the (possible) holder
         of the minimum forces a recount *)
      if (not (Hashtbl.mem t.known_dead from)) && value < t.heard_min then
        t.heard_min <- value
      else (
        match prev with
        | Some p when p <= t.heard_min -> t.heard_dirty <- true
        | Some _ | None -> ())
    | Message.Abort { task } -> (
      match lookup t task with
      | Alive task -> abort_task t ctx task
      | Gone _ -> () (* already finished or aborted: nothing to reclaim *)
      | Absent -> Counter.incr ctx.counters "abort.ignored")
    | Message.Failure_notice { failed } -> handle_failure t ctx ~failed
  end

(* ------------------------------------------------------------------ *)
(* Bounce: an earlier send turned out to be undeliverable (§1 timeout) *)
(* ------------------------------------------------------------------ *)

let handle_bounce t ctx ~dead msg =
  if t.alive then begin
    (* An undeliverable message is failure detection in its own right (§1:
       unreachable ⇒ faulty): run the full error-detection response, not
       just a local note — otherwise the later broadcast notice would be
       ignored as already-known and checkpoints would never be re-issued. *)
    handle_failure ~reason:"bounce-detect" t ctx ~failed:dead;
    Counter.incr ctx.counters "msg.bounced";
    match msg with
    | Message.Task_packet { packet; task_id = _; replica = _; replicas = _ } -> (
      (* The packet never arrived (transient state b/d): the retained
         checkpoint regenerates it, exactly like a failure notice would. *)
      match lookup t packet.Packet.parent.Packet.task with
      | Absent -> Counter.incr ctx.counters "reissue.stale"
      | Gone _ -> ()
      | Alive task -> (
        match child_find task packet.Packet.parent.Packet.slot with
        | Some child when not child.filled ->
          if List.for_all (fun (_, d) -> Hashtbl.mem t.known_dead d) child.dests then
            respawn_child t ctx task child ~reason:"bounced-packet"
        | Some _ | None -> ()))
    | Message.Result ({ relay = Message.To_parent; _ } as r) -> (
      (* The paper's D4 moment: the return found its parent dead. *)
      match ctx.config.recovery with
      | Config.Splice ->
        (* Identify the producing task so its packet supplies the
           grandparent link; re-route through the relay logic.  Producers
           are [Done], hence retired — scan the tombstones in the index's
           legacy order (last match wins, as before). *)
        let producer =
          Hashtbl.fold
            (fun _ cell acc ->
              match cell.entry with
              | Retired p
                when p.r_state = Done && Stamp.equal p.r_packet.Packet.stamp r.stamp ->
                Some p
              | _ -> acc)
            t.tasks None
        in
        (match producer with
        | Some p ->
          return_result_from t ctx ~packet:p.r_packet ~tid:p.r_tid
            ~mark_dropped:(fun () -> mark_retired_dropped t p)
            r.value
        | None ->
          Counter.incr ctx.counters "relay.dropped";
          Journal.record ctx.journal ~time:(ctx.now ()) ~stamp:r.stamp
            (Journal.Relay_dropped { at = t.nid; reason = "producer gone after bounce" }))
      | Config.No_recovery | Config.Rollback | Config.Replicate _ ->
        Counter.incr ctx.counters "result.orphan_dropped";
        Journal.record ctx.journal ~time:(ctx.now ()) ~stamp:r.stamp
          (Journal.Orphan_dropped { task = r.target.Packet.task }))
    | Message.Result { relay = Message.To_grandparent _; stamp; _ } ->
      (* Grandparent dead as well (§5.2's stranded orphan). *)
      Counter.incr ctx.counters "relay.stranded";
      Journal.record ctx.journal ~time:(ctx.now ()) ~stamp
        (Journal.Relay_dropped { at = t.nid; reason = "grandparent dead (stranded orphan)" })
    | Message.Result { relay = Message.To_step_parent _; stamp; _ } ->
      (* The twin's processor died before the salvaged result landed; the
         next failure notice will regenerate the twin and recompute. *)
      Counter.incr ctx.counters "relay.dropped";
      Journal.record ctx.journal ~time:(ctx.now ()) ~stamp
        (Journal.Relay_dropped { at = t.nid; reason = "step-parent died" })
    | Message.Orphan_alive _ ->
      (* The ancestor died before the report landed: the orphan will fall
         back to the result-relay path (or strand) at completion time. *)
      Counter.incr ctx.counters "adopt.stranded"
    | Message.Gradient _ | Message.Reparent _ | Message.Ack _ | Message.Abort _
    | Message.Failure_notice _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* CPU quantum                                                         *)
(* ------------------------------------------------------------------ *)

let should_inline ctx (task : task) = Stamp.depth task.packet.Packet.stamp + 1 >= ctx.config.inline_depth

let charge t task cost =
  t.work_ticks <- t.work_ticks + cost;
  task.work <- task.work + cost

let rec pick_next t ctx =
  match Queue.take_opt t.run_queue with
  | None -> t.stepping <- false
  | Some tid -> (
    match lookup t tid with
    | Alive task ->
      set_state t task Running;
      t.current <- Some tid;
      ctx.wake t.nid ~delay:ctx.config.ctx_switch
    | Gone _ | Absent -> pick_next t ctx)

let step t ctx =
  if t.alive then begin
    match t.current with
    | None -> pick_next t ctx
    | Some tid -> (
      match lookup t tid with
      | Absent | Gone _ ->
        t.current <- None;
        pick_next t ctx
      | Alive task -> (
          match Instance.step task.inst with
          | Instance.Work { cost } ->
            let ticks = cost * ctx.config.work_tick in
            charge t task ticks;
            ctx.wake t.nid ~delay:(max 1 ticks)
          | Instance.Spawn { slot; fname; args } -> (
            match List.assoc_opt slot task.pending with
            | Some v ->
              (* A salvaged result beat us to this call: adopt it instead
                 of spawning (§4.1 cases 4–5: "P' will not spawn C'
                 because the answer is already there"). *)
              task.pending <- List.remove_assoc slot task.pending;
              let c_stamp = Stamp.child task.packet.Packet.stamp task.child_seq in
              task.child_seq <- task.child_seq + 1;
              Hashtbl.replace (children_tbl task) slot
                {
                  slot;
                  c_stamp;
                  c_packet = task.packet;
                  dests = [];
                  ctasks = [];
                  vote = None;
                  filled = true;
                };
              Instance.supply task.inst slot v;
              Counter.incr ctx.counters "spawn.skipped_preheld";
              Journal.record ctx.journal ~time:(ctx.now ()) ~stamp:c_stamp
                (Journal.Result_accepted { task = task.tid });
              ctx.wake t.nid ~delay:1
            | None ->
              let next_stamp = Stamp.child task.packet.Packet.stamp task.child_seq in
              let next_key = Stamp.digits next_stamp in
              let adoption =
                match List.assoc_opt next_key task.adopted with
                | Some (orphan, _) when Hashtbl.mem t.known_dead orphan.Packet.proc ->
                  (* the orphan died since it reported: the adoption is
                     stale; spawn a fresh child instead *)
                  task.adopted <- List.remove_assoc next_key task.adopted;
                  Counter.incr ctx.counters "adopt.stale";
                  None
                | other -> other
              in
              (match adoption with
              | Some (orphan, _dead_parent) ->
                (* Inherit the living orphan: bind the slot to it instead
                   of spawning a clone; its result arrives via the
                   grandparent relay. *)
                task.adopted <- List.remove_assoc next_key task.adopted;
                let packet = build_child_packet t ctx task ~slot ~fname ~args in
                ignore (record_checkpoint t ctx ~dest:orphan.Packet.proc packet);
                let child =
                  { slot; c_stamp = packet.Packet.stamp; c_packet = packet;
                    dests = [ (0, orphan.Packet.proc) ];
                    ctasks = [ (0, orphan.Packet.task) ]; vote = None; filled = false }
                in
                Hashtbl.replace (children_tbl task) slot child;
                Counter.incr ctx.counters "spawn.inherited";
                Journal.record ctx.journal ~time:(ctx.now ()) ~stamp:packet.Packet.stamp
                  (Journal.Inherited
                     { orphan_task = orphan.Packet.task; proc = orphan.Packet.proc });
                (* tell the orphan its new return address (§3.4's second
                   option); if it already finished and its relay stranded,
                   it will re-send the result here *)
                ctx.send ~src:t.nid ~dst:orphan.Packet.proc
                  (Message.Reparent
                     {
                       orphan_task = orphan.Packet.task;
                       new_parent = { Packet.task = task.tid; proc = t.nid; slot };
                       new_grandparent = Some task.packet.Packet.parent;
                     });
                flush_gc_pending t ctx task child;
                flush_adopt_pending t ctx task child;
                ctx.wake t.nid ~delay:1
              | None ->
              if should_inline ctx task then begin
                match ctx.inline_eval fname args with
                | Ok (v, steps) ->
                  let ticks = max 1 (steps * ctx.config.work_tick) in
                  charge t task ticks;
                  Instance.supply task.inst slot v;
                  Counter.incr ctx.counters "spawn.inline";
                  Journal.record ctx.journal ~time:(ctx.now ())
                    ~stamp:task.packet.Packet.stamp
                    (Journal.Inlined { parent_task = task.tid; proc = t.nid; work = ticks });
                  ctx.wake t.nid ~delay:ticks
                | Error msg -> ctx.program_error msg
              end
              else begin
                let recorded = spawn_child t ctx task ~slot ~fname ~args in
                let cost = ctx.config.spawn_cost + (recorded * ctx.config.ckpt_cost) in
                charge t task cost;
                ctx.wake t.nid ~delay:(max 1 cost)
              end))
          | Instance.Blocked ->
            set_state t task Blocked;
            t.current <- None;
            pick_next t ctx
          | Instance.Finished v ->
            complete_task t ctx task v;
            t.current <- None;
            pick_next t ctx
          | Instance.Failed msg -> ctx.program_error msg))
  end

let gradient_value t = t.gradient_value

let kill t ctx =
  if t.alive then begin
    t.alive <- false;
    t.stepping <- false;
    t.current <- None;
    Queue.clear t.run_queue;
    Counter.add ctx.counters "task.lost_in_failure" t.n_live;
    (* Tasks die with the node; mark them so queries do not mistake them
       for survivors.  Their packets live on in peers' checkpoint tables.
       A [Lost] entry (distinct from [Aborted], which means rollback
       garbage collection) preserves the destroyed work for the
       observability layer. *)
    Hashtbl.iter
      (fun _ cell ->
        match cell.entry with
        | Live s -> (
          match t.arena.(s) with
          | Some task when task_live task ->
            Journal.record ctx.journal ~time:(ctx.now ()) ~stamp:task.packet.Packet.stamp
              (Journal.Lost { task = task.tid; proc = t.nid; work = task.work });
            set_state t task Aborted;
            t.n_wasted <- t.n_wasted + task.work;
            retire_cell t cell task
          | Some _ | None -> ())
        | Retired _ -> ())
      t.tasks
  end
