module Stamp = Recflow_recovery.Stamp
module Packet = Recflow_recovery.Packet
module Ids = Recflow_recovery.Ids

type relay =
  | To_parent
  | To_grandparent of { dead_parent : Packet.link }
  | To_step_parent of { dead_parent : Packet.link }

type result_payload = {
  stamp : Stamp.t;
  value : Recflow_lang.Value.t;
  target : Packet.link;
  relay : relay;
}

type t =
  | Task_packet of { packet : Packet.t; task_id : Ids.task_id; replica : int; replicas : int }
  | Orphan_alive of {
      stamp : Stamp.t;
      orphan : Packet.link;
      dead_parent : Packet.link;
      target : Packet.link;
    }
  | Reparent of {
      orphan_task : Ids.task_id;
      new_parent : Packet.link;
      new_grandparent : Packet.link option;
    }
  | Ack of {
      child_stamp : Stamp.t;
      child_task : Ids.task_id;
      child_proc : Ids.proc_id;
      parent_task : Ids.task_id;
      slot : int;
    }
  | Result of result_payload
  | Gradient of { from : Ids.proc_id; value : int }
  | Abort of { task : Ids.task_id }
  | Failure_notice of { failed : Ids.proc_id }

let label = function
  | Task_packet _ -> "task_packet"
  | Orphan_alive _ -> "orphan_alive"
  | Reparent _ -> "reparent"
  | Ack _ -> "ack"
  | Result _ -> "result"
  | Gradient _ -> "gradient"
  | Abort _ -> "abort"
  | Failure_notice _ -> "failure_notice"

let describe = function
  | Task_packet { packet; task_id; replica; replicas } ->
    if replicas > 1 then
      Printf.sprintf "task %s (task%d, replica %d/%d)" (Packet.describe packet) task_id replica
        replicas
    else Printf.sprintf "task %s (task%d)" (Packet.describe packet) task_id
  | Orphan_alive { stamp; orphan; target; _ } ->
    Printf.sprintf "orphan %s alive (task%d on %s) -> task%d on %s" (Stamp.to_string stamp)
      orphan.Packet.task
      (Ids.proc_to_string orphan.Packet.proc)
      target.Packet.task
      (Ids.proc_to_string target.Packet.proc)
  | Reparent { orphan_task; new_parent; _ } ->
    Printf.sprintf "reparent task%d -> task%d slot %d on %s" orphan_task new_parent.Packet.task
      new_parent.Packet.slot
      (Ids.proc_to_string new_parent.Packet.proc)
  | Ack { child_stamp; child_task; child_proc; parent_task; slot } ->
    Printf.sprintf "ack %s task%d on %s -> task%d slot %d" (Stamp.to_string child_stamp)
      child_task
      (Ids.proc_to_string child_proc)
      parent_task slot
  | Result { stamp; target; relay; _ } ->
    let kind =
      match relay with
      | To_parent -> "result"
      | To_grandparent _ -> "grandchild result"
      | To_step_parent _ -> "spliced result"
    in
    Printf.sprintf "%s of %s -> task%d slot %d on %s" kind (Stamp.to_string stamp) target.task
      target.slot
      (Ids.proc_to_string target.proc)
  | Gradient { from; value } ->
    Printf.sprintf "gradient %d from %s" value (Ids.proc_to_string from)
  | Abort { task } -> Printf.sprintf "abort task%d" task
  | Failure_notice { failed } -> Printf.sprintf "failure notice: %s" (Ids.proc_to_string failed)
