module Ids = Recflow_recovery.Ids
module Stamp = Recflow_recovery.Stamp
module Packet = Recflow_recovery.Packet
module Value = Recflow_lang.Value
module Graph = Recflow_lang.Graph
module Eval_serial = Recflow_lang.Eval_serial
module Engine = Recflow_sim.Engine
module Trace = Recflow_sim.Trace
module Rng = Recflow_sim.Rng
module Counter = Recflow_stats.Counter
module Router = Recflow_net.Router
module Topology = Recflow_net.Topology
module Latency = Recflow_net.Latency
module Policy = Recflow_balance.Policy

type event =
  | Deliver of { src : Ids.proc_id; dst : Ids.proc_id; msg : Message.t }
  | Bounce of { src : Ids.proc_id; dead : Ids.proc_id; msg : Message.t }
  | Step of Ids.proc_id
  | Fail of Ids.proc_id
  | Gradient_tick of Ids.proc_id

type outcome = {
  answer : Value.t option;
  answer_time : int option;
  sim_time : int;
  events : int;
  error : string option;
}

type root_state = {
  mutable packet : Packet.t option;  (** the super-root's functional checkpoint *)
  mutable dest : Ids.proc_id;
  mutable task : Ids.task_id;
  mutable pending : (int * Value.t) list;  (** salvaged results awaiting the twin *)
}

type t = {
  cfg : Config.t;
  program : Recflow_lang.Program.t;
  library : Graph.library;
  engine : event Engine.t;
  router : Router.t;
  node_arr : Node.t array;
  journal : Journal.t;
  counters : Counter.set;
  trace : Trace.t;
  rng : Rng.t;
  policy : Policy.t;
  mutable next_task_id : Ids.task_id;
  root : root_state;
  mutable answer : Value.t option;
  mutable answer_time : int option;
  mutable error : string option;
  mutable started : bool;
  mutable drain : bool;
  mutable node_ctx : Node.ctx option;
      (* built once on first use: rebuilding ~14 closures per dispatched
         event shows up at millions of events *)
}

let config t = t.cfg

let journal t = t.journal

let counters t = t.counters

let trace t = t.trace

let router t = t.router

let now t = Engine.now t.engine

let node t pid =
  if pid < 0 || pid >= Array.length t.node_arr then
    invalid_arg (Printf.sprintf "Cluster.node: no processor %d" pid);
  t.node_arr.(pid)

let nodes t = Array.to_list t.node_arr

let total_work t = Array.fold_left (fun acc n -> acc + Node.work_done n) 0 t.node_arr

let total_waste t = Array.fold_left (fun acc n -> acc + Node.wasted_work n) 0 t.node_arr

let root_location t = if t.root.dest >= 0 then Some t.root.dest else None

let fresh_task_id t () =
  let id = t.next_task_id in
  t.next_task_id <- id + 1;
  id

let pressure t pid =
  let n = t.node_arr.(pid) in
  if Node.is_alive n then Node.runnable_tasks n else max_int / 2

let view t = { Policy.router = t.router; pressure = pressure t }

let place t ~origin ~key =
  let origin = if origin = Ids.super_root then 0 else origin in
  Policy.choose t.policy (view t) ~origin ~key

let first_alive t ~key =
  match Router.alive_nodes t.router with
  | [] -> None
  | alive ->
    (* [abs min_int] is negative (two's complement has no positive
       counterpart), which made [mod] produce a negative index and
       [List.nth] raise; masking the sign bit keeps every key usable. *)
    Some (List.nth alive (key land max_int mod List.length alive))

let hops t ~src ~dst =
  let src = if src = Ids.super_root then dst else src in
  let dst = if dst = Ids.super_root then src else dst in
  if src = dst || src < 0 || dst < 0 then 0
  else
    match Router.distance t.router src dst with
    | Some h -> h
    | None -> Topology.ideal_distance (Router.topology t.router) src dst

let send_after t ~delay:extra ~src ~dst msg =
  Counter.incr t.counters "msg.sent";
  let delay =
    extra
    + Latency.delay ~rng:(fun bound -> Rng.int t.rng bound) t.cfg.Config.latency
        ~hops:(hops t ~src ~dst)
  in
  Engine.schedule t.engine ~delay (Deliver { src; dst; msg })

let send t ~src ~dst msg = send_after t ~delay:0 ~src ~dst msg

let wake t pid ~delay = Engine.schedule t.engine ~delay (Step pid)

let inline_eval t fname args =
  match Eval_serial.eval t.program fname (Array.to_list args) with
  | v, steps -> Ok (v, steps)
  | exception Eval_serial.Runtime_error msg -> Error msg
  | exception Not_found -> Error ("call to unknown function " ^ fname)

let program_error t msg =
  if t.error = None then begin
    t.error <- Some msg;
    Trace.log t.trace ~time:(now t) ~level:Trace.Error ~tag:"cluster" ("program error: " ^ msg);
    Engine.stop t.engine
  end

let build_ctx t : Node.ctx =
  {
    Node.config = t.cfg;
    now = (fun () -> now t);
    send = (fun ~src ~dst msg -> send t ~src ~dst msg);
    send_after = (fun ~delay ~src ~dst msg -> send_after t ~delay ~src ~dst msg);
    wake = (fun pid ~delay -> wake t pid ~delay);
    fresh_task_id = fresh_task_id t;
    place = (fun ~origin ~key -> place t ~origin ~key);
    first_alive = (fun ~key -> first_alive t ~key);
    neighbors = (fun pid -> Topology.neighbors (Router.topology t.router) pid);
    template = Graph.find_exn t.library;
    inline_eval = inline_eval t;
    journal = t.journal;
    counters = t.counters;
    trace = t.trace;
    program_error = program_error t;
  }

let ctx t =
  match t.node_ctx with
  | Some c -> c
  | None ->
    let c = build_ctx t in
    t.node_ctx <- Some c;
    c

let create cfg program =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Cluster.create: " ^ msg));
  let n = Topology.size cfg.Config.topology in
  {
    cfg;
    program;
    library = Graph.compile_program program;
    engine = Engine.create ();
    router = Router.create cfg.Config.topology;
    node_arr = Array.init n (fun i -> Node.create i cfg);
    journal = Journal.create ();
    counters = Counter.create_set ();
    trace = Trace.create ~capacity:cfg.Config.trace_capacity ();
    rng = Rng.create cfg.Config.seed;
    policy = Policy.create ~seed:cfg.Config.seed cfg.Config.policy;
    next_task_id = 0;
    root = { packet = None; dest = -2; task = Ids.no_task; pending = [] };
    answer = None;
    answer_time = None;
    error = None;
    started = false;
    drain = false;
    node_ctx = None;
  }

(* ------------------------------------------------------------------ *)
(* Super-root (§4.3.1)                                                 *)
(* ------------------------------------------------------------------ *)

let root_super_slot = 0

(* Dispatch (or re-dispatch) the root task from the super-root's retained
   checkpoint. *)
let dispatch_root t ~reason =
  match t.root.packet with
  | None -> ()
  | Some packet -> (
    match Router.alive_nodes t.router with
    | [] -> Trace.log t.trace ~time:(now t) ~level:Trace.Error ~tag:"SR" "no live processor for root"
    | _ :: _ ->
      let task_id = fresh_task_id t () in
      let dest = place t ~origin:Ids.super_root ~key:(Stamp.hash packet.Packet.stamp + task_id) in
      (* capture the dead activation's identity before re-homing *)
      let dead_task = t.root.task and dead_dest = t.root.dest in
      t.root.dest <- dest;
      t.root.task <- task_id;
      send t ~src:Ids.super_root ~dst:dest
        (Message.Task_packet { packet; task_id; replica = 0; replicas = 1 });
      (match reason with
      | None -> Journal.record t.journal ~time:(now t) ~stamp:Stamp.root
          (Journal.Spawned { task = task_id; dest; replica = 0 })
      | Some reason ->
        Counter.incr t.counters "reissue.root";
        Journal.record t.journal ~time:(now t) ~stamp:Stamp.root
          (Journal.Respawned { task = task_id; dest; reason }));
      (* Forward any salvaged results that were waiting for a twin. *)
      let pending = t.root.pending in
      t.root.pending <- [];
      List.iter
        (fun (slot, value) ->
          send t ~src:Ids.super_root ~dst:dest
            (Message.Result
               {
                 stamp = Stamp.root;
                 value;
                 target = { Packet.task = task_id; proc = dest; slot };
                 relay =
                   Message.To_step_parent
                     { dead_parent = { Packet.task = dead_task; proc = dead_dest; slot } };
               }))
        pending)

let super_root_deliver t msg =
  match msg with
  | Message.Result { value; relay = Message.To_parent; _ } ->
    if t.answer = None then begin
      t.answer <- Some value;
      t.answer_time <- Some (now t);
      Trace.logf t.trace ~time:(now t) ~level:Trace.Info ~tag:"SR" "answer: %s"
        (Value.to_string value);
      if not t.drain then Engine.stop t.engine
    end
  | Message.Result { value; target; relay = Message.To_grandparent { dead_parent }; _ } ->
    (* An orphan child of the (dead) root salvages its result through the
       super-root acting as grandparent. *)
    if t.answer = None && t.cfg.Config.recovery = Config.Splice then begin
      let root_alive = t.root.dest >= 0 && Router.alive t.router t.root.dest in
      if root_alive && t.root.dest <> dead_parent.Packet.proc then
        (* a twin already exists: forward straight to it *)
        send t ~src:Ids.super_root ~dst:t.root.dest
          (Message.Result
             {
               stamp = Stamp.root;
               value;
               target =
                 { Packet.task = t.root.task; proc = t.root.dest; slot = dead_parent.Packet.slot };
               relay = Message.To_step_parent { dead_parent };
             })
      else begin
        t.root.pending <- (dead_parent.Packet.slot, value) :: t.root.pending;
        dispatch_root t ~reason:(Some "orphan-result")
      end;
      ignore target
    end
  | Message.Orphan_alive { stamp; orphan; dead_parent; target = _ } ->
    (* A child of the (dead) root announces itself: make sure the root has
       a twin and let the twin inherit the orphan. *)
    if t.answer = None && t.cfg.Config.recovery = Config.Splice then begin
      let root_alive = t.root.dest >= 0 && Router.alive t.router t.root.dest in
      if (not root_alive) || t.root.dest = dead_parent.Packet.proc then
        dispatch_root t ~reason:(Some "orphan-alive");
      if t.root.dest >= 0 && Router.alive t.router t.root.dest then
        send t ~src:Ids.super_root ~dst:t.root.dest
          (Message.Orphan_alive
             { stamp; orphan; dead_parent;
               target = { Packet.task = t.root.task; proc = t.root.dest; slot = -1 } })
    end
  | Message.Result { relay = Message.To_step_parent _; _ }
  | Message.Task_packet _ | Message.Reparent _ | Message.Gradient _ | Message.Ack _
  | Message.Abort _ | Message.Failure_notice _ ->
    ()

(* ------------------------------------------------------------------ *)
(* Failure injection                                                   *)
(* ------------------------------------------------------------------ *)

let fail_at t ~time pid =
  if pid < 0 || pid >= Array.length t.node_arr then
    invalid_arg (Printf.sprintf "Cluster.fail_at: no processor %d" pid);
  Engine.schedule_at t.engine ~time (Fail pid)

let handle_fail t pid =
  let n = t.node_arr.(pid) in
  if Node.is_alive n then begin
    Node.kill n (ctx t);
    Router.kill t.router pid;
    Counter.incr t.counters "failure.injected";
    Journal.record t.journal ~time:(now t) ~stamp:Stamp.root (Journal.Failure { proc = pid });
    Trace.logf t.trace ~time:(now t) ~level:Trace.Warn ~tag:"cluster" "%s failed"
      (Ids.proc_to_string pid);
    (* Error detection: every live peer learns after a detection delay that
       grows with its distance from the failed node. *)
    let topo = Router.topology t.router in
    Array.iter
      (fun peer ->
        if Node.is_alive peer then begin
          let d = Topology.ideal_distance topo pid (Node.id peer) in
          let delay = t.cfg.Config.detect_delay + (d * t.cfg.Config.latency.Latency.per_hop) in
          Engine.schedule t.engine ~delay
            (Deliver
               { src = Node.id peer; dst = Node.id peer; msg = Message.Failure_notice { failed = pid } })
        end)
      t.node_arr;
    (* The super-root notices the loss of the root task's processor. *)
    if t.root.dest = pid && t.answer = None && t.cfg.Config.recovery <> Config.No_recovery then begin
      let delay = t.cfg.Config.detect_delay in
      Engine.schedule t.engine ~delay
        (Deliver { src = Ids.super_root; dst = Ids.super_root; msg = Message.Failure_notice { failed = pid } })
    end
  end

(* ------------------------------------------------------------------ *)
(* Event loop                                                          *)
(* ------------------------------------------------------------------ *)

let handle_event t _at ev =
  match ev with
  | Deliver { src; dst; msg } ->
    if dst = Ids.super_root then begin
      match msg with
      | Message.Failure_notice { failed } ->
        if t.root.dest = failed && t.answer = None then dispatch_root t ~reason:(Some "notice")
      | _ -> super_root_deliver t msg
    end
    else begin
      let n = t.node_arr.(dst) in
      if Node.is_alive n then Node.deliver n (ctx t) msg
      else if src = Ids.super_root then begin
        (* the super-root's own send bounced: re-dispatch the root *)
        Counter.incr t.counters "msg.bounced";
        if t.answer = None && t.cfg.Config.recovery <> Config.No_recovery then
          Engine.schedule t.engine ~delay:t.cfg.Config.bounce_delay
            (Deliver
               { src = Ids.super_root; dst = Ids.super_root;
                 msg = Message.Failure_notice { failed = dst } })
      end
      else
        Engine.schedule t.engine ~delay:t.cfg.Config.bounce_delay (Bounce { src; dead = dst; msg })
    end
  | Bounce { src; dead; msg } ->
    if src >= 0 then begin
      let n = t.node_arr.(src) in
      if Node.is_alive n then Node.handle_bounce n (ctx t) ~dead msg
    end
  | Step pid -> Node.step t.node_arr.(pid) (ctx t)
  | Gradient_tick pid ->
    let n = t.node_arr.(pid) in
    if Node.is_alive n && t.answer = None then begin
      Node.gradient_tick n (ctx t);
      Engine.schedule t.engine ~delay:t.cfg.Config.gradient_period (Gradient_tick pid)
    end
  | Fail pid -> handle_fail t pid

let start t ~fname ~args =
  if t.started then invalid_arg "Cluster.start: already started";
  (match Recflow_lang.Program.arity t.program fname with
  | None -> invalid_arg ("Cluster.start: unknown function " ^ fname)
  | Some a when a <> List.length args ->
    invalid_arg (Printf.sprintf "Cluster.start: %s expects %d arguments" fname a)
  | Some _ -> ());
  t.started <- true;
  (* arm the distributed gradient exchange when that policy is selected;
     ticks stop once the answer lands so the event queue can drain *)
  (match t.cfg.Config.policy with
  | Policy.Gradient_distributed _ ->
    Array.iteri
      (fun pid _ ->
        Engine.schedule t.engine ~delay:(1 + (pid * 7 mod t.cfg.Config.gradient_period))
          (Gradient_tick pid))
      t.node_arr
  | _ -> ());
  let packet = Packet.root ~fname ~args:(Array.of_list args) ~super_slot:root_super_slot in
  t.root.packet <- Some packet;  (* the pre-evaluation checkpoint *)
  dispatch_root t ~reason:None

let run ?(drain = false) t =
  if not t.started then invalid_arg "Cluster.run: call start first";
  t.drain <- drain;
  Engine.run t.engine ~until:t.cfg.Config.horizon (fun at ev -> handle_event t at ev);
  {
    answer = t.answer;
    answer_time = t.answer_time;
    sim_time = now t;
    events = Engine.events_dispatched t.engine;
    error = t.error;
  }
