module Ids = Recflow_recovery.Ids
module Stamp = Recflow_recovery.Stamp
module Packet = Recflow_recovery.Packet
module Value = Recflow_lang.Value
module Graph = Recflow_lang.Graph
module Eval_serial = Recflow_lang.Eval_serial
module Engine = Recflow_sim.Engine
module Trace = Recflow_sim.Trace
module Rng = Recflow_sim.Rng
module Counter = Recflow_stats.Counter
module Hdr = Recflow_stats.Hdr
module Router = Recflow_net.Router
module Topology = Recflow_net.Topology
module Latency = Recflow_net.Latency
module Policy = Recflow_balance.Policy

module Chaos = Recflow_net.Chaos

type event =
  | Deliver of { src : Ids.proc_id; dst : Ids.proc_id; msg : Message.t; seq : int }
      (** [seq >= 0] marks a reliable (tracked, retransmitted) send *)
  | Tack of { seq : int }  (** transport ack arriving back at the sender *)
  | Retry of { seq : int }  (** retransmission timer for a reliable send *)
  | Batch of { key : int; dst : Ids.proc_id }
      (** batched delivery: one event standing for every same-tick message
          bound for [dst]; the payloads sit in the cluster's batch buffer
          under [key] until this fires *)
  | Bounce of { src : Ids.proc_id; dead : Ids.proc_id; msg : Message.t }
  | Step of Ids.proc_id
  | Fail of Ids.proc_id
  | Gradient_tick of Ids.proc_id
  | Callback of (unit -> unit)
      (** service-mode hook: open-loop arrival generators run inside the
          event loop so inter-arrival draws stay in simulated time *)

(* One in-flight reliable send.  [p_settled] flips when the transport ack
   arrives or the destination is discovered dead; the next timer firing
   then retires the entry. *)
type pending_send = {
  p_src : Ids.proc_id;
  p_dst : Ids.proc_id;
  p_msg : Message.t;
  p_born : int;
  mutable p_attempt : int;
  mutable p_settled : bool;
}

type outcome = {
  answer : Value.t option;
  answer_time : int option;
  sim_time : int;
  events : int;
  error : string option;
}

(* One root request tracked by the super-root.  Batch mode has exactly one
   (uid -1, the empty stamp); service mode keeps one per submitted request,
   each rooted at a distinct depth-1 stamp so the checkpoint tables, orphan
   relays and journals of concurrent requests can never alias. *)
type request = {
  uid : int;  (** -1 for the batch root *)
  r_stamp : Stamp.t;  (** [Stamp.root] for batch, [child root uid] for service *)
  avoid : Ids.proc_id list;  (** processors never chosen as this root's host *)
  mutable packet : Packet.t option;  (** the super-root's functional checkpoint *)
  mutable dest : Ids.proc_id;
  mutable task : Ids.task_id;
  mutable pending : (Stamp.t * Packet.link * Value.t) list;
      (** salvaged orphan results awaiting the twin, with the orphan's
          stamp and dead parent so depth is preserved on forwarding *)
  mutable answers : Value.t list;  (** results for this request, newest first *)
  mutable answer_time : int option;
  mutable redispatches : int;
  on_answer : (Value.t -> unit) option;  (** first answer only *)
  on_disturbed : (string -> unit) option;  (** each root re-dispatch *)
}

type t = {
  cfg : Config.t;
  program : Recflow_lang.Program.t;
  library : Graph.library;
  engine : event Engine.t;
  router : Router.t;
  node_arr : Node.t array;
  journal : Journal.t;
  counters : Counter.set;
  latency_tbl : (string, Hdr.t) Hashtbl.t;
      (** named duration histograms (net.rtt, task.sojourn, ...) — cluster
          local like [counters], so recording never crosses domains *)
  trace : Trace.t;
  rng : Rng.t;
  policy : Policy.t;
  mutable next_task_id : Ids.task_id;
  root : request;
  requests : (int, request) Hashtbl.t;  (** service requests, by uid >= 0 *)
  mutable next_uid : int;
  mutable service : bool;
  mutable arrivals_open : bool;
  mutable unanswered : int;  (** service requests still without an answer *)
  mutable answer : Value.t option;
  mutable answer_time : int option;
  mutable root_answers : Value.t list;
      (** every root result that reached the super-root (newest first);
          twins of a falsely-suspected root may deliver more than one *)
  mutable error : string option;
  mutable started : bool;
  mutable drain : bool;
  chaos : Chaos.t option;  (** [None] when the spec is quiet: zero draws *)
  mutable next_seq : int;
  pending_sends : (int, pending_send) Hashtbl.t;
  seen_seqs : (int, unit) Hashtbl.t;  (** receiver-side duplicate filter *)
  suspected : (Ids.proc_id, unit) Hashtbl.t;
      (** destinations some sender gave up on (timeout suspicion); a member
          may well still be alive — it is *treated* as faulty per §1 *)
  fail_times : (Ids.proc_id, int) Hashtbl.t;
      (** injected failure tick per processor, for detection-latency
          recording when the notices land *)
  last_heard : (Ids.proc_id * Ids.proc_id, int) Hashtbl.t;
      (** (observer, subject) → last tick any delivery or transport ack
          from [subject] reached [observer]; the suspicion detector fires
          only on a destination silent for the whole window, not on one
          unlucky send *)
  batches : (int, (Ids.proc_id * Message.t * int) list ref) Hashtbl.t;
      (** [Config.batched_delivery] buffers: arrival-tick × destination →
          (src, msg, seq) payloads in reverse send order, drained by the
          matching [Batch] event.  Latency and chaos draws already
          happened per message at send time, so seeds stay stable. *)
  mutable node_ctx : Node.ctx option;
      (* built once on first use: rebuilding ~14 closures per dispatched
         event shows up at millions of events *)
}

let config t = t.cfg

let journal t = t.journal

let counters t = t.counters

let latency t name =
  match Hashtbl.find_opt t.latency_tbl name with
  | Some h -> h
  | None ->
    let h = Hdr.create () in
    Hashtbl.add t.latency_tbl name h;
    h

let record_latency t name v = Hdr.record (latency t name) v

let latency_hists t =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.latency_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let trace t = t.trace

let router t = t.router

let now t = Engine.now t.engine

let quiescent t = Engine.pending t.engine = 0

let root_answers t = List.rev t.root_answers

let error t = t.error

let unsettled_sends t =
  Hashtbl.fold (fun _ p n -> if p.p_settled then n else n + 1) t.pending_sends 0

let suspected_nodes t =
  Hashtbl.fold (fun pid () acc -> pid :: acc) t.suspected [] |> List.sort compare

let node t pid =
  if pid < 0 || pid >= Array.length t.node_arr then
    invalid_arg (Printf.sprintf "Cluster.node: no processor %d" pid);
  t.node_arr.(pid)

let nodes t = Array.to_list t.node_arr

let total_work t = Array.fold_left (fun acc n -> acc + Node.work_done n) 0 t.node_arr

let total_waste t = Array.fold_left (fun acc n -> acc + Node.wasted_work n) 0 t.node_arr

let root_location t = if t.root.dest >= 0 then Some t.root.dest else None

let fresh_task_id t () =
  let id = t.next_task_id in
  t.next_task_id <- id + 1;
  id

let pressure t pid =
  let n = t.node_arr.(pid) in
  if Node.is_alive n then Node.runnable_tasks n else max_int / 2

let view t = { Policy.router = t.router; pressure = pressure t }

let place t ~origin ~key =
  let origin = if origin = Ids.super_root then 0 else origin in
  Policy.choose t.policy (view t) ~origin ~key

let first_alive t ~key =
  match Router.alive_nodes t.router with
  | [] -> None
  | alive ->
    (* [abs min_int] is negative (two's complement has no positive
       counterpart), which made [mod] produce a negative index and
       [List.nth] raise; masking the sign bit keeps every key usable. *)
    Some (List.nth alive (key land max_int mod List.length alive))

let hops t ~src ~dst =
  let src = if src = Ids.super_root then dst else src in
  let dst = if dst = Ids.super_root then src else dst in
  if src = dst || src < 0 || dst < 0 then 0
  else
    match Router.distance t.router src dst with
    | Some h -> h
    | None -> Topology.ideal_distance (Router.topology t.router) src dst

(* Under batched delivery, all messages reaching [dst] at the same tick
   share one simulator event: the first one schedules it and the rest only
   append to the buffer.  The per-message latency/chaos draws above this
   point are untouched, so the RNG streams — and with them every placement
   decision — are the same as in an unbatched run. *)
let schedule_delivery t ~delay ~src ~dst ~seq msg =
  if t.cfg.Config.batched_delivery then begin
    let at = now t + delay in
    let key = (at * (Array.length t.node_arr + 2)) + (dst + 2) in
    match Hashtbl.find_opt t.batches key with
    | Some items -> items := (src, msg, seq) :: !items
    | None ->
      Hashtbl.add t.batches key (ref [ (src, msg, seq) ]);
      Engine.schedule t.engine ~delay (Batch { key; dst })
  end
  else Engine.schedule t.engine ~delay (Deliver { src; dst; msg; seq })

(* Transmit one message (or retransmission): wire latency plus, when a
   chaos instance is armed, the perturbation verdict — drop it, or deliver
   one or more copies with extra delay. *)
let transmit t ~extra ~src ~dst ~seq msg =
  let copy d =
    let delay =
      extra + d
      + Latency.delay ~rng:(fun bound -> Rng.int t.rng bound) t.cfg.Config.latency
          ~hops:(hops t ~src ~dst)
    in
    schedule_delivery t ~delay ~src ~dst ~seq msg
  in
  match t.chaos with
  | None -> copy 0
  | Some ch -> (
    match Chaos.decide ch ~now:(now t) ~src ~dst with
    | Chaos.Drop reason ->
      Counter.incr t.counters "net.msg_dropped";
      if reason = `Partition then Counter.incr t.counters "net.partition_dropped";
      Trace.logf t.trace ~time:(now t) ~level:Trace.Debug ~tag:"chaos" "%s %s -> %s: %s"
        (match reason with `Loss -> "lost" | `Partition -> "severed")
        (Ids.proc_to_string src) (Ids.proc_to_string dst) (Message.label msg)
    | Chaos.Pass { extra_delays } ->
      List.iteri
        (fun i d ->
          if i > 0 then Counter.incr t.counters "net.dup_injected";
          if d > 0 then Counter.incr t.counters "net.delayed";
          copy d)
        extra_delays)

(* Transport-level acknowledgement of reliable send [seq], from the
   receiver [src] back to the original sender [dst].  Unreliable itself —
   a lost ack just costs a retransmission, which the duplicate filter
   absorbs. *)
let send_transport_ack t ~src ~dst ~seq =
  Counter.incr t.counters "net.ack_sent";
  let copy d =
    let delay =
      d
      + Latency.delay ~rng:(fun bound -> Rng.int t.rng bound) t.cfg.Config.latency
          ~hops:(hops t ~src ~dst)
    in
    Engine.schedule t.engine ~delay (Tack { seq })
  in
  match t.chaos with
  | None -> copy 0
  | Some ch -> (
    match Chaos.decide ch ~now:(now t) ~src ~dst with
    | Chaos.Drop _ -> Counter.incr t.counters "net.ack_dropped"
    | Chaos.Pass { extra_delays } -> List.iter copy extra_delays)

(* The §4.2 protocol messages that drive recovery forward are the ones the
   transport must not lose; the rest (app-level acks, gradient gossip,
   aborts) are advisory and stay fire-and-forget.  Failure notices are on
   the reliable side: an accusation that silently vanishes leaves one peer
   relaying results toward a processor the rest of the cluster has written
   off, and the views of who is dead never reconverge. *)
let reliable_kind = function
  | Message.Task_packet _ | Message.Result _ | Message.Orphan_alive _ | Message.Reparent _
  | Message.Failure_notice _ ->
    true
  | Message.Ack _ | Message.Gradient _ | Message.Abort _ -> false

let send_after t ~delay:extra ~src ~dst msg =
  Counter.incr t.counters "msg.sent";
  let seq =
    if t.cfg.Config.reliable && src <> dst && reliable_kind msg then begin
      let s = t.next_seq in
      t.next_seq <- s + 1;
      Hashtbl.replace t.pending_sends s
        { p_src = src; p_dst = dst; p_msg = msg; p_born = now t; p_attempt = 0;
          p_settled = false };
      Engine.schedule t.engine ~delay:(extra + t.cfg.Config.retry.Config.rto) (Retry { seq = s });
      s
    end
    else -1
  in
  transmit t ~extra ~src ~dst ~seq msg

let send t ~src ~dst msg = send_after t ~delay:0 ~src ~dst msg

let wake t pid ~delay = Engine.schedule t.engine ~delay (Step pid)

let inline_eval t fname args =
  match Eval_serial.eval t.program fname (Array.to_list args) with
  | v, steps -> Ok (v, steps)
  | exception Eval_serial.Runtime_error msg -> Error msg
  | exception Not_found -> Error ("call to unknown function " ^ fname)

let program_error t msg =
  if t.error = None then begin
    t.error <- Some msg;
    Trace.log t.trace ~time:(now t) ~level:Trace.Error ~tag:"cluster" ("program error: " ^ msg);
    Engine.stop t.engine
  end

let build_ctx t : Node.ctx =
  {
    Node.config = t.cfg;
    now = (fun () -> now t);
    send = (fun ~src ~dst msg -> send t ~src ~dst msg);
    send_after = (fun ~delay ~src ~dst msg -> send_after t ~delay ~src ~dst msg);
    wake = (fun pid ~delay -> wake t pid ~delay);
    fresh_task_id = fresh_task_id t;
    place = (fun ~origin ~key -> place t ~origin ~key);
    first_alive = (fun ~key -> first_alive t ~key);
    neighbors = (fun pid -> Topology.neighbors (Router.topology t.router) pid);
    template = Graph.find_exn t.library;
    inline_eval = inline_eval t;
    journal = t.journal;
    counters = t.counters;
    trace = t.trace;
    record_latency = (fun name v -> record_latency t name v);
    program_error = program_error t;
  }

let ctx t =
  match t.node_ctx with
  | Some c -> c
  | None ->
    let c = build_ctx t in
    t.node_ctx <- Some c;
    c

let create cfg program =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Cluster.create: " ^ msg));
  let n = Topology.size cfg.Config.topology in
  {
    cfg;
    program;
    library = Graph.compile_program program;
    engine = Engine.create ();
    router = Router.create cfg.Config.topology;
    node_arr = Array.init n (fun i -> Node.create i cfg);
    journal = Journal.create ~retain:cfg.Config.journal_retain ();
    counters = Counter.create_set ();
    latency_tbl = Hashtbl.create 8;
    trace = Trace.create ~capacity:cfg.Config.trace_capacity ();
    rng = Rng.create cfg.Config.seed;
    policy = Policy.create ~seed:cfg.Config.seed cfg.Config.policy;
    next_task_id = 0;
    root =
      {
        uid = -1;
        r_stamp = Stamp.root;
        avoid = [];
        packet = None;
        dest = -2;
        task = Ids.no_task;
        pending = [];
        answers = [];
        answer_time = None;
        redispatches = 0;
        on_answer = None;
        on_disturbed = None;
      };
    requests = Hashtbl.create 64;
    next_uid = 0;
    service = false;
    arrivals_open = false;
    unanswered = 0;
    answer = None;
    answer_time = None;
    root_answers = [];
    error = None;
    started = false;
    drain = false;
    chaos =
      (* an independent stream: enabling chaos must not perturb the
         placement / jitter draws of [t.rng], and a quiet spec must not
         change anything at all *)
      (if Chaos.quiet cfg.Config.chaos then None
       else Some (Chaos.create ~seed:(cfg.Config.seed lxor 0x5eedca05) cfg.Config.chaos));
    next_seq = 0;
    pending_sends = Hashtbl.create 64;
    fail_times = Hashtbl.create 4;
    seen_seqs = Hashtbl.create 256;
    suspected = Hashtbl.create 4;
    last_heard = Hashtbl.create 64;
    batches = Hashtbl.create 64;
    node_ctx = None;
  }

(* ------------------------------------------------------------------ *)
(* Super-root (§4.3.1)                                                 *)
(* ------------------------------------------------------------------ *)

let root_super_slot = 0

(* Which request a message landing on the super-root belongs to.  Batch
   mode owns every stamp; a service stamp names its request in its first
   digit (request roots sit at depth 1, so any descendant carries it). *)
let request_of_stamp t stamp =
  if not t.service then Some t.root
  else if Stamp.depth stamp = 0 then None
  else Hashtbl.find_opt t.requests (Stamp.digit stamp 0)

(* Deterministic iteration in submission order (uid order), batch root
   included — hash-table order must never leak into the event stream. *)
let iter_requests t f =
  if t.service then
    for uid = 0 to t.next_uid - 1 do
      match Hashtbl.find_opt t.requests uid with Some r -> f r | None -> ()
    done
  else f t.root

(* [true] while some request hosted on [pid] still awaits its answer. *)
let hosted_unanswered t pid =
  let found = ref false in
  iter_requests t (fun r -> if r.dest = pid && r.answers = [] then found := true);
  !found

(* The generalized "no answer yet" guard: in batch mode the single root
   answer, in service mode any request still in flight. *)
let unanswered_exists t = if t.service then t.unanswered > 0 else t.answer = None

(* Gradient gossip keeps ticking while there is (or may yet be) work. *)
let gradient_live t =
  if t.service then t.arrivals_open || t.unanswered > 0 else t.answer = None

(* Dispatch (or re-dispatch) a request's root task from the super-root's
   retained checkpoint. *)
let dispatch_request t req ~reason =
  match req.packet with
  | None -> ()
  | Some packet -> (
    match Router.alive_nodes t.router with
    | [] -> Trace.log t.trace ~time:(now t) ~level:Trace.Error ~tag:"SR" "no live processor for root"
    | _ :: _ ->
      let task_id = fresh_task_id t () in
      let key = Stamp.hash packet.Packet.stamp + task_id in
      let dest = place t ~origin:Ids.super_root ~key in
      (* A suspected processor is router-alive, so placement can pick it —
         but the rest of the cluster has written it off and would never
         relay the twin's results home.  Re-home on an unsuspected
         survivor whenever one exists.  Replica siblings of the same
         logical request ([avoid]) are rehomed the same way: co-locating
         them would void the independence the vote relies on. *)
      let clear p = not (Hashtbl.mem t.suspected p) && not (List.mem p req.avoid) in
      let dest =
        if clear dest then dest
        else
          match List.filter clear (Router.alive_nodes t.router) with
          | [] -> dest (* every survivor is accused; any choice is a guess *)
          | cs -> List.nth cs (key land max_int mod List.length cs)
      in
      req.dest <- dest;
      req.task <- task_id;
      send t ~src:Ids.super_root ~dst:dest
        (Message.Task_packet { packet; task_id; replica = 0; replicas = 1 });
      (match reason with
      | None -> Journal.record t.journal ~time:(now t) ~stamp:req.r_stamp
          (Journal.Spawned { task = task_id; dest; replica = 0 })
      | Some reason ->
        Counter.incr t.counters "reissue.root";
        req.redispatches <- req.redispatches + 1;
        Journal.record t.journal ~time:(now t) ~stamp:req.r_stamp
          (Journal.Respawned { task = task_id; dest; reason });
        Option.iter (fun f -> f reason) req.on_disturbed);
      (* Forward any salvaged orphan results that were waiting for a twin.
         A direct child of the request root fills the twin's call slot; a
         deeper orphan (reachable here because §5.2 ancestor links can skip
         past a dead grandparent) must instead be driven down the chain of
         twins, so it keeps its [To_grandparent] shape — filling the
         root's slot with a grandchild's partial value would silently
         drop the rest of that subtree. *)
      let pending = req.pending in
      req.pending <- [];
      List.iter
        (fun (stamp, (dead_parent : Packet.link), value) ->
          let direct =
            match Stamp.parent stamp with
            | Some p -> Stamp.equal p req.r_stamp
            | None -> false
          in
          let relay, slot =
            if direct then (Message.To_step_parent { dead_parent }, dead_parent.Packet.slot)
            else (Message.To_grandparent { dead_parent }, -1)
          in
          send t ~src:Ids.super_root ~dst:dest
            (Message.Result
               { stamp; value; target = { Packet.task = task_id; proc = dest; slot }; relay }))
        pending)

let super_root_deliver t msg =
  match msg with
  | Message.Result { stamp; value; relay = Message.To_parent; _ } -> (
    match request_of_stamp t stamp with
    | None -> ()
    | Some req ->
      req.answers <- value :: req.answers;
      t.root_answers <- value :: t.root_answers;
      if req.answer_time = None then begin
        req.answer_time <- Some (now t);
        if t.service then begin
          t.unanswered <- t.unanswered - 1;
          Option.iter (fun f -> f value) req.on_answer
        end
      end;
      if (not t.service) && t.answer = None then begin
        t.answer <- Some value;
        t.answer_time <- Some (now t);
        Trace.logf t.trace ~time:(now t) ~level:Trace.Info ~tag:"SR" "answer: %s"
          (Value.to_string value);
        if not t.drain then Engine.stop t.engine
      end)
  | Message.Result { stamp; value; target; relay = Message.To_grandparent { dead_parent }; _ }
    -> (
    (* An orphaned result salvages itself through the super-root acting
       as an ancestor.  Only a *direct* child of the dead request root
       fills a root call slot; a deeper orphan (its parent and grandparent
       both dead, escalated here via §5.2 ancestor links) keeps its
       [To_grandparent] shape and is driven down the chain of twins by
       the root twin — its value is one subtree fragment, not the whole
       slot. *)
    match request_of_stamp t stamp with
    | None -> ()
    | Some req ->
      if req.answers = [] && t.cfg.Config.recovery = Config.Splice then begin
        let direct =
          match Stamp.parent stamp with
          | Some p -> Stamp.equal p req.r_stamp
          | None -> false
        in
        let root_alive = req.dest >= 0 && Router.alive t.router req.dest in
        if root_alive && req.dest <> dead_parent.Packet.proc then begin
          (* a twin already exists: forward straight to it *)
          let relay, slot =
            if direct then (Message.To_step_parent { dead_parent }, dead_parent.Packet.slot)
            else (Message.To_grandparent { dead_parent }, -1)
          in
          send t ~src:Ids.super_root ~dst:req.dest
            (Message.Result
               {
                 stamp;
                 value;
                 target = { Packet.task = req.task; proc = req.dest; slot };
                 relay;
               })
        end
        else begin
          req.pending <- (stamp, dead_parent, value) :: req.pending;
          dispatch_request t req ~reason:(Some "orphan-result")
        end;
        ignore target
      end)
  | Message.Orphan_alive { stamp; orphan; dead_parent; target = _ } -> (
    (* A child of a (dead) request root announces itself: make sure that
       root has a twin and let the twin inherit the orphan. *)
    match request_of_stamp t stamp with
    | None -> ()
    | Some req ->
      if req.answers = [] && t.cfg.Config.recovery = Config.Splice then begin
        let root_alive = req.dest >= 0 && Router.alive t.router req.dest in
        if (not root_alive) || req.dest = dead_parent.Packet.proc then
          dispatch_request t req ~reason:(Some "orphan-alive");
        if req.dest >= 0 && Router.alive t.router req.dest then
          send t ~src:Ids.super_root ~dst:req.dest
            (Message.Orphan_alive
               { stamp; orphan; dead_parent;
                 target = { Packet.task = req.task; proc = req.dest; slot = -1 } })
      end)
  | Message.Result { relay = Message.To_step_parent _; _ }
  | Message.Task_packet _ | Message.Reparent _ | Message.Gradient _ | Message.Ack _
  | Message.Abort _ | Message.Failure_notice _ ->
    ()

(* ------------------------------------------------------------------ *)
(* Failure injection                                                   *)
(* ------------------------------------------------------------------ *)

let fail_at t ~time pid =
  if pid < 0 || pid >= Array.length t.node_arr then
    invalid_arg (Printf.sprintf "Cluster.fail_at: no processor %d" pid);
  Engine.schedule_at t.engine ~time (Fail pid)

(* Error detection: every live peer learns after a detection delay that
   grows with its distance from the failed (or suspected) node, and the
   super-root notices the loss of the root task's processor.  The suspect
   itself is never notified of its own "death": a falsely-suspected live
   processor keeps running obliviously, coexisting with its twins. *)
let broadcast_failure t pid =
  let topo = Router.topology t.router in
  Array.iter
    (fun peer ->
      if Node.is_alive peer && Node.id peer <> pid then begin
        let d = Topology.ideal_distance topo pid (Node.id peer) in
        let delay = t.cfg.Config.detect_delay + (d * t.cfg.Config.latency.Latency.per_hop) in
        Engine.schedule t.engine ~delay
          (Deliver
             { src = Node.id peer; dst = Node.id peer;
               msg = Message.Failure_notice { failed = pid }; seq = -1 })
      end)
    t.node_arr;
  if hosted_unanswered t pid && t.cfg.Config.recovery <> Config.No_recovery then
    Engine.schedule t.engine ~delay:t.cfg.Config.detect_delay
      (Deliver
         { src = Ids.super_root; dst = Ids.super_root;
           msg = Message.Failure_notice { failed = pid }; seq = -1 })

let handle_fail t pid =
  let n = t.node_arr.(pid) in
  if Node.is_alive n then begin
    Node.kill n (ctx t);
    Router.kill t.router pid;
    Hashtbl.replace t.fail_times pid (now t);
    Counter.incr t.counters "failure.injected";
    Journal.record t.journal ~time:(now t) ~stamp:Stamp.root (Journal.Failure { proc = pid });
    Trace.logf t.trace ~time:(now t) ~level:Trace.Warn ~tag:"cluster" "%s failed"
      (Ids.proc_to_string pid);
    broadcast_failure t pid
  end

(* ------------------------------------------------------------------ *)
(* Event loop                                                          *)
(* ------------------------------------------------------------------ *)

(* Retransmission schedule: attempt n fires rto·backoffⁿ after the
   previous one, capped so a long suspicion window cannot overflow. *)
let retry_delay t attempt =
  let { Config.rto; backoff; _ } = t.cfg.Config.retry in
  let d = float_of_int rto *. (backoff ** float_of_int attempt) in
  max 1 (min (rto * 64) (int_of_float d))

(* The sender has waited out the whole suspicion window without a transport
   ack: per §1 an unresponsive destination is *treated* as faulty, live or
   not — the message takes the same bounce path an undeliverable send
   would, and the existing recovery machinery (checkpoint re-issue, twins,
   grandparent relay) does the rest.  A falsely-suspected live processor
   simply coexists with its twin; determinacy makes whichever result lands
   first the right one. *)
let give_up t seq p =
  Hashtbl.remove t.pending_sends seq;
  let first_time = not (Hashtbl.mem t.suspected p.p_dst) in
  Hashtbl.replace t.suspected p.p_dst ();
  Counter.incr t.counters "net.suspected";
  if p.p_dst >= 0 && Node.is_alive t.node_arr.(p.p_dst) then begin
    Counter.incr t.counters "net.false_suspicion";
    Trace.logf t.trace ~time:(now t) ~level:Trace.Warn ~tag:"suspect"
      "%s suspects live %s (no ack in %d ticks): treating as faulty"
      (Ids.proc_to_string p.p_src) (Ids.proc_to_string p.p_dst)
      (now t - p.p_born)
  end
  else
    Trace.logf t.trace ~time:(now t) ~level:Trace.Info ~tag:"suspect"
      "%s suspects %s (no ack in %d ticks)" (Ids.proc_to_string p.p_src)
      (Ids.proc_to_string p.p_dst)
      (now t - p.p_born);
  (* First suspicion of this destination: tell the cluster, so every
     holder of a checkpoint filed under the suspect re-issues a twin and
     the views of who is dead stay convergent — a sender keeping its
     verdict private leaves peers relaying results toward a processor it
     has written off, and nobody re-homes the suspect's work.  Unlike the
     out-of-band fail-stop detector in [handle_fail], these notices
     originate at the accuser and cross the same hostile network, so an
     isolated island's false accusations cannot poison the mainland.  The
     accuser itself learns through the bounce path, and the suspect is
     never told of its own "death" — it keeps running obliviously,
     coexisting with its twins. *)
  if first_time && p.p_dst >= 0 then begin
    Array.iter
      (fun peer ->
        let pid = Node.id peer in
        if Node.is_alive peer && pid <> p.p_dst && pid <> p.p_src then
          (* reliable: a lost accusation would leave this peer's view of
             the membership divergent forever *)
          send_after t ~delay:t.cfg.Config.detect_delay ~src:p.p_src ~dst:pid
            (Message.Failure_notice { failed = p.p_dst }))
      t.node_arr;
    if hosted_unanswered t p.p_dst && t.cfg.Config.recovery <> Config.No_recovery then
      Engine.schedule t.engine ~delay:t.cfg.Config.detect_delay
        (Deliver
           { src = Ids.super_root; dst = Ids.super_root;
             msg = Message.Failure_notice { failed = p.p_dst }; seq = -1 })
  end;
  if p.p_src = Ids.super_root then begin
    Counter.incr t.counters "msg.bounced";
    if unanswered_exists t && t.cfg.Config.recovery <> Config.No_recovery then
      Engine.schedule t.engine ~delay:t.cfg.Config.bounce_delay
        (Deliver
           { src = Ids.super_root; dst = Ids.super_root;
             msg = Message.Failure_notice { failed = p.p_dst }; seq = -1 })
  end
  else Engine.schedule t.engine ~delay:0 (Bounce { src = p.p_src; dead = p.p_dst; msg = p.p_msg })

(* Receiver half of the reliable transport: acknowledge and deduplicate.
   Returns true when [msg] should actually be processed. *)
let transport_accept t ~src ~dst ~seq =
  seq < 0
  ||
  if Hashtbl.mem t.seen_seqs seq then begin
    Counter.incr t.counters "net.dup_suppressed";
    (* re-ack: the ack for the first copy may itself have been lost *)
    send_transport_ack t ~src:dst ~dst:src ~seq;
    false
  end
  else begin
    Hashtbl.replace t.seen_seqs seq ();
    send_transport_ack t ~src:dst ~dst:src ~seq;
    true
  end

(* Process one physically arrived message — the body of the [Deliver]
   event, shared with the batched path so both deliver identically. *)
let deliver_one t ~src ~dst ~seq msg =
    (* any arrival is evidence the sender is alive and reachable *)
    if src <> dst then Hashtbl.replace t.last_heard (dst, src) (now t);
    if dst = Ids.super_root then begin
      if transport_accept t ~src ~dst ~seq then
        match msg with
        | Message.Failure_notice { failed } ->
          iter_requests t (fun req ->
              if req.dest = failed && req.answers = [] then
                dispatch_request t req ~reason:(Some "notice"))
        | _ -> super_root_deliver t msg
    end
    else begin
      let n = t.node_arr.(dst) in
      if Node.is_alive n then begin
        if transport_accept t ~src ~dst ~seq then begin
          (* a notice of an injected failure landing on a live peer is a
             detection-latency sample: failure tick -> this peer learning *)
          (match msg with
          | Message.Failure_notice { failed } -> (
            match Hashtbl.find_opt t.fail_times failed with
            | Some ft -> record_latency t "failure.detection" (now t - ft)
            | None -> ())
          | _ -> ());
          Node.deliver n (ctx t) msg
        end
      end
      else begin
        (* The destination is dead.  For a reliable send, cancel the
           retransmission timer and let only the first copy to arrive
           trigger the bounce; an unreliable send bounces as before. *)
        let already_settled =
          seq >= 0
          &&
          match Hashtbl.find_opt t.pending_sends seq with
          | Some p ->
            let was = p.p_settled in
            p.p_settled <- true;
            was
          | None -> true
        in
        if not already_settled then
          if src = Ids.super_root then begin
            (* the super-root's own send bounced: re-dispatch the root *)
            Counter.incr t.counters "msg.bounced";
            if unanswered_exists t && t.cfg.Config.recovery <> Config.No_recovery then
              Engine.schedule t.engine ~delay:t.cfg.Config.bounce_delay
                (Deliver
                   { src = Ids.super_root; dst = Ids.super_root;
                     msg = Message.Failure_notice { failed = dst }; seq = -1 })
          end
          else
            Engine.schedule t.engine ~delay:t.cfg.Config.bounce_delay
              (Bounce { src; dead = dst; msg })
      end
    end

let handle_event t _at ev =
  match ev with
  | Deliver { src; dst; msg; seq } -> deliver_one t ~src ~dst ~seq msg
  | Batch { key; dst } -> (
    match Hashtbl.find_opt t.batches key with
    | None -> ()
    | Some items ->
      (* detach first: a handler may send again toward [dst] at this very
         tick, which must open a fresh batch behind this one *)
      Hashtbl.remove t.batches key;
      List.iter (fun (src, msg, seq) -> deliver_one t ~src ~dst ~seq msg) (List.rev !items))
  | Tack { seq } -> (
    match Hashtbl.find_opt t.pending_sends seq with
    | Some p ->
      (* first ack only: re-acks of suppressed duplicates are not RTTs *)
      if not p.p_settled then record_latency t "net.rtt" (now t - p.p_born);
      p.p_settled <- true;
      Hashtbl.replace t.last_heard (p.p_src, p.p_dst) (now t)
    | None -> ())
  | Retry { seq } -> (
    match Hashtbl.find_opt t.pending_sends seq with
    | None -> ()
    | Some p ->
      if p.p_settled then Hashtbl.remove t.pending_sends seq
      else if p.p_src >= 0 && not (Node.is_alive t.node_arr.(p.p_src)) then
        (* the sender itself died: nobody is waiting on this delivery *)
        Hashtbl.remove t.pending_sends seq
      else begin
        let { Config.suspicion_after; _ } = t.cfg.Config.retry in
        let elapsed = now t - p.p_born in
        (* Suspicion is a verdict on the *destination*, not on one unlucky
           send: give up only when the sender has heard nothing back from
           that processor — no delivery, no transport ack on any sequence —
           for a whole window.  A send whose own acks keep getting eaten
           retries for as long as the destination shows other signs of
           life. *)
        let heard =
          Option.value ~default:(-1) (Hashtbl.find_opt t.last_heard (p.p_src, p.p_dst))
        in
        let silent = now t - heard >= suspicion_after in
        if elapsed >= suspicion_after && silent && p.p_dst <> Ids.super_root then
          give_up t seq p
        else begin
          (* never give up on the super-root: it is the cluster itself *)
          p.p_attempt <- p.p_attempt + 1;
          Counter.incr t.counters "net.retransmit";
          (* how stale the payload already is when we try again *)
          record_latency t "net.retransmit_delay" (now t - p.p_born);
          transmit t ~extra:0 ~src:p.p_src ~dst:p.p_dst ~seq p.p_msg;
          Engine.schedule t.engine ~delay:(retry_delay t p.p_attempt) (Retry { seq })
        end
      end)
  | Bounce { src; dead; msg } ->
    if src >= 0 then begin
      let n = t.node_arr.(src) in
      if Node.is_alive n then Node.handle_bounce n (ctx t) ~dead msg
    end
  | Step pid -> Node.step t.node_arr.(pid) (ctx t)
  | Gradient_tick pid ->
    let n = t.node_arr.(pid) in
    if Node.is_alive n && gradient_live t then begin
      Node.gradient_tick n (ctx t);
      Engine.schedule t.engine ~delay:t.cfg.Config.gradient_period (Gradient_tick pid)
    end
  | Fail pid -> handle_fail t pid
  | Callback f -> f ()

let check_entry t ~who ~fname ~args =
  match Recflow_lang.Program.arity t.program fname with
  | None -> invalid_arg (Printf.sprintf "Cluster.%s: unknown function %s" who fname)
  | Some a when a <> List.length args ->
    invalid_arg (Printf.sprintf "Cluster.%s: %s expects %d arguments" who fname a)
  | Some _ -> ()

(* arm the distributed gradient exchange when that policy is selected;
   ticks stop once no work remains so the event queue can drain *)
let arm_gradient t =
  match t.cfg.Config.policy with
  | Policy.Gradient_distributed _ ->
    Array.iteri
      (fun pid _ ->
        Engine.schedule t.engine ~delay:(1 + (pid * 7 mod t.cfg.Config.gradient_period))
          (Gradient_tick pid))
      t.node_arr
  | _ -> ()

let start t ~fname ~args =
  if t.started then invalid_arg "Cluster.start: already started";
  check_entry t ~who:"start" ~fname ~args;
  t.started <- true;
  arm_gradient t;
  let packet = Packet.root ~fname ~args:(Array.of_list args) ~super_slot:root_super_slot in
  t.root.packet <- Some packet;  (* the pre-evaluation checkpoint *)
  dispatch_request t t.root ~reason:None

(* ------------------------------------------------------------------ *)
(* Service mode: many concurrent roots                                 *)
(* ------------------------------------------------------------------ *)

let begin_service t =
  if t.started then invalid_arg "Cluster.begin_service: already started";
  t.started <- true;
  t.service <- true;
  t.arrivals_open <- true;
  arm_gradient t

let service_mode t = t.service

let close_arrivals t = t.arrivals_open <- false

let schedule_callback t ~delay f =
  if not t.started then invalid_arg "Cluster.schedule_callback: call begin_service first";
  Engine.schedule t.engine ~delay (Callback f)

let submit t ?(avoid = []) ?on_answer ?on_disturbed ~fname ~args () =
  if not t.service then invalid_arg "Cluster.submit: call begin_service first";
  check_entry t ~who:"submit" ~fname ~args;
  let uid = t.next_uid in
  t.next_uid <- uid + 1;
  let stamp = Stamp.child Stamp.root uid in
  (* The depth-1 stamp is the request's whole identity: its checkpoint
     entries, orphan relays and journal rows all live in a subtree no
     other request can reach, so nothing leaks across requests.  The
     super-root slot carries the uid for symmetry with the batch root. *)
  let packet =
    Packet.make ~stamp ~fname ~args:(Array.of_list args)
      ~parent:{ Packet.task = Ids.no_task; proc = Ids.super_root; slot = uid }
      ~grandparent:None ~ancestors:[]
  in
  let req =
    {
      uid;
      r_stamp = stamp;
      avoid;
      packet = Some packet;
      dest = -2;
      task = Ids.no_task;
      pending = [];
      answers = [];
      answer_time = None;
      redispatches = 0;
      on_answer;
      on_disturbed;
    }
  in
  Hashtbl.replace t.requests uid req;
  t.unanswered <- t.unanswered + 1;
  dispatch_request t req ~reason:None;
  uid

let submitted_requests t = t.next_uid

let in_flight t = t.unanswered

let find_request t uid =
  match Hashtbl.find_opt t.requests uid with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Cluster: no request %d" uid)

let request_answers t uid = List.rev (find_request t uid).answers

let request_answer_time t uid = (find_request t uid).answer_time

let request_dest t uid =
  let r = find_request t uid in
  if r.dest >= 0 then Some r.dest else None

let request_stamp t uid = (find_request t uid).r_stamp

let request_redispatches t uid = (find_request t uid).redispatches

let run ?(drain = false) t =
  if not t.started then invalid_arg "Cluster.run: call start first";
  t.drain <- drain;
  Engine.run t.engine ~until:t.cfg.Config.horizon (fun at ev -> handle_event t at ev);
  {
    answer = t.answer;
    answer_time = t.answer_time;
    sim_time = now t;
    events = Engine.events_dispatched t.engine;
    error = t.error;
  }
