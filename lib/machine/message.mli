(** Inter-processor messages (the packet kinds of §4.2's protocol LOOP).

    [Task_packet] spawns a task (DEMAND_IT's output).  [Ack] is the
    positive acknowledgement that moves a spawn from transient state b/d to
    established state c/e (§4.3.2).  [Result] forwards an answer — [relay]
    distinguishes a normal child→parent return from an orphan's
    grandchild→grandparent return and from the grandparent's forward to a
    step-parent.  [Abort] cascades orphan garbage collection under rollback
    (§3.2).  [Failure_notice] is the error-detection broadcast.

    The paper's [fetch data] message does not appear: arguments travel by
    value inside packets in this model (partitioned memory with no remote
    references), a substitution recorded in DESIGN.md. *)

module Stamp = Recflow_recovery.Stamp
module Packet = Recflow_recovery.Packet
module Ids = Recflow_recovery.Ids

type relay =
  | To_parent  (** ordinary child → parent return *)
  | To_grandparent of { dead_parent : Packet.link }
      (** orphan return routed around its dead parent (§4.1); carries the
          original parent link so the step-parent can be matched by stamp
          and the call slot preserved *)
  | To_step_parent of { dead_parent : Packet.link }
      (** grandparent → twin forward of a salvaged result *)

type result_payload = {
  stamp : Stamp.t;  (** stamp of the task that produced the value *)
  value : Recflow_lang.Value.t;
  target : Packet.link;  (** where this message is heading *)
  relay : relay;
}

type t =
  | Task_packet of { packet : Packet.t; task_id : Ids.task_id; replica : int; replicas : int }
      (** [replica]/[replicas]: 0-based index and group size (1 when not
          replicated) *)
  | Orphan_alive of {
      stamp : Stamp.t;  (** the orphan's level stamp *)
      orphan : Packet.link;  (** where the orphan runs (slot = its slot in the dead parent) *)
      dead_parent : Packet.link;
      target : Packet.link;  (** the ancestor (or twin) this report is heading to *)
    }
      (** a still-running orphan announces itself so the step-parent twin
          can *inherit* it instead of spawning a duplicate clone (§4.1:
          "this twin task inherits all offspring of the faulty task") *)
  | Reparent of {
      orphan_task : Ids.task_id;
      new_parent : Packet.link;  (** the adopting twin's activation and the call slot *)
      new_grandparent : Packet.link option;  (** the twin's own parent link *)
    }
      (** the step-parent tells an inherited orphan its new return address
          (§3.4: "if the orphan tasks know the new address to which to
          forward their answers"); an orphan that already completed
          re-sends its result there *)
  | Ack of {
      child_stamp : Stamp.t;
      child_task : Ids.task_id;
      child_proc : Ids.proc_id;
      parent_task : Ids.task_id;
      slot : int;
    }
  | Result of result_payload
  | Gradient of { from : Ids.proc_id; value : int }
      (** distributed gradient-model exchange: the sender's current
          gradient value, delivered to a topology neighbour *)
  | Abort of { task : Ids.task_id }
  | Failure_notice of { failed : Ids.proc_id }

val label : t -> string
(** Counter key, one per variant: "task_packet", "orphan_alive",
    "reparent", "ack", "result", "gradient", "abort", "failure_notice". *)

val describe : t -> string
