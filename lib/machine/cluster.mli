(** Whole-machine simulation: processors, network, super-root, fault
    injection and the event loop.

    A cluster wires {!Node}s to a deterministic {!Recflow_sim.Engine},
    routes messages with latency through {!Recflow_net.Router}, plays the
    super-root of §4.3.1 (the virtual parent of the root task, holding its
    pre-evaluation checkpoint), and injects fail-stop processor failures.

    Typical use:
    {[
      let c = Cluster.create config program in
      Cluster.fail_at c ~time:5_000 2;
      Cluster.start c ~fname:"fib" ~args:[ Value.Int 20 ];
      let o = Cluster.run c in
      assert (o.answer = Some (Value.Int 6765))
    ]} *)

module Ids = Recflow_recovery.Ids
module Value = Recflow_lang.Value

type t

type outcome = {
  answer : Value.t option;
  answer_time : int option;  (** simulation time the root result landed *)
  sim_time : int;  (** clock when the run stopped *)
  events : int;  (** engine events dispatched *)
  error : string option;  (** program (not processor) error, if any *)
}

val create : Config.t -> Recflow_lang.Program.t -> t
(** @raise Invalid_argument if the configuration fails validation. *)

val start : t -> fname:string -> args:Value.t list -> unit
(** Super-root checkpoints the root packet and dispatches it at time 0.
    @raise Invalid_argument if called twice or [fname] is unknown. *)

(** {2 Service mode}

    A cluster normally runs one batch program ({!start}).  Service mode
    instead keeps the machine open for a stream of independent root
    requests: each {!submit} creates a fresh root task under its own
    depth-1 level stamp ([Stamp.child Stamp.root uid]), so concurrent
    requests occupy disjoint stamp subtrees — checkpoint tables, orphan
    relays and journal rows can never alias across requests — while the
    §4.3.1 super-root plays virtual parent to all of them, re-dispatching
    any request whose host dies or is suspected. *)

val begin_service : t -> unit
(** Open the cluster for {!submit} instead of {!start}.
    @raise Invalid_argument if the cluster was already started. *)

val submit :
  t ->
  ?avoid:Ids.proc_id list ->
  ?on_answer:(Value.t -> unit) ->
  ?on_disturbed:(string -> unit) ->
  fname:string ->
  args:Value.t list ->
  unit ->
  int
(** Dispatch one root request now (callable before {!run} or from a
    {!schedule_callback} hook inside it); returns the request uid.
    [avoid] lists processors never chosen as this root's host — replica
    siblings of the same logical request pass each other's destinations so
    the vote stays independent.  [on_answer] fires once, on the first
    result reaching the super-root; [on_disturbed] fires on every root
    re-dispatch (failure notice, suspicion, bounce or orphan salvage).
    @raise Invalid_argument outside service mode or for a bad call. *)

val schedule_callback : t -> delay:int -> (unit -> unit) -> unit
(** Run [f] inside the event loop [delay] ticks from now — the hook an
    open-loop arrival generator uses so inter-arrival draws happen in
    simulated time.  @raise Invalid_argument before {!begin_service}. *)

val close_arrivals : t -> unit
(** Tell the cluster no further {!submit} is coming, so gradient gossip
    (and anything else keyed on "work may still arrive") can wind down. *)

val service_mode : t -> bool

val submitted_requests : t -> int
(** Requests submitted so far; uids are [0 .. submitted_requests - 1]. *)

val in_flight : t -> int
(** Submitted requests still without a first answer. *)

val request_answers : t -> int -> Value.t list
(** Results for one request in arrival order (more than one when a
    falsely-suspected host coexists with its twin).
    @raise Invalid_argument for an unknown uid (all request accessors). *)

val request_answer_time : t -> int -> int option
(** Tick the first answer landed, if it has. *)

val request_dest : t -> int -> Ids.proc_id option
(** Processor currently hosting the request's root task. *)

val request_stamp : t -> int -> Recflow_recovery.Stamp.t

val request_redispatches : t -> int -> int
(** How many times the super-root re-dispatched this request's root. *)

val fail_at : t -> time:int -> Ids.proc_id -> unit
(** Schedule a fail-stop failure.  May be called repeatedly (multiple
    faults) and before or after {!start}, but before {!run}. *)

val run : ?drain:bool -> t -> outcome
(** Drive the event loop until the root answer arrives (default), the
    event queue drains, or the horizon passes.  [drain:true] keeps going
    after the answer so that straggler work and messages are accounted. *)

val config : t -> Config.t

val journal : t -> Journal.t

val counters : t -> Recflow_stats.Counter.set

val latency : t -> string -> Recflow_stats.Hdr.t
(** The cluster's named duration histogram, created empty on first use.
    Families recorded by the machine layer: [net.rtt] (reliable send to
    first transport ack), [net.retransmit_delay] (send birth to each
    retransmission), [failure.detection] (injected failure to each live
    peer processing the notice), [task.sojourn] (activation to
    completion). *)

val latency_hists : t -> (string * Recflow_stats.Hdr.t) list
(** Every histogram touched so far, sorted by name. *)

val trace : t -> Recflow_sim.Trace.t

val router : t -> Recflow_net.Router.t

val node : t -> Ids.proc_id -> Node.t
(** @raise Invalid_argument for an out-of-range id. *)

val nodes : t -> Node.t list

val now : t -> int

val total_work : t -> int
(** Busy ticks summed over all processors. *)

val total_waste : t -> int
(** Busy ticks spent on tasks that were aborted or whose results were
    dropped (survivor nodes only). *)

val root_location : t -> Ids.proc_id option
(** Processor currently hosting the root task, if dispatched. *)

val first_alive : t -> key:int -> Ids.proc_id option
(** Deterministic pick among the processors currently alive, hashed by
    [key] (any int, including [min_int]); [None] when all are dead.
    Nodes use it to re-home tasks whose preferred destination died. *)

val quiescent : t -> bool
(** No events left in the queue: the run drained completely (as opposed to
    stopping early on the answer or at the horizon). *)

val root_answers : t -> Value.t list
(** Every root result that reached the super-root, in arrival order.  More
    than one arrives when a falsely-suspected root host coexists with its
    twin; determinacy demands they all carry the same value. *)

val error : t -> string option
(** Program (not processor) error, if any. *)

val unsettled_sends : t -> int
(** Reliable sends still awaiting a transport ack or a bounce.  Zero at
    quiescence. *)

val suspected_nodes : t -> Ids.proc_id list
(** Destinations some sender gave up on (timeout-based suspicion), sorted.
    A member may still be alive — it is *treated* as faulty per §1, its
    residual work abandoned in favour of a twin. *)
