(** Processor node: the protocol LOOP of §4.2.

    Each node owns a run queue of tasks (dataflow-graph instances), a
    functional-checkpoint table (§3.2), and local failure knowledge.  The
    cluster drives it with three entry points: {!deliver} for an incoming
    message, {!step} for a CPU scheduling quantum, and {!handle_bounce}
    when a message the node sent turned out to be undeliverable (the
    timeout path of §1).

    The node implements, depending on [Config.recovery]:
    - functional checkpointing on every spawn (DEMAND_IT);
    - rollback recovery (§3): on a failure notice, re-issue the topmost
      checkpoints filed under the dead processor and abort orphans
      (cascading Abort messages approximate the paper's garbage
      collection);
    - splice recovery (§4): re-issue as above but keep orphans alive;
      returns that cannot reach a dead parent divert to the grandparent,
      which creates a step-parent twin from its checkpoint and relays the
      salvaged result to it;
    - replicated execution (§5.3): every spawn fans out k replicas and the
      parent majority-votes on their returns.

    All side effects flow through the {!ctx} capability record supplied by
    the cluster, keeping this module free of global state and directly
    testable. *)

module Ids = Recflow_recovery.Ids
module Stamp = Recflow_recovery.Stamp
module Packet = Recflow_recovery.Packet
module Ckpt_table = Recflow_recovery.Ckpt_table
module Value = Recflow_lang.Value

type ctx = {
  config : Config.t;
  now : unit -> int;
  send : src:Ids.proc_id -> dst:Ids.proc_id -> Message.t -> unit;
  send_after : delay:int -> src:Ids.proc_id -> dst:Ids.proc_id -> Message.t -> unit;
      (** like [send] with an extra departure delay (adoption grace) *)
  wake : Ids.proc_id -> delay:int -> unit;  (** schedule a {!step} quantum *)
  fresh_task_id : unit -> Ids.task_id;
  place : origin:Ids.proc_id -> key:int -> Ids.proc_id;
  first_alive : key:int -> Ids.proc_id option;
      (** deterministic fallback when a static placement hits a dead node *)
  neighbors : Ids.proc_id -> Ids.proc_id list;
      (** topology neighbours (for the distributed gradient exchange) *)
  template : string -> Recflow_lang.Graph.t;
  inline_eval : string -> Value.t array -> (Value.t * int, string) result;
  journal : Journal.t;
  counters : Recflow_stats.Counter.set;
  trace : Recflow_sim.Trace.t;
  record_latency : string -> int -> unit;
      (** record a duration into the owning cluster's named
          {!Recflow_stats.Hdr} histogram (e.g. [task.sojourn]) *)
  program_error : string -> unit;
}

type t

val create : Ids.proc_id -> Config.t -> t

val id : t -> Ids.proc_id

val is_alive : t -> bool

val kill : t -> ctx -> unit
(** Fail-stop: the node drops everything and never speaks again.  Returns
    nothing; in-flight messages *from* the node survive (they already left). *)

val deliver : t -> ctx -> Message.t -> unit
(** Handle a message that physically arrived.  No-op on a dead node. *)

val handle_bounce : t -> ctx -> dead:Ids.proc_id -> Message.t -> unit
(** The node's earlier send to [dead] was undeliverable; react per message
    kind (re-place a task packet, divert a result to the grandparent,
    drop an ack/abort). *)

val step : t -> ctx -> unit
(** One CPU quantum: run the current task's next micro-action, or pick the
    next runnable task. *)

val gradient_tick : t -> ctx -> unit
(** One round of the distributed gradient exchange (only meaningful under
    [Policy.Gradient_distributed]): recompute this node's gradient value
    from its neighbours' last-heard values and broadcast it to them. *)

val gradient_value : t -> int
(** Current gradient value (0 = demand sink). *)

val runnable_tasks : t -> int
(** Load-balancer pressure: queued runnable tasks (current task included). *)

val live_tasks : t -> int
(** Tasks resident and neither done nor aborted. *)

val blocked_tasks : t -> int

val checkpoints : t -> Ckpt_table.t

val knows_dead : t -> Ids.proc_id -> bool

val work_done : t -> int
(** Total busy ticks accumulated (utilisation metric). *)

type task_view = {
  v_stamp : Stamp.t;
  v_task : Ids.task_id;
  v_state : string;  (** "queued" | "running" | "blocked" | "done" | "aborted" *)
  v_waiting_on : (Stamp.t * Ids.proc_id list) list;
      (** unfilled spawned children: stamp and current destinations *)
}

val snapshot : t -> task_view list
(** Diagnostic view of the resident *live* tasks, sorted by stamp (tests,
    experiments, debugging).  Finished tasks are retired to slim
    tombstones and no longer appear here. *)

val iter_task_views : t -> (task_view -> unit) -> unit
(** Iterate the resident live tasks' views without materialising the
    sorted list (or its per-view waiting lists all at once) — the
    allocation-free form of {!snapshot} for large nodes. *)

val wasted_work : t -> int
(** Busy ticks attributable to tasks that were later aborted or whose
    results were dropped. *)

val resident_tasks : t -> int
(** Live task records currently held in the arena (= {!live_tasks} at
    quiescence; the arena recycles slots of finished tasks). *)

val recount : t -> int * int * int
(** [(live, blocked, wasted)] recomputed by brute force over every
    resident and retired task — the oracle the property tests check the
    O(1) incremental counters ({!live_tasks}, {!blocked_tasks},
    {!wasted_work}) against.  Not for hot paths. *)
