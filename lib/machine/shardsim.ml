(* Sharded single-run simulation; see shardsim.mli for the model.

   Concurrency discipline (what makes [?pool] byte-identical to
   sequential): every piece of mutable state is owned by exactly one
   shard — a processor's record is touched only by handlers running as
   its shard, a journal only by its own shard, outboxes only by their
   source shard (via [Shard.send]) — except [answer], which is written
   only by processor 0's shard and read after the run's final barrier.
   Cross-shard interaction happens exclusively through outbox entries
   merged deterministically at window boundaries by {!Recflow_sim.Shard}.

   Recovery correctness rests on two orderings the simulation guarantees:
   (1) a result sent before its sender's crash always arrives before the
   crash notice (both travel the same latency, and the send is strictly
   earlier), so a checkpoint slot that is still empty when the notice
   arrives belongs to a child that is truly lost; and (2) checkpoint
   frames are addressed by a per-processor uid that is never reused, so a
   re-issued subtree can never alias an orphaned one — orphan results
   target frames on dead processors (dropped on arrival) or uids that no
   longer resolve. *)

module Engine = Recflow_sim.Engine
module Shard = Recflow_sim.Shard

type params = {
  procs : int;
  shards : int;
  branching : int;
  depth : int;
  grain : int;
  spin : int;
  local_latency : int;
  shard_latency : int;
  fail : (Engine.time * int) list;
  seed : int;
}

type outcome = {
  answer : int;
  sim_time : Engine.time;
  events : int;
  journal_digest : string;
}

let default_params =
  {
    procs = 16;
    shards = 4;
    branching = 3;
    depth = 5;
    grain = 40;
    spin = 0;
    local_latency = 5;
    shard_latency = 40;
    fail = [];
    seed = 42;
  }

let validate p =
  if p.procs < 1 then invalid_arg "Shardsim: procs must be >= 1";
  if p.shards < 1 || p.shards > p.procs then invalid_arg "Shardsim: shards must be in [1, procs]";
  if p.branching < 1 then invalid_arg "Shardsim: branching must be >= 1";
  if p.depth < 0 then invalid_arg "Shardsim: depth must be >= 0";
  if p.grain < 1 then invalid_arg "Shardsim: grain must be >= 1";
  if p.spin < 0 then invalid_arg "Shardsim: spin must be >= 0";
  if p.local_latency < 1 then invalid_arg "Shardsim: local_latency must be >= 1";
  if p.shard_latency < p.local_latency then
    invalid_arg "Shardsim: shard_latency must be >= local_latency";
  List.iter
    (fun (at, fp) ->
      if at < 1 then invalid_arg "Shardsim: failure times must be >= 1";
      if fp <= 0 || fp >= p.procs then
        invalid_arg "Shardsim: failing proc must be in [1, procs-1] (proc 0 hosts the root frame)")
    p.fail

(* splitmix64 finalizer, reused as a keyed hash: placement and task values
   must be pure functions of their arguments so [expected_answer] can
   recompute them and re-execution after a failure reproduces them. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let feed z x = mix64 (Int64.add (Int64.logxor z (Int64.of_int x)) 0x9E3779B97F4A7C15L)

(* 62 bits so the result is a nonnegative tagged int. *)
let hash4 a b c d =
  Int64.to_int (Int64.shift_right_logical (feed (feed (feed (feed 0L a) b) c) d) 2)

let leaf_value seed pos = hash4 seed pos 2 0

let node_init seed pos = hash4 seed pos 1 0

let combine a b = Int64.to_int (Int64.shift_right_logical (feed (feed 0L a) b) 2)

let rec node_value p ~pos ~depth =
  if depth = p.depth then leaf_value p.seed pos
  else begin
    let v = ref (node_init p.seed pos) in
    for k = 0 to p.branching - 1 do
      v := combine !v (node_value p ~pos:((pos * p.branching) + k + 1) ~depth:(depth + 1))
    done;
    !v
  end

let expected_answer p =
  validate p;
  node_value p ~pos:0 ~depth:0

(* Pure wall-clock load for the leaves; [Sys.opaque_identity] keeps the
   loop from being recognised as dead. *)
let spin n =
  let acc = ref 0L in
  for i = 1 to n do
    acc := mix64 (Int64.add !acc (Int64.of_int i))
  done;
  ignore (Sys.opaque_identity !acc)

type task = {
  pos : int;  (* structural id: root 0, children pos*b + k + 1 *)
  inc : int;  (* re-issue count along the spawn path (journal tag) *)
  depth : int;
  parent_proc : int;  (* -1 for the root task *)
  parent_uid : int;
  parent_slot : int;
}

type ev =
  | Arrive of { dst : int; task : task }
  | Finish of { dst : int }
  | Result of { dst : int; uid : int; slot : int; value : int }
  | Fail of { dst : int }
  | Notice of { dst : int; failed : int }

(* Checkpoint frame: the paper's parent-side record of pending children,
   from which lost subtrees are re-issued. *)
type frame = {
  uid : int;  (* process-unique, never reused: next_frame * procs + proc *)
  fpos : int;
  fdepth : int;
  slots : int option array;
  placed : int array;  (* processor each pending child was last sent to *)
  child_inc : int array;
  fparent_proc : int;
  fparent_uid : int;
  fparent_slot : int;
  mutable filled : int;
}

type proc = {
  id : int;
  mutable dead : bool;
  mutable busy : task option;
  queue : task Queue.t;
  frames : (int, frame) Hashtbl.t;
  known_dead : bool array;  (* this processor's view, fed by notices *)
  mutable next_frame : int;
}

type jshard = { mutable jrev : (int * int * string) list; mutable jn : int }

type st = {
  p : params;
  coord : ev Shard.t;
  procs_ : proc array;
  proc_shard : int array;
  journals : jshard array;
  mutable answer : int option;
}

let jot st shard now fmt =
  Printf.ksprintf
    (fun line ->
      let j = st.journals.(shard) in
      j.jrev <- (now, j.jn, line) :: j.jrev;
      j.jn <- j.jn + 1)
    fmt

(* Deterministic placement: walk a hash sequence until it lands on a
   processor the placing processor does not know to be dead.  Processor 0
   never fails, so the fallback scan always terminates. *)
let place st known_dead ~pos ~inc =
  let n = st.p.procs in
  let rec go a =
    if a >= 4 * n then begin
      let rec first i = if known_dead.(i) then first (i + 1) else i in
      first 0
    end
    else
      let c = hash4 st.p.seed pos ((inc lsl 8) lor 3) a mod n in
      if known_dead.(c) then go (a + 1) else c
  in
  go 0

let deliver st ~shard ~now dst ev =
  let ds = st.proc_shard.(dst) in
  if ds = shard then Engine.schedule (Shard.engine st.coord ds) ~delay:st.p.local_latency ev
  else Shard.send st.coord ~src:shard ~dst:ds ~time:(now + st.p.shard_latency) ev

let start_task st shard now q task =
  jot st shard now "start pos=%d inc=%d proc=%d" task.pos task.inc q.id;
  q.busy <- Some task;
  Engine.schedule (Shard.engine st.coord shard) ~delay:st.p.grain (Finish { dst = q.id })

let settle st shard now ~parent_proc ~uid ~slot value =
  if parent_proc = -1 then begin
    st.answer <- Some value;
    jot st shard now "done answer=%d" value
  end
  else deliver st ~shard ~now parent_proc (Result { dst = parent_proc; uid; slot; value })

let complete st shard now q task =
  if task.depth = st.p.depth then begin
    spin st.p.spin;
    settle st shard now ~parent_proc:task.parent_proc ~uid:task.parent_uid
      ~slot:task.parent_slot
      (leaf_value st.p.seed task.pos)
  end
  else begin
    let b = st.p.branching in
    let uid = (q.next_frame * st.p.procs) + q.id in
    q.next_frame <- q.next_frame + 1;
    let fr =
      {
        uid;
        fpos = task.pos;
        fdepth = task.depth;
        slots = Array.make b None;
        placed = Array.make b (-1);
        child_inc = Array.make b task.inc;
        fparent_proc = task.parent_proc;
        fparent_uid = task.parent_uid;
        fparent_slot = task.parent_slot;
        filled = 0;
      }
    in
    Hashtbl.add q.frames uid fr;
    for k = 0 to b - 1 do
      let cpos = (task.pos * b) + k + 1 in
      let dst = place st q.known_dead ~pos:cpos ~inc:task.inc in
      fr.placed.(k) <- dst;
      deliver st ~shard ~now dst
        (Arrive
           {
             dst;
             task =
               {
                 pos = cpos;
                 inc = task.inc;
                 depth = task.depth + 1;
                 parent_proc = q.id;
                 parent_uid = uid;
                 parent_slot = k;
               };
           })
    done
  end

let handle st shard now ev =
  match ev with
  | Arrive { dst; task } ->
    let q = st.procs_.(dst) in
    if not q.dead then
      if q.busy = None then start_task st shard now q task else Queue.push task q.queue
  | Finish { dst } ->
    let q = st.procs_.(dst) in
    if not q.dead then (
      match q.busy with
      | None -> ()
      | Some task ->
        q.busy <- None;
        complete st shard now q task;
        (match Queue.take_opt q.queue with
        | Some next -> start_task st shard now q next
        | None -> ()))
  | Result { dst; uid; slot; value } ->
    let q = st.procs_.(dst) in
    if not q.dead then (
      match Hashtbl.find_opt q.frames uid with
      | None -> ()  (* late duplicate for a completed frame *)
      | Some fr ->
        if fr.slots.(slot) = None then begin
          fr.slots.(slot) <- Some value;
          fr.filled <- fr.filled + 1;
          if fr.filled = st.p.branching then begin
            Hashtbl.remove q.frames uid;
            let v = ref (node_init st.p.seed fr.fpos) in
            Array.iter (fun s -> v := combine !v (Option.get s)) fr.slots;
            settle st shard now ~parent_proc:fr.fparent_proc ~uid:fr.fparent_uid
              ~slot:fr.fparent_slot !v
          end
        end)
  | Fail { dst } ->
    let q = st.procs_.(dst) in
    if not q.dead then begin
      q.dead <- true;
      jot st shard now "fail proc=%d" dst;
      q.busy <- None;
      Queue.clear q.queue;
      Hashtbl.reset q.frames;
      for r = 0 to st.p.procs - 1 do
        if r <> dst then deliver st ~shard ~now r (Notice { dst = r; failed = dst })
      done
    end
  | Notice { dst; failed } ->
    let q = st.procs_.(dst) in
    if (not q.dead) && not q.known_dead.(failed) then begin
      q.known_dead.(failed) <- true;
      (* Re-issue every pending child last placed on a processor now known
         dead.  An empty slot at this point means the child is truly lost:
         had it finished before the crash, its result would have arrived
         ahead of this notice (same route, earlier send).  Frames are
         rescanned in creation order so the journal is deterministic. *)
      let frames =
        Hashtbl.fold (fun _ fr acc -> fr :: acc) q.frames []
        |> List.sort (fun a b -> compare a.uid b.uid)
      in
      List.iter
        (fun fr ->
          for k = 0 to st.p.branching - 1 do
            if fr.slots.(k) = None && q.known_dead.(fr.placed.(k)) then begin
              let cinc = fr.child_inc.(k) + 1 in
              fr.child_inc.(k) <- cinc;
              let cpos = (fr.fpos * st.p.branching) + k + 1 in
              let dst' = place st q.known_dead ~pos:cpos ~inc:cinc in
              fr.placed.(k) <- dst';
              jot st shard now "reissue pos=%d inc=%d proc=%d" cpos cinc dst';
              deliver st ~shard ~now dst'
                (Arrive
                   {
                     dst = dst';
                     task =
                       {
                         pos = cpos;
                         inc = cinc;
                         depth = fr.fdepth + 1;
                         parent_proc = q.id;
                         parent_uid = fr.uid;
                         parent_slot = k;
                       };
                   })
            end
          done)
        frames
    end

let run ?pool p =
  validate p;
  let coord = Shard.create ~shards:p.shards ~window:p.shard_latency () in
  let st =
    {
      p;
      coord;
      procs_ =
        Array.init p.procs (fun id ->
            {
              id;
              dead = false;
              busy = None;
              queue = Queue.create ();
              frames = Hashtbl.create 16;
              known_dead = Array.make p.procs false;
              next_frame = 0;
            });
      proc_shard = Array.init p.procs (fun i -> i * p.shards / p.procs);
      journals = Array.init p.shards (fun _ -> { jrev = []; jn = 0 });
      answer = None;
    }
  in
  Engine.schedule_at (Shard.engine coord 0) ~time:0
    (Arrive
       {
         dst = 0;
         task = { pos = 0; inc = 0; depth = 0; parent_proc = -1; parent_uid = -1; parent_slot = 0 };
       });
  List.iter
    (fun (at, fp) ->
      Engine.schedule_at (Shard.engine coord st.proc_shard.(fp)) ~time:at (Fail { dst = fp }))
    p.fail;
  Shard.run ?pool coord (fun shard now ev -> handle st shard now ev);
  let answer =
    match st.answer with
    | Some a -> a
    | None -> failwith "Shardsim.run: quiesced without an answer (recovery lost the root result)"
  in
  let sim_time = Shard.max_now coord in
  let events = Shard.total_dispatched coord in
  let buf = Buffer.create 4096 in
  let entries = ref [] in
  Array.iteri
    (fun s j -> List.iter (fun (at, idx, line) -> entries := (at, s, idx, line) :: !entries) j.jrev)
    st.journals;
  List.iter
    (fun (at, s, _, line) -> Buffer.add_string buf (Printf.sprintf "t=%d s=%d %s\n" at s line))
    (List.sort compare !entries);
  Buffer.add_string buf (Printf.sprintf "answer=%d sim_time=%d events=%d\n" answer sim_time events);
  { answer; sim_time; events; journal_digest = Digest.to_hex (Digest.string (Buffer.contents buf)) }
