(** Structured lifecycle journal of a simulation run.

    The cluster appends an entry for every significant task-lifecycle and
    recovery event, keyed by level stamp.  Experiments read the journal to
    classify splice cases (§4.1), compute salvage rates and redone work,
    and verify residue-freedom — tests assert directly against it. *)

module Stamp = Recflow_recovery.Stamp
module Ids = Recflow_recovery.Ids

type event =
  | Spawned of { task : Ids.task_id; dest : Ids.proc_id; replica : int }
      (** packet dispatched toward [dest] *)
  | Activated of { task : Ids.task_id; proc : Ids.proc_id }
  | Acked of { task : Ids.task_id; proc : Ids.proc_id }
      (** parent received the positive acknowledgement (state b/d → c/e) *)
  | Completed of { task : Ids.task_id; proc : Ids.proc_id; work : int }
      (** [work] is the busy ticks the task consumed on [proc] *)
  | Inlined of { parent_task : Ids.task_id; proc : Ids.proc_id; work : int }
      (** evaluated inside the parent below the grain boundary *)
  | Aborted of { task : Ids.task_id; proc : Ids.proc_id; work : int }
  | Lost of { task : Ids.task_id; proc : Ids.proc_id; work : int }
      (** the task died with its processor — [work] busy ticks destroyed
          (recorded at kill time, before the [Failure] entry) *)
  | Respawned of { task : Ids.task_id; dest : Ids.proc_id; reason : string }
      (** re-issued from a functional checkpoint ("notice" | "orphan-result") *)
  | Inherited of { orphan_task : Ids.task_id; proc : Ids.proc_id }
      (** a step-parent twin adopted this still-running orphan instead of
          spawning a clone (§4.1 offspring inheritance) *)
  | Result_accepted of { task : Ids.task_id }
      (** value consumed by the (step-)parent's call slot *)
  | Duplicate_ignored of { task : Ids.task_id }
  | Relayed of { via : Ids.proc_id }  (** orphan result forwarded by a grandparent *)
  | Relay_dropped of { at : Ids.proc_id; reason : string }
  | Orphan_dropped of { task : Ids.task_id }  (** rollback: result had nowhere to go *)
  | Failure of { proc : Ids.proc_id }  (** recorded under the root stamp *)

type entry = { time : int; stamp : Stamp.t; event : event }

type t

val create : ?retain:bool -> unit -> t
(** [retain] (default [true]) keeps every entry in memory for {!entries},
    {!for_stamp} and friends.  With [retain:false] — the scale-run mode,
    selected through [Config.journal_retain] — attached sinks still see
    every entry and {!length}/{!last_entry_time} stay exact, but the
    retained list and per-stamp index remain empty, so journal memory is
    O(1) in the run length. *)

val attach_sink : t -> entry Recflow_obs_core.Sink.t -> unit
(** Every subsequent entry is also pushed into the sink as it is recorded
    — the hook streaming consumers (Perfetto conversion, sampled JSONL)
    build on so they never need the full retained list.  Repeated calls
    tee; the caller keeps ownership and closes file-backed sinks. *)

val record : t -> time:int -> stamp:Stamp.t -> event -> unit

val entries : t -> entry list
(** Chronological. *)

val length : t -> int

val last_entry_time : t -> int option
(** Time of the newest entry. *)

val failures : t -> (int * Ids.proc_id) list
(** [(time, proc)] of every [Failure] entry, chronological — the episode
    boundaries the observability layer folds over. *)

val for_stamp : t -> Stamp.t -> entry list
(** Chronological entries for one stamp. *)

val stamps : t -> Stamp.t list
(** All stamps seen, sorted. *)

val count : t -> (event -> bool) -> int

val first_time : t -> Stamp.t -> (event -> bool) -> int option

val last_time : t -> Stamp.t -> (event -> bool) -> int option

val event_label : event -> string

val pp_entry : Format.formatter -> entry -> unit
