(** One simulated run sharded across domains: a recovering applicative
    task-tree computation partitioned over per-shard engines.

    This is the "shard one run" counterpart to the sweep-level parallelism
    of {!Recflow_experiments.Harness}: instead of running many independent
    simulations on a pool, a single large simulation's processors are
    block-partitioned into shards, each shard owns a {!Recflow_sim.Engine}
    for its processors' events, and the shards advance together through
    {!Recflow_sim.Shard} lookahead windows (the window equals the
    cross-shard message latency).

    The simulated workload is the paper's applicative model: a divide-and-
    conquer task tree of branching [branching] and leaf depth [depth].
    Interior tasks spawn their children onto processors chosen by a
    deterministic placement hash and keep a checkpoint frame of pending
    child slots; leaves burn [grain] ticks (plus [spin] iterations of real
    CPU work, so wall-clock scales with the tree) and return a value that
    is a pure function of their position.  When a processor fails,
    everything it held — running task, queue, checkpoint frames — is lost;
    surviving processors learn of the death after a notification latency
    and re-issue exactly the child tasks whose results are still missing
    and whose placement points at the dead processor, onto freshly chosen
    live processors.  Because tasks are applicative, re-execution yields
    the same values, so the final answer equals {!expected_answer}
    regardless of the failure schedule.

    Determinism: a run's journal digest, answer, simulated makespan and
    event count are byte-identical whether the shards execute sequentially
    or on a pool of any width — the golden determinism suite pins this. *)

type params = {
  procs : int;  (** simulated processors, partitioned into blocks *)
  shards : int;  (** engine shards; clamped nowhere — must be in [1, procs] *)
  branching : int;  (** children per interior task *)
  depth : int;  (** leaf depth; [0] makes the root itself a leaf *)
  grain : int;  (** simulated ticks a task occupies its processor *)
  spin : int;  (** real work iterations per leaf (wall-clock load; no
                   effect on any simulated observable) *)
  local_latency : int;  (** ticks for a same-shard message *)
  shard_latency : int;  (** ticks for a cross-shard message; also the
                            conservative lookahead window *)
  fail : (Recflow_sim.Engine.time * int) list;
      (** [(time, proc)] crash schedule.  Processor 0 hosts the root
          checkpoint frame (the paper's reliable recovery host) and must
          not appear. *)
  seed : int;
}

type outcome = {
  answer : int;
  sim_time : Recflow_sim.Engine.time;  (** simulated makespan *)
  events : int;  (** events dispatched across all shards *)
  journal_digest : string;  (** MD5 over the merged journal + answer +
                                makespan + event count *)
}

val default_params : params

val validate : params -> unit
(** @raise Invalid_argument on out-of-range fields (see [params] docs). *)

val expected_answer : params -> int
(** The answer of a fault-free run, computed by direct recursion — the
    oracle every run (failing or not) must reproduce. *)

val run : ?pool:Recflow_parallel.Pool.t -> params -> outcome
(** Execute the simulation; with [?pool] the shards of each lookahead
    window run as one pool batch.  @raise Invalid_argument via {!validate};
    @raise Failure if the run quiesces without an answer (cannot happen
    for a valid failure schedule — it would indicate lost recovery). *)
