(** Benchmark workloads: applicative programs of the divide-and-conquer
    shape the paper's machine model targets, with size presets.

    Each workload bundles a source program, an entry point, arguments per
    size, and the serially-computed expected answer — every distributed
    run, faulty or not, must reproduce it exactly (determinacy). *)

type size = Tiny | Small | Medium | Large

type t = {
  name : string;
  description : string;
  source : string;  (** concrete syntax; parsed on first use *)
  entry : string;
  args : size -> Recflow_lang.Value.t list;
}

val program : t -> Recflow_lang.Program.t
(** Parsed, validated and statically checked program (memoised per
    workload).
    @raise Invalid_argument on any analysis {e error} (RF0xx/RF1xx);
    warnings are enforced separately by the lint suite. *)

val expected : t -> size -> Recflow_lang.Value.t
(** Reference answer from the serial evaluator (memoised). *)

val serial_work : t -> size -> int
(** Serial reduction count — the single-processor work of the run. *)

val task_count : t -> size -> int
(** Number of user-function applications (the size of the full call tree). *)

val fib : t
(** Doubly-recursive Fibonacci — the canonical unbalanced D&C tree. *)

val tree_sum : t
(** Perfect binary tree of additions — balanced, parameterised by depth. *)

val nqueens : t
(** N-queens counting via list-encoded placements — irregular tree with
    data-dependent pruning. *)

val quicksort : t
(** Sort a deterministic pseudo-random list; answer is its checksum —
    data-structure (cons-list) heavy. *)

val mergesort : t
(** Bottom-up merge sort of the same flavour of list — balanced D&C with
    a data-dependent merge phase. *)

val map_reduce : t
(** Sum of squares over an integer range by interval halving — the
    map/reduce pipeline shape. *)

val tak : t
(** Takeuchi function — deep nested dependent calls (spine-parallel only). *)

val synthetic : branching:int -> depth:int -> grain:int -> t
(** Uniform tree: each internal node spawns [branching] children down to
    [depth], leaves spin for [grain] reductions.  The controlled workload
    used by the scaling and overhead experiments.
    @raise Invalid_argument unless [branching >= 1], [depth >= 0],
    [grain >= 0]. *)

val all : t list
(** The named workloads above (synthetic excluded). *)

val by_name : string -> t option
