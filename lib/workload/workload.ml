module Value = Recflow_lang.Value
module Parser = Recflow_lang.Parser
module Eval_serial = Recflow_lang.Eval_serial

type size = Tiny | Small | Medium | Large

type t = {
  name : string;
  description : string;
  source : string;
  entry : string;
  args : size -> Value.t list;
}

(* Memoise parsed programs and reference answers per (workload, size). *)
let program_cache : (string, Recflow_lang.Program.t) Hashtbl.t = Hashtbl.create 16

let program w =
  match Hashtbl.find_opt program_cache w.name with
  | Some p -> p
  | None ->
    (* Full static check, not just parse + validate: a workload with a
       type error would otherwise only fail deep inside a cluster run. *)
    let report = Recflow_analysis.Check.check_source ~entries:[ w.entry ] w.source in
    (match Recflow_analysis.Check.errors report with
    | [] -> ()
    | d :: _ ->
      invalid_arg
        (Printf.sprintf "workload %s: %s" w.name (Recflow_analysis.Diagnostic.to_string d)));
    let p =
      match report.Recflow_analysis.Check.program with Some p -> p | None -> assert false
    in
    Hashtbl.add program_cache w.name p;
    p

let eval_cache : (string, Value.t * int) Hashtbl.t = Hashtbl.create 32

let size_tag = function Tiny -> "tiny" | Small -> "small" | Medium -> "medium" | Large -> "large"

let evaluated w size =
  let key = w.name ^ "/" ^ size_tag size in
  match Hashtbl.find_opt eval_cache key with
  | Some r -> r
  | None ->
    let r = Eval_serial.eval (program w) w.entry (w.args size) in
    Hashtbl.add eval_cache key r;
    r

let expected w size = fst (evaluated w size)

let serial_work w size = snd (evaluated w size)

let task_count w size = Eval_serial.call_count (program w) w.entry (w.args size)

let ints = List.map (fun n -> Value.Int n)

let fib =
  {
    name = "fib";
    description = "doubly-recursive Fibonacci";
    source = "def fib(n) = if n < 2 then n else fib(n - 1) + fib(n - 2)";
    entry = "fib";
    args = (function Tiny -> ints [ 8 ] | Small -> ints [ 12 ] | Medium -> ints [ 16 ] | Large -> ints [ 20 ]);
  }

let tree_sum =
  {
    name = "tree_sum";
    description = "perfect binary tree of additions";
    source =
      "def tsum(d, x) = if d == 0 then x else tsum(d - 1, 2 * x) + tsum(d - 1, 2 * x + 1)";
    entry = "tsum";
    args =
      (function
      | Tiny -> ints [ 4; 1 ]
      | Small -> ints [ 7; 1 ]
      | Medium -> ints [ 9; 1 ]
      | Large -> ints [ 12; 1 ]);
  }

let nqueens =
  {
    name = "nqueens";
    description = "N-queens solution count over cons-list placements";
    source =
      "def nqueens(n) = place(n, nil, 0)\n\
       def place(n, placed, depth) =\n\
      \  if depth == n then 1 else try_cols(n, placed, depth, 0)\n\
       def try_cols(n, placed, depth, col) =\n\
      \  if col >= n then 0 else\n\
      \  (if safe(placed, col, 1) then place(n, col :: placed, depth + 1) else 0)\n\
      \    + try_cols(n, placed, depth, col + 1)\n\
       def safe(placed, col, dist) =\n\
      \  if isnil(placed) then true else\n\
      \  head(placed) != col && head(placed) != col - dist && head(placed) != col + dist\n\
      \    && safe(tail(placed), col, dist + 1)";
    entry = "nqueens";
    args = (function Tiny -> ints [ 4 ] | Small -> ints [ 5 ] | Medium -> ints [ 6 ] | Large -> ints [ 7 ]);
  }

let quicksort =
  {
    name = "quicksort";
    description = "quicksort of a pseudo-random list, checksummed";
    source =
      "def qsort_check(n, seed) = checksum(qsort(randlist(n, seed)), 0)\n\
       def qsort(xs) =\n\
      \  if isnil(xs) then nil else\n\
      \  append(qsort(keep_lt(tail(xs), head(xs))),\n\
      \         head(xs) :: qsort(keep_ge(tail(xs), head(xs))))\n\
       def keep_lt(xs, p) =\n\
      \  if isnil(xs) then nil else\n\
      \  if head(xs) < p then head(xs) :: keep_lt(tail(xs), p) else keep_lt(tail(xs), p)\n\
       def keep_ge(xs, p) =\n\
      \  if isnil(xs) then nil else\n\
      \  if head(xs) >= p then head(xs) :: keep_ge(tail(xs), p) else keep_ge(tail(xs), p)\n\
       def append(a, b) = if isnil(a) then b else head(a) :: append(tail(a), b)\n\
       def randlist(n, seed) =\n\
      \  if n == 0 then nil else (seed * 75 + 74) % 997 :: randlist(n - 1, (seed * 75 + 74) % 65537)\n\
       def checksum(xs, i) =\n\
      \  if isnil(xs) then 0 else (i + 1) * head(xs) + checksum(tail(xs), i + 1)";
    entry = "qsort_check";
    args =
      (function
      | Tiny -> ints [ 12; 1 ]
      | Small -> ints [ 30; 1 ]
      | Medium -> ints [ 60; 1 ]
      | Large -> ints [ 120; 1 ]);
  }

let mergesort =
  {
    name = "mergesort";
    description = "bottom-up merge sort of a pseudo-random list, checksummed";
    source =
      "def msort_check(n, seed) = checksum(msort(randlist(n, seed)), 0)\n\
       def msort(xs) =\n\
      \  if isnil(xs) then nil else\n\
      \  if isnil(tail(xs)) then xs else\n\
      \  let half = length(xs) / 2 in\n\
      \  merge(msort(take(xs, half)), msort(drop(xs, half)))\n\
       def merge(a, b) =\n\
      \  if isnil(a) then b else\n\
      \  if isnil(b) then a else\n\
      \  if head(a) <= head(b) then head(a) :: merge(tail(a), b)\n\
      \  else head(b) :: merge(a, tail(b))\n\
       def take(xs, n) = if n == 0 || isnil(xs) then nil else head(xs) :: take(tail(xs), n - 1)\n\
       def drop(xs, n) = if n == 0 || isnil(xs) then xs else drop(tail(xs), n - 1)\n\
       def length(xs) = if isnil(xs) then 0 else 1 + length(tail(xs))\n\
       def randlist(n, seed) =\n\
      \  if n == 0 then nil else (seed * 75 + 74) % 997 :: randlist(n - 1, (seed * 75 + 74) % 65537)\n\
       def checksum(xs, i) =\n\
      \  if isnil(xs) then 0 else (i + 1) * head(xs) + checksum(tail(xs), i + 1)";
    entry = "msort_check";
    args =
      (function
      | Tiny -> ints [ 10; 3 ]
      | Small -> ints [ 24; 3 ]
      | Medium -> ints [ 48; 3 ]
      | Large -> ints [ 96; 3 ]);
  }

let map_reduce =
  {
    name = "map_reduce";
    description = "sum of squares over a range by interval halving";
    source =
      "def sumsq(lo, hi) =\n\
      \  if hi - lo == 1 then lo * lo else\n\
      \  let mid = (lo + hi) / 2 in sumsq(lo, mid) + sumsq(mid, hi)";
    entry = "sumsq";
    args =
      (function
      | Tiny -> ints [ 0; 16 ]
      | Small -> ints [ 0; 64 ]
      | Medium -> ints [ 0; 256 ]
      | Large -> ints [ 0; 1024 ]);
  }

let tak =
  {
    name = "tak";
    description = "Takeuchi function (deep dependent recursion)";
    source =
      "def tak(x, y, z) =\n\
      \  if y < x then tak(tak(x - 1, y, z), tak(y - 1, z, x), tak(z - 1, x, y)) else z";
    entry = "tak";
    args =
      (function
      | Tiny -> ints [ 8; 4; 0 ]
      | Small -> ints [ 10; 5; 0 ]
      | Medium -> ints [ 12; 6; 0 ]
      | Large -> ints [ 14; 7; 0 ]);
  }

let synthetic ~branching ~depth ~grain =
  if branching < 1 then invalid_arg "Workload.synthetic: branching must be >= 1";
  if depth < 0 then invalid_arg "Workload.synthetic: depth must be >= 0";
  if grain < 0 then invalid_arg "Workload.synthetic: grain must be >= 0";
  let calls =
    List.init branching (fun _ -> "synth(d - 1, g)") |> String.concat " + "
  in
  let source =
    Printf.sprintf
      "def synth(d, g) = if d == 0 then spin(g, 0) else %s\n\
       def spin(g, acc) = if g == 0 then acc else spin(g - 1, acc + 1)"
      calls
  in
  {
    name = Printf.sprintf "synthetic_b%d_d%d_g%d" branching depth grain;
    description =
      Printf.sprintf "uniform tree: branching %d, depth %d, leaf grain %d" branching depth grain;
    source;
    entry = "synth";
    args =
      (fun size ->
        let d =
          match size with
          | Tiny -> max 0 (depth - 2)
          | Small -> max 0 (depth - 1)
          | Medium -> depth
          | Large -> depth + 1
        in
        ints [ d; grain ]);
  }

let all = [ fib; tree_sum; nqueens; quicksort; mergesort; map_reduce; tak ]

let by_name name = List.find_opt (fun w -> String.equal w.name name) all
