type params = { copies : int; vote_cost : int }

let default = { copies = 3; vote_cost = 1 }

let completion_estimate p ~work ~procs ~tasks =
  if p.copies < 1 || p.vote_cost < 0 then invalid_arg "Tmr: bad params";
  if work < 0 || procs < 1 || tasks < 0 then invalid_arg "Tmr: bad workload";
  ((p.copies * work) + (p.vote_cost * tasks) + procs - 1) / procs

let overhead p = float_of_int (p.copies - 1)

let masked_failures p = (p.copies - 1) / 2
