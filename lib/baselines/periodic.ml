type params = { interval : int; save_cost : int; restore_cost : int }

type run = {
  completion_time : int;
  checkpoints_taken : int;
  work_lost : int;
  overhead : float;
}

let validate p ~work =
  if p.interval <= 0 then invalid_arg "Periodic: interval must be positive";
  if p.save_cost < 0 || p.restore_cost < 0 then invalid_arg "Periodic: negative cost";
  if work < 0 then invalid_arg "Periodic: negative work"

(* Timeline walk: between interesting instants (next checkpoint boundary,
   next failure, completion) time advances linearly.  State: wall clock,
   work done since last snapshot, snapshotted work. *)
let simulate p ~work ~failures =
  validate p ~work;
  let failures = List.sort compare failures in
  let rec go clock saved since failures ckpts lost =
    let remaining = work - saved - since in
    if remaining <= 0 then
      { completion_time = clock;
        checkpoints_taken = ckpts;
        work_lost = lost;
        overhead =
          (if work = 0 then 0.0 else float_of_int (clock - work) /. float_of_int work);
      }
    else begin
      let to_ckpt = p.interval - since in
      (* The next structural event: checkpoint boundary or completion. *)
      let next_span = min to_ckpt remaining in
      let next_event_at = clock + next_span in
      match failures with
      | f :: rest when f < next_event_at ->
        (* Failure strikes mid-span: work since the last snapshot is lost
           and the machine restores. *)
        let done_in_span = max 0 (f - clock) in
        let lost_now = since + done_in_span in
        (* [max clock f]: a failure that struck during a checkpoint save is
           processed once the save window closes. *)
        go (max clock f + p.restore_cost) saved 0 rest ckpts (lost + lost_now)
      | _ ->
        if next_span = remaining && remaining < to_ckpt then
          (* completes before the next checkpoint *)
          go (clock + remaining) saved (since + remaining) failures ckpts lost
        else begin
          (* reach a checkpoint boundary: pause and snapshot.  A failure
             during the save loses the snapshot in progress but not the
             previous one; we fold that into the same rule by checking
             failures against the save window on the next iteration. *)
          let clock = next_event_at + p.save_cost in
          go clock (saved + p.interval) 0 failures (ckpts + 1) lost
        end
    end
  in
  go 0 0 0 failures 0 0

let fault_free_overhead p ~work = (simulate p ~work ~failures:[]).overhead
