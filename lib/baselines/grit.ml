let config ~nodes (base : Recflow_machine.Config.t) =
  if nodes < 2 then invalid_arg "Grit.config: need at least 2 nodes";
  {
    base with
    Recflow_machine.Config.topology = Recflow_net.Topology.Ring nodes;
    policy = Recflow_balance.Policy.Neighborhood { radius = 1 };
    recovery = Recflow_machine.Config.Rollback;
  }

let description =
  "Grit [6]: spawns restricted to immediate ring neighbours; parent-site checkpoints double as \
   the fixed recovery sites"
