(** Periodic global checkpointing baseline (Tamir & Sequin [15],
    Hughes [7], as discussed in §2 of the paper).

    The scheme virtually stops all computation at a fixed interval, saves a
    global state snapshot, and on any failure rolls the *whole machine*
    back to the last snapshot.  We model the timeline analytically over a
    given amount of parallel work: the paper's argument against it is
    overhead in normal operation (global synchronisation) plus full-machine
    rollback on failure, and that is exactly what the model exposes — it
    needs no event-level detail to be compared fairly on those terms. *)

type params = {
  interval : int;  (** ticks of useful work between checkpoints *)
  save_cost : int;  (** ticks the whole machine pauses per checkpoint *)
  restore_cost : int;  (** ticks to reload the last snapshot after a failure *)
}

type run = {
  completion_time : int;  (** wall-clock ticks until the work finishes *)
  checkpoints_taken : int;
  work_lost : int;  (** useful ticks redone because of rollbacks *)
  overhead : float;  (** (completion - work) / work *)
}

val simulate : params -> work:int -> failures:int list -> run
(** [simulate p ~work ~failures] plays the timeline: useful work
    accumulates except while checkpointing; a failure at wall-clock time t
    (sorted internally) rolls accumulated work back to the last snapshot
    and charges [restore_cost].  Failures landing after completion are
    ignored.
    @raise Invalid_argument if [interval <= 0], costs are negative or
    [work < 0]. *)

val fault_free_overhead : params -> work:int -> float
(** Overhead with no failures: the steady-state checkpointing tax. *)
