(** Grit's neighbour-restricted recovery baseline ([6], §5.4).

    Grit limits every node to spawning children on its immediate
    neighbours and assigns fixed recovery sites at initialisation.  On our
    machine that corresponds to: a sparse topology, placement restricted to
    the 1-hop neighbourhood, rollback-style re-issue (the recovery site in
    our model is the parent's node, which under the neighbour restriction
    is always adjacent to the failed node — matching Grit's locality
    property).  This module just packages that configuration so the Q7
    experiment can quote it as a named comparator. *)

val config : nodes:int -> Recflow_machine.Config.t -> Recflow_machine.Config.t
(** Restrict [base] to a ring of [nodes] processors with 1-hop neighbourhood
    placement and rollback recovery.
    @raise Invalid_argument if [nodes < 2]. *)

val description : string
