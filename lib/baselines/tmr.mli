(** Triple-modular-redundancy dataflow baseline (Misunas [11], §5.4).

    Misunas stores three complete copies of the program, each executed on
    distinct processors over distinct paths, with voting on results.  We
    model its cost analytically — the scheme's behaviour under our fail-stop
    assumptions is fully characterised by "[copies]× the work plus a vote
    per task, and any ⌊(copies−1)/2⌋ simultaneous per-task failures are
    masked with no recovery delay".  The executable counterpart (replicated
    critical sections with voting, §5.3) lives in the machine's
    [Replicate] recovery mode; this module provides the whole-program
    closed form the Q6 comparison quotes. *)

type params = { copies : int; vote_cost : int (* ticks per task voted *) }

val default : params
(** Three copies, one-tick votes. *)

val completion_estimate : params -> work:int -> procs:int -> tasks:int -> int
(** Ideal parallel completion time: [copies * work / procs + vote_cost *
    tasks / procs], i.e. perfectly balanced redundant execution.
    @raise Invalid_argument if any quantity is non-positive. *)

val overhead : params -> float
(** Steady-state work inflation relative to an unreplicated run:
    [copies - 1] as a float (votes excluded — they are per-task and
    reported separately by the experiment). *)

val masked_failures : params -> int
(** Simultaneous failures masked without any recovery action. *)
