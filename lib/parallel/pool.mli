(** Fixed-size domain pool for embarrassingly parallel fan-out.

    A pool owns [jobs - 1] worker domains, each with its own Chase–Lev
    work-stealing deque ({!Deque}): the domain that owns a deque pushes and
    pops lock-free at the bottom, idle domains steal from the top, and a
    batch is submitted as one range task that splits recursively — so an
    N-task batch costs O(N / chunk) deque pushes and zero global-mutex
    acquisitions, where the old single locked queue paid a mutex round trip
    per push *and* per pop.  The submitting domain participates while it
    waits, so a pool never deadlocks on nested submissions, and [jobs = 1]
    degenerates to plain sequential execution on the caller in submission
    order — the property the experiments driver relies on for its
    [--jobs 1] determinism oracle.

    Results are returned in submission order regardless of which domain
    executed what, and the first (lowest-index) exception raised by a task
    is re-raised in the submitter with its original backtrace. *)

type t

val create : ?jobs:int -> ?minor_heap_words:int -> unit -> t
(** [create ~jobs ()] starts a pool of [jobs] execution slots ([jobs - 1]
    spawned domains plus the submitter).  [jobs] defaults to
    [Domain.recommended_domain_count ()] and is clamped to at least 1.

    Each spawned worker sizes its minor heap to [minor_heap_words] (default
    [2^20] words, 8 MiB on 64-bit — the stock 256k-word minor heap forces
    allocation-heavy sub-millisecond simulation tasks into constant minor
    collections, each a stop-the-world across domains).  The submitting
    domain's GC parameters are never touched, so [jobs = 1] behaviour is
    byte-identical to a plain [List.map].

    Raises [Invalid_argument] if [jobs < 1]. *)

val jobs : t -> int
(** Number of execution slots (worker domains + the submitting caller). *)

val slot : unit -> int
(** Process-unique index of the execution slot the calling domain occupies.
    Worker domains are assigned a contiguous range at pool creation, and
    any other domain (the submitter included) allocates its own slot on
    first use — so two coexisting pools, or two raw submitter domains,
    never share a slot.  Sharded collectors key per-domain state by this
    index: each slot has exactly one writing domain, so their hot path
    takes no lock.  Slot numbers are small and dense but depend on pool
    creation order; consumers must treat them as opaque (merge over all
    slots commutatively), and can size storage with {!slot_limit}. *)

val slot_limit : unit -> int
(** Exclusive upper bound on every slot index allocated so far.  Grows as
    pools (and fresh submitter domains) appear; collectors created before
    a pool must be prepared to grow up to the current limit. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element of [xs], possibly on
    different domains, and returns the results in the order of [xs].
    If any application raises, the exception of the lowest-index failing
    element is re-raised after the whole batch has settled (no task is
    abandoned mid-flight).
    Raises [Invalid_argument] if the pool has been shut down — a silent
    fallback would run the batch submitter-only and masquerade as a
    parallel sweep. *)

val run : t -> (unit -> 'a) list -> 'a list
(** [run pool thunks] is [map pool (fun f -> f ()) thunks]. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Subsequent [map]/[run]
    calls raise [Invalid_argument].  A [map] already in flight when
    [shutdown] is called is drained first: the workers stay alive until it
    settles and its submitter gets its full result — shutdown never
    strands a batch mid-air. *)

(** {1 Shared default pool}

    The experiments harness fans out through one process-wide pool so a
    single [--jobs] flag governs every sweep. *)

val set_default_jobs : int -> unit
(** Replace the default pool with one of the given width (shutting down
    the previous one if it was started).  Raises [Invalid_argument] if
    [jobs < 1], or if a [map] on the current default pool is observed
    still in flight — swapping under a live sweep would tear the pool out
    from under its submitter.  The in-flight refusal is best-effort
    detection of that misuse, not the safety mechanism: a map racing this
    call either completes in full (the retiring pool's {!shutdown} drains
    admitted maps before joining its workers) or raises
    [Invalid_argument] itself. *)

val default : unit -> t
(** The shared pool, created on first use with the default width. *)

val default_jobs : unit -> int
(** Width the default pool has (or would be created with). *)
