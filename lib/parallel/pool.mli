(** Fixed-size domain pool for embarrassingly parallel fan-out.

    A pool owns [jobs - 1] worker domains draining a shared queue of
    thunks; the submitting domain also participates while it waits, so a
    pool never deadlocks on nested submissions and [jobs = 1] degenerates
    to plain sequential execution on the caller — the property the
    experiments driver relies on for its [--jobs 1] determinism oracle.

    Results are returned in submission order regardless of which domain
    executed what, and the first (lowest-index) exception raised by a task
    is re-raised in the submitter with its original backtrace. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] starts a pool of [jobs] execution slots ([jobs - 1]
    spawned domains plus the submitter).  [jobs] defaults to
    [Domain.recommended_domain_count ()] and is clamped to at least 1.
    Raises [Invalid_argument] if [jobs < 1]. *)

val jobs : t -> int
(** Number of execution slots (worker domains + the submitting caller). *)

val slot : unit -> int
(** Index of the execution slot the calling domain occupies: 0 for the
    submitter (and for any domain outside a pool), [1 .. jobs - 1] for a
    pool's spawned workers.  Sharded collectors key per-domain state by
    this index so their hot path takes no lock: each slot has exactly one
    writer. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element of [xs], possibly on
    different domains, and returns the results in the order of [xs].
    If any application raises, the exception of the lowest-index failing
    element is re-raised after the whole batch has settled (no task is
    abandoned mid-flight). *)

val run : t -> (unit -> 'a) list -> 'a list
(** [run pool thunks] is [map pool (fun f -> f ()) thunks]. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; a shut-down pool
    executes subsequent [map] calls sequentially on the caller. *)

(** {1 Shared default pool}

    The experiments harness fans out through one process-wide pool so a
    single [--jobs] flag governs every sweep. *)

val set_default_jobs : int -> unit
(** Replace the default pool with one of the given width (shutting down
    the previous one if it was started).  Raises [Invalid_argument] if
    [jobs < 1]. *)

val default : unit -> t
(** The shared pool, created on first use with the default width. *)

val default_jobs : unit -> int
(** Width the default pool has (or would be created with). *)
