(** Chase–Lev work-stealing deque.

    Single-owner double-ended queue: the owning domain pushes and pops
    lock-free at the bottom (LIFO, so nested fork-join work keeps cache
    locality), while any other domain steals from the top (FIFO, so
    thieves take the oldest — usually largest — pending range).  The only
    synchronisation is one CAS per steal and one CAS per pop of the final
    element; the common push/pop path is two atomic loads and a store.

    Owner operations ([push], [pop]) must only ever be called from one
    domain at a time — the pool guarantees this by giving each execution
    slot its own deque.  [steal] is safe from any domain concurrently. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only: add at the bottom.  Grows the ring buffer as needed. *)

val pop : 'a t -> 'a option
(** Owner only: take the most recently pushed element, or [None] when the
    deque is empty (racing thieves may win the last element). *)

val steal : 'a t -> 'a option
(** Any domain: take the oldest element, or [None] when empty.  Internally
    retries a failed CAS (another thief won) until the deque is observed
    empty, so [None] is a stable emptiness verdict at some linearisation
    point. *)

val size : 'a t -> int
(** Racy snapshot of the number of queued elements (>= 0); only a hint. *)
